// Command jettysim runs one workload on one machine configuration and
// prints the full measurement: hierarchy statistics, bus and snoop
// activity, per-filter coverage and energy reductions.
//
// Examples:
//
//	jettysim -app Barnes
//	jettysim -app un -cpus 8 -filters 'HJ(IJ-9x4x7,EJ-32x4),EJ-32x4'
//	jettysim -app Throughput -nsb -serial=false
//	jettysim -app Ocean -accesses 500000 -l2 2097152 -assoc 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/tables"
	"jetty/internal/workload"
)

func main() {
	app := flag.String("app", "Barnes", "workload: an application name/abbreviation from Table 2, or Throughput")
	cpus := flag.Int("cpus", 4, "number of CPUs")
	accesses := flag.Uint64("accesses", 0, "reference budget override (0 = spec default)")
	filters := flag.String("filters", "HJ(IJ-10x4x7,EJ-32x4),HJ(IJ-9x4x7,EJ-32x4),EJ-32x4,IJ-9x4x7",
		"comma-separated JETTY configurations")
	l2size := flag.Int("l2", 1<<20, "L2 size in bytes")
	l2assoc := flag.Int("assoc", 4, "L2 associativity")
	nsb := flag.Bool("nsb", false, "disable L2 subblocking (64-byte coherence units)")
	serial := flag.Bool("serial", true, "serial tag/data L2 access (false = parallel)")
	flag.Parse()

	if err := run(*app, *cpus, *accesses, *filters, *l2size, *l2assoc, *nsb, *serial); err != nil {
		fmt.Fprintln(os.Stderr, "jettysim:", err)
		os.Exit(1)
	}
}

func run(app string, cpus int, accesses uint64, filterList string, l2size, l2assoc int, nsb, serial bool) error {
	var sp workload.Spec
	if strings.EqualFold(app, "Throughput") || app == "tp" {
		sp = workload.Throughput()
	} else {
		var err error
		sp, err = workload.ByName(app)
		if err != nil {
			return err
		}
	}
	if accesses > 0 {
		sp.Accesses = accesses
	}

	fcs, err := jetty.ParseAll(splitConfigs(filterList))
	if err != nil {
		return err
	}

	cfg := smp.PaperConfig(cpus).WithFilters(fcs...)
	cfg.L2.SizeBytes = l2size
	cfg.L2.Assoc = l2assoc
	if nsb {
		cfg.L2.Geom = addr.NonSubblocked
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// One chunked, cancelable pass: Ctrl-C stops the simulation at the
	// next chunk boundary. A single run needs no worker pool or cache,
	// so this skips the engine that the suite commands use.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sim.RunAppCtx(ctx, sp, cfg, nil)
	if err != nil {
		return err
	}
	printResult(res, cfg, serial)
	return nil
}

// splitConfigs splits a comma-separated configuration list while keeping
// the commas inside HJ(...,...) intact.
func splitConfigs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if part := strings.TrimSpace(s[start:i]); part != "" {
					out = append(out, part)
				}
				start = i + 1
			}
		}
	}
	if part := strings.TrimSpace(s[start:]); part != "" {
		out = append(out, part)
	}
	return out
}

func printResult(res sim.AppResult, cfg smp.Config, serial bool) {
	fmt.Printf("workload %s on %d-way SMP, %dKB %d-way L2 (%s, %d-byte units)\n",
		res.Spec.Name, cfg.CPUs, cfg.L2.SizeBytes>>10, cfg.L2.Assoc,
		map[bool]string{true: "subblocked", false: "non-subblocked"}[cfg.L2.Geom.UnitsPerBlock > 1],
		cfg.L2.Geom.UnitBytes())

	c := res.Counts
	cp := res.CPU
	fmt.Printf("\nreferences: %d (%d loads, %d stores), footprint %s MB\n",
		res.Refs, cp.Loads, cp.Stores, tables.MB(res.MemoryBytes))
	fmt.Printf("L1: %s hit rate (%d probes), %d writebacks, %d store-forwards\n",
		tables.Pct(res.L1HitRate), cp.L1Probes, cp.L1Writebacks, cp.WBForwards)
	fmt.Printf("L2 local: %s hit rate (%d reads, %d writes)\n",
		tables.Pct(res.L2LocalHitRate), c.LocalReads, c.LocalWrites)

	fmt.Printf("\nbus: %d BusRd, %d BusRdX, %d BusUpgr, %d BusWB\n",
		res.Bus.Count[bus.Read], res.Bus.Count[bus.ReadX], res.Bus.Count[bus.Upgrade], res.Bus.Count[bus.Writeback])
	fmt.Printf("snoops: %d (%d hit, %d miss); remote-hit distribution:",
		c.Snoops, c.SnoopHits, c.SnoopMisses)
	for h, f := range res.RemoteHitFrac {
		fmt.Printf(" %d:%s", h, tables.PctInt(f))
	}
	fmt.Printf("\nsnoop misses: %s of snoops, %s of all L2 accesses\n",
		tables.Pct(res.SnoopMissOfSnoops), tables.Pct(res.SnoopMissOfAll))

	mode := energy.SerialTagData
	if !serial {
		mode = energy.ParallelTagData
	}
	reds := sim.EnergyReductions(res, cfg, energy.Tech180(), mode)
	t := tables.New(fmt.Sprintf("\nJETTY filters (%s tag/data):", mode),
		"config", "coverage", "energy -% (snoops)", "energy -% (all L2)")
	for i, name := range res.FilterNames {
		t.Row(name, tables.Pct(res.Coverage[i]), tables.Pct(reds[i].OverSnoops), tables.Pct(reds[i].OverAll))
	}
	fmt.Println(t.String())
}
