// Command jettysim runs one workload on one machine configuration and
// prints the full measurement: hierarchy statistics, bus and snoop
// activity, per-filter coverage and energy reductions. The workload can
// be a library generator (-app), a generator whose reference stream is
// simultaneously recorded to a trace file (-capture), or a previously
// recorded trace replayed from disk (-trace) — the replay reproduces
// the capturing run's statistics exactly.
//
// Examples:
//
//	jettysim -app Barnes
//	jettysim -app un -cpus 8 -filters 'HJ(IJ-9x4x7,EJ-32x4),EJ-32x4'
//	jettysim -app Throughput -nsb -serial=false
//	jettysim -app Ocean -accesses 500000 -l2 2097152 -assoc 8
//	jettysim -app WebServer -capture web.jtrc -gzip
//	jettysim -trace web.jtrc -filters EJ-32x4
//	jettysim -app PhasedWebServer -timeline tl.csv -interval 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/tables"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

func main() {
	app := flag.String("app", "Barnes", "workload: any library name/abbreviation (Table 2 apps, Throughput, WebServer, Database, ...)")
	cpus := flag.Int("cpus", 4, "number of CPUs")
	accesses := flag.Uint64("accesses", 0, "reference budget override (0 = spec default)")
	filters := flag.String("filters", "HJ(IJ-10x4x7,EJ-32x4),HJ(IJ-9x4x7,EJ-32x4),EJ-32x4,IJ-9x4x7",
		"comma-separated JETTY configurations")
	l2size := flag.Int("l2", 1<<20, "L2 size in bytes")
	l2assoc := flag.Int("assoc", 4, "L2 associativity")
	nsb := flag.Bool("nsb", false, "disable L2 subblocking (64-byte coherence units)")
	serial := flag.Bool("serial", true, "serial tag/data L2 access (false = parallel)")
	traceFile := flag.String("trace", "", "replay this recorded trace file instead of generating -app")
	capture := flag.String("capture", "", "record the run's reference stream to this trace file")
	gz := flag.Bool("gzip", false, "gzip-compress the -capture trace")
	timeline := flag.String("timeline", "", "sample the run and write the per-window timeline as CSV to this file (\"-\" = stdout)")
	interval := flag.Uint64("interval", 0, "timeline window width in accesses (0 with -timeline = 10000)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["trace"] && (set["app"] || set["accesses"]) {
		fmt.Fprintln(os.Stderr, "jettysim: -trace replays a recorded stream; -app/-accesses do not apply")
		os.Exit(1)
	}

	if err := run(runOpts{
		app: *app, cpus: *cpus, cpusSet: set["cpus"], accesses: *accesses,
		filters: *filters, l2size: *l2size, l2assoc: *l2assoc, nsb: *nsb,
		serial: *serial, traceFile: *traceFile, capture: *capture, gzip: *gz,
		timeline: *timeline, interval: *interval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "jettysim:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	app             string
	cpus            int
	cpusSet         bool
	accesses        uint64
	filters         string
	l2size, l2assoc int
	nsb, serial     bool
	traceFile       string
	capture         string
	gzip            bool
	timeline        string
	interval        uint64
}

// sampled reports whether the run records a timeline (-timeline and/or
// -interval given).
func (o runOpts) sampled() bool { return o.timeline != "" || o.interval > 0 }

// sampleOpt builds the sampling options, defaulting the interval.
func (o runOpts) sampleOpt() sim.SampleOptions {
	iv := o.interval
	if iv == 0 {
		iv = 10_000
	}
	return sim.SampleOptions{Interval: iv}
}

func run(o runOpts) error {
	if o.traceFile != "" && o.capture != "" {
		return fmt.Errorf("-trace and -capture are mutually exclusive")
	}
	if o.capture != "" && o.sampled() {
		return fmt.Errorf("-capture and -timeline/-interval are mutually exclusive (capture, then replay sampled)")
	}

	// Replay path: the trace fixes the workload and the machine width.
	var in sim.TraceInput
	cpus := o.cpus
	if o.traceFile != "" {
		data, err := os.ReadFile(o.traceFile)
		if err != nil {
			return err
		}
		// Empty name: the label prefers the trace's recorded app name.
		if in, err = sim.LoadTrace("", data); err != nil {
			return err
		}
		if !o.cpusSet {
			cpus = in.CPUs
		}
		if cpus < in.CPUs {
			return fmt.Errorf("%s needs %d cpus, -cpus says %d", o.traceFile, in.CPUs, cpus)
		}
	}

	fcs, err := jetty.ParseAll(splitConfigs(o.filters))
	if err != nil {
		return err
	}
	cfg := smp.PaperConfig(cpus).WithFilters(fcs...)
	cfg.L2.SizeBytes = o.l2size
	cfg.L2.Assoc = o.l2assoc
	if o.nsb {
		cfg.L2.Geom = addr.NonSubblocked
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// One chunked, cancelable pass: Ctrl-C stops the simulation at the
	// next chunk boundary. A single run needs no worker pool or cache,
	// so this skips the engine that the suite commands use.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if o.traceFile != "" {
		var res sim.AppResult
		if o.sampled() {
			res, err = sim.RunTraceSampledCtx(ctx, in, cfg, o.sampleOpt(), nil)
		} else {
			res, err = sim.RunTraceCtx(ctx, in, cfg, nil)
		}
		if err != nil {
			return err
		}
		fmt.Printf("replaying %s (%d records, digest %.12s…)\n", o.traceFile, in.Records, in.Digest)
		printResult(res, cfg, o.serial)
		return writeTimeline(o.timeline, res)
	}

	sp, err := workload.Lookup(o.app)
	if err != nil {
		return err
	}
	if o.accesses > 0 {
		sp.Accesses = o.accesses
	}

	if o.capture != "" {
		f, err := os.Create(o.capture)
		if err != nil {
			return err
		}
		defer f.Close()
		tw, err := trace.NewWriter(f, cfg.CPUs, trace.WriterOptions{
			Compress: o.gzip,
			Meta:     trace.Meta{App: sp.Name, Note: "captured by jettysim"},
		})
		if err != nil {
			return err
		}
		res, err := sim.RunAppCapturedCtx(ctx, sp, cfg, tw, nil)
		if err != nil {
			return err
		}
		if err := tw.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("captured %d references to %s\n", tw.Records(), o.capture)
		printResult(res, cfg, o.serial)
		return nil
	}

	var res sim.AppResult
	if o.sampled() {
		res, err = sim.RunAppSampledCtx(ctx, sp, cfg, o.sampleOpt(), nil)
	} else {
		res, err = sim.RunAppCtx(ctx, sp, cfg, nil)
	}
	if err != nil {
		return err
	}
	printResult(res, cfg, o.serial)
	return writeTimeline(o.timeline, res)
}

// writeTimeline writes a sampled run's timeline as CSV to path ("-" or
// "" with sampling = stdout) and reports where it went.
func writeTimeline(path string, res sim.AppResult) error {
	tl := res.Timeline
	if tl == nil {
		return nil
	}
	if path == "" || path == "-" {
		fmt.Printf("\ntimeline (%d windows of %d accesses):\n", len(tl.Windows), tl.Interval)
		return tl.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d timeline windows (interval %d) to %s\n", len(tl.Windows), tl.Interval, path)
	return nil
}

// splitConfigs splits a comma-separated configuration list while keeping
// the commas inside HJ(...,...) intact.
func splitConfigs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if part := strings.TrimSpace(s[start:i]); part != "" {
					out = append(out, part)
				}
				start = i + 1
			}
		}
	}
	if part := strings.TrimSpace(s[start:]); part != "" {
		out = append(out, part)
	}
	return out
}

func printResult(res sim.AppResult, cfg smp.Config, serial bool) {
	fmt.Printf("workload %s on %d-way SMP, %dKB %d-way L2 (%s, %d-byte units)\n",
		res.Spec.Name, cfg.CPUs, cfg.L2.SizeBytes>>10, cfg.L2.Assoc,
		map[bool]string{true: "subblocked", false: "non-subblocked"}[cfg.L2.Geom.UnitsPerBlock > 1],
		cfg.L2.Geom.UnitBytes())

	c := res.Counts
	cp := res.CPU
	fmt.Printf("\nreferences: %d (%d loads, %d stores), footprint %s MB\n",
		res.Refs, cp.Loads, cp.Stores, tables.MB(res.MemoryBytes))
	fmt.Printf("L1: %s hit rate (%d probes), %d writebacks, %d store-forwards\n",
		tables.Pct(res.L1HitRate), cp.L1Probes, cp.L1Writebacks, cp.WBForwards)
	fmt.Printf("L2 local: %s hit rate (%d reads, %d writes)\n",
		tables.Pct(res.L2LocalHitRate), c.LocalReads, c.LocalWrites)

	fmt.Printf("\nbus: %d BusRd, %d BusRdX, %d BusUpgr, %d BusWB\n",
		res.Bus.Count[bus.Read], res.Bus.Count[bus.ReadX], res.Bus.Count[bus.Upgrade], res.Bus.Count[bus.Writeback])
	fmt.Printf("snoops: %d (%d hit, %d miss); remote-hit distribution:",
		c.Snoops, c.SnoopHits, c.SnoopMisses)
	for h, f := range res.RemoteHitFrac {
		fmt.Printf(" %d:%s", h, tables.PctInt(f))
	}
	fmt.Printf("\nsnoop misses: %s of snoops, %s of all L2 accesses\n",
		tables.Pct(res.SnoopMissOfSnoops), tables.Pct(res.SnoopMissOfAll))

	mode := energy.SerialTagData
	if !serial {
		mode = energy.ParallelTagData
	}
	reds := sim.EnergyReductions(res, cfg, energy.Tech180(), mode)
	t := tables.New(fmt.Sprintf("\nJETTY filters (%s tag/data):", mode),
		"config", "coverage", "energy -% (snoops)", "energy -% (all L2)")
	for i, name := range res.FilterNames {
		t.Row(name, tables.Pct(res.Coverage[i]), tables.Pct(reds[i].OverSnoops), tables.Pct(reds[i].OverAll))
	}
	fmt.Println(t.String())
}
