package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"jetty/internal/obs"
	"jetty/internal/service"
)

// TestCrashRecoveryEndToEnd is the durability smoke CI runs: it builds
// the real jettyd binary, boots a durable daemon (-data-dir), SIGKILLs
// it mid-sweep — no drain, no goodbye — then boots a fresh daemon over
// the same data directory and requires the sweep to resume under its
// original ID, skip the cells already on disk, and finish with metrics
// identical to an uninterrupted control run. Real processes, a real
// kill, a real fsync'd store.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots daemon processes")
	}
	bin := filepath.Join(t.TempDir(), "jettyd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building jettyd: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	client := &http.Client{Timeout: 10 * time.Second}
	waitReady := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := client.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon at %s not ready", addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Each-mode with repeats: 2 workloads x 2 filters x 4 repeats = 16
	// distinct-keyed cells, at a scale where a cell runs long enough for
	// the kill to land mid-sweep.
	spec := `{"name":"crash","workloads":["Lu","Fmm"],"filters":["EJ-32x4","EJ-16x2"],` +
		`"filter_mode":"each","repeat":4,"scale":1}`
	submit := func(base string) service.SweepStatus {
		t.Helper()
		resp, err := client.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st service.SweepStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		return st
	}
	poll := func(base, id string) service.SweepStatus {
		t.Helper()
		resp, err := client.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cur service.SweepStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		return cur
	}
	result := func(base, id string) service.SweepResult {
		t.Helper()
		deadline := time.Now().Add(180 * time.Second)
		for {
			cur := poll(base, id)
			if cur.State == "done" {
				break
			}
			if cur.State == "failed" || cur.State == "canceled" {
				t.Fatalf("sweep %s ended %s", id, cur.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep %s stuck in %s", id, cur.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
		resp, err := client.Get(base + "/v1/sweeps/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res service.SweepResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result status %d", resp.StatusCode)
		}
		return res
	}

	// Control daemon: in-memory, same spec, uninterrupted. Started first
	// so its run overlaps the durable daemon's wall-clock.
	ctrlAddr := freeAddr()
	start("-addr", ctrlAddr, "-workers", "2")
	waitReady(ctrlAddr)
	ctrlSt := submit("http://" + ctrlAddr)

	// Durable daemon #1: submit, wait until it has demonstrably made
	// durable progress (at least one cell finished), then SIGKILL it.
	addrA := freeAddr()
	daemonA := start("-addr", addrA, "-workers", "2", "-data-dir", dataDir)
	waitReady(addrA)
	st := submit("http://" + addrA)

	killDeadline := time.Now().Add(120 * time.Second)
	for {
		cur := poll("http://"+addrA, st.ID)
		if cur.Finished >= 1 && cur.State != "done" {
			break
		}
		if cur.State == "done" {
			t.Log("sweep finished before the kill; resume still verified below")
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("sweep never finished a cell (state %s)", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := daemonA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemonA.Wait()

	// The store already holds at least the finished cell's result — the
	// write-through lands before a cell reports finished.
	entries, err := os.ReadDir(filepath.Join(dataDir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	persisted := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), ".") {
			persisted++
		}
	}
	if persisted < 1 {
		t.Fatalf("no results on disk after the kill")
	}

	// Durable daemon #2 on a fresh port, same data directory: the
	// journaled sweep resumes under its original ID and completes.
	addrB := freeAddr()
	start("-addr", addrB, "-workers", "2", "-data-dir", dataDir)
	waitReady(addrB)
	baseB := "http://" + addrB

	resResumed := result(baseB, st.ID)
	resControl := result("http://"+ctrlAddr, ctrlSt.ID)
	if want := 2 * 2 * 4; len(resResumed.Metrics) != want {
		t.Fatalf("%d metrics, want %d", len(resResumed.Metrics), want)
	}
	if !reflect.DeepEqual(resResumed.Metrics, resControl.Metrics) {
		t.Fatalf("resumed sweep metrics diverged from the uninterrupted control run")
	}

	// The persisted cells were served from disk: the restarted engine
	// reports at least as many store hits as there were results on disk
	// at kill time.
	resp, err := client.Get(baseB + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Stats struct {
			StoreHits uint64 `json:"StoreHits"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Stats.StoreHits < uint64(persisted) {
		t.Errorf("StoreHits = %d after resume, want >= %d (cells persisted before the kill)",
			health.Stats.StoreHits, persisted)
	}

	// The restarted daemon's exposition carries the store instruments
	// and passes the in-repo promlint.
	resp, err = client.Get(baseB + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(b)
	if problems := obs.Lint(scrape); len(problems) != 0 {
		t.Fatalf("scrape fails lint: %v", problems)
	}
	for _, want := range []string{
		"jettyd_store_results",
		"jettyd_store_hits_total",
		"jettyd_store_writes_total",
		"jettyd_engine_store_hits_total",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}
