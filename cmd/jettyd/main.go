// Command jettyd serves the JETTY experiment engine over HTTP/JSON: many
// clients submit experiments, poll their progress and fetch the finished
// tables, while one shared engine enforces the concurrency cap and its
// content-addressed cache deduplicates identical work.
//
// Usage:
//
//	jettyd                       # listen on :8077, GOMAXPROCS workers
//	jettyd -addr :9000 -workers 4 -cache 512
//
// Quick tour (see README.md for more):
//
//	curl -s localhost:8077/healthz
//	curl -s -X POST localhost:8077/v1/experiments \
//	     -d '{"apps":["Barnes","Ocean"],"scale":0.1}'
//	curl -s localhost:8077/v1/experiments/exp-000001
//	curl -s localhost:8077/v1/experiments/exp-000001/result
//
// Bring your own trace (record with tracecat or jettysim -capture):
//
//	curl -s --data-binary @ocean.jtrc localhost:8077/v1/traces
//	curl -s -X POST localhost:8077/v1/experiments -d '{"trace":"<digest>"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jetty/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default, negative disables)")
	maxUnfinished := flag.Int("max-unfinished", 0, "max queued+running experiments (0 = default)")
	maxTraces := flag.Int("max-traces", 0, "max uploaded traces retained (0 = default)")
	maxTraceBytes := flag.Int64("max-trace-bytes", 0, "max bytes per uploaded trace (0 = default)")
	flag.Parse()

	if err := run(service.Options{
		Workers:       *workers,
		CacheEntries:  *cache,
		MaxUnfinished: *maxUnfinished,
		MaxTraces:     *maxTraces,
		MaxTraceBytes: *maxTraceBytes,
	}, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "jettyd:", err)
		os.Exit(1)
	}
}

func run(opts service.Options, addr string) error {
	svc := service.New(opts)
	defer svc.Close()

	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight HTTP requests
	// before tearing the engine down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("jettyd: serving on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("jettyd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
