// Command jettyd serves the JETTY experiment engine over HTTP/JSON: many
// clients submit experiments, poll their progress and fetch the finished
// tables, while one shared engine enforces the concurrency cap and its
// content-addressed cache deduplicates identical work.
//
// Usage:
//
//	jettyd                       # listen on :8077, GOMAXPROCS workers
//	jettyd -addr :9000 -workers 4 -cache 512
//	jettyd -log-format text -log-level debug -pprof
//
// Quick tour (see README.md for more):
//
//	curl -s localhost:8077/healthz
//	curl -s localhost:8077/buildinfo
//	curl -s localhost:8077/metrics
//	curl -s -X POST localhost:8077/v1/experiments \
//	     -d '{"apps":["Barnes","Ocean"],"scale":0.1}'
//	curl -s localhost:8077/v1/experiments/exp-000001
//	curl -s localhost:8077/v1/experiments/exp-000001/result
//
// Bring your own trace (record with tracecat or jettysim -capture):
//
//	curl -s --data-binary @ocean.jtrc localhost:8077/v1/traces
//	curl -s -X POST localhost:8077/v1/experiments -d '{"trace":"<digest>"}'
//
// Every response carries an X-Request-Id header; the same ID appears in
// the access log and in the status JSON of any job the request
// submitted, so a slow experiment is greppable end to end.
//
// Multi-tenant use: send an X-Jetty-Tenant header to submit under a
// named tenant. The engine schedules tenants fair-share (weights via
// -tenant-weights), per-tenant quotas answer 429 + Retry-After when one
// tenant is over its share (-max-unfinished-per-tenant,
// -max-cells-per-tenant, -max-traces-per-tenant), and the global
// admission cap answers 503 when the daemon as a whole is saturated.
//
// Cluster mode shards sweeps across several daemons (see DESIGN.md,
// "Cluster mode"):
//
//	jettyd -role worker -addr :8081
//	jettyd -role worker -addr :8082
//	jettyd -role coordinator -addr :8077 \
//	       -cluster-workers http://localhost:8081,http://localhost:8082
//
// The coordinator serves the same API as a single daemon — clients POST
// sweeps to /v1/sweeps exactly as before — but cells run on the
// workers, lost workers are detected and their cells rescheduled, and
// GET /v1/cluster/status reports the worker table and cluster counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/engine"
	"jetty/internal/obs"
	"jetty/internal/service"
	"jetty/internal/sim"
	"jetty/internal/store"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = default, negative disables)")
	maxUnfinished := flag.Int("max-unfinished", 0, "max queued+running jobs across all tenants (0 = default)")
	maxTenantJobs := flag.Int("max-unfinished-per-tenant", 0, "max queued+running jobs per tenant (0 = default)")
	maxTenantCells := flag.Int("max-cells-per-tenant", 0, "max queued engine jobs (runs + sweep cells) per tenant (0 = default)")
	maxTraces := flag.Int("max-traces", 0, "max uploaded traces retained (0 = default)")
	maxTenantTraces := flag.Int("max-traces-per-tenant", 0, "max uploaded traces per tenant (0 = default)")
	maxTraceBytes := flag.Int64("max-trace-bytes", 0, "max bytes per uploaded trace (0 = default)")
	tenantWeights := flag.String("tenant-weights", "", "fair-share weights, e.g. 'ci=4,batch=1' (unlisted tenants get 1)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "full-request read deadline (headers + body)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle deadline")
	logFormat := flag.String("log-format", "json", "log output format: json|text")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	slowJob := flag.Duration("slow-job", 0, "log engine jobs running longer than this (0 = default 30s)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	role := flag.String("role", "single", "daemon role: single|worker|coordinator")
	clusterWorkers := flag.String("cluster-workers", "", "comma-separated worker base URLs (coordinator role only)")
	probeInterval := flag.Duration("cluster-probe-interval", 0, "worker health-probe period (0 = default 2s)")
	requestTimeout := flag.Duration("cluster-request-timeout", 0, "per-dispatch deadline before a unit is rescheduled (0 = default 5m)")
	dataDir := flag.String("data-dir", "", "durable data directory: traces, job journal and results survive restarts (empty = in-memory only)")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jettyd:", err)
		os.Exit(2)
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jettyd:", err)
		os.Exit(2)
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jettyd:", err)
			os.Exit(2)
		}
		stats := st.Stats()
		log.Info("durable store open", "dir", st.Dir(),
			"results", stats.Results, "traces", stats.Traces, "pending_jobs", stats.PendingJobs)
	}
	coord, err := buildCluster(*role, *clusterWorkers, *probeInterval, *requestTimeout, st, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jettyd:", err)
		os.Exit(2)
	}

	if err := run(service.Options{
		Workers:                 *workers,
		CacheEntries:            *cache,
		MaxUnfinished:           *maxUnfinished,
		MaxUnfinishedPerTenant:  *maxTenantJobs,
		MaxQueuedCellsPerTenant: *maxTenantCells,
		MaxTraces:               *maxTraces,
		MaxTracesPerTenant:      *maxTenantTraces,
		MaxTraceBytes:           *maxTraceBytes,
		TenantWeights:           weights,
		Logger:                  log,
		SlowJob:                 *slowJob,
		Pprof:                   *pprofFlag,
		Role:                    *role,
		Cluster:                 coord,
		Store:                   st,
	}, *addr, httpTimeouts{read: *readTimeout, idle: *idleTimeout}); err != nil {
		log.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// buildCluster validates the role/worker flag combination and, for the
// coordinator role, dials the worker set. Workers and single-role
// daemons must not name workers — a worker fanning out to other workers
// would silently double-schedule cells. A durable store (non-nil st)
// additionally backs the coordinator's digest→result memo, so resolved
// cells survive coordinator restarts.
func buildCluster(role, workersCSV string, probe, reqTimeout time.Duration, st *store.Store, log *slog.Logger) (*cluster.Coordinator, error) {
	switch role {
	case "single", "worker":
		if workersCSV != "" {
			return nil, fmt.Errorf("-cluster-workers requires -role coordinator (got -role %s)", role)
		}
		return nil, nil
	case "coordinator":
	default:
		return nil, fmt.Errorf("-role must be single, worker or coordinator (got %q)", role)
	}
	if workersCSV == "" {
		return nil, fmt.Errorf("-role coordinator requires -cluster-workers")
	}
	var clients []*cluster.Client
	for _, raw := range strings.Split(workersCSV, ",") {
		c, err := cluster.NewClient(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("-cluster-workers: %w", err)
		}
		clients = append(clients, c)
	}
	var resultStore engine.ResultStore
	if st != nil {
		resultStore = sim.NewDiskCache(st)
	}
	return cluster.New(cluster.Options{
		Workers:        clients,
		ProbeInterval:  probe,
		RequestTimeout: reqTimeout,
		Logger:         log,
		Store:          resultStore,
	})
}

// parseWeights parses the -tenant-weights flag: comma-separated
// name=weight pairs, weights positive integers.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: weight %q for %q must be a positive integer", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}

// httpTimeouts are the server's connection-reaping knobs. A WriteTimeout
// is deliberately absent: SSE live streams write for the lifetime of an
// experiment, and a write deadline would sever them mid-run. The read
// and idle deadlines reap abandoned uploads and idle keep-alives, which
// an open SSE response never trips (the server is writing, not reading).
type httpTimeouts struct {
	read time.Duration // full-request read deadline (headers + body)
	idle time.Duration // keep-alive idle reaping
}

func run(opts service.Options, addr string, timeouts httpTimeouts) error {
	log := opts.Logger
	svc := service.New(opts)
	defer svc.Close()

	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       timeouts.read,
		IdleTimeout:       timeouts.idle,
	}

	// Serve until SIGINT/SIGTERM, then drain: /healthz flips to 503 so
	// load balancers stop routing here, in-flight HTTP requests finish,
	// and only then is the engine torn down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		bi := obs.ReadBuildInfo()
		log.Info("serving", "addr", addr, "version", bi.Version, "go", bi.GoVersion, "pprof", opts.Pprof)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Info("shutting down", "state", "draining")
		svc.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
