package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"jetty/internal/obs"
	"jetty/internal/service"
)

// TestClusterEndToEnd is the cluster smoke CI runs: it builds the real
// jettyd binary, boots one coordinator over two worker processes,
// drives a sweep through the coordinator's ordinary API, SIGKILLs one
// worker mid-flight, and requires the sweep to complete anyway with a
// lint-clean /metrics exposition. Three real processes, real sockets,
// a real kill — no harness shims.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots three daemon processes")
	}
	bin := filepath.Join(t.TempDir(), "jettyd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building jettyd: %v\n%s", err, out)
	}

	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	workerAddrs := []string{freeAddr(), freeAddr()}
	coordAddr := freeAddr()

	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	var workers []*exec.Cmd
	for _, addr := range workerAddrs {
		workers = append(workers, start("-role", "worker", "-addr", addr, "-workers", "2"))
	}
	start("-role", "coordinator", "-addr", coordAddr, "-workers", "1",
		"-cluster-workers", "http://"+workerAddrs[0]+",http://"+workerAddrs[1],
		"-cluster-probe-interval", "100ms")

	client := &http.Client{Timeout: 10 * time.Second}
	waitReady := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := client.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon at %s not ready", addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for _, addr := range workerAddrs {
		waitReady(addr)
	}
	waitReady(coordAddr)
	base := "http://" + coordAddr

	// A sweep big enough to still be in flight when the kill lands:
	// each-mode fused units across repeats, at a scale that runs for
	// seconds, not milliseconds.
	body := `{"name":"e2e","workloads":["Lu","Fmm"],"filters":["EJ-32x4","EJ-16x2"],` +
		`"filter_mode":"each","repeat":4,"scale":2}`
	resp, err := client.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	poll := func() service.SweepStatus {
		t.Helper()
		resp, err := client.Get(base + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cur service.SweepStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		return cur
	}

	// SIGKILL one worker the moment the sweep is demonstrably running —
	// no drain, no goodbye, exactly what a crashed machine looks like.
	killDeadline := time.Now().Add(30 * time.Second)
	for {
		cur := poll()
		if cur.State == "running" || cur.Finished > 0 {
			break
		}
		if cur.State == "done" {
			t.Log("sweep finished before the kill; completion still verified")
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("sweep never started running (state %s)", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := workers[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	doneDeadline := time.Now().Add(120 * time.Second)
	for {
		cur := poll()
		if cur.State == "done" {
			if cur.Fraction != 1 {
				t.Fatalf("done with fraction %v", cur.Fraction)
			}
			break
		}
		if cur.State == "failed" || cur.State == "canceled" {
			t.Fatalf("sweep ended %s after worker kill", cur.State)
		}
		if time.Now().After(doneDeadline) {
			t.Fatalf("sweep stuck in %s after worker kill", cur.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The result endpoint serves the folded sweep.
	resp, err = client.Get(base + "/v1/sweeps/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res service.SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	// Each-mode: one metric per (workload, filter, repeat) cell.
	if want := 2 * 2 * 4; len(res.Metrics) != want {
		t.Fatalf("%d metrics, want %d", len(res.Metrics), want)
	}

	// The coordinator's exposition carries the cluster instruments and
	// passes the in-repo promlint.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(b)
	if problems := obs.Lint(scrape); len(problems) != 0 {
		t.Fatalf("coordinator scrape fails lint: %v", problems)
	}
	for _, want := range []string{
		"jettyd_cluster_workers_configured 2",
		"jettyd_cluster_cells_dispatched_total",
		"jettyd_cluster_workers_alive",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The cluster status endpoint has noticed the dead worker (unless
	// the sweep outran the kill, in which case liveness may lag).
	resp, err = client.Get(base + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var cst struct {
		WorkersConfigured int `json:"workers_configured"`
		CellsDispatched   int `json:"cells_dispatched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cst.WorkersConfigured != 2 || cst.CellsDispatched == 0 {
		t.Errorf("cluster status = %+v", cst)
	}
}

// TestBuildClusterFlagValidation pins the role/worker flag matrix.
func TestBuildClusterFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		role, workers string
		wantErr       bool
	}{
		{"single", "", false},
		{"worker", "", false},
		{"coordinator", "http://localhost:1,http://localhost:2", false},
		{"coordinator", "", true},              // coordinator needs workers
		{"single", "http://localhost:1", true}, // workers need the role
		{"worker", "http://localhost:1", true}, // a worker must not fan out
		{"conductor", "", true},                // unknown role
		{"coordinator", "::not-a-url::", true}, // undialable worker
	} {
		co, err := buildCluster(tc.role, tc.workers, 0, 0, nil, nil)
		if co != nil {
			co.Close()
		}
		if gotErr := err != nil; gotErr != tc.wantErr {
			t.Errorf("buildCluster(%q, %q): err %v, want error %v", tc.role, tc.workers, err, tc.wantErr)
		}
		if err == nil && tc.role == "coordinator" && co == nil {
			t.Errorf("buildCluster(%q, %q) returned no coordinator", tc.role, tc.workers)
		}
	}
}
