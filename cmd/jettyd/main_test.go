package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"jetty/internal/obs"
	"jetty/internal/service"
)

// TestJettydEndToEnd boots the real daemon (the same run() main uses),
// drives one experiment through it, scrapes /metrics twice around the
// load and lints both expositions, then shuts it down with the same
// SIGTERM an orchestrator would send. CI runs this as the live-scrape
// check.
func TestJettydEndToEnd(t *testing.T) {
	// Pick a free port. (Listen/close/reuse has a tiny race window, but
	// the test binary is the only thing binding ports in CI.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	log, err := obs.NewLogger(io.Discard, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- run(service.Options{Workers: 2, Logger: log, Pprof: true}, addr,
			httpTimeouts{read: 2 * time.Minute, idle: 2 * time.Minute})
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	// Wait for the daemon to come up ready.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("jettyd exited during startup: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("jettyd not ready at %s", base)
		}
		time.Sleep(20 * time.Millisecond)
	}

	scrape := func() string {
		t.Helper()
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Request-Id"); got == "" {
			t.Error("scrape response missing X-Request-Id")
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	before := scrape()
	if problems := obs.Lint(before); len(problems) != 0 {
		t.Fatalf("scrape fails lint: %v", problems)
	}

	// One real experiment through the live daemon.
	resp, err := client.Post(base+"/v1/experiments", "application/json",
		strings.NewReader(`{"apps":["Lu"],"scale":0.02,"filters":["EJ-16x2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.ExperimentStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	submitID := resp.Header.Get("X-Request-Id")
	if submitID == "" {
		t.Fatal("submit response missing X-Request-Id")
	}

	for {
		resp, err := client.Get(base + "/v1/experiments/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur service.ExperimentStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == "done" {
			if cur.Jobs[0].Origin != submitID {
				t.Errorf("job origin %q != submit X-Request-Id %q", cur.Jobs[0].Origin, submitID)
			}
			break
		}
		if cur.State == "failed" || cur.State == "canceled" {
			t.Fatalf("experiment ended %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("experiment stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	after := scrape()
	if problems := obs.Lint(after); len(problems) != 0 {
		t.Fatalf("post-load scrape fails lint: %v", problems)
	}
	if problems := obs.CheckMonotone(before, after); len(problems) != 0 {
		t.Errorf("counters went backwards across the run: %v", problems)
	}
	for _, want := range []string{
		"jettyd_http_request_duration_seconds_bucket",
		`jettyd_engine_run_duration_seconds_count{kind="workload",tenant="anonymous"}`,
		`jettyd_tenant_jobs_unfinished{tenant="anonymous"}`,
		"jettyd_engine_queue_depth",
		"jettyd_build_info",
	} {
		if !strings.Contains(after, want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The -pprof mount serves on the live daemon.
	resp, err = client.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}

	// Shut down exactly as an orchestrator would: SIGTERM, then the
	// daemon drains and run() returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run() returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("jettyd did not shut down after SIGTERM")
	}
}

// TestSSESurvivesIdleTimeout is the regression test for the server's
// connection-reaping knobs: IdleTimeout must reap an idle keep-alive
// connection, but must NOT sever an SSE live stream whose consumer reads
// slower than the idle deadline — the stream is an active response, and
// WriteTimeout is deliberately zero.
func TestSSESurvivesIdleTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	log, err := obs.NewLogger(io.Discard, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	const idle = 250 * time.Millisecond
	errc := make(chan error, 1)
	go func() {
		errc <- run(service.Options{Workers: 1, Logger: log}, addr,
			httpTimeouts{read: time.Second, idle: idle})
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("jettyd not ready at %s", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The idle deadline is live: a keep-alive connection left idle after
	// one response is closed by the server.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: %s\r\n\r\n", addr)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("reading keep-alive response: %v", err)
	}
	// Drain until the server closes it (EOF) — must happen well past the
	// idle deadline but well before our read deadline.
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	conn.Close()
	if waited := time.Since(start); waited > 4*time.Second {
		t.Errorf("idle connection not reaped (waited %v, idle timeout %v)", waited, idle)
	}

	// A sampled experiment whose run outlives the idle deadline many
	// times over, consumed slower than the deadline: the stream must keep
	// delivering windows and end with a clean EOF, not a severed
	// connection.
	resp, err := client.Post(base+"/v1/experiments", "application/json",
		// ~1.8s run emitting ~10 windows (30M accesses / 3M interval):
		// slow enough to span many idle deadlines, small enough that a
		// slow consumer still drains it promptly.
		strings.NewReader(`{"apps":["Fmm"],"scale":10,"filters":["EJ-16x2"],"interval":3000000}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.ExperimentStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	live, err := client.Get(base + "/v1/experiments/" + st.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("live attach status %d", live.StatusCode)
	}
	var events []byte
	started := time.Now()
	for {
		n, err := live.Body.Read(buf)
		events = append(events, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("SSE stream severed after %v (idle timeout %v): %v",
				time.Since(started), idle, err)
		}
		time.Sleep(2 * idle) // consume slower than the idle deadline
	}
	if lived := time.Since(started); lived < 2*idle {
		t.Errorf("stream lived only %v — too short to exercise the %v idle deadline", lived, idle)
	}
	if !strings.Contains(string(events), "data:") {
		t.Errorf("stream delivered no SSE events:\n%s", events)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run() returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("jettyd did not shut down after SIGTERM")
	}
}
