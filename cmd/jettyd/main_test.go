package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"jetty/internal/obs"
	"jetty/internal/service"
)

// TestJettydEndToEnd boots the real daemon (the same run() main uses),
// drives one experiment through it, scrapes /metrics twice around the
// load and lints both expositions, then shuts it down with the same
// SIGTERM an orchestrator would send. CI runs this as the live-scrape
// check.
func TestJettydEndToEnd(t *testing.T) {
	// Pick a free port. (Listen/close/reuse has a tiny race window, but
	// the test binary is the only thing binding ports in CI.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	log, err := obs.NewLogger(io.Discard, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- run(service.Options{Workers: 2, Logger: log, Pprof: true}, addr)
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	// Wait for the daemon to come up ready.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("jettyd exited during startup: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("jettyd not ready at %s", base)
		}
		time.Sleep(20 * time.Millisecond)
	}

	scrape := func() string {
		t.Helper()
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Request-Id"); got == "" {
			t.Error("scrape response missing X-Request-Id")
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	before := scrape()
	if problems := obs.Lint(before); len(problems) != 0 {
		t.Fatalf("scrape fails lint: %v", problems)
	}

	// One real experiment through the live daemon.
	resp, err := client.Post(base+"/v1/experiments", "application/json",
		strings.NewReader(`{"apps":["Lu"],"scale":0.02,"filters":["EJ-16x2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.ExperimentStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	submitID := resp.Header.Get("X-Request-Id")
	if submitID == "" {
		t.Fatal("submit response missing X-Request-Id")
	}

	for {
		resp, err := client.Get(base + "/v1/experiments/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur service.ExperimentStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == "done" {
			if cur.Jobs[0].Origin != submitID {
				t.Errorf("job origin %q != submit X-Request-Id %q", cur.Jobs[0].Origin, submitID)
			}
			break
		}
		if cur.State == "failed" || cur.State == "canceled" {
			t.Fatalf("experiment ended %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("experiment stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	after := scrape()
	if problems := obs.Lint(after); len(problems) != 0 {
		t.Fatalf("post-load scrape fails lint: %v", problems)
	}
	if problems := obs.CheckMonotone(before, after); len(problems) != 0 {
		t.Errorf("counters went backwards across the run: %v", problems)
	}
	for _, want := range []string{
		"jettyd_http_request_duration_seconds_bucket",
		`jettyd_engine_run_duration_seconds_count{kind="workload"}`,
		"jettyd_engine_queue_depth",
		"jettyd_build_info",
	} {
		if !strings.Contains(after, want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The -pprof mount serves on the live daemon.
	resp, err = client.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}

	// Shut down exactly as an orchestrator would: SIGTERM, then the
	// daemon drains and run() returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run() returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("jettyd did not shut down after SIGTERM")
	}
}
