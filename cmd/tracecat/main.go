// Command tracecat records synthetic workload traces to the compact JTT1
// format and inspects recorded files — the collect-once/replay-many
// workflow the paper's WWT2 methodology uses.
//
//	tracecat -record -app Ocean -n 100000 -o ocean.jtt   # record
//	tracecat -stat ocean.jtt                              # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"jetty/internal/trace"
	"jetty/internal/workload"
)

func main() {
	record := flag.Bool("record", false, "record a workload trace")
	stat := flag.String("stat", "", "summarize a recorded trace file")
	app := flag.String("app", "Ocean", "workload to record (Table 2 name or Throughput)")
	cpus := flag.Int("cpus", 4, "CPUs")
	n := flag.Uint64("n", 100_000, "references per CPU to record")
	out := flag.String("o", "trace.jtt", "output file for -record")
	flag.Parse()

	var err error
	switch {
	case *record:
		err = doRecord(*app, *cpus, *n, *out)
	case *stat != "":
		err = doStat(*stat)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func doRecord(app string, cpus int, n uint64, out string) error {
	var sp workload.Spec
	if app == "Throughput" || app == "tp" {
		sp = workload.Throughput()
	} else {
		var err error
		sp, err = workload.ByName(app)
		if err != nil {
			return err
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	total, err := trace.Record(f, sp.Source(cpus), n)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d references of %s to %s (%.2f bytes/ref)\n",
		total, sp.Name, out, float64(info.Size())/float64(total))
	return nil
}

func doStat(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	cpus := rd.CPUs()
	counts := make([]uint64, cpus)
	writes := make([]uint64, cpus)
	var minA, maxA uint64 = ^uint64(0), 0
	total := uint64(0)
	for {
		progressed := false
		for cpu := 0; cpu < cpus; cpu++ {
			r, ok := rd.Next(cpu)
			if !ok {
				continue
			}
			progressed = true
			total++
			counts[cpu]++
			if r.Op == trace.Write {
				writes[cpu]++
			}
			if r.Addr < minA {
				minA = r.Addr
			}
			if r.Addr > maxA {
				maxA = r.Addr
			}
		}
		if !progressed {
			break
		}
	}
	if err := rd.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d CPUs, %d references, span [%#x, %#x]\n", path, cpus, total, minA, maxA)
	for cpu := 0; cpu < cpus; cpu++ {
		wf := 0.0
		if counts[cpu] > 0 {
			wf = float64(writes[cpu]) / float64(counts[cpu])
		}
		fmt.Printf("  cpu%d: %d refs, %.1f%% writes\n", cpu, counts[cpu], wf*100)
	}
	return nil
}
