// Command tracecat records, inspects and transforms JTRC trace files —
// the collect-once/replay-many workflow of the paper's WWT2 methodology
// (TRACES.md documents the format; README.md has the end-to-end tour).
//
//	tracecat record -app Ocean -n 100000 -o ocean.jtrc     # workload -> trace
//	tracecat inspect ocean.jtrc                            # header + framing, no decode
//	tracecat stats ocean.jtrc                              # full per-CPU statistics
//	tracecat head -n 10 ocean.jtrc                         # first records as text
//	tracecat convert -gzip -o ocean.jtrc.gz ocean.jtrc     # recompress / rechunk
//	tracecat merge -o both.jtrc ocean.jtrc barnes.jtrc     # concatenate traces
//
// Exit status: 0 on success, 1 on a runtime error (unreadable or corrupt
// file, ...), 2 on a usage error (unknown command, bad flags, missing
// arguments).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"jetty/internal/trace"
	"jetty/internal/workload"
)

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: tracecat <command> [flags] [file...]

commands:
  record   -app <workload> [-cpus N] [-n refs] [-gzip] [-note s] [-o file]
           record a library workload to a trace file
  inspect  <file...>   print header and framing summary (no payload decode)
  stats    [-window N] <file...>   decode fully: per-CPU reference statistics
           (-window adds one summary row per N-record window)
  head     [-n N] <file>   print the first N records as text
  convert  [-gzip] [-chunk N] -o <out> <in>   re-encode a trace
  merge    -o <out> <in...>   concatenate traces with equal CPU counts
  help     print this message

run 'tracecat <command> -h' for the command's flags
`)
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	var err error
	switch cmd {
	case "record":
		err = cmdRecord(args)
	case "inspect":
		err = cmdInspect(args)
	case "stats":
		err = cmdStats(args)
	case "head":
		err = cmdHead(args)
	case "convert":
		err = cmdConvert(args)
	case "merge":
		err = cmdMerge(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "tracecat: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// The FlagSet already printed its defaults.
	case isUsage(err):
		fmt.Fprintf(os.Stderr, "tracecat %s: %v\n", cmd, err)
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "tracecat %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// usageError marks errors that should exit with status 2.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func isUsage(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

// parse runs a subcommand FlagSet, mapping flag errors to usage errors.
func parse(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	return nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	app := fs.String("app", "", "workload to record (any library name, e.g. Ocean, WebServer, tp)")
	cpus := fs.Int("cpus", 4, "CPUs")
	n := fs.Uint64("n", 100_000, "references per CPU to record")
	gz := fs.Bool("gzip", false, "gzip-compress chunk payloads")
	note := fs.String("note", "", "free-form provenance stored in the trace metadata")
	out := fs.String("o", "trace.jtrc", "output file")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *app == "" {
		return usagef("-app is required (try: tracecat record -app Ocean)")
	}
	sp, err := workload.Lookup(*app)
	if err != nil {
		return usageError{err}
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := trace.WriterOptions{Compress: *gz, Meta: trace.Meta{App: sp.Name, Note: *note}}
	total, err := trace.Record(f, sp.Source(*cpus), *n, opts)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d references of %s to %s (%.2f bytes/ref)\n",
		total, sp.Name, *out, float64(info.Size())/float64(total))
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usagef("no trace files given")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sum, serr := trace.Summarize(f)
		info, ierr := f.Stat()
		f.Close()
		if serr != nil {
			return fmt.Errorf("%s: %w", path, serr)
		}
		if ierr != nil {
			return ierr
		}
		compression := "none"
		if sum.Compressed {
			compression = "gzip"
		}
		fmt.Printf("%s: JTRC v%d, %d CPUs, %d records in %d chunks, %s compression, %.2f bytes/ref\n",
			path, trace.Version, sum.CPUs, sum.Records, sum.Chunks, compression,
			float64(info.Size())/float64(max(sum.Records, 1)))
		if sum.Meta.App != "" {
			fmt.Printf("  app:  %s\n", sum.Meta.App)
		}
		if sum.Meta.Note != "" {
			fmt.Printf("  note: %s\n", sum.Meta.Note)
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	window := fs.Uint64("window", 0, "also print one summary row per this many records (0 = whole-trace stats only)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usagef("no trace files given")
	}
	for _, path := range fs.Args() {
		if err := statOne(path, *window); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// winStat accumulates one window of the windowed stats output.
type winStat struct {
	records uint64
	writes  uint64
	blocks  map[uint64]struct{} // distinct 64B blocks touched in the window
}

func (w *winStat) reset() {
	w.records, w.writes = 0, 0
	if w.blocks == nil {
		w.blocks = make(map[uint64]struct{})
	} else {
		clear(w.blocks) // keep the grown buckets across windows
	}
}

func (w *winStat) row(idx uint64, start uint64) {
	wf := 0.0
	if w.records > 0 {
		wf = float64(w.writes) / float64(w.records)
	}
	fmt.Printf("  window %4d  [%9d, %9d)  %8d recs  %5.1f%% writes  %7d blocks (%.1f KB)\n",
		idx, start, start+w.records, w.records, wf*100, len(w.blocks), float64(len(w.blocks))*64/1024)
}

func statOne(path string, window uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	cpus := rd.CPUs()
	counts := make([]uint64, cpus)
	writes := make([]uint64, cpus)
	blocks := make(map[uint64]struct{})
	var minA, maxA uint64 = ^uint64(0), 0

	var win winStat
	var winIdx, winStart uint64
	if window > 0 {
		win.reset()
		fmt.Printf("%s: windowed statistics (%d records per window)\n", path, window)
	}
	for {
		cpu, r, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		counts[cpu]++
		if r.Op == trace.Write {
			writes[cpu]++
		}
		blocks[r.Addr>>6] = struct{}{}
		minA = min(minA, r.Addr)
		maxA = max(maxA, r.Addr)
		if window > 0 {
			win.records++
			if r.Op == trace.Write {
				win.writes++
			}
			win.blocks[r.Addr>>6] = struct{}{}
			if win.records == window {
				win.row(winIdx, winStart)
				winIdx++
				winStart += win.records
				win.reset()
			}
		}
	}
	if window > 0 && win.records > 0 {
		win.row(winIdx, winStart)
	}
	total := rd.Records()
	if total == 0 {
		fmt.Printf("%s: %d CPUs, empty trace\n", path, cpus)
		return nil
	}
	fmt.Printf("%s: %d CPUs, %d references, span [%#x, %#x], %d distinct 64B blocks (%.1f KB touched)\n",
		path, cpus, total, minA, maxA, len(blocks), float64(len(blocks))*64/1024)
	for cpu := 0; cpu < cpus; cpu++ {
		wf := 0.0
		if counts[cpu] > 0 {
			wf = float64(writes[cpu]) / float64(counts[cpu])
		}
		fmt.Printf("  cpu%d: %d refs, %.1f%% writes\n", cpu, counts[cpu], wf*100)
	}
	return nil
}

func cmdHead(args []string) error {
	fs := flag.NewFlagSet("head", flag.ContinueOnError)
	n := fs.Uint64("n", 20, "records to print")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("exactly one trace file required")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	for i := uint64(0); i < *n; i++ {
		cpu, r, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Printf("%8d  cpu%-3d %s  %#x\n", i, cpu, r.Op, r.Addr)
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	gz := fs.Bool("gzip", false, "gzip-compress the output")
	chunk := fs.Int("chunk", 0, "records per chunk (0 = default)")
	out := fs.String("o", "", "output file (required)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *out == "" {
		return usagef("-o is required")
	}
	if fs.NArg() != 1 {
		return usagef("exactly one input trace required")
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	rd, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	return writeOut(*out, rd.CPUs(), trace.WriterOptions{Compress: *gz, ChunkRecords: *chunk, Meta: rd.Meta()},
		func(w *trace.Writer) error {
			_, err := trace.Append(w, rd)
			return err
		})
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	gz := fs.Bool("gzip", false, "gzip-compress the output")
	out := fs.String("o", "", "output file (required)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *out == "" {
		return usagef("-o is required")
	}
	if fs.NArg() < 2 {
		return usagef("at least two input traces required")
	}

	// All inputs must agree on the CPU count (sniffed up front so a
	// mismatch fails before the output file is created).
	var cpus int
	var meta trace.Meta
	for i, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sum, err := trace.Summarize(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if i == 0 {
			cpus, meta = sum.CPUs, sum.Meta
		} else if sum.CPUs != cpus {
			return usagef("%s has %d CPUs, %s has %d: merge needs equal widths",
				fs.Arg(0), cpus, path, sum.CPUs)
		}
	}

	return writeOut(*out, cpus, trace.WriterOptions{Compress: *gz, Meta: meta},
		func(w *trace.Writer) error {
			for _, path := range fs.Args() {
				f, err := os.Open(path)
				if err != nil {
					return err
				}
				rd, err := trace.NewReader(f)
				if err == nil {
					_, err = trace.Append(w, rd)
				}
				f.Close()
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
			}
			return nil
		})
}

// writeOut creates path, streams records into it via fill, and reports.
func writeOut(path string, cpus int, opts trace.WriterOptions, fill func(*trace.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, cpus, opts)
	if err != nil {
		return err
	}
	if err := fill(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d references to %s (%.2f bytes/ref)\n",
		w.Records(), path, float64(info.Size())/float64(max(w.Records(), 1)))
	return nil
}
