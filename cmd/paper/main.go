// Command paper regenerates every table and figure of the JETTY paper
// (HPCA 2001) from the reproduction: the analytical models (Table 1,
// Figure 2), the workload characterization (Tables 2-3), filter coverage
// (Figures 4-5), storage (Table 4), energy (Figure 6), and the text's
// side experiments (non-subblocked L2, 8-way SMP, throughput engine).
//
// Usage:
//
//	paper -exp all                  # everything (default)
//	paper -exp table2 -scale 0.5    # one experiment at half the run length
//	paper -exp fig6 -cpus 8
//
// Experiments: table1 fig2 table2 table3 fig4a fig4b fig5a fig5b table4
// fig6 latency nsb eightway throughput all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"jetty/internal/energy"
	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/tables"
	"jetty/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1 fig2 table2 table3 fig4a fig4b fig5a fig5b table4 fig6 latency nsb eightway throughput all)")
	scale := flag.Float64("scale", 1.0, "workload access-budget scale factor")
	cpus := flag.Int("cpus", 4, "number of CPUs for the suite experiments")
	samples := flag.Int("samples", 11, "local-hit-rate samples for Figure 2")
	workers := flag.Int("workers", 0, "engine workers running app simulations concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*exp, *scale, *cpus, *samples, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

// suiteCache avoids re-simulating when -exp all asks for several reports
// off the same run.
type suiteCache struct {
	results []sim.AppResult
	cfg     smp.Config
}

func run(exp string, scale float64, cpus, samples, workers int) error {
	// All simulation passes go through one engine: the suite's apps run
	// concurrently on its worker pool, and its content-addressed cache
	// means -exp all never simulates the same (app, machine) pair twice.
	runner := sim.NewRunner(engine.New(engine.Options{Workers: workers}))
	defer runner.Engine().Close()

	// Ctrl-C cancels every queued and running simulation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *suiteCache
	suite := func() (*suiteCache, error) {
		if cache != nil {
			return cache, nil
		}
		start := time.Now()
		results, cfg, err := runner.PaperSuite(ctx, cpus, scale)
		if err != nil {
			return nil, err
		}
		fmt.Printf("[suite: %d apps x %d filter configs on a %d-way SMP in %v, %d workers]\n\n",
			len(results), len(cfg.Filters), cpus, time.Since(start).Round(time.Millisecond),
			runner.Engine().Workers())
		cache = &suiteCache{results: results, cfg: cfg}
		return cache, nil
	}

	experiments := []string{exp}
	if exp == "all" {
		experiments = []string{"table1", "fig2", "table2", "table3", "fig4a", "fig4b",
			"fig5a", "fig5b", "table4", "fig6", "latency", "nsb", "eightway", "throughput", "sensitivity"}
	}

	for _, e := range experiments {
		switch e {
		case "table1":
			fmt.Println(sim.Table1Report())

		case "fig2":
			fmt.Println(sim.Fig2Report(samples))

		case "table2":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.Table2Report(s.results))

		case "table3":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.Table3Report(s.results))

		case "fig4a":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.CoverageReport("Figure 4(a): exclude-JETTY coverage",
				s.results, jetty.Fig4aConfigs, "paper: EJ-32x4 best at 45% average"))

		case "fig4b":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.CoverageReport("Figure 4(b): vector-exclude-JETTY coverage",
				s.results, jetty.Fig4bConfigs, "paper: vectors improve slightly over EJ; can lose (set-index shift)"))

		case "fig5a":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.CoverageReport("Figure 5(a): include-JETTY coverage",
				s.results, jetty.Fig5aConfigs, "paper: IJ-10x4x7 best at 57% average, IJ-9x4x7 at 53%"))

		case "fig5b":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.CoverageReport("Figure 5(b): hybrid-JETTY coverage",
				s.results, jetty.Fig5bConfigs, "paper: (IJ-10x4x7,EJ-32x4) best at 75.6% average; (IJ-8x4x7,EJ-16x2) 65%"))

		case "table4":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.Table4Report(s.cfg))

		case "fig6":
			s, err := suite()
			if err != nil {
				return err
			}
			fmt.Println(sim.Fig6Report(s.results, s.cfg))

		case "latency":
			s, err := suite()
			if err != nil {
				return err
			}
			p := sim.PaperLatency()
			fmt.Println("Snoop latency and tag-port pressure (§2.2 analysis, best hybrid):")
			fmt.Printf("  %-14s %18s %18s %12s\n", "app", "base resp (cyc)", "with JETTY (cyc)", "port relief")
			for _, r := range s.results {
				lr, err := sim.LatencyOf(r, "HJ(IJ-10x4x7,EJ-32x4)", p)
				if err != nil {
					return err
				}
				fmt.Printf("  %-14s %18.1f %18.1f %11.1f%%\n",
					r.Spec.Abbrev, lr.BaseSnoopResponse, lr.WithSnoopResponse, lr.TagPortRelief*100)
			}
			fmt.Printf("  worst-case serial penalty: %.2f bus cycles (paper: an insignificant fraction)\n\n",
				sim.Latency(s.results[0].Counts, energyFilterCountsZero, p).WorstCasePenaltyBusCycles)

		case "sensitivity":
			points, err := runner.L2Sensitivity(ctx, "Ocean", scale)
			if err != nil {
				return err
			}
			fmt.Println(sim.SensitivityReport(points, "Ocean"))

		case "nsb":
			results, _, err := runner.PaperSuiteNSB(ctx, cpus, scale)
			if err != nil {
				return err
			}
			fmt.Println(sim.SummaryReport(results, "non-subblocked L2"))
			fmt.Println("  paper: 68% of snoops miss; best HJ coverage 68%")

		case "eightway":
			results, _, err := runner.PaperSuite(ctx, 8, scale)
			if err != nil {
				return err
			}
			fmt.Println(sim.SummaryReport(results, "8-way SMP"))
			fmt.Println("  paper: snoop misses 76.4% of all L2 accesses; coverage 79%")

		case "throughput":
			filters, err := jetty.ParseAll(jetty.Fig5bConfigs)
			if err != nil {
				return err
			}
			cfg := smp.PaperConfig(cpus).WithFilters(filters...)
			fmt.Println("Throughput engine (multiprogrammed), without and with OS process migration:")
			for _, sp := range []workload.Spec{
				workload.Throughput(),
				workload.MigratingThroughput(50_000),
			} {
				res, err := runner.RunApp(ctx, sp.Scale(scale), cfg)
				if err != nil {
					return err
				}
				cov, _ := res.CoverageOf("HJ(IJ-10x4x7,EJ-32x4)")
				fmt.Printf("  %-22s snoop misses %s of snoops, %s of all; best HJ coverage %s\n",
					sp.Name+":", tables.Pct(res.SnoopMissOfSnoops), tables.Pct(res.SnoopMissOfAll), tables.Pct(cov))
			}
			fmt.Println("  paper §1/§2: throughput engines are JETTY's best case; process")
			fmt.Println("  migration is their only (infrequent) source of snoop hits")
			fmt.Println()

		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	if st := runner.Engine().Stats(); st.Submitted > 0 {
		fmt.Printf("[engine: %d submissions, %d simulation passes, %d cache hits, %d coalesced]\n",
			st.Submitted, st.Executed, st.CacheHits, st.Coalesced)
	}
	return nil
}

// energyFilterCountsZero feeds the worst-case-penalty computation, which
// only needs the latency parameters.
var energyFilterCountsZero = energy.FilterCounts{}
