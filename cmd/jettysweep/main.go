// Command jettysweep runs a declarative configuration sweep — the
// cross-product of workloads × machines × JETTY configurations described
// by a JSON spec file — through the shared experiment engine, and renders
// the aggregated paper metrics. Identical cells are deduplicated by the
// engine's content-addressed cache, so re-running a sweep (or overlapping
// sweeps) recomputes nothing.
//
//	jettysweep sweep.json                     # aligned table by filter
//	jettysweep -by workload,filter sweep.json # finer grouping
//	jettysweep -format md sweep.json          # markdown (EXPERIMENTS.md style)
//	jettysweep -format csv -o cells.csv sweep.json   # raw per-cell metrics
//	jettysweep -format json sweep.json        # full result, machine-readable
//	jettysweep -                              # spec on stdin
//
// A minimal spec:
//
//	{
//	  "workloads": ["Barnes", "Ocean", "WebServer"],
//	  "machines":  [{}, {"cpus": 8}, {"l2_bytes": 2097152, "l2_assoc": 8}],
//	  "filters":   ["EJ-32x4", "IJ-9x4x7", "HJ(IJ-10x4x7,EJ-32x4)"],
//	  "scale":     0.2
//	}
//
// Workload entries of the form "trace:path/to/file.jtrc" replay a
// recorded JTRC trace from disk instead of running a generator.
//
// Exit status: 0 on success, 1 on a runtime error, 2 on a usage error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"jetty/internal/engine"
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

func main() {
	format := flag.String("format", "table", "output format: table, md, csv, cells-csv, json")
	by := flag.String("by", "filter", "comma-separated grouping axes: workload, machine, filter")
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	quiet := flag.Bool("q", false, "suppress the progress bar")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jettysweep [flags] <spec.json | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *format, *by, *out, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "jettysweep:", err)
		if isUsage(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks errors that should exit with status 2.
type usageError struct{ error }

func isUsage(err error) bool {
	_, ok := err.(usageError)
	return ok
}

func run(specPath, format, by, outPath string, workers int, quiet bool) error {
	raw, err := readSpec(specPath)
	if err != nil {
		return err
	}
	var spec sweep.Spec
	if err := decodeStrict(raw, &spec); err != nil {
		return usageError{fmt.Errorf("parsing %s: %w", specPath, err)}
	}
	axes, err := sweep.ParseAxes(splitList(by))
	if err != nil {
		return usageError{err}
	}
	switch format {
	case "table", "md", "csv", "cells-csv", "json":
	default:
		return usageError{fmt.Errorf("unknown format %q", format)}
	}

	runner := sim.NewRunner(engine.New(engine.Options{Workers: workers}))
	defer runner.Engine().Close()

	// Ctrl-C cancels every queued and running cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	s, err := sweep.Submit(runner, spec, fileTraceResolver)
	if err != nil {
		return err
	}
	if !quiet {
		msg := fmt.Sprintf("sweep %s: %d cells submitted", label(spec), len(s.Cells()))
		if n := s.FusedGroups(); n > 0 {
			msg += fmt.Sprintf(" (%d fused groups)", n)
		}
		fmt.Fprintln(os.Stderr, msg)
	}

	done := make(chan struct{})
	var res *sweep.Result
	var waitErr error
	go func() {
		defer close(done)
		res, waitErr = s.Wait(ctx)
	}()
	progress(ctx, s, done, quiet)
	<-done
	if waitErr != nil {
		return waitErr
	}
	if !quiet {
		st := s.Status(false)
		fmt.Fprintf(os.Stderr, "sweep %s: %d cells in %v (%d served from cache)\n",
			label(spec), st.Cells, time.Since(start).Round(time.Millisecond), st.CacheHits)
	}

	w := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return render(w, res, format, axes)
}

// label names the sweep in messages.
func label(spec sweep.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "(unnamed)"
}

// readSpec loads the spec file ("-" = stdin).
func readSpec(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// decodeStrict decodes JSON rejecting unknown fields, so a typo in a
// spec key fails loudly instead of silently sweeping the default.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// fileTraceResolver resolves "trace:<path>" entries as JTRC files on
// disk. Read and decode failures surface verbatim, so a corrupt file is
// distinguishable from a wrong path.
func fileTraceResolver(ref string) (sim.TraceInput, error) {
	data, err := os.ReadFile(ref)
	if err != nil {
		return sim.TraceInput{}, err
	}
	return sim.LoadTrace(ref, data)
}

// progress renders a one-line progress bar to stderr until done closes.
func progress(ctx context.Context, s *sweep.Sweep, done <-chan struct{}, quiet bool) {
	if quiet {
		return
	}
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			fmt.Fprint(os.Stderr, "\r\033[K")
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			st := s.Status(false)
			const width = 30
			filled := int(st.Fraction * width)
			bar := strings.Repeat("=", filled) + strings.Repeat(" ", width-filled)
			fmt.Fprintf(os.Stderr, "\r[%s] %d/%d cells, %.1f%% of %s refs",
				bar, st.Finished, st.Cells, st.Fraction*100, millions(st.Total))
		}
	}
}

// millions renders a reference count compactly.
func millions(n uint64) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	}
	return fmt.Sprintf("%dk", n/1000)
}

// render writes the result in the chosen format.
func render(w io.Writer, res *sweep.Result, format string, axes []sweep.Axis) error {
	groups := sweep.GroupBy(res.Metrics, axes...)
	title := "Sweep"
	if res.Spec.Name != "" {
		title = "Sweep " + res.Spec.Name
	}
	switch format {
	case "table":
		_, err := fmt.Fprintln(w, sweep.Report(title, groups, axes))
		return err
	case "md":
		_, err := fmt.Fprintln(w, sweep.Markdown(title, groups, axes))
		return err
	case "csv":
		return sweep.WriteGroupsCSV(w, groups, axes)
	case "cells-csv":
		return sweep.WriteMetricsCSV(w, res.Metrics)
	case "json":
		return sweep.WriteJSON(w, res)
	}
	return fmt.Errorf("unknown format %q", format)
}

// splitList splits a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
