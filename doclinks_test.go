package jetty_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown links [text](target).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// requiredDocs are the documents the repository's cross-reference web
// hangs off; each must exist and be linked from README.md.
var requiredDocs = []string{"DESIGN.md", "EXPERIMENTS.md", "TRACES.md", "PERFORMANCE.md"}

// TestDocLinks verifies that every relative link in the curated docs
// resolves to an existing file, and that the core documents reference
// each other. CI runs it as the docs check. (PAPER.md/PAPERS.md/
// SNIPPETS.md are machine-extracted reference dumps, not curated docs,
// so they are exempt.)
func TestDocLinks(t *testing.T) {
	mds := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "TRACES.md", "PERFORMANCE.md", "ROADMAP.md", "CHANGES.md"}

	for _, md := range mds {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not checked offline
			}
			// Strip an intra-document anchor.
			path, _, _ := strings.Cut(target, "#")
			if path == "" {
				continue // pure anchor within the same file
			}
			if _, err := os.Stat(filepath.FromSlash(path)); err != nil {
				t.Errorf("%s: link target %q does not resolve: %v", md, target, err)
			}
		}
	}

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range requiredDocs {
		if _, err := os.Stat(doc); err != nil {
			t.Errorf("required document %s missing: %v", doc, err)
			continue
		}
		if !strings.Contains(string(readme), doc) {
			t.Errorf("README.md does not reference %s", doc)
		}
	}
}
