package workload

import (
	"testing"

	"jetty/internal/trace"
)

func TestPhasedScenariosValid(t *testing.T) {
	for _, sp := range []Spec{PhasedWebServer(), PhasedOLTP()} {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		if len(sp.Phases) < 3 {
			t.Errorf("%s: %d phases, want a warmup→steady→disturbance splice", sp.Name, len(sp.Phases))
		}
		if sp.MemoryBytes(4) == 0 {
			t.Errorf("%s: zero footprint", sp.Name)
		}
	}
	// Both are reachable through the library.
	for _, key := range []string{"PhasedWebServer", "pw", "phasedoltp", "po"} {
		if _, err := Lookup(key); err != nil {
			t.Errorf("Lookup(%q): %v", key, err)
		}
	}
}

func TestPhasedValidateErrors(t *testing.T) {
	base := PhasedWebServer()

	sp := base
	sp.Phases = append([]Phase(nil), base.Phases...)
	sp.Phases[0].Frac = 0.5 // sum drifts off 1
	if err := sp.Validate(); err == nil {
		t.Error("bad phase fraction sum accepted")
	}

	sp = base
	sp.Phases = append([]Phase(nil), base.Phases...)
	sp.Phases[1].Frac = 0
	if err := sp.Validate(); err == nil {
		t.Error("zero phase fraction accepted")
	}

	sp = base
	sp.Phases = append([]Phase(nil), base.Phases...)
	sp.Phases[0].Spec = base // nested phases
	if err := sp.Validate(); err == nil {
		t.Error("nested phases accepted")
	}

	sp = base
	sp.Phases = append([]Phase(nil), base.Phases...)
	bad := sp.Phases[0].Spec
	bad.Hot.Frac = 99
	sp.Phases[0].Spec = bad
	if err := sp.Validate(); err == nil {
		t.Error("invalid phase mixture accepted")
	}

	sp = base
	sp.Accesses = 0
	if err := sp.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestPhasedDeterminismAndSeedSensitivity(t *testing.T) {
	sp := PhasedWebServer()
	a, b := sp.Source(4), sp.Source(4)
	for i := 0; i < 30000; i++ {
		cpu := i % 4
		ra, _ := a.Next(cpu)
		rb, _ := b.Next(cpu)
		if ra != rb {
			t.Fatalf("ref %d diverged: %v vs %v", i, ra, rb)
		}
	}

	// Perturbing the top-level seed must reach every phase (the sweep
	// repeat axis relies on it).
	sp2 := sp
	sp2.Seed++
	c, d := sp.Source(4), sp2.Source(4)
	perPhase := int(sp.Accesses) / 4 / len(sp.Phases) // per-CPU slice of each phase
	for p := 0; p < len(sp.Phases); p++ {
		same := 0
		for i := 0; i < 1000; i++ {
			rc, _ := c.Next(0)
			rd, _ := d.Next(0)
			if rc == rd {
				same++
			}
		}
		if same > 200 {
			t.Errorf("phase %d: %d/1000 refs identical across seeds", p, same)
		}
		// Skip ahead to the next phase.
		for i := 1000; i < perPhase; i++ {
			c.Next(0)
			d.Next(0)
		}
	}
}

// TestPhasedTransitionsChangeBehaviour drives the phased stream and
// checks the phases are really different: the warmup phase's write
// fraction and streaming share must differ measurably from the steady
// phase's, and the migration phase must touch foreign data sets.
func TestPhasedTransitionsChangeBehaviour(t *testing.T) {
	sp := PhasedWebServer()
	const cpus = 4
	src := sp.Source(cpus).(*phasedSource)
	perCPU := sp.Accesses / cpus

	writeFrac := func(upTo float64) float64 {
		writes, total := 0, 0
		for uint64(total/cpus) < uint64(upTo*float64(perCPU)) {
			r, _ := src.Next(total % cpus)
			if r.Op == trace.Write {
				writes++
			}
			total++
		}
		return float64(writes) / float64(total)
	}
	warm := writeFrac(0.25)   // the warmup phase
	steady := writeFrac(0.75) // the steady phase
	if diff := warm - steady; diff < 0.03 {
		t.Errorf("warmup write fraction %.3f vs steady %.3f: phases indistinguishable", warm, steady)
	}

	// The migration phase rotates processes onto foreign data sets.
	mig := src.gens[2]
	crossed := false
	for i := 0; i < 200000 && !crossed; i++ {
		cpu := i % cpus
		r, _ := mig.next(cpu)
		for other := 0; other < cpus; other++ {
			if other != cpu && crossedInto(mig, other, r.Addr) {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Error("migration phase never touched a foreign data set")
	}
}

// TestPhasedSharesOnePageTable pins the address-space splice: a virtual
// page first touched during warmup keeps its physical frame when a later
// phase touches it (one first-touch table serves the whole scenario).
func TestPhasedSharesOnePageTable(t *testing.T) {
	sp := PhasedWebServer()
	src := sp.Source(2).(*phasedSource)
	if len(src.gens) != 3 {
		t.Fatalf("%d phase generators", len(src.gens))
	}
	for i := 1; i < len(src.gens); i++ {
		if src.gens[i].pt != src.gens[0].pt {
			t.Fatal("phase generators do not share the page table")
		}
	}

	// Boundaries: cumulative per-CPU counts matching the fractions.
	perCPU := float64(sp.Accesses) / 2
	if got, want := src.bounds[0], uint64(sp.Phases[0].Frac*perCPU); got != want {
		t.Errorf("bound 0 = %d, want %d", got, want)
	}
	if src.bounds[len(src.bounds)-1] != ^uint64(0) {
		t.Error("last phase is not unbounded")
	}
}

// TestPhasedScaleMovesBoundaries pins that Scale shrinks phase
// boundaries with the budget (golden tests run at reduced scale).
func TestPhasedScaleMovesBoundaries(t *testing.T) {
	sp := PhasedWebServer()
	full := sp.Source(4).(*phasedSource)
	half := sp.Scale(0.5).Source(4).(*phasedSource)
	if half.bounds[0] >= full.bounds[0] {
		t.Errorf("scaled bound %d not below full bound %d", half.bounds[0], full.bounds[0])
	}
}
