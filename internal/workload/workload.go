package workload

import (
	"fmt"
	"math/rand"

	"jetty/internal/trace"
)

// Region describes one private working-set tier (per CPU).
type Region struct {
	Frac   float64 // fraction of references
	Bytes  uint64  // region size per CPU
	Stride int     // >0: sequential walk with this stride; 0: uniform random
	// Burst is how many consecutive references reuse the drawn line
	// before a new draw (record-processing locality; 0 or 1 = none).
	// Only meaningful for random (Stride == 0) tiers.
	Burst int
}

// PairSharing describes producer/consumer sharing: CPU i streams writes
// into its pair buffer; CPU (i+1) mod N reads the same buffer a fixed lag
// behind — the dominant SPLASH sharing pattern (§3.1).
type PairSharing struct {
	Frac     float64 // fraction of references
	Bytes    uint64  // pair buffer size
	LagBytes uint64  // consumer distance behind the producer
	Stride   int
}

// MigratorySharing describes lock-protected records that hop processor to
// processor (small critical sections).
type MigratorySharing struct {
	Frac    float64
	Records int // 64-byte records in the region
	Hold    int // consecutive region references before the record advances
}

// WideSharing describes widely-read, rarely-written data: reads replicate
// copies everywhere; each write invalidates them all.
type WideSharing struct {
	Frac      float64
	Bytes     uint64
	WriteFrac float64
}

// ZipfSharing describes a shared region whose 64-byte blocks are
// referenced with zipfian popularity: a few hot blocks absorb most of
// the traffic (every CPU contends on them) while a long tail is touched
// rarely. This is the sharing signature of scale-out server workloads —
// hot web objects, hot database rows — rather than of the SPLASH
// scientific suite, and it is what the scenario workloads are built on.
type ZipfSharing struct {
	Frac      float64
	Bytes     uint64  // region size (64-byte blocks)
	S         float64 // zipf exponent, must be > 1; larger = more skewed
	WriteFrac float64
}

// Spec is the behavioral signature of one application.
type Spec struct {
	Name   string
	Abbrev string

	// Accesses is the reference budget (all CPUs) at Scale == 1.
	Accesses uint64
	// WriteFrac applies to the private tiers.
	WriteFrac float64

	Hot    Region // L1-resident tier
	Warm   Region // L2-resident tier
	Stream Region // beyond-L2 tier (capacity/compulsory misses)

	Pair PairSharing
	Mig  MigratorySharing
	Wide WideSharing
	Zipf ZipfSharing

	// MigrationPeriod, when nonzero, rotates process placement every
	// that-many references per CPU: CPU i starts working on the data set
	// CPU i+1 owned, modeling OS process migration — the paper's §2
	// explanation for the rare snoop hits of throughput workloads. The
	// data stays put; the compute moves.
	MigrationPeriod uint64

	// Phases, when non-empty, makes this a phased scenario: the run
	// splices the phase specs in order, each consuming its Frac of the
	// access budget, all sharing one physical address space (see
	// phased.go). The top-level mixture fields are then unused; only
	// Name, Abbrev, Accesses and Seed apply.
	Phases []Phase `json:",omitempty"`

	Seed int64
}

// Validate reports specification errors.
func (sp Spec) Validate() error {
	if len(sp.Phases) > 0 {
		return sp.validatePhases()
	}
	total := sp.Hot.Frac + sp.Warm.Frac + sp.Stream.Frac + sp.Pair.Frac + sp.Mig.Frac + sp.Wide.Frac + sp.Zipf.Frac
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %s: fractions sum to %.4f, want 1", sp.Name, total)
	}
	if sp.Accesses == 0 {
		return fmt.Errorf("workload %s: zero access budget", sp.Name)
	}
	if sp.WriteFrac < 0 || sp.WriteFrac > 1 || sp.Wide.WriteFrac < 0 || sp.Wide.WriteFrac > 1 {
		return fmt.Errorf("workload %s: write fractions out of range", sp.Name)
	}
	for _, r := range []Region{sp.Hot, sp.Warm, sp.Stream} {
		if r.Frac > 0 && r.Bytes == 0 {
			return fmt.Errorf("workload %s: region with references but no bytes", sp.Name)
		}
	}
	if sp.Pair.Frac > 0 && (sp.Pair.Bytes == 0 || sp.Pair.LagBytes >= sp.Pair.Bytes) {
		return fmt.Errorf("workload %s: bad pair sharing geometry", sp.Name)
	}
	if sp.Mig.Frac > 0 && (sp.Mig.Records <= 0 || sp.Mig.Hold <= 0) {
		return fmt.Errorf("workload %s: bad migratory geometry", sp.Name)
	}
	if sp.Wide.Frac > 0 && sp.Wide.Bytes == 0 {
		return fmt.Errorf("workload %s: wide sharing without bytes", sp.Name)
	}
	if sp.Zipf.Frac > 0 {
		if sp.Zipf.Bytes < migRecordBytes {
			return fmt.Errorf("workload %s: zipf sharing needs at least one 64-byte block", sp.Name)
		}
		if sp.Zipf.S <= 1 {
			return fmt.Errorf("workload %s: zipf exponent %.3f must be > 1", sp.Name, sp.Zipf.S)
		}
		if sp.Zipf.WriteFrac < 0 || sp.Zipf.WriteFrac > 1 {
			return fmt.Errorf("workload %s: zipf write fraction out of range", sp.Name)
		}
	}
	return nil
}

// MemoryBytes returns the total allocated footprint (the MA column of
// Table 2) for an nCPU machine. Phases share one address space with
// fixed region bases, so a phased scenario's footprint is the union:
// the per-region maximum across phases, not a sum (and not the largest
// single phase — different phases may dominate different regions).
func (sp Spec) MemoryBytes(cpus int) uint64 {
	if len(sp.Phases) > 0 {
		var u regionBytes
		for _, ph := range sp.Phases {
			u.union(ph.Spec.regions())
		}
		return u.total(cpus)
	}
	return sp.regions().total(cpus)
}

// regionBytes is a spec's footprint split by region (only regions with
// references count).
type regionBytes struct {
	hot, warm, stream, pair uint64 // per CPU
	mig, wide, zipf         uint64 // shared
}

func (sp Spec) regions() regionBytes {
	r := regionBytes{hot: sp.Hot.Bytes, warm: sp.Warm.Bytes, stream: sp.Stream.Bytes}
	if sp.Pair.Frac > 0 {
		r.pair = sp.Pair.Bytes
	}
	if sp.Mig.Frac > 0 {
		r.mig = uint64(sp.Mig.Records) * migRecordBytes
	}
	if sp.Wide.Frac > 0 {
		r.wide = sp.Wide.Bytes
	}
	if sp.Zipf.Frac > 0 {
		r.zipf = sp.Zipf.Bytes
	}
	return r
}

func (r *regionBytes) union(o regionBytes) {
	r.hot = max(r.hot, o.hot)
	r.warm = max(r.warm, o.warm)
	r.stream = max(r.stream, o.stream)
	r.pair = max(r.pair, o.pair)
	r.mig = max(r.mig, o.mig)
	r.wide = max(r.wide, o.wide)
	r.zipf = max(r.zipf, o.zipf)
}

func (r regionBytes) total(cpus int) uint64 {
	return uint64(cpus)*(r.hot+r.warm+r.stream+r.pair) + r.wide + r.mig + r.zipf
}

// migRecordBytes is the size of one migratory record (one L2 block).
const migRecordBytes = 64

// regionGap pads region bases apart so tiers never overlap.
const regionGap = 1 << 26 // 64 MB

// Source builds the deterministic reference generator for an nCPU run.
// Each CPU's stream is infinite; wrap it with trace.NewLimit or use the
// simulator's maxRefs to bound a run. A phased spec returns the
// phase-splicing source (see phased.go).
func (sp Spec) Source(cpus int) trace.Source {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	if len(sp.Phases) > 0 {
		return sp.phasedSource(cpus)
	}
	return sp.newGenerator(cpus, newPageTable())
}

// newGenerator builds one mixture generator over the given (possibly
// shared) page table. The caller has validated the spec.
func (sp Spec) newGenerator(cpus int, pt *pageTable) *generator {
	g := &generator{spec: sp, cpus: cpus}
	g.rng = make([]*rand.Rand, cpus)
	g.stream = make([]uint64, cpus)
	g.prod = make([]uint64, cpus)
	g.burst = make([][3]burstState, cpus)
	g.served = make([]uint64, cpus)
	g.pt = pt
	for i := 0; i < cpus; i++ {
		g.rng[i] = rand.New(rand.NewSource(sp.Seed + int64(i)*7919))
	}
	// Region layout: per-CPU tiers, per-CPU pair buffers, then the shared
	// regions, spaced far apart. Each region is additionally offset by a
	// distinct page-colored skew so regions do not all collide in the same
	// L1/L2 sets (a real allocator spreads them too).
	idx := 0
	nextBase := func() uint64 {
		base := uint64(idx+1)*regionGap + uint64(idx*4813)*64
		idx++
		return base
	}
	g.hotBase = make([]uint64, cpus)
	g.warmBase = make([]uint64, cpus)
	g.streamBase = make([]uint64, cpus)
	g.pairBase = make([]uint64, cpus)
	for i := 0; i < cpus; i++ {
		g.hotBase[i] = nextBase()
		g.warmBase[i] = nextBase()
		g.streamBase[i] = nextBase()
		g.pairBase[i] = nextBase()
	}
	g.migBase = nextBase()
	g.wideBase = nextBase()
	g.zipfBase = nextBase()
	if sp.Zipf.Frac > 0 {
		g.zipf = make([]*rand.Zipf, cpus)
		blocks := sp.Zipf.Bytes / migRecordBytes
		for i := 0; i < cpus; i++ {
			g.zipf[i] = rand.NewZipf(g.rng[i], sp.Zipf.S, 1, blocks-1)
		}
	}
	return g
}

// generator implements trace.Source.
type generator struct {
	spec Spec
	cpus int
	rng  []*rand.Rand

	hotBase, warmBase, streamBase, pairBase []uint64
	migBase, wideBase, zipfBase             uint64
	zipf                                    []*rand.Zipf // per-CPU zipf draws, nil unless Zipf.Frac > 0

	stream []uint64 // per-data-set stream walk offset
	prod   []uint64 // per-CPU pair-producer offset
	migN   uint64   // global migratory progress counter
	served []uint64 // per-CPU reference count (drives process migration)

	burst [][3]burstState // per-CPU burst state for hot/warm/stream tiers

	// pt is the first-touch page table; phase generators of one phased
	// scenario share a single table so all phases live in one physical
	// address space (see pageTable).
	pt *pageTable
}

// pageBits is the simulated page size (4 KB).
const pageBits = 12

// pageColors is the number of page colors preserved by the allocator:
// one per page-sized slot of the 64 KB direct-mapped L1.
const pageColors = 16

// pageTable is the first-touch page table: virtual 4 KB pages are
// assigned physical frames in touch order, as an OS allocator would.
// This compacts and interleaves all CPUs' data in physical space — the
// address distribution the snooped bus actually sees (WWT2 traces are
// physical). Without it, the widely-spaced virtual regions would hand
// the include-JETTY artificially separable high address bits.
//
// Allocation is page-colored (frame color == virtual color), as
// SPARC-era operating systems did, so the direct-mapped L1's conflict
// behaviour matches the virtual layout instead of suffering random
// page-slot collisions.
//
// One table serves one run: the phase generators of a phased scenario
// share it, so a virtual page touched during warmup keeps its frame in
// the steady phase — later phases genuinely rewalk warm data instead of
// aliasing fresh frames over it.
type pageTable struct {
	table    map[uint64]uint64
	perColor [pageColors]uint64
}

func newPageTable() *pageTable {
	return &pageTable{table: make(map[uint64]uint64)}
}

// translate maps a virtual address to its physical address, assigning a
// color-preserving frame on first touch.
func (pt *pageTable) translate(va uint64) uint64 {
	page := va >> pageBits
	frame, ok := pt.table[page]
	if !ok {
		color := page % pageColors
		frame = pt.perColor[color]*pageColors + color
		pt.perColor[color]++
		pt.table[page] = frame
	}
	return frame<<pageBits | va&((1<<pageBits)-1)
}

// burstState tracks record-reuse bursts within one random tier.
type burstState struct {
	addr uint64
	left int
}

// CPUs implements trace.Source.
func (g *generator) CPUs() int { return g.cpus }

// Next implements trace.Source. Streams are infinite (ok is always true);
// run length is bounded by the caller. References are generated in the
// virtual region layout and issued as first-touch physical addresses.
func (g *generator) Next(cpu int) (trace.Ref, bool) {
	ref, ok := g.next(cpu)
	ref.Addr = g.pt.translate(ref.Addr)
	return ref, ok
}

func (g *generator) next(cpu int) (trace.Ref, bool) {
	sp := &g.spec
	r := g.rng[cpu]
	x := r.Float64()

	// Process migration: after each period the process running on this
	// CPU works on the data set a neighbouring CPU populated. The walk
	// and burst state follow the data, not the processor.
	ds := cpu
	if sp.MigrationPeriod > 0 {
		g.served[cpu]++
		ds = (cpu + int(g.served[cpu]/sp.MigrationPeriod)) % g.cpus
	}

	switch {
	case x < sp.Hot.Frac:
		return g.privateRef(cpu, sp.Hot, g.hotBase[ds], nil, &g.burst[ds][0]), true

	case x < sp.Hot.Frac+sp.Warm.Frac:
		return g.privateRef(cpu, sp.Warm, g.warmBase[ds], nil, &g.burst[ds][1]), true

	case x < sp.Hot.Frac+sp.Warm.Frac+sp.Stream.Frac:
		return g.privateRef(cpu, sp.Stream, g.streamBase[ds], &g.stream[ds], &g.burst[ds][2]), true

	case x < sp.Hot.Frac+sp.Warm.Frac+sp.Stream.Frac+sp.Pair.Frac:
		return g.pairRef(cpu), true

	case x < sp.Hot.Frac+sp.Warm.Frac+sp.Stream.Frac+sp.Pair.Frac+sp.Mig.Frac:
		return g.migRef(cpu), true

	case x < sp.Hot.Frac+sp.Warm.Frac+sp.Stream.Frac+sp.Pair.Frac+sp.Mig.Frac+sp.Zipf.Frac:
		return g.zipfRef(cpu), true

	default:
		// Wide is the last arm so it also absorbs float rounding slop in
		// the fraction cascade, exactly as it always has — keeping every
		// pre-Zipf spec's stream bit-identical.
		return g.wideRef(cpu), true
	}
}

// privateRef generates a reference into a per-CPU tier. Sequential tiers
// use the walk pointer; random tiers draw uniformly, optionally reusing
// the drawn line for Burst consecutive references (record locality).
func (g *generator) privateRef(cpu int, reg Region, regionBase uint64, walk *uint64, b *burstState) trace.Ref {
	r := g.rng[cpu]
	var off uint64
	switch {
	case reg.Stride > 0 && walk != nil:
		*walk += uint64(reg.Stride)
		if *walk >= reg.Bytes {
			*walk = 0
		}
		off = *walk
	case b != nil && reg.Burst > 1:
		if b.left <= 0 {
			b.addr = alignDown(uint64(r.Int63n(int64(reg.Bytes))), 32)
			b.left = reg.Burst
		}
		b.left--
		off = b.addr + uint64(r.Intn(4))*8 // words within the drawn line
	default:
		off = alignDown(uint64(r.Int63n(int64(reg.Bytes))), 8)
	}
	op := trace.Read
	if r.Float64() < g.spec.WriteFrac {
		op = trace.Write
	}
	return trace.Ref{Op: op, Addr: regionBase + off}
}

// pairRef implements producer/consumer sharing: cpu produces into its own
// buffer and consumes from its predecessor's, a fixed lag behind that
// producer's write front.
func (g *generator) pairRef(cpu int) trace.Ref {
	sp := &g.spec
	r := g.rng[cpu]
	stride := uint64(sp.Pair.Stride)
	if stride == 0 {
		stride = 8
	}
	if r.Intn(2) == 0 {
		// Produce.
		g.prod[cpu] += stride
		if g.prod[cpu] >= sp.Pair.Bytes {
			g.prod[cpu] = 0
		}
		return trace.Ref{Op: trace.Write, Addr: g.pairBase[cpu] + g.prod[cpu]}
	}
	// Consume from the predecessor's buffer, LagBytes behind its front.
	prev := (cpu + g.cpus - 1) % g.cpus
	front := g.prod[prev]
	off := (front + sp.Pair.Bytes - sp.Pair.LagBytes) % sp.Pair.Bytes
	// Jitter within a cache line to look like record reads.
	off = alignDown(off, 8) + uint64(r.Intn(4))*8%32
	if off >= sp.Pair.Bytes {
		off = 0
	}
	return trace.Ref{Op: trace.Read, Addr: g.pairBase[prev] + off}
}

// migRef implements migratory records: the active record advances every
// Hold references; each toucher reads and writes it (read-modify-write
// critical sections), so ownership hops between CPUs.
func (g *generator) migRef(cpu int) trace.Ref {
	sp := &g.spec
	r := g.rng[cpu]
	g.migN++
	rec := (g.migN / uint64(sp.Mig.Hold)) % uint64(sp.Mig.Records)
	addr := g.migBase + rec*migRecordBytes + uint64(r.Intn(4))*8
	op := trace.Read
	if r.Intn(2) == 0 {
		op = trace.Write
	}
	return trace.Ref{Op: op, Addr: addr}
}

// wideRef implements widely-shared data: mostly reads (copies spread to
// every CPU), rare writes (every copy invalidated).
func (g *generator) wideRef(cpu int) trace.Ref {
	sp := &g.spec
	r := g.rng[cpu]
	if sp.Wide.Bytes == 0 {
		// Rounding slop reached the default arm of a spec without wide
		// sharing: fold it into the hot tier.
		return g.privateRef(cpu, sp.Hot, g.hotBase[cpu], nil, &g.burst[cpu][0])
	}
	off := alignDown(uint64(r.Int63n(int64(sp.Wide.Bytes))), 8)
	op := trace.Read
	if r.Float64() < sp.Wide.WriteFrac {
		op = trace.Write
	}
	return trace.Ref{Op: op, Addr: g.wideBase + off}
}

// zipfRef implements zipf-popular shared data: block popularity follows
// a zipf law, so every CPU hammers the same few hot blocks (coherence
// contention) while the tail provides cold sharing misses.
func (g *generator) zipfRef(cpu int) trace.Ref {
	r := g.rng[cpu]
	block := g.zipf[cpu].Uint64()
	off := block*migRecordBytes + uint64(r.Intn(8))*8
	op := trace.Read
	if r.Float64() < g.spec.Zipf.WriteFrac {
		op = trace.Write
	}
	return trace.Ref{Op: op, Addr: g.zipfBase + off}
}

func alignDown(v, a uint64) uint64 {
	if a == 0 {
		return v
	}
	return v - v%a
}
