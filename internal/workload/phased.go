package workload

import (
	"fmt"

	"jetty/internal/trace"
)

// Phased scenarios: a run whose behavioral signature changes over time.
// Every stationary Spec in the library produces one statistical mixture
// for the whole run; real server workloads move through phases — a cold
// warmup while working sets fill, a long steady state, an operational
// disturbance like process migration — and JETTY's coverage and energy
// savings move with them. A phased Spec splices existing mixtures in
// sequence: each phase owns a fraction of the access budget, and all
// phases share one first-touch page table, so data touched in an early
// phase keeps its physical frames when a later phase rewalks it (warmup
// really warms the caches the steady phase then hits).
//
// Phase boundaries are fixed in per-CPU references, so a phased stream
// is as deterministic, traceable and replayable as any other: the
// interval-sampling timeline of a phased run (internal/metrics) shows
// the phase transitions directly, which is what the timeline golden
// test pins.

// Phase is one segment of a phased scenario.
type Phase struct {
	// Name labels the phase ("warmup", "steady", ...).
	Name string `json:"name"`
	// Frac is the share of the scenario's access budget this phase
	// consumes. Fractions must sum to 1; the last phase absorbs any
	// rounding and keeps generating if the run outlives the budget.
	Frac float64 `json:"frac"`
	// Spec is the behavioral signature during the phase. Its Accesses is
	// ignored (the parent budget and Frac size the phase); its Seed is
	// combined with the parent seed so sweep-style seed perturbation
	// reaches every phase. Nested phases are not allowed.
	Spec Spec `json:"spec"`
}

// validatePhases checks a phased spec (Validate dispatches here).
func (sp Spec) validatePhases() error {
	if sp.Accesses == 0 {
		return fmt.Errorf("workload %s: zero access budget", sp.Name)
	}
	total := 0.0
	for i, ph := range sp.Phases {
		if ph.Frac <= 0 {
			return fmt.Errorf("workload %s: phase %d (%s) has non-positive fraction %v",
				sp.Name, i, ph.Name, ph.Frac)
		}
		total += ph.Frac
		if len(ph.Spec.Phases) > 0 {
			return fmt.Errorf("workload %s: phase %d (%s) nests phases", sp.Name, i, ph.Name)
		}
		inner := ph.Spec
		if inner.Accesses == 0 {
			inner.Accesses = sp.Accesses // unused by phases; satisfy the mixture check
		}
		if err := inner.Validate(); err != nil {
			return fmt.Errorf("workload %s: phase %d (%s): %w", sp.Name, i, ph.Name, err)
		}
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %s: phase fractions sum to %.4f, want 1", sp.Name, total)
	}
	return nil
}

// phasedSource builds the phase-splicing source: one generator per
// phase over a shared page table, switched per CPU at fixed reference
// boundaries.
func (sp Spec) phasedSource(cpus int) trace.Source {
	pt := newPageTable()
	p := &phasedSource{
		cpus:   cpus,
		gens:   make([]*generator, len(sp.Phases)),
		bounds: make([]uint64, len(sp.Phases)),
		phase:  make([]int, cpus),
		served: make([]uint64, cpus),
	}
	perCPU := float64(sp.Accesses) / float64(cpus)
	cum := 0.0
	for i, ph := range sp.Phases {
		eff := ph.Spec
		eff.Accesses = sp.Accesses
		// Combine seeds so perturbing the scenario seed (sweep repeats)
		// moves every phase, and same-seed phases still diverge.
		eff.Seed = sp.Seed + ph.Spec.Seed + int64(i+1)*104_729
		p.gens[i] = eff.newGenerator(cpus, pt)
		cum += ph.Frac
		p.bounds[i] = uint64(cum * perCPU)
	}
	// The last phase absorbs rounding and any references past the budget
	// (streams are infinite; the simulator bounds the run).
	p.bounds[len(p.bounds)-1] = ^uint64(0)
	return p
}

// phasedSource splices per-phase generators. Each CPU advances through
// the phases independently at the same per-CPU reference boundaries; the
// simulator's round-robin interleave keeps the CPUs in lockstep, so
// transitions are machine-wide in practice.
type phasedSource struct {
	cpus   int
	gens   []*generator
	bounds []uint64 // cumulative per-CPU boundary per phase (last = max)
	phase  []int    // per-CPU current phase index
	served []uint64 // per-CPU references served
}

// CPUs implements trace.Source.
func (p *phasedSource) CPUs() int { return p.cpus }

// Next implements trace.Source.
func (p *phasedSource) Next(cpu int) (trace.Ref, bool) {
	for p.phase[cpu]+1 < len(p.gens) && p.served[cpu] >= p.bounds[p.phase[cpu]] {
		p.phase[cpu]++
	}
	p.served[cpu]++
	return p.gens[p.phase[cpu]].Next(cpu)
}
