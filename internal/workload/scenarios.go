package workload

import (
	"fmt"
	"strings"
)

// Scenario workloads: named signatures beyond the paper's Table 2 suite.
// The paper's own evaluation is scientific (SPLASH-2); these model the
// server-side sharing patterns JETTY was pitched at — "SMP servers" —
// where filter effectiveness hinges on how much of the traffic is
// genuinely shared. Each is seeded and deterministic like the Table 2
// specs, so every scenario run is reproducible and cacheable, and each
// can feed a simulation directly or be exported to a trace file
// (`tracecat record -app <name>`).

// WebServer models a scale-out web/content server: per-connection
// private state, zipf-popular read-mostly content (hot objects cached
// everywhere, rare invalidating updates), request hand-off queues
// between CPUs, and streaming log writes.
func WebServer() Spec {
	return Spec{
		Name: "WebServer", Abbrev: "web", Accesses: 1_200_000, WriteFrac: 0.25,
		Hot:    Region{Frac: 0.70, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.10, Bytes: 128 << 10, Burst: 6},
		Stream: Region{Frac: 0.05, Bytes: 4 << 20, Stride: 16},
		Pair:   PairSharing{Frac: 0.02, Bytes: 128 << 10, LagBytes: 4096, Stride: 16},
		Zipf:   ZipfSharing{Frac: 0.13, Bytes: 2 << 20, S: 1.2, WriteFrac: 0.02},
		Seed:   201,
	}
}

// Database models an OLTP database node: a private buffer-pool working
// set, zipf-hot rows under read-modify-write (ownership ping-pongs on
// the hottest rows), migratory lock records, table-scan streaming, and
// a widely-read catalog.
func Database() Spec {
	return Spec{
		Name: "Database", Abbrev: "db", Accesses: 1_200_000, WriteFrac: 0.30,
		Hot:    Region{Frac: 0.60, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.15, Bytes: 256 << 10, Burst: 8},
		Stream: Region{Frac: 0.05, Bytes: 16 << 20, Stride: 16},
		Zipf:   ZipfSharing{Frac: 0.12, Bytes: 4 << 20, S: 1.3, WriteFrac: 0.35},
		Mig:    MigratorySharing{Frac: 0.05, Records: 128, Hold: 12},
		Wide:   WideSharing{Frac: 0.03, Bytes: 16 << 10, WriteFrac: 0.01},
		Seed:   202,
	}
}

// Pipeline models a staged software pipeline: each CPU produces into a
// ring buffer its successor consumes — the heaviest producer/consumer
// signature in the library (most snoops hit remotely, JETTY's worst
// case).
func Pipeline() Spec {
	return Spec{
		Name: "Pipeline", Abbrev: "pl", Accesses: 1_000_000, WriteFrac: 0.30,
		Hot:    Region{Frac: 0.55, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.10, Bytes: 96 << 10, Burst: 6},
		Stream: Region{Frac: 0.05, Bytes: 2 << 20, Stride: 16},
		Pair:   PairSharing{Frac: 0.30, Bytes: 256 << 10, LagBytes: 8192, Stride: 16},
		Seed:   203,
	}
}

// Migratory models lock-heavy record processing: records hop CPU to CPU
// under critical sections, with a widely-read index on the side.
func Migratory() Spec {
	return Spec{
		Name: "Migratory", Abbrev: "mg", Accesses: 1_000_000, WriteFrac: 0.30,
		Hot:  Region{Frac: 0.60, Bytes: 16 << 10},
		Warm: Region{Frac: 0.15, Bytes: 128 << 10, Burst: 8},
		Mig:  MigratorySharing{Frac: 0.20, Records: 256, Hold: 16},
		Wide: WideSharing{Frac: 0.05, Bytes: 16 << 10, WriteFrac: 0.02},
		Seed: 204,
	}
}

// PhasedWebServer models a web server's life cycle as three spliced
// phases over one address space: a cold warmup (streaming fills and
// little sharing while content caches populate), the steady serving mix
// of WebServer (zipf-hot shared objects), then an operational reshuffle
// where the OS migrates processes across CPUs. Snoop-filter coverage is
// strongly time-dependent here — high while warmup's misses are
// compulsory, settling as sharing develops, dipping when migration
// scrambles locality — which is exactly what the interval-sampling
// timeline (and its golden test) is built to expose.
func PhasedWebServer() Spec {
	warmup := Spec{
		Name: "warmup", WriteFrac: 0.35,
		Hot:    Region{Frac: 0.30, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.20, Bytes: 128 << 10, Burst: 4},
		Stream: Region{Frac: 0.50, Bytes: 6 << 20, Stride: 16},
		Seed:   2051,
	}
	steady := WebServer()
	steady.Name = "steady"
	migration := WebServer()
	migration.Name = "migration"
	migration.MigrationPeriod = 25_000
	return Spec{
		Name: "PhasedWebServer", Abbrev: "pw", Accesses: 1_500_000,
		Phases: []Phase{
			{Name: "warmup", Frac: 0.25, Spec: warmup},
			{Name: "steady", Frac: 0.50, Spec: steady},
			{Name: "migration", Frac: 0.25, Spec: migration},
		},
		Seed: 205,
	}
}

// PhasedOLTP models a database node's life cycle: a write-heavy bulk
// load (table streaming, almost no sharing), the steady OLTP mix of
// Database (zipf-hot rows under read-modify-write), then a failover
// rebalance with heavier lock migration and process movement.
func PhasedOLTP() Spec {
	load := Spec{
		Name: "bulkload", WriteFrac: 0.60,
		Hot:    Region{Frac: 0.25, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.15, Bytes: 256 << 10, Burst: 8},
		Stream: Region{Frac: 0.60, Bytes: 16 << 20, Stride: 16},
		Seed:   2061,
	}
	steady := Database()
	steady.Name = "steady"
	rebalance := Database()
	rebalance.Name = "rebalance"
	rebalance.MigrationPeriod = 20_000
	rebalance.Mig = MigratorySharing{Frac: 0.10, Records: 256, Hold: 8}
	rebalance.Zipf.Frac = 0.07 // the migratory share comes out of the hot rows
	return Spec{
		Name: "PhasedOLTP", Abbrev: "po", Accesses: 1_500_000,
		Phases: []Phase{
			{Name: "bulkload", Frac: 0.30, Spec: load},
			{Name: "steady", Frac: 0.45, Spec: steady},
			{Name: "rebalance", Frac: 0.25, Spec: rebalance},
		},
		Seed: 206,
	}
}

// DefaultMigrationPeriod is the MigratingThroughput period used for the
// library's named "Throughput+migration" entry.
const DefaultMigrationPeriod = 100_000

// Scenarios returns the scenario workloads, including the throughput
// engines of the paper's §1/§2 discussion.
func Scenarios() []Spec {
	return []Spec{
		Throughput(),
		MigratingThroughput(DefaultMigrationPeriod),
		WebServer(),
		Database(),
		Pipeline(),
		Migratory(),
		PhasedWebServer(),
		PhasedOLTP(),
	}
}

// Library returns every named workload: the Table 2 suite followed by
// the scenarios. Everything here can be simulated directly, exported to
// a trace, or requested by name from the jettyd service.
func Library() []Spec {
	return append(Specs(), Scenarios()...)
}

// Lookup returns the library workload with the given Name
// (case-insensitive) or Abbrev (exact).
func Lookup(name string) (Spec, error) {
	for _, sp := range Library() {
		if strings.EqualFold(sp.Name, name) || sp.Abbrev == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q (names: %s)", name, strings.Join(libraryNames(), ", "))
}

// libraryNames lists every library workload name (error-message aid).
func libraryNames() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, sp := range lib {
		out[i] = sp.Name
	}
	return out
}
