// Package workload is the workload generator library: it produces the
// deterministic memory-reference streams every experiment runs on, both
// the paper's benchmark suite and server-style scenario workloads, and
// each of them can feed a simulation directly or be exported to a trace
// file.
//
// # Behavioral signatures
//
// The paper drives its simulator with SPLASH-2 (plus Em3d and
// Unstructured) executions captured under WWT2; reproducing those exact
// streams would need the original binaries and a full-machine functional
// simulator, so — per the substitution rule — each application is
// replaced by a deterministic synthetic generator with the same
// *behavioral signature*: working-set sizes, reuse locality, write
// fraction, and the sharing patterns whose interplay produces the
// paper's Table 2/3 statistics (L1/L2 hit rates, snoop-miss dominance,
// the remote-hit distribution). Those are exactly the properties JETTY's
// coverage and energy results depend on.
//
// A Spec composes the available patterns: private working-set tiers
// (Region), producer/consumer rings (PairSharing), migratory records
// (MigratorySharing), widely-read data (WideSharing), and zipf-popular
// shared objects (ZipfSharing — the hot-row/hot-object contention of
// server workloads). First-touch page-colored translation maps the
// virtual layout onto the physical addresses the snooped bus sees.
//
// # The library
//
// Specs returns the paper's Table 2 suite; Scenarios returns the
// server-side signatures (Throughput, WebServer, Database, Pipeline,
// Migratory, ...); Library returns both and Lookup resolves any of them
// by name or abbreviation — the one name space used by cmd/jettysim,
// cmd/tracecat and the jettyd service.
//
// Every generator is seeded and the simulator's interleaving is fixed,
// so all experiments are bit-reproducible; Spec.Source streams are
// infinite and a run's length is bounded by the consumer (Spec.Accesses,
// trace.NewLimit, or the recorder's per-CPU cap). Export any spec with
// trace.Record (or `tracecat record`) to get a replayable trace file —
// see TRACES.md.
package workload
