package workload

import "fmt"

// Specs returns the ten applications of the paper's Table 2 (SPLASH-2
// programs plus Em3d and Unstructured), as behavioral signatures
// calibrated against the paper's measured statistics: the L1/L2 local hit
// rates of Table 2 and the remote-hit distribution of Table 3. The access
// budgets are scaled down (the paper runs 60M–1.7B references; the
// signatures reproduce the *rates*, which is what every JETTY result is a
// function of). EXPERIMENTS.md records measured-vs-paper for every app.
func Specs() []Spec {
	return []Spec{
		{
			// Barnes-Hut N-body: tree walks over widely-read body data;
			// the widest sharing in the suite (Table 3: 47/28/15/10).
			Name: "Barnes", Abbrev: "ba", Accesses: 2_400_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.945, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.004, Bytes: 128 << 10, Burst: 6},
			Stream: Region{Frac: 0.024, Bytes: 12 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.007, Bytes: 192 << 10, LagBytes: 4096, Stride: 16},
			Mig:    MigratorySharing{Frac: 0.003, Records: 64, Hold: 24},
			Wide:   WideSharing{Frac: 0.017, Bytes: 8 << 10, WriteFrac: 0.06},
			Seed:   101,
		},
		{
			// Cholesky factorization: supernodal panels, mostly private
			// with light producer/consumer hand-off (92/5/3/0).
			Name: "Cholesky", Abbrev: "ch", Accesses: 1_000_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.8932, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.100, Bytes: 128 << 10, Burst: 6},
			Stream: Region{Frac: 0.004, Bytes: 5 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.0008, Bytes: 128 << 10, LagBytes: 4096, Stride: 16},
			Wide:   WideSharing{Frac: 0.002, Bytes: 8 << 10, WriteFrac: 0.05},
			Seed:   102,
		},
		{
			// Em3d: electromagnetic wave propagation on a bipartite graph;
			// streaming with the worst L1 behaviour in the suite (76.5%)
			// and snoops dominating all L2 accesses (69%).
			Name: "Em3d", Abbrev: "em", Accesses: 1_600_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.630, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.012, Bytes: 128 << 10, Burst: 6},
			Stream: Region{Frac: 0.300, Bytes: 8 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.050, Bytes: 256 << 10, LagBytes: 8192, Stride: 16},
			Mig:    MigratorySharing{Frac: 0.008, Records: 32, Hold: 16},
			Seed:   103,
		},
		{
			// FFT: transpose-dominated all-to-all, but phases are long and
			// private (93/7/0/0); moderate L2 reuse (36.3%).
			Name: "Fft", Abbrev: "ff", Accesses: 800_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.9390, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.0220, Bytes: 128 << 10, Burst: 6},
			Stream: Region{Frac: 0.0340, Bytes: 6 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.005, Bytes: 192 << 10, LagBytes: 8192, Stride: 16},
			Seed:   104,
		},
		{
			// FMM: adaptive fast multipole; the best L1 behaviour (99.6%)
			// and high L2 reuse (81.2%), light sharing (82/15/2/1).
			Name: "Fmm", Abbrev: "fm", Accesses: 3_000_000, WriteFrac: 0.25,
			Hot:    Region{Frac: 0.9626, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.0360, Bytes: 96 << 10, Burst: 8},
			Stream: Region{Frac: 0.0002, Bytes: 8 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.0004, Bytes: 128 << 10, LagBytes: 4096, Stride: 16},
			Mig:    MigratorySharing{Frac: 0.0002, Records: 16, Hold: 24},
			Wide:   WideSharing{Frac: 0.0004, Bytes: 8 << 10, WriteFrac: 0.03},
			Seed:   105,
		},
		{
			// LU decomposition: blocked panels; perimeter blocks hand off
			// pairwise (73/26/1/0), high L2 reuse (82.5%).
			Name: "Lu", Abbrev: "lu", Accesses: 1_000_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.7275, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.260, Bytes: 96 << 10, Burst: 8},
			Stream: Region{Frac: 0.0015, Bytes: 2 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.010, Bytes: 160 << 10, LagBytes: 4096, Stride: 16},
			Mig:    MigratorySharing{Frac: 0.001, Records: 16, Hold: 24},
			Seed:   106,
		},
		{
			// Ocean: stencil sweeps over large grids; low L1 (83.5%) from
			// streaming, almost no sharing (97/3/0/0). The written streams
			// generate heavy L1-writeback traffic into the L2.
			Name: "Ocean", Abbrev: "oc", Accesses: 1_200_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.588, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.270, Bytes: 256 << 10, Burst: 6},
			Stream: Region{Frac: 0.140, Bytes: 10 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.002, Bytes: 64 << 10, LagBytes: 4096, Stride: 16},
			Seed:   107,
		},
		{
			// Radix sort: key permutation streams, fully private between
			// barriers (100/0/0/0), good L2 reuse (79.4%).
			Name: "Radix", Abbrev: "ra", Accesses: 2_000_000, WriteFrac: 0.40,
			Hot:    Region{Frac: 0.797, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.200, Bytes: 128 << 10, Burst: 8},
			Stream: Region{Frac: 0.003, Bytes: 20 << 20, Stride: 16},
			Seed:   108,
		},
		{
			// Raytrace: read-mostly scene traversal with a big footprint;
			// no remote hits at all (100/0/0/0), L2 46.6%.
			Name: "Raytrace", Abbrev: "rt", Accesses: 1_600_000, WriteFrac: 0.10,
			Hot:    Region{Frac: 0.9570, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.0320, Bytes: 128 << 10, Burst: 6},
			Stream: Region{Frac: 0.0110, Bytes: 16 << 20, Stride: 16},
			Seed:   109,
		},
		{
			// Unstructured: CFD over an irregular mesh; the heaviest
			// pairwise sharing in the suite (33/55/4/8) — the one
			// application where most snoops *hit* remotely.
			Name: "Unstructured", Abbrev: "un", Accesses: 3_000_000, WriteFrac: 0.30,
			Hot:    Region{Frac: 0.7228, Bytes: 16 << 10},
			Warm:   Region{Frac: 0.180, Bytes: 96 << 10, Burst: 8},
			Stream: Region{Frac: 0.008, Bytes: 2 << 20, Stride: 16},
			Pair:   PairSharing{Frac: 0.072, Bytes: 192 << 10, LagBytes: 4096, Stride: 16},
			Mig:    MigratorySharing{Frac: 0.006, Records: 32, Hold: 16},
			Wide:   WideSharing{Frac: 0.0112, Bytes: 8 << 10, WriteFrac: 0.10},
			Seed:   110,
		},
	}
}

// ByName returns the spec with the given Name or Abbrev.
func ByName(name string) (Spec, error) {
	for _, sp := range Specs() {
		if sp.Name == name || sp.Abbrev == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns the application names in Table 2 order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Name
	}
	return out
}

// Throughput returns a multiprogrammed "throughput engine" signature
// (paper §1: independent programs per CPU — JETTY's best case, where
// essentially every snoop misses).
func Throughput() Spec {
	return Spec{
		Name: "Throughput", Abbrev: "tp", Accesses: 1_000_000, WriteFrac: 0.30,
		Hot:    Region{Frac: 0.90, Bytes: 16 << 10},
		Warm:   Region{Frac: 0.06, Bytes: 384 << 10, Burst: 6},
		Stream: Region{Frac: 0.04, Bytes: 8 << 20, Stride: 16},
		Seed:   999,
	}
}

// MigratingThroughput returns the throughput-engine signature with OS
// process migration every period references per CPU (paper §2: for
// throughput workloads "the only L2 misses resulting in a snoop hit are
// due to highly infrequent activities such as process migration").
func MigratingThroughput(period uint64) Spec {
	sp := Throughput()
	sp.Name = "Throughput+migration"
	sp.Abbrev = "tm"
	sp.MigrationPeriod = period
	return sp
}

// Scale returns a copy of the spec with its access budget multiplied by
// factor (footprints are left intact: they are calibrated against the
// fixed 1 MB L2).
func (sp Spec) Scale(factor float64) Spec {
	if factor <= 0 {
		factor = 1
	}
	sp.Accesses = uint64(float64(sp.Accesses) * factor)
	if sp.Accesses == 0 {
		sp.Accesses = 1
	}
	return sp
}
