package workload

import (
	"testing"

	"jetty/internal/trace"
)

func TestAllSpecsValid(t *testing.T) {
	specs := Specs()
	if len(specs) != 10 {
		t.Fatalf("want the paper's 10 applications, got %d", len(specs))
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
	if err := Throughput().Validate(); err != nil {
		t.Errorf("Throughput: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, key := range []string{"Barnes", "ba", "Unstructured", "un"} {
		if _, err := ByName(key); err != nil {
			t.Errorf("ByName(%q): %v", key, err)
		}
	}
	if _, err := ByName("quake"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 10 || names[0] != "Barnes" || names[9] != "Unstructured" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	base := Specs()[0]

	sp := base
	sp.Hot.Frac = 0.5 // fractions no longer sum to 1
	if err := sp.Validate(); err == nil {
		t.Error("bad fraction sum accepted")
	}

	sp = base
	sp.Accesses = 0
	if err := sp.Validate(); err == nil {
		t.Error("zero accesses accepted")
	}

	sp = base
	sp.Pair.LagBytes = sp.Pair.Bytes + 1
	if err := sp.Validate(); err == nil {
		t.Error("lag beyond buffer accepted")
	}

	sp = base
	sp.WriteFrac = 1.5
	if err := sp.Validate(); err == nil {
		t.Error("write fraction over 1 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	sp, _ := ByName("Barnes")
	a := sp.Source(4)
	b := sp.Source(4)
	for i := 0; i < 20000; i++ {
		cpu := i % 4
		ra, _ := a.Next(cpu)
		rb, _ := b.Next(cpu)
		if ra != rb {
			t.Fatalf("ref %d diverged: %v vs %v", i, ra, rb)
		}
	}
}

func TestSeedsChangeStreams(t *testing.T) {
	sp, _ := ByName("Barnes")
	sp2 := sp
	sp2.Seed++
	a, b := sp.Source(4), sp2.Source(4)
	same := 0
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next(0)
		rb, _ := b.Next(0)
		if ra == rb {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/1000 identical refs", same)
	}
}

func TestFootprintBounds(t *testing.T) {
	// Every generated address must fall inside the declared regions.
	for _, sp := range Specs() {
		src := sp.Source(4)
		ma := sp.MemoryBytes(4)
		_ = ma
		for i := 0; i < 40000; i++ {
			cpu := i % 4
			r, ok := src.Next(cpu)
			if !ok {
				t.Fatalf("%s: stream ended", sp.Name)
			}
			if r.Addr >= 1<<36 {
				t.Fatalf("%s: address %#x beyond physical space", sp.Name, r.Addr)
			}
		}
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	sp := Throughput() // no sharing: writes only from WriteFrac
	src := sp.Source(4)
	writes, total := 0, 200000
	for i := 0; i < total; i++ {
		r, _ := src.Next(i % 4)
		if r.Op == trace.Write {
			writes++
		}
	}
	got := float64(writes) / float64(total)
	if got < sp.WriteFrac-0.05 || got > sp.WriteFrac+0.05 {
		t.Errorf("write fraction = %.3f, want ~%.2f", got, sp.WriteFrac)
	}
}

func TestPrivateRegionsDisjointAcrossCPUs(t *testing.T) {
	// The throughput workload must generate fully disjoint footprints.
	// Physical spans interleave (first-touch paging), so disjointness is
	// checked at page granularity: no physical page is touched by two
	// CPUs.
	sp := Throughput()
	src := sp.Source(4)
	owner := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		cpu := i % 4
		r, _ := src.Next(cpu)
		page := r.Addr >> pageBits
		if prev, ok := owner[page]; ok && prev != cpu {
			t.Fatalf("physical page %#x touched by cpu%d and cpu%d", page, prev, cpu)
		}
		owner[page] = cpu
	}
	if len(owner) < 100 {
		t.Fatalf("suspiciously small footprint: %d pages", len(owner))
	}
}

func TestPagingIsCompactAndDeterministic(t *testing.T) {
	// First-touch allocation hands out frames sequentially: the physical
	// footprint equals the touched page count, and two runs agree.
	sp := Throughput()
	a, b := sp.Source(4).(*generator), sp.Source(4).(*generator)
	var maxA uint64
	for i := 0; i < 50000; i++ {
		cpu := i % 4
		ra, _ := a.Next(cpu)
		rb, _ := b.Next(cpu)
		if ra != rb {
			t.Fatalf("paging broke determinism at ref %d", i)
		}
		if ra.Addr > maxA {
			maxA = ra.Addr
		}
	}
	touched := uint64(len(a.pt.table))
	var handed uint64
	for _, n := range a.pt.perColor {
		handed += n
	}
	if handed != touched {
		t.Errorf("frames handed out %d != pages touched %d", handed, touched)
	}
	// Color-preserving compactness: the footprint spans at most
	// pageColors times the per-color maximum.
	var maxColor uint64
	for _, n := range a.pt.perColor {
		if n > maxColor {
			maxColor = n
		}
	}
	if maxA>>pageBits >= maxColor*pageColors {
		t.Errorf("physical address %#x beyond the colored footprint", maxA)
	}
	// Frames preserve the virtual color (L1 page-slot behaviour).
	for page, frame := range a.pt.table {
		if page%pageColors != frame%pageColors {
			t.Fatalf("page %#x color %d mapped to frame %#x color %d",
				page, page%pageColors, frame, frame%pageColors)
		}
	}
}

func TestPairSharingProducesCrossCPUTraffic(t *testing.T) {
	sp, _ := ByName("Unstructured")
	src := sp.Source(4)
	// Count consumer reads landing in a *different* CPU's pair buffer,
	// using the pre-translation (virtual) stream.
	g := src.(*generator)
	cross := 0
	for i := 0; i < 100000; i++ {
		cpu := i % 4
		r, _ := g.next(cpu)
		for other := 0; other < 4; other++ {
			if other == cpu {
				continue
			}
			base := g.pairBase[other]
			if r.Addr >= base && r.Addr < base+sp.Pair.Bytes {
				cross++
			}
		}
	}
	if cross == 0 {
		t.Error("no cross-CPU pair traffic generated")
	}
}

func TestMemoryBytesAccounting(t *testing.T) {
	sp := Spec{
		Name: "t", Accesses: 1, WriteFrac: 0,
		Hot:  Region{Frac: 0.5, Bytes: 1000},
		Warm: Region{Frac: 0.3, Bytes: 2000},
		Pair: PairSharing{Frac: 0.1, Bytes: 500, LagBytes: 100},
		Mig:  MigratorySharing{Frac: 0.05, Records: 10, Hold: 4},
		Wide: WideSharing{Frac: 0.05, Bytes: 300},
	}
	want := uint64(4*(1000+2000+500) + 300 + 10*64)
	if got := sp.MemoryBytes(4); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestScale(t *testing.T) {
	sp := Throughput()
	if got := sp.Scale(2).Accesses; got != 2*sp.Accesses {
		t.Errorf("Scale(2) accesses = %d", got)
	}
	if got := sp.Scale(0).Accesses; got != sp.Accesses {
		t.Errorf("Scale(0) should be identity, got %d", got)
	}
	if got := sp.Scale(1e-12).Accesses; got == 0 {
		t.Error("scaled accesses must stay positive")
	}
}

func TestSourcePanicsOnInvalidSpec(t *testing.T) {
	sp := Specs()[0]
	sp.Hot.Frac = 99
	defer func() {
		if recover() == nil {
			t.Error("Source on invalid spec should panic")
		}
	}()
	sp.Source(4)
}

func TestMigrationRotatesDataSets(t *testing.T) {
	// With migration enabled, a CPU must eventually reference addresses
	// from another CPU's virtual data set; without it, never.
	period := uint64(5000)
	mig := MigratingThroughput(period)
	g := mig.Source(4).(*generator)
	crossed := false
	for i := 0; i < int(period)*8; i++ {
		cpu := i % 4
		r, _ := g.next(cpu)
		for other := 0; other < 4; other++ {
			if other == cpu && crossedInto(g, other, r.Addr) {
				continue
			}
			if other != cpu && crossedInto(g, other, r.Addr) {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Error("migration never touched a foreign data set")
	}

	plain := Throughput()
	gp := plain.Source(4).(*generator)
	for i := 0; i < 40000; i++ {
		cpu := i % 4
		r, _ := gp.next(cpu)
		for other := 0; other < 4; other++ {
			if other != cpu && crossedInto(gp, other, r.Addr) {
				t.Fatalf("non-migrating workload crossed data sets (cpu%d hit cpu%d's region)", cpu, other)
			}
		}
	}
}

// crossedInto reports whether a virtual address belongs to cpu's private
// tiers.
func crossedInto(g *generator, cpu int, va uint64) bool {
	sp := g.spec
	in := func(base, size uint64) bool { return va >= base && va < base+size }
	return in(g.hotBase[cpu], sp.Hot.Bytes) ||
		in(g.warmBase[cpu], sp.Warm.Bytes) ||
		in(g.streamBase[cpu], sp.Stream.Bytes)
}

func TestMigratingThroughputValid(t *testing.T) {
	sp := MigratingThroughput(10000)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.MigrationPeriod != 10000 {
		t.Error("period not carried")
	}
}

func TestScenariosValid(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 6 {
		t.Fatalf("want at least 6 scenarios, got %d", len(scenarios))
	}
	for _, sp := range scenarios {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
}

func TestLibraryLookup(t *testing.T) {
	lib := Library()
	if len(lib) != 10+len(Scenarios()) {
		t.Fatalf("Library() has %d entries", len(lib))
	}
	seen := map[string]bool{}
	for _, sp := range lib {
		if seen[sp.Name] || seen[sp.Abbrev] {
			t.Errorf("duplicate library name/abbrev in %q/%q", sp.Name, sp.Abbrev)
		}
		seen[sp.Name], seen[sp.Abbrev] = true, true
	}
	for _, key := range []string{"Barnes", "ba", "Throughput", "tp", "webserver", "db", "Pipeline", "mg"} {
		if _, err := Lookup(key); err != nil {
			t.Errorf("Lookup(%q): %v", key, err)
		}
	}
	if _, err := Lookup("quake"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestZipfSharingIsSkewedSharedAndDeterministic(t *testing.T) {
	sp := WebServer()
	const cpus, n = 4, 40000

	count := func() (map[uint64][]int, [][]trace.Ref) {
		src := sp.Source(cpus)
		perBlock := map[uint64][]int{} // physical 64B block -> touching CPUs
		streams := make([][]trace.Ref, cpus)
		for i := 0; i < n/cpus; i++ {
			for cpu := 0; cpu < cpus; cpu++ {
				r, _ := src.Next(cpu)
				streams[cpu] = append(streams[cpu], r)
				perBlock[r.Addr>>6] = append(perBlock[r.Addr>>6], cpu)
			}
		}
		return perBlock, streams
	}
	perBlock, s1 := count()
	_, s2 := count()

	// Determinism: two sources from the same spec emit identical streams.
	for cpu := range s1 {
		for i := range s1[cpu] {
			if s1[cpu][i] != s2[cpu][i] {
				t.Fatalf("cpu%d ref %d differs between identical sources", cpu, i)
			}
		}
	}

	// Sharing: some block must be touched by every CPU (the zipf-hot
	// blocks are contended by all).
	shared := 0
	var hottest int
	for _, touchers := range perBlock {
		cpuSet := map[int]bool{}
		for _, c := range touchers {
			cpuSet[c] = true
		}
		if len(cpuSet) == cpus {
			shared++
		}
		if len(touchers) > hottest {
			hottest = len(touchers)
		}
	}
	if shared == 0 {
		t.Error("no block touched by all CPUs: zipf region not shared")
	}
	// Skew: the hottest block must absorb far more than a uniform share.
	if uniform := n / len(perBlock); hottest < 8*uniform {
		t.Errorf("hottest block has %d touches, uniform share is %d: not zipfian", hottest, uniform)
	}
}

func TestZipfValidateErrors(t *testing.T) {
	sp := WebServer()
	sp.Zipf.S = 1.0
	if err := sp.Validate(); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
	sp = WebServer()
	sp.Zipf.Bytes = 0
	if err := sp.Validate(); err == nil {
		t.Error("zipf without bytes accepted")
	}
}
