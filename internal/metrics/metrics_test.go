package metrics

import (
	"strings"
	"testing"

	"jetty/internal/energy"
)

// fakeSource is a scripted CounterSource.
type fakeSource struct {
	refs    uint64
	counts  energy.Counts
	filters []energy.FilterCounts
}

func (f *fakeSource) Refs() uint64                           { return f.refs }
func (f *fakeSource) EnergyCounts() energy.Counts            { return f.counts }
func (f *fakeSource) FilterCounts(i int) energy.FilterCounts { return f.filters[i] }
func (f *fakeSource) step(refs uint64, snoops, filtered uint64) {
	f.refs += refs
	f.counts.Snoops += snoops
	f.counts.SnoopMisses += snoops
	for i := range f.filters {
		f.filters[i].Probes += snoops
		f.filters[i].Filtered += filtered
	}
}

func TestSamplerWindowsAreDeltas(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 2)}
	sm := NewSampler(Config{Interval: 128, Filters: 2})
	sm.Prime(src)

	src.step(128, 10, 4)
	sm.Observe(src)
	src.step(128, 30, 15)
	sm.Observe(src)
	src.step(13, 5, 1) // tail
	sm.Flush(src)

	wins := sm.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	if wins[0].Counts.Snoops != 10 || wins[1].Counts.Snoops != 30 || wins[2].Counts.Snoops != 5 {
		t.Errorf("window snoop deltas = %d/%d/%d, want 10/30/5",
			wins[0].Counts.Snoops, wins[1].Counts.Snoops, wins[2].Counts.Snoops)
	}
	if wins[1].Filters[0].Filtered != 15 || wins[1].Filters[1].Filtered != 15 {
		t.Errorf("window 1 filtered = %+v, want 15 per filter", wins[1].Filters)
	}
	if wins[2].StartRef != 256 || wins[2].EndRef != 269 || wins[2].Refs != 13 {
		t.Errorf("tail window = %+v", wins[2])
	}
	if cov := wins[1].Coverage(0); cov != 0.5 {
		t.Errorf("window 1 coverage = %v, want 0.5", cov)
	}

	// Summing the timeline reproduces the cumulative totals.
	tl := &Timeline{Interval: 128, FilterNames: []string{"a", "b"}, Windows: wins}
	refs, counts, filters := tl.Sum()
	if refs != src.refs || counts != src.counts {
		t.Errorf("sum = %d refs %+v, want %d refs %+v", refs, counts, src.refs, src.counts)
	}
	for i := range filters {
		if filters[i] != src.filters[i] {
			t.Errorf("filter %d sum = %+v, want %+v", i, filters[i], src.filters[i])
		}
	}
}

func TestFlushIsIdempotentAndDrainAware(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 1)}
	sm := NewSampler(Config{Interval: 64, Filters: 1})
	sm.Prime(src)

	src.step(64, 8, 2)
	sm.Observe(src)
	sm.Flush(src) // nothing since the boundary: no extra window
	if n := len(sm.Windows()); n != 1 {
		t.Fatalf("flush after clean boundary added a window: %d", n)
	}

	// A drain moves counters without references: the flush window must
	// capture it (Refs == 0, counts nonzero) or totals would not conserve.
	src.counts.LocalWrites += 3
	sm.Flush(src)
	wins := sm.Windows()
	if len(wins) != 2 {
		t.Fatalf("drain-only flush missing: %d windows", len(wins))
	}
	if wins[1].Refs != 0 || wins[1].Counts.LocalWrites != 3 {
		t.Errorf("drain window = %+v", wins[1])
	}
	sm.Flush(src) // and idempotent again
	if n := len(sm.Windows()); n != 2 {
		t.Errorf("repeated flush added a window: %d", n)
	}
}

func TestObserveSteadyStateAllocs(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 4)}
	sm := NewSampler(Config{Interval: 64, Filters: 4, Capacity: 4096})
	sm.Prime(src)
	if avg := testing.AllocsPerRun(200, func() {
		src.step(64, 7, 3)
		sm.Observe(src)
	}); avg != 0 {
		t.Fatalf("Observe allocates %v allocs/op in steady state (want 0)", avg)
	}
}

func TestOnWindowIsBorrowedPerBoundary(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 1)}
	var seen []uint64
	sm := NewSampler(Config{Interval: 64, Filters: 1, OnWindow: func(w *Window) {
		seen = append(seen, w.Counts.Snoops)
	}})
	sm.Prime(src)
	for i := uint64(1); i <= 3; i++ {
		src.step(64, i, 0)
		sm.Observe(src)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Errorf("streamed snoop deltas = %v, want [1 2 3]", seen)
	}
}

func TestRewindKeepsDeltaBase(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 1)}
	sm := NewSampler(Config{Interval: 64, Filters: 1})
	sm.Prime(src)
	src.step(64, 10, 0)
	sm.Observe(src)
	sm.Rewind()
	if len(sm.Windows()) != 0 {
		t.Fatal("rewind kept windows")
	}
	src.step(64, 7, 0)
	sm.Observe(src)
	if w := sm.Windows(); len(w) != 1 || w[0].Counts.Snoops != 7 {
		t.Errorf("post-rewind window = %+v, want snoop delta 7", w)
	}
}

func TestTimelineCloneIsDeep(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 1)}
	sm := NewSampler(Config{Interval: 64, Filters: 1})
	sm.Prime(src)
	src.step(64, 4, 2)
	sm.Observe(src)
	tl := &Timeline{Interval: 64, FilterNames: []string{"EJ"}, Windows: append([]Window(nil), sm.Windows()...)}
	cp := tl.Clone()
	cp.Windows[0].Filters[0].Filtered = 999
	cp.FilterNames[0] = "mutated"
	if tl.Windows[0].Filters[0].Filtered != 2 || tl.FilterNames[0] != "EJ" {
		t.Error("Clone shares storage with the original")
	}
	if (*Timeline)(nil).Clone() != nil {
		t.Error("nil clone not nil")
	}
}

func TestWriteCSV(t *testing.T) {
	src := &fakeSource{filters: make([]energy.FilterCounts, 1)}
	sm := NewSampler(Config{Interval: 64, Filters: 1})
	sm.Prime(src)
	src.step(64, 8, 4)
	sm.Observe(src)
	tl := &Timeline{Interval: 64, FilterNames: []string{"EJ-32x4"}, Windows: sm.Windows()}
	var b strings.Builder
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "coverage[EJ-32x4]") {
		t.Errorf("header lacks per-filter column: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,64,64,8,0,8") {
		t.Errorf("row = %s", lines[1])
	}
	if !strings.HasSuffix(lines[1], ",4,0.500000") {
		t.Errorf("row lacks filtered/coverage tail: %s", lines[1])
	}
}

func TestNewSamplerValidation(t *testing.T) {
	for _, bad := range []Config{{Interval: 0}, {Interval: MinInterval - 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampler(%+v) did not panic", bad)
				}
			}()
			NewSampler(bad)
		}()
	}
}
