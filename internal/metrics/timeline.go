package metrics

import (
	"fmt"
	"io"
	"strings"

	"jetty/internal/energy"
)

// Timeline is the time-resolved record of one run: fixed-size windows in
// emission order. It is what the sim layer returns alongside the
// end-of-run metrics, what the jettyd service serves and streams, and
// what jettysim writes as CSV.
type Timeline struct {
	// Interval is the window width in accesses.
	Interval uint64 `json:"interval"`
	// FilterNames labels the per-window Filters slices, in bank order.
	FilterNames []string `json:"filter_names,omitempty"`
	// Windows are the emitted windows. Every counter in them is a
	// window-local delta; summing all windows reproduces the end-of-run
	// totals exactly (the conservation property the sim tests pin).
	Windows []Window `json:"windows"`
}

// Clone returns a deep copy (timelines ride on engine-cached results
// that are shared between submitters).
func (t *Timeline) Clone() *Timeline {
	if t == nil {
		return nil
	}
	out := &Timeline{
		Interval:    t.Interval,
		FilterNames: append([]string(nil), t.FilterNames...),
		Windows:     append([]Window(nil), t.Windows...),
	}
	for i := range out.Windows {
		out.Windows[i].Filters = append([]energy.FilterCounts(nil), out.Windows[i].Filters...)
	}
	return out
}

// Sum folds every window back into run totals: references, L2 counts
// and per-filter counts.
func (t *Timeline) Sum() (refs uint64, counts energy.Counts, filters []energy.FilterCounts) {
	filters = make([]energy.FilterCounts, len(t.FilterNames))
	for i := range t.Windows {
		w := &t.Windows[i]
		refs += w.Refs
		counts.Add(w.Counts)
		for fi := range w.Filters {
			filters[fi].Add(w.Filters[fi])
		}
	}
	return refs, counts, filters
}

// WriteCSV renders the timeline as CSV: one row per window with the
// snoop activity, the baseline energy split by component (joules), and
// per-filter filtered counts and in-window coverage.
func (t *Timeline) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("window,start_ref,end_ref,refs,snoops,snoop_hits,snoop_misses,local_reads,local_writes,tag_allocs,tag_evictions")
	b.WriteString(",local_tag_j,local_data_j,snoop_tag_j,snoop_data_j,snoop_state_j,snoop_wb_j")
	for _, name := range t.FilterNames {
		fmt.Fprintf(&b, ",filtered[%s],coverage[%s]", name, name)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i := range t.Windows {
		b.Reset()
		win := &t.Windows[i]
		c := win.Counts
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			win.Index, win.StartRef, win.EndRef, win.Refs,
			c.Snoops, c.SnoopHits, c.SnoopMisses, c.LocalReads, c.LocalWrites,
			c.TagAllocs, c.TagEvictions)
		e := win.Energy
		fmt.Fprintf(&b, ",%.6g,%.6g,%.6g,%.6g,%.6g,%.6g",
			e.LocalTag, e.LocalData, e.SnoopTag, e.SnoopData, e.SnoopState, e.SnoopWB)
		for fi := range win.Filters {
			fmt.Fprintf(&b, ",%d,%.6f", win.Filters[fi].Filtered, win.Coverage(fi))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
