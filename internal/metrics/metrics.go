package metrics

import (
	"fmt"

	"jetty/internal/energy"
)

// MinInterval is the smallest permitted sampling interval. One window
// boundary costs an O(cpus × filters) counter sweep; at 64 accesses per
// window that sweep is already a measurable share of the run, and the
// service/sweep layers accept intervals from unauthenticated clients.
const MinInterval = 64

// Window is one fixed-size interval of machine activity: the delta of
// every cumulative counter between two window boundaries. Boundaries are
// fixed in accesses (references), not wall time, so a timeline is a pure
// function of (workload, machine, interval) and replays bit-identically.
type Window struct {
	// Index is the window ordinal, 0-based.
	Index int `json:"index"`
	// StartRef/EndRef are the global reference counts at the window's
	// edges; Refs = EndRef - StartRef (the final flush window may be
	// shorter than the interval, and a drain-only flush can be empty).
	StartRef uint64 `json:"start_ref"`
	EndRef   uint64 `json:"end_ref"`
	Refs     uint64 `json:"refs"`

	// Counts is the window's L2 event activity (snoops, hits, misses,
	// fills, evictions — everything the energy model consumes).
	Counts energy.Counts `json:"counts"`
	// Filters is the window's per-filter activity, in bank order.
	Filters []energy.FilterCounts `json:"filters,omitempty"`

	// Energy is the window's baseline (unfiltered) L2 energy split by
	// component. The sampler leaves it zero; the sim layer fills it from
	// the window counts when it finishes a timeline.
	Energy energy.Breakdown `json:"energy"`
}

// Coverage returns filter i's in-window snoop-miss coverage: filtered
// snoops over snoop misses, 0 for a window without snoop misses.
func (w *Window) Coverage(i int) float64 {
	if w.Counts.SnoopMisses == 0 {
		return 0
	}
	return float64(w.Filters[i].Filtered) / float64(w.Counts.SnoopMisses)
}

// CounterSource is the sampler's view of a running machine: cumulative
// counters only, never mutated by observation. smp.System implements it.
type CounterSource interface {
	// Refs returns the references processed so far.
	Refs() uint64
	// EnergyCounts returns the cumulative L2 event counts.
	EnergyCounts() energy.Counts
	// FilterCounts returns filter idx's cumulative event counts.
	FilterCounts(idx int) energy.FilterCounts
}

// Config sizes a Sampler.
type Config struct {
	// Interval is the window width in accesses. Must be >= MinInterval.
	Interval uint64
	// Filters is the width of the machine's filter bank (the length of
	// every window's Filters slice). May be 0.
	Filters int
	// Capacity pre-sizes the retained timeline in windows. Runs whose
	// length is known should size it to accesses/interval+2 so
	// steady-state emission allocates nothing; growth past it is
	// amortized doubling.
	Capacity int
	// OnWindow, if non-nil, is called at every boundary with the freshly
	// emitted window. The pointer is borrowed: it stays valid until the
	// next boundary (windows are double-buffered against the retained
	// timeline), so streaming consumers must copy or encode before
	// returning.
	OnWindow func(*Window)
}

// Sampler turns a stream of cumulative counter snapshots into fixed-size
// windows. It is attached to a machine with smp.(*System).SetSampler and
// driven by the machine itself at every interval boundary; once primed,
// observation is allocation-free (the retained timeline and the
// per-window filter slices come from pre-grown arenas).
//
// A Sampler is not safe for concurrent use: it lives on the simulation
// goroutine. Concurrent consumers (the jettyd live stream) receive
// copies through OnWindow.
type Sampler struct {
	interval uint64
	nf       int
	onWindow func(*Window)

	primed    bool
	lastRefs  uint64
	lastCum   energy.Counts
	lastFilts []energy.FilterCounts // cumulative at the last boundary

	windows []Window
	arena   []energy.FilterCounts // backing store for window filter slices
}

// NewSampler builds a sampler. It panics on an interval below
// MinInterval (sampler construction is programmer-controlled; the
// service validates client-supplied intervals before building one).
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval < MinInterval {
		panic(fmt.Sprintf("metrics: interval %d below minimum %d", cfg.Interval, MinInterval))
	}
	if cfg.Filters < 0 {
		panic("metrics: negative filter width")
	}
	capacity := cfg.Capacity
	if capacity < 4 {
		capacity = 4
	}
	return &Sampler{
		interval:  cfg.Interval,
		nf:        cfg.Filters,
		onWindow:  cfg.OnWindow,
		lastFilts: make([]energy.FilterCounts, cfg.Filters),
		windows:   make([]Window, 0, capacity),
		arena:     make([]energy.FilterCounts, 0, capacity*cfg.Filters),
	}
}

// Interval returns the window width in accesses.
func (s *Sampler) Interval() uint64 { return s.interval }

// FilterWidth returns the filter-bank width the sampler was sized for.
func (s *Sampler) FilterWidth() int { return s.nf }

// Prime seeds the delta base from the source's current cumulative
// counters. SetSampler calls it on attach; attaching mid-run therefore
// samples only activity from the attach point on.
func (s *Sampler) Prime(src CounterSource) {
	s.lastRefs = src.Refs()
	s.lastCum = src.EnergyCounts()
	for i := range s.lastFilts {
		s.lastFilts[i] = src.FilterCounts(i)
	}
	s.primed = true
}

// Observe emits one window: the delta between the source's cumulative
// counters and the previous boundary. The machine calls it exactly at
// interval boundaries; Flush calls it once more for the tail.
func (s *Sampler) Observe(src CounterSource) {
	if !s.primed {
		panic("metrics: Observe before Prime")
	}
	refs := src.Refs()
	cum := src.EnergyCounts()

	w := s.nextWindow()
	w.Index = len(s.windows) - 1
	w.StartRef = s.lastRefs
	w.EndRef = refs
	w.Refs = refs - s.lastRefs
	w.Counts = cum.Sub(s.lastCum)
	w.Energy = energy.Breakdown{}
	for i := 0; i < s.nf; i++ {
		fc := src.FilterCounts(i)
		w.Filters[i] = fc.Sub(s.lastFilts[i])
		s.lastFilts[i] = fc
	}
	s.lastRefs = refs
	s.lastCum = cum
	if s.onWindow != nil {
		s.onWindow(w)
	}
}

// Flush emits the final partial window if any activity (references or
// counter movement, e.g. the end-of-run write-buffer drain) happened
// since the last boundary. The run layer calls it after
// DrainWriteBuffers so the timeline conserves the end-of-run totals
// exactly.
func (s *Sampler) Flush(src CounterSource) {
	if !s.primed {
		return
	}
	if src.Refs() == s.lastRefs && src.EnergyCounts() == s.lastCum {
		return
	}
	s.Observe(src)
}

// nextWindow appends one window to the retained timeline, reusing arena
// capacity when available (zero allocations in steady state).
func (s *Sampler) nextWindow() *Window {
	s.windows = append(s.windows, Window{})
	w := &s.windows[len(s.windows)-1]
	if s.nf > 0 {
		if len(s.arena)+s.nf > cap(s.arena) {
			// Fresh chunk; earlier windows keep pointing into the old one.
			chunk := cap(s.arena)
			if chunk < s.nf {
				chunk = s.nf
			}
			s.arena = make([]energy.FilterCounts, 0, chunk*2)
		}
		s.arena = s.arena[:len(s.arena)+s.nf]
		w.Filters = s.arena[len(s.arena)-s.nf : len(s.arena) : len(s.arena)]
	}
	return w
}

// Windows returns the retained windows in emission order. The slice is
// owned by the sampler; Timeline copies it out.
func (s *Sampler) Windows() []Window { return s.windows }

// Rewind discards the retained windows while keeping the cumulative
// delta base, so the next windows continue seamlessly. Benchmarks use it
// to reuse one sampler across iterations without unbounded retention.
func (s *Sampler) Rewind() {
	s.windows = s.windows[:0]
	s.arena = s.arena[:0]
}
