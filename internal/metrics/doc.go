// Package metrics is the time-resolved instrumentation layer: a
// zero-allocation interval sampler that turns a running machine's
// cumulative counters into fixed-size windows, and the Timeline those
// windows accumulate into.
//
// Everything above the simulator reports end-of-run aggregates; this
// package opens the time axis. A Sampler attaches to an smp.System
// (SetSampler) and the machine itself calls Observe at every interval
// boundary — a boundary is fixed in accesses, never wall time, so a
// timeline is as deterministic and replayable as the run it measures.
// Each Window holds the interval's delta of the L2 event counts
// (energy.Counts) and of every filter's counts (energy.FilterCounts);
// summing a timeline's windows reproduces the end-of-run totals exactly,
// and attaching a sampler never perturbs simulation results (both
// properties are pinned by tests in internal/sim).
//
// The hot-path cost is one uint64 comparison per access plus an
// O(cpus × filters) counter sweep per boundary; steady-state emission
// allocates nothing (windows and their filter slices come from
// pre-grown arenas, double-buffered against the OnWindow streaming
// hook). TestStepSteadyStateAllocs in internal/smp and
// BenchmarkAccessHotPath/sampled pin that guarantee; PERFORMANCE.md
// tracks the overhead.
//
// Consumers: internal/sim returns a Timeline on sampled runs (and fills
// each window's baseline energy Breakdown), internal/sweep retains
// per-cell timelines under a retention policy, the jettyd service
// serves them (GET /v1/experiments/{id}/timeline), streams windows live
// over SSE (/v1/experiments/{id}/live), and cmd/jettysim writes them as
// CSV (-timeline). EXPERIMENTS.md has the walkthrough.
package metrics
