package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"jetty/internal/engine"
	"jetty/internal/metrics"
	"jetty/internal/sim"
)

// Live observability: sampled experiments (SubmitRequest.Interval > 0)
// expose their timeline two ways — GET .../timeline serves the finished
// per-app timelines, and GET .../live streams windows as Server-Sent
// Events while the simulation runs. The stream source is a liveFeed fed
// by the sampler's OnWindow hook on the engine worker; subscribers that
// attach late (or whose experiment was served from the result cache, so
// no hook ever fired) are topped up from the retained timelines when the
// experiment finishes, so every subscriber always sees the complete
// window sequence exactly once.

// liveFeed accumulates pre-encoded windows per job and wakes subscribers
// on every publish. The notify channel is replaced under the lock each
// time it is closed — the classic broadcast-by-closed-channel pattern —
// so any number of SSE handlers can wait without goroutine leaks.
type liveFeed struct {
	mu     sync.Mutex
	apps   []string
	wins   [][]json.RawMessage // per job, in emission order
	pubs   [][]time.Time       // publish instants, parallel to wins (fan-out lag)
	done   bool
	notify chan struct{}
}

func newLiveFeed(apps []string) *liveFeed {
	return &liveFeed{
		apps:   apps,
		wins:   make([][]json.RawMessage, len(apps)),
		pubs:   make([][]time.Time, len(apps)),
		notify: make(chan struct{}),
	}
}

// publish appends one window for job idx. The window pointer is borrowed
// from the sampler (valid only during the callback), so it is encoded
// before the lock, never stored.
func (f *liveFeed) publish(idx int, w *metrics.Window) {
	raw, err := json.Marshal(w)
	if err != nil {
		return // windows are plain data; cannot happen
	}
	f.mu.Lock()
	if !f.done {
		f.wins[idx] = append(f.wins[idx], raw)
		f.pubs[idx] = append(f.pubs[idx], time.Now())
	}
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// buffered counts the windows the feed retains, across all jobs — the
// jettyd_live_feed_windows_buffered gauge reads it per scrape.
func (f *liveFeed) buffered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.wins {
		n += len(w)
	}
	return n
}

// finish tops up windows no hook delivered (cache-hit jobs ran before
// this experiment attached, or a subscriber raced the last publishes)
// from the jobs' retained timelines, then marks the feed complete.
// Idempotent; any SSE handler that observes the experiment terminal may
// call it.
func (f *liveFeed) finish(timelines []*metrics.Timeline) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	now := time.Now()
	for i, tl := range timelines {
		if tl == nil {
			continue
		}
		for wi := len(f.wins[i]); wi < len(tl.Windows); wi++ {
			raw, err := json.Marshal(&tl.Windows[wi])
			if err != nil {
				continue
			}
			f.wins[i] = append(f.wins[i], raw)
			f.pubs[i] = append(f.pubs[i], now)
		}
	}
	f.done = true
	close(f.notify)
	f.notify = make(chan struct{})
}

// liveEvent is one SSE "window" payload. published is internal — the
// fan-out lag histogram measures publish-to-write delay from it.
type liveEvent struct {
	App    string          `json:"app"`
	Index  int             `json:"index"` // window ordinal within the app
	Window json.RawMessage `json:"window"`

	published time.Time `json:"-"`
}

// next returns the events past the given per-job cursors (advancing
// them), whether the feed is complete, and the channel to wait on for
// more.
func (f *liveFeed) next(cursors []int) (events []liveEvent, done bool, wait <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.wins {
		for ; cursors[i] < len(f.wins[i]); cursors[i]++ {
			events = append(events, liveEvent{
				App:       f.apps[i],
				Index:     cursors[i],
				Window:    f.wins[i][cursors[i]],
				published: f.pubs[i][cursors[i]],
			})
		}
	}
	return events, f.done, f.notify
}

// resultTimelines collects the finished jobs' timelines in job order
// (nil for jobs that failed, were canceled, or ran unsampled). It never
// blocks: only terminal-state jobs are consulted, so Wait returns
// immediately — and it deliberately waits under the background context,
// not the subscriber's: a detaching subscriber's canceled request must
// not race the finished channel into finishing the feed with nil
// timelines (which would permanently truncate every later subscriber's
// stream).
func (e *experiment) resultTimelines() []*metrics.Timeline {
	out := make([]*metrics.Timeline, len(e.jobs))
	for i, j := range e.jobs {
		if j.State() != engine.Done {
			continue
		}
		v, err := j.Wait(context.Background())
		if err != nil {
			continue
		}
		out[i] = v.(sim.AppResult).Timeline
	}
	return out
}

// AppTimeline pairs one app run with its timeline.
type AppTimeline struct {
	App      string            `json:"app"`
	Timeline *metrics.Timeline `json:"timeline"`
}

// TimelineResponse is the GET /v1/experiments/{id}/timeline payload.
type TimelineResponse struct {
	ID       string        `json:"id"`
	Interval uint64        `json:"interval"`
	Apps     []AppTimeline `json:"apps"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	exp := s.lookup(w, r)
	if exp == nil {
		return
	}
	if exp.interval == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("experiment %s was not sampled; submit with \"interval\" to record a timeline", exp.id))
		return
	}
	st := exp.status()
	if st.State != "done" {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  "experiment not finished",
			"status": st,
		})
		return
	}
	out := TimelineResponse{ID: exp.id, Interval: exp.interval}
	for i, j := range exp.jobs {
		v, err := j.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out.Apps = append(out.Apps, AppTimeline{
			App:      exp.specs[i].Name,
			Timeline: v.(sim.AppResult).Timeline.Clone(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// livePollPeriod bounds how long a live stream can go without
// re-checking experiment state (terminal detection, client liveness):
// window publishes wake it immediately, the ticker catches everything
// else.
const livePollPeriod = 100 * time.Millisecond

// handleLive streams an experiment's windows as SSE:
//
//	event: window    data: {"app":..., "index":..., "window":{...}}
//	event: done      data: {final ExperimentStatus}
//
// Works for unsampled experiments too (no window events, a final done),
// and for experiments canceled or evicted mid-stream (their jobs reach a
// terminal state, closing the stream cleanly).
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	exp := s.lookup(w, r)
	if exp == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.tel.liveSubscribers.Add(1)
	defer s.tel.liveSubscribers.Add(-1)

	var cursors []int
	if exp.feed != nil {
		cursors = make([]int, len(exp.jobs))
	}
	ticker := time.NewTicker(livePollPeriod)
	defer ticker.Stop()
	for {
		st := exp.status()
		terminal := st.State == "done" || st.State == "failed" || st.State == "canceled"
		var done bool
		var wait <-chan struct{}
		if exp.feed != nil {
			if terminal {
				exp.feed.finish(exp.resultTimelines())
			}
			var events []liveEvent
			events, done, wait = exp.feed.next(cursors)
			for _, ev := range events {
				raw, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: window\ndata: %s\n\n", raw)
				s.tel.windowsStreamed.Add(1)
				s.tel.fanoutLag.Observe(time.Since(ev.published).Seconds())
			}
			if len(events) > 0 {
				flusher.Flush()
			}
		} else {
			done = terminal
		}
		if done && terminal {
			raw, _ := json.Marshal(st)
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", raw)
			flusher.Flush()
			return
		}
		if wait == nil {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		case <-ticker.C:
		}
	}
}
