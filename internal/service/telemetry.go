package service

import (
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"jetty/internal/engine"
	"jetty/internal/obs"
	"jetty/internal/sim"
)

// telemetry is the server's instrument panel: every histogram, counter
// and gauge /metrics exposes, plus the structured logger and the
// slow-job threshold. Handlers record into the instruments as events
// happen; scrape-time gauges are set from one consistent snapshot in
// handleMetrics (see snapshotGauges).
type telemetry struct {
	log     *slog.Logger
	slowJob time.Duration
	reg     *obs.Registry

	// Latency histograms (the ISSUE 6 tentpole set, tenant-labeled since
	// ISSUE 8).
	httpLatency *obs.HistogramFamily // route, status, tenant
	queueWait   *obs.HistogramFamily // kind, tenant
	runDuration *obs.HistogramFamily // kind, tenant
	sweepCell   *obs.Histogram       // sweep cell run duration
	fanoutLag   *obs.Histogram       // publish → SSE write lag

	// Event counters owned by the handlers.
	expSubmitted    *obs.Counter
	sweepSubmitted  *obs.Counter
	traceUploads    *obs.Counter
	evicted         *obs.Counter
	windowsStreamed *obs.Counter

	// Per-tenant admission accounting: rejection events as they happen,
	// occupancy gauges from the per-scrape snapshot.
	admissionRejected *obs.CounterFamily // tenant, reason
	tenantJobs        *obs.GaugeFamily   // tenant
	tenantCells       *obs.GaugeFamily   // tenant
	tenantQueueDepth  *obs.GaugeFamily   // tenant
	tenantTraces      *obs.GaugeFamily   // tenant

	// seenTenants remembers every tenant that ever had a per-tenant gauge
	// set, so a tenant whose load drains to zero scrapes as 0 rather than
	// freezing at its last value. Guarded by tenantMu; bounded because
	// tenant names are operator-facing identities, not request-scoped.
	tenantMu    sync.Mutex
	seenTenants map[string]struct{}

	// Live gauges the handlers adjust directly.
	liveSubscribers *obs.Gauge

	// Scrape-time gauges, set from one snapshot per scrape.
	expsRegistered   *obs.Gauge
	sweepsRegistered *obs.Gauge
	jobsUnfinished   *obs.Gauge
	admissionOcc     *obs.Gauge
	tracesStored     *obs.Gauge
	traceBytes       *obs.Gauge
	feedBuffered     *obs.Gauge
	engineWorkers    *obs.Gauge
	engineQueueDepth *obs.Gauge
	engineInflight   *obs.Gauge
	draining         *obs.Gauge

	// Engine lifetime counters, mirrored from engine.Stats per scrape.
	engSubmitted *obs.Counter
	engExecuted  *obs.Counter
	engCacheHits *obs.Counter
	engCoalesced *obs.Counter
	engCanceled  *obs.Counter
	engFailed    *obs.Counter

	// Cluster instruments, registered only in coordinator role (nil
	// otherwise); set from one cluster.Stats() snapshot per scrape.
	clusterWorkersConfigured *obs.Gauge
	clusterWorkersAlive      *obs.Gauge
	clusterActiveSweeps      *obs.Gauge
	clusterMemoEntries       *obs.Gauge
	clusterCellsDispatched   *obs.Counter
	clusterCellsRescheduled  *obs.Counter
	clusterRedundant         *obs.Counter
	clusterMemoHits          *obs.Counter
	clusterWorkerCacheHits   *obs.Counter
	clusterCellsComputed     *obs.Counter
	clusterWorkerAlive       *obs.GaugeFamily // worker
	clusterWorkerQueueDepth  *obs.GaugeFamily // worker
	clusterWorkerInflight    *obs.GaugeFamily // worker
	clusterWorkerEWMA        *obs.GaugeFamily // worker

	// Durable-store instruments, registered only when the daemon runs
	// with -data-dir (nil otherwise); set from one store.Stats() snapshot
	// per scrape.
	storeResults     *obs.Gauge
	storeTraces      *obs.Gauge
	storePendingJobs *obs.Gauge
	storeHits        *obs.Counter
	storeWrites      *obs.Counter
	storeErrors      *obs.Counter
	engStoreHits     *obs.Counter

	// runEWMA holds an exponentially weighted moving average of executed
	// task run durations (float64 bits), feeding the Retry-After hint's
	// per-task cost estimate. Atomic: onRetire writes from engine
	// workers, writeRetryError reads from handlers.
	runEWMA atomic.Uint64
}

// DefaultSlowJob is the run-duration threshold past which a finished
// engine job is logged at warn level when Options leaves SlowJob zero.
const DefaultSlowJob = 30 * time.Second

func newTelemetry(log *slog.Logger, slowJob time.Duration, clustered, persistent bool) *telemetry {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if slowJob == 0 {
		slowJob = DefaultSlowJob
	}
	reg := obs.NewRegistry()
	t := &telemetry{log: log, slowJob: slowJob, reg: reg, seenTenants: make(map[string]struct{})}

	t.httpLatency = reg.NewHistogramFamily("jettyd_http_request_duration_seconds",
		"HTTP request latency by route pattern, status code and tenant.",
		[]string{"route", "status", "tenant"}, nil)
	t.queueWait = reg.NewHistogramFamily("jettyd_engine_queue_wait_seconds",
		"Time an executed engine task sat queued before a worker picked it up, by task kind and tenant.",
		[]string{"kind", "tenant"}, nil)
	t.runDuration = reg.NewHistogramFamily("jettyd_engine_run_duration_seconds",
		"Running time of executed engine tasks, by task kind and tenant.",
		[]string{"kind", "tenant"}, nil)
	t.sweepCell = reg.NewHistogramFamily("jettyd_sweep_cell_duration_seconds",
		"Running time of executed sweep cells.", nil, nil).With()
	t.fanoutLag = reg.NewHistogramFamily("jettyd_live_fanout_lag_seconds",
		"Lag between a timeline window's publication and its write to an SSE subscriber.",
		nil, nil).With()

	t.expSubmitted = reg.NewCounter("jettyd_experiments_submitted_total",
		"Experiments accepted via POST /v1/experiments.")
	t.sweepSubmitted = reg.NewCounter("jettyd_sweeps_submitted_total",
		"Sweeps accepted via POST /v1/sweeps.")
	t.traceUploads = reg.NewCounter("jettyd_trace_uploads_total",
		"Trace files stored via POST /v1/traces.")
	t.evicted = reg.NewCounter("jettyd_registry_evictions_total",
		"Finished experiments and sweeps evicted from the registry.")
	t.windowsStreamed = reg.NewCounter("jettyd_live_windows_streamed_total",
		"Timeline windows written to SSE subscribers.")

	t.admissionRejected = reg.NewCounterFamily("jettyd_admission_rejections_total",
		"Submissions rejected at admission, by tenant and reason (global_cap, tenant_jobs, tenant_cells, tenant_traces).",
		[]string{"tenant", "reason"})
	t.tenantJobs = reg.NewGaugeFamily("jettyd_tenant_jobs_unfinished",
		"Experiments and sweeps still queued or running, per tenant.",
		[]string{"tenant"})
	t.tenantCells = reg.NewGaugeFamily("jettyd_tenant_cells_unfinished",
		"Engine jobs (experiment runs and sweep cells) not yet terminal, per tenant.",
		[]string{"tenant"})
	t.tenantQueueDepth = reg.NewGaugeFamily("jettyd_tenant_queue_depth",
		"Engine executions waiting in the fair-share queue, per tenant.",
		[]string{"tenant"})
	t.tenantTraces = reg.NewGaugeFamily("jettyd_tenant_traces_stored",
		"Uploaded traces currently retained, per owning tenant.",
		[]string{"tenant"})

	t.liveSubscribers = reg.NewGauge("jettyd_live_subscribers",
		"SSE subscribers currently attached to /v1/experiments/{id}/live.")
	t.expsRegistered = reg.NewGauge("jettyd_experiments_registered",
		"Experiments currently in the registry.")
	t.sweepsRegistered = reg.NewGauge("jettyd_sweeps_registered",
		"Sweeps currently in the registry.")
	t.jobsUnfinished = reg.NewGauge("jettyd_jobs_unfinished",
		"Experiments and sweeps still queued or running (admission cap accounting).")
	t.admissionOcc = reg.NewGauge("jettyd_admission_occupancy",
		"Fraction of the admission cap in use (jobs unfinished / max unfinished).")
	t.tracesStored = reg.NewGauge("jettyd_traces_stored",
		"Uploaded traces currently retained.")
	t.traceBytes = reg.NewGauge("jettyd_trace_bytes_stored",
		"Total bytes of retained uploaded traces.")
	t.feedBuffered = reg.NewGauge("jettyd_live_feed_windows_buffered",
		"Timeline windows buffered across all live feeds awaiting (or replayable by) subscribers.")
	t.engineWorkers = reg.NewGauge("jettyd_engine_workers",
		"Engine worker pool size.")
	t.engineQueueDepth = reg.NewGauge("jettyd_engine_queue_depth",
		"Engine executions queued and not yet picked up by a worker.")
	t.engineInflight = reg.NewGauge("jettyd_engine_inflight",
		"Engine executions currently running on a worker.")
	t.draining = reg.NewGauge("jettyd_draining",
		"1 while the daemon is draining for shutdown, else 0.")

	t.engSubmitted = reg.NewCounter("jettyd_engine_submitted_total",
		"Tasks submitted to the engine.")
	t.engExecuted = reg.NewCounter("jettyd_engine_executed_total",
		"Tasks actually run by a worker.")
	t.engCacheHits = reg.NewCounter("jettyd_engine_cache_hits_total",
		"Submissions served from the finished-result cache.")
	t.engCoalesced = reg.NewCounter("jettyd_engine_coalesced_total",
		"Submissions attached to an identical in-flight run.")
	t.engCanceled = reg.NewCounter("jettyd_engine_canceled_total",
		"Executions that ended canceled.")
	t.engFailed = reg.NewCounter("jettyd_engine_failed_total",
		"Executions that ended in error.")

	if clustered {
		t.clusterWorkersConfigured = reg.NewGauge("jettyd_cluster_workers_configured",
			"Remote workers this coordinator is configured with.")
		t.clusterWorkersAlive = reg.NewGauge("jettyd_cluster_workers_alive",
			"Remote workers currently considered alive.")
		t.clusterActiveSweeps = reg.NewGauge("jettyd_cluster_active_sweeps",
			"Distributed sweeps currently scheduling or awaiting deliveries.")
		t.clusterMemoEntries = reg.NewGauge("jettyd_cluster_memo_entries",
			"Results resident in the coordinator's L2 digest-to-result memo.")
		t.clusterCellsDispatched = reg.NewCounter("jettyd_cluster_cells_dispatched_total",
			"Cells sent to workers (every dispatch of every attempt).")
		t.clusterCellsRescheduled = reg.NewCounter("jettyd_cluster_cells_rescheduled_total",
			"Cells requeued because their worker was declared dead mid-unit.")
		t.clusterRedundant = reg.NewCounter("jettyd_cluster_redundant_completions_total",
			"Cell results delivered for an already-resolved digest (a rescheduled cell's lost twin finishing anyway).")
		t.clusterMemoHits = reg.NewCounter("jettyd_cluster_memo_hits_total",
			"Cells resolved from the coordinator's L2 memo without a dispatch.")
		t.clusterWorkerCacheHits = reg.NewCounter("jettyd_cluster_worker_cache_hits_total",
			"Dispatched cells a worker served from its L1 engine cache (or coalesced onto in-flight work).")
		t.clusterCellsComputed = reg.NewCounter("jettyd_cluster_cells_computed_total",
			"Dispatched cells a worker actually executed.")
		t.clusterWorkerAlive = reg.NewGaugeFamily("jettyd_cluster_worker_alive",
			"1 while the worker is considered alive, else 0.", []string{"worker"})
		t.clusterWorkerQueueDepth = reg.NewGaugeFamily("jettyd_cluster_worker_queue_depth",
			"Last probed engine queue depth, per worker.", []string{"worker"})
		t.clusterWorkerInflight = reg.NewGaugeFamily("jettyd_cluster_worker_inflight",
			"Units this coordinator currently has dispatched, per worker.", []string{"worker"})
		t.clusterWorkerEWMA = reg.NewGaugeFamily("jettyd_cluster_worker_cell_latency_ewma_seconds",
			"Exponentially weighted moving average of observed per-cell latency, per worker.", []string{"worker"})
	}

	if persistent {
		t.storeResults = reg.NewGauge("jettyd_store_results",
			"Completed cell results resident in the durable store.")
		t.storeTraces = reg.NewGauge("jettyd_store_traces",
			"Uploaded traces resident in the durable store.")
		t.storePendingJobs = reg.NewGauge("jettyd_store_pending_jobs",
			"Journaled submissions not yet finished (replayed at next boot).")
		t.storeHits = reg.NewCounter("jettyd_store_hits_total",
			"Reads served from the durable store.")
		t.storeWrites = reg.NewCounter("jettyd_store_writes_total",
			"Entries durably written (results, traces, journal records).")
		t.storeErrors = reg.NewCounter("jettyd_store_errors_total",
			"Store operations that failed or discarded a corrupt entry.")
		t.engStoreHits = reg.NewCounter("jettyd_engine_store_hits_total",
			"Submissions served from the durable result store (the L3 under the engine cache).")
	}

	bi := obs.ReadBuildInfo()
	reg.NewGaugeFamily("jettyd_build_info",
		"Build metadata of the running jettyd binary (value is always 1).",
		[]string{"version", "go_version", "revision"}).
		With(bi.Version, bi.GoVersion, bi.Revision).Set(1)

	return t
}

// onRetire is the engine's telemetry hook: it observes the lifecycle
// histograms for executed tasks and logs slow jobs. Runs on engine
// workers — the histogram path is lock-free and allocation-free, the
// log fires only past the slow-job threshold.
func (t *telemetry) onRetire(tr engine.TaskTrace) {
	if tr.Disposition != engine.DispositionExecuted {
		return // cache hits and coalesced submissions did no work of their own
	}
	kind := tr.Kind
	if kind == "" {
		kind = "other"
	}
	tenant := tr.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	t.queueWait.With(kind, tenant).Observe(tr.QueueWait.Seconds())
	t.runDuration.With(kind, tenant).Observe(tr.Run.Seconds())
	t.observeRunEWMA(tr.Run.Seconds())
	if kind == sim.KindSweep {
		t.sweepCell.Observe(tr.Run.Seconds())
	}
	if tr.Run >= t.slowJob {
		t.log.Warn("slow job",
			"kind", kind,
			"tenant", tenant,
			"key", tr.Key,
			"origin", tr.Origin,
			"state", tr.State.String(),
			"queue_wait_ms", durationMS(tr.QueueWait),
			"run_ms", durationMS(tr.Run))
	}
}

// runEWMAWeight is the smoothing factor for the executed-run-duration
// moving average: recent runs dominate within a handful of samples
// while one outlier cannot swing the Retry-After estimate by itself.
const runEWMAWeight = 0.2

// observeRunEWMA folds one executed run's duration into the moving
// average. Lock-free CAS loop: onRetire runs on engine workers.
func (t *telemetry) observeRunEWMA(sec float64) {
	for {
		old := t.runEWMA.Load()
		cur := math.Float64frombits(old)
		next := cur + runEWMAWeight*(sec-cur)
		if old == 0 {
			next = sec // first sample seeds the average
		}
		if t.runEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// runEWMASeconds reads the executed-run-duration moving average; 0
// until the first task retires.
func (t *telemetry) runEWMASeconds() float64 {
	return math.Float64frombits(t.runEWMA.Load())
}

// tenantLoad is one tenant's point-in-time occupancy, computed under the
// registry lock per scrape (see snapshotGauges).
type tenantLoad struct {
	jobs   int // unfinished experiments + sweeps
	cells  int // non-terminal engine jobs across them
	queued int // executions waiting in the engine's fair-share queue
	traces int // retained uploaded traces owned by the tenant
}

// setTenantGauges publishes one consistent per-tenant snapshot. Tenants
// seen on earlier scrapes but absent from this one are explicitly zeroed
// so their series do not freeze at stale values.
func (t *telemetry) setTenantGauges(loads map[string]tenantLoad) {
	t.tenantMu.Lock()
	defer t.tenantMu.Unlock()
	for name := range t.seenTenants {
		if _, ok := loads[name]; !ok {
			loads[name] = tenantLoad{}
		}
	}
	for name, l := range loads {
		t.seenTenants[name] = struct{}{}
		t.tenantJobs.With(name).Set(float64(l.jobs))
		t.tenantCells.With(name).Set(float64(l.cells))
		t.tenantQueueDepth.With(name).Set(float64(l.queued))
		t.tenantTraces.With(name).Set(float64(l.traces))
	}
}

// durationMS renders a duration as fractional milliseconds for logs and
// JSON payloads.
func durationMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
