package service

import (
	"fmt"
	"net/http"
)

// GET /v1/cluster/status reports the coordinator's view of the cluster:
// the worker table (liveness, probed queue depth, per-cell latency
// EWMA, dispatch counters) and the cluster-wide counters (cells
// dispatched/rescheduled, redundant completions, two-tier cache hits).
//
// The whole payload is one cluster.Stats() snapshot — every field is
// copied under a single coordinator-mutex hold — so a response can
// never mix worker states from different instants while reschedules
// run concurrently (the same torn-read discipline as handleMetrics).
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("not a coordinator (start jettyd with -role coordinator)"))
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Stats())
}
