// Package service implements jettyd's HTTP/JSON API: submit an
// experiment, poll its status/progress, fetch the finished result
// tables. It is a thin, stateless-looking shell over the engine — the
// engine enforces the concurrency cap (worker pool) and deduplicates
// identical work (in-flight coalescing plus the content-addressed result
// cache), so any number of concurrent clients can drive one daemon
// safely.
//
// API (all bodies JSON):
//
//	GET    /healthz                     liveness + engine stats
//	GET    /v1/workloads                the Table 2 applications
//	GET    /v1/filters                  the figure filter configurations
//	POST   /v1/experiments              submit (SubmitRequest) -> 202 ExperimentStatus
//	GET    /v1/experiments              list all experiments
//	GET    /v1/experiments/{id}         status/progress
//	GET    /v1/experiments/{id}/result  finished results + rendered tables
//	DELETE /v1/experiments/{id}         cancel and forget
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"jetty/internal/engine"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers is the engine pool size (0 = GOMAXPROCS).
	Workers int
	// CacheEntries is the engine result-cache capacity (0 = default).
	CacheEntries int
	// MaxUnfinished bounds experiments that are queued or running; extra
	// submissions get 429. 0 means the default (64).
	MaxUnfinished int
	// MaxRetained bounds the registry as a whole: when a submission
	// would exceed it, the oldest finished experiments (and the results
	// their jobs pin) are evicted. 0 means the default (512). Clients
	// that fetch promptly never notice; a long-running daemon never
	// accumulates results without bound.
	MaxRetained int
}

// Defaults for the zero Options values.
const (
	DefaultMaxUnfinished = 64
	DefaultMaxRetained   = 512
)

// Server owns the engine and the experiment registry.
type Server struct {
	runner        *sim.Runner
	maxUnfinished int
	maxRetained   int

	mu    sync.Mutex
	exps  map[string]*experiment
	order []string // insertion order, for stable listings
	seq   int
}

// experiment is one submitted batch of app runs.
type experiment struct {
	id    string
	req   SubmitRequest
	cfg   smp.Config
	specs []workload.Spec
	jobs  []*engine.Job
}

// New builds a server (and its engine). Close it to stop the workers.
func New(opts Options) *Server {
	maxUnfinished := opts.MaxUnfinished
	if maxUnfinished <= 0 {
		maxUnfinished = DefaultMaxUnfinished
	}
	maxRetained := opts.MaxRetained
	if maxRetained <= 0 {
		maxRetained = DefaultMaxRetained
	}
	eng := engine.New(engine.Options{Workers: opts.Workers, CacheEntries: opts.CacheEntries})
	return &Server{
		runner:        sim.NewRunner(eng),
		maxUnfinished: maxUnfinished,
		maxRetained:   maxRetained,
		exps:          make(map[string]*experiment),
	}
}

// Close stops the engine, canceling everything in flight.
func (s *Server) Close() { s.runner.Engine().Close() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/filters", s.handleFilters)
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/experiments/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/experiments/{id}", s.handleCancel)
	return mux
}

// SubmitRequest describes one experiment.
type SubmitRequest struct {
	// Apps are Table 2 application names or abbreviations ("Barnes",
	// "un", ...), plus "Throughput"/"tp". Empty means the full suite.
	Apps []string `json:"apps,omitempty"`
	// CPUs is the machine width (default 4).
	CPUs int `json:"cpus,omitempty"`
	// Scale multiplies every access budget (default 1 = the paper's).
	Scale float64 `json:"scale,omitempty"`
	// Filters are JETTY configuration names to attach; empty means the
	// union bank used by all of the paper's figures.
	Filters []string `json:"filters,omitempty"`
	// NSB disables L2 subblocking (the §4.3 comparison machine).
	NSB bool `json:"nsb,omitempty"`
}

// JobStatus is one app run's progress snapshot.
type JobStatus struct {
	App      string  `json:"app"`
	Key      string  `json:"key"` // content address (cache/dedup key)
	State    string  `json:"state"`
	Done     uint64  `json:"done"`
	Total    uint64  `json:"total"`
	Fraction float64 `json:"fraction"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// ExperimentStatus is the aggregate progress snapshot.
type ExperimentStatus struct {
	ID       string      `json:"id"`
	State    string      `json:"state"` // queued|running|done|failed|canceled
	Done     uint64      `json:"done"`
	Total    uint64      `json:"total"`
	Fraction float64     `json:"fraction"`
	Jobs     []JobStatus `json:"jobs"`
}

// ExperimentResult is the finished payload.
type ExperimentResult struct {
	ID      string            `json:"id"`
	Request SubmitRequest     `json:"request"`
	Results []sim.AppResult   `json:"results"`
	Tables  map[string]string `json:"tables"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eng := s.runner.Engine()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"workers": eng.Workers(),
		"stats":   eng.Stats(),
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wl struct {
		Name     string `json:"name"`
		Abbrev   string `json:"abbrev"`
		Accesses uint64 `json:"accesses"`
	}
	var out []wl
	for _, sp := range workload.Specs() {
		out = append(out, wl{sp.Name, sp.Abbrev, sp.Accesses})
	}
	tp := workload.Throughput()
	out = append(out, wl{tp.Name, tp.Abbrev, tp.Accesses})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sim.AllFigureConfigs())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	specs, cfg, err := buildExperiment(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.unfinishedLocked() >= s.maxUnfinished {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("%d experiments already in flight", s.maxUnfinished))
		return
	}
	s.seq++
	exp := &experiment{
		id:    fmt.Sprintf("exp-%06d", s.seq),
		req:   req,
		cfg:   cfg,
		specs: specs,
	}
	// Submit while holding the registry lock so a canceling client can
	// never observe the experiment without its jobs. Submit never blocks
	// on the work itself.
	for _, sp := range specs {
		exp.jobs = append(exp.jobs, s.runner.Submit(sp, cfg))
	}
	s.exps[exp.id] = exp
	s.order = append(s.order, exp.id)
	s.evictLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, exp.status())
}

// Request bounds: everything here arrives from unauthenticated clients,
// so every dimension a request can grow in is capped.
const (
	// MaxScale bounds the access-budget multiplier: the largest Table 2
	// budget (3M references) times MaxScale stays a finite,
	// hours-not-years job and far from uint64 conversion overflow.
	MaxScale = 10_000
	// maxRequestBytes bounds the submit body size.
	maxRequestBytes = 1 << 20
	// maxListLen bounds the apps and filters list lengths (the full
	// suite is 10 apps; the full figure bank is 21 configurations).
	maxListLen = 64
)

// buildExperiment validates a request into runnable specs and a machine.
func buildExperiment(req SubmitRequest) ([]workload.Spec, smp.Config, error) {
	if req.Scale < 0 || req.Scale > MaxScale {
		return nil, smp.Config{}, fmt.Errorf("scale %v out of range (0, %d]", req.Scale, MaxScale)
	}
	if len(req.Apps) > maxListLen || len(req.Filters) > maxListLen {
		return nil, smp.Config{}, fmt.Errorf("apps/filters lists capped at %d entries", maxListLen)
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	cpus := req.CPUs
	if cpus == 0 {
		cpus = 4
	}

	var specs []workload.Spec
	if len(req.Apps) == 0 {
		specs = workload.Specs()
	} else {
		for _, name := range req.Apps {
			var sp workload.Spec
			if strings.EqualFold(name, "Throughput") || name == "tp" {
				sp = workload.Throughput()
			} else {
				var err error
				sp, err = workload.ByName(name)
				if err != nil {
					return nil, smp.Config{}, err
				}
			}
			specs = append(specs, sp)
		}
	}
	for i := range specs {
		specs[i] = specs[i].Scale(scale)
	}

	cfg, err := sim.PaperBankConfig(cpus, req.NSB, req.Filters)
	if err != nil {
		return nil, smp.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, smp.Config{}, err
	}
	return specs, cfg, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]ExperimentStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.exps[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *experiment {
	id := r.PathValue("id")
	s.mu.Lock()
	exp := s.exps[id]
	s.mu.Unlock()
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
	}
	return exp
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if exp := s.lookup(w, r); exp != nil {
		writeJSON(w, http.StatusOK, exp.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	exp := s.lookup(w, r)
	if exp == nil {
		return
	}
	st := exp.status()
	if st.State != "done" {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  "experiment not finished",
			"status": st,
		})
		return
	}
	results := make([]sim.AppResult, len(exp.jobs))
	for i, j := range exp.jobs {
		v, err := j.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		results[i] = v.(sim.AppResult).Clone()
	}
	writeJSON(w, http.StatusOK, ExperimentResult{
		ID:      exp.id,
		Request: exp.req,
		Results: results,
		Tables:  renderTables(results, exp.cfg),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	exp := s.exps[id]
	if exp != nil {
		delete(s.exps, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
		return
	}
	for _, j := range exp.jobs {
		j.Cancel()
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceled"})
}

// evictLocked drops the oldest finished experiments until the registry
// is within maxRetained, releasing the results their jobs pin. Unfinished
// experiments are never evicted (the admission cap bounds those).
func (s *Server) evictLocked() {
	if len(s.order) <= s.maxRetained {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxRetained
	for _, id := range s.order {
		exp := s.exps[id]
		if excess > 0 && !exp.unfinished() {
			delete(s.exps, id)
			for _, j := range exp.jobs {
				j.Cancel() // no-op on finished jobs; releases the handle
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// unfinishedLocked counts experiments still queued or running.
func (s *Server) unfinishedLocked() int {
	n := 0
	for _, exp := range s.exps {
		if exp.unfinished() {
			n++
		}
	}
	return n
}

// unfinished reports whether any of the experiment's jobs is still
// queued or running. Unlike status() it allocates nothing: it runs under
// the registry mutex on every submission.
func (e *experiment) unfinished() bool {
	for _, j := range e.jobs {
		if !j.State().Terminal() {
			return true
		}
	}
	return false
}

// status aggregates the per-job snapshots.
func (e *experiment) status() ExperimentStatus {
	out := ExperimentStatus{ID: e.id}
	counts := map[engine.State]int{}
	for i, j := range e.jobs {
		js := j.Status()
		counts[js.State]++
		out.Done += js.Done
		out.Total += js.Total
		out.Jobs = append(out.Jobs, JobStatus{
			App:      e.specs[i].Name,
			Key:      js.Key,
			State:    js.State.String(),
			Done:     js.Done,
			Total:    js.Total,
			Fraction: js.Fraction(),
			CacheHit: js.CacheHit,
			Error:    js.Err,
		})
	}
	switch {
	case counts[engine.Failed] > 0:
		out.State = "failed"
	case counts[engine.Canceled] > 0:
		out.State = "canceled"
	case counts[engine.Running] > 0 || (counts[engine.Queued] > 0 && counts[engine.Done] > 0):
		out.State = "running"
	case counts[engine.Queued] > 0:
		out.State = "queued"
	default:
		out.State = "done"
	}
	if out.Total > 0 {
		out.Fraction = float64(out.Done) / float64(out.Total)
	}
	if out.State == "done" {
		out.Fraction = 1
	}
	return out
}

// renderTables renders the paper's reports that apply to one finished
// run set: the workload characterization, the coverage of every filter
// in the bank, and (when the Figure 6 hybrids are attached) the energy
// figure.
func renderTables(results []sim.AppResult, cfg smp.Config) map[string]string {
	tables := map[string]string{
		"table2": sim.Table2Report(results),
		"table3": sim.Table3Report(results),
	}
	if len(results) > 0 && len(results[0].FilterNames) > 0 {
		names := append([]string(nil), results[0].FilterNames...)
		sort.Strings(names)
		tables["coverage"] = sim.CoverageReport("Filter coverage", results, names, "")
		tables["fig6"] = sim.Fig6Report(results, cfg)
	}
	return tables
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
