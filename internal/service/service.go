// Package service implements jettyd's HTTP/JSON API: submit an
// experiment, poll its status/progress, fetch the finished result
// tables. It is a thin, stateless-looking shell over the engine — the
// engine enforces the concurrency cap (worker pool) and deduplicates
// identical work (in-flight coalescing plus the content-addressed result
// cache), so any number of concurrent clients can drive one daemon
// safely.
//
// API (bodies JSON unless noted):
//
//	GET    /healthz                     liveness + engine stats
//	GET    /metrics                     service counters, Prometheus text format
//	GET    /v1/workloads                the workload library (Table 2 + scenarios)
//	GET    /v1/filters                  the figure filter configurations
//	POST   /v1/experiments              submit (SubmitRequest) -> 202 ExperimentStatus
//	GET    /v1/experiments              list all experiments
//	GET    /v1/experiments/{id}         status/progress
//	GET    /v1/experiments/{id}/result  finished results + rendered tables
//	GET    /v1/experiments/{id}/timeline  finished per-app timelines (sampled runs)
//	GET    /v1/experiments/{id}/live    SSE stream of timeline windows while running
//	DELETE /v1/experiments/{id}         cancel and forget
//	POST   /v1/sweeps                   submit (sweep.Spec) -> 202 SweepStatus
//	GET    /v1/sweeps                   list all sweeps
//	GET    /v1/sweeps/{id}              aggregate + per-cell status
//	GET    /v1/sweeps/{id}/result       finished metrics + rendered aggregate tables
//	DELETE /v1/sweeps/{id}              cancel and forget
//	POST   /v1/traces                   upload a raw JTRC trace file -> TraceInfo
//	GET    /v1/traces                   list uploaded traces
//	GET    /v1/traces/{digest}          one uploaded trace's info
//	DELETE /v1/traces/{digest}          forget an uploaded trace
//
// Uploaded traces are replayed by submitting an experiment whose
// "trace" field names the upload's digest; the engine caches replay
// results under (trace digest, machine config), so identical uploads
// from different clients share one execution.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/engine"
	"jetty/internal/metrics"
	"jetty/internal/obs"
	"jetty/internal/sim"
	"jetty/internal/smp"
	"jetty/internal/store"
	"jetty/internal/sweep"
	"jetty/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers is the engine pool size (0 = GOMAXPROCS).
	Workers int
	// CacheEntries is the engine result-cache capacity (0 = default).
	CacheEntries int
	// MaxUnfinished bounds experiments that are queued or running across
	// all tenants; extra submissions get 503 + Retry-After (the daemon as
	// a whole is saturated). 0 means the default (64).
	MaxUnfinished int
	// MaxUnfinishedPerTenant bounds one tenant's unfinished experiments
	// and sweeps; extra submissions get 429 + Retry-After (the tenant is
	// over quota, the daemon is not). 0 means the default (16).
	MaxUnfinishedPerTenant int
	// MaxQueuedCellsPerTenant bounds one tenant's non-terminal engine
	// jobs (experiment runs plus sweep cells) so a single giant sweep
	// cannot consume a tenant-jobs quota slot while monopolizing the
	// engine; extra submissions get 429 + Retry-After. 0 means the
	// default (2048).
	MaxQueuedCellsPerTenant int
	// MaxTracesPerTenant bounds one tenant's stored uploads within the
	// global MaxTraces store; extra uploads get 429 + Retry-After. 0
	// means the default (8).
	MaxTracesPerTenant int
	// TenantWeights sets per-tenant fair-share weights for the engine's
	// deficit-round-robin queue: a tenant with weight w drains w tasks
	// per scheduling round. Unlisted tenants (and weights < 1) get 1.
	TenantWeights map[string]int
	// MaxRetained bounds the registry as a whole: when a submission
	// would exceed it, the oldest finished experiments (and the results
	// their jobs pin) are evicted. 0 means the default (512). Clients
	// that fetch promptly never notice; a long-running daemon never
	// accumulates results without bound.
	MaxRetained int
	// MaxTraces bounds the uploaded-trace store; further uploads get
	// 507 until one is deleted. 0 means the default (32).
	MaxTraces int
	// MaxTraceBytes bounds one uploaded trace file. 0 means the default
	// (64 MB).
	MaxTraceBytes int64
	// Logger receives the access log, slow-job records and other
	// structured events. nil discards them (tests, embedded use).
	Logger *slog.Logger
	// SlowJob is the run-duration threshold past which a finished engine
	// job is logged at warn level. 0 means DefaultSlowJob (30s).
	SlowJob time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ on the service
	// handler. Off by default: the profiler is an operator tool, not
	// part of the public API surface.
	Pprof bool
	// Cluster, when set, makes this daemon a coordinator: POST
	// /v1/sweeps shards cells across the coordinator's workers instead
	// of the local engine, and GET /v1/cluster/status reports the
	// cluster. Experiments, traces and direct cell units still run
	// locally. The server takes ownership: Close closes the coordinator.
	Cluster *cluster.Coordinator
	// Role names the daemon's cluster role in /healthz ("single",
	// "worker", "coordinator"; empty = "single"). Informational.
	Role string
	// Store, when set, makes the daemon durable: uploaded traces,
	// unfinished experiment/sweep submissions and completed engine
	// results persist to disk, and New replays the store — re-admitting
	// unfinished jobs and serving already-computed cells from disk — so
	// a restart (or crash) resumes work instead of losing it. The store
	// also acts as an L3 result tier under the engine's LRU. nil keeps
	// everything in memory (the pre-ISSUE-10 behavior).
	Store *store.Store
}

// Defaults for the zero Options values.
const (
	DefaultMaxUnfinished           = 64
	DefaultMaxUnfinishedPerTenant  = 16
	DefaultMaxQueuedCellsPerTenant = 2048
	DefaultMaxTracesPerTenant      = 8
	DefaultMaxRetained             = 512
	DefaultMaxTraces               = 32
	DefaultMaxTraceBytes           = 64 << 20
)

// Server owns the engine, the experiment registry and the uploaded-
// trace store.
type Server struct {
	runner          *sim.Runner
	maxUnfinished   int
	maxTenantJobs   int
	maxTenantCells  int
	maxTenantTraces int
	maxRetained     int
	maxTraces       int
	maxTraceBytes   int64
	pprof           bool
	cluster         *cluster.Coordinator // nil outside coordinator role
	role            string
	store           *store.Store // nil when the daemon is not durable

	tel      *telemetry  // instruments, logger, slow-job threshold
	draining atomic.Bool // set by SetDraining during shutdown

	mu          sync.Mutex
	exps        map[string]*experiment
	order       []string // insertion order, for stable listings
	seq         int
	sweeps      map[string]*sweepJob
	sweepOrder  []string
	cellRuns    map[string]*cellRun       // in-flight POST /v1/cells units
	traces      map[string]sim.TraceInput // by digest
	traceOrder  []string
	traceOwners map[string]string // digest -> uploading tenant (quota accounting)
}

// experiment is one submitted batch of app runs.
type experiment struct {
	id     string
	tenant string
	req    SubmitRequest
	cfg    smp.Config
	specs  []workload.Spec
	jobs   []*engine.Job

	// interval and feed are set on sampled experiments: interval is the
	// timeline window width, feed the live-stream buffer the samplers'
	// OnWindow hooks publish into.
	interval uint64
	feed     *liveFeed
}

// New builds a server (and its engine). Close it to stop the workers.
func New(opts Options) *Server {
	maxUnfinished := opts.MaxUnfinished
	if maxUnfinished <= 0 {
		maxUnfinished = DefaultMaxUnfinished
	}
	maxTenantJobs := opts.MaxUnfinishedPerTenant
	if maxTenantJobs <= 0 {
		maxTenantJobs = DefaultMaxUnfinishedPerTenant
	}
	maxTenantCells := opts.MaxQueuedCellsPerTenant
	if maxTenantCells <= 0 {
		maxTenantCells = DefaultMaxQueuedCellsPerTenant
	}
	maxTenantTraces := opts.MaxTracesPerTenant
	if maxTenantTraces <= 0 {
		maxTenantTraces = DefaultMaxTracesPerTenant
	}
	maxRetained := opts.MaxRetained
	if maxRetained <= 0 {
		maxRetained = DefaultMaxRetained
	}
	maxTraces := opts.MaxTraces
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	maxTraceBytes := opts.MaxTraceBytes
	if maxTraceBytes <= 0 {
		maxTraceBytes = DefaultMaxTraceBytes
	}
	role := opts.Role
	if role == "" {
		role = "single"
	}
	tel := newTelemetry(opts.Logger, opts.SlowJob, opts.Cluster != nil, opts.Store != nil)
	// A nil *store.Store must yield a nil ResultStore interface (not a
	// non-nil interface holding a nil pointer), or the engine would probe
	// a dead tier on every submission.
	var resultStore engine.ResultStore
	if opts.Store != nil {
		resultStore = sim.NewDiskCache(opts.Store)
	}
	eng := engine.New(engine.Options{
		Workers:       opts.Workers,
		CacheEntries:  opts.CacheEntries,
		OnRetire:      tel.onRetire,
		TenantWeights: opts.TenantWeights,
		Store:         resultStore,
	})
	s := &Server{
		runner:          sim.NewRunner(eng),
		maxUnfinished:   maxUnfinished,
		maxTenantJobs:   maxTenantJobs,
		maxTenantCells:  maxTenantCells,
		maxTenantTraces: maxTenantTraces,
		maxRetained:     maxRetained,
		maxTraces:       maxTraces,
		maxTraceBytes:   maxTraceBytes,
		pprof:           opts.Pprof,
		cluster:         opts.Cluster,
		role:            role,
		store:           opts.Store,
		tel:             tel,
		exps:            make(map[string]*experiment),
		sweeps:          make(map[string]*sweepJob),
		cellRuns:        make(map[string]*cellRun),
		traces:          make(map[string]sim.TraceInput),
		traceOwners:     make(map[string]string),
	}
	s.restore()
	return s
}

// SetDraining flips the readiness state /healthz reports: a draining
// daemon answers 503 so load balancers stop routing to it while
// in-flight requests finish. jettyd sets it at shutdown-signal time,
// before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Close stops the engine (canceling everything in flight) and, in
// coordinator role, the cluster coordinator.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.runner.Engine().Close()
}

// Handler returns the service's HTTP handler: the API mux wrapped in
// the request-ID / access-log / latency middleware (middleware.go).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/filters", s.handleFilters)
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/experiments/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/experiments/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/experiments/{id}/live", s.handleLive)
	mux.HandleFunc("DELETE /v1/experiments/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("POST /v1/cells", s.handleCells)
	mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{digest}", s.handleTraceInfo)
	mux.HandleFunc("DELETE /v1/traces/{digest}", s.handleTraceDelete)
	return s.withTelemetry(mux)
}

// SubmitRequest describes one experiment.
type SubmitRequest struct {
	// Apps are workload library names or abbreviations ("Barnes", "un",
	// "Throughput", "WebServer", ...). Empty means the Table 2 suite —
	// unless Trace is set.
	Apps []string `json:"apps,omitempty"`
	// Trace is the digest of a previously uploaded trace (POST
	// /v1/traces): the experiment replays that stored stream instead of
	// generating workloads. Mutually exclusive with Apps and Scale.
	Trace string `json:"trace,omitempty"`
	// CPUs is the machine width (default 4, or the trace's own width
	// for replay experiments).
	CPUs int `json:"cpus,omitempty"`
	// Scale multiplies every access budget (default 1 = the paper's).
	Scale float64 `json:"scale,omitempty"`
	// Filters are JETTY configuration names to attach; empty means the
	// union bank used by all of the paper's figures.
	Filters []string `json:"filters,omitempty"`
	// NSB disables L2 subblocking (the §4.3 comparison machine).
	NSB bool `json:"nsb,omitempty"`
	// Interval, when nonzero, samples every run with that timeline
	// window width (accesses per window). The finished experiment then
	// serves GET .../timeline, and GET .../live streams windows while it
	// runs. Sampling never changes the experiment's results.
	Interval uint64 `json:"interval,omitempty"`
}

// JobStatus is one app run's progress snapshot, including the lifecycle
// timing breakdown (queue wait, run time, disposition) and the request
// ID whose submission created the underlying execution — the same ID
// that request's response carried as X-Request-Id and its access-log
// record carried as "id".
type JobStatus struct {
	App         string  `json:"app"`
	Key         string  `json:"key"` // content address (cache/dedup key)
	State       string  `json:"state"`
	Done        uint64  `json:"done"`
	Total       uint64  `json:"total"`
	Fraction    float64 `json:"fraction"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	Disposition string  `json:"disposition,omitempty"` // executed|cache_hit|coalesced
	Origin      string  `json:"origin,omitempty"`      // submitting request ID
	Tenant      string  `json:"tenant,omitempty"`      // submitting tenant
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	RunMS       float64 `json:"run_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// ExperimentStatus is the aggregate progress snapshot.
type ExperimentStatus struct {
	ID       string      `json:"id"`
	Tenant   string      `json:"tenant,omitempty"`
	State    string      `json:"state"` // queued|running|done|failed|canceled
	Done     uint64      `json:"done"`
	Total    uint64      `json:"total"`
	Fraction float64     `json:"fraction"`
	Jobs     []JobStatus `json:"jobs"`
}

// ExperimentResult is the finished payload.
type ExperimentResult struct {
	ID      string            `json:"id"`
	Request SubmitRequest     `json:"request"`
	Results []sim.AppResult   `json:"results"`
	Tables  map[string]string `json:"tables"`
}

// handleHealthz is readiness-aware: a healthy daemon answers 200, a
// draining one (shutdown signal received, connections finishing) 503 —
// so a load balancer or orchestrator stops routing new work while
// in-flight requests complete.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eng := s.runner.Engine()
	state, code := "ready", http.StatusOK
	if s.draining.Load() {
		state, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ok":      code == http.StatusOK,
		"state":   state,
		"role":    s.role,
		"workers": eng.Workers(),
		"stats":   eng.Stats(),
	})
}

// handleBuildInfo reports the running binary's build metadata (module
// version, go version, VCS revision) — the JSON twin of the
// jettyd_build_info metric.
func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.ReadBuildInfo())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wl struct {
		Name     string `json:"name"`
		Abbrev   string `json:"abbrev"`
		Accesses uint64 `json:"accesses"`
	}
	var out []wl
	for _, sp := range workload.Library() {
		out = append(out, wl{sp.Name, sp.Abbrev, sp.Accesses})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sim.AllFigureConfigs())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeJSON(w, r, false, &req) {
		return
	}
	specs, traceIn, cfg, err := s.buildExperiment(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	tenant := tenantFrom(r.Context())
	origin := obs.RequestID(r.Context())
	s.mu.Lock()
	if code, reason, err := s.admitLocked(tenant, len(specs)); err != nil {
		s.mu.Unlock()
		s.tel.admissionRejected.With(tenant, reason).Add(1)
		s.writeRetryError(w, code, tenant, err)
		return
	}
	exp := s.registerExperimentLocked("", tenant, origin, req, specs, traceIn, cfg)
	s.mu.Unlock()

	if s.store != nil {
		s.persistJob(jobJournal{ID: exp.id, Kind: jobKindExperiment, Tenant: tenant, Origin: origin, Request: &req})
		go s.watchExperiment(exp)
	}
	s.tel.expSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, exp.status())
}

// registerExperimentLocked builds the experiment, submits its engine
// tasks and registers it — the shared tail of a live submission
// (handleSubmit) and a journal replay (restore). id == "" allocates the
// next exp-NNNNNN; restore passes the journaled ID so clients' handles
// stay valid across a restart. Caller holds s.mu.
func (s *Server) registerExperimentLocked(id, tenant, origin string, req SubmitRequest, specs []workload.Spec, traceIn *sim.TraceInput, cfg smp.Config) *experiment {
	if id == "" {
		s.seq++
		id = fmt.Sprintf("exp-%06d", s.seq)
	}
	exp := &experiment{
		id:       id,
		tenant:   tenant,
		req:      req,
		cfg:      cfg,
		specs:    specs,
		interval: req.Interval,
	}
	// Sampled experiments stream into a live feed; each job's sampler
	// publishes under its own index. The hook only fires for executions
	// this submission actually started — cache hits and coalesced runs
	// are topped up from the retained timelines when the stream finishes.
	if exp.interval > 0 {
		apps := make([]string, len(specs))
		for i, sp := range specs {
			apps[i] = sp.Name
		}
		exp.feed = newLiveFeed(apps)
	}
	// Streamed windows must match the retained timeline's exactly, so
	// the hook attaches the same energy breakdown buildTimeline will.
	windowEnergy := sim.WindowEnergy(cfg)
	sampleOpt := func(idx int) sim.SampleOptions {
		return sim.SampleOptions{
			Interval: exp.interval,
			OnWindow: func(win *metrics.Window) {
				win.Energy = windowEnergy(win)
				exp.feed.publish(idx, win)
			},
		}
	}
	// Submit while holding the registry lock so a canceling client can
	// never observe the experiment without its jobs. Submit never blocks
	// on the work itself. Every task carries the submitting request's ID
	// as its origin, so job telemetry (status JSON, slow-job logs)
	// correlates back to the X-Request-Id the client saw — and the
	// request's tenant, so the engine's fair-share queue schedules it
	// under that identity.
	eng := s.runner.Engine()
	submit := func(t engine.Task) {
		t.Origin = origin
		t.Tenant = tenant
		exp.jobs = append(exp.jobs, eng.Submit(t))
	}
	switch {
	case traceIn != nil && exp.interval > 0:
		submit(sim.SampledTraceTask(*traceIn, cfg, sampleOpt(0)))
	case traceIn != nil:
		submit(sim.TraceTask(*traceIn, cfg))
	case exp.interval > 0:
		for i, sp := range specs {
			submit(sim.SampledTask(sp, cfg, sampleOpt(i)))
		}
	default:
		for _, sp := range specs {
			submit(sim.Task(sp, cfg))
		}
	}
	s.exps[exp.id] = exp
	s.order = append(s.order, exp.id)
	s.evictLocked()
	return exp
}

// Request bounds: everything here arrives from unauthenticated clients,
// so every dimension a request can grow in is capped.
const (
	// MaxScale bounds the access-budget multiplier: the largest Table 2
	// budget (3M references) times MaxScale stays a finite,
	// hours-not-years job and far from uint64 conversion overflow.
	MaxScale = 10_000
	// maxRequestBytes bounds the submit body size.
	maxRequestBytes = 1 << 20
	// maxListLen bounds the apps and filters list lengths (the full
	// suite is 10 apps; the full figure bank is 21 configurations).
	maxListLen = 64
	// maxTimelineWindows bounds one sampled run's timeline: interval and
	// budget must combine to at most this many windows, or a tiny
	// interval against a scaled-up budget would retain unbounded window
	// lists per cached result. The same cap guards sweep cells; sharing
	// the constant keeps the two admission layers consistent.
	maxTimelineWindows = sweep.MaxWindowsPerCell
)

// buildExperiment validates a request into runnable specs (or a stored
// trace to replay) and a machine.
func (s *Server) buildExperiment(req SubmitRequest) ([]workload.Spec, *sim.TraceInput, smp.Config, error) {
	if req.Scale < 0 || req.Scale > MaxScale {
		return nil, nil, smp.Config{}, fmt.Errorf("scale %v out of range (0, %d]", req.Scale, MaxScale)
	}
	if len(req.Apps) > maxListLen || len(req.Filters) > maxListLen {
		return nil, nil, smp.Config{}, fmt.Errorf("apps/filters lists capped at %d entries", maxListLen)
	}
	cpus := req.CPUs

	var specs []workload.Spec
	var traceIn *sim.TraceInput
	switch {
	case req.Trace != "":
		// Replay experiment: the stored stream is the workload.
		if len(req.Apps) > 0 {
			return nil, nil, smp.Config{}, fmt.Errorf("apps and trace are mutually exclusive")
		}
		if req.Scale != 0 && req.Scale != 1 {
			return nil, nil, smp.Config{}, fmt.Errorf("scale does not apply to a trace replay")
		}
		s.mu.Lock()
		in, ok := s.traces[req.Trace]
		s.mu.Unlock()
		if !ok {
			return nil, nil, smp.Config{}, fmt.Errorf("unknown trace %q (upload it via POST /v1/traces)", req.Trace)
		}
		if cpus == 0 {
			cpus = in.CPUs
		}
		if cpus < in.CPUs {
			return nil, nil, smp.Config{}, fmt.Errorf("trace needs %d cpus, request says %d", in.CPUs, cpus)
		}
		traceIn = &in
		specs = []workload.Spec{{Name: in.Name, Accesses: in.Records}}

	case len(req.Apps) == 0:
		specs = workload.Specs()
	default:
		for _, name := range req.Apps {
			sp, err := workload.Lookup(name)
			if err != nil {
				return nil, nil, smp.Config{}, err
			}
			specs = append(specs, sp)
		}
	}

	if cpus == 0 {
		cpus = 4
	}
	if traceIn == nil {
		scale := req.Scale
		if scale == 0 {
			scale = 1
		}
		for i := range specs {
			specs[i] = specs[i].Scale(scale)
		}
	}

	if req.Interval > 0 {
		if req.Interval < metrics.MinInterval {
			return nil, nil, smp.Config{}, fmt.Errorf("interval %d below minimum %d", req.Interval, metrics.MinInterval)
		}
		for _, sp := range specs {
			if windows := sp.Accesses / req.Interval; windows > maxTimelineWindows {
				return nil, nil, smp.Config{}, fmt.Errorf(
					"%s at interval %d yields %d timeline windows (cap %d); raise the interval",
					sp.Name, req.Interval, windows, maxTimelineWindows)
			}
		}
	}

	cfg, err := sim.PaperBankConfig(cpus, req.NSB, req.Filters)
	if err != nil {
		return nil, nil, smp.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, smp.Config{}, err
	}
	return specs, traceIn, cfg, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]ExperimentStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.exps[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *experiment {
	id := r.PathValue("id")
	s.mu.Lock()
	exp := s.exps[id]
	s.mu.Unlock()
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
	}
	return exp
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if exp := s.lookup(w, r); exp != nil {
		writeJSON(w, http.StatusOK, exp.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	exp := s.lookup(w, r)
	if exp == nil {
		return
	}
	st := exp.status()
	if st.State != "done" {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  "experiment not finished",
			"status": st,
		})
		return
	}
	results := make([]sim.AppResult, len(exp.jobs))
	for i, j := range exp.jobs {
		v, err := j.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		results[i] = v.(sim.AppResult).Clone()
	}
	writeJSON(w, http.StatusOK, ExperimentResult{
		ID:      exp.id,
		Request: exp.req,
		Results: results,
		Tables:  renderTables(results, exp.cfg),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	exp := s.exps[id]
	if exp != nil {
		delete(s.exps, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
		return
	}
	for _, j := range exp.jobs {
		j.Cancel()
	}
	if s.store != nil {
		s.store.DeleteJob(id) // an explicitly canceled job must not resurrect at boot
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceled"})
}

// TraceInfo describes one uploaded trace.
type TraceInfo struct {
	Digest     string `json:"digest"`
	Name       string `json:"name"`
	Tenant     string `json:"tenant,omitempty"` // uploading tenant (quota owner)
	CPUs       int    `json:"cpus"`
	Records    uint64 `json:"records"`
	Bytes      int    `json:"bytes"`
	Compressed bool   `json:"compressed"`
}

func traceInfo(in sim.TraceInput, owner string) TraceInfo {
	return TraceInfo{
		Digest:     in.Digest,
		Name:       in.Name,
		Tenant:     owner,
		CPUs:       in.CPUs,
		Records:    in.Records,
		Bytes:      len(in.Data),
		Compressed: in.Compressed,
	}
}

// handleTraceUpload stores a raw JTRC file (the request body, optionally
// gzipped via Content-Encoding; the byte cap applies to the decompressed
// stream), validated and content-addressed. Re-uploading an identical
// file is a 200 no-op; a full store answers 507 until a trace is
// deleted; a tenant over its upload quota gets 429.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	body, err := requestBody(w, r, s.maxTraceBytes)
	var data []byte
	if err == nil {
		data, err = io.ReadAll(body)
	}
	if err != nil {
		code := bodyErrorStatus(err)
		if code == http.StatusRequestEntityTooLarge {
			err = fmt.Errorf("trace exceeds the %d-byte upload cap", s.maxTraceBytes)
		} else if code == http.StatusBadRequest {
			err = fmt.Errorf("reading trace: %w", err)
		}
		writeError(w, code, err)
		return
	}
	in, err := sim.LoadTrace(r.URL.Query().Get("name"), data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	tenant := tenantFrom(r.Context())
	s.mu.Lock()
	if _, ok := s.traces[in.Digest]; ok {
		// Identical re-upload: a no-op that keeps the original owner (the
		// slot stays on the first uploader's quota).
		in = s.traces[in.Digest]
		owner := s.traceOwners[in.Digest]
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, traceInfo(in, owner))
		return
	}
	if len(s.traces) >= s.maxTraces {
		s.mu.Unlock()
		writeError(w, http.StatusInsufficientStorage,
			fmt.Errorf("trace store holds its cap of %d traces; DELETE one first", s.maxTraces))
		return
	}
	if s.tenantTracesLocked(tenant) >= s.maxTenantTraces {
		s.mu.Unlock()
		s.tel.admissionRejected.With(tenant, "tenant_traces").Add(1)
		s.writeRetryError(w, http.StatusTooManyRequests, tenant,
			fmt.Errorf("tenant %q holds %d stored traces (per-tenant cap %d); DELETE one first",
				tenant, s.maxTenantTraces, s.maxTenantTraces))
		return
	}
	s.traces[in.Digest] = in
	s.traceOrder = append(s.traceOrder, in.Digest)
	s.traceOwners[in.Digest] = tenant
	s.mu.Unlock()

	if s.store != nil {
		if err := s.store.PutTrace(in.Digest, in.Data, store.TraceMeta{Name: in.Name, Tenant: tenant}); err != nil {
			s.tel.log.Warn("trace persist failed", "digest", in.Digest, "err", err)
		}
	}
	s.tel.traceUploads.Add(1)
	writeJSON(w, http.StatusCreated, traceInfo(in, tenant))
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]TraceInfo, 0, len(s.traceOrder))
	for _, digest := range s.traceOrder {
		out = append(out, traceInfo(s.traces[digest], s.traceOwners[digest]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	s.mu.Lock()
	in, ok := s.traces[digest]
	owner := s.traceOwners[digest]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", digest))
		return
	}
	writeJSON(w, http.StatusOK, traceInfo(in, owner))
}

func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	s.mu.Lock()
	_, ok := s.traces[digest]
	if ok {
		delete(s.traces, digest)
		delete(s.traceOwners, digest)
		for i, d := range s.traceOrder {
			if d == digest {
				s.traceOrder = append(s.traceOrder[:i], s.traceOrder[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", digest))
		return
	}
	if s.store != nil {
		s.store.DeleteTrace(digest)
	}
	// Running replays keep their own copy of the input; deleting only
	// frees the slot for new uploads.
	writeJSON(w, http.StatusOK, map[string]string{"digest": digest, "state": "deleted"})
}

// evictLocked drops the oldest finished experiments until the registry
// is within maxRetained, releasing the results their jobs pin. Unfinished
// experiments are never evicted (the admission cap bounds those).
func (s *Server) evictLocked() {
	if len(s.order) <= s.maxRetained {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxRetained
	for _, id := range s.order {
		exp := s.exps[id]
		if excess > 0 && !exp.unfinished() {
			delete(s.exps, id)
			for _, j := range exp.jobs {
				j.Cancel() // no-op on finished jobs; releases the handle
			}
			s.tel.evicted.Add(1)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// unfinishedLocked counts experiments and sweeps still queued or
// running: one admission cap covers both job kinds.
func (s *Server) unfinishedLocked() int {
	n := 0
	for _, exp := range s.exps {
		if exp.unfinished() {
			n++
		}
	}
	for _, job := range s.sweeps {
		if job.sw.Unfinished() {
			n++
		}
	}
	for _, run := range s.cellRuns {
		if run.cs.Unfinished() {
			n++
		}
	}
	return n
}

// admitLocked runs the two-layer admission check for a submission by
// tenant that adds newCells engine jobs. The global cap answers 503 —
// the daemon as a whole is saturated and a load balancer should back
// off; a per-tenant quota answers 429 — this tenant is over its share
// while the daemon still has headroom. Both carry Retry-After. reason
// labels the rejection counter.
func (s *Server) admitLocked(tenant string, newCells int) (code int, reason string, err error) {
	if s.unfinishedLocked() >= s.maxUnfinished {
		return http.StatusServiceUnavailable, "global_cap",
			fmt.Errorf("%d jobs already in flight (global cap)", s.maxUnfinished)
	}
	jobs, cells := s.tenantLoadLocked(tenant)
	if jobs >= s.maxTenantJobs {
		return http.StatusTooManyRequests, "tenant_jobs",
			fmt.Errorf("tenant %q has %d unfinished jobs (per-tenant cap %d)", tenant, jobs, s.maxTenantJobs)
	}
	if cells+newCells > s.maxTenantCells {
		return http.StatusTooManyRequests, "tenant_cells",
			fmt.Errorf("tenant %q would hold %d queued cells (per-tenant cap %d)",
				tenant, cells+newCells, s.maxTenantCells)
	}
	return 0, "", nil
}

// tenantLoadLocked counts one tenant's unfinished jobs (experiments +
// sweeps) and their non-terminal engine jobs (runs + cells).
func (s *Server) tenantLoadLocked(tenant string) (jobs, cells int) {
	for _, exp := range s.exps {
		if exp.tenant != tenant {
			continue
		}
		if c := exp.unfinishedJobs(); c > 0 {
			jobs++
			cells += c
		}
	}
	for _, job := range s.sweeps {
		if job.sw.Tenant() != tenant {
			continue
		}
		if c := job.sw.UnfinishedCells(); c > 0 {
			jobs++
			cells += c
		}
	}
	for _, run := range s.cellRuns {
		if run.tenant != tenant {
			continue
		}
		if c := run.cs.UnfinishedCells(); c > 0 {
			jobs++
			cells += c
		}
	}
	return jobs, cells
}

// tenantTracesLocked counts the stored uploads owned by tenant.
func (s *Server) tenantTracesLocked(tenant string) int {
	n := 0
	for _, owner := range s.traceOwners {
		if owner == tenant {
			n++
		}
	}
	return n
}

// tenantLoadsLocked snapshots every tenant's occupancy for /metrics.
func (s *Server) tenantLoadsLocked() map[string]tenantLoad {
	loads := make(map[string]tenantLoad)
	for _, exp := range s.exps {
		l := loads[exp.tenant]
		if c := exp.unfinishedJobs(); c > 0 {
			l.jobs++
			l.cells += c
		}
		loads[exp.tenant] = l
	}
	for _, job := range s.sweeps {
		t := job.sw.Tenant()
		l := loads[t]
		if c := job.sw.UnfinishedCells(); c > 0 {
			l.jobs++
			l.cells += c
		}
		loads[t] = l
	}
	for _, run := range s.cellRuns {
		l := loads[run.tenant]
		if c := run.cs.UnfinishedCells(); c > 0 {
			l.jobs++
			l.cells += c
		}
		loads[run.tenant] = l
	}
	for _, owner := range s.traceOwners {
		l := loads[owner]
		l.traces++
		loads[owner] = l
	}
	return loads
}

// unfinished reports whether any of the experiment's jobs is still
// queued or running. Unlike status() it allocates nothing: it runs under
// the registry mutex on every submission.
func (e *experiment) unfinished() bool {
	for _, j := range e.jobs {
		if !j.State().Terminal() {
			return true
		}
	}
	return false
}

// unfinishedJobs counts the experiment's non-terminal engine jobs (the
// per-tenant cell-quota accounting).
func (e *experiment) unfinishedJobs() int {
	n := 0
	for _, j := range e.jobs {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}

// status aggregates the per-job snapshots.
func (e *experiment) status() ExperimentStatus {
	out := ExperimentStatus{ID: e.id, Tenant: e.tenant}
	counts := map[engine.State]int{}
	for i, j := range e.jobs {
		js := j.Status()
		counts[js.State]++
		out.Done += js.Done
		out.Total += js.Total
		out.Jobs = append(out.Jobs, JobStatus{
			App:         e.specs[i].Name,
			Key:         js.Key,
			State:       js.State.String(),
			Done:        js.Done,
			Total:       js.Total,
			Fraction:    js.Fraction(),
			CacheHit:    js.CacheHit,
			Disposition: js.Disposition,
			Origin:      js.Origin,
			Tenant:      js.Tenant,
			QueueWaitMS: durationMS(js.QueueWait),
			RunMS:       durationMS(js.Run),
			Error:       js.Err,
		})
	}
	switch {
	case counts[engine.Failed] > 0:
		out.State = "failed"
	case counts[engine.Canceled] > 0:
		out.State = "canceled"
	case counts[engine.Running] > 0 || (counts[engine.Queued] > 0 && counts[engine.Done] > 0):
		out.State = "running"
	case counts[engine.Queued] > 0:
		out.State = "queued"
	default:
		out.State = "done"
	}
	if out.Total > 0 {
		out.Fraction = float64(out.Done) / float64(out.Total)
	}
	if out.State == "done" {
		out.Fraction = 1
	}
	return out
}

// renderTables renders the paper's reports that apply to one finished
// run set: the workload characterization, the coverage of every filter
// in the bank, and (when the Figure 6 hybrids are attached) the energy
// figure.
func renderTables(results []sim.AppResult, cfg smp.Config) map[string]string {
	tables := map[string]string{
		"table2": sim.Table2Report(results),
		"table3": sim.Table3Report(results),
	}
	if len(results) > 0 && len(results[0].FilterNames) > 0 {
		names := append([]string(nil), results[0].FilterNames...)
		sort.Strings(names)
		tables["coverage"] = sim.CoverageReport("Filter coverage", results, names, "")
		tables["fig6"] = sim.Fig6Report(results, cfg)
	}
	return tables
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Retry-After hint parameters. The old implementation answered a flat
// "Retry-After: 1" on every rejection, so a saturated daemon taught all
// of its rejected clients to retry in the same second — a synchronized
// stampede that re-rejected everyone and repeated. The hint is now
// computed from live queue state (how much work stands between this
// client and admission, times how long a run takes) and jittered per
// response so retries spread out instead of thundering back together.
const (
	// retryFloorTenantSeconds floors the 429 hint: the tenant is over
	// quota while the daemon has headroom, so a quick retry is cheap.
	retryFloorTenantSeconds = 1
	// retryFloorGlobalSeconds floors the 503 hint: the whole daemon is
	// saturated, so even an empty-queue estimate should back off harder
	// than a per-tenant rejection. Keeping the floors distinct also lets
	// clients (and tests) tell the two rejection classes apart.
	retryFloorGlobalSeconds = 2
	// retryCeilSeconds caps the hint: past five minutes a bigger number
	// stops being a backoff hint and starts being a denial of service.
	retryCeilSeconds = 300
	// retryJitterFrac spreads hints multiplicatively over [1, 1.25) so
	// simultaneous rejections decorrelate.
	retryJitterFrac = 0.25
	// defaultRunEstimateSeconds stands in for the run-duration EWMA
	// until the engine has retired its first executed task.
	defaultRunEstimateSeconds = 1.0
)

// retryHintSeconds computes the Retry-After value for an admission
// rejection: backlog tasks ahead of the client, runSeconds each, spread
// over workers, jittered by jitter (in [0, retryJitterFrac)), floored
// by rejection class and capped. Pure — the HTTP wrapper below feeds it
// live state; tests feed it exact values.
func retryHintSeconds(code, backlog, workers int, runSeconds, jitter float64) int {
	if workers < 1 {
		workers = 1
	}
	if runSeconds <= 0 {
		runSeconds = defaultRunEstimateSeconds
	}
	est := float64(backlog) * runSeconds / float64(workers) * (1 + jitter)
	hint := int(math.Ceil(est))
	floor := retryFloorTenantSeconds
	if code == http.StatusServiceUnavailable {
		floor = retryFloorGlobalSeconds
	}
	if hint < floor {
		hint = floor
	}
	if hint > retryCeilSeconds {
		hint = retryCeilSeconds
	}
	return hint
}

// writeRetryError is writeError plus a Retry-After header — every
// admission rejection (global 503, per-tenant 429) tells well-behaved
// clients when to try again. The hint scales with the backlog the
// client is actually behind: the whole engine queue for a global 503,
// the tenant's own fair-share queue for a 429.
func (s *Server) writeRetryError(w http.ResponseWriter, code int, tenant string, err error) {
	st := s.runner.Engine().Stats()
	backlog := st.QueueDepth + st.Inflight
	if code != http.StatusServiceUnavailable {
		backlog = st.TenantQueues[tenant]
	}
	hint := retryHintSeconds(code, backlog, s.runner.Engine().Workers(),
		s.tel.runEWMASeconds(), rand.Float64()*retryJitterFrac)
	w.Header().Set("Retry-After", strconv.Itoa(hint))
	writeError(w, code, err)
}
