package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jetty/internal/obs"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a text/event-stream body until EOF (the server closes
// after the done event) or maxEvents, returning the parsed events.
func readSSE(t *testing.T, body io.Reader, maxEvents int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
			if len(out) >= maxEvents {
				return out
			}
		}
	}
	return out
}

// timelineWindows sums the window counts of a timeline response.
func timelineWindows(tr TimelineResponse) int {
	n := 0
	for _, a := range tr.Apps {
		if a.Timeline != nil {
			n += len(a.Timeline.Windows)
		}
	}
	return n
}

func TestTimelineEndpointRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Options{})

	req := SubmitRequest{
		Apps:     []string{"Lu", "ch"},
		Scale:    0.02,
		Filters:  []string{"EJ-32x4", "HJ(IJ-9x4x7,EJ-32x4)"},
		Interval: 1024,
	}
	var st ExperimentStatus
	if code := doJSON(t, "POST", base+"/v1/experiments", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	waitDone(t, base, st.ID)

	var tr TimelineResponse
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/timeline", nil, &tr); code != http.StatusOK {
		t.Fatalf("timeline code %d", code)
	}
	if tr.ID != st.ID || tr.Interval != 1024 || len(tr.Apps) != 2 {
		t.Fatalf("timeline = %+v", tr)
	}
	var res ExperimentResult
	doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/result", nil, &res)
	for i, a := range tr.Apps {
		if a.Timeline == nil || len(a.Timeline.Windows) == 0 {
			t.Fatalf("app %s: empty timeline", a.App)
		}
		if len(a.Timeline.FilterNames) != 2 {
			t.Errorf("app %s: filter names %v", a.App, a.Timeline.FilterNames)
		}
		// Conservation holds across the HTTP boundary too.
		refs, counts, _ := a.Timeline.Sum()
		if refs != res.Results[i].Refs || counts != res.Results[i].Counts {
			t.Errorf("app %s: served timeline does not conserve the served result", a.App)
		}
	}

	// The experiment's own result is identical to an unsampled run of
	// the same request (sampling is observation only).
	plain := req
	plain.Interval = 0
	var pst ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", plain, &pst)
	waitDone(t, base, pst.ID)
	var pres ExperimentResult
	doJSON(t, "GET", base+"/v1/experiments/"+pst.ID+"/result", nil, &pres)
	for i := range pres.Results {
		if pres.Results[i].Counts != res.Results[i].Counts || pres.Results[i].Refs != res.Results[i].Refs {
			t.Errorf("sampled experiment drifted from unsampled on %s", pres.Results[i].Spec.Name)
		}
	}

	// Unsampled experiments have no timeline to serve.
	var errBody map[string]any
	if code := doJSON(t, "GET", base+"/v1/experiments/"+pst.ID+"/timeline", nil, &errBody); code != http.StatusBadRequest {
		t.Errorf("timeline of unsampled experiment = %d, want 400", code)
	}
	if code := doJSON(t, "GET", base+"/v1/experiments/exp-999999/timeline", nil, nil); code != http.StatusNotFound {
		t.Errorf("timeline of unknown experiment = %d, want 404", code)
	}
}

func TestSubmitIntervalValidation(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})
	cases := []SubmitRequest{
		{Apps: []string{"Lu"}, Interval: 8},               // below the minimum
		{Apps: []string{"Lu"}, Scale: 100, Interval: 64},  // window-count cap
		{Apps: []string{"Lu"}, Scale: 0.02, Interval: 63}, // just below the minimum
	}
	for _, req := range cases {
		var errBody map[string]string
		if code := doJSON(t, "POST", base+"/v1/experiments", req, &errBody); code != http.StatusBadRequest {
			t.Errorf("request %+v: code %d, want 400", req, code)
		}
	}
}

// liveStream opens the SSE endpoint and returns the parsed events (up to
// maxEvents, or all until the server closes the stream).
func liveStream(t *testing.T, base, id string, maxEvents int) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/experiments/" + id + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("live content-type %q", ct)
	}
	return readSSE(t, resp.Body, maxEvents)
}

func TestLiveStreamDeliversAllWindows(t *testing.T) {
	_, base := newTestServer(t, Options{})

	req := SubmitRequest{Apps: []string{"Lu"}, Scale: 0.05, Filters: []string{"EJ-32x4"}, Interval: 512}
	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &st)

	events := liveStream(t, base, st.ID, 1<<20)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream of %d events did not end with done", len(events))
	}
	var windows int
	var sawEnergy bool
	for _, ev := range events[:len(events)-1] {
		if ev.event != "window" {
			t.Fatalf("unexpected event %q", ev.event)
		}
		var le struct {
			App    string          `json:"app"`
			Index  int             `json:"index"`
			Window json.RawMessage `json:"window"`
		}
		if err := json.Unmarshal([]byte(ev.data), &le); err != nil {
			t.Fatalf("window event payload: %v", err)
		}
		if le.App != "Lu" || len(le.Window) == 0 {
			t.Fatalf("window event = %+v", le)
		}
		// Live windows carry the same energy breakdown retained ones do.
		var win struct {
			Energy struct{ SnoopTag, LocalTag float64 } `json:"energy"`
		}
		if err := json.Unmarshal(le.Window, &win); err != nil {
			t.Fatal(err)
		}
		if win.Energy.SnoopTag > 0 || win.Energy.LocalTag > 0 {
			sawEnergy = true
		}
		windows++
	}
	if !sawEnergy {
		t.Error("no live window carried a nonzero energy breakdown")
	}

	// Exactly the finished timeline's windows, no more, no less.
	var tr TimelineResponse
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/timeline", nil, &tr); code != http.StatusOK {
		t.Fatalf("timeline code %d", code)
	}
	if want := timelineWindows(tr); windows != want {
		t.Errorf("stream delivered %d windows, timeline holds %d", windows, want)
	}
	if windows == 0 {
		t.Error("no windows streamed")
	}

	// A second, identical experiment is a cache hit: no sampler hook ever
	// fires for it, yet its stream must still deliver the full sequence
	// (top-up from the retained timeline) — with byte-identical window
	// payloads, so live and topped-up subscribers never disagree.
	var st2 ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &st2)
	events2 := liveStream(t, base, st2.ID, 1<<20)
	var data1, data2 []string
	for _, ev := range events[:len(events)-1] {
		data1 = append(data1, ev.data)
	}
	for _, ev := range events2 {
		if ev.event == "window" {
			data2 = append(data2, ev.data)
		}
	}
	if len(data2) != len(data1) {
		t.Fatalf("cache-hit stream delivered %d windows, first run %d", len(data2), len(data1))
	}
	for i := range data1 {
		if data1[i] != data2[i] {
			t.Fatalf("window %d differs between live and topped-up delivery:\n live  %s\n topup %s",
				i, data1[i], data2[i])
		}
	}
}

func TestLiveStreamUnsampledAndCanceled(t *testing.T) {
	_, base := newTestServer(t, Options{})

	// Unsampled: a bare done event once finished.
	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st)
	events := liveStream(t, base, st.ID, 1<<20)
	if len(events) != 1 || events[0].event != "done" {
		t.Fatalf("unsampled stream = %+v", events)
	}

	// Canceled mid-run: the stream still terminates with done (state
	// canceled), never hangs. The stream is attached (headers received)
	// before the cancel so the race always resolves to an open stream.
	long := SubmitRequest{Apps: []string{"Fmm"}, Scale: 20, Filters: []string{"EJ-8x2"}, Interval: 4096}
	var st2 ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", long, &st2)
	resp2, err := http.Get(base + "/v1/experiments/" + st2.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("live code %d", resp2.StatusCode)
	}
	doJSON(t, "DELETE", base+"/v1/experiments/"+st2.ID, nil, nil)
	events = readSSE(t, resp2.Body, 1<<20)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("canceled stream did not close with done: %+v", events)
	}
	var final ExperimentStatus
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "canceled" {
		t.Errorf("done event carries state %q, want canceled", final.State)
	}

	// Unknown experiment: 404, no stream.
	resp, err := http.Get(base + "/v1/experiments/exp-999999/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("live on unknown experiment = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, base := newTestServer(t, Options{Workers: 1})

	// Drive a little traffic so counters move.
	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st)
	waitDone(t, base, st.ID)

	// Unit-level: the handler itself, via httptest recorder.
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP jettyd_experiments_submitted_total",
		"# TYPE jettyd_experiments_submitted_total counter",
		"jettyd_experiments_submitted_total 1",
		"jettyd_experiments_registered 1",
		"jettyd_jobs_unfinished 0",
		"jettyd_traces_stored 0",
		"jettyd_live_subscribers 0",
		"jettyd_engine_workers 1",
		"# TYPE jettyd_engine_executed_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, body)
		}
	}

	// The whole exposition passes the in-repo promlint: HELP/TYPE on
	// every family, counters suffixed _total, histogram buckets
	// cumulative with +Inf == count.
	for _, p := range obs.Lint(body) {
		t.Errorf("promlint: %s", p)
	}

	// And over HTTP through the mux.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "jettyd_engine_submitted_total") {
		t.Errorf("GET /metrics = %d\n%s", resp.StatusCode, raw)
	}
}

// TestMetricsCountersTrackLiveStreams pins the live-stream gauges: a
// subscriber shows up in jettyd_live_subscribers while attached and the
// streamed-window counter advances.
func TestMetricsCountersTrackLiveStreams(t *testing.T) {
	s, base := newTestServer(t, Options{})
	req := SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}, Interval: 512}
	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &st)
	events := liveStream(t, base, st.ID, 1<<20)
	if len(events) < 2 {
		t.Fatalf("expected windows + done, got %d events", len(events))
	}
	if got := s.tel.windowsStreamed.Value(); got == 0 {
		t.Error("windowsStreamed did not advance")
	}
	if got := s.tel.liveSubscribers.Value(); got != 0 {
		t.Errorf("liveSubscribers = %v after stream closed", got)
	}
}

// ExperimentStatus/Interval round-trip: the submitted interval is echoed
// in the timeline and enforced on the pinned minimum via the sweep
// endpoint too.
func TestSweepTimelineOverHTTP(t *testing.T) {
	_, base := newTestServer(t, Options{})
	spec := map[string]any{
		"workloads": []string{"Lu"},
		"filters":   []string{"EJ-16x2"},
		"scale":     0.02,
		"interval":  1024,
		"timelines": "all",
	}
	var st SweepStatus
	if code := doJSON(t, "POST", base+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("sweep submit code %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur SweepStatus
		doJSON(t, "GET", base+"/v1/sweeps/"+st.ID, nil, &cur)
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || cur.State == "canceled" {
			t.Fatalf("sweep state %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var res SweepResult
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("sweep result code %d", code)
	}
	if len(res.Timelines) != 1 || res.Timelines[0].Timeline == nil || len(res.Timelines[0].Timeline.Windows) == 0 {
		t.Fatalf("sweep timelines = %+v", res.Timelines)
	}

	// Retention policies that need sampling are rejected without it.
	bad := map[string]any{"workloads": []string{"Lu"}, "timelines": "all"}
	var errBody map[string]string
	if code := doJSON(t, "POST", base+"/v1/sweeps", bad, &errBody); code != http.StatusBadRequest {
		t.Errorf("retention without interval = %d, want 400", code)
	}
}
