package service

import (
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"strings"
	"time"

	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// Durable-restart support: when Options.Store is set, every accepted
// submission journals enough of its request to be resubmitted verbatim,
// and New replays the journal at boot. Replayed jobs keep their original
// IDs (a client polling swp-000003 across a restart keeps polling the
// same handle) and recompute only the cells whose results are not
// already in the store — the engine probes the store as an L3 under its
// LRU, so a sweep killed at 60% resumes at 60%, not from scratch.

// Journal job kinds.
const (
	jobKindExperiment = "experiment"
	jobKindSweep      = "sweep"
)

// jobJournal is one accepted submission's durable record: the validated
// request itself plus the identity it was admitted under. Exactly one
// of Request (experiments) and Spec (sweeps) is set, per Kind.
type jobJournal struct {
	ID      string         `json:"id"`
	Kind    string         `json:"kind"` // jobKindExperiment | jobKindSweep
	Tenant  string         `json:"tenant,omitempty"`
	Origin  string         `json:"origin,omitempty"`
	Request *SubmitRequest `json:"request,omitempty"`
	Spec    *sweep.Spec    `json:"spec,omitempty"`
}

// persistJob journals an accepted submission. Persistence failures are
// logged, not surfaced: the job still runs this boot; it just won't
// survive a crash.
func (s *Server) persistJob(j jobJournal) {
	data, err := json.Marshal(j)
	if err == nil {
		err = s.store.PutJob(j.ID, data)
	}
	if err != nil {
		s.tel.log.Warn("job journal persist failed", "id", j.ID, "err", err)
	}
}

// watchSweep retires a journaled sweep's record once it completes. It
// polls rather than calling Wait: sweep.Sweep.Wait cancels the
// remaining cells on first error, and a watcher must never cancel work.
// Canceled and failed jobs keep their journal entry, so a sweep
// interrupted by shutdown (its cells die Canceled) is resubmitted at
// next boot.
func (s *Server) watchSweep(id string, sw sweepHandle) {
	for sw.Unfinished() {
		time.Sleep(watchPoll)
	}
	if sw.Status(false).State == "done" {
		s.store.DeleteJob(id)
	}
}

// watchExperiment is watchSweep for experiments.
func (s *Server) watchExperiment(exp *experiment) {
	for exp.unfinished() {
		time.Sleep(watchPoll)
	}
	if exp.status().State == "done" {
		s.store.DeleteJob(exp.id)
	}
}

// watchPoll is the journal watchers' completion-poll interval: coarse on
// purpose — a journal entry outliving its job by half a second only
// means a crash in that window replays a job whose cells are already on
// disk, which the store tier resolves without recomputation.
const watchPoll = 500 * time.Millisecond

// restore replays the durable state at boot: traces first (journaled
// jobs may replay them), then every journaled job, oldest first so
// restored IDs keep their original order in listings. Damaged or stale
// entries are discarded individually — one torn journal record must not
// take down the boot or the other entries. Called from New before the
// server is reachable, so handler-visible state is consistent by the
// time requests arrive.
func (s *Server) restore() {
	if s.store == nil {
		return
	}
	for _, te := range s.store.Traces() {
		in, err := sim.LoadTrace(te.Meta.Name, te.Data)
		if err != nil || in.Digest != te.Digest {
			// The payload no longer hashes to its filename: discard the
			// entry rather than serve a trace under a digest it isn't.
			s.tel.log.Warn("discarding corrupt stored trace", "digest", te.Digest, "err", err)
			s.store.DeleteTrace(te.Digest)
			continue
		}
		s.mu.Lock()
		if _, ok := s.traces[in.Digest]; !ok {
			s.traces[in.Digest] = in
			s.traceOrder = append(s.traceOrder, in.Digest)
			s.traceOwners[in.Digest] = te.Meta.Tenant
		}
		s.mu.Unlock()
	}

	jobs := s.store.Jobs()
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		// Advance the ID sequence past every journaled ID — discarded
		// ones included: a client may have seen the ID, so a new
		// submission must never reuse it.
		s.noteSeq(id)
		var j jobJournal
		if err := json.Unmarshal(jobs[id], &j); err != nil || j.ID != id {
			s.tel.log.Warn("discarding corrupt job journal", "id", id)
			s.store.DeleteJob(id)
			continue
		}
		switch j.Kind {
		case jobKindSweep:
			s.restoreSweep(j)
		case jobKindExperiment:
			s.restoreExperiment(j)
		default:
			s.tel.log.Warn("discarding job journal of unknown kind", "id", id, "kind", j.Kind)
			s.store.DeleteJob(id)
		}
	}
}

// noteSeq advances the ID sequence past a restored job's number so new
// submissions never collide with replayed IDs.
func (s *Server) noteSeq(id string) {
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil && n > s.seq {
			s.seq = n
		}
	}
}

// restoreSweep resubmits one journaled sweep under its original ID.
func (s *Server) restoreSweep(j jobJournal) {
	if j.Spec == nil || j.Spec.Validate() != nil {
		s.store.DeleteJob(j.ID)
		return
	}
	s.mu.Lock()
	resolver := func(digest string) (sim.TraceInput, error) {
		in, ok := s.traces[digest]
		if !ok {
			return sim.TraceInput{}, errTraceGone
		}
		return in, nil
	}
	sw, err := s.startSweepLocked(*j.Spec, resolver, j.Origin, j.Tenant)
	if err != nil {
		s.mu.Unlock()
		s.tel.log.Warn("journaled sweep no longer submittable", "id", j.ID, "err", err)
		s.store.DeleteJob(j.ID)
		return
	}
	s.registerSweepLocked(j.ID, sw)
	s.mu.Unlock()
	s.tel.log.Info("resumed sweep from journal", "id", j.ID, "tenant", j.Tenant)
	go s.watchSweep(j.ID, sw)
}

// restoreExperiment resubmits one journaled experiment under its
// original ID. buildExperiment revalidates against the restored trace
// store (it takes s.mu itself, so it must run before we lock).
func (s *Server) restoreExperiment(j jobJournal) {
	if j.Request == nil {
		s.store.DeleteJob(j.ID)
		return
	}
	specs, traceIn, cfg, err := s.buildExperiment(*j.Request)
	if err != nil {
		s.tel.log.Warn("journaled experiment no longer submittable", "id", j.ID, "err", err)
		s.store.DeleteJob(j.ID)
		return
	}
	s.mu.Lock()
	exp := s.registerExperimentLocked(j.ID, j.Tenant, j.Origin, *j.Request, specs, traceIn, cfg)
	s.mu.Unlock()
	s.tel.log.Info("resumed experiment from journal", "id", j.ID, "tenant", j.Tenant)
	go s.watchExperiment(exp)
}

// errTraceGone is the resolver error for a journaled sweep whose trace
// upload did not survive the restart.
var errTraceGone = errors.New("trace not in the durable store (re-upload it via POST /v1/traces)")
