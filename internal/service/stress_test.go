package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"jetty/internal/sweep"
)

// Stress test: many concurrent clients hammering every mutating endpoint
// at once — experiment submit/poll/cancel, sweep submission, trace
// upload/delete against a deliberately tiny store, SSE live subscribers
// attaching and detaching mid-run, timeline fetches racing eviction —
// asserting the three properties a long-running daemon must keep:
//
//   - no deadlock: the test finishes (every client's loop completes
//     under a global deadline);
//   - no lost jobs: every accepted submission reaches a terminal state,
//     and every id the client canceled is really gone (404);
//   - bounded memory: the trace store never exceeds its cap, and the
//     registry never exceeds MaxRetained + MaxUnfinished entries, no
//     matter the interleaving.
//
// CI runs it under the race detector with -shuffle=on.

const (
	stressClients = 8
	stressIters   = 6
)

func TestServiceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		maxUnfinished = 4
		maxRetained   = 6
		maxTraces     = 3
	)
	_, base := newTestServer(t, Options{
		MaxUnfinished: maxUnfinished,
		MaxRetained:   maxRetained,
		MaxTraces:     maxTraces,
	})

	// A pool of distinct traces, more than the store holds, so uploads
	// constantly contend with the 507 path.
	traceApps := []string{"tp", "Lu", "ch", "ff", "WebServer"}
	traceData := make([][]byte, len(traceApps))
	for i, app := range traceApps {
		traceData[i] = recordTestTrace(t, app, 2, 400)
	}

	deadline := time.Now().Add(90 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, stressClients)

	client := func(c int) error {
		r := rand.New(rand.NewSource(int64(c) * 65_537))
		apps := []string{"Lu", "ch", "ff"}
		for i := 0; i < stressIters; i++ {
			if time.Now().After(deadline) {
				return fmt.Errorf("client %d: deadline exceeded at iteration %d", c, i)
			}
			switch r.Intn(8) {
			case 0: // experiment: submit, poll to done, fetch
				req := SubmitRequest{Apps: []string{apps[r.Intn(len(apps))]}, Scale: 0.02, Filters: []string{"EJ-16x2"}}
				id, err := stressSubmit(base, "/v1/experiments", req, deadline)
				if err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
				if id == "" {
					continue // admission-capped out for the whole window: fine
				}
				if err := stressPoll(base, "/v1/experiments/", id, deadline); err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
			case 1: // experiment: submit then immediately cancel; must 404 after
				req := SubmitRequest{Apps: []string{"Fmm"}, Scale: 20, Filters: []string{"EJ-8x2"}}
				id, err := stressSubmit(base, "/v1/experiments", req, deadline)
				if err != nil || id == "" {
					if err != nil {
						return fmt.Errorf("client %d: %w", c, err)
					}
					continue
				}
				if code, err := clientJSON("DELETE", base+"/v1/experiments/"+id, nil, nil); err != nil || code != http.StatusOK {
					return fmt.Errorf("client %d: cancel %s: code %d err %v", c, id, code, err)
				}
				if code, _ := clientJSON("GET", base+"/v1/experiments/"+id, nil, nil); code != http.StatusNotFound {
					return fmt.Errorf("client %d: canceled %s still answers %d", c, id, code)
				}
			case 2: // sweep: submit, poll to terminal, fetch result
				spec := sweep.Spec{
					Workloads: []string{apps[r.Intn(len(apps))], "Lu"},
					Filters:   []string{"EJ-16x2", "EJ-32x4"},
					Scale:     0.02,
				}
				id, err := stressSubmit(base, "/v1/sweeps", spec, deadline)
				if err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
				if id == "" {
					continue
				}
				if err := stressPoll(base, "/v1/sweeps/", id, deadline); err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
			case 3: // trace churn: upload (maybe 507), list (bounded), delete one
				data := traceData[r.Intn(len(traceData))]
				info, code := stressUpload(base, data)
				switch code {
				case http.StatusCreated, http.StatusOK:
					if r.Intn(2) == 0 {
						clientJSON("DELETE", base+"/v1/traces/"+info.Digest, nil, nil)
					}
				case http.StatusInsufficientStorage:
					// Store full: delete whatever is listed to make room.
					var list []TraceInfo
					if _, err := clientJSON("GET", base+"/v1/traces", nil, &list); err == nil && len(list) > 0 {
						clientJSON("DELETE", base+"/v1/traces/"+list[r.Intn(len(list))].Digest, nil, nil)
					}
				default:
					return fmt.Errorf("client %d: upload code %d", c, code)
				}
				var list []TraceInfo
				if _, err := clientJSON("GET", base+"/v1/traces", nil, &list); err != nil {
					return fmt.Errorf("client %d: trace list: %w", c, err)
				}
				if len(list) > maxTraces {
					return fmt.Errorf("client %d: trace store holds %d > cap %d", c, len(list), maxTraces)
				}
			case 5: // sampled experiment + SSE subscriber detaching mid-run
				req := SubmitRequest{
					Apps: []string{apps[r.Intn(len(apps))]}, Scale: 0.05,
					Filters: []string{"EJ-16x2"}, Interval: 512,
				}
				id, err := stressSubmit(base, "/v1/experiments", req, deadline)
				if err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
				if id == "" {
					continue
				}
				// Attach, read a handful of events, hang up mid-stream —
				// the server must neither block a worker nor leak the
				// subscription (the quiesce phase and the responsive
				// healthz check below would catch either).
				resp, err := http.Get(base + "/v1/experiments/" + id + "/live")
				if err != nil {
					return fmt.Errorf("client %d: live attach: %w", c, err)
				}
				if resp.StatusCode == http.StatusOK {
					buf := make([]byte, 512)
					for n := 0; n < 1+r.Intn(3); n++ {
						if _, err := resp.Body.Read(buf); err != nil {
							break
						}
					}
				}
				resp.Body.Close() // detach, very likely mid-run
				if err := stressPoll(base, "/v1/experiments/", id, deadline); err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
			case 6: // timeline fetches racing completion and eviction
				var exps []ExperimentStatus
				if _, err := clientJSON("GET", base+"/v1/experiments", nil, &exps); err != nil {
					return fmt.Errorf("client %d: list: %w", c, err)
				}
				if len(exps) == 0 {
					continue
				}
				id := exps[r.Intn(len(exps))].ID
				code, err := clientJSON("GET", base+"/v1/experiments/"+id+"/timeline", nil, nil)
				if err != nil {
					return fmt.Errorf("client %d: timeline %s: %w", c, id, err)
				}
				switch code {
				case http.StatusOK, // sampled and done
					http.StatusBadRequest, // not sampled
					http.StatusConflict,   // still running
					http.StatusNotFound:   // evicted or canceled between list and fetch
				default:
					return fmt.Errorf("client %d: timeline %s: code %d", c, id, code)
				}
			case 7: // fused sweep: each-mode filter axis rides one group task
				spec := sweep.Spec{
					Workloads:  []string{apps[r.Intn(len(apps))]},
					Filters:    []string{"EJ-16x2", "EJ-32x4", "IJ-8x4x7"},
					FilterMode: sweep.ModeEach,
					Scale:      0.05,
					Interval:   512,
				}
				id, err := stressSubmit(base, "/v1/sweeps", spec, deadline)
				if err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
				if id == "" {
					continue
				}
				// Mid-flight per-cell status must stay internally consistent
				// while the fused group task runs: the full cell set, valid
				// states, per-cell progress within bounds (no snapshot tear
				// between group progress and cell rows), then an SSE attach
				// hanging up mid-stream must not wedge anything.
				var st SweepStatus
				if code, err := clientJSON("GET", base+"/v1/sweeps/"+id, nil, &st); err == nil && code == http.StatusOK {
					if len(st.Cell) != st.Cells {
						return fmt.Errorf("client %d: fused sweep %s reports %d cell rows of %d cells",
							c, id, len(st.Cell), st.Cells)
					}
					for _, cs := range st.Cell {
						if cs.Total > 0 && cs.Done > cs.Total {
							return fmt.Errorf("client %d: fused sweep %s cell %d progress %d/%d",
								c, id, cs.Index, cs.Done, cs.Total)
						}
						switch cs.State {
						case "queued", "running", "done", "failed", "canceled":
						default:
							return fmt.Errorf("client %d: fused sweep %s cell %d state %q",
								c, id, cs.Index, cs.State)
						}
					}
				}
				if eid, err := stressSubmit(base, "/v1/experiments", SubmitRequest{
					Apps: []string{"Lu"}, Scale: 0.05, Filters: []string{"EJ-16x2"}, Interval: 512,
				}, deadline); err == nil && eid != "" {
					if resp, err := http.Get(base + "/v1/experiments/" + eid + "/live"); err == nil {
						if resp.StatusCode == http.StatusOK {
							buf := make([]byte, 256)
							resp.Body.Read(buf)
						}
						resp.Body.Close() // detach mid-stream
					}
					if err := stressPoll(base, "/v1/experiments/", eid, deadline); err != nil {
						return fmt.Errorf("client %d: %w", c, err)
					}
				}
				if r.Intn(2) == 0 {
					clientJSON("DELETE", base+"/v1/sweeps/"+id, nil, nil)
				}
				if err := stressPoll(base, "/v1/sweeps/", id, deadline); err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
			case 4: // registry bounds under listing load
				var exps []ExperimentStatus
				if _, err := clientJSON("GET", base+"/v1/experiments", nil, &exps); err != nil {
					return fmt.Errorf("client %d: list: %w", c, err)
				}
				if len(exps) > maxRetained+maxUnfinished {
					return fmt.Errorf("client %d: registry holds %d > %d", c, len(exps), maxRetained+maxUnfinished)
				}
				var sws []SweepStatus
				if _, err := clientJSON("GET", base+"/v1/sweeps", nil, &sws); err != nil {
					return fmt.Errorf("client %d: sweep list: %w", c, err)
				}
				if len(sws) > maxRetained+maxUnfinished {
					return fmt.Errorf("client %d: sweep registry holds %d > %d", c, len(sws), maxRetained+maxUnfinished)
				}
			}
		}
		return nil
	}

	for c := 0; c < stressClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs <- client(c)
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	// Quiesce: everything still registered must reach a terminal state —
	// no lost jobs, nothing wedged queued or running forever.
	quiesce := time.Now().Add(60 * time.Second)
	for {
		var exps []ExperimentStatus
		var sws []SweepStatus
		clientJSON("GET", base+"/v1/experiments", nil, &exps)
		clientJSON("GET", base+"/v1/sweeps", nil, &sws)
		unfinished := 0
		for _, e := range exps {
			if e.State == "queued" || e.State == "running" {
				unfinished++
			}
		}
		for _, s := range sws {
			if s.State == "queued" || s.State == "running" {
				unfinished++
			}
		}
		if unfinished == 0 {
			break
		}
		if time.Now().After(quiesce) {
			t.Fatalf("%d jobs never reached a terminal state", unfinished)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The server is still fully responsive after the storm.
	var health map[string]any
	if code, err := clientJSON("GET", base+"/healthz", nil, &health); err != nil || code != http.StatusOK {
		t.Fatalf("healthz after stress: code %d err %v", code, err)
	}
}

// stressSubmit posts a job, retrying 503 (global admission cap) and 429
// (per-tenant quota) until the deadline; it returns the id, or "" if the
// cap never cleared.
func stressSubmit(base, path string, body any, deadline time.Time) (string, error) {
	return stressSubmitAs(base, path, "", body, deadline)
}

// stressSubmitAs is stressSubmit under an explicit tenant ("" omits the
// header, i.e. the anonymous tenant).
func stressSubmitAs(base, path, tenant string, body any, deadline time.Time) (string, error) {
	for {
		var st struct {
			ID string `json:"id"`
		}
		code, err := tenantJSON("POST", base+path, tenant, body, &st)
		switch {
		case err != nil:
			return "", fmt.Errorf("POST %s: %w", path, err)
		case code == http.StatusAccepted:
			if st.ID == "" {
				return "", fmt.Errorf("POST %s: accepted without an id", path)
			}
			return st.ID, nil
		case code == http.StatusTooManyRequests, code == http.StatusServiceUnavailable:
			if time.Now().After(deadline) {
				return "", nil
			}
			time.Sleep(10 * time.Millisecond)
		default:
			return "", fmt.Errorf("POST %s: code %d", path, code)
		}
	}
}

// stressPoll waits for a job to reach a terminal state (or tolerates a
// concurrent eviction once the job is gone).
func stressPoll(base, prefix, id string, deadline time.Time) error {
	for {
		var st struct {
			State string `json:"state"`
		}
		code, err := clientJSON("GET", base+prefix+id, nil, &st)
		if err != nil {
			return fmt.Errorf("poll %s: %w", id, err)
		}
		if code == http.StatusNotFound {
			return nil // evicted after finishing: acceptable, not lost
		}
		if code != http.StatusOK {
			return fmt.Errorf("poll %s: code %d", id, code)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stressUpload is uploadTrace without t (callable from client
// goroutines): raw bytes in, status code out.
func stressUpload(base string, data []byte) (TraceInfo, int) {
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return TraceInfo{}, 0
	}
	defer resp.Body.Close()
	var info TraceInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		json.NewDecoder(resp.Body).Decode(&info)
	}
	return info, resp.StatusCode
}
