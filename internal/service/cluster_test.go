package service

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/obs"
	"jetty/internal/sweep"
)

// newClusterFleet boots n worker services plus a coordinator service
// wired over them, and returns the coordinator's base URL. The
// coordinator server owns the cluster.Coordinator (its Close closes
// it), so the usual newTestServer cleanup tears everything down.
func newClusterFleet(t *testing.T, n int) (coordBase string, workerBases []string) {
	t.Helper()
	var clients []*cluster.Client
	for i := 0; i < n; i++ {
		_, base := newTestServer(t, Options{Workers: 2, Role: "worker"})
		workerBases = append(workerBases, base)
		c, err := cluster.NewClient(base)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	co, err := cluster.New(cluster.Options{
		Workers:       clients,
		ProbeInterval: 25 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, coordBase = newTestServer(t, Options{Workers: 1, Cluster: co, Role: "coordinator"})
	return coordBase, workerBases
}

// TestClusterServerEndToEnd drives a sweep through a coordinator jettyd
// fronting two worker jettyds — the same /v1/sweeps surface a
// single-process daemon serves — and checks the folded result matches a
// plain daemon's, cell for cell.
func TestClusterServerEndToEnd(t *testing.T) {
	coordBase, _ := newClusterFleet(t, 2)
	_, plainBase := newTestServer(t, Options{Workers: 2})

	spec := sweep.Spec{
		Name:       "cluster-e2e",
		Workloads:  []string{"Lu", "ch"},
		Filters:    []string{"EJ-32x4", "EJ-16x2"},
		FilterMode: sweep.ModeEach,
		Repeat:     2,
		Scale:      0.02,
	}

	var st SweepStatus
	if code := doJSON(t, "POST", coordBase+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("cluster submit code %d", code)
	}
	final := waitSweepDone(t, coordBase, st.ID)
	if final.State != "done" || final.Fraction != 1 {
		t.Fatalf("cluster sweep final status %+v", final)
	}
	var clusterRes SweepResult
	if code := doJSON(t, "GET", coordBase+"/v1/sweeps/"+st.ID+"/result", nil, &clusterRes); code != http.StatusOK {
		t.Fatalf("cluster result code %d", code)
	}

	if code := doJSON(t, "POST", plainBase+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("plain submit code %d", code)
	}
	waitSweepDone(t, plainBase, st.ID)
	var plainRes SweepResult
	if code := doJSON(t, "GET", plainBase+"/v1/sweeps/"+st.ID+"/result", nil, &plainRes); code != http.StatusOK {
		t.Fatalf("plain result code %d", code)
	}

	if !reflect.DeepEqual(clusterRes.Metrics, plainRes.Metrics) {
		t.Errorf("cluster metrics diverge from single-process daemon:\ncluster %+v\nplain   %+v",
			clusterRes.Metrics, plainRes.Metrics)
	}
	if !reflect.DeepEqual(clusterRes.Tables, plainRes.Tables) {
		t.Error("cluster tables diverge from single-process daemon")
	}

	// The coordinator reports its cluster; a plain daemon answers 404.
	var cst cluster.Stats
	if code := doJSON(t, "GET", coordBase+"/v1/cluster/status", nil, &cst); code != http.StatusOK {
		t.Fatalf("cluster status code %d", code)
	}
	if cst.WorkersConfigured != 2 || len(cst.Workers) != 2 {
		t.Errorf("cluster status reports %d workers (rows %d), want 2", cst.WorkersConfigured, len(cst.Workers))
	}
	if cst.CellsDispatched == 0 {
		t.Error("cluster status shows zero dispatched cells after a sweep")
	}
	if code := doJSON(t, "GET", plainBase+"/v1/cluster/status", nil, nil); code != http.StatusNotFound {
		t.Errorf("plain daemon cluster status code %d, want 404", code)
	}

	// /healthz reports the role.
	var health map[string]any
	doJSON(t, "GET", coordBase+"/healthz", nil, &health)
	if health["role"] != "coordinator" {
		t.Errorf("coordinator healthz role = %v", health["role"])
	}
	doJSON(t, "GET", plainBase+"/healthz", nil, &health)
	if health["role"] != "single" {
		t.Errorf("plain healthz role = %v", health["role"])
	}
}

// TestClusterMetricsLintAndMonotone: the coordinator's /metrics carries
// the jettyd_cluster_* instruments, passes the in-repo promlint, and
// its counters never move backwards across scrapes racing a live sweep.
func TestClusterMetricsLintAndMonotone(t *testing.T) {
	coordBase, _ := newClusterFleet(t, 2)

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(coordBase + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	before := scrape()
	if problems := obs.Lint(before); len(problems) != 0 {
		t.Fatalf("coordinator scrape fails lint: %v", problems)
	}

	spec := sweep.Spec{
		Name:      "metrics",
		Workloads: []string{"Lu", "ch"},
		Filters:   []string{"EJ-16x2"},
		Repeat:    2,
		Scale:     0.02,
	}
	var st SweepStatus
	if code := doJSON(t, "POST", coordBase+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	// Scrape while the sweep is in flight — the snapshot discipline must
	// hold mid-reschedule, not just at rest.
	mid := scrape()
	if problems := obs.CheckMonotone(before, mid); len(problems) != 0 {
		t.Errorf("counters went backwards mid-sweep: %v", problems)
	}
	waitSweepDone(t, coordBase, st.ID)
	after := scrape()
	if problems := obs.Lint(after); len(problems) != 0 {
		t.Fatalf("post-sweep scrape fails lint: %v", problems)
	}
	for _, pair := range [][2]string{{before, mid}, {mid, after}} {
		if problems := obs.CheckMonotone(pair[0], pair[1]); len(problems) != 0 {
			t.Errorf("counters went backwards across scrapes: %v", problems)
		}
	}
	for _, want := range []string{
		"jettyd_cluster_workers_configured 2",
		"jettyd_cluster_workers_alive",
		"jettyd_cluster_cells_dispatched_total",
		"jettyd_cluster_cells_rescheduled_total",
		"jettyd_cluster_memo_hits_total",
		"jettyd_cluster_worker_cache_hits_total",
		"jettyd_cluster_cells_computed_total",
		`jettyd_cluster_worker_alive{worker="`,
		`jettyd_cluster_worker_cell_latency_ewma_seconds{worker="`,
	} {
		if !strings.Contains(after, want) {
			t.Errorf("coordinator scrape missing %s", want)
		}
	}
}

// TestCellsEndpoint exercises the worker surface directly: a valid unit
// answers the requested cells in order, malformed requests fail 400,
// and the tenant cell quota answers 429 before any work schedules.
func TestCellsEndpoint(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2, Role: "worker"})

	spec := sweep.Spec{
		Workloads:  []string{"Lu", "ch"},
		Filters:    []string{"EJ-32x4", "EJ-16x2"},
		FilterMode: sweep.ModeEach,
		Scale:      0.02,
	}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}

	var resp cluster.CellsResponse
	req := cluster.CellsRequest{Spec: spec, Indices: []int{0, 2}}
	if code := doJSON(t, "POST", base+"/v1/cells", req, &resp); code != http.StatusOK {
		t.Fatalf("cells code %d", code)
	}
	if len(resp.Cells) != 2 {
		t.Fatalf("%d cell outcomes, want 2", len(resp.Cells))
	}
	for k, want := range []int{0, 2} {
		oc := resp.Cells[k]
		if oc.Index != want || oc.Key != cells[want].Key {
			t.Errorf("outcome %d = (index %d, key %s), want (index %d, key %s)",
				k, oc.Index, oc.Key, want, cells[want].Key)
		}
		if oc.Disposition == "" {
			t.Errorf("outcome %d has no disposition", k)
		}
	}

	for name, bad := range map[string]cluster.CellsRequest{
		"no indices":       {Spec: spec},
		"out of range":     {Spec: spec, Indices: []int{0, len(cells)}},
		"negative":         {Spec: spec, Indices: []int{-1}},
		"not ascending":    {Spec: spec, Indices: []int{2, 0}},
		"duplicate index":  {Spec: spec, Indices: []int{1, 1}},
		"invalid spec":     {Spec: sweep.Spec{}, Indices: []int{0}},
		"unknown workload": {Spec: sweep.Spec{Workloads: []string{"nope"}}, Indices: []int{0}},
	} {
		if code := doJSON(t, "POST", base+"/v1/cells", bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
	}

	// The tenant cell quota fences the endpoint like any other
	// submission path.
	_, small := newTestServer(t, Options{Workers: 1, MaxQueuedCellsPerTenant: 1})
	if code := doJSON(t, "POST", small+"/v1/cells", req, nil); code != http.StatusTooManyRequests {
		t.Errorf("quota-limited cells code %d, want 429", code)
	}
}
