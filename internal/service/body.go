package service

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Request-body plumbing shared by the JSON submit endpoints and the
// trace upload: one size cap, one Content-Encoding story, one
// status-code mapping. Bodies may arrive gzip-compressed
// (Content-Encoding: gzip); the byte cap is enforced on the
// *decompressed* stream, so a gzip bomb cannot smuggle an oversize
// payload past the limit, and on the raw stream too (a legitimate
// compressed body is never larger than its payload). Oversize bodies
// answer 413, unknown encodings 415, malformed content 400.

// errUnsupportedEncoding marks a Content-Encoding jettyd does not
// accept; handlers map it to 415 Unsupported Media Type.
var errUnsupportedEncoding = errors.New("unsupported Content-Encoding (use identity or gzip)")

// requestBody wraps a request's body with the size cap, transparently
// decoding Content-Encoding: gzip. The returned reader yields
// *http.MaxBytesError once the (decompressed) body exceeds limit.
func requestBody(w http.ResponseWriter, r *http.Request, limit int64) (io.Reader, error) {
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
		return http.MaxBytesReader(w, r.Body, limit), nil
	case "gzip", "x-gzip":
		// Cap the raw stream as well: produced output is what matters,
		// but bounding the input keeps a malformed stream from being
		// slurped unboundedly before the decoder notices.
		zr, err := gzip.NewReader(http.MaxBytesReader(w, r.Body, limit))
		if err != nil {
			return nil, fmt.Errorf("decoding gzip body: %w", err)
		}
		return &cappedReader{r: zr, limit: limit, remaining: limit}, nil
	default:
		return nil, fmt.Errorf("%w: %q", errUnsupportedEncoding, enc)
	}
}

// cappedReader enforces the byte cap on a decompressed stream, failing
// with the same *http.MaxBytesError the plain-body path produces so
// callers handle both identically.
type cappedReader struct {
	r         io.Reader
	limit     int64
	remaining int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining < 0 {
		return 0, &http.MaxBytesError{Limit: c.limit}
	}
	if int64(len(p)) > c.remaining+1 {
		p = p[:c.remaining+1] // read one past the cap to detect overflow
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	if c.remaining < 0 {
		return n, &http.MaxBytesError{Limit: c.limit}
	}
	return n, err
}

// bodyErrorStatus maps a request-body read/decode failure to its HTTP
// status: 413 for the size cap, 415 for an unknown encoding, 400 for
// everything else (malformed JSON, truncated gzip, ...).
func bodyErrorStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errUnsupportedEncoding):
		return http.StatusUnsupportedMediaType
	default:
		return http.StatusBadRequest
	}
}

// decodeJSON decodes a JSON request body into v under the shared
// maxRequestBytes cap (decompressed, when the body is gzipped). strict
// rejects unknown fields (the sweep spec endpoint's contract). On
// failure it writes the error response — 413 over the cap, 415 unknown
// encoding, 400 otherwise — and returns false.
func decodeJSON(w http.ResponseWriter, r *http.Request, strict bool, v any) bool {
	body, err := requestBody(w, r, maxRequestBytes)
	if err == nil {
		dec := json.NewDecoder(body)
		if strict {
			dec.DisallowUnknownFields()
		}
		err = dec.Decode(v)
	}
	if err != nil {
		code := bodyErrorStatus(err)
		if code == http.StatusRequestEntityTooLarge {
			err = fmt.Errorf("request body exceeds the %d-byte cap", maxRequestBytes)
		} else {
			err = fmt.Errorf("decoding request: %w", err)
		}
		writeError(w, code, err)
		return false
	}
	return true
}
