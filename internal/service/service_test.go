package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jetty/internal/trace"
	"jetty/internal/workload"
)

// newTestServer returns a running service and its base URL.
func newTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

// doJSON performs one request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls an experiment until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) ExperimentStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st ExperimentStatus
		if code := doJSON(t, "GET", base+"/v1/experiments/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status code %d", code)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("experiment %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthAndCatalogEndpoints(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	var health map[string]any
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz code %d", code)
	}
	if health["ok"] != true {
		t.Errorf("healthz = %v", health)
	}

	var wls []map[string]any
	doJSON(t, "GET", base+"/v1/workloads", nil, &wls)
	if want := 10 + len(workload.Scenarios()); len(wls) != want { // the full library
		t.Errorf("workloads = %d entries, want %d", len(wls), want)
	}

	var filters []string
	doJSON(t, "GET", base+"/v1/filters", nil, &filters)
	if len(filters) == 0 {
		t.Error("no filter configurations listed")
	}
}

func TestSubmitPollFetchRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Options{})

	req := SubmitRequest{
		Apps:    []string{"Lu", "ch"},
		Scale:   0.02,
		Filters: []string{"EJ-32x4", "HJ(IJ-9x4x7,EJ-32x4)"},
	}
	var st ExperimentStatus
	if code := doJSON(t, "POST", base+"/v1/experiments", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if st.ID == "" || len(st.Jobs) != 2 {
		t.Fatalf("submit status = %+v", st)
	}
	if st.Jobs[0].App != "Lu" || st.Jobs[0].Key == "" {
		t.Errorf("job 0 = %+v", st.Jobs[0])
	}

	final := waitDone(t, base, st.ID)
	if final.State != "done" || final.Fraction != 1 {
		t.Fatalf("final status = %+v", final)
	}

	var res ExperimentResult
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d entries", len(res.Results))
	}
	if res.Results[0].Spec.Name != "Lu" || res.Results[1].Spec.Name != "Cholesky" {
		t.Errorf("result order: %s, %s", res.Results[0].Spec.Name, res.Results[1].Spec.Name)
	}
	if res.Results[0].Refs == 0 || len(res.Results[0].Coverage) != 2 {
		t.Errorf("result 0 incomplete: %+v", res.Results[0])
	}
	for _, key := range []string{"table2", "table3", "coverage"} {
		if res.Tables[key] == "" {
			t.Errorf("missing rendered table %q", key)
		}
	}
	if !strings.Contains(res.Tables["coverage"], "EJ-32x4") {
		t.Errorf("coverage table lacks the requested filter:\n%s", res.Tables["coverage"])
	}

	// Listing includes the experiment.
	var list []ExperimentStatus
	doJSON(t, "GET", base+"/v1/experiments", nil, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	// A large budget keeps the run in flight long enough to observe 409.
	req := SubmitRequest{Apps: []string{"Lu"}, Scale: 50, Filters: []string{"EJ-8x2"}}
	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &st)

	var conflict map[string]any
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/result", nil, &conflict); code != http.StatusConflict {
		t.Fatalf("result-before-done code %d, want 409", code)
	}
	if code := doJSON(t, "DELETE", base+"/v1/experiments/"+st.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel code %d", code)
	}
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after cancel = %d, want 404", code)
	}
}

func TestIdenticalExperimentsShareWork(t *testing.T) {
	s, base := newTestServer(t, Options{})

	req := SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}
	var first ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &first)
	waitDone(t, base, first.ID)

	var second ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &second)
	final := waitDone(t, base, second.ID)
	if final.State != "done" {
		t.Fatalf("second experiment = %+v", final)
	}
	if !final.Jobs[0].CacheHit {
		t.Error("identical resubmission should be a cache hit")
	}
	if st := s.runner.Engine().Stats(); st.CacheHits == 0 {
		t.Errorf("engine stats show no cache hits: %+v", st)
	}

	// Both must serve the same result bytes.
	var r1, r2 ExperimentResult
	doJSON(t, "GET", base+"/v1/experiments/"+first.ID+"/result", nil, &r1)
	doJSON(t, "GET", base+"/v1/experiments/"+second.ID+"/result", nil, &r2)
	b1, _ := json.Marshal(r1.Results)
	b2, _ := json.Marshal(r2.Results)
	if !bytes.Equal(b1, b2) {
		t.Error("cached experiment returned different results")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	cases := []SubmitRequest{
		{Apps: []string{"NoSuchApp"}},
		{Filters: []string{"XX-1x1"}},
		{Scale: -1},
		{Scale: 1e15}, // would overflow the access-budget conversion
		{CPUs: 9999},
		{Apps: make([]string, 1000)}, // over the list cap
	}
	for _, req := range cases {
		var errBody map[string]string
		if code := doJSON(t, "POST", base+"/v1/experiments", req, &errBody); code != http.StatusBadRequest {
			t.Errorf("request %+v: code %d, want 400", req, code)
		}
		if errBody["error"] == "" {
			t.Errorf("request %+v: no error message", req)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body code %d", resp.StatusCode)
	}
}

func TestAdmissionCap(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1, MaxUnfinished: 1})

	// Occupy the single worker with a long run.
	long := SubmitRequest{Apps: []string{"Lu"}, Scale: 50, Filters: []string{"EJ-8x2"}}
	var first ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", long, &first)

	// The *global* cap means the daemon is saturated: 503, not the
	// per-tenant quota's 429.
	var rejected map[string]string
	if code := doJSON(t, "POST", base+"/v1/experiments", long, &rejected); code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap submit code %d, want 503", code)
	}
	doJSON(t, "DELETE", base+"/v1/experiments/"+first.ID, nil, nil)
}

func TestFinishedExperimentsAreEvicted(t *testing.T) {
	_, base := newTestServer(t, Options{MaxRetained: 2})

	req := SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}
	var ids []string
	for i := 0; i < 4; i++ {
		var st ExperimentStatus
		if code := doJSON(t, "POST", base+"/v1/experiments", req, &st); code != http.StatusAccepted {
			t.Fatalf("submit %d code %d", i, code)
		}
		waitDone(t, base, st.ID)
		ids = append(ids, st.ID)
	}

	var list []ExperimentStatus
	doJSON(t, "GET", base+"/v1/experiments", nil, &list)
	if len(list) != 2 {
		t.Fatalf("registry holds %d experiments, want 2 (MaxRetained)", len(list))
	}
	// The oldest were evicted, the newest survive and still serve results.
	if code := doJSON(t, "GET", base+"/v1/experiments/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Errorf("oldest experiment code %d, want 404 after eviction", code)
	}
	var res ExperimentResult
	if code := doJSON(t, "GET", base+"/v1/experiments/"+ids[3]+"/result", nil, &res); code != http.StatusOK {
		t.Errorf("newest experiment result code %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/experiments/exp-999999"},
		{"GET", "/v1/experiments/exp-999999/result"},
		{"DELETE", "/v1/experiments/exp-999999"},
	} {
		if code := doJSON(t, probe.method, base+probe.path, nil, nil); code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}
}

// clientJSON is doJSON for non-test goroutines: it returns errors
// instead of calling t.Fatal.
func clientJSON(method, url string, body any, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func TestManyConcurrentClients(t *testing.T) {
	_, base := newTestServer(t, Options{})

	// Ten clients submitting overlapping small experiments: exercises the
	// registry and the engine's dedup under the race detector.
	apps := []string{"Lu", "ch", "ff"}
	run := func(c int) error {
		req := SubmitRequest{
			Apps:    []string{apps[c%len(apps)]},
			Scale:   0.02,
			Filters: []string{"EJ-16x2"},
		}
		var st ExperimentStatus
		code, err := clientJSON("POST", base+"/v1/experiments", req, &st)
		if err != nil || code != http.StatusAccepted {
			return fmt.Errorf("client %d: submit code %d err %v", c, code, err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			var cur ExperimentStatus
			if code, err := clientJSON("GET", base+"/v1/experiments/"+st.ID, nil, &cur); err != nil || code != http.StatusOK {
				return fmt.Errorf("client %d: status code %d err %v", c, code, err)
			}
			if cur.State == "done" {
				break
			}
			if cur.State == "failed" || cur.State == "canceled" {
				return fmt.Errorf("client %d: state %s", c, cur.State)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("client %d: timed out in %s", c, cur.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
		var res ExperimentResult
		if code, err := clientJSON("GET", base+"/v1/experiments/"+st.ID+"/result", nil, &res); err != nil || code != http.StatusOK {
			return fmt.Errorf("client %d: result code %d err %v", c, code, err)
		}
		if len(res.Results) != 1 || res.Results[0].Refs == 0 {
			return fmt.Errorf("client %d: bad result", c)
		}
		return nil
	}

	done := make(chan error, 10)
	for c := 0; c < 10; c++ {
		go func(c int) { done <- run(c) }(c)
	}
	for c := 0; c < 10; c++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// uploadTrace posts raw trace bytes and returns the decoded TraceInfo.
func uploadTrace(t *testing.T, base string, data []byte) (TraceInfo, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info TraceInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

// recordTestTrace exports a small workload trace as raw file bytes.
func recordTestTrace(t *testing.T, app string, cpus int, perCPU uint64) []byte {
	t.Helper()
	sp, err := workload.Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := trace.WriterOptions{Compress: true, Meta: trace.Meta{App: sp.Name}}
	if _, err := trace.Record(&buf, sp.Source(cpus), perCPU, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceUploadReplayRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Options{})
	data := recordTestTrace(t, "WebServer", 4, 5000)

	info, code := uploadTrace(t, base, data)
	if code != http.StatusCreated {
		t.Fatalf("upload code %d", code)
	}
	if info.Digest == "" || info.CPUs != 4 || info.Records != 20000 || !info.Compressed {
		t.Fatalf("upload info = %+v", info)
	}

	// Identical re-upload: 200, same digest, no second slot.
	again, code := uploadTrace(t, base, data)
	if code != http.StatusOK || again.Digest != info.Digest {
		t.Fatalf("re-upload: code %d info %+v", code, again)
	}
	var list []TraceInfo
	doJSON(t, "GET", base+"/v1/traces", nil, &list)
	if len(list) != 1 {
		t.Fatalf("trace list has %d entries", len(list))
	}

	// Replay it with a filter bank.
	req := SubmitRequest{Trace: info.Digest, Filters: []string{"EJ-32x4"}}
	var st ExperimentStatus
	if code := doJSON(t, "POST", base+"/v1/experiments", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].App != "WebServer" || st.Jobs[0].Total != 20000 {
		t.Fatalf("jobs = %+v", st.Jobs)
	}
	final := waitDone(t, base, st.ID)
	if final.State != "done" {
		t.Fatalf("final = %+v", final)
	}
	var res ExperimentResult
	if code := doJSON(t, "GET", base+"/v1/experiments/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}
	if len(res.Results) != 1 || res.Results[0].Refs != 20000 {
		t.Fatalf("replay result = %+v", res.Results)
	}
	if len(res.Results[0].Coverage) != 1 {
		t.Errorf("replay measured %d filters", len(res.Results[0].Coverage))
	}

	// A second replay of the same trace+config is a cache hit.
	var st2 ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments", req, &st2)
	if st2.Jobs[0].Key != st.Jobs[0].Key {
		t.Errorf("replay keys differ: %s vs %s", st2.Jobs[0].Key, st.Jobs[0].Key)
	}
	if final := waitDone(t, base, st2.ID); final.State != "done" {
		t.Errorf("second replay = %+v", final)
	}

	// Delete frees the slot.
	var del map[string]string
	if code := doJSON(t, "DELETE", base+"/v1/traces/"+info.Digest, nil, &del); code != http.StatusOK {
		t.Fatalf("delete code %d", code)
	}
	doJSON(t, "GET", base+"/v1/traces", nil, &list)
	if len(list) != 0 {
		t.Errorf("trace list has %d entries after delete", len(list))
	}
}

func TestTraceUploadValidation(t *testing.T) {
	_, base := newTestServer(t, Options{MaxTraces: 1})

	if _, code := uploadTrace(t, base, []byte("not a trace")); code != http.StatusBadRequest {
		t.Errorf("garbage upload code %d", code)
	}

	// Unknown digest in a submit.
	var errBody map[string]any
	if code := doJSON(t, "POST", base+"/v1/experiments", SubmitRequest{Trace: "feed"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown trace submit code %d", code)
	}

	// Store cap.
	first := recordTestTrace(t, "tp", 2, 500)
	if _, code := uploadTrace(t, base, first); code != http.StatusCreated {
		t.Fatalf("first upload rejected")
	}
	second := recordTestTrace(t, "Ocean", 2, 500)
	if _, code := uploadTrace(t, base, second); code != http.StatusInsufficientStorage {
		t.Errorf("over-cap upload code %d", code)
	}

	// apps+trace and scale+trace are rejected; narrow machines too.
	info, _ := uploadTrace(t, base, first) // 200: already stored
	for _, req := range []SubmitRequest{
		{Trace: info.Digest, Apps: []string{"Barnes"}},
		{Trace: info.Digest, Scale: 0.5},
		{Trace: info.Digest, CPUs: 1},
	} {
		if code := doJSON(t, "POST", base+"/v1/experiments", req, &errBody); code != http.StatusBadRequest {
			t.Errorf("submit %+v: code %d, want 400", req, code)
		}
	}
}
