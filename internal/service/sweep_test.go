package service

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/sim"
	"jetty/internal/sweep"
	"jetty/internal/workload"
)

// waitSweepDone polls a sweep until it reaches a terminal state.
func waitSweepDone(t *testing.T, base, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st SweepStatus
		if code := doJSON(t, "GET", base+"/v1/sweeps/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("sweep status code %d", code)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// acceptanceSweepSpec mirrors the ISSUE's acceptance shape: 2 workloads
// × 2 machines × 3 filters.
func acceptanceSweepSpec() sweep.Spec {
	return sweep.Spec{
		Name:      "svc-acceptance",
		Workloads: []string{"Lu", "ch"},
		Machines: []sweep.Machine{
			{},
			{CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2},
		},
		Filters: []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"},
		Scale:   0.02,
	}
}

func TestSweepSubmitPollFetchRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Options{})
	spec := acceptanceSweepSpec()

	var st SweepStatus
	if code := doJSON(t, "POST", base+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if st.ID == "" || st.Cells != 4 || len(st.Cell) != 4 {
		t.Fatalf("submit status = %+v", st)
	}
	final := waitSweepDone(t, base, st.ID)
	if final.State != "done" || final.Fraction != 1 {
		t.Fatalf("final = %+v", final)
	}

	var res SweepResult
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}
	if len(res.Metrics) != 4*3 {
		t.Fatalf("%d metrics, want 12", len(res.Metrics))
	}
	for _, key := range []string{"by_filter", "by_workload_filter", "cells_csv"} {
		if res.Tables[key] == "" {
			t.Errorf("missing rendered table %q", key)
		}
	}
	if !strings.Contains(res.Tables["by_filter"], "IJ-8x4x7") {
		t.Errorf("by_filter table lacks a swept filter:\n%s", res.Tables["by_filter"])
	}

	// The service's numbers equal running one cell individually through
	// the serial reference path (the acceptance criterion, over HTTP).
	sp, err := workload.Lookup("Lu")
	if err != nil {
		t.Fatal(err)
	}
	fcs, err := jetty.ParseAll(spec.Filters)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Machines[0].Config(fcs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.RunApp(sp.Scale(spec.Scale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := sim.EnergyReductions(ref, cfg, energy.Tech180(), energy.SerialTagData)
	for _, m := range res.Metrics {
		if m.Workload != "Lu" || m.Machine != spec.Machines[0].Label() {
			continue
		}
		for fi, name := range ref.FilterNames {
			if name != m.Filter {
				continue
			}
			if m.Coverage != ref.Coverage[fi] || m.SerialOverAll != serial[fi].OverAll {
				t.Errorf("%s metric %+v disagrees with individual run (coverage %v, energy %v)",
					name, m, ref.Coverage[fi], serial[fi].OverAll)
			}
		}
	}

	// Listing includes the sweep.
	var list []SweepStatus
	doJSON(t, "GET", base+"/v1/sweeps", nil, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}

	// An identical resubmission is served entirely from the cache.
	var again SweepStatus
	doJSON(t, "POST", base+"/v1/sweeps", spec, &again)
	refinal := waitSweepDone(t, base, again.ID)
	if refinal.State != "done" || refinal.CacheHits != refinal.Cells {
		t.Errorf("rerun: state %s, %d/%d cache hits (want all)",
			refinal.State, refinal.CacheHits, refinal.Cells)
	}
}

func TestSweepWithUploadedTrace(t *testing.T) {
	_, base := newTestServer(t, Options{})
	data := recordTestTrace(t, "WebServer", 2, 3000)
	info, code := uploadTrace(t, base, data)
	if code != http.StatusCreated {
		t.Fatalf("upload code %d", code)
	}

	spec := sweep.Spec{
		Workloads: []string{"trace:" + info.Digest, "Lu"},
		Filters:   []string{"EJ-32x4"},
		Scale:     0.02,
	}
	var st SweepStatus
	if code := doJSON(t, "POST", base+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	if st.Cells != 2 {
		t.Fatalf("cells = %d, want 2", st.Cells)
	}
	final := waitSweepDone(t, base, st.ID)
	if final.State != "done" {
		t.Fatalf("final = %+v", final)
	}
	var res SweepResult
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}
	found := false
	for _, m := range res.Metrics {
		if m.Workload == "trace:"+info.Digest {
			found = true
			if m.Coverage < 0 || m.Coverage > 1 {
				t.Errorf("trace metric out of range: %+v", m)
			}
		}
	}
	if !found {
		t.Error("no metric for the trace cell")
	}

	// An unknown digest fails at submission, not later.
	bad := sweep.Spec{Workloads: []string{"trace:feedfacedeadbeef"}, Filters: []string{"EJ-32x4"}}
	var errBody map[string]any
	if code := doJSON(t, "POST", base+"/v1/sweeps", bad, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown trace sweep code %d, want 400", code)
	}
}

func TestSweepValidationAndNotFound(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	bad := []sweep.Spec{
		{},
		{Workloads: []string{"NoSuchApp"}},
		{Workloads: []string{"Lu"}, Filters: []string{"XX-9"}},
		{Workloads: []string{"Lu"}, Scale: -3},
		{Workloads: []string{"Lu"}, FilterMode: "sideways"},
	}
	for i, spec := range bad {
		var errBody map[string]string
		if code := doJSON(t, "POST", base+"/v1/sweeps", spec, &errBody); code != http.StatusBadRequest {
			t.Errorf("spec %d: code %d, want 400", i, code)
		}
		if errBody["error"] == "" {
			t.Errorf("spec %d: no error message", i)
		}
	}

	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sweeps/swp-999999"},
		{"GET", "/v1/sweeps/swp-999999/result"},
		{"DELETE", "/v1/sweeps/swp-999999"},
	} {
		if code := doJSON(t, probe.method, base+probe.path, nil, nil); code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}
}

func TestSweepAdmissionAndCancel(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1, MaxUnfinished: 1})

	// A long sweep occupies the single admission slot...
	long := sweep.Spec{Workloads: []string{"Fmm"}, Filters: []string{"EJ-8x2"}, Scale: 50}
	var st SweepStatus
	if code := doJSON(t, "POST", base+"/v1/sweeps", long, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}

	// ...blocking both further sweeps and ordinary experiments: one cap
	// covers both job kinds, and a saturated daemon answers 503 (the
	// per-tenant quota's 429 is distinct; see TestTenantQuotas).
	var rejected map[string]string
	if code := doJSON(t, "POST", base+"/v1/sweeps", long, &rejected); code != http.StatusServiceUnavailable {
		t.Errorf("over-cap sweep code %d, want 503", code)
	}
	if code := doJSON(t, "POST", base+"/v1/experiments",
		SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02}, &rejected); code != http.StatusServiceUnavailable {
		t.Errorf("over-cap experiment code %d, want 503", code)
	}

	// Result before done conflicts; cancel frees the slot and forgets.
	var conflict map[string]any
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+st.ID+"/result", nil, &conflict); code != http.StatusConflict {
		t.Errorf("result-before-done code %d, want 409", code)
	}
	if code := doJSON(t, "DELETE", base+"/v1/sweeps/"+st.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel code %d", code)
	}
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+st.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("status after cancel = %d, want 404", code)
	}

	// The slot is free again.
	short := sweep.Spec{Workloads: []string{"Lu"}, Filters: []string{"EJ-16x2"}, Scale: 0.02}
	if code := doJSON(t, "POST", base+"/v1/sweeps", short, &st); code != http.StatusAccepted {
		t.Fatalf("post-cancel submit code %d", code)
	}
	waitSweepDone(t, base, st.ID)
}

func TestSweepEviction(t *testing.T) {
	_, base := newTestServer(t, Options{MaxRetained: 2})

	spec := sweep.Spec{Workloads: []string{"Lu"}, Filters: []string{"EJ-16x2"}, Scale: 0.02}
	var ids []string
	for i := 0; i < 4; i++ {
		spec.Name = string(rune('a' + i))
		var st SweepStatus
		if code := doJSON(t, "POST", base+"/v1/sweeps", spec, &st); code != http.StatusAccepted {
			t.Fatalf("submit %d code %d", i, code)
		}
		waitSweepDone(t, base, st.ID)
		ids = append(ids, st.ID)
	}
	var list []SweepStatus
	doJSON(t, "GET", base+"/v1/sweeps", nil, &list)
	if len(list) != 2 {
		t.Fatalf("registry holds %d sweeps, want 2 (MaxRetained)", len(list))
	}
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Errorf("oldest sweep code %d, want 404 after eviction", code)
	}
	var res SweepResult
	if code := doJSON(t, "GET", base+"/v1/sweeps/"+ids[3]+"/result", nil, &res); code != http.StatusOK {
		t.Errorf("newest sweep result code %d", code)
	}
}
