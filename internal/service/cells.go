package service

import (
	"fmt"
	"net/http"

	"jetty/internal/cluster"
	"jetty/internal/obs"
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// POST /v1/cells is the cluster's worker endpoint: a coordinator ships
// a whole sweep spec plus the expansion indices of one planned unit,
// and the worker runs exactly those cells on its local engine,
// answering synchronously with per-cell results and dispositions. The
// spec travels whole because expansion is deterministic — the worker
// reconstructs the coordinator's cells (seeds, machine configs,
// sampling) bit-identically, and the shared content addresses make the
// engine's cache and in-flight dedup work across processes.
//
// The endpoint is plain HTTP/JSON on the ordinary service surface: it
// runs under the same tenant admission quotas, fair-share scheduling
// and telemetry as every other submission, so a worker daemon is just a
// jettyd.

// cellRun is one in-flight cell unit in the registry: registered for
// the duration of the request so admission accounting sees its load,
// removed when the response is written (nothing to retain — results
// stream back to the coordinator, and the engine cache keeps the L1).
type cellRun struct {
	tenant string
	cs     *sweep.CellSet
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	var req cluster.CellsRequest
	if !decodeJSON(w, r, true, &req) {
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Indices) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no cell indices"))
		return
	}

	tenant := tenantFrom(r.Context())
	s.mu.Lock()
	resolver := func(digest string) (sim.TraceInput, error) {
		in, ok := s.traces[digest]
		if !ok {
			return sim.TraceInput{}, fmt.Errorf("not uploaded (POST it to /v1/traces first)")
		}
		return in, nil
	}
	if code, reason, err := s.admitLocked(tenant, len(req.Indices)); err != nil {
		s.mu.Unlock()
		s.tel.admissionRejected.With(tenant, reason).Add(1)
		s.writeRetryError(w, code, tenant, err)
		return
	}
	cs, err := sweep.SubmitCells(s.runner, req.Spec, resolver, obs.RequestID(r.Context()), tenant, req.Indices)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.seq++
	id := fmt.Sprintf("cells-%06d", s.seq)
	s.cellRuns[id] = &cellRun{tenant: tenant, cs: cs}
	s.mu.Unlock()
	defer func() {
		// Always release the handles: a finished unit's cancel is a
		// no-op, a disconnected coordinator's unit stops computing.
		cs.Cancel()
		s.mu.Lock()
		delete(s.cellRuns, id)
		s.mu.Unlock()
	}()

	// Synchronous by design: the coordinator's dispatch is the waiter,
	// and a dropped connection (coordinator gone, or it hedged the unit
	// elsewhere and timed this one out) cancels via the request context.
	results, err := cs.Wait(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	dispos := cs.Dispositions()
	cells := cs.Cells()
	out := cluster.CellsResponse{Cells: make([]cluster.CellOutcome, len(cells))}
	for k, c := range cells {
		out.Cells[k] = cluster.CellOutcome{
			Index:       c.Index,
			Key:         c.Key,
			Disposition: dispos[k],
			Result:      results[k],
		}
	}
	writeJSON(w, http.StatusOK, out)
}
