package service

import (
	"context"
	"fmt"
	"net/http"
)

// Tenant identity. Every request carries a tenant name in the
// X-Jetty-Tenant header (defaulting to "anonymous" when absent), echoed
// back on the response, stamped on the access log and threaded into
// every engine job the request submits (engine.Task.Tenant) — the
// fair-share scheduler and the per-tenant admission quotas key on it.
//
// jettyd trusts the header as-is: tenancy here is a fairness and
// accounting boundary, not an authentication one. Put real
// authentication in front (a proxy that sets the header from
// credentials) when tenants are adversarial.

// TenantHeader is the request/response header naming the tenant.
const TenantHeader = "X-Jetty-Tenant"

// DefaultTenant is the tenant of requests that send no header.
const DefaultTenant = "anonymous"

// maxTenantLen bounds a tenant name; it doubles as a metric label and a
// log field, so attacker-controlled growth stays small.
const maxTenantLen = 64

// validTenant reports whether a tenant name is well-formed: 1..64
// characters from [A-Za-z0-9._-], not starting with '.' or '-' (keeps
// names safe as metric label values, log fields and future file names).
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > maxTenantLen {
		return false
	}
	if name[0] == '.' || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantKey carries the request's tenant in its context.
type tenantKey struct{}

// withTenant stamps a tenant onto a request context.
func withTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// tenantFrom returns the request context's tenant (DefaultTenant when
// the middleware has not run, e.g. direct handler tests).
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok {
		return t
	}
	return DefaultTenant
}

// resolveTenant extracts and validates the request's tenant. ok=false
// means the handler chain must stop: a 400 with the validation error has
// been written.
func resolveTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		return DefaultTenant, true
	}
	if !validTenant(name) {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"invalid %s: need 1..%d characters from [A-Za-z0-9._-], not starting with '.' or '-'",
			TenantHeader, maxTenantLen))
		return "", false
	}
	return name, true
}
