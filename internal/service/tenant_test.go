package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jetty/internal/obs"
)

// tenantDo performs one request under an explicit tenant ("" omits the
// header, i.e. the anonymous tenant) and returns the raw response.
func tenantDo(method, url, tenant string, body any) (*http.Response, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return nil, err
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	return http.DefaultClient.Do(req)
}

// tenantJSON is clientJSON with an X-Jetty-Tenant header.
func tenantJSON(method, url, tenant string, body any, out any) (int, error) {
	resp, err := tenantDo(method, url, tenant, body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestValidTenant(t *testing.T) {
	good := []string{"a", "alice", "team-7", "org.unit_3", "A1", strings.Repeat("x", 64)}
	for _, name := range good {
		if !validTenant(name) {
			t.Errorf("validTenant(%q) = false, want true", name)
		}
	}
	bad := []string{"", ".hidden", "-flag", "has space", "sl/ash", "quo\"te", strings.Repeat("x", 65), "héllo"}
	for _, name := range bad {
		if validTenant(name) {
			t.Errorf("validTenant(%q) = true, want false", name)
		}
	}
}

// TestTenantHeaderRoundTrip: the resolved tenant is echoed on every
// response — the sent name, "anonymous" when absent — and a malformed
// name is rejected with 400 before reaching any handler.
func TestTenantHeaderRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	resp, err := tenantDo("GET", base+"/healthz", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TenantHeader); got != "alice" {
		t.Errorf("echoed tenant %q, want alice", got)
	}

	resp, err = tenantDo("GET", base+"/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TenantHeader); got != DefaultTenant {
		t.Errorf("default tenant echoed as %q, want %q", got, DefaultTenant)
	}

	resp, err = tenantDo("GET", base+"/healthz", "not a tenant!", nil)
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant code %d, want 400", resp.StatusCode)
	}
	if errBody["error"] == "" {
		t.Error("invalid tenant rejection carries no error message")
	}
}

// TestTenantQuotaJobs: one tenant exhausting its per-tenant job quota
// gets 429 + Retry-After while another tenant still submits freely —
// and the global cap's 503 stays a distinct signal.
func TestTenantQuotaJobs(t *testing.T) {
	_, base := newTestServer(t, Options{
		Workers:                1,
		MaxUnfinished:          8,
		MaxUnfinishedPerTenant: 1,
	})

	long := SubmitRequest{Apps: []string{"Lu"}, Scale: 50, Filters: []string{"EJ-8x2"}}
	var first ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "alice", long, &first); err != nil || code != http.StatusAccepted {
		t.Fatalf("first alice submit: code %d err %v", code, err)
	}
	if first.Tenant != "alice" {
		t.Errorf("experiment tenant %q, want alice", first.Tenant)
	}

	// Alice is at quota: 429, with a Retry-After hint.
	resp, err := tenantDo("POST", base+"/v1/experiments", "alice", long)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// The daemon has headroom: bob's submission is admitted.
	var second ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "bob", long, &second); err != nil || code != http.StatusAccepted {
		t.Fatalf("bob submit during alice quota exhaustion: code %d err %v", code, err)
	}

	doJSON(t, "DELETE", base+"/v1/experiments/"+first.ID, nil, nil)
	doJSON(t, "DELETE", base+"/v1/experiments/"+second.ID, nil, nil)
}

// TestTenantQuotaCells: the per-tenant cell quota judges a submission by
// the engine jobs it would add, so one giant sweep is rejected up front.
func TestTenantQuotaCells(t *testing.T) {
	_, base := newTestServer(t, Options{
		Workers:                 1,
		MaxQueuedCellsPerTenant: 2,
	})

	// Three apps = three engine jobs > cap 2: rejected before scheduling.
	resp, err := tenantDo("POST", base+"/v1/experiments", "alice",
		SubmitRequest{Apps: []string{"Lu", "ch", "ff"}, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-cell submit code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Two apps fit.
	var st ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "alice",
		SubmitRequest{Apps: []string{"Lu", "ch"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st); err != nil || code != http.StatusAccepted {
		t.Fatalf("within-cell submit: code %d err %v", code, err)
	}
	waitDone(t, base, st.ID)
}

// TestTenantQuotaTraces: the per-tenant upload quota answers 429 within
// a store that still has global room, and deleting frees the slot.
func TestTenantQuotaTraces(t *testing.T) {
	_, base := newTestServer(t, Options{MaxTraces: 8, MaxTracesPerTenant: 1})
	dataA := recordTestTrace(t, "Lu", 2, 300)
	dataB := recordTestTrace(t, "ch", 2, 300)

	upload := func(tenant string, data []byte) (TraceInfo, *http.Response) {
		req, err := http.NewRequest("POST", base+"/v1/traces", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info TraceInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return info, resp
	}

	info, resp := upload("alice", dataA)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload code %d", resp.StatusCode)
	}
	if info.Tenant != "alice" {
		t.Errorf("trace owner %q, want alice", info.Tenant)
	}

	_, resp = upload("alice", dataB)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Another tenant is unaffected by alice's quota.
	if _, resp = upload("bob", dataB); resp.StatusCode != http.StatusCreated {
		t.Errorf("bob upload code %d, want 201", resp.StatusCode)
	}

	// Deleting alice's trace frees her slot.
	doJSON(t, "DELETE", base+"/v1/traces/"+info.Digest, nil, nil)
	if _, resp = upload("alice", dataB); resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Errorf("post-delete upload code %d", resp.StatusCode)
	}
}

// TestRetryHintSeconds pins the Retry-After computation that replaced
// the old flat "Retry-After: 1": distinct floors per rejection class,
// backlog/worker/run-duration scaling, multiplicative jitter, and the
// five-minute ceiling.
func TestRetryHintSeconds(t *testing.T) {
	// Idle daemon, no jitter: the floors — and only the floors — and
	// they differ, so clients can tell "you are over quota" (429,
	// retry soon) from "the daemon is saturated" (503, back off).
	if got := retryHintSeconds(http.StatusTooManyRequests, 0, 4, 0, 0); got != retryFloorTenantSeconds {
		t.Errorf("idle 429 hint = %d, want %d", got, retryFloorTenantSeconds)
	}
	if got := retryHintSeconds(http.StatusServiceUnavailable, 0, 4, 0, 0); got != retryFloorGlobalSeconds {
		t.Errorf("idle 503 hint = %d, want %d", got, retryFloorGlobalSeconds)
	}
	if retryFloorTenantSeconds == retryFloorGlobalSeconds {
		t.Fatal("429 and 503 floors must be distinct")
	}

	// Backlog × run-duration over workers: 8 tasks × 3s each on 2
	// workers = 12s.
	if got := retryHintSeconds(http.StatusServiceUnavailable, 8, 2, 3.0, 0); got != 12 {
		t.Errorf("scaled 503 hint = %d, want 12", got)
	}
	// Jitter stretches the estimate multiplicatively, never shrinks it.
	if got := retryHintSeconds(http.StatusServiceUnavailable, 8, 2, 3.0, 0.24); got != 15 {
		t.Errorf("jittered 503 hint = %d, want 15 (ceil of 12 * 1.24)", got)
	}
	// The ceiling keeps a huge backlog from telling clients to go away
	// for hours.
	if got := retryHintSeconds(http.StatusServiceUnavailable, 1_000_000, 1, 10, 0); got != retryCeilSeconds {
		t.Errorf("huge-backlog hint = %d, want the %ds ceiling", got, retryCeilSeconds)
	}
	// Degenerate inputs are defended: no workers reported yet, no EWMA.
	if got := retryHintSeconds(http.StatusTooManyRequests, 3, 0, 0, 0); got != 3 {
		t.Errorf("defaulted hint = %d, want 3 (3 tasks x 1s default / 1 worker)", got)
	}
}

// TestRetryAfterHintsOverHTTP: rejected submissions carry hints within
// the computed bounds — a per-tenant 429 at or above its floor, a
// global 503 at or above its strictly higher floor — rather than the
// old synchronized "1".
func TestRetryAfterHintsOverHTTP(t *testing.T) {
	_, base := newTestServer(t, Options{
		Workers:                1,
		MaxUnfinished:          2,
		MaxUnfinishedPerTenant: 1,
	})
	long := SubmitRequest{Apps: []string{"Lu"}, Scale: 50, Filters: []string{"EJ-8x2"}}

	hint := func(resp *http.Response) int {
		t.Helper()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		h := resp.Header.Get("Retry-After")
		n, err := strconv.Atoi(h)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", h, err)
		}
		return n
	}

	var first ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "alice", long, &first); err != nil || code != http.StatusAccepted {
		t.Fatalf("first submit: code %d err %v", code, err)
	}

	// Alice over quota: 429, hint at or above the tenant floor.
	resp, err := tenantDo("POST", base+"/v1/experiments", "alice", long)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota code %d, want 429", resp.StatusCode)
	}
	h429 := hint(resp)
	if h429 < retryFloorTenantSeconds || h429 > retryCeilSeconds {
		t.Errorf("429 hint %d outside [%d, %d]", h429, retryFloorTenantSeconds, retryCeilSeconds)
	}

	// Fill the global cap with bob, then carol sees 503 with a hint at
	// or above the (strictly higher) global floor.
	var second ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "bob", long, &second); err != nil || code != http.StatusAccepted {
		t.Fatalf("bob submit: code %d err %v", code, err)
	}
	resp, err = tenantDo("POST", base+"/v1/experiments", "carol", long)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated code %d, want 503", resp.StatusCode)
	}
	h503 := hint(resp)
	if h503 < retryFloorGlobalSeconds || h503 > retryCeilSeconds {
		t.Errorf("503 hint %d outside [%d, %d]", h503, retryFloorGlobalSeconds, retryCeilSeconds)
	}

	doJSON(t, "DELETE", base+"/v1/experiments/"+first.ID, nil, nil)
	doJSON(t, "DELETE", base+"/v1/experiments/"+second.ID, nil, nil)
}

// TestTenantMetrics: per-tenant occupancy gauges appear on the scrape
// while a tenant holds work, drop to zero (not stale values, not
// vanished series) when it drains, and the whole exposition passes the
// in-repo promlint.
func TestTenantMetrics(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	long := SubmitRequest{Apps: []string{"Lu"}, Scale: 50, Filters: []string{"EJ-8x2"}}
	var st ExperimentStatus
	if code, err := tenantJSON("POST", base+"/v1/experiments", "alice", long, &st); err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code %d err %v", code, err)
	}

	body := scrapeMetrics(t, base)
	if !strings.Contains(body, `jettyd_tenant_jobs_unfinished{tenant="alice"} 1`) {
		t.Errorf("in-flight scrape missing alice jobs gauge:\n%s", grepMetrics(body, "jettyd_tenant"))
	}
	if !strings.Contains(body, `jettyd_tenant_cells_unfinished{tenant="alice"} 1`) {
		t.Errorf("in-flight scrape missing alice cells gauge:\n%s", grepMetrics(body, "jettyd_tenant"))
	}
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Errorf("scrape fails lint: %v", problems)
	}

	// Cancel; the next scrape must report alice at zero, not freeze the
	// series at its last value.
	doJSON(t, "DELETE", base+"/v1/experiments/"+st.ID, nil, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		body = scrapeMetrics(t, base)
		if strings.Contains(body, `jettyd_tenant_jobs_unfinished{tenant="alice"} 0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alice gauge never zeroed:\n%s", grepMetrics(body, "jettyd_tenant"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Errorf("post-drain scrape fails lint: %v", problems)
	}

	// Rejections are counted per tenant and reason.
	_, base2 := newTestServer(t, Options{Workers: 1, MaxQueuedCellsPerTenant: 1})
	tenantJSON("POST", base2+"/v1/experiments", "carol",
		SubmitRequest{Apps: []string{"Lu", "ch"}, Scale: 0.02}, nil)
	body = scrapeMetrics(t, base2)
	if !strings.Contains(body, `jettyd_admission_rejections_total{tenant="carol",reason="tenant_cells"} 1`) {
		t.Errorf("scrape missing carol rejection counter:\n%s", grepMetrics(body, "jettyd_admission"))
	}
}

// grepMetrics filters a scrape to lines containing substr (test-failure
// readability).
func grepMetrics(body, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestOversizeJSONBodies: a submit or sweep body past maxRequestBytes is
// 413 (it used to be a generic 400), matching the trace-upload contract.
func TestOversizeJSONBodies(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	huge := `{"apps":["` + strings.Repeat("a", maxRequestBytes+1024) + `"]}`
	for _, path := range []string{"/v1/experiments", "/v1/sweeps"} {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var errBody map[string]string
		json.NewDecoder(resp.Body).Decode(&errBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversize body code %d, want 413", path, resp.StatusCode)
		}
		if !strings.Contains(errBody["error"], "cap") {
			t.Errorf("POST %s oversize error %q lacks the cap hint", path, errBody["error"])
		}
	}
}

// TestGzipRequestBodies: JSON submits and trace uploads accept
// Content-Encoding: gzip; the size cap binds the *decompressed* stream
// (a gzip bomb answers 413, not OOM); unknown encodings answer 415.
func TestGzipRequestBodies(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	post := func(path, encoding string, body []byte) *http.Response {
		req, err := http.NewRequest("POST", base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	gz := func(data []byte) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(data)
		zw.Close()
		return buf.Bytes()
	}

	// A gzipped submit body is decoded transparently.
	plain := []byte(`{"apps":["Lu"],"scale":0.02,"filters":["EJ-16x2"]}`)
	if resp := post("/v1/experiments", "gzip", gz(plain)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("gzipped submit code %d, want 202", resp.StatusCode)
	}

	// A gzipped trace upload stores the same digest as a plain one.
	data := recordTestTrace(t, "Lu", 2, 300)
	plainInfo, code := uploadTrace(t, base, data)
	if code != http.StatusCreated {
		t.Fatalf("plain upload code %d", code)
	}
	if resp := post("/v1/traces", "gzip", gz(data)); resp.StatusCode != http.StatusOK {
		t.Errorf("gzipped re-upload code %d, want 200 (same digest %s)", resp.StatusCode, plainInfo.Digest)
	}

	// Unknown encodings are 415, not silently misparsed.
	if resp := post("/v1/experiments", "br", plain); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("unknown encoding code %d, want 415", resp.StatusCode)
	}

	// A bomb: tiny compressed, >cap decompressed. The cap fires on the
	// decompressed stream.
	bomb := gz([]byte(`{"trace":"` + strings.Repeat("a", maxRequestBytes+1024) + `"}`))
	if len(bomb) >= maxRequestBytes {
		t.Fatalf("bomb did not compress below the cap (%d bytes)", len(bomb))
	}
	if resp := post("/v1/experiments", "gzip", bomb); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("gzip bomb code %d, want 413", resp.StatusCode)
	}

	// A truncated gzip stream is a plain 400.
	if resp := post("/v1/experiments", "gzip", gz(plain)[:8]); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated gzip code %d, want 400", resp.StatusCode)
	}
}

// TestTwoTenantFairShare is the ISSUE 8 acceptance stress: a flooder
// tenant saturating its quota and the engine queue must not starve a
// light tenant — the light tenant's jobs keep retiring (fair-share
// drain), the flooder's overflow gets 429 + Retry-After (quota, not the
// global cap's 503), and the daemon stays responsive throughout.
func TestTwoTenantFairShare(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, base := newTestServer(t, Options{
		Workers:                1,
		MaxUnfinished:          32,
		MaxUnfinishedPerTenant: 4,
	})

	deadline := time.Now().Add(90 * time.Second)
	stop := make(chan struct{})
	var flooder429 bool
	var floodMu sync.Mutex
	var wg sync.WaitGroup

	// The flooder hammers submissions far past its quota; its accepted
	// jobs are real work that keeps the single worker busy. Each carries
	// a slightly different scale, so the engine's dedup (coalescing, the
	// result cache) cannot collapse them into one execution.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Scale 3 runs ~0.5s per job: long enough that four of them
			// pile up unfinished (saturating the quota), short enough
			// that the light tenant's turn comes quickly.
			req := SubmitRequest{
				Apps:    []string{"Fmm"},
				Scale:   3 + float64(i%500)*0.001,
				Filters: []string{"EJ-8x2"},
			}
			resp, err := tenantDo("POST", base+"/v1/experiments", "flooder", req)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				floodMu.Lock()
				if resp.Header.Get("Retry-After") != "" {
					flooder429 = true
				}
				floodMu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	// The light tenant submits a handful of small experiments serially;
	// each must retire while the flooder saturates the daemon.
	light := SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}
	for i := 0; i < 3; i++ {
		id, err := stressSubmitAs(base, "/v1/experiments", "light", light, deadline)
		if err != nil {
			t.Fatalf("light submit %d: %v", i, err)
		}
		if id == "" {
			t.Fatalf("light submit %d never admitted (starved at admission)", i)
		}
		if err := stressPoll(base, "/v1/experiments/", id, deadline); err != nil {
			t.Fatalf("light job %d starved: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	floodMu.Lock()
	got429 := flooder429
	floodMu.Unlock()
	if !got429 {
		t.Error("flooder never saw a 429 with Retry-After despite exceeding its quota")
	}

	// Per-tenant series for both tenants are on the scrape and lint clean.
	body := scrapeMetrics(t, base)
	for _, want := range []string{
		`jettyd_tenant_jobs_unfinished{tenant="flooder"}`,
		`jettyd_tenant_jobs_unfinished{tenant="light"} 0`,
		`jettyd_admission_rejections_total{tenant="flooder",reason="tenant_jobs"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %s:\n%s", want, grepMetrics(body, "tenant"))
		}
	}
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Errorf("scrape fails lint: %v", problems)
	}

	// Everything the flooder left behind must still retire (no lost jobs).
	quiesce := time.Now().Add(60 * time.Second)
	for {
		var exps []ExperimentStatus
		clientJSON("GET", base+"/v1/experiments", nil, &exps)
		unfinished := 0
		for _, e := range exps {
			if e.State == "queued" || e.State == "running" {
				unfinished++
			}
		}
		if unfinished == 0 {
			break
		}
		if time.Now().After(quiesce) {
			t.Fatalf("%d flooder jobs never retired", unfinished)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitContextTenant: handlers called without the middleware (unit
// use, embedded servers) fall back to the anonymous tenant.
func TestSubmitContextTenant(t *testing.T) {
	if got := tenantFrom(t.Context()); got != DefaultTenant {
		t.Errorf("tenantFrom(bare ctx) = %q, want %q", got, DefaultTenant)
	}
}
