package service

import (
	"net/http"
	"strconv"
	"time"

	"jetty/internal/obs"
)

// Access-log middleware: every request gets a request ID (a client-sent
// X-Request-Id is honored so an upstream proxy can correlate, otherwise
// one is generated), echoed back as X-Request-Id, stamped on the
// request context (obs.RequestID) and propagated into any engine job
// the handler submits (engine.Task.Origin). On completion the
// middleware records the route/status latency histogram and emits one
// structured access-log record.

// maxRequestIDLen bounds an inbound X-Request-Id; longer values are
// replaced, not truncated (an attacker-controlled log field stays small).
const maxRequestIDLen = 64

// withTelemetry wraps the API mux with request-ID assignment, tenant
// resolution (X-Jetty-Tenant validated, defaulted and echoed), the HTTP
// latency histogram and the access log.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > maxRequestIDLen {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)

		rec := &responseRecorder{ResponseWriter: w}
		tenant, ok := resolveTenant(rec, r)
		if ok {
			w.Header().Set(TenantHeader, tenant)
			r = r.WithContext(withTenant(ctx, tenant))
			next.ServeHTTP(rec, r)
		} else {
			tenant = "invalid" // bounded label for the rejected request
		}

		// The mux sets r.Pattern on match; an unmatched request (404/405)
		// keeps the label space bounded under one value rather than
		// exploding per probed path.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := rec.statusCode()
		dur := time.Since(start)
		s.tel.httpLatency.With(route, strconv.Itoa(status), tenant).Observe(dur.Seconds())
		s.tel.log.Info("request",
			"id", id,
			"tenant", tenant,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", status,
			"bytes", rec.bytes,
			"duration_ms", durationMS(dur))
	})
}

// responseRecorder captures the status code and body size without
// changing the response. It forwards Flush so streaming handlers (the
// SSE live stream) keep working behind the middleware.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusCode returns the recorded status (200 when the handler wrote a
// body without an explicit WriteHeader, or wrote nothing at all).
func (r *responseRecorder) statusCode() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}
