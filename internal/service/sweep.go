package service

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"jetty/internal/obs"
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// Sweep endpoints: a sweep is an asynchronous job like an experiment,
// but its unit of admission is the whole cross-product — every cell
// shares the engine's worker pool, cache and dedup with ordinary
// experiments, and "trace:<digest>" workload entries replay traces
// previously uploaded via POST /v1/traces.

// sweepHandle is what the registry needs from a submitted sweep. Both
// execution paths satisfy it: *sweep.Sweep (cells on the local engine)
// and *cluster.Sweep (cells sharded across remote workers), so every
// /v1/sweeps endpoint serves either transparently.
type sweepHandle interface {
	Tenant() string
	Status(detailed bool) sweep.Status
	Unfinished() bool
	UnfinishedCells() int
	Cancel()
	Wait(ctx context.Context) (*sweep.Result, error)
}

// sweepJob is one submitted sweep in the registry.
type sweepJob struct {
	id string
	sw sweepHandle
}

// SweepStatus is a sweep's progress snapshot.
type SweepStatus struct {
	ID string `json:"id"`
	sweep.Status
}

// SweepResult is the finished payload: the flattened per-filter metrics
// plus rendered aggregate tables, and — for sampled sweeps — the
// per-cell timelines the spec's retention policy kept.
type SweepResult struct {
	ID        string               `json:"id"`
	Spec      sweep.Spec           `json:"spec"`
	Metrics   []sweep.Metric       `json:"metrics"`
	Timelines []sweep.CellTimeline `json:"timelines,omitempty"`
	Tables    map[string]string    `json:"tables"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	// Unknown fields are rejected, exactly as cmd/jettysweep rejects
	// them: a typo'd key would otherwise silently sweep the default —
	// e.g. a dropped "scale" runs the full paper budgets.
	var spec sweep.Spec
	if !decodeJSON(w, r, true, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Submit while holding the registry lock, exactly like experiments:
	// admission and registration are atomic, and the trace resolver reads
	// the upload store under the same lock.
	tenant := tenantFrom(r.Context())
	s.mu.Lock()
	resolver := func(digest string) (sim.TraceInput, error) {
		in, ok := s.traces[digest]
		if !ok {
			return sim.TraceInput{}, fmt.Errorf("not uploaded (POST it to /v1/traces first)")
		}
		return in, nil
	}
	// Expand first (cheap, deterministic) so the per-tenant cell quota
	// judges the sweep by its true cell count before anything schedules.
	cells, err := spec.Expand(resolver)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if code, reason, err := s.admitLocked(tenant, len(cells)); err != nil {
		s.mu.Unlock()
		s.tel.admissionRejected.With(tenant, reason).Add(1)
		s.writeRetryError(w, code, tenant, err)
		return
	}
	origin := obs.RequestID(r.Context())
	sw, err := s.startSweepLocked(spec, resolver, origin, tenant)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job := s.registerSweepLocked("", sw)
	s.mu.Unlock()

	if s.store != nil {
		s.persistJob(jobJournal{ID: job.id, Kind: jobKindSweep, Tenant: tenant, Origin: origin, Spec: &spec})
		go s.watchSweep(job.id, sw)
	}
	s.tel.sweepSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, SweepStatus{ID: job.id, Status: sw.Status(true)})
}

// startSweepLocked submits a validated spec on whichever execution path
// this daemon runs sweeps on. Coordinator role shards the sweep's cells
// across the cluster's workers; otherwise the local engine runs them.
// Either path yields a sweepHandle with identical observable behavior.
// Caller holds s.mu (the resolver reads the trace store under it).
func (s *Server) startSweepLocked(spec sweep.Spec, resolver sweep.TraceResolver, origin, tenant string) (sweepHandle, error) {
	if s.cluster != nil {
		return s.cluster.Submit(spec, resolver, origin, tenant)
	}
	return sweep.SubmitAs(s.runner, spec, resolver, origin, tenant)
}

// registerSweepLocked registers a started sweep under id — or under the
// next swp-NNNNNN when id is "" (a live submission; restore passes the
// journaled ID). Caller holds s.mu.
func (s *Server) registerSweepLocked(id string, sw sweepHandle) *sweepJob {
	if id == "" {
		s.seq++
		id = fmt.Sprintf("swp-%06d", s.seq)
	}
	job := &sweepJob{id: id, sw: sw}
	s.sweeps[job.id] = job
	s.sweepOrder = append(s.sweepOrder, job.id)
	s.evictSweepsLocked()
	return job
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*sweepJob, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		jobs = append(jobs, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]SweepStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, SweepStatus{ID: j.id, Status: j.sw.Status(false)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupSweep(w http.ResponseWriter, r *http.Request) *sweepJob {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.sweeps[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
	}
	return job
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookupSweep(w, r); job != nil {
		writeJSON(w, http.StatusOK, SweepStatus{ID: job.id, Status: job.sw.Status(true)})
	}
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookupSweep(w, r)
	if job == nil {
		return
	}
	st := job.sw.Status(false)
	if st.State != "done" {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  "sweep not finished",
			"status": SweepStatus{ID: job.id, Status: st},
		})
		return
	}
	res, err := job.sw.Wait(r.Context()) // immediate: every cell is done
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResult{
		ID:        job.id,
		Spec:      res.Spec,
		Metrics:   res.Metrics,
		Timelines: res.Timelines,
		Tables:    renderSweepTables(res),
	})
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.sweeps[id]
	if job != nil {
		delete(s.sweeps, id)
		for i, oid := range s.sweepOrder {
			if oid == id {
				s.sweepOrder = append(s.sweepOrder[:i], s.sweepOrder[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	job.sw.Cancel()
	if s.store != nil {
		s.store.DeleteJob(id) // an explicitly canceled sweep must not resurrect at boot
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceled"})
}

// evictSweepsLocked drops the oldest finished sweeps beyond maxRetained,
// releasing the results their cells pin (the sweep counterpart of
// evictLocked).
func (s *Server) evictSweepsLocked() {
	if len(s.sweepOrder) <= s.maxRetained {
		return
	}
	kept := s.sweepOrder[:0]
	excess := len(s.sweepOrder) - s.maxRetained
	for _, id := range s.sweepOrder {
		job := s.sweeps[id]
		if excess > 0 && !job.sw.Unfinished() {
			delete(s.sweeps, id)
			job.sw.Cancel() // no-op on finished cells; releases the handles
			s.tel.evicted.Add(1)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.sweepOrder = kept
}

// renderSweepTables renders the aggregate views a study usually wants:
// per-filter and per-(workload, filter) summaries as markdown, plus the
// raw per-cell metrics as CSV.
func renderSweepTables(res *sweep.Result) map[string]string {
	byFilter := sweep.GroupBy(res.Metrics, sweep.ByFilter)
	byWF := sweep.GroupBy(res.Metrics, sweep.ByWorkload, sweep.ByFilter)
	var csv strings.Builder
	_ = sweep.WriteMetricsCSV(&csv, res.Metrics)
	return map[string]string{
		"by_filter":          sweep.Markdown("By filter", byFilter, []sweep.Axis{sweep.ByFilter}),
		"by_workload_filter": sweep.Markdown("By workload and filter", byWF, []sweep.Axis{sweep.ByWorkload, sweep.ByFilter}),
		"cells_csv":          csv.String(),
	}
}
