package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"jetty/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: the slog handler writes from
// handler goroutines and engine workers while tests read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords parses the buffer as JSON lines, failing the test on any
// line that is not valid JSON (the satellite-4 contract: the access log
// is machine-parseable line by line).
func logRecords(t *testing.T, buf *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v: %q", err, line)
		}
		out = append(out, rec)
	}
	return out
}

// TestRequestIDPropagation is the end-to-end tracing contract: the ID
// the response header carries is the ID in the access-log record and
// the origin in the submitted job's status JSON, alongside the timing
// breakdown.
func TestRequestIDPropagation(t *testing.T) {
	var buf syncBuffer
	log, err := obs.NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, Options{Workers: 2, Logger: log})

	// Every response carries X-Request-Id — matched routes, 404s, errors.
	var submitID string
	for _, probe := range []struct {
		method, path, body string
		wantInbound        string
	}{
		{"GET", "/healthz", "", ""},
		{"GET", "/no/such/route", "", ""},
		{"GET", "/v1/experiments/exp-999999", "", ""},
		{"GET", "/metrics", "", "proxy-assigned-id-123"},
		{"POST", "/v1/experiments", `{"apps":["Lu"],"scale":0.02,"filters":["EJ-16x2"]}`, ""},
	} {
		req, err := http.NewRequest(probe.method, base+probe.path, strings.NewReader(probe.body))
		if err != nil {
			t.Fatal(err)
		}
		if probe.wantInbound != "" {
			req.Header.Set("X-Request-Id", probe.wantInbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Errorf("%s %s: no X-Request-Id on response", probe.method, probe.path)
		}
		if probe.wantInbound != "" && id != probe.wantInbound {
			t.Errorf("%s %s: inbound ID not honored: got %q", probe.method, probe.path, id)
		}
		if probe.method == "POST" {
			submitID = id
		}
	}

	// An oversized inbound ID is replaced, not echoed.
	req, _ := http.NewRequest("GET", base+"/healthz", nil)
	req.Header.Set("X-Request-Id", strings.Repeat("x", maxRequestIDLen+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); strings.Contains(id, "xxx") {
		t.Errorf("oversized inbound X-Request-Id echoed back: %q", id)
	}

	// The submitted job's status JSON carries the submit request's ID as
	// origin, plus the lifecycle timing breakdown once executed.
	var list []ExperimentStatus
	doJSON(t, "GET", base+"/v1/experiments", nil, &list)
	if len(list) != 1 {
		t.Fatalf("want 1 experiment, got %d", len(list))
	}
	st := waitDone(t, base, list[0].ID)
	if st.State != "done" {
		t.Fatalf("experiment state %s", st.State)
	}
	job := st.Jobs[0]
	if job.Origin != submitID {
		t.Errorf("job origin %q != submit request ID %q", job.Origin, submitID)
	}
	if job.Disposition != "executed" {
		t.Errorf("job disposition %q, want executed", job.Disposition)
	}
	if job.RunMS <= 0 {
		t.Errorf("job run_ms %v, want > 0", job.RunMS)
	}

	// The access log has one valid-JSON record per request, and the
	// submit request's record carries the same ID.
	recs := logRecords(t, &buf)
	var sawSubmit, sawUnmatched bool
	for _, rec := range recs {
		if rec["msg"] != "request" {
			continue
		}
		for _, k := range []string{"id", "method", "path", "route", "status", "bytes", "duration_ms"} {
			if _, ok := rec[k]; !ok {
				t.Errorf("access-log record missing %q: %v", k, rec)
			}
		}
		if rec["id"] == submitID {
			sawSubmit = true
			if rec["route"] != "POST /v1/experiments" {
				t.Errorf("submit record route %v", rec["route"])
			}
			if rec["status"] != float64(http.StatusAccepted) {
				t.Errorf("submit record status %v", rec["status"])
			}
		}
		if rec["path"] == "/no/such/route" {
			sawUnmatched = true
			if rec["route"] != "unmatched" {
				t.Errorf("404 record route %v, want unmatched", rec["route"])
			}
		}
	}
	if !sawSubmit {
		t.Errorf("no access-log record with the submit request ID %q", submitID)
	}
	if !sawUnmatched {
		t.Error("no access-log record for the unmatched route")
	}
}

// TestSlowJobLogging wires the threshold to ~zero so every executed job
// is "slow", and checks the warn record correlates back to the
// submitting request via origin.
func TestSlowJobLogging(t *testing.T) {
	var buf syncBuffer
	log, err := obs.NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, Options{Workers: 1, Logger: log, SlowJob: time.Nanosecond})

	req, _ := http.NewRequest("POST", base+"/v1/experiments",
		strings.NewReader(`{"apps":["Lu"],"scale":0.02,"filters":["EJ-16x2"]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st ExperimentStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	submitID := resp.Header.Get("X-Request-Id")
	waitDone(t, base, st.ID)

	// The retire hook fires just after the job turns terminal; poll
	// briefly rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found bool
		for _, rec := range logRecords(t, &buf) {
			if rec["msg"] == "slow job" {
				found = true
				if rec["origin"] != submitID {
					t.Fatalf("slow-job origin %v != submit ID %q", rec["origin"], submitID)
				}
				if rec["kind"] != "workload" {
					t.Errorf("slow-job kind %v, want workload", rec["kind"])
				}
				if ms, ok := rec["run_ms"].(float64); !ok || ms <= 0 {
					t.Errorf("slow-job run_ms %v", rec["run_ms"])
				}
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-job record; log:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsMonotoneAcrossScrapes is the satellite-3 check run against
// the live service: two scrapes around real load both lint clean, no
// counter or histogram series goes backwards, and the scrape exposes
// the tentpole instrument families.
func TestMetricsMonotoneAcrossScrapes(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2})

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var st ExperimentStatus
	doJSON(t, "POST", base+"/v1/experiments",
		SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st)
	waitDone(t, base, st.ID)

	before := scrape()
	if problems := obs.Lint(before); len(problems) != 0 {
		t.Fatalf("first scrape fails lint: %v", problems)
	}

	// More load between the scrapes: a second submission of the same
	// experiment (cache hit) and a distinct one (fresh execution).
	doJSON(t, "POST", base+"/v1/experiments",
		SubmitRequest{Apps: []string{"Lu"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st)
	waitDone(t, base, st.ID)
	doJSON(t, "POST", base+"/v1/experiments",
		SubmitRequest{Apps: []string{"Ocean"}, Scale: 0.02, Filters: []string{"EJ-16x2"}}, &st)
	waitDone(t, base, st.ID)

	after := scrape()
	if problems := obs.Lint(after); len(problems) != 0 {
		t.Fatalf("second scrape fails lint: %v", problems)
	}
	if problems := obs.CheckMonotone(before, after); len(problems) != 0 {
		t.Errorf("counters went backwards between scrapes: %v", problems)
	}

	exp, err := obs.ParseText(after)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		// Tentpole histogram families.
		"jettyd_http_request_duration_seconds",
		"jettyd_engine_queue_wait_seconds",
		"jettyd_engine_run_duration_seconds",
		"jettyd_sweep_cell_duration_seconds",
		"jettyd_live_fanout_lag_seconds",
		// New saturation gauges.
		"jettyd_engine_queue_depth",
		"jettyd_engine_inflight",
		"jettyd_admission_occupancy",
		"jettyd_live_feed_windows_buffered",
		"jettyd_jobs_unfinished",
		// Build info.
		"jettyd_build_info",
	} {
		if _, ok := exp.Meta[fam]; !ok {
			t.Errorf("scrape missing family %s", fam)
		}
	}

	// The engine histograms saw the executed jobs.
	var sawRun bool
	for _, s := range exp.Samples {
		if s.Name == "jettyd_engine_run_duration_seconds_count" && s.Labels["kind"] == "workload" && s.Value > 0 {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("run-duration histogram recorded no workload executions")
	}
}

// TestSweepCellTracing checks the per-cell timing breakdown and the
// sweep-cell histogram: a sweep's status JSON carries the submitting
// request's ID as each cell's origin, executed cells report run
// durations, and the scrape records them under kind="sweep".
func TestSweepCellTracing(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2})

	req, err := http.NewRequest("POST", base+"/v1/sweeps",
		strings.NewReader(`{"workloads":["Lu"],"filters":["EJ-16x2"],"scale":0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit code %d", resp.StatusCode)
	}
	submitID := resp.Header.Get("X-Request-Id")
	if submitID == "" {
		t.Fatal("sweep submit response missing X-Request-Id")
	}

	done := waitSweepDone(t, base, st.ID)
	if done.State != "done" {
		t.Fatalf("sweep state %s", done.State)
	}
	cell := done.Cell[0]
	if cell.Origin != submitID {
		t.Errorf("cell origin %q != submit X-Request-Id %q", cell.Origin, submitID)
	}
	if cell.Disposition != "executed" {
		t.Errorf("cell disposition %q, want executed", cell.Disposition)
	}
	if cell.RunMS <= 0 {
		t.Errorf("cell run_ms %v, want > 0", cell.RunMS)
	}

	// The retire hook fires just after the cell's job turns terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body := string(b)
		if strings.Contains(body, `jettyd_engine_run_duration_seconds_count{kind="sweep",tenant="anonymous"} 1`) &&
			!strings.Contains(body, "jettyd_sweep_cell_duration_seconds_count 0") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep-cell histograms not recorded; scrape:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzDraining checks the readiness flip: draining answers 503
// so load balancers stop routing, and the state is visible in the body
// and the jettyd_draining gauge.
func TestHealthzDraining(t *testing.T) {
	s, base := newTestServer(t, Options{Workers: 1})

	var health map[string]any
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz code %d before draining", code)
	}
	if health["state"] != "ready" {
		t.Errorf("state %v, want ready", health["state"])
	}

	s.SetDraining(true)
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz code %d while draining, want 503", code)
	}
	if health["state"] != "draining" || health["ok"] != false {
		t.Errorf("draining body %v", health)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "jettyd_draining 1") {
		t.Error("jettyd_draining gauge not 1 while draining")
	}

	s.SetDraining(false)
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz code %d after draining cleared", code)
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})
	var bi obs.BuildInfo
	if code := doJSON(t, "GET", base+"/buildinfo", nil, &bi); code != http.StatusOK {
		t.Fatalf("buildinfo code %d", code)
	}
	if bi.GoVersion == "" || bi.Version == "" {
		t.Errorf("incomplete build info: %+v", bi)
	}
}

// TestPprofGate checks the profiler mounts only behind Options.Pprof.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(off + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{Workers: 1, Pprof: true})
	resp, err = http.Get(on + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
}
