package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// Service-level observability: GET /metrics exposes the daemon's own
// counters in the Prometheus text exposition format (version 0.0.4),
// so a stock Prometheus scrape — or `curl localhost:8077/metrics` —
// sees admission, registry, trace-store, live-stream and engine state
// without touching the JSON API. These are operational counters about
// the service; the simulation-level timelines live under
// /v1/experiments/{id}/timeline.

// counters are the monotone event counts and live gauges the handlers
// bump. Atomics: they are touched from request handlers and engine
// workers (OnWindow hooks) concurrently.
type counters struct {
	expSubmitted    atomic.Uint64
	sweepSubmitted  atomic.Uint64
	traceUploads    atomic.Uint64
	evicted         atomic.Uint64
	liveSubscribers atomic.Int64
	windowsStreamed atomic.Uint64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	registered := len(s.exps)
	sweepsRegistered := len(s.sweeps)
	unfinished := s.unfinishedLocked()
	tracesStored := len(s.traces)
	var traceBytes int
	for _, in := range s.traces {
		traceBytes += len(in.Data)
	}
	s.mu.Unlock()

	eng := s.runner.Engine()
	st := eng.Stats()

	var b strings.Builder
	metric := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	metric("jettyd_experiments_submitted_total", "counter",
		"Experiments accepted via POST /v1/experiments.", s.ctr.expSubmitted.Load())
	metric("jettyd_sweeps_submitted_total", "counter",
		"Sweeps accepted via POST /v1/sweeps.", s.ctr.sweepSubmitted.Load())
	metric("jettyd_trace_uploads_total", "counter",
		"Trace files stored via POST /v1/traces.", s.ctr.traceUploads.Load())
	metric("jettyd_registry_evictions_total", "counter",
		"Finished experiments and sweeps evicted from the registry.", s.ctr.evicted.Load())
	metric("jettyd_experiments_registered", "gauge",
		"Experiments currently in the registry.", registered)
	metric("jettyd_sweeps_registered", "gauge",
		"Sweeps currently in the registry.", sweepsRegistered)
	metric("jettyd_jobs_unfinished", "gauge",
		"Experiments and sweeps still queued or running (admission cap accounting).", unfinished)
	metric("jettyd_traces_stored", "gauge",
		"Uploaded traces currently retained.", tracesStored)
	metric("jettyd_trace_bytes_stored", "gauge",
		"Total bytes of retained uploaded traces.", traceBytes)
	metric("jettyd_live_subscribers", "gauge",
		"SSE subscribers currently attached to /v1/experiments/{id}/live.", s.ctr.liveSubscribers.Load())
	metric("jettyd_live_windows_streamed_total", "counter",
		"Timeline windows written to SSE subscribers.", s.ctr.windowsStreamed.Load())
	metric("jettyd_engine_workers", "gauge",
		"Engine worker pool size.", eng.Workers())
	metric("jettyd_engine_submitted_total", "counter",
		"Tasks submitted to the engine.", st.Submitted)
	metric("jettyd_engine_executed_total", "counter",
		"Tasks actually run by a worker.", st.Executed)
	metric("jettyd_engine_cache_hits_total", "counter",
		"Submissions served from the finished-result cache.", st.CacheHits)
	metric("jettyd_engine_coalesced_total", "counter",
		"Submissions attached to an identical in-flight run.", st.Coalesced)
	metric("jettyd_engine_canceled_total", "counter",
		"Executions that ended canceled.", st.Canceled)
	metric("jettyd_engine_failed_total", "counter",
		"Executions that ended in error.", st.Failed)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
