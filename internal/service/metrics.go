package service

import (
	"net/http"
)

// Service-level observability: GET /metrics exposes the daemon's
// instruments in the Prometheus text exposition format (version 0.0.4),
// so a stock Prometheus scrape — or `curl localhost:8077/metrics` —
// sees admission, registry, trace-store, live-stream and engine state
// plus the request/job latency histograms without touching the JSON
// API. Event counters and histograms are recorded as events happen (see
// telemetry.go and middleware.go); point-in-time gauges are set here,
// from one consistent snapshot per scrape.

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.snapshotGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.tel.reg.WriteText(w)
}

// snapshotGauges captures all scrape-time state first — the registry
// under one s.mu acquisition, the engine counters in one Stats call —
// and only then writes the instruments, so a scrape can never observe
// torn registry-vs-engine state (the old handler interleaved unlocked
// engine reads with locked registry reads).
func (s *Server) snapshotGauges() {
	s.mu.Lock()
	registered := len(s.exps)
	sweepsRegistered := len(s.sweeps)
	unfinished := s.unfinishedLocked()
	tracesStored := len(s.traces)
	var traceBytes int
	for _, in := range s.traces {
		traceBytes += len(in.Data)
	}
	var buffered int
	for _, exp := range s.exps {
		if exp.feed != nil {
			buffered += exp.feed.buffered()
		}
	}
	loads := s.tenantLoadsLocked()
	s.mu.Unlock()

	eng := s.runner.Engine()
	st := eng.Stats()
	for tenant, depth := range st.TenantQueues {
		l := loads[tenant]
		l.queued = depth
		loads[tenant] = l
	}

	t := s.tel
	t.expsRegistered.Set(float64(registered))
	t.sweepsRegistered.Set(float64(sweepsRegistered))
	t.jobsUnfinished.Set(float64(unfinished))
	t.admissionOcc.Set(float64(unfinished) / float64(s.maxUnfinished))
	t.tracesStored.Set(float64(tracesStored))
	t.traceBytes.Set(float64(traceBytes))
	t.feedBuffered.Set(float64(buffered))
	t.engineWorkers.Set(float64(eng.Workers()))
	t.engineQueueDepth.Set(float64(st.QueueDepth))
	t.engineInflight.Set(float64(st.Inflight))
	if s.draining.Load() {
		t.draining.Set(1)
	} else {
		t.draining.Set(0)
	}
	t.setTenantGauges(loads)
	t.engSubmitted.Set(st.Submitted)
	t.engExecuted.Set(st.Executed)
	t.engCacheHits.Set(st.CacheHits)
	t.engCoalesced.Set(st.Coalesced)
	t.engCanceled.Set(st.Canceled)
	t.engFailed.Set(st.Failed)

	// Durable daemon: one store.Stats() snapshot feeds the store
	// instruments; the engine's store-hit counter rides the same engine
	// snapshot as the other mirrored counters above.
	if s.store != nil {
		sst := s.store.Stats()
		t.storeResults.Set(float64(sst.Results))
		t.storeTraces.Set(float64(sst.Traces))
		t.storePendingJobs.Set(float64(sst.PendingJobs))
		t.storeHits.Set(sst.Hits)
		t.storeWrites.Set(sst.Writes)
		t.storeErrors.Set(sst.Errors)
		t.engStoreHits.Set(st.StoreHits)
	}

	// Coordinator role: one cluster.Stats() snapshot (a single
	// coordinator-mutex hold) feeds every cluster instrument, so the
	// scrape can't tear against concurrent reschedules.
	if s.cluster != nil {
		cst := s.cluster.Stats()
		t.clusterWorkersConfigured.Set(float64(cst.WorkersConfigured))
		t.clusterWorkersAlive.Set(float64(cst.WorkersAlive))
		t.clusterActiveSweeps.Set(float64(cst.ActiveSweeps))
		t.clusterMemoEntries.Set(float64(cst.MemoEntries))
		t.clusterCellsDispatched.Set(cst.CellsDispatched)
		t.clusterCellsRescheduled.Set(cst.CellsRescheduled)
		t.clusterRedundant.Set(cst.RedundantCompletions)
		t.clusterMemoHits.Set(cst.MemoHits)
		t.clusterWorkerCacheHits.Set(cst.WorkerCacheHits)
		t.clusterCellsComputed.Set(cst.CellsComputed)
		for _, ws := range cst.Workers {
			alive := 0.0
			if ws.Alive {
				alive = 1
			}
			t.clusterWorkerAlive.With(ws.Name).Set(alive)
			t.clusterWorkerQueueDepth.With(ws.Name).Set(float64(ws.QueueDepth))
			t.clusterWorkerInflight.With(ws.Name).Set(float64(ws.Inflight))
			t.clusterWorkerEWMA.With(ws.Name).Set(ws.EWMACellSeconds)
		}
	}
}
