package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"jetty/internal/store"
	"jetty/internal/sweep"
)

// newDurableServer is newTestServer over a durable store rooted at dir.
// It does NOT register cleanup for the server — restart tests close and
// rebuild servers explicitly.
func newDurableServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func resumeSpec() sweep.Spec {
	return sweep.Spec{
		Name:       "resume",
		Workloads:  []string{"Lu", "ch"},
		Filters:    []string{"EJ-32x4", "EJ-16x2", "EJ-8x2"},
		FilterMode: sweep.ModeEach,
		Scale:      0.05,
	}
}

// TestRestartResumesSweep is the tentpole's kill-and-restart
// differential test at the service layer: a durable daemon is torn down
// mid-sweep, a fresh daemon over the same data directory re-admits the
// journaled sweep under its original ID, serves the already-computed
// cells from disk, and finishes with metrics DeepEqual to an
// uninterrupted control run.
func TestRestartResumesSweep(t *testing.T) {
	dir := t.TempDir()
	spec := resumeSpec()

	// Control: the same spec, uninterrupted, on an in-memory server.
	_, ctrlBase := newTestServer(t, Options{Workers: 2})
	var ctrlSt SweepStatus
	if code := doJSON(t, "POST", ctrlBase+"/v1/sweeps", spec, &ctrlSt); code != http.StatusAccepted {
		t.Fatalf("control submit code %d", code)
	}
	waitSweepDone(t, ctrlBase, ctrlSt.ID)
	var ctrlRes SweepResult
	doJSON(t, "GET", ctrlBase+"/v1/sweeps/"+ctrlSt.ID+"/result", nil, &ctrlRes)

	// Durable daemon #1: submit, wait until at least one cell finished
	// (so the restart provably skips recomputation), then tear it down
	// abruptly — in-flight cells die canceled, the journal entry stays.
	s1, ts1 := newDurableServer(t, dir, Options{Workers: 2})
	var st1 SweepStatus
	if code := doJSON(t, "POST", ts1.URL+"/v1/sweeps", spec, &st1); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st SweepStatus
		doJSON(t, "GET", ts1.URL+"/v1/sweeps/"+st1.ID, nil, &st)
		if st.Finished >= 1 {
			break
		}
		if st.State == "done" || time.Now().After(deadline) {
			break // tiny cells may all finish first; resume still holds
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	s1.Close()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := st.Stats().Results
	if persisted < 1 {
		t.Fatalf("no results persisted before the restart")
	}
	if len(st.Jobs()) != 1 {
		t.Fatalf("journal holds %d entries at restart, want 1", len(st.Jobs()))
	}

	// Durable daemon #2 over the same directory: restore re-admits the
	// sweep under its original ID before the listener is even up.
	s2 := New(Options{Workers: 2, Store: st})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	fin := waitSweepDone(t, ts2.URL, st1.ID)
	if fin.State != "done" {
		t.Fatalf("resumed sweep state %q, want done", fin.State)
	}
	var res2 SweepResult
	if code := doJSON(t, "GET", ts2.URL+"/v1/sweeps/"+st1.ID+"/result", nil, &res2); code != http.StatusOK {
		t.Fatalf("resumed result code %d", code)
	}
	if !reflect.DeepEqual(ctrlRes.Metrics, res2.Metrics) {
		t.Fatalf("resumed sweep metrics diverged from the uninterrupted control run")
	}

	// The persisted cells were served from disk, not recomputed: the new
	// engine reports store hits, and it executed at most the cells that
	// were NOT yet on disk at kill time.
	est := s2.runner.Engine().Stats()
	if est.StoreHits < uint64(persisted) {
		t.Errorf("StoreHits = %d, want >= %d (the persisted cells)", est.StoreHits, persisted)
	}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if max := uint64(len(cells) - persisted); est.Executed > max {
		t.Errorf("Executed = %d after restart, want <= %d (persisted cells must not recompute)", est.Executed, max)
	}

	// The finished sweep's journal entry is retired (poll: the watcher
	// notices completion within its poll interval).
	deadline = time.Now().Add(10 * time.Second)
	for len(st.Jobs()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("journal still holds %d entries after completion", len(st.Jobs()))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRestartRestoresTracesAndExperiments: uploaded traces and journaled
// experiments survive a restart — the trace is listed and replayable,
// the experiment resumes under its original ID.
func TestRestartRestoresTracesAndExperiments(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newDurableServer(t, dir, Options{Workers: 2})
	data := recordTestTrace(t, "WebServer", 4, 2000)
	info, code := uploadTrace(t, ts1.URL, data)
	if code != http.StatusCreated {
		t.Fatalf("upload code %d", code)
	}
	var exp ExperimentStatus
	if code := doJSON(t, "POST", ts1.URL+"/v1/experiments",
		SubmitRequest{Trace: info.Digest}, &exp); code != http.StatusAccepted {
		t.Fatalf("replay submit code %d", code)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newDurableServer(t, dir, Options{Workers: 2})
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	var got TraceInfo
	if code := doJSON(t, "GET", ts2.URL+"/v1/traces/"+info.Digest, nil, &got); code != http.StatusOK {
		t.Fatalf("restored trace lookup code %d", code)
	}
	if got.Digest != info.Digest || got.Records != info.Records {
		t.Fatalf("restored trace %+v, want %+v", got, info)
	}
	fin := waitDone(t, ts2.URL, exp.ID)
	if fin.State != "done" {
		t.Fatalf("restored experiment state %q, want done", fin.State)
	}
}

// TestRestoreDiscardsTornJournal: a truncated journal record is
// discarded individually at boot — the valid entry next to it restores,
// the damaged one is deleted from the store, and the daemon serves.
func TestRestoreDiscardsTornJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(jobJournal{
		ID:   "swp-000001",
		Kind: jobKindSweep,
		Spec: &sweep.Spec{Name: "ok", Workloads: []string{"Lu"}, Filters: []string{"EJ-16x2"}, Scale: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob("swp-000001", good); err != nil {
		t.Fatal(err)
	}
	// A torn write: valid JSON prefix, truncated mid-object.
	if err := st.PutJob("swp-000002", good[:len(good)/2]); err != nil {
		t.Fatal(err)
	}
	// And a journal whose ID disagrees with its filename.
	if err := st.PutJob("swp-000003", []byte(`{"id":"swp-000099","kind":"sweep"}`)); err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 1, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	fin := waitSweepDone(t, ts.URL, "swp-000001")
	if fin.State != "done" {
		t.Fatalf("restored sweep state %q, want done", fin.State)
	}
	for _, id := range []string{"swp-000002", "swp-000003"} {
		if code := doJSON(t, "GET", ts.URL+"/v1/sweeps/"+id, nil, nil); code != http.StatusNotFound {
			t.Errorf("torn journal %s restored (code %d), want 404", id, code)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(st.Jobs()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store still journals %d jobs; torn entries not discarded", len(st.Jobs()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New submissions must not collide with the restored ID space.
	var st2 SweepStatus
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps",
		sweep.Spec{Name: "next", Workloads: []string{"Lu"}, Filters: []string{"EJ-16x2"}, Scale: 0.02},
		&st2); code != http.StatusAccepted {
		t.Fatalf("post-restore submit code %d", code)
	}
	if st2.ID <= "swp-000003" {
		t.Errorf("post-restore sweep ID %s collides with restored ID space", st2.ID)
	}
}
