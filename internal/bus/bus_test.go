package bus

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Read: "BusRd", ReadX: "BusRdX", Upgrade: "BusUpgr", Writeback: "BusWB"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKindSnoops(t *testing.T) {
	if !Read.Snoops() || !ReadX.Snoops() || !Upgrade.Snoops() {
		t.Error("coherence transactions must snoop")
	}
	if !Writeback.Snoops() {
		t.Error("writebacks are address-snooped too")
	}
	if Kind(200).Snoops() {
		t.Error("unknown kinds do not snoop")
	}
}

func TestStatsRecord(t *testing.T) {
	s := NewStats(4)
	s.Record(Read, 0)
	s.Record(Read, 2)
	s.Record(ReadX, 1)
	s.Record(Upgrade, 3)
	s.Record(Writeback, 0) // writebacks snoop too: lands in the histogram

	if s.Count[Read] != 2 || s.Count[ReadX] != 1 || s.Count[Upgrade] != 1 || s.Count[Writeback] != 1 {
		t.Errorf("counts = %v", s.Count)
	}
	if s.SnoopTransactions() != 5 {
		t.Errorf("SnoopTransactions = %d, want 5", s.SnoopTransactions())
	}
	wantHist := []uint64{2, 1, 1, 1}
	for i, w := range wantHist {
		if s.RemoteHits[i] != w {
			t.Errorf("RemoteHits[%d] = %d, want %d", i, s.RemoteHits[i], w)
		}
	}
}

func TestStatsRemoteHitsClamped(t *testing.T) {
	s := NewStats(2)
	s.Record(Read, 9) // above range: clamp into last bucket
	if s.RemoteHits[1] != 1 {
		t.Errorf("clamping failed: %v", s.RemoteHits)
	}
}

func TestRemoteHitFractions(t *testing.T) {
	s := NewStats(4)
	if f := s.RemoteHitFractions(); f[0] != 0 {
		t.Error("empty stats should produce zero fractions")
	}
	for i := 0; i < 3; i++ {
		s.Record(Read, 0)
	}
	s.Record(Read, 1)
	f := s.RemoteHitFractions()
	if f[0] != 0.75 || f[1] != 0.25 {
		t.Errorf("fractions = %v", f)
	}
}

func TestStatsAdd(t *testing.T) {
	a, b := NewStats(4), NewStats(4)
	a.Record(Read, 0)
	b.Record(Read, 1)
	b.Record(Writeback, 0)
	a.Add(b)
	if a.Count[Read] != 2 || a.Count[Writeback] != 1 {
		t.Errorf("Add counts = %v", a.Count)
	}
	if a.RemoteHits[0] != 2 || a.RemoteHits[1] != 1 {
		t.Errorf("Add hist = %v", a.RemoteHits)
	}
}
