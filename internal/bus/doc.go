// Package bus defines the shared-bus transaction vocabulary of the
// simulated SMP and the bookkeeping of snoop outcomes.
//
// The paper's machine is a snoopy, write-invalidate, bus-based SMP:
// every BusRd (read miss), BusRdX (write miss) and BusUpgr (write to a
// shared copy) is observed ("snooped") by all other processors' cache
// hierarchies. Writebacks transfer no coherence state, but their
// addresses are still snooped — bus-side controllers must check them to
// keep request ordering — which is why the paper charges snoop energy
// for them too.
//
// Stats accumulates the per-kind transaction counts and the Table 3
// "Remote Cache Hits" histogram: for each snooping transaction, how many
// remote caches held a copy. The protocol layer (internal/smp) records
// one entry per bus event; the analysis layer (internal/sim) normalizes
// the histogram into the paper's fractions.
package bus
