package bus

import "fmt"

// Kind enumerates bus transaction kinds.
type Kind uint8

const (
	// Read is a BusRd: a read miss requesting a shared copy.
	Read Kind = iota
	// ReadX is a BusRdX: a write miss requesting an exclusive copy.
	ReadX
	// Upgrade is a BusUpgr: write permission for an already-held copy.
	Upgrade
	// Writeback is a dirty unit leaving a cache for memory. Writebacks are
	// address-snooped like every other transaction (caches must check them
	// to keep request ordering), they just transfer no state.
	Writeback
	numKinds
)

// NumKinds is the number of transaction kinds.
const NumKinds = int(numKinds)

// String names the transaction kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "BusRd"
	case ReadX:
		return "BusRdX"
	case Upgrade:
		return "BusUpgr"
	case Writeback:
		return "BusWB"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Snoops reports whether the transaction is observed by other caches.
// Every bus transaction is: writebacks carry no coherence action but all
// bus-side controllers still probe for the address.
func (k Kind) Snoops() bool { return k <= Writeback }

// Stats accumulates bus activity for one run.
type Stats struct {
	// Count is the number of transactions issued, by kind.
	Count [NumKinds]uint64
	// RemoteHits[h] counts snooping transactions that found copies in
	// exactly h remote caches (Table 3's "Remote Cache Hits" histogram;
	// the slice has NCPU entries, h ranging 0..NCPU-1).
	RemoteHits []uint64
}

// NewStats returns Stats sized for an nCPU machine.
func NewStats(nCPU int) *Stats {
	return &Stats{RemoteHits: make([]uint64, nCPU)}
}

// Record logs one transaction; remoteHits is meaningful only for snooping
// kinds.
func (s *Stats) Record(k Kind, remoteHits int) {
	s.Count[k]++
	if k.Snoops() {
		if remoteHits >= len(s.RemoteHits) {
			remoteHits = len(s.RemoteHits) - 1
		}
		s.RemoteHits[remoteHits]++
	}
}

// SnoopTransactions returns the total number of snooping transactions.
func (s *Stats) SnoopTransactions() uint64 {
	return s.Count[Read] + s.Count[ReadX] + s.Count[Upgrade] + s.Count[Writeback]
}

// RemoteHitFractions returns the histogram normalized to fractions of all
// snooping transactions (zeros when none occurred).
func (s *Stats) RemoteHitFractions() []float64 {
	total := s.SnoopTransactions()
	out := make([]float64, len(s.RemoteHits))
	if total == 0 {
		return out
	}
	for i, v := range s.RemoteHits {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// Add accumulates other into s (histograms must be same length).
func (s *Stats) Add(other *Stats) {
	for i := range s.Count {
		s.Count[i] += other.Count[i]
	}
	for i := range s.RemoteHits {
		s.RemoteHits[i] += other.RemoteHits[i]
	}
}
