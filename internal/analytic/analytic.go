// Package analytic implements the paper's closed-form models: the
// Appendix-A snoop-miss energy model behind Figure 2, and the Table 1
// Xeon power breakdown (datasheet constants with derived fractions).
package analytic

import (
	"fmt"

	"jetty/internal/energy"
)

// Params configures the Appendix-A model.
type Params struct {
	NCPU float64 // number of processors (paper: 4)
	TAG  float64 // energy per tag-array access (J)
	DATA float64 // energy per data-array access (J)
}

// PaperParams returns Appendix-A parameters for the paper's analysis
// (§2.1): a 1 MB 4-way L2 with the given block size, 36-bit physical
// addresses plus state bits, serial tag/data, CACTI-optimal banking, on a
// 4-way SMP. The Appendix model works at whole-block granularity.
func PaperParams(tech energy.Tech, blockBytes int) Params {
	org := energy.CacheOrg{
		Name:      fmt.Sprintf("L2-%dB", blockBytes),
		SizeBytes: 1 << 20, Assoc: 4, BlockBytes: blockBytes,
		UnitsPerBlock: 1, StateBits: 2, // paper: 2 bits of MOSI encoding
	}
	costs := tech.Costs(org)
	return Params{NCPU: 4, TAG: costs.TagRead, DATA: costs.DataReadUnit}
}

// Point holds the Appendix-A quantities for one (local hit rate L, remote
// hit rate R) operating point. All energies are per local access, in units
// of the model's TAG/DATA scalars.
type Point struct {
	TagSnoopMiss float64 // energy of snoop-induced tag accesses that miss
	Data         float64 // energy of all data-array accesses
	SnoopE       float64 // energy of all snoop-induced tag accesses
	TagAll       float64 // energy of all tag accesses (local + snoop)
	SnoopMissE   float64 // TagSnoopMiss / (Data + TagAll) — the Y axis of Fig. 2
}

// Eval evaluates the Appendix-A equations at local hit rate l and remote
// hit rate r (both in [0,1]):
//
//	TagSnoopMiss = TAG * (Ncpu-1) * (1-L) * (1-R)
//	Data         = DATA * (1 + (Ncpu-1) * (1-L) * R)
//	SnoopE       = TagSnoopMiss + TAG * (Ncpu-1) * (1-L) * R
//	TagAll       = SnoopE + TAG * (1 + (1-L))
//	SnoopMissE   = TagSnoopMiss / (Data + TagAll)
func (p Params) Eval(l, r float64) Point {
	var pt Point
	snoopsPerLocal := (p.NCPU - 1) * (1 - l)
	pt.TagSnoopMiss = p.TAG * snoopsPerLocal * (1 - r)
	pt.Data = p.DATA * (1 + snoopsPerLocal*r)
	pt.SnoopE = pt.TagSnoopMiss + p.TAG*snoopsPerLocal*r
	pt.TagAll = pt.SnoopE + p.TAG*(1+(1-l))
	if denom := pt.Data + pt.TagAll; denom > 0 {
		pt.SnoopMissE = pt.TagSnoopMiss / denom
	}
	return pt
}

// Curve returns Fig. 2's Y values (SnoopMissE) for a fixed remote hit rate
// r, sampled at the given local hit rates.
func (p Params) Curve(r float64, localHitRates []float64) []float64 {
	out := make([]float64, len(localHitRates))
	for i, l := range localHitRates {
		out[i] = p.Eval(l, r).SnoopMissE
	}
	return out
}

// Figure2 holds one panel of Figure 2: curves of snoop-miss energy fraction
// vs local hit rate, one curve per remote hit rate.
type Figure2 struct {
	BlockBytes     int
	LocalHitRates  []float64
	RemoteHitRates []float64
	// Series[i][j] = SnoopMissE at RemoteHitRates[i], LocalHitRates[j].
	Series [][]float64
}

// ComputeFigure2 reproduces one panel of Figure 2 (32- or 64-byte lines):
// local hit rate swept 0..1, remote hit rate 0%..90% in 10% steps.
func ComputeFigure2(tech energy.Tech, blockBytes int, samples int) Figure2 {
	if samples < 2 {
		samples = 2
	}
	p := PaperParams(tech, blockBytes)
	fig := Figure2{BlockBytes: blockBytes}
	for i := 0; i < samples; i++ {
		fig.LocalHitRates = append(fig.LocalHitRates, float64(i)/float64(samples-1))
	}
	for r := 0.0; r < 0.95; r += 0.1 {
		fig.RemoteHitRates = append(fig.RemoteHitRates, r)
		fig.Series = append(fig.Series, p.Curve(r, fig.LocalHitRates))
	}
	return fig
}
