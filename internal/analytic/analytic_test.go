package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"jetty/internal/energy"
)

func params32() Params { return PaperParams(energy.Tech180(), 32) }
func params64() Params { return PaperParams(energy.Tech180(), 64) }

func TestPerfectLocalHitRateMeansNoSnoopEnergy(t *testing.T) {
	// L = 1: no local misses, hence no snoops, hence zero snoop-miss energy.
	for _, p := range []Params{params32(), params64()} {
		pt := p.Eval(1.0, 0.0)
		if pt.SnoopMissE != 0 || pt.SnoopE != 0 || pt.TagSnoopMiss != 0 {
			t.Errorf("L=1 should produce zero snoop energy, got %+v", pt)
		}
		// Data and local tag energy remain.
		if pt.Data <= 0 || pt.TagAll <= 0 {
			t.Errorf("L=1 should still have local energy, got %+v", pt)
		}
	}
}

func TestSnoopMissEnergyDecreasesWithLocalHitRate(t *testing.T) {
	p := params32()
	prev := math.Inf(1)
	for l := 0.0; l <= 1.0001; l += 0.1 {
		y := p.Eval(l, 0.1).SnoopMissE
		if y > prev+1e-12 {
			t.Fatalf("SnoopMissE not decreasing at L=%.1f: %g > %g", l, y, prev)
		}
		prev = y
	}
}

func TestSnoopMissEnergyDecreasesWithRemoteHitRate(t *testing.T) {
	p := params32()
	prev := math.Inf(1)
	for r := 0.0; r <= 0.9001; r += 0.1 {
		y := p.Eval(0.5, r).SnoopMissE
		if y > prev+1e-12 {
			t.Fatalf("SnoopMissE not decreasing at R=%.1f: %g > %g", r, y, prev)
		}
		prev = y
	}
}

func TestPaperHeadlinePoint(t *testing.T) {
	// Paper §2.1: "assuming a 50% local hit rate and a 10% remote hit rate,
	// snoop-miss tag lookups account for 33% of the power dissipated by all
	// L2s (with 32-byte blocks)". Our process constants differ from theirs,
	// so accept the right regime rather than the exact point.
	got := params32().Eval(0.5, 0.1).SnoopMissE
	if got < 0.15 || got > 0.50 {
		t.Errorf("SnoopMissE(L=0.5,R=0.1,32B) = %.3f, want in the paper's ~0.33 regime [0.15,0.50]", got)
	}
}

func Test32ByteBlocksShowHigherFraction(t *testing.T) {
	// Paper: "Snoop-induced miss energy consumption is higher for the
	// 32-byte block cache compared to the 64-byte block cache" (the data
	// array is cheaper, so tags weigh more).
	p32, p64 := params32(), params64()
	for _, l := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, r := range []float64{0, 0.2, 0.5} {
			if y32, y64 := p32.Eval(l, r).SnoopMissE, p64.Eval(l, r).SnoopMissE; y32 <= y64 {
				t.Errorf("L=%.1f R=%.1f: 32B fraction %.3f should exceed 64B %.3f", l, r, y32, y64)
			}
		}
	}
}

func TestFractionBounded(t *testing.T) {
	p := params32()
	f := func(lRaw, rRaw uint16) bool {
		l := float64(lRaw%1001) / 1000
		r := float64(rRaw%1001) / 1000
		y := p.Eval(l, r).SnoopMissE
		return y >= 0 && y < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvalIdentities(t *testing.T) {
	// SnoopE - TagSnoopMiss must equal the snoop-hit tag energy term, and
	// TagAll - SnoopE the local tag term TAG*(1+(1-L)).
	p := params32()
	for _, l := range []float64{0, 0.25, 0.5, 0.9} {
		for _, r := range []float64{0, 0.3, 0.9} {
			pt := p.Eval(l, r)
			hitTerm := p.TAG * (p.NCPU - 1) * (1 - l) * r
			if math.Abs(pt.SnoopE-pt.TagSnoopMiss-hitTerm) > 1e-18 {
				t.Errorf("L=%v R=%v: SnoopE identity broken", l, r)
			}
			localTerm := p.TAG * (1 + (1 - l))
			if math.Abs(pt.TagAll-pt.SnoopE-localTerm) > 1e-18 {
				t.Errorf("L=%v R=%v: TagAll identity broken", l, r)
			}
		}
	}
}

func TestMoreCPUsMoreSnoopEnergy(t *testing.T) {
	p4 := params32()
	p8 := p4
	p8.NCPU = 8
	if p8.Eval(0.5, 0.1).SnoopMissE <= p4.Eval(0.5, 0.1).SnoopMissE {
		t.Error("8-way SMP should show a larger snoop-miss energy fraction")
	}
}

func TestComputeFigure2Shape(t *testing.T) {
	fig := ComputeFigure2(energy.Tech180(), 32, 11)
	if len(fig.RemoteHitRates) != 10 {
		t.Fatalf("want 10 remote-hit-rate curves, got %d", len(fig.RemoteHitRates))
	}
	if len(fig.LocalHitRates) != 11 {
		t.Fatalf("want 11 local samples, got %d", len(fig.LocalHitRates))
	}
	if fig.LocalHitRates[0] != 0 || fig.LocalHitRates[10] != 1 {
		t.Error("local hit rates should span [0,1]")
	}
	// Top curve is R=0%; curves ordered decreasing with R at fixed L=0.
	for i := 1; i < len(fig.Series); i++ {
		if fig.Series[i][0] > fig.Series[i-1][0] {
			t.Errorf("curve %d not below curve %d at L=0", i, i-1)
		}
	}
	// All curves end at 0 when L=1.
	for i, s := range fig.Series {
		if s[len(s)-1] != 0 {
			t.Errorf("curve %d nonzero at L=1", i)
		}
	}
}

func TestComputeFigure2MinSamples(t *testing.T) {
	fig := ComputeFigure2(energy.Tech180(), 64, 0)
	if len(fig.LocalHitRates) != 2 {
		t.Errorf("degenerate sample count should clamp to 2, got %d", len(fig.LocalHitRates))
	}
}

func TestTable1Fractions(t *testing.T) {
	rows := XeonTable()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	// Paper's derived columns: 14/16, 23/28, 34/43 (percent, rounded).
	want := []struct{ with, without float64 }{
		{14, 16}, {23, 28}, {34, 43},
	}
	for i, r := range rows {
		gotWith := math.Round(r.L2Fraction() * 100)
		gotWithout := math.Round(r.L2FractionNoPads() * 100)
		if math.Abs(gotWith-want[i].with) > 1 {
			t.Errorf("row %d: L2 fraction = %v%%, want ~%v%%", i, gotWith, want[i].with)
		}
		if math.Abs(gotWithout-want[i].without) > 1 {
			t.Errorf("row %d: L2 w/o pads = %v%%, want ~%v%%", i, gotWithout, want[i].without)
		}
	}
}

func TestTable1Monotone(t *testing.T) {
	rows := XeonTable()
	for i := 1; i < len(rows); i++ {
		if rows[i].L2Fraction() <= rows[i-1].L2Fraction() {
			t.Error("L2 fraction should grow with L2 size")
		}
	}
}
