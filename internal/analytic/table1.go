package analytic

// Table 1 of the paper: peak power breakdown of the 400 MHz Intel Pentium
// II Xeon family (source: Microprocessor Report [6] / Intel datasheet [9]),
// used to argue that L2 power is a sizeable fraction of the whole. The
// absolute watts are datasheet constants; the percentage columns are
// derived, which is what we recompute here.

// XeonRow is one row of Table 1.
type XeonRow struct {
	L2SizeKB  int
	CoreWatts float64
	L2Watts   float64
	PadWatts  float64
}

// XeonTable returns the datasheet rows of Table 1.
func XeonTable() []XeonRow {
	return []XeonRow{
		{L2SizeKB: 512, CoreWatts: 23.3, L2Watts: 4.5, PadWatts: 3},
		{L2SizeKB: 1024, CoreWatts: 23.3, L2Watts: 9, PadWatts: 6},
		{L2SizeKB: 2048, CoreWatts: 23.3, L2Watts: 18, PadWatts: 12},
	}
}

// L2Fraction returns L2 power as a fraction of overall power with pad
// power included in the total (the paper's "L2" column: 14%, 23%, 34%).
func (r XeonRow) L2Fraction() float64 {
	return r.L2Watts / (r.CoreWatts + r.L2Watts + r.PadWatts)
}

// L2FractionNoPads returns L2 power as a fraction of overall power with
// pad power excluded (the paper's "L2 w/o pads" column: 16%, 28%, 43%),
// an estimate for a hypothetical on-chip L2.
func (r XeonRow) L2FractionNoPads() float64 {
	return r.L2Watts / (r.CoreWatts + r.L2Watts)
}
