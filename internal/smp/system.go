package smp

import (
	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/cache"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/trace"
)

// CPUStats holds the processor-side counters of one CPU that are not part
// of the L2 energy accounting (which lives in energy.Counts).
type CPUStats struct {
	Loads, Stores uint64

	WBForwards  uint64 // loads served by a pending store
	WBCoalesced uint64 // stores merged into a pending entry
	WBDrains    uint64 // stores performed in the hierarchy

	L1Probes     uint64 // L1 tag probes from the core side
	L1Hits       uint64
	L1Misses     uint64
	L1Writebacks uint64 // dirty L1 victims written into L2

	L1SnoopProbes uint64 // L1 probes caused by snoops (inclusion actions)
}

// Add accumulates other into s.
func (s *CPUStats) Add(o CPUStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.WBForwards += o.WBForwards
	s.WBCoalesced += o.WBCoalesced
	s.WBDrains += o.WBDrains
	s.L1Probes += o.L1Probes
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L1Writebacks += o.L1Writebacks
	s.L1SnoopProbes += o.L1SnoopProbes
}

// node is one processor: core-side buffers, caches and filter bank.
// Caches and write buffer are embedded by value so one node is one
// contiguous region.
type node struct {
	id  int
	l1  cache.L1
	l2  cache.L2
	wb  writeBuffer
	cpu CPUStats
	l2c energy.Counts

	filters  []jetty.Filter
	bank     filterBank
	unsafeFl []uint64 // per-filter count of filtered-but-present snoops (must stay 0)
}

// filterBank groups the node's filters by concrete type so the per-snoop
// event loops make direct (inlinable) calls instead of interface
// dispatch — with ~20 filter configurations observing every snoop, the
// itab indirection was a measurable share of the snoop path. Filters are
// independent observers, so driving the groups in type order instead of
// bank order delivers the identical event sequence to each filter. The
// idx slices map each group member back to its bank position (for the
// per-filter safety counters).
type filterBank struct {
	ejs    []*jetty.Exclude
	ejIdx  []int
	ijs    []*jetty.Include
	ijIdx  []int
	hjs    []*jetty.Hybrid
	hjIdx  []int
	gen    []jetty.Filter // any other Filter implementation
	genIdx []int
}

// add slots a filter into its concrete-type group.
func (b *filterBank) add(idx int, f jetty.Filter) {
	switch t := f.(type) {
	case *jetty.Exclude:
		b.ejs = append(b.ejs, t)
		b.ejIdx = append(b.ejIdx, idx)
	case *jetty.Include:
		b.ijs = append(b.ijs, t)
		b.ijIdx = append(b.ijIdx, idx)
	case *jetty.Hybrid:
		b.hjs = append(b.hjs, t)
		b.hjIdx = append(b.hjIdx, idx)
	default:
		b.gen = append(b.gen, f)
		b.genIdx = append(b.genIdx, idx)
	}
}

// System is the simulated SMP machine.
type System struct {
	cfg  Config
	geom addr.Geometry

	// Precomputed address geometry: every granularity conversion on the
	// per-reference hot path is a shift against these instead of a
	// division through the Geometry methods.
	lineShift    uint // byte address >> lineShift == L1 line number
	unitShift    uint // L1 line number >> unitShift == coherence unit
	upbShift     uint // unit >> upbShift == L2 block
	linesPerUnit int  // 1 << unitShift

	// nodes is a value slice: the per-CPU state sits contiguously, so the
	// per-reference node lookup and the snoop broadcast walk memory
	// instead of chasing per-node pointers.
	nodes []node
	bus   *bus.Stats

	refs uint64 // total references processed

	// Interval sampling (SetSampler). nextSample is the refs value of the
	// next window boundary; with no sampler attached it is ^uint64(0), so
	// the per-access equality check never fires. Sampling only reads
	// counters: results are bit-identical with and without it.
	sampler    *metrics.Sampler
	nextSample uint64
}

// New builds a system. It panics on an invalid configuration (machine
// construction is programmer-controlled; use Config.Validate for input
// checking).
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	geom := cfg.L2.Geom
	unitShift := uint(addr.Log2(uint64(geom.UnitBytes() / cfg.L1.LineBytes)))
	s := &System{
		cfg:          cfg,
		geom:         geom,
		lineShift:    uint(addr.Log2(uint64(cfg.L1.LineBytes))),
		unitShift:    unitShift,
		upbShift:     uint(addr.Log2(uint64(geom.UnitsPerBlock))),
		linesPerUnit: 1 << unitShift,
		bus:          bus.NewStats(cfg.CPUs),
		nodes:        make([]node, cfg.CPUs),
		nextSample:   noSample,
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		n.id = i
		n.l1 = *cache.NewL1(cfg.L1)
		n.l2 = *cache.NewL2(cfg.L2)
		n.wb = *newWriteBuffer(cfg.WBEntries)
		for fi, fc := range cfg.Filters {
			f := fc.New(cfg.L2.Geom.UnitsPerBlock)
			n.filters = append(n.filters, f)
			n.bank.add(fi, f)
		}
		n.unsafeFl = make([]uint64, len(cfg.Filters))
	}
	return s
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Geometry returns the coherence geometry.
func (s *System) Geometry() addr.Geometry { return s.geom }

// Refs returns the number of references processed so far.
func (s *System) Refs() uint64 { return s.refs }

// Step processes one memory reference from the given CPU.
//
// The dispatch is a single-exit if/else chain (no early returns): the
// interval-sampling boundary check at the bottom must see every
// reference, whichever path resolved it. With no sampler attached the
// check is one always-false uint64 comparison.
func (s *System) Step(cpu int, ref trace.Ref) {
	n := &s.nodes[cpu]
	s.refs++
	line := (ref.Addr & addr.PhysMask) >> s.lineShift

	if ref.Op == trace.Write {
		n.cpu.Stores++
		if n.wb.contains(line) {
			n.cpu.WBCoalesced++
		} else {
			s.store(n, line)
		}
	} else {
		n.cpu.Loads++
		if n.wb.contains(line) {
			n.cpu.WBForwards++
		} else {
			// L1-hit loads resolve right here: the dominant path of every
			// run pays no extra call.
			n.cpu.L1Probes++
			if n.l1.Contains(line) {
				n.cpu.L1Hits++
			} else {
				n.cpu.L1Misses++
				s.loadMiss(n, line)
			}
		}
	}
	if s.refs == s.nextSample {
		s.sampleWindow()
	}
}

// store enqueues one buffered store, draining the displaced entry. This
// is the writeBuffer's only insert path: a full buffer — the steady
// state — replaces the oldest entry in place, an unbuffered machine
// (cap 0) drains immediately, and a drained line whose L1 copy is
// already dirty resolves in drainStore's fast path.
func (s *System) store(n *node, line uint64) {
	w := &n.wb
	if w.cap == 0 {
		s.drainStore(n, line)
		return
	}
	if w.n < w.cap {
		idx := w.head + w.n
		if idx >= w.cap {
			idx -= w.cap
		}
		w.buf[idx] = line
		w.add(line)
		w.n++
		return
	}
	drain := w.buf[w.head]
	w.remove(drain)
	w.buf[w.head] = line
	w.add(line)
	w.head++
	if w.head == w.cap {
		w.head = 0
	}
	s.drainStore(n, drain)
}

// Run interleaves the per-CPU streams of src round-robin, one reference
// per CPU per turn, until every stream is exhausted or maxRefs references
// have been processed (0 = unlimited). It returns the number processed.
func (s *System) Run(src trace.Source, maxRefs uint64) uint64 {
	start := s.refs
	ncpu := src.CPUs()
	if ncpu > s.cfg.CPUs {
		ncpu = s.cfg.CPUs
	}
	alive := make([]bool, ncpu)
	for i := range alive {
		alive[i] = true
	}
	remaining := ncpu
	for remaining > 0 {
		for cpuID := 0; cpuID < ncpu; cpuID++ {
			if !alive[cpuID] {
				continue
			}
			if maxRefs > 0 && s.refs-start >= maxRefs {
				return s.refs - start
			}
			ref, ok := src.Next(cpuID)
			if !ok {
				alive[cpuID] = false
				remaining--
				continue
			}
			s.Step(cpuID, ref)
		}
	}
	return s.refs - start
}

// StepBatch processes decoded trace records in recorded order. It is the
// allocation-free replay inner loop: the sim layer decodes a JTRC chunk
// into a reusable record buffer and hands whole batches here, with no
// per-record Source round trip. Stepping records in recorded order is
// exactly the decomposition Run's round-robin performs when replaying a
// round-robin recording, so results are bit-identical.
//
// The dispatch is a manual inline of Step: the per-record call was the
// single largest fixed cost of the replay loop. Any change here must
// mirror Step exactly — TestStepBatchMatchesStep and the replay/golden
// suites enforce the equivalence.
func (s *System) StepBatch(recs []trace.Rec) {
	for i := range recs {
		cpu, op, a := recs[i].CPU, recs[i].Op, recs[i].Addr
		n := &s.nodes[cpu]
		s.refs++
		line := (a & addr.PhysMask) >> s.lineShift

		if op == trace.Write {
			n.cpu.Stores++
			if n.wb.contains(line) {
				n.cpu.WBCoalesced++
			} else {
				s.store(n, line)
			}
		} else {
			n.cpu.Loads++
			if n.wb.contains(line) {
				n.cpu.WBForwards++
			} else {
				n.cpu.L1Probes++
				if n.l1.Contains(line) {
					n.cpu.L1Hits++
				} else {
					n.cpu.L1Misses++
					s.loadMiss(n, line)
				}
			}
		}
		if s.refs == s.nextSample {
			s.sampleWindow()
		}
	}
}

// DrainWriteBuffers performs all pending stores (end-of-run cleanup so
// that store counts reconcile).
func (s *System) DrainWriteBuffers() {
	for i := range s.nodes {
		n := &s.nodes[i]
		for _, line := range n.wb.drainAll() {
			s.drainStore(n, line)
		}
	}
}

// loadMiss performs a processor load that missed in the L1 (Step already
// counted the probe and miss).
func (s *System) loadMiss(n *node, line uint64) {
	unit := line >> s.unitShift
	block := unit >> s.upbShift

	// L2 local read probe. The frame handle from the single associative
	// search is reused for the touch, the fill and the inL1 update.
	n.l2c.LocalReads++
	f := n.l2.FindBlock(block)
	if f.Ok() && n.l2.StateAt(f, unit).Valid() {
		n.l2c.LocalReadHits++
		n.l2.TouchAt(f)
	} else {
		f = s.busRead(n, unit, block)
	}
	s.fillL1(n, line, f, unit)
}

// drainStore performs one pending store (an L1-line write) in the
// hierarchy, acquiring write permission as needed. The dominant case —
// the line is already dirty in L1, so ownership is held and nothing
// moves — is the inlinable fast path; everything else is drainStoreSlow.
func (s *System) drainStore(n *node, line uint64) {
	n.cpu.WBDrains++
	n.cpu.L1Probes++
	if n.l1.Dirty(line) {
		// Ownership was acquired when the line was first dirtied.
		n.cpu.L1Hits++
		return
	}
	s.drainStoreSlow(n, line)
}

// drainStoreSlow is the not-already-dirty remainder of drainStore; the
// probe and drain counters are already recorded (except L1Hits).
func (s *System) drainStoreSlow(n *node, line uint64) {
	unit := line >> s.unitShift
	block := unit >> s.upbShift

	if present, _, excl, f := n.l1.Lookup(line); present {
		n.cpu.L1Hits++
		if excl {
			// MESI-in-L1 silent upgrade: the L2 unit is still M/E (snoop
			// downgrades clear the hint), so the store proceeds without
			// an L2 access; the L2 learns at writeback time. f is the
			// line's cached L2 frame (valid by inclusion).
			st := n.l2.StateAt(f, unit)
			if !st.Writable() {
				panic("smp: stale L1 exclusivity hint")
			}
			if st == cache.Exclusive {
				n.l2.SetStateAt(f, unit, cache.Modified)
			}
			n.l1.MarkDirty(line)
			return
		}
		s.ensureWritable(n, f, unit, block)
		n.l1.MarkDirty(line)
		return
	}
	n.cpu.L1Misses++

	// Write-allocate: obtain the unit writable in L2, then fill L1 dirty.
	n.l2c.LocalWrites++
	f := n.l2.FindBlock(block)
	st := cache.Invalid
	if f.Ok() {
		st = n.l2.StateAt(f, unit)
	}
	switch {
	case st.Writable():
		n.l2c.LocalWriteHits++
		n.l2.TouchAt(f)
		if st == cache.Exclusive {
			n.l2.SetStateAt(f, unit, cache.Modified)
			n.l2c.LocalStateWrite++
		}
	case st.Valid(): // Shared or Owned: upgrade in place
		n.l2c.LocalWriteHits++
		n.l2.TouchAt(f)
		s.busUpgrade(n, f, unit, block)
	default:
		f = s.busReadX(n, unit, block)
	}
	s.fillL1(n, line, f, unit)
	n.l1.MarkDirty(line)
	// The L2 copy is now stale relative to L1 until the line drains back;
	// the unit must be (and is) Modified.
}

// ensureWritable upgrades the L2 unit to Modified for a store hitting a
// clean L1 line. The unit is valid in L2 (inclusion) in the given frame
// (the L1 line's cached one), but its coherence state must be read — and
// possibly upgraded — so this is a local L2 access (a write hit).
func (s *System) ensureWritable(n *node, f cache.Frame, unit, block uint64) {
	n.l2c.LocalWrites++
	n.l2c.LocalWriteHits++
	n.l2.TouchAt(f)
	switch st := n.l2.StateAt(f, unit); st {
	case cache.Modified:
		return
	case cache.Exclusive:
		n.l2.SetStateAt(f, unit, cache.Modified)
		n.l2c.LocalStateWrite++
	case cache.Shared, cache.Owned:
		// Write hit on a shared copy: bus upgrade (the "snoop on an L2
		// hit" case Table 2's caption calls out).
		s.busUpgrade(n, f, unit, block)
	default:
		panic("smp: dirty/clean L1 line over invalid L2 unit (inclusion violated)")
	}
}

// fillL1 installs a line in the L1, handling the displaced victim (dirty
// victims write back into the L2, which holds them Modified). The line's
// exclusivity hint mirrors whether the L2 unit is writable right now. f
// is the unit's resident L2 frame, cached in the line word.
func (s *System) fillL1(n *node, line uint64, f cache.Frame, unit uint64) {
	victim, had := n.l1.Fill(line, n.l2.StateAt(f, unit).Writable(), f)
	if had {
		s.l1VictimWriteback(n, victim)
	}
	n.l2.SetInL1At(f, unit, true)
}

// l1VictimWriteback handles a line displaced from the L1. v.Frame is the
// victim unit's L2 frame (valid by inclusion until this moment).
func (s *System) l1VictimWriteback(n *node, v cache.Victim) {
	vUnit := v.Line >> s.unitShift
	if v.Dirty {
		// Dirty L1 data merges into the L2 copy: a local L2 write access.
		n.cpu.L1Writebacks++
		n.l2c.LocalWrites++
		n.l2c.LocalWriteHits++ // inclusion guarantees the unit is present (Modified)
	}
	s.clearInL1IfGone(n, vUnit, v.Frame)
}

// clearInL1IfGone drops the L2's inL1 hint when no L1 line covering the
// unit remains (a unit may span multiple L1 lines in the NSB geometry).
// f is the unit's L2 frame.
func (s *System) clearInL1IfGone(n *node, unit uint64, f cache.Frame) {
	firstLine := unit << s.unitShift
	for i := 0; i < s.linesPerUnit; i++ {
		if n.l1.Contains(firstLine + uint64(i)) {
			return
		}
	}
	n.l2.SetInL1At(f, unit, false)
}

// unitOfLine converts an L1 line number to a coherence-unit number.
func (s *System) unitOfLine(line uint64) uint64 {
	return line >> s.unitShift
}
