package smp

import (
	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/cache"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/trace"
)

// CPUStats holds the processor-side counters of one CPU that are not part
// of the L2 energy accounting (which lives in energy.Counts).
type CPUStats struct {
	Loads, Stores uint64

	WBForwards  uint64 // loads served by a pending store
	WBCoalesced uint64 // stores merged into a pending entry
	WBDrains    uint64 // stores performed in the hierarchy

	L1Probes     uint64 // L1 tag probes from the core side
	L1Hits       uint64
	L1Misses     uint64
	L1Writebacks uint64 // dirty L1 victims written into L2

	L1SnoopProbes uint64 // L1 probes caused by snoops (inclusion actions)
}

// Add accumulates other into s.
func (s *CPUStats) Add(o CPUStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.WBForwards += o.WBForwards
	s.WBCoalesced += o.WBCoalesced
	s.WBDrains += o.WBDrains
	s.L1Probes += o.L1Probes
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L1Writebacks += o.L1Writebacks
	s.L1SnoopProbes += o.L1SnoopProbes
}

// node is one processor: core-side buffers, caches and filter bank.
type node struct {
	id  int
	l1  *cache.L1
	l2  *cache.L2
	wb  *writeBuffer
	cpu CPUStats
	l2c energy.Counts

	filters  []jetty.Filter
	unsafeFl []uint64 // per-filter count of filtered-but-present snoops (must stay 0)
}

// System is the simulated SMP machine.
type System struct {
	cfg  Config
	geom addr.Geometry

	nodes []*node
	bus   *bus.Stats

	refs uint64 // total references processed
}

// New builds a system. It panics on an invalid configuration (machine
// construction is programmer-controlled; use Config.Validate for input
// checking).
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{cfg: cfg, geom: cfg.L2.Geom, bus: bus.NewStats(cfg.CPUs)}
	for i := 0; i < cfg.CPUs; i++ {
		n := &node{
			id: i,
			l1: cache.NewL1(cfg.L1),
			l2: cache.NewL2(cfg.L2),
			wb: newWriteBuffer(cfg.WBEntries),
		}
		for _, fc := range cfg.Filters {
			n.filters = append(n.filters, fc.New(cfg.L2.Geom.UnitsPerBlock))
		}
		n.unsafeFl = make([]uint64, len(cfg.Filters))
		s.nodes = append(s.nodes, n)
	}
	return s
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Geometry returns the coherence geometry.
func (s *System) Geometry() addr.Geometry { return s.geom }

// Refs returns the number of references processed so far.
func (s *System) Refs() uint64 { return s.refs }

// Step processes one memory reference from the given CPU.
func (s *System) Step(cpu int, ref trace.Ref) {
	n := s.nodes[cpu]
	s.refs++
	line := n.l1.LineAddr(ref.Addr)

	if ref.Op == trace.Write {
		n.cpu.Stores++
		if n.wb.contains(line) {
			n.cpu.WBCoalesced++
			return
		}
		if drain, must := n.wb.push(line); must {
			s.drainStore(n, drain)
		}
		return
	}

	n.cpu.Loads++
	if n.wb.contains(line) {
		n.cpu.WBForwards++
		return
	}
	s.load(n, line)
}

// Run interleaves the per-CPU streams of src round-robin, one reference
// per CPU per turn, until every stream is exhausted or maxRefs references
// have been processed (0 = unlimited). It returns the number processed.
func (s *System) Run(src trace.Source, maxRefs uint64) uint64 {
	start := s.refs
	ncpu := src.CPUs()
	if ncpu > s.cfg.CPUs {
		ncpu = s.cfg.CPUs
	}
	alive := make([]bool, ncpu)
	for i := range alive {
		alive[i] = true
	}
	remaining := ncpu
	for remaining > 0 {
		for cpuID := 0; cpuID < ncpu; cpuID++ {
			if !alive[cpuID] {
				continue
			}
			if maxRefs > 0 && s.refs-start >= maxRefs {
				return s.refs - start
			}
			ref, ok := src.Next(cpuID)
			if !ok {
				alive[cpuID] = false
				remaining--
				continue
			}
			s.Step(cpuID, ref)
		}
	}
	return s.refs - start
}

// DrainWriteBuffers performs all pending stores (end-of-run cleanup so
// that store counts reconcile).
func (s *System) DrainWriteBuffers() {
	for _, n := range s.nodes {
		for _, line := range n.wb.drainAll() {
			s.drainStore(n, line)
		}
	}
}

// load performs a processor load of one L1 line.
func (s *System) load(n *node, line uint64) {
	n.cpu.L1Probes++
	if n.l1.Contains(line) {
		n.cpu.L1Hits++
		return
	}
	n.cpu.L1Misses++

	unit := s.unitOfLine(line)
	block := s.geom.BlockOfUnit(unit)

	// L2 local read probe.
	n.l2c.LocalReads++
	if n.l2.UnitState(unit).Valid() {
		n.l2c.LocalReadHits++
		n.l2.Touch(block)
	} else {
		s.busRead(n, unit, block)
	}
	s.fillL1(n, line, unit)
}

// drainStore performs one pending store (an L1-line write) in the
// hierarchy, acquiring write permission as needed.
func (s *System) drainStore(n *node, line uint64) {
	n.cpu.WBDrains++
	unit := s.unitOfLine(line)
	block := s.geom.BlockOfUnit(unit)

	n.cpu.L1Probes++
	if n.l1.Contains(line) {
		n.cpu.L1Hits++
		if n.l1.Dirty(line) {
			// Ownership was acquired when the line was first dirtied.
			return
		}
		if n.l1.Exclusive(line) {
			// MESI-in-L1 silent upgrade: the L2 unit is still M/E (snoop
			// downgrades clear the hint), so the store proceeds without
			// an L2 access; the L2 learns at writeback time.
			st := n.l2.UnitState(unit)
			if !st.Writable() {
				panic("smp: stale L1 exclusivity hint")
			}
			if st == cache.Exclusive {
				n.l2.SetUnitState(unit, cache.Modified)
			}
			n.l1.MarkDirty(line)
			return
		}
		s.ensureWritable(n, unit, block)
		n.l1.MarkDirty(line)
		return
	}
	n.cpu.L1Misses++

	// Write-allocate: obtain the unit writable in L2, then fill L1 dirty.
	n.l2c.LocalWrites++
	st := n.l2.UnitState(unit)
	switch {
	case st.Writable():
		n.l2c.LocalWriteHits++
		n.l2.Touch(block)
		if st == cache.Exclusive {
			n.l2.SetUnitState(unit, cache.Modified)
			n.l2c.LocalStateWrite++
		}
	case st.Valid(): // Shared or Owned: upgrade in place
		n.l2c.LocalWriteHits++
		n.l2.Touch(block)
		s.busUpgrade(n, unit, block)
	default:
		s.busReadX(n, unit, block)
	}
	s.fillL1(n, line, unit)
	n.l1.MarkDirty(line)
	// The L2 copy is now stale relative to L1 until the line drains back;
	// the unit must be (and is) Modified.
}

// ensureWritable upgrades the L2 unit to Modified for a store hitting a
// clean L1 line. The unit is valid in L2 (inclusion), but its coherence
// state must be read — and possibly upgraded — so this is a local L2
// access (a write hit).
func (s *System) ensureWritable(n *node, unit, block uint64) {
	n.l2c.LocalWrites++
	n.l2c.LocalWriteHits++
	n.l2.Touch(block)
	st := n.l2.UnitState(unit)
	switch st {
	case cache.Modified:
		return
	case cache.Exclusive:
		n.l2.SetUnitState(unit, cache.Modified)
		n.l2c.LocalStateWrite++
	case cache.Shared, cache.Owned:
		// Write hit on a shared copy: bus upgrade (the "snoop on an L2
		// hit" case Table 2's caption calls out).
		s.busUpgrade(n, unit, block)
	default:
		panic("smp: dirty/clean L1 line over invalid L2 unit (inclusion violated)")
	}
}

// fillL1 installs a line in the L1, handling the displaced victim (dirty
// victims write back into the L2, which holds them Modified). The line's
// exclusivity hint mirrors whether the L2 unit is writable right now.
func (s *System) fillL1(n *node, line, unit uint64) {
	victim, had := n.l1.Fill(line, n.l2.UnitState(unit).Writable())
	if had {
		s.l1VictimWriteback(n, victim)
	}
	n.l2.SetInL1(unit, true)
}

// l1VictimWriteback handles a line displaced from the L1.
func (s *System) l1VictimWriteback(n *node, v cache.Victim) {
	vUnit := s.unitOfLine(v.Line)
	if v.Dirty {
		// Dirty L1 data merges into the L2 copy: a local L2 write access.
		n.cpu.L1Writebacks++
		n.l2c.LocalWrites++
		n.l2c.LocalWriteHits++ // inclusion guarantees the unit is present (Modified)
	}
	s.clearInL1IfGone(n, vUnit)
}

// clearInL1IfGone drops the L2's inL1 hint when no L1 line covering the
// unit remains (a unit may span multiple L1 lines in the NSB geometry).
func (s *System) clearInL1IfGone(n *node, unit uint64) {
	linesPerUnit := s.geom.UnitBytes() / s.cfg.L1.LineBytes
	firstLine := unit * uint64(linesPerUnit)
	for i := 0; i < linesPerUnit; i++ {
		if n.l1.Contains(firstLine + uint64(i)) {
			return
		}
	}
	n.l2.SetInL1(unit, false)
}

// unitOfLine converts an L1 line number to a coherence-unit number.
func (s *System) unitOfLine(line uint64) uint64 {
	return line * uint64(s.cfg.L1.LineBytes) / uint64(s.geom.UnitBytes())
}

// linesOfUnit returns the first L1 line of a unit and the line count.
func (s *System) linesOfUnit(unit uint64) (uint64, int) {
	n := s.geom.UnitBytes() / s.cfg.L1.LineBytes
	return unit * uint64(n), n
}
