package smp

// writeBuffer is the per-CPU coalescing store buffer. Entries hold pending
// stores at L1-line granularity. Stores to a pending line coalesce; loads
// to a pending line are forwarded; a store arriving at a full buffer
// drains the oldest entry first. Snoops always probe the buffer (never
// filtered by JETTY) — its energy is charged per snoop in the accounting.
//
// Every simulated reference probes the buffer, so the layout is tuned
// for the probe: a fixed ring of line slots (no FIFO shifting) guarded
// by an exact 64-bit membership signature — one bit per sigBit(line), kept
// precise by per-bit occupancy counters — that rejects most probes
// without scanning. All storage is allocated once at construction; the
// steady-state paths are allocation-free.
type writeBuffer struct {
	buf      []uint64 // cap slots; empty slots hold wbEmpty
	head     int      // index of the oldest entry
	n        int      // occupied slots
	cap      int
	sig      uint64     // bit sigBit(line) set iff some buffered line maps to it
	cnt      [64]uint16 // occupancy count per signature bit
	drainBuf []uint64   // reusable drainAll result storage
}

// wbEmpty marks an unoccupied slot; no L1 line number (< 2^36) collides.
const wbEmpty = ^uint64(0)

func newWriteBuffer(entries int) *writeBuffer {
	w := &writeBuffer{buf: make([]uint64, entries), cap: entries}
	for i := range w.buf {
		w.buf[i] = wbEmpty
	}
	return w
}

// sigBit hashes a line to its membership-signature bit. Folding bit 7+
// into the low bits keeps strided access patterns from aliasing onto a
// few signature bits.
func sigBit(line uint64) uint { return uint(line^line>>7) & 63 }

// contains reports whether a store to the line is pending: a one-word
// signature test rejects most probes, the rest scan the (small, fixed)
// slot array.
func (w *writeBuffer) contains(line uint64) bool {
	if w.sig&(1<<sigBit(line)) == 0 {
		return false
	}
	for _, l := range w.buf {
		if l == line {
			return true
		}
	}
	return false
}

// add records line in the membership signature.
func (w *writeBuffer) add(line uint64) {
	b := sigBit(line)
	if w.cnt[b] == 0 {
		w.sig |= 1 << b
	}
	w.cnt[b]++
}

// remove drops line from the membership signature.
func (w *writeBuffer) remove(line uint64) {
	b := sigBit(line)
	w.cnt[b]--
	if w.cnt[b] == 0 {
		w.sig &^= 1 << b
	}
}

// drainAll removes and returns all pending lines, oldest first. The
// returned slice is reused by the next drainAll call.
func (w *writeBuffer) drainAll() []uint64 {
	out := w.drainBuf[:0]
	for i := 0; i < w.n; i++ {
		idx := w.head + i
		if idx >= w.cap {
			idx -= w.cap
		}
		out = append(out, w.buf[idx])
		w.buf[idx] = wbEmpty
	}
	w.drainBuf = out
	w.head, w.n, w.sig = 0, 0, 0
	w.cnt = [64]uint16{}
	return out
}
