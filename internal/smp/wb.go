package smp

// writeBuffer is the per-CPU coalescing store buffer. Entries hold pending
// stores at L1-line granularity. Stores to a pending line coalesce; loads
// to a pending line are forwarded; a store arriving at a full buffer
// drains the oldest entry first. Snoops always probe the buffer (never
// filtered by JETTY) — its energy is charged per snoop in the accounting.
type writeBuffer struct {
	lines []uint64 // FIFO order, oldest first
	cap   int
}

func newWriteBuffer(entries int) *writeBuffer {
	return &writeBuffer{cap: entries}
}

// contains reports whether a store to the line is pending.
func (w *writeBuffer) contains(line uint64) bool {
	for _, l := range w.lines {
		if l == line {
			return true
		}
	}
	return false
}

// push enqueues a store. If the buffer is full, the oldest entry is
// returned for draining. The caller must have checked contains first
// (coalescing happens there).
func (w *writeBuffer) push(line uint64) (drain uint64, mustDrain bool) {
	if w.cap == 0 {
		// No buffering: drain immediately.
		return line, true
	}
	if len(w.lines) >= w.cap {
		drain, mustDrain = w.lines[0], true
		w.lines = append(w.lines[:0], w.lines[1:]...)
	}
	w.lines = append(w.lines, line)
	return drain, mustDrain
}

// drainAll removes and returns all pending lines, oldest first.
func (w *writeBuffer) drainAll() []uint64 {
	out := w.lines
	w.lines = nil
	return out
}

// len returns the number of pending stores.
func (w *writeBuffer) len() int { return len(w.lines) }
