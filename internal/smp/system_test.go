package smp

import (
	"math/rand"
	"testing"

	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/cache"
	"jetty/internal/jetty"
	"jetty/internal/trace"
)

// tiny returns a small 4-way machine with no write buffering, so every
// store acts immediately — most protocol tests want this determinism.
func tiny() *System {
	cfg := PaperConfig(4)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 10, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 13, Assoc: 2, Geom: addr.Subblocked}
	cfg.WBEntries = 0
	return New(cfg)
}

func read(s *System, cpu int, a uint64)  { s.Step(cpu, trace.Ref{Op: trace.Read, Addr: a}) }
func write(s *System, cpu int, a uint64) { s.Step(cpu, trace.Ref{Op: trace.Write, Addr: a}) }

func unitState(s *System, cpu int, a uint64) cache.State {
	return s.nodes[cpu].l2.UnitState(s.geom.Unit(a))
}

func TestPaperConfigValid(t *testing.T) {
	for _, cpus := range []int{1, 4, 8} {
		if err := PaperConfig(cpus).Validate(); err != nil {
			t.Errorf("PaperConfig(%d): %v", cpus, err)
		}
		if err := PaperConfigNSB(cpus).Validate(); err != nil {
			t.Errorf("PaperConfigNSB(%d): %v", cpus, err)
		}
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config should be invalid")
	}
	bad := PaperConfig(4)
	bad.L1.LineBytes = 128 // exceeds coherence unit
	if err := bad.Validate(); err == nil {
		t.Error("L1 lines above unit size must be rejected")
	}
}

func TestColdReadFillsExclusive(t *testing.T) {
	s := tiny()
	read(s, 0, 0x1000)
	if got := unitState(s, 0, 0x1000); got != cache.Exclusive {
		t.Errorf("cold read fills %v, want E", got)
	}
	if s.bus.Count[bus.Read] != 1 {
		t.Errorf("BusRd count = %d", s.bus.Count[bus.Read])
	}
	// All three remote caches snooped and missed.
	c := s.EnergyCounts()
	if c.Snoops != 3 || c.SnoopMisses != 3 {
		t.Errorf("snoops=%d misses=%d, want 3/3", c.Snoops, c.SnoopMisses)
	}
	if s.bus.RemoteHits[0] != 1 {
		t.Errorf("remote-hit histogram %v, want one 0-hit entry", s.bus.RemoteHits)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestProducerConsumerSharing(t *testing.T) {
	s := tiny()
	a := uint64(0x2000)
	write(s, 1, a) // producer: BusRdX, fills M
	if got := unitState(s, 1, a); got != cache.Modified {
		t.Fatalf("producer state %v, want M", got)
	}
	read(s, 2, a) // consumer: BusRd; producer supplies and downgrades to O
	if got := unitState(s, 1, a); got != cache.Owned {
		t.Errorf("producer after consumer read: %v, want O", got)
	}
	if got := unitState(s, 2, a); got != cache.Shared {
		t.Errorf("consumer state %v, want S", got)
	}
	c := s.EnergyCounts()
	if c.SnoopSupplies != 1 {
		t.Errorf("SnoopSupplies = %d, want 1 (producer supplied)", c.SnoopSupplies)
	}
	// The BusRd found one remote copy.
	if s.bus.RemoteHits[1] != 1 {
		t.Errorf("remote-hit histogram %v", s.bus.RemoteHits)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := tiny()
	a := uint64(0x3000)
	read(s, 0, a) // E at cpu0
	read(s, 1, a) // S at 0 and 1
	read(s, 2, a) // S everywhere
	write(s, 3, a)
	if got := unitState(s, 3, a); got != cache.Modified {
		t.Fatalf("writer state %v, want M", got)
	}
	for cpu := 0; cpu < 3; cpu++ {
		if got := unitState(s, cpu, a); got != cache.Invalid {
			t.Errorf("cpu%d not invalidated: %v", cpu, got)
		}
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeOnSharedWriteHit(t *testing.T) {
	s := tiny()
	a := uint64(0x4000)
	read(s, 0, a)
	read(s, 1, a) // both S
	write(s, 0, a)
	if got := unitState(s, 0, a); got != cache.Modified {
		t.Fatalf("writer state %v, want M", got)
	}
	if got := unitState(s, 1, a); got != cache.Invalid {
		t.Errorf("sharer not invalidated: %v", got)
	}
	// The write hit in L2 (S) and used an upgrade, not a BusRdX.
	if s.bus.Count[bus.Upgrade] != 1 {
		t.Errorf("BusUpgr count = %d, want 1", s.bus.Count[bus.Upgrade])
	}
	c := s.EnergyCounts()
	if c.LocalWriteHits < 1 {
		t.Error("upgrade write should count as a local L2 write hit")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestSilentExclusiveToModified(t *testing.T) {
	s := tiny()
	a := uint64(0x5000)
	read(s, 0, a) // E
	pre := s.bus.SnoopTransactions()
	write(s, 0, a) // E->M must be silent
	if got := s.bus.SnoopTransactions(); got != pre {
		t.Errorf("E->M caused %d bus transactions", got-pre)
	}
	if got := unitState(s, 0, a); got != cache.Modified {
		t.Errorf("state %v, want M", got)
	}
}

func TestMigratorySharing(t *testing.T) {
	s := tiny()
	a := uint64(0x6000)
	for turn := 0; turn < 8; turn++ {
		cpu := turn % 4
		read(s, cpu, a)
		write(s, cpu, a)
		if got := unitState(s, cpu, a); got != cache.Modified {
			t.Fatalf("turn %d: holder state %v, want M", turn, got)
		}
		if err := s.CheckCoherence(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubblockStatesIndependent(t *testing.T) {
	s := tiny()
	base := uint64(0x7000) // 64-byte block: subblocks at +0 and +32
	write(s, 0, base)
	read(s, 1, base+32)
	if got := unitState(s, 0, base); got != cache.Modified {
		t.Errorf("subblock 0 state %v, want M", got)
	}
	if got := unitState(s, 1, base+32); got != cache.Exclusive {
		t.Errorf("subblock 1 at cpu1 %v, want E (no copies of that subblock)", got)
	}
	// cpu1's read of the sibling subblock must NOT hit cpu0's M subblock:
	// both transactions found zero remote copies. This is exactly the
	// subblocking-induced snoop-miss locality §4.3.1 describes.
	if s.bus.RemoteHits[0] != 2 {
		t.Errorf("remote-hit histogram %v, want [2 0 0 0]", s.bus.RemoteHits)
	}
}

func TestL1AbsorbsRepeatedAccesses(t *testing.T) {
	s := tiny()
	a := uint64(0x8000)
	read(s, 0, a)
	before := s.EnergyCounts().LocalProbes()
	for i := 0; i < 10; i++ {
		read(s, 0, a)
	}
	if got := s.EnergyCounts().LocalProbes(); got != before {
		t.Errorf("L1 hits caused %d extra L2 probes", got-before)
	}
	c := s.CPUStatsFor(0)
	if c.L1Hits != 10 {
		t.Errorf("L1Hits = %d, want 10", c.L1Hits)
	}
}

func TestL1WritebackOnConflict(t *testing.T) {
	s := tiny() // L1: 1KB direct-mapped, 32 lines
	a := uint64(0x100)
	b := a + 1<<10 // same L1 frame, different L2 set likely
	write(s, 0, a) // dirty line
	write(s, 0, b) // displaces it -> L1 writeback into L2
	c := s.CPUStatsFor(0)
	if c.L1Writebacks != 1 {
		t.Errorf("L1Writebacks = %d, want 1", c.L1Writebacks)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestL2EvictionInvalidatesL1(t *testing.T) {
	// Tiny L2 (2-way) with distinct-set L1 mapping: force an L2 set
	// conflict and verify the L1 loses the covered line too.
	cfg := PaperConfig(1)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 12, LineBytes: 32}                   // 128 lines
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 12, Assoc: 2, Geom: addr.Subblocked} // 32 sets
	cfg.WBEntries = 0
	s := New(cfg)
	sets := uint64(cfg.L2.Sets())
	blockBytes := uint64(cfg.L2.Geom.BlockBytes)
	a0 := uint64(0)
	a1 := a0 + sets*blockBytes
	a2 := a1 + sets*blockBytes // third block in the same L2 set
	read(s, 0, a0)
	read(s, 0, a1)
	read(s, 0, a2) // evicts a0's block
	if s.nodes[0].l2.UnitState(s.geom.Unit(a0)).Valid() {
		t.Fatal("a0 should have been evicted from L2")
	}
	if s.nodes[0].l1.Contains(s.nodes[0].l1.LineAddr(a0)) {
		t.Fatal("inclusion violated: a0 line survived in L1")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 12, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 12, Assoc: 2, Geom: addr.Subblocked}
	cfg.WBEntries = 0
	s := New(cfg)
	sets := uint64(cfg.L2.Sets())
	blockBytes := uint64(cfg.L2.Geom.BlockBytes)
	a0 := uint64(0)
	write(s, 0, a0) // M
	read(s, 0, a0+sets*blockBytes)
	read(s, 0, a0+2*sets*blockBytes) // evict dirty a0
	if s.bus.Count[bus.Writeback] != 1 {
		t.Errorf("BusWB count = %d, want 1", s.bus.Count[bus.Writeback])
	}
	if s.EnergyCounts().DirtyWBUnits != 1 {
		t.Errorf("DirtyWBUnits = %d, want 1", s.EnergyCounts().DirtyWBUnits)
	}
}

func TestWriteBufferCoalescingAndForwarding(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.WBEntries = 8
	s := New(cfg)
	a := uint64(0x900)
	write(s, 0, a)
	write(s, 0, a) // coalesces
	read(s, 0, a)  // forwarded
	c := s.CPUStatsFor(0)
	if c.WBCoalesced != 1 {
		t.Errorf("WBCoalesced = %d, want 1", c.WBCoalesced)
	}
	if c.WBForwards != 1 {
		t.Errorf("WBForwards = %d, want 1", c.WBForwards)
	}
	if c.WBDrains != 0 {
		t.Errorf("WBDrains = %d, want 0 (nothing forced a drain)", c.WBDrains)
	}
	s.DrainWriteBuffers()
	if got := s.CPUStatsFor(0).WBDrains; got != 1 {
		t.Errorf("after DrainWriteBuffers: drains = %d, want 1", got)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBufferOverflowDrainsOldest(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.WBEntries = 2
	s := New(cfg)
	write(s, 0, 0)  // buffered
	write(s, 0, 32) // buffered
	write(s, 0, 64) // overflow: drains the store to 0
	c := s.CPUStatsFor(0)
	if c.WBDrains != 1 {
		t.Fatalf("WBDrains = %d, want 1", c.WBDrains)
	}
	if got := unitState(s, 0, 0); got != cache.Modified {
		t.Errorf("drained store state %v, want M", got)
	}
	if got := unitState(s, 0, 64); got != cache.Invalid {
		t.Errorf("buffered store already visible: %v", got)
	}
}

func TestRunInterleavesAndStops(t *testing.T) {
	s := tiny()
	src := trace.NewSliceSource(
		[]trace.Ref{{Op: trace.Read, Addr: 0}, {Op: trace.Read, Addr: 32}},
		[]trace.Ref{{Op: trace.Read, Addr: 4096}},
		nil,
		nil,
	)
	n := s.Run(src, 0)
	if n != 3 {
		t.Errorf("Run processed %d refs, want 3", n)
	}
	if s.Refs() != 3 {
		t.Errorf("Refs = %d", s.Refs())
	}
}

func TestRunHonorsMaxRefs(t *testing.T) {
	s := tiny()
	i := uint64(0)
	src := &trace.FuncSource{NumCPUs: 4, Fn: func(cpu int) (trace.Ref, bool) {
		i++
		return trace.Ref{Op: trace.Read, Addr: i * 32}, true
	}}
	if n := s.Run(src, 100); n != 100 {
		t.Errorf("Run processed %d, want 100", n)
	}
}

func TestStatsConsistency(t *testing.T) {
	s := tiny()
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		cpu := r.Intn(4)
		a := uint64(r.Intn(1 << 14))
		if r.Intn(3) == 0 {
			write(s, cpu, a)
		} else {
			read(s, cpu, a)
		}
	}
	s.DrainWriteBuffers()
	c := s.EnergyCounts()
	// Every snooping transaction probes exactly NCPU-1 remote caches.
	if want := s.bus.SnoopTransactions() * 3; c.Snoops != want {
		t.Errorf("Snoops = %d, want %d (3 per transaction)", c.Snoops, want)
	}
	if c.SnoopHits+c.SnoopMisses != c.Snoops {
		t.Error("snoop hit/miss split does not sum")
	}
	if c.LocalReadHits > c.LocalReads || c.LocalWriteHits > c.LocalWrites {
		t.Error("hits exceed probes")
	}
	// Remote-hit histogram covers every snooping transaction.
	var histSum uint64
	for _, v := range s.bus.RemoteHits {
		histSum += v
	}
	if histSum != s.bus.SnoopTransactions() {
		t.Errorf("histogram sum %d != snoop transactions %d", histSum, s.bus.SnoopTransactions())
	}
	// Sum over remote-hit histogram weights equals total snoop hits.
	var weighted uint64
	for h, v := range s.bus.RemoteHits {
		weighted += uint64(h) * v
	}
	if weighted != c.SnoopHits {
		t.Errorf("weighted histogram %d != snoop hits %d", weighted, c.SnoopHits)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedCoherenceInvariants hammers the protocol with random
// traffic, checking full-machine invariants periodically.
func TestRandomizedCoherenceInvariants(t *testing.T) {
	for _, geom := range []addr.Geometry{addr.Subblocked, addr.NonSubblocked} {
		cfg := PaperConfig(4)
		cfg.L1 = cache.L1Config{SizeBytes: 1 << 10, LineBytes: 32}
		cfg.L2 = cache.L2Config{SizeBytes: 1 << 13, Assoc: 2, Geom: geom}
		cfg.WBEntries = 4
		s := New(cfg)
		r := rand.New(rand.NewSource(31))
		for i := 0; i < 60000; i++ {
			cpu := r.Intn(4)
			a := uint64(r.Intn(1 << 13)) // heavy conflict traffic
			if r.Intn(2) == 0 {
				write(s, cpu, a)
			} else {
				read(s, cpu, a)
			}
			if i%5000 == 0 {
				if err := s.CheckCoherence(); err != nil {
					t.Fatalf("geom %v, step %d: %v", geom, i, err)
				}
			}
		}
		s.DrainWriteBuffers()
		if err := s.CheckCoherence(); err != nil {
			t.Fatalf("geom %v, final: %v", geom, err)
		}
	}
}

// TestFilterBankSafetyEndToEnd runs every paper filter configuration
// simultaneously under random traffic and asserts none ever filtered a
// snoop to a cached unit.
func TestFilterBankSafetyEndToEnd(t *testing.T) {
	names := append([]string{}, jetty.Fig4aConfigs...)
	names = append(names, jetty.Fig4bConfigs...)
	names = append(names, jetty.Fig5aConfigs...)
	names = append(names, jetty.Fig5bConfigs...)
	filters, err := jetty.ParseAll(names)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig(4)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 10, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 13, Assoc: 2, Geom: addr.Subblocked}
	cfg.Filters = filters
	s := New(cfg)

	r := rand.New(rand.NewSource(55))
	for i := 0; i < 80000; i++ {
		cpu := r.Intn(4)
		// Mix of private and shared regions to exercise all filter paths.
		var a uint64
		if r.Intn(3) == 0 {
			a = uint64(r.Intn(1 << 11)) // shared, hot
		} else {
			a = uint64(1<<14+cpu<<12) + uint64(r.Intn(1<<12)) // private
		}
		if r.Intn(3) == 0 {
			write(s, cpu, a)
		} else {
			read(s, cpu, a)
		}
	}
	s.DrainWriteBuffers()
	if err := s.CheckFilterSafety(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	// Every filter must have probed every snoop.
	c := s.EnergyCounts()
	for i := range filters {
		fc := s.FilterCounts(i)
		if fc.Probes != c.Snoops {
			t.Errorf("%s: probes %d != snoops %d", filters[i].Name(), fc.Probes, c.Snoops)
		}
		if fc.Filtered > c.SnoopMisses {
			t.Errorf("%s: filtered %d exceeds snoop misses %d", filters[i].Name(), fc.Filtered, c.SnoopMisses)
		}
	}
	// With hot shared traffic the hybrids must achieve nonzero coverage.
	for i, n := range s.FilterNames() {
		if n == "HJ(IJ-10x4x7,EJ-32x4)" && s.Coverage(i) <= 0 {
			t.Error("best hybrid achieved zero coverage on mixed traffic")
		}
	}
}

func TestCPUStatsAdd(t *testing.T) {
	a := CPUStats{Loads: 1, Stores: 2, WBForwards: 3, WBCoalesced: 4, WBDrains: 5,
		L1Probes: 6, L1Hits: 7, L1Misses: 8, L1Writebacks: 9, L1SnoopProbes: 10}
	b := a
	a.Add(b)
	if a.Loads != 2 || a.L1SnoopProbes != 20 || a.L1Writebacks != 18 {
		t.Errorf("Add mismatch: %+v", a)
	}
}
