package smp

import (
	"fmt"

	"jetty/internal/addr"
	"jetty/internal/cache"
	"jetty/internal/jetty"
)

// Config describes one simulated machine.
type Config struct {
	CPUs      int
	L1        cache.L1Config
	L2        cache.L2Config
	WBEntries int // write-buffer entries per CPU

	// Filters are the JETTY configurations instantiated per CPU as
	// observers. May be empty (baseline measurement runs).
	Filters []jetty.Config
}

// PaperConfig returns the paper's base machine (§4.1): a 4-way SMP, 64 KB
// direct-mapped L1 with 32-byte lines, 1 MB 4-way L2 with 64-byte blocks
// of two 32-byte subblocks, MOESI at subblock granularity, 8-entry write
// buffers.
func PaperConfig(cpus int) Config {
	return Config{
		CPUs:      cpus,
		L1:        cache.L1Config{SizeBytes: 64 << 10, LineBytes: 32},
		L2:        cache.L2Config{SizeBytes: 1 << 20, Assoc: 4, Geom: addr.Subblocked},
		WBEntries: 8,
	}
}

// PaperConfigNSB returns the non-subblocked comparison machine: identical
// but with coherence kept at whole 64-byte blocks.
func PaperConfigNSB(cpus int) Config {
	c := PaperConfig(cpus)
	c.L2.Geom = addr.NonSubblocked
	return c
}

// WithFilters returns a copy of the config carrying the given filter set.
func (c Config) WithFilters(filters ...jetty.Config) Config {
	c.Filters = append([]jetty.Config(nil), filters...)
	return c
}

// WithoutFilters returns a copy of the config with no filter bank. The
// fused sweep planner groups cells by this: machines that differ only
// in their observer bank share one reference-stream replay.
func (c Config) WithoutFilters() Config {
	c.Filters = nil
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CPUs < 1 || c.CPUs > 64 {
		return fmt.Errorf("smp: %d CPUs out of range 1..64", c.CPUs)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes > c.L2.Geom.UnitBytes() {
		return fmt.Errorf("smp: L1 lines (%dB) must not exceed L2 coherence units (%dB)",
			c.L1.LineBytes, c.L2.Geom.UnitBytes())
	}
	if c.L2.Blocks() > cache.MaxCachedFrames {
		// The L1 caches each line's covering L2 frame in a 28-bit field.
		return fmt.Errorf("smp: L2 with %d frames exceeds the %d the L1 can reference",
			c.L2.Blocks(), cache.MaxCachedFrames)
	}
	if c.WBEntries < 0 || c.WBEntries > 256 {
		return fmt.Errorf("smp: %d write-buffer entries out of range 0..256", c.WBEntries)
	}
	for _, f := range c.Filters {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}
