package smp

import (
	"fmt"

	"jetty/internal/cache"
)

// CheckCoherence verifies the MOESI single-writer/multiple-reader
// invariants and L1/L2 inclusion across the whole machine. It is intended
// for tests and debugging (cost is proportional to cache contents).
//
// Invariants checked, per coherence unit:
//
//  1. at most one cache holds it Modified or Exclusive, and then no other
//     cache holds it in any valid state;
//  2. at most one cache holds it Owned (the owner), and no cache holds it
//     Modified or Exclusive alongside;
//  3. every valid L1 line is covered by a valid unit in its own L2, and a
//     dirty L1 line requires the L2 unit Modified;
//  4. the L2's inL1 hint covers every present L1 line (it may
//     over-approximate, never under-approximate).
func (s *System) CheckCoherence() error {
	type holders struct {
		me, o, sh int // modified/exclusive, owned, shared counts
	}
	units := map[uint64]*holders{}
	for i := range s.nodes {
		n := &s.nodes[i]
		n.l2.ForEachValidUnit(func(unit uint64, st cache.State) {
			h := units[unit]
			if h == nil {
				h = &holders{}
				units[unit] = h
			}
			switch st {
			case cache.Modified, cache.Exclusive:
				h.me++
			case cache.Owned:
				h.o++
			case cache.Shared:
				h.sh++
			}
		})
	}
	for unit, h := range units {
		if h.me > 1 {
			return fmt.Errorf("smp: unit %#x has %d M/E holders", unit, h.me)
		}
		if h.me == 1 && (h.o > 0 || h.sh > 0) {
			return fmt.Errorf("smp: unit %#x held M/E alongside %d O + %d S copies", unit, h.o, h.sh)
		}
		if h.o > 1 {
			return fmt.Errorf("smp: unit %#x has %d owners", unit, h.o)
		}
	}

	for i := range s.nodes {
		n := &s.nodes[i]
		var err error
		n.l1.ForEachValidLine(func(line uint64, dirty bool) {
			if err != nil {
				return
			}
			unit := s.unitOfLine(line)
			st := n.l2.UnitState(unit)
			if !st.Valid() {
				err = fmt.Errorf("smp: cpu%d L1 line %#x not covered by L2 (inclusion)", n.id, line)
				return
			}
			if dirty && st != cache.Modified {
				err = fmt.Errorf("smp: cpu%d dirty L1 line %#x over L2 state %v", n.id, line, st)
				return
			}
			if !n.l2.InL1(unit) {
				err = fmt.Errorf("smp: cpu%d L1 line %#x present but inL1 hint clear", n.id, line)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
