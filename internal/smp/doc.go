// Package smp simulates the paper's machine: a snoopy, bus-based,
// write-invalidate SMP with per-processor write buffer, direct-mapped
// write-back L1, and a set-associative, subblocked L2 keeping MOESI
// state per subblock (L1 is included in L2). The simulation is
// trace-driven and data-less: one memory reference is processed at a
// time, globally ordered, which is exact for the coverage and energy
// statistics the paper evaluates (it reports no performance results for
// JETTY).
//
// JETTY filters are attached as per-CPU observers. Filtering never
// changes protocol outcomes (a filtered snoop would have missed anyway),
// so a single pass drives the protocol while any number of filter
// configurations measure their coverage simultaneously — exactly how the
// paper evaluates many organizations over one set of traces. The bank is
// additionally audited on every snoop: a filter claiming a cached unit
// absent is counted as a safety violation (CheckFilterSafety).
//
// The per-reference path — Step, and its batched twin StepBatch that the
// trace-replay loop feeds — is the simulator's hot loop and is kept
// allocation-free in steady state: precomputed address-geometry shifts,
// a ring write buffer with an exact membership signature, L2 frame
// handles threaded from one associative search through every dependent
// access, and concrete-typed filter dispatch. PERFORMANCE.md at the
// repository root records the measured baseline and the design notes.
package smp
