package smp

import (
	"reflect"
	"testing"

	"jetty/internal/cache"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/trace"
)

// hotPathConfig is a small machine with one filter of every family
// attached, sized so the reference mix below forces L2 evictions (and
// with them writebacks, snoop broadcasts and filter learning) while a
// test still runs in milliseconds.
func hotPathConfig() Config {
	cfg := PaperConfig(4)
	cfg.L2.SizeBytes = 1 << 16 // 64 KB: the mix below overflows it
	cfg.L1.SizeBytes = 1 << 13
	return cfg.WithFilters(
		jetty.MustParse("EJ-32x4"),
		jetty.MustParse("VEJ-32x4-8"),
		jetty.MustParse("IJ-9x4x7"),
		jetty.MustParse("HJ(IJ-10x4x7,EJ-32x4)"),
	)
}

// hotPathRecs generates a deterministic mixed reference stream: ~30%
// stores, per-CPU private regions plus a shared region (cross-CPU
// sharing drives snoop hits, upgrades and invalidations), and a
// footprint well past the L2 so evictions keep happening in steady
// state.
func hotPathRecs(n int) []trace.Rec {
	recs := make([]trace.Rec, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range recs {
		// xorshift64* — deterministic, no math/rand allocation.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		r := state * 0x2545f4914f6cdd1d
		cpu := int32(i & 3)
		addr := (r >> 8) & 0x3fffff // 4 MB footprint >> 64 KB L2
		if r&0xf < 5 {
			// Shared region: all CPUs contend on 64 KB of hot lines.
			addr &= 0xffff
		} else {
			// Private region per CPU.
			addr |= uint64(cpu) << 24
		}
		op := trace.Read
		if r&0x1f < 9 {
			op = trace.Write
		}
		recs[i] = trace.Rec{Addr: addr, CPU: cpu, Op: op}
	}
	return recs
}

// TestStepSteadyStateAllocs pins the hot-path overhaul's allocation
// guarantee: once a machine exists, stepping references — including L2
// evictions, snoop broadcasts, filter probes and filter learning —
// allocates nothing. PERFORMANCE.md tracks the matching benchmark
// number (BenchmarkAccessHotPath/steady).
func TestStepSteadyStateAllocs(t *testing.T) {
	sys := New(hotPathConfig())
	recs := hotPathRecs(1 << 15)
	sys.StepBatch(recs) // warm-up: reach steady state

	if avg := testing.AllocsPerRun(10, func() { sys.StepBatch(recs) }); avg != 0 {
		t.Fatalf("steady-state StepBatch allocates: %v allocs per batch (want 0)", avg)
	}

	// The eviction path must have actually run for the assertion to mean
	// anything.
	if ev := sys.EnergyCounts().TagEvictions; ev == 0 {
		t.Fatal("reference mix caused no L2 evictions; the alloc assertion is vacuous")
	}
	if sn := sys.EnergyCounts().Snoops; sn == 0 {
		t.Fatal("reference mix caused no snoops; the alloc assertion is vacuous")
	}
}

// TestStepSteadyStateAllocsSampled is the sampled twin: with an interval
// sampler attached, windowed emission must also be allocation-free in
// steady state — the windows and their per-filter slices come from the
// sampler's pre-grown arenas. PERFORMANCE.md tracks the matching
// overhead benchmark (BenchmarkAccessHotPath/sampled).
func TestStepSteadyStateAllocsSampled(t *testing.T) {
	cfg := hotPathConfig()
	sys := New(cfg)
	recs := hotPathRecs(1 << 15)

	// Capacity covers every window the warm-up and the measured runs will
	// emit, so steady state never grows the arena.
	const interval = 1 << 12
	windows := (len(recs) * 16 / interval) + 4
	sm := metrics.NewSampler(metrics.Config{
		Interval: interval,
		Filters:  len(cfg.Filters),
		Capacity: windows,
	})
	sys.SetSampler(sm)
	sys.StepBatch(recs) // warm-up: reach steady state

	if avg := testing.AllocsPerRun(10, func() { sys.StepBatch(recs) }); avg != 0 {
		t.Fatalf("sampled steady-state StepBatch allocates: %v allocs per batch (want 0)", avg)
	}

	// The sampler must have actually emitted — and kept emitting during
	// the measured runs — or the assertion is vacuous.
	wins := sm.Windows()
	if len(wins) < 12*len(recs)/interval {
		t.Fatalf("sampler emitted only %d windows", len(wins))
	}
	var snoops uint64
	for i := range wins {
		snoops += wins[i].Counts.Snoops
	}
	if snoops == 0 {
		t.Fatal("no snoops crossed a window; the sampled assertion is vacuous")
	}
}

// TestDrainWriteBuffersSteadyAllocs covers the end-of-run drain: after
// the first call (which may size the reusable drain scratch), draining
// allocates nothing.
func TestDrainWriteBuffersSteadyAllocs(t *testing.T) {
	sys := New(hotPathConfig())
	recs := hotPathRecs(1 << 12)
	sys.StepBatch(recs)
	sys.DrainWriteBuffers() // sizes the per-CPU drain scratch

	if avg := testing.AllocsPerRun(10, func() {
		sys.StepBatch(recs)
		sys.DrainWriteBuffers()
	}); avg != 0 {
		t.Fatalf("steady-state drain allocates: %v allocs per run (want 0)", avg)
	}
}

// machineSnapshot collects everything a run can observe about a system.
func machineSnapshot(t *testing.T, s *System) map[string]any {
	t.Helper()
	snap := map[string]any{
		"refs":  s.Refs(),
		"cpu":   s.CPUStatsTotal(),
		"l2c":   s.EnergyCounts(),
		"bus":   *s.BusStats(),
		"names": s.FilterNames(),
	}
	for i := range s.Config().Filters {
		snap["filter"+s.FilterNames()[i]] = s.FilterCounts(i)
	}
	units := map[uint64]string{}
	for i := range s.nodes {
		n := &s.nodes[i]
		n.l2.ForEachValidUnit(func(unit uint64, st cache.State) {
			units[uint64(n.id)<<40|unit] = st.String()
		})
	}
	snap["units"] = units
	return snap
}

// TestStepBatchMatchesStep pins the manual inline in StepBatch to Step:
// the same stream through both drivers must leave two machines in
// identical observable states. The replay and golden suites depend on
// this equivalence.
func TestStepBatchMatchesStep(t *testing.T) {
	cfg := hotPathConfig()
	recs := hotPathRecs(1 << 15)

	a := New(cfg)
	for _, r := range recs {
		a.Step(int(r.CPU), trace.Ref{Op: r.Op, Addr: r.Addr})
	}
	b := New(cfg)
	b.StepBatch(recs)

	sa, sb := machineSnapshot(t, a), machineSnapshot(t, b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("StepBatch diverged from Step:\n step: %+v\nbatch: %+v", sa, sb)
	}
	if err := a.CheckFilterSafety(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
