package smp

import (
	"bytes"
	"math/rand"
	"testing"

	"jetty/internal/addr"
	"jetty/internal/bus"
	"jetty/internal/cache"
	"jetty/internal/jetty"
	"jetty/internal/trace"
)

// conflictMachine builds a 1-CPU-visible L2-conflict setup: tiny caches so
// evictions are easy to force.
func conflictMachine(cpus int) *System {
	cfg := PaperConfig(cpus)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 10, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 12, Assoc: 2, Geom: addr.Subblocked} // 32 sets
	cfg.WBEntries = 0
	return New(cfg)
}

func TestWritebackIsSnooped(t *testing.T) {
	s := conflictMachine(4)
	sets := uint64(s.cfg.L2.Sets())
	blockBytes := uint64(s.cfg.L2.Geom.BlockBytes)

	write(s, 0, 0) // dirty block at cpu0
	preSnoops := s.EnergyCounts().Snoops
	preTrans := s.bus.SnoopTransactions()
	// Force eviction of the dirty block via two same-set fills.
	read(s, 0, sets*blockBytes)
	read(s, 0, 2*sets*blockBytes)

	if s.bus.Count[bus.Writeback] != 1 {
		t.Fatalf("BusWB count = %d, want 1", s.bus.Count[bus.Writeback])
	}
	// The writeback itself snooped the 3 remote caches (plus the two
	// BusRd fills that forced it).
	gotSnoops := s.EnergyCounts().Snoops - preSnoops
	gotTrans := s.bus.SnoopTransactions() - preTrans
	if gotTrans != 3 { // 2 BusRd + 1 BusWB
		t.Fatalf("snooping transactions = %d, want 3", gotTrans)
	}
	if gotSnoops != 9 {
		t.Fatalf("remote snoops = %d, want 9 (3 transactions x 3 remotes)", gotSnoops)
	}
}

func TestOwnedWritebackHitsSurvivingSharers(t *testing.T) {
	s := conflictMachine(4)
	sets := uint64(s.cfg.L2.Sets())
	blockBytes := uint64(s.cfg.L2.Geom.BlockBytes)
	a := uint64(0)

	write(s, 0, a) // cpu0: M
	read(s, 1, a)  // cpu0: O (supplies), cpu1: S
	if got := unitState(s, 0, a); got != cache.Owned {
		t.Fatalf("cpu0 state %v, want O", got)
	}
	// Evict the Owned block from cpu0: its writeback must snoop-hit cpu1.
	preHist1 := s.bus.RemoteHits[1]
	read(s, 0, a+sets*blockBytes)
	read(s, 0, a+2*sets*blockBytes)
	if s.bus.Count[bus.Writeback] == 0 {
		t.Fatal("no writeback issued for the Owned departure")
	}
	if s.bus.RemoteHits[1] <= preHist1 {
		t.Error("the Owned block's writeback should have found cpu1's Shared copy")
	}
	// cpu1's copy survives and still serves reads locally.
	if got := unitState(s, 1, a); got != cache.Shared {
		t.Errorf("cpu1 state %v, want S after owner departure", got)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAbsentDistinction(t *testing.T) {
	// The plain EJ only learns whole-block misses; verify the simulator
	// feeds the distinction correctly by checking EJ behaviour across a
	// sibling-subblock boundary.
	cfg := PaperConfig(2)
	cfg.WBEntries = 0
	cfg.Filters = []jetty.Config{jetty.MustParse("EJ-32x4")}
	s := New(cfg)

	base := uint64(0x4000)
	// cpu0 caches ONLY subblock 1 of the block.
	read(s, 0, base+32)
	// cpu1 touches subblock 0: cpu0's L2 has the tag but not the unit — a
	// subblock-only miss. The EJ must NOT learn "block absent".
	read(s, 1, base)
	// cpu1 touches subblock 0 of a block cpu0 has nothing of: whole-block
	// miss; the EJ learns it.
	other := uint64(0x8000)
	read(s, 1, other)

	ej := s.nodes[0].filters[0]
	g := s.geom
	if ej.Peek(g.Unit(base), g.Block(base)) {
		t.Error("EJ recorded a subblock-only miss as block absence (unsafe)")
	}
	if !ej.Peek(g.Unit(other), g.Block(other)) {
		t.Error("EJ failed to record a whole-block miss")
	}
	if !ej.Peek(g.Unit(other+32), g.Block(other)) {
		t.Error("EJ block entry should cover the sibling subblock")
	}
	if err := s.CheckFilterSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestEightWayProtocol(t *testing.T) {
	cfg := PaperConfig(8)
	cfg.L1 = cache.L1Config{SizeBytes: 1 << 10, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 13, Assoc: 2, Geom: addr.Subblocked}
	cfg.WBEntries = 4
	cfg.Filters = []jetty.Config{jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")}
	s := New(cfg)

	r := rand.New(rand.NewSource(8))
	for i := 0; i < 40000; i++ {
		cpu := r.Intn(8)
		a := uint64(r.Intn(1 << 13))
		if r.Intn(3) == 0 {
			write(s, cpu, a)
		} else {
			read(s, cpu, a)
		}
	}
	s.DrainWriteBuffers()
	// 7 snoops per transaction on an 8-way machine.
	c := s.EnergyCounts()
	if want := s.bus.SnoopTransactions() * 7; c.Snoops != want {
		t.Errorf("snoops = %d, want %d", c.Snoops, want)
	}
	if len(s.bus.RemoteHits) != 8 {
		t.Errorf("remote-hit histogram size %d, want 8", len(s.bus.RemoteHits))
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckFilterSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDeepSafetySweepCatchesPlantedViolation(t *testing.T) {
	// Verify CheckFilterSafety's peek sweep actually detects a lying
	// filter: plant a bogus exclude entry for a resident block.
	cfg := PaperConfig(2)
	cfg.WBEntries = 0
	cfg.Filters = []jetty.Config{jetty.MustParse("EJ-32x4")}
	s := New(cfg)
	a := uint64(0x2000)
	read(s, 0, a)
	if err := s.CheckFilterSafety(); err != nil {
		t.Fatalf("clean machine reported unsafe: %v", err)
	}
	// Corrupt cpu0's filter: claim the (cached) block absent.
	g := s.geom
	s.nodes[0].filters[0].SnoopMiss(g.Unit(a), g.Block(a), true)
	if err := s.CheckFilterSafety(); err == nil {
		t.Fatal("planted violation not detected by the deep sweep")
	}
}

func TestTraceReplayMatchesGeneratorRun(t *testing.T) {
	// Record a generated workload, replay it through a second machine,
	// and verify identical statistics — the record/replay substrate works
	// end to end.
	cfg := PaperConfig(4)
	cfg.Filters = []jetty.Config{jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)")}

	src := newStepSource(20000)
	s1 := New(cfg)
	s1.Run(src, 0)
	s1.DrainWriteBuffers()

	var buf bytes.Buffer
	if _, err := trace.Record(&buf, newStepSource(20000), 0, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	s2.Run(rd, 0)
	s2.DrainWriteBuffers()
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}

	if s1.EnergyCounts() != s2.EnergyCounts() {
		t.Errorf("replayed run diverged:\nlive:   %+v\nreplay: %+v", s1.EnergyCounts(), s2.EnergyCounts())
	}
	if s1.FilterCounts(0) != s2.FilterCounts(0) {
		t.Error("filter counts diverged under replay")
	}
}

// newStepSource builds a deterministic mixed-traffic source.
func newStepSource(n int) trace.Source {
	r := rand.New(rand.NewSource(99))
	left := n
	return &trace.FuncSource{NumCPUs: 4, Fn: func(cpu int) (trace.Ref, bool) {
		if left <= 0 {
			return trace.Ref{}, false
		}
		left--
		op := trace.Read
		if r.Intn(3) == 0 {
			op = trace.Write
		}
		return trace.Ref{Op: op, Addr: uint64(r.Intn(1 << 16))}, true
	}}
}
