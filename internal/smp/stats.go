package smp

import (
	"fmt"
	"jetty/internal/cache"

	"jetty/internal/bus"
	"jetty/internal/energy"
)

// EnergyCounts returns the aggregated L2 event counts of all CPUs.
func (s *System) EnergyCounts() energy.Counts {
	var c energy.Counts
	for i := range s.nodes {
		c.Add(s.nodes[i].l2c)
	}
	return c
}

// EnergyCountsCPU returns one CPU's L2 event counts.
func (s *System) EnergyCountsCPU(cpu int) energy.Counts { return s.nodes[cpu].l2c }

// CPUStatsTotal returns the aggregated processor-side counters.
func (s *System) CPUStatsTotal() CPUStats {
	var c CPUStats
	for i := range s.nodes {
		c.Add(s.nodes[i].cpu)
	}
	return c
}

// CPUStatsFor returns one CPU's processor-side counters.
func (s *System) CPUStatsFor(cpu int) CPUStats { return s.nodes[cpu].cpu }

// BusStats returns the bus transaction statistics.
func (s *System) BusStats() *bus.Stats { return s.bus }

// FilterNames returns the configured filter names in bank order.
func (s *System) FilterNames() []string {
	names := make([]string, len(s.cfg.Filters))
	for i, f := range s.cfg.Filters {
		names[i] = f.Name()
	}
	return names
}

// FilterCounts returns filter idx's event counts aggregated over all CPUs,
// including any safety violations observed by the system (FilteredHits,
// which must be zero for a correct filter).
func (s *System) FilterCounts(idx int) energy.FilterCounts {
	var c energy.FilterCounts
	for i := range s.nodes {
		c.Add(s.nodes[i].filters[idx].Counts())
		c.FilteredHits += s.nodes[i].unsafeFl[idx]
	}
	return c
}

// Coverage returns filter idx's snoop-miss coverage: the fraction of
// snoop-induced L2 tag lookups that would miss which the filter
// eliminated (the paper's §4.3 metric).
func (s *System) Coverage(idx int) float64 {
	fc := s.FilterCounts(idx)
	misses := s.EnergyCounts().SnoopMisses
	if misses == 0 {
		return 0
	}
	return float64(fc.Filtered) / float64(misses)
}

// CheckFilterSafety returns an error if any filter ever filtered a snoop
// to a cached unit (the paper's requirement 3, which must never happen).
// Beyond the per-snoop audit trail, it sweeps every valid unit of every
// CPU's L2 against that CPU's filters with side-effect-free peeks: a
// filter claiming any resident unit absent is a safety violation even if
// no snoop happened to expose it.
func (s *System) CheckFilterSafety() error {
	for i := range s.cfg.Filters {
		if c := s.FilterCounts(i); c.FilteredHits != 0 {
			return fmt.Errorf("smp: filter %s filtered %d snoops to cached units",
				s.cfg.Filters[i].Name(), c.FilteredHits)
		}
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		var err error
		n.l2.ForEachValidUnit(func(unit uint64, _ cache.State) {
			if err != nil {
				return
			}
			block := s.geom.BlockOfUnit(unit)
			for i, f := range n.filters {
				if f.Peek(unit, block) {
					err = fmt.Errorf("smp: cpu%d filter %s claims resident unit %#x absent",
						n.id, s.cfg.Filters[i].Name(), unit)
					return
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// L1HitRate returns the aggregate L1 hit rate over core-side L1 probes.
func (s *System) L1HitRate() float64 {
	c := s.CPUStatsTotal()
	if c.L1Probes == 0 {
		return 0
	}
	return float64(c.L1Hits) / float64(c.L1Probes)
}

// L2LocalHitRate returns the aggregate local (processor-initiated) L2 hit
// rate, the paper's "local hit rate": over accesses that missed in L1,
// including L1 writebacks (Table 2).
func (s *System) L2LocalHitRate() float64 {
	c := s.EnergyCounts()
	probes := c.LocalProbes()
	if probes == 0 {
		return 0
	}
	return float64(c.LocalReadHits+c.LocalWriteHits) / float64(probes)
}

// SnoopMissFracOfSnoops returns snoop-induced tag misses as a fraction of
// snoop-induced tag accesses (Table 3, "% of Snoop Accesses").
func (s *System) SnoopMissFracOfSnoops() float64 {
	c := s.EnergyCounts()
	if c.Snoops == 0 {
		return 0
	}
	return float64(c.SnoopMisses) / float64(c.Snoops)
}

// SnoopMissFracOfAll returns snoop-induced tag misses as a fraction of all
// L2 tag accesses, local and snoop-induced (Table 3, "% of All Accesses").
func (s *System) SnoopMissFracOfAll() float64 {
	c := s.EnergyCounts()
	all := c.Snoops + c.LocalProbes()
	if all == 0 {
		return 0
	}
	return float64(c.SnoopMisses) / float64(all)
}
