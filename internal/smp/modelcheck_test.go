package smp

import (
	"fmt"
	"testing"

	"jetty/internal/addr"
	"jetty/internal/cache"
	"jetty/internal/trace"
)

// Model checking the coherence protocol (the paper's §2.2 points at
// protocol verification as the hard part of coherence work): we enumerate
// the complete reachable state space of one coherence unit across N CPUs
// under an abstract MOESI transition function, verify the
// single-writer/reader invariants in every reachable state, and
// cross-validate that the *simulator* performs exactly the same transition
// for every (state, operation) pair — the abstract model and the
// implementation must agree move for move.

// mcState is the per-CPU MOESI state vector of one unit.
type mcState [4]cache.State

// mcOp is one processor operation.
type mcOp struct {
	cpu   int
	write bool
}

// abstractStep applies the MOESI transition function to a state vector.
func abstractStep(s mcState, op mcOp) mcState {
	n := s
	me := op.cpu
	if op.write {
		switch s[me] {
		case cache.Modified:
			// silent
		case cache.Exclusive:
			n[me] = cache.Modified // silent upgrade
		default: // S, O -> BusUpgr; I -> BusRdX: all remote copies die
			for i := range n {
				if i != me {
					n[i] = cache.Invalid
				}
			}
			n[me] = cache.Modified
		}
		return n
	}
	// Read.
	if s[me].Valid() {
		return n // local hit
	}
	hits := 0
	for i := range n {
		if i == me {
			continue
		}
		switch n[i] {
		case cache.Modified, cache.Owned:
			n[i] = cache.Owned
			hits++
		case cache.Exclusive:
			n[i] = cache.Shared
			hits++
		case cache.Shared:
			hits++
		}
	}
	if hits > 0 {
		n[me] = cache.Shared
	} else {
		n[me] = cache.Exclusive
	}
	return n
}

// checkInvariants verifies the MOESI single-writer invariants on a vector.
func checkInvariants(s mcState) error {
	me, owned, shared := 0, 0, 0
	for _, st := range s {
		switch st {
		case cache.Modified, cache.Exclusive:
			me++
		case cache.Owned:
			owned++
		case cache.Shared:
			shared++
		}
	}
	switch {
	case me > 1:
		return fmt.Errorf("%v: multiple M/E holders", s)
	case me == 1 && (owned > 0 || shared > 0):
		return fmt.Errorf("%v: M/E alongside other copies", s)
	case owned > 1:
		return fmt.Errorf("%v: multiple owners", s)
	}
	return nil
}

// TestMOESIModelExploration exhaustively explores the reachable state
// space of the abstract protocol and checks invariants everywhere.
func TestMOESIModelExploration(t *testing.T) {
	start := mcState{}
	seen := map[mcState]bool{start: true}
	frontier := []mcState{start}
	transitions := 0
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		if err := checkInvariants(s); err != nil {
			t.Fatal(err)
		}
		for cpu := 0; cpu < 4; cpu++ {
			for _, w := range []bool{false, true} {
				n := abstractStep(s, mcOp{cpu: cpu, write: w})
				transitions++
				if !seen[n] {
					seen[n] = true
					frontier = append(frontier, n)
				}
			}
		}
	}
	// Sanity: the reachable space must be nontrivial but far below 5^4
	// (most vectors violate coherence and are unreachable).
	if len(seen) < 10 || len(seen) > 300 {
		t.Errorf("reachable states = %d, outside plausible range", len(seen))
	}
	t.Logf("explored %d reachable states over %d transitions", len(seen), transitions)
}

// mcMachine builds a minimal machine and forces one unit into the given
// abstract state vector.
func mcMachine(t *testing.T, s mcState, unitAddr uint64) *System {
	t.Helper()
	cfg := PaperConfig(4)
	cfg.L1 = cache.L1Config{SizeBytes: 512, LineBytes: 32}
	cfg.L2 = cache.L2Config{SizeBytes: 1 << 11, Assoc: 2, Geom: addr.Subblocked}
	cfg.WBEntries = 0
	sys := New(cfg)
	g := sys.Geometry()
	for cpu, st := range s {
		if !st.Valid() {
			continue
		}
		n := &sys.nodes[cpu]
		n.l2.EnsureBlock(g.Block(unitAddr))
		n.l2.SetUnitState(g.Unit(unitAddr), st)
	}
	return sys
}

// TestSimulatorMatchesAbstractModel drives the simulator through every
// reachable (state, operation) pair and verifies the resulting L2 state
// vector equals the abstract model's.
func TestSimulatorMatchesAbstractModel(t *testing.T) {
	const unitAddr = 0x40 // unit 2, block 1
	// Enumerate reachable states first.
	start := mcState{}
	seen := map[mcState]bool{start: true}
	frontier := []mcState{start}
	var reachable []mcState
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		reachable = append(reachable, s)
		for cpu := 0; cpu < 4; cpu++ {
			for _, w := range []bool{false, true} {
				if n := abstractStep(s, mcOp{cpu: cpu, write: w}); !seen[n] {
					seen[n] = true
					frontier = append(frontier, n)
				}
			}
		}
	}

	checked := 0
	for _, s := range reachable {
		for cpu := 0; cpu < 4; cpu++ {
			for _, w := range []bool{false, true} {
				want := abstractStep(s, mcOp{cpu: cpu, write: w})
				sys := mcMachine(t, s, unitAddr)
				op := trace.Read
				if w {
					op = trace.Write
				}
				sys.Step(cpu, trace.Ref{Op: op, Addr: unitAddr})
				var got mcState
				for i := 0; i < 4; i++ {
					got[i] = sys.nodes[i].l2.UnitState(sys.Geometry().Unit(unitAddr))
				}
				if got != want {
					t.Fatalf("state %v, cpu%d %s: simulator -> %v, model -> %v",
						s, cpu, op, got, want)
				}
				if err := sys.CheckCoherence(); err != nil {
					t.Fatalf("state %v, cpu%d %s: %v", s, cpu, op, err)
				}
				checked++
			}
		}
	}
	t.Logf("cross-validated %d (state, op) transitions", checked)
}
