package smp

import (
	"jetty/internal/bus"
	"jetty/internal/cache"
)

// busRead issues a BusRd for a load miss: every other CPU snoops; owners
// supply data and downgrade; the requester fills Shared (or Exclusive if
// no remote copies existed). It returns the filled unit's L2 frame.
func (s *System) busRead(n *node, unit, block uint64) cache.Frame {
	remoteHits := 0
	for i := range s.nodes {
		o := &s.nodes[i]
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.Read) {
			remoteHits++
		}
	}
	s.bus.Record(bus.Read, remoteHits)

	st := cache.Exclusive
	if remoteHits > 0 {
		st = cache.Shared
	}
	return s.fillL2Unit(n, unit, block, st)
}

// busReadX issues a BusRdX for a store miss: remote copies are
// invalidated (owners supply the data on the way out); the requester
// fills Modified. It returns the filled unit's L2 frame.
func (s *System) busReadX(n *node, unit, block uint64) cache.Frame {
	remoteHits := 0
	for i := range s.nodes {
		o := &s.nodes[i]
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.ReadX) {
			remoteHits++
		}
	}
	s.bus.Record(bus.ReadX, remoteHits)
	return s.fillL2Unit(n, unit, block, cache.Modified)
}

// busUpgrade issues a BusUpgr for a store hitting a Shared/Owned copy:
// remote copies are invalidated; the local unit (frame f) becomes
// Modified without a data transfer.
func (s *System) busUpgrade(n *node, f cache.Frame, unit, block uint64) {
	remoteHits := 0
	for i := range s.nodes {
		o := &s.nodes[i]
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.Upgrade) {
			remoteHits++
		}
	}
	s.bus.Record(bus.Upgrade, remoteHits)
	n.l2.SetStateAt(f, unit, cache.Modified)
	n.l2c.LocalStateWrite++
}

// snoop delivers one bus transaction to a remote node's hierarchy and
// returns whether that node held a copy (a "remote hit"). The JETTY
// filter bank observes every snoop; the protocol itself always proceeds
// (filtering would only have skipped the tag probe of snoops that miss,
// so outcomes are identical — this is what lets one pass measure every
// filter configuration).
func (s *System) snoop(o *node, unit, block uint64, kind bus.Kind) bool {
	o.l2c.Snoops++

	f := o.l2.FindBlock(block)
	st := cache.Invalid
	if f.Ok() {
		st = o.l2.StateAt(f, unit)
	}
	present := st.Valid()
	blockAbsent := !f.Ok()

	// Filter bank observes (and is checked for safety violations). The
	// loops run per concrete type — direct calls, no interface dispatch.
	for k, fl := range o.bank.ejs {
		if fl.Probe(unit, block) {
			if present {
				o.unsafeFl[o.bank.ejIdx[k]]++
			}
		} else if !present {
			fl.SnoopMiss(unit, block, blockAbsent)
		}
	}
	for k, fl := range o.bank.ijs {
		if fl.Probe(unit, block) {
			if present {
				o.unsafeFl[o.bank.ijIdx[k]]++
			}
		} else if !present {
			fl.SnoopMiss(unit, block, blockAbsent)
		}
	}
	for k, fl := range o.bank.hjs {
		if fl.Probe(unit, block) {
			if present {
				o.unsafeFl[o.bank.hjIdx[k]]++
			}
		} else if !present {
			fl.SnoopMiss(unit, block, blockAbsent)
		}
	}
	for k, fl := range o.bank.gen {
		if fl.Probe(unit, block) {
			if present {
				o.unsafeFl[o.bank.genIdx[k]]++
			}
		} else if !present {
			fl.SnoopMiss(unit, block, blockAbsent)
		}
	}

	if !present {
		o.l2c.SnoopMisses++
		return false
	}
	o.l2c.SnoopHits++

	switch kind {
	case bus.Writeback:
		// Address check only: the departing owner's data goes to memory;
		// surviving Shared copies stay valid.

	case bus.Read:
		if st.CanSupply() {
			o.l2c.SnoopSupplies++
			// The freshest data may sit in a dirty L1 line (inclusion
			// hint): probing it is an L1 access, and the line downgrades
			// to clean as the L2 takes ownership of the merged data.
			if o.l2.InL1At(f, unit) {
				s.l1SnoopClean(o, unit)
			}
		}
		var next cache.State
		switch st {
		case cache.Modified, cache.Owned:
			next = cache.Owned // MOESI: dirty data stays on-chip, shared
		case cache.Exclusive, cache.Shared:
			next = cache.Shared
		}
		if next != st {
			o.l2.SetStateAt(f, unit, next)
			o.l2c.SnoopStateWrites++
		}

	case bus.ReadX, bus.Upgrade:
		if kind == bus.ReadX && st.CanSupply() {
			o.l2c.SnoopSupplies++
		}
		if o.l2.InL1At(f, unit) {
			s.l1SnoopInvalidate(o, unit)
		}
		// InvalidateAt clears the unit's inL1 hint alongside its state.
		_, freed := o.l2.InvalidateAt(f, unit)
		o.l2c.SnoopStateWrites++
		if freed {
			o.l2c.TagEvictions++
			o.blockEvictedFilters(block)
		}
	}
	return true
}

// blockEvictedFilters delivers a BlockEvicted event to every filter
// (exclude structures ignore it; the typed loops keep the calls direct).
func (o *node) blockEvictedFilters(block uint64) {
	for _, fl := range o.bank.ijs {
		fl.BlockEvicted(block)
	}
	for _, fl := range o.bank.hjs {
		fl.BlockEvicted(block)
	}
	for _, fl := range o.bank.gen {
		fl.BlockEvicted(block)
	}
}

// l1SnoopClean probes the L1 lines covering a unit, cleans any dirty one
// (its data merges into the L2 copy being supplied) and drops the
// exclusivity hints: the unit is being downgraded out of M/E.
func (s *System) l1SnoopClean(o *node, unit uint64) {
	first := unit << s.unitShift
	for i := 0; i < s.linesPerUnit; i++ {
		o.cpu.L1SnoopProbes++
		o.l1.Clean(first + uint64(i))
		o.l1.ClearExclusive(first + uint64(i))
	}
}

// l1SnoopInvalidate removes the L1 lines covering a unit (inclusion).
// The L2-side inL1 hint clears with the unit's state (InvalidateAt) or
// with the departing block's frame, so only the L1 is touched here.
func (s *System) l1SnoopInvalidate(o *node, unit uint64) {
	first := unit << s.unitShift
	for i := 0; i < s.linesPerUnit; i++ {
		o.cpu.L1SnoopProbes++
		o.l1.Invalidate(first + uint64(i))
	}
}

// fillL2Unit installs a unit arriving from the bus, evicting a victim
// block if the set is full and notifying the filter bank of every tag
// event. It returns the unit's frame.
func (s *System) fillL2Unit(n *node, unit, block uint64, st cache.State) cache.Frame {
	ev, allocated, f := n.l2.EnsureFrame(block)
	if ev != nil {
		s.handleEviction(n, ev)
	}
	if allocated {
		n.l2c.TagAllocs++
		for _, fl := range n.bank.ijs {
			fl.BlockAllocated(block)
		}
		for _, fl := range n.bank.hjs {
			fl.BlockAllocated(block)
		}
		for _, fl := range n.bank.gen {
			fl.BlockAllocated(block)
		}
	}
	n.l2.SetStateAt(f, unit, st)
	n.l2.TouchAt(f)
	n.l2c.LocalFills++
	// Only exclude structures react to unit fills (Include.Fill is a
	// no-op), but every filter is offered the event.
	for _, fl := range n.bank.ejs {
		fl.Fill(unit, block)
	}
	for _, fl := range n.bank.hjs {
		fl.Fill(unit, block)
	}
	for _, fl := range n.bank.gen {
		fl.Fill(unit, block)
	}
	return f
}

// handleEviction processes a block displaced from the L2: dirty units are
// written back to memory, covered L1 lines are invalidated (inclusion),
// and the filter bank learns of the deallocation. ev points into the
// evicting L2's scratch buffer; it stays valid here because eviction
// handling never allocates in that same L2 (writeback snoops only touch
// other nodes).
func (s *System) handleEviction(n *node, ev *cache.Eviction) {
	n.l2c.TagEvictions++
	n.blockEvictedFilters(ev.Block)
	for _, u := range ev.Units {
		if u.InL1 {
			s.l1SnoopInvalidate(n, u.Unit)
		}
		if !u.State.Dirty() {
			continue
		}
		// One writeback transaction per dirty unit; the whole bus snoops
		// it (an Owned departure can still hit surviving Shared copies).
		n.l2c.DirtyWBUnits++
		hits := 0
		for i := range s.nodes {
			o := &s.nodes[i]
			if o == n {
				continue
			}
			if s.snoop(o, u.Unit, ev.Block, bus.Writeback) {
				hits++
			}
		}
		s.bus.Record(bus.Writeback, hits)
	}
}
