package smp

import (
	"jetty/internal/bus"
	"jetty/internal/cache"
)

// busRead issues a BusRd for a load miss: every other CPU snoops; owners
// supply data and downgrade; the requester fills Shared (or Exclusive if
// no remote copies existed).
func (s *System) busRead(n *node, unit, block uint64) {
	remoteHits := 0
	for _, o := range s.nodes {
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.Read) {
			remoteHits++
		}
	}
	s.bus.Record(bus.Read, remoteHits)

	st := cache.Exclusive
	if remoteHits > 0 {
		st = cache.Shared
	}
	s.fillL2Unit(n, unit, block, st)
}

// busReadX issues a BusRdX for a store miss: remote copies are
// invalidated (owners supply the data on the way out); the requester
// fills Modified.
func (s *System) busReadX(n *node, unit, block uint64) {
	remoteHits := 0
	for _, o := range s.nodes {
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.ReadX) {
			remoteHits++
		}
	}
	s.bus.Record(bus.ReadX, remoteHits)
	s.fillL2Unit(n, unit, block, cache.Modified)
}

// busUpgrade issues a BusUpgr for a store hitting a Shared/Owned copy:
// remote copies are invalidated; the local unit becomes Modified without
// a data transfer.
func (s *System) busUpgrade(n *node, unit, block uint64) {
	remoteHits := 0
	for _, o := range s.nodes {
		if o == n {
			continue
		}
		if s.snoop(o, unit, block, bus.Upgrade) {
			remoteHits++
		}
	}
	s.bus.Record(bus.Upgrade, remoteHits)
	n.l2.SetUnitState(unit, cache.Modified)
	n.l2c.LocalStateWrite++
}

// snoop delivers one bus transaction to a remote node's hierarchy and
// returns whether that node held a copy (a "remote hit"). The JETTY
// filter bank observes every snoop; the protocol itself always proceeds
// (filtering would only have skipped the tag probe of snoops that miss,
// so outcomes are identical — this is what lets one pass measure every
// filter configuration).
func (s *System) snoop(o *node, unit, block uint64, kind bus.Kind) bool {
	o.l2c.Snoops++

	st := o.l2.UnitState(unit)
	present := st.Valid()
	blockAbsent := !present && !o.l2.HasBlock(block)

	// Filter bank observes (and is checked for safety violations).
	for i, f := range o.filters {
		if f.Probe(unit, block) {
			if present {
				o.unsafeFl[i]++
			}
		} else if !present {
			f.SnoopMiss(unit, block, blockAbsent)
		}
	}

	if !present {
		o.l2c.SnoopMisses++
		return false
	}
	o.l2c.SnoopHits++

	switch kind {
	case bus.Writeback:
		// Address check only: the departing owner's data goes to memory;
		// surviving Shared copies stay valid.

	case bus.Read:
		if st.CanSupply() {
			o.l2c.SnoopSupplies++
			// The freshest data may sit in a dirty L1 line (inclusion
			// hint): probing it is an L1 access, and the line downgrades
			// to clean as the L2 takes ownership of the merged data.
			if o.l2.InL1(unit) {
				s.l1SnoopClean(o, unit)
			}
		}
		var next cache.State
		switch st {
		case cache.Modified, cache.Owned:
			next = cache.Owned // MOESI: dirty data stays on-chip, shared
		case cache.Exclusive, cache.Shared:
			next = cache.Shared
		}
		if next != st {
			o.l2.SetUnitState(unit, next)
			o.l2c.SnoopStateWrites++
		}

	case bus.ReadX, bus.Upgrade:
		if kind == bus.ReadX && st.CanSupply() {
			o.l2c.SnoopSupplies++
		}
		if o.l2.InL1(unit) {
			s.l1SnoopInvalidate(o, unit)
		}
		_, freed := o.l2.InvalidateUnit(unit)
		o.l2c.SnoopStateWrites++
		if freed {
			o.l2c.TagEvictions++
			for _, f := range o.filters {
				f.BlockEvicted(block)
			}
		}
	}
	return true
}

// l1SnoopClean probes the L1 lines covering a unit, cleans any dirty one
// (its data merges into the L2 copy being supplied) and drops the
// exclusivity hints: the unit is being downgraded out of M/E.
func (s *System) l1SnoopClean(o *node, unit uint64) {
	first, count := s.linesOfUnit(unit)
	for i := 0; i < count; i++ {
		o.cpu.L1SnoopProbes++
		o.l1.Clean(first + uint64(i))
		o.l1.ClearExclusive(first + uint64(i))
	}
}

// l1SnoopInvalidate removes the L1 lines covering a unit (inclusion).
func (s *System) l1SnoopInvalidate(o *node, unit uint64) {
	first, count := s.linesOfUnit(unit)
	for i := 0; i < count; i++ {
		o.cpu.L1SnoopProbes++
		o.l1.Invalidate(first + uint64(i))
	}
	o.l2.SetInL1(unit, false)
}

// fillL2Unit installs a unit arriving from the bus, evicting a victim
// block if the set is full and notifying the filter bank of every tag
// event.
func (s *System) fillL2Unit(n *node, unit, block uint64, st cache.State) {
	ev, allocated := n.l2.EnsureBlock(block)
	if ev != nil {
		s.handleEviction(n, ev)
	}
	if allocated {
		n.l2c.TagAllocs++
		for _, f := range n.filters {
			f.BlockAllocated(block)
		}
	}
	n.l2.SetUnitState(unit, st)
	n.l2.Touch(block)
	n.l2c.LocalFills++
	for _, f := range n.filters {
		f.Fill(unit, block)
	}
}

// handleEviction processes a block displaced from the L2: dirty units are
// written back to memory, covered L1 lines are invalidated (inclusion),
// and the filter bank learns of the deallocation.
func (s *System) handleEviction(n *node, ev *cache.Eviction) {
	n.l2c.TagEvictions++
	for _, f := range n.filters {
		f.BlockEvicted(ev.Block)
	}
	for _, u := range ev.Units {
		if u.InL1 {
			s.l1SnoopInvalidate(n, u.Unit)
		}
		if !u.State.Dirty() {
			continue
		}
		// One writeback transaction per dirty unit; the whole bus snoops
		// it (an Owned departure can still hit surviving Shared copies).
		n.l2c.DirtyWBUnits++
		hits := 0
		for _, o := range s.nodes {
			if o == n {
				continue
			}
			if s.snoop(o, u.Unit, ev.Block, bus.Writeback) {
				hits++
			}
		}
		s.bus.Record(bus.Writeback, hits)
	}
}
