package smp

import (
	"fmt"

	"jetty/internal/metrics"
)

// noSample is the nextSample value with no sampler attached: refs counts
// up by one from a smaller value, so the per-access equality check can
// never fire.
const noSample = ^uint64(0)

// SetSampler attaches an interval sampler (nil detaches). The sampler
// must be sized for this machine's filter bank; it panics otherwise
// (attachment is programmer-controlled, like New). Window boundaries
// land on multiples of the sampler's interval in total references
// processed; the first boundary is the next multiple after the current
// reference count, so attaching at construction time (refs == 0) yields
// windows [0,iv), [iv,2iv), ...
//
// Sampling is observation only — the sampler reads cumulative counters
// at boundaries and never touches machine state — so results with and
// without a sampler are bit-identical (internal/sim pins this).
func (s *System) SetSampler(sm *metrics.Sampler) {
	if sm == nil {
		s.sampler = nil
		s.nextSample = noSample
		return
	}
	if sm.FilterWidth() != len(s.cfg.Filters) {
		panic(fmt.Sprintf("smp: sampler sized for %d filters, machine has %d",
			sm.FilterWidth(), len(s.cfg.Filters)))
	}
	sm.Prime(s)
	s.sampler = sm
	iv := sm.Interval()
	s.nextSample = (s.refs/iv + 1) * iv
}

// Sampler returns the attached sampler (nil when none).
func (s *System) Sampler() *metrics.Sampler { return s.sampler }

// sampleWindow emits one window at an interval boundary. It is the cold
// side of the hot-path check in Step/StepBatch: one O(cpus × filters)
// counter sweep per interval, no allocation in steady state.
func (s *System) sampleWindow() {
	s.nextSample += s.sampler.Interval()
	s.sampler.Observe(s)
}
