// Package store is jettyd's crash-safe on-disk persistence layer: a
// content-addressed store for completed cell results, uploaded traces,
// and the journal of admitted-but-unfinished jobs (experiments and
// sweeps). It exists so a daemon restart — graceful or kill -9 — loses
// no completed simulation work: results persisted here act as an L3
// under the engine's in-memory LRU, traces reload into the trace
// registry, and journaled jobs are re-admitted and resumed on boot.
//
// Layout under the data directory:
//
//	MANIFEST                store-format version, {"version":1}
//	results/<key>.json      one completed engine result per cache key
//	traces/<digest>.jtrc    uploaded trace bytes, content-addressed
//	traces/<digest>.json    trace metadata (name, owning tenant)
//	jobs/<id>.json          journal entry for an unfinished job
//
// Write protocol (crash safety): every write goes to a temp file in the
// destination directory, is fsynced, closed, renamed over the final
// name, and the directory is fsynced. A crash at any point leaves
// either the old content or the new content at the final name — never a
// torn file — plus at worst an orphaned temp file, which Open sweeps.
// Reads defend in depth anyway: any entry that fails JSON validation is
// discarded individually (deleted and skipped), so one damaged entry
// never poisons recovery of its neighbours.
//
// A Store's methods are safe for concurrent use.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1

	resultsDir = "results"
	tracesDir  = "traces"
	jobsDir    = "jobs"

	resultExt    = ".json"
	traceDataExt = ".jtrc"
	traceMetaExt = ".json"
	jobExt       = ".json"

	tmpPrefix = ".tmp-"
)

// manifest is the versioned store descriptor. Open refuses directories
// written by a future store format rather than misreading them; a
// missing or corrupt manifest is rewritten (it carries no state beyond
// the version).
type manifest struct {
	Version int `json:"version"`
}

// TraceMeta is the sidecar metadata persisted next to a trace's bytes:
// what the registry needs to re-admit the trace on boot beyond the
// content itself.
type TraceMeta struct {
	Name   string `json:"name"`
	Tenant string `json:"tenant,omitempty"`
}

// TraceEntry is one persisted trace as returned by Traces.
type TraceEntry struct {
	Digest string
	Meta   TraceMeta
	Data   []byte
}

// Stats is a point-in-time snapshot of the store for /metrics.
type Stats struct {
	Results     int    // result entries on disk
	Traces      int    // trace entries on disk
	PendingJobs int    // journaled unfinished jobs
	Hits        uint64 // GetResult calls served from disk
	Writes      uint64 // successful atomic writes (all kinds)
	Errors      uint64 // failed writes/deletes and discarded corrupt entries
}

// Store is a handle on one data directory.
type Store struct {
	dir string

	mu      sync.Mutex
	results map[string]struct{} // result keys known on disk
	traces  map[string]struct{} // trace digests known on disk
	jobs    map[string]struct{} // journaled job ids
	hits    uint64
	writes  uint64
	errors  uint64
}

// Open creates (or reopens) the store rooted at dir. It creates the
// directory tree, validates the manifest version, sweeps temp files
// left by a crash mid-write, and indexes the surviving entries.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, resultsDir), filepath.Join(dir, tracesDir), filepath.Join(dir, jobsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:     dir,
		results: make(map[string]struct{}),
		traces:  make(map[string]struct{}),
		jobs:    make(map[string]struct{}),
	}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	s.sweepTemp()
	s.index()
	return s, nil
}

// Dir reports the directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// checkManifest enforces the format version. A readable manifest from a
// future version is a hard error (the directory belongs to a newer
// daemon); a missing or torn manifest is rewritten in place — it holds
// only the version, so recovery is just "stamp it again".
func (s *Store) checkManifest() error {
	path := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(path)
	if err == nil && json.Valid(data) {
		var m manifest
		if json.Unmarshal(data, &m) == nil && m.Version > 0 {
			if m.Version > manifestVersion {
				return fmt.Errorf("store: %s version %d is newer than supported %d", path, m.Version, manifestVersion)
			}
			return nil
		}
	}
	fresh, _ := json.Marshal(manifest{Version: manifestVersion})
	if err := s.writeAtomic(path, fresh); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	return nil
}

// sweepTemp removes temp files orphaned by a crash between create and
// rename. They are invisible to reads either way; this just reclaims
// the space.
func (s *Store) sweepTemp() {
	for _, d := range []string{s.dir, filepath.Join(s.dir, resultsDir), filepath.Join(s.dir, tracesDir), filepath.Join(s.dir, jobsDir)} {
		ents, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				_ = os.Remove(filepath.Join(d, e.Name()))
			}
		}
	}
}

// index builds the in-memory key sets from the directory listing, so
// GetResult misses don't hit the filesystem and Stats is a map read.
func (s *Store) index() {
	if ents, err := os.ReadDir(filepath.Join(s.dir, resultsDir)); err == nil {
		for _, e := range ents {
			if key, ok := strings.CutSuffix(e.Name(), resultExt); ok && key != "" {
				s.results[key] = struct{}{}
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(s.dir, tracesDir)); err == nil {
		for _, e := range ents {
			if digest, ok := strings.CutSuffix(e.Name(), traceDataExt); ok && digest != "" {
				s.traces[digest] = struct{}{}
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(s.dir, jobsDir)); err == nil {
		for _, e := range ents {
			if id, ok := strings.CutSuffix(e.Name(), jobExt); ok && id != "" {
				s.jobs[id] = struct{}{}
			}
		}
	}
}

// validName rejects names that would escape the store's directories or
// collide with its temp files. Engine keys are SHA-256 hex (optionally
// with a "#tl<n>" sampling suffix), digests are hex, job ids are
// "exp-NNNNNN"/"swp-NNNNNN" — all pass; anything pathological does not.
func validName(name string) bool {
	if name == "" || len(name) > 255-len(resultExt) {
		return false
	}
	if strings.ContainsAny(name, "/\x00") || strings.HasPrefix(name, ".") {
		return false
	}
	return true
}

// writeAtomic writes data to path via the temp+fsync+rename+dir-fsync
// protocol described in the package comment.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// put is the shared write path: atomic write plus index/counter upkeep.
func (s *Store) put(path, name string, data []byte, set map[string]struct{}) error {
	if !validName(name) {
		s.countError()
		return fmt.Errorf("store: invalid name %q", name)
	}
	if err := s.writeAtomic(path, data); err != nil {
		s.countError()
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	set[name] = struct{}{}
	s.writes++
	s.mu.Unlock()
	return nil
}

// remove deletes an entry's file(s) and forgets it; missing files are
// not an error (delete is idempotent).
func (s *Store) remove(name string, set map[string]struct{}, paths ...string) error {
	var firstErr error
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Lock()
	delete(set, name)
	s.mu.Unlock()
	if firstErr != nil {
		s.countError()
		return fmt.Errorf("store: %w", firstErr)
	}
	return nil
}

func (s *Store) countError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

// PutResult persists one completed result under its engine cache key.
// data must be the result's JSON encoding (GetResult validates it on
// the way back out).
func (s *Store) PutResult(key string, data []byte) error {
	return s.put(filepath.Join(s.dir, resultsDir, key+resultExt), key, data, s.results)
}

// GetResult returns the persisted result for key, or ok=false on a
// miss. An entry that exists but fails JSON validation — a torn write
// that somehow survived the atomic protocol, or outside corruption — is
// deleted and reported as a miss, so the engine recomputes and
// overwrites it.
func (s *Store) GetResult(key string) ([]byte, bool) {
	if !validName(key) {
		return nil, false
	}
	s.mu.Lock()
	_, known := s.results[key]
	s.mu.Unlock()
	if !known {
		return nil, false
	}
	path := filepath.Join(s.dir, resultsDir, key+resultExt)
	data, err := os.ReadFile(path)
	if err != nil || !json.Valid(data) {
		_ = s.remove(key, s.results, path)
		s.countError()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return data, true
}

// DeleteResult removes one persisted result (used when a decoded result
// turns out stale or unreadable at a higher layer).
func (s *Store) DeleteResult(key string) error {
	if !validName(key) {
		return fmt.Errorf("store: invalid name %q", key)
	}
	return s.remove(key, s.results, filepath.Join(s.dir, resultsDir, key+resultExt))
}

// PutTrace persists an uploaded trace: its raw bytes under the digest,
// and a metadata sidecar with the registry name and owning tenant. The
// meta file is written first so a crash between the two leaves a
// harmless orphan sidecar rather than a trace with no name.
func (s *Store) PutTrace(digest string, data []byte, meta TraceMeta) error {
	if !validName(digest) {
		s.countError()
		return fmt.Errorf("store: invalid name %q", digest)
	}
	mdata, err := json.Marshal(meta)
	if err != nil {
		s.countError()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeAtomic(filepath.Join(s.dir, tracesDir, digest+traceMetaExt), mdata); err != nil {
		s.countError()
		return fmt.Errorf("store: %w", err)
	}
	return s.put(filepath.Join(s.dir, tracesDir, digest+traceDataExt), digest, data, s.traces)
}

// DeleteTrace removes a trace and its metadata sidecar.
func (s *Store) DeleteTrace(digest string) error {
	if !validName(digest) {
		return fmt.Errorf("store: invalid name %q", digest)
	}
	return s.remove(digest, s.traces,
		filepath.Join(s.dir, tracesDir, digest+traceDataExt),
		filepath.Join(s.dir, tracesDir, digest+traceMetaExt))
}

// Traces returns every persisted trace in digest order. Entries whose
// metadata sidecar is missing or torn are discarded individually; the
// caller re-validates the trace bytes themselves (the JTRC framing has
// its own integrity checks) and should DeleteTrace anything unreadable.
func (s *Store) Traces() []TraceEntry {
	s.mu.Lock()
	digests := make([]string, 0, len(s.traces))
	for d := range s.traces {
		digests = append(digests, d)
	}
	s.mu.Unlock()
	sort.Strings(digests)

	var out []TraceEntry
	for _, digest := range digests {
		dataPath := filepath.Join(s.dir, tracesDir, digest+traceDataExt)
		metaPath := filepath.Join(s.dir, tracesDir, digest+traceMetaExt)
		data, derr := os.ReadFile(dataPath)
		mdata, merr := os.ReadFile(metaPath)
		var meta TraceMeta
		if derr != nil || merr != nil || !json.Valid(mdata) || json.Unmarshal(mdata, &meta) != nil {
			_ = s.DeleteTrace(digest)
			s.countError()
			continue
		}
		out = append(out, TraceEntry{Digest: digest, Meta: meta, Data: data})
	}
	return out
}

// PutJob journals one admitted job (experiment or sweep) under its id.
// The entry lives until the job finishes successfully or is explicitly
// canceled; a daemon that boots with entries still present re-admits
// and resumes them.
func (s *Store) PutJob(id string, data []byte) error {
	return s.put(filepath.Join(s.dir, jobsDir, id+jobExt), id, data, s.jobs)
}

// DeleteJob removes a journal entry (job finished or canceled).
func (s *Store) DeleteJob(id string) error {
	if !validName(id) {
		return fmt.Errorf("store: invalid name %q", id)
	}
	return s.remove(id, s.jobs, filepath.Join(s.dir, jobsDir, id+jobExt))
}

// Jobs returns the surviving journal entries keyed by id. Entries that
// fail JSON validation are deleted and skipped — one torn journal entry
// costs that job, not the whole recovery.
func (s *Store) Jobs() map[string][]byte {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()

	out := make(map[string][]byte, len(ids))
	for _, id := range ids {
		path := filepath.Join(s.dir, jobsDir, id+jobExt)
		data, err := os.ReadFile(path)
		if err != nil || !json.Valid(data) {
			_ = s.DeleteJob(id)
			s.countError()
			continue
		}
		out[id] = data
	}
	return out
}

// Stats snapshots the store's counters for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Results:     len(s.results),
		Traces:      len(s.traces),
		PendingJobs: len(s.jobs),
		Hits:        s.hits,
		Writes:      s.writes,
		Errors:      s.errors,
	}
}
