package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestResultRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	key := "deadbeef#tl1024"
	payload := []byte(`{"refs":42,"hit":0.5}`)
	if err := s.PutResult(key, payload); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	got, ok := s.GetResult(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetResult = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.GetResult("cafebabe"); ok {
		t.Fatalf("GetResult(miss) = true; want false")
	}

	// A fresh Store over the same directory — the restart case — must
	// index and serve the same entry.
	s2 := mustOpen(t, dir)
	got, ok = s2.GetResult(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: GetResult = %q, %v; want %q, true", got, ok, payload)
	}
	st := s2.Stats()
	if st.Results != 1 || st.Hits != 1 {
		t.Fatalf("Stats = %+v; want Results=1 Hits=1", st)
	}
}

func TestOverwriteIsAtomicAndLastWins(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := "abc123"
	if err := s.PutResult(key, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult(key, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetResult(key)
	if !ok || string(got) != `{"v":2}` {
		t.Fatalf("GetResult = %q, %v; want {\"v\":2}", got, ok)
	}
	if st := s.Stats(); st.Results != 1 {
		t.Fatalf("Results = %d after overwrite; want 1", st.Results)
	}
}

func TestCorruptResultDiscardedIndividually(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutResult("good", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("torn", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: truncate the file mid-token.
	tornPath := filepath.Join(dir, resultsDir, "torn"+resultExt)
	if err := os.WriteFile(tornPath, []byte(`{"v":`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if _, ok := s2.GetResult("torn"); ok {
		t.Fatalf("torn entry served as valid")
	}
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Fatalf("torn entry not deleted (err=%v)", err)
	}
	got, ok := s2.GetResult("good")
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("good entry lost alongside torn one: %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Errors == 0 {
		t.Fatalf("discarding a corrupt entry should count an error; Stats=%+v", st)
	}
}

func TestTraceRoundTripAndDelete(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	meta := TraceMeta{Name: "ocean", Tenant: "ci"}
	if err := s.PutTrace("d1", []byte("JTRC-bytes-1"), meta); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace("d0", []byte("JTRC-bytes-0"), TraceMeta{Name: "lu"}); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	got := s2.Traces()
	if len(got) != 2 || got[0].Digest != "d0" || got[1].Digest != "d1" {
		t.Fatalf("Traces = %+v; want d0,d1 in digest order", got)
	}
	if got[1].Meta != meta || string(got[1].Data) != "JTRC-bytes-1" {
		t.Fatalf("trace d1 round-trip mismatch: %+v", got[1])
	}

	if err := s2.DeleteTrace("d1"); err != nil {
		t.Fatal(err)
	}
	if err := s2.DeleteTrace("d1"); err != nil {
		t.Fatalf("second delete should be idempotent: %v", err)
	}
	if got := s2.Traces(); len(got) != 1 || got[0].Digest != "d0" {
		t.Fatalf("after delete: %+v", got)
	}
}

func TestTraceWithTornMetaDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutTrace("keep", []byte("data"), TraceMeta{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace("drop", []byte("data"), TraceMeta{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tracesDir, "drop"+traceMetaExt), []byte(`{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	got := s2.Traces()
	if len(got) != 1 || got[0].Digest != "keep" {
		t.Fatalf("Traces = %+v; want only keep", got)
	}
}

func TestJobJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutJob("swp-000001", []byte(`{"id":"swp-000001","kind":"sweep"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob("exp-000002", []byte(`{"id":"exp-000002","kind":"experiment"}`)); err != nil {
		t.Fatal(err)
	}
	// A torn journal entry: written directly, never through the atomic
	// path, truncated mid-object.
	if err := os.WriteFile(filepath.Join(dir, jobsDir, "swp-000003"+jobExt), []byte(`{"id":"swp-0`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	jobs := s2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("Jobs = %v; want exactly the 2 intact entries", jobs)
	}
	if _, ok := jobs["swp-000003"]; ok {
		t.Fatalf("torn journal entry survived")
	}
	if st := s2.Stats(); st.PendingJobs != 2 {
		t.Fatalf("PendingJobs = %d; want 2", st.PendingJobs)
	}

	if err := s2.DeleteJob("swp-000001"); err != nil {
		t.Fatal(err)
	}
	if jobs := s2.Jobs(); len(jobs) != 1 {
		t.Fatalf("after delete: %v", jobs)
	}
}

func TestManifestVersioning(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir)
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || json.Unmarshal(data, &m) != nil || m.Version != manifestVersion {
		t.Fatalf("manifest after Open: %q err=%v", data, err)
	}

	// A future-format directory must be refused, not misread.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("Open with future manifest: err=%v; want version error", err)
	}

	// A torn manifest is recoverable: it carries only the version.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if data, _ := os.ReadFile(filepath.Join(dir, manifestName)); !json.Valid(data) {
		t.Fatalf("manifest not rewritten after corruption: %q", data)
	}
	_ = s
}

func TestTempFilesSweptAndInvisible(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutResult("k", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Orphan temp file, as a crash between create and rename leaves.
	orphan := filepath.Join(dir, resultsDir, tmpPrefix+"orphan")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file not swept")
	}
	if st := s2.Stats(); st.Results != 1 {
		t.Fatalf("temp file counted as entry: %+v", st)
	}

	// No temp files linger after normal writes.
	ents, err := os.ReadDir(filepath.Join(dir, resultsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", strings.Repeat("x", 300)} {
		if err := s.PutResult(bad, []byte(`{}`)); err == nil {
			t.Fatalf("PutResult(%q) accepted", bad)
		}
		if _, ok := s.GetResult(bad); ok {
			t.Fatalf("GetResult(%q) hit", bad)
		}
	}
}
