package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		g    Geometry
		ok   bool
		name string
	}{
		{Subblocked, true, "subblocked"},
		{NonSubblocked, true, "non-subblocked"},
		{Geometry{BlockBytes: 32, UnitsPerBlock: 1}, true, "32B"},
		{Geometry{BlockBytes: 0, UnitsPerBlock: 1}, false, "zero block"},
		{Geometry{BlockBytes: 48, UnitsPerBlock: 1}, false, "non-pow2 block"},
		{Geometry{BlockBytes: 64, UnitsPerBlock: 3}, false, "non-pow2 units"},
		{Geometry{BlockBytes: 64, UnitsPerBlock: 128}, false, "units exceed bytes"},
		{Geometry{BlockBytes: 64, UnitsPerBlock: 0}, false, "zero units"},
	}
	for _, c := range cases {
		if err := c.g.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSubblockedGeometry(t *testing.T) {
	g := Subblocked
	if got := g.UnitBytes(); got != 32 {
		t.Fatalf("UnitBytes = %d, want 32", got)
	}
	if got := g.BlockOffsetBits(); got != 6 {
		t.Errorf("BlockOffsetBits = %d, want 6", got)
	}
	if got := g.UnitOffsetBits(); got != 5 {
		t.Errorf("UnitOffsetBits = %d, want 5", got)
	}
	if got := g.BlockAddrBits(); got != 30 {
		t.Errorf("BlockAddrBits = %d, want 30", got)
	}
	if got := g.UnitAddrBits(); got != 31 {
		t.Errorf("UnitAddrBits = %d, want 31", got)
	}
}

func TestBlockUnitMapping(t *testing.T) {
	g := Subblocked
	// Byte 0..31 -> unit 0, block 0; byte 32..63 -> unit 1, block 0;
	// byte 64 -> unit 2, block 1.
	cases := []struct {
		a            Addr
		block, unit  uint64
		unitIdx      int
		blkBase      Addr
		unitBaseAddr Addr
	}{
		{0, 0, 0, 0, 0, 0},
		{31, 0, 0, 0, 0, 0},
		{32, 0, 1, 1, 0, 32},
		{63, 0, 1, 1, 0, 32},
		{64, 1, 2, 0, 64, 64},
		{100, 1, 3, 1, 64, 96},
	}
	for _, c := range cases {
		if got := g.Block(c.a); got != c.block {
			t.Errorf("Block(%d) = %d, want %d", c.a, got, c.block)
		}
		if got := g.Unit(c.a); got != c.unit {
			t.Errorf("Unit(%d) = %d, want %d", c.a, got, c.unit)
		}
		if got := g.UnitIndex(c.a); got != c.unitIdx {
			t.Errorf("UnitIndex(%d) = %d, want %d", c.a, got, c.unitIdx)
		}
		if got := g.BlockBase(c.a); got != c.blkBase {
			t.Errorf("BlockBase(%d) = %d, want %d", c.a, got, c.blkBase)
		}
		if got := g.UnitBase(c.a); got != c.unitBaseAddr {
			t.Errorf("UnitBase(%d) = %d, want %d", c.a, got, c.unitBaseAddr)
		}
	}
}

func TestUnitBlockRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := raw & PhysMask
		g := Subblocked
		u := g.Unit(a)
		b := g.Block(a)
		if g.BlockOfUnit(u) != b {
			return false
		}
		return g.UnitOfBlock(b, g.UnitIndex(a)) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhysMaskApplied(t *testing.T) {
	g := NonSubblocked
	// Addresses above 2^36 must wrap into the physical space.
	hi := uint64(1)<<40 | 128
	if got, want := g.Block(hi), uint64(128/64); got != want {
		t.Errorf("Block(high addr) = %d, want %d", got, want)
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {4, 2}, {64, 6}, {1024, 10}, {1 << 36, 36}}
	for _, c := range cases {
		if got := Log2(c.v); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []int{0, -1, 3, 6, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestBits(t *testing.T) {
	v := uint64(0b1101_0110)
	cases := []struct {
		lo, width int
		want      uint64
	}{
		{0, 4, 0b0110},
		{4, 4, 0b1101},
		{1, 3, 0b011},
		{0, 0, 0},
		{2, 64, v >> 2},
	}
	for _, c := range cases {
		if got := Bits(v, c.lo, c.width); got != c.want {
			t.Errorf("Bits(%b,%d,%d) = %b, want %b", v, c.lo, c.width, got, c.want)
		}
	}
}

func TestBitsReassembly(t *testing.T) {
	// Property: concatenating two adjacent fields reconstructs the original.
	f := func(v uint64, split uint8) bool {
		s := int(split % 63)
		lo := Bits(v, 0, s)
		hi := Bits(v, s, 64-s)
		return hi<<uint(s)|lo == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGeometryUnit(b *testing.B) {
	g := Subblocked
	r := rand.New(rand.NewSource(1))
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = r.Uint64() & PhysMask
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Unit(addrs[i%len(addrs)])
	}
	_ = sink
}
