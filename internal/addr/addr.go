package addr

import "fmt"

// PhysBits is the number of physical address bits (IA-32-like, per paper §2.1).
const PhysBits = 36

// PhysMask masks a uint64 down to the physical address space.
const PhysMask = (uint64(1) << PhysBits) - 1

// Addr is a byte-granularity physical address.
type Addr = uint64

// Geometry describes the block/subblock organization of the L2, which
// defines the two address granularities the system cares about:
//
//   - the coherence unit ("unit"): the subblock at which MOESI state is kept
//   - the block: the L2 allocation/tag granularity
//
// With subblocking (the paper's base config) a 64-byte block holds two
// 32-byte units; without subblocking the two granularities coincide.
type Geometry struct {
	BlockBytes    int // L2 block (tag) size in bytes; power of two
	UnitsPerBlock int // coherence units per block; power of two, >= 1
}

// Subblocked is the paper's base geometry: 64-byte L2 blocks made of two
// 32-byte coherence subblocks.
var Subblocked = Geometry{BlockBytes: 64, UnitsPerBlock: 2}

// NonSubblocked is the paper's "NSB" comparison geometry: 64-byte blocks
// with coherence kept at whole-block granularity.
var NonSubblocked = Geometry{BlockBytes: 64, UnitsPerBlock: 1}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.BlockBytes <= 0 || g.BlockBytes&(g.BlockBytes-1) != 0 {
		return fmt.Errorf("addr: BlockBytes %d is not a positive power of two", g.BlockBytes)
	}
	if g.UnitsPerBlock <= 0 || g.UnitsPerBlock&(g.UnitsPerBlock-1) != 0 {
		return fmt.Errorf("addr: UnitsPerBlock %d is not a positive power of two", g.UnitsPerBlock)
	}
	if g.UnitBytes() < 1 {
		return fmt.Errorf("addr: block of %d bytes cannot hold %d units", g.BlockBytes, g.UnitsPerBlock)
	}
	return nil
}

// UnitBytes returns the coherence-unit size in bytes.
func (g Geometry) UnitBytes() int { return g.BlockBytes / g.UnitsPerBlock }

// Block returns the block number containing byte address a.
func (g Geometry) Block(a Addr) uint64 { return (a & PhysMask) / uint64(g.BlockBytes) }

// Unit returns the coherence-unit number containing byte address a.
func (g Geometry) Unit(a Addr) uint64 { return (a & PhysMask) / uint64(g.UnitBytes()) }

// UnitIndex returns which unit within its block the byte address falls in.
func (g Geometry) UnitIndex(a Addr) int {
	return int(g.Unit(a) % uint64(g.UnitsPerBlock))
}

// BlockOfUnit returns the block number containing the given unit number.
func (g Geometry) BlockOfUnit(unit uint64) uint64 { return unit / uint64(g.UnitsPerBlock) }

// UnitOfBlock returns the unit number of unit idx within block.
func (g Geometry) UnitOfBlock(block uint64, idx int) uint64 {
	return block*uint64(g.UnitsPerBlock) + uint64(idx)
}

// BlockBase returns the first byte address of the block containing a.
func (g Geometry) BlockBase(a Addr) Addr { return g.Block(a) * uint64(g.BlockBytes) }

// UnitBase returns the first byte address of the unit containing a.
func (g Geometry) UnitBase(a Addr) Addr { return g.Unit(a) * uint64(g.UnitBytes()) }

// BlockOffsetBits returns log2(BlockBytes), the number of block-offset bits.
func (g Geometry) BlockOffsetBits() int { return Log2(uint64(g.BlockBytes)) }

// UnitOffsetBits returns log2(UnitBytes), the number of unit-offset bits.
func (g Geometry) UnitOffsetBits() int { return Log2(uint64(g.UnitBytes())) }

// BlockAddrBits returns how many bits a block number occupies.
func (g Geometry) BlockAddrBits() int { return PhysBits - g.BlockOffsetBits() }

// UnitAddrBits returns how many bits a unit number occupies.
func (g Geometry) UnitAddrBits() int { return PhysBits - g.UnitOffsetBits() }

// Log2 returns floor(log2(v)) for v > 0, and 0 for v == 0. For the powers
// of two used throughout the simulator this is the exact bit width.
func Log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Bits extracts bit field [lo, lo+width) of v.
func Bits(v uint64, lo, width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return v >> uint(lo)
	}
	return (v >> uint(lo)) & ((uint64(1) << uint(width)) - 1)
}
