// Package addr provides physical-address arithmetic shared by the
// cache, jetty and workload packages.
//
// The simulated machine uses an IA-32-like 36-bit physical address space
// (as the paper assumes for tag sizing; PhysBits/PhysMask). Addresses
// are byte addresses held in a uint64. Geometry describes the L2's
// block/subblock organization, which defines the two granularities the
// whole system converts between: the coherence unit (the subblock at
// which MOESI state is kept) and the block (the L2 allocation/tag
// granularity). The paper's base machine is Subblocked (64-byte blocks
// of two 32-byte units); NonSubblocked is its §4.3 comparison point.
//
// Geometry's conversion methods divide and are fine for configuration
// and analysis code; the simulator's per-reference path precomputes the
// equivalent shifts once (see internal/smp and PERFORMANCE.md) — Log2,
// IsPow2 and Bits are the helpers it derives them with.
package addr
