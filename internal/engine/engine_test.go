package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// value wraps a Task returning v under the given key.
func value(key string, v int) Task {
	return Task{
		Key: key,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			return v, nil
		},
	}
}

func TestSubmitAndWait(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	j := e.Submit(value("k1", 42))
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 42 {
		t.Fatalf("result = %v, want 42", res)
	}
	st := j.Status()
	if st.State != Done || st.Fraction() != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestWorkersRunInParallel(t *testing.T) {
	const n = 4
	e := New(Options{Workers: n})
	defer e.Close()

	// All n tasks block until all n are running: only possible if the
	// pool really runs them concurrently.
	var running atomic.Int32
	release := make(chan struct{})
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = e.Submit(Task{
			Key: fmt.Sprintf("par-%d", i),
			Run: func(ctx context.Context, report func(uint64)) (any, error) {
				if running.Add(1) == n {
					close(release)
				}
				select {
				case <-release:
					return nil, nil
				case <-time.After(5 * time.Second):
					return nil, errors.New("pool never reached full concurrency")
				}
			},
		})
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheHit(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	var runs atomic.Int32
	task := Task{
		Key: "cached",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			runs.Add(1)
			return "result", nil
		},
	}
	if _, err := e.Submit(task).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	j := e.Submit(task)
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.(string) != "result" {
		t.Fatalf("cached result = %v", res)
	}
	if !j.Status().CacheHit {
		t.Error("second submission should report CacheHit")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("task ran %d times, want 1", got)
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.Executed != 1 || st.Submitted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{Workers: 1, CacheEntries: -1})
	defer e.Close()

	var runs atomic.Int32
	task := Task{
		Key: "uncached",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			runs.Add(1)
			return nil, nil
		},
	}
	e.Submit(task).Wait(context.Background())
	e.Submit(task).Wait(context.Background())
	if got := runs.Load(); got != 2 {
		t.Errorf("task ran %d times, want 2 with caching disabled", got)
	}
}

func TestInflightDeduplication(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	task := Task{
		Key: "dedup",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			runs.Add(1)
			close(started)
			<-release
			return 7, nil
		},
	}
	j1 := e.Submit(task)
	<-started // the run is in flight
	j2 := e.Submit(task)
	close(release)

	for _, j := range []*Job{j1, j2} {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != 7 {
			t.Fatalf("result = %v", res)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("task ran %d times, want 1", got)
	}
	if st := e.Stats(); st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1", st.Coalesced)
	}
}

// blockingTask runs until its context is canceled.
func blockingTask(key string, started chan<- struct{}) Task {
	return Task{
		Key: key,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			if started != nil {
				started <- struct{}{}
			}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{}, 1)
	j := e.Submit(blockingTask("cancel-me", started))
	<-started
	j.Cancel()
	_, err := j.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := j.Status(); st.State != Canceled {
		t.Errorf("state = %v, want canceled", st.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{}, 1)
	blocker := e.Submit(blockingTask("blocker", started))
	<-started // the only worker is now occupied

	queued := e.Submit(value("queued", 1))
	queued.Cancel()
	blocker.Cancel()

	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", err)
	}
	blocker.Wait(context.Background())
}

func TestSharedExecutionCancelNeedsAllHandles(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	task := Task{
		Key: "shared",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			started <- struct{}{}
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	j1 := e.Submit(task)
	<-started
	j2 := e.Submit(task) // coalesces onto j1's execution

	j1.Cancel() // one of two handles: the run must keep going
	close(release)
	res, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatalf("surviving handle failed: %v", err)
	}
	if res.(string) != "ok" {
		t.Fatalf("result = %v", res)
	}
}

func TestResubmitAfterCancelGetsFreshExecution(t *testing.T) {
	e := New(Options{Workers: 1, CacheEntries: -1})
	defer e.Close()

	// Occupy the worker so the submissions below stay queued.
	started := make(chan struct{}, 1)
	blocker := e.Submit(blockingTask("blocker", started))
	<-started

	doomed := e.Submit(value("contested", 1))
	doomed.Cancel() // canceled while queued, not yet retired by a worker

	// An innocent submitter of the same key must NOT inherit the
	// cancellation: it gets a fresh execution.
	fresh := e.Submit(value("contested", 2))
	blocker.Cancel()
	blocker.Wait(context.Background())

	if _, err := doomed.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed err = %v, want context.Canceled", err)
	}
	res, err := fresh.Wait(context.Background())
	if err != nil {
		t.Fatalf("fresh submission inherited cancellation: %v", err)
	}
	if res.(int) != 2 {
		t.Fatalf("fresh result = %v, want 2", res)
	}
	if st := e.Stats(); st.Coalesced != 0 {
		t.Errorf("Coalesced = %d, want 0 (must not coalesce onto a canceled run)", st.Coalesced)
	}
}

func TestWaitContextExpiry(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{}, 1)
	j := e.Submit(blockingTask("slow", started))
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v", err)
	}
	// The job itself must still be alive (Wait must not cancel it).
	if st := j.Status(); st.State != Running {
		t.Errorf("state after abandoned Wait = %v, want running", st.State)
	}
	j.Cancel()
	j.Wait(context.Background())
}

func TestTaskError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	boom := errors.New("boom")
	j := e.Submit(Task{
		Key: "failing",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			return nil, boom
		},
	})
	if _, err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := j.Status(); st.State != Failed || st.Err != "boom" {
		t.Errorf("status = %+v", st)
	}
	// Failures are not cached: a resubmission runs again.
	j2 := e.Submit(Task{
		Key: "failing",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			return "recovered", nil
		},
	})
	res, err := j2.Wait(context.Background())
	if err != nil || res.(string) != "recovered" {
		t.Fatalf("resubmission = %v, %v", res, err)
	}
}

func TestProgressReporting(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	half := make(chan struct{})
	release := make(chan struct{})
	j := e.Submit(Task{
		Key:   "progress",
		Total: 100,
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			report(50)
			close(half)
			<-release
			report(100)
			return nil, nil
		},
	})
	<-half
	if st := j.Status(); st.Done != 50 || st.Total != 100 || st.Fraction() != 0.5 {
		t.Errorf("mid-run status = %+v", st)
	}
	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.Fraction() != 1 {
		t.Errorf("final status = %+v", st)
	}
}

func TestClose(t *testing.T) {
	e := New(Options{Workers: 1})
	started := make(chan struct{}, 1)
	running := e.Submit(blockingTask("running", started))
	<-started
	queued := e.Submit(value("queued-at-close", 3))

	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain the pool")
	}

	if _, err := running.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("running job err = %v", err)
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("queued job err = %v", err)
	}
	if _, err := e.Submit(value("late", 9)).Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestManyConcurrentSubmitters(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()

	// 32 goroutines submitting 16 distinct keys: exercises dedup, cache
	// and the pool under the race detector.
	var wg sync.WaitGroup
	var executed atomic.Int32
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := fmt.Sprintf("shared-%d", i)
				j := e.Submit(Task{
					Key: key,
					Run: func(ctx context.Context, report func(uint64)) (any, error) {
						executed.Add(1)
						return key, nil
					},
				})
				res, err := j.Wait(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				if res.(string) != key {
					t.Errorf("got %v, want %s", res, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := executed.Load(); got != 16 {
		t.Errorf("executed %d distinct runs, want 16 (dedup+cache must absorb the rest)", got)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Queued: "queued", Running: "running", Done: "done",
		Failed: "failed", Canceled: "canceled", State(99): "invalid"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}
