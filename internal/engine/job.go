package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by jobs submitted to a closed engine.
var ErrClosed = errors.New("engine: closed")

// Task is one schedulable computation.
type Task struct {
	// Key is the task's content address. Two tasks with equal keys must
	// compute equal results: the engine deduplicates and caches by it.
	Key string

	// Kind labels the task for telemetry (per-kind latency histograms,
	// slow-job logs): "workload", "trace", "sweep", ... Not part of the
	// content address — two kinds submitting the same Key still share
	// one execution and one cache slot.
	Kind string

	// Origin is the request ID (or other correlation token) of the
	// submitter, carried into the task context (OriginFrom) and the
	// job's Status so telemetry ties back to the request that caused the
	// work. Not part of the content address; a coalesced execution keeps
	// its first submitter's origin.
	Origin string

	// Tenant names the submitter for fair-share scheduling: the queue
	// keeps one FIFO per tenant and drains them by weighted deficit
	// round-robin, so no tenant's backlog can starve another's work.
	// Like Origin it is not part of the content address — identical
	// tasks from different tenants still share one execution and one
	// cache slot (the result is tenant-independent by the Key contract),
	// and a coalesced execution keeps its first submitter's tenant. The
	// empty string is the default tenant.
	Tenant string

	// Total is the task's progress denominator (e.g. references to
	// simulate). 0 means progress is not reported.
	Total uint64

	// Run performs the computation. It must honor ctx (return ctx.Err()
	// promptly once canceled) and may call report with the number of
	// progress units completed so far.
	Run func(ctx context.Context, report func(done uint64)) (any, error)
}

// Dispositions: how a submission was satisfied.
const (
	DispositionExecuted  = "executed"  // ran (or will run) on a worker
	DispositionCacheHit  = "cache_hit" // served from the finished-result cache
	DispositionCoalesced = "coalesced" // attached to an identical in-flight run
	DispositionStoreHit  = "store_hit" // served from the persistent result store
)

// originKey carries Task.Origin in the task context.
type originKey struct{}

// OriginFrom returns the submitting request's origin (Task.Origin) from
// a task context, or "" when the task was submitted without one.
func OriginFrom(ctx context.Context) string {
	id, _ := ctx.Value(originKey{}).(string)
	return id
}

// tenantKey carries Task.Tenant in the task context.
type tenantKey struct{}

// TenantFrom returns the submitting tenant (Task.Tenant) from a task
// context, or "" when the task was submitted without one.
func TenantFrom(ctx context.Context) string {
	id, _ := ctx.Value(tenantKey{}).(string)
	return id
}

// State is the lifecycle of an execution.
type State int32

const (
	Queued State = iota
	Running
	Done
	Failed
	Canceled
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return "invalid"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Status is a point-in-time snapshot of a job.
type Status struct {
	Key      string
	State    State
	Done     uint64 // progress units completed
	Total    uint64 // progress denominator (0 = unknown)
	Err      string // non-empty iff State == Failed or Canceled
	CacheHit bool   // served from the finished-result cache

	// Disposition is how this handle's submission was satisfied:
	// DispositionExecuted, DispositionCacheHit, DispositionCoalesced or
	// DispositionStoreHit.
	Disposition string
	// Origin is the correlation token of the submission that created the
	// underlying execution (Task.Origin of the first submitter).
	Origin string
	// Tenant is the fair-share identity of the submission that created
	// the underlying execution (Task.Tenant of the first submitter).
	Tenant string
	// QueueWait is how long the execution sat queued before a worker
	// picked it up (live while queued, frozen once running). Zero for
	// cache hits.
	QueueWait time.Duration
	// Run is the execution's running time (live while running, frozen
	// once terminal). Zero for cache hits and never-run cancellations.
	Run time.Duration
}

// Fraction returns completed progress in 0..1 (1 when finished, 0 when
// the total is unknown and the job is still running).
func (s Status) Fraction() float64 {
	if s.State == Done {
		return 1
	}
	if s.Total == 0 {
		return 0
	}
	f := float64(s.Done) / float64(s.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// execution is one underlying run, shared by every handle whose Submit
// coalesced onto it.
type execution struct {
	task   Task
	ctx    context.Context
	cancel context.CancelFunc

	// group, when non-nil, marks this execution as a queued group-run
	// leader: a placeholder that carries a fused multi-member run to a
	// worker (see SubmitGroup). Leaders have no handles, task or context
	// of their own — the worker dispatches them to runGroup.
	group *groupRun

	state atomic.Int32
	done  atomic.Uint64
	total atomic.Uint64

	// Lifecycle timeline. submitted is written once before the execution
	// is published; startNS and finishNS are nanosecond offsets from
	// submitted (0 = not yet reached), written by the worker and read by
	// any number of Status snapshots.
	submitted time.Time
	startNS   atomic.Int64
	finishNS  atomic.Int64

	cacheHit bool
	// storeHit refines cacheHit: the result came from the persistent
	// store rather than the in-memory cache. Store hits behave like
	// cache hits everywhere (no queueing, no run, CacheHit=true in
	// Status) except in their disposition label.
	storeHit bool

	mu      sync.Mutex
	handles int  // live (not yet canceled) handles
	doomed  bool // last handle canceled; no further attachment allowed
	result  any
	err     error

	finished chan struct{}
}

func newExecution(t Task, ctx context.Context, cancel context.CancelFunc) *execution {
	ex := &execution{task: t, ctx: ctx, cancel: cancel, finished: make(chan struct{}), submitted: time.Now()}
	ex.total.Store(t.Total)
	return ex
}

// tenantName returns the execution's fair-share queue key: the task's
// tenant, or the group task's for a queued group-run leader.
func (ex *execution) tenantName() string {
	if ex.group != nil {
		return ex.group.task.Tenant
	}
	return ex.task.Tenant
}

// markStart records the queued→running transition (worker pickup).
func (ex *execution) markStart() { ex.startNS.Store(time.Since(ex.submitted).Nanoseconds()) }

// queueWait returns how long the execution sat queued: live while still
// queued, frozen at worker pickup (or at finish, for executions canceled
// before any worker saw them).
func (ex *execution) queueWait() time.Duration {
	if s := ex.startNS.Load(); s > 0 {
		return time.Duration(s)
	}
	if f := ex.finishNS.Load(); f > 0 {
		return time.Duration(f)
	}
	if ex.cacheHit {
		return 0
	}
	return time.Since(ex.submitted)
}

// runTime returns the execution's running time: live while running,
// frozen once finished, zero before any worker picked it up.
func (ex *execution) runTime() time.Duration {
	s := ex.startNS.Load()
	if s == 0 {
		return 0
	}
	if f := ex.finishNS.Load(); f > 0 {
		return time.Duration(f - s)
	}
	return time.Since(ex.submitted) - time.Duration(s)
}

// attach registers one more observer of the execution, or returns nil
// if the execution is doomed (its last handle canceled it). The doomed
// decision and attachment share ex.mu, so a Cancel racing a coalescing
// Submit resolves atomically: either the new handle attaches first (and
// the Cancel is no longer last), or the submitter sees doomed and must
// start a fresh execution. Never nil for a freshly created execution.
func (ex *execution) attach() *Job {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.doomed || ex.ctx.Err() != nil {
		return nil
	}
	ex.handles++
	return &Job{exec: ex}
}

// report is the progress sink passed to Task.Run.
func (ex *execution) report(done uint64) { ex.done.Store(done) }

// finish resolves the execution exactly once.
func (ex *execution) finish(res any, err error) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	select {
	case <-ex.finished:
		return // already finished
	default:
	}
	ex.result, ex.err = res, err
	ex.finishNS.Store(time.Since(ex.submitted).Nanoseconds())
	switch {
	case err == nil:
		ex.state.Store(int32(Done))
		ex.done.Store(ex.total.Load())
	case ex.ctx.Err() != nil || errors.Is(err, context.Canceled):
		ex.state.Store(int32(Canceled))
	default:
		ex.state.Store(int32(Failed))
	}
	close(ex.finished)
}

// Job is one submitter's handle on an execution. Handles created by
// deduplicated submissions share the execution; canceling one handle
// only cancels the run once every handle has been canceled.
type Job struct {
	exec       *execution
	coalesced  bool // this handle attached to an already in-flight execution
	cancelOnce sync.Once
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	ex := j.exec
	st := Status{
		Key:         ex.task.Key,
		State:       State(ex.state.Load()),
		Done:        ex.done.Load(),
		Total:       ex.total.Load(),
		CacheHit:    ex.cacheHit,
		Disposition: j.Disposition(),
		Origin:      ex.task.Origin,
		Tenant:      ex.task.Tenant,
		QueueWait:   ex.queueWait(),
		Run:         ex.runTime(),
	}
	if st.State.Terminal() {
		ex.mu.Lock()
		if ex.err != nil {
			st.Err = ex.err.Error()
		}
		ex.mu.Unlock()
	}
	return st
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry
// abandons the wait without canceling the job.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.exec.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.exec.mu.Lock()
	defer j.exec.mu.Unlock()
	return j.exec.result, j.exec.err
}

// Cancel withdraws this handle's interest. The underlying execution is
// canceled once all of its handles have been canceled (or the engine is
// closed). Cancel is idempotent and safe after completion.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() {
		ex := j.exec
		ex.mu.Lock()
		ex.handles--
		last := ex.handles <= 0
		if last {
			ex.doomed = true // no new handle may attach past this point
		}
		ex.mu.Unlock()
		if last {
			ex.cancel()
		}
	})
}

// State returns the job's current lifecycle state without allocating a
// full Status snapshot (cheap enough for hot aggregation loops).
func (j *Job) State() State { return State(j.exec.state.Load()) }

// Disposition reports how this handle's submission was satisfied:
// served from the result cache, coalesced onto an in-flight execution,
// or executed (i.e. this submission created the execution).
func (j *Job) Disposition() string {
	switch {
	case j.exec.storeHit:
		return DispositionStoreHit
	case j.exec.cacheHit:
		return DispositionCacheHit
	case j.coalesced:
		return DispositionCoalesced
	default:
		return DispositionExecuted
	}
}
