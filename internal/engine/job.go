package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by jobs submitted to a closed engine.
var ErrClosed = errors.New("engine: closed")

// Task is one schedulable computation.
type Task struct {
	// Key is the task's content address. Two tasks with equal keys must
	// compute equal results: the engine deduplicates and caches by it.
	Key string

	// Total is the task's progress denominator (e.g. references to
	// simulate). 0 means progress is not reported.
	Total uint64

	// Run performs the computation. It must honor ctx (return ctx.Err()
	// promptly once canceled) and may call report with the number of
	// progress units completed so far.
	Run func(ctx context.Context, report func(done uint64)) (any, error)
}

// State is the lifecycle of an execution.
type State int32

const (
	Queued State = iota
	Running
	Done
	Failed
	Canceled
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return "invalid"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Status is a point-in-time snapshot of a job.
type Status struct {
	Key      string
	State    State
	Done     uint64 // progress units completed
	Total    uint64 // progress denominator (0 = unknown)
	Err      string // non-empty iff State == Failed or Canceled
	CacheHit bool   // served from the finished-result cache
}

// Fraction returns completed progress in 0..1 (1 when finished, 0 when
// the total is unknown and the job is still running).
func (s Status) Fraction() float64 {
	if s.State == Done {
		return 1
	}
	if s.Total == 0 {
		return 0
	}
	f := float64(s.Done) / float64(s.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// execution is one underlying run, shared by every handle whose Submit
// coalesced onto it.
type execution struct {
	task   Task
	ctx    context.Context
	cancel context.CancelFunc

	state atomic.Int32
	done  atomic.Uint64
	total atomic.Uint64

	cacheHit bool

	mu      sync.Mutex
	handles int  // live (not yet canceled) handles
	doomed  bool // last handle canceled; no further attachment allowed
	result  any
	err     error

	finished chan struct{}
}

func newExecution(t Task, ctx context.Context, cancel context.CancelFunc) *execution {
	ex := &execution{task: t, ctx: ctx, cancel: cancel, finished: make(chan struct{})}
	ex.total.Store(t.Total)
	return ex
}

// attach registers one more observer of the execution, or returns nil
// if the execution is doomed (its last handle canceled it). The doomed
// decision and attachment share ex.mu, so a Cancel racing a coalescing
// Submit resolves atomically: either the new handle attaches first (and
// the Cancel is no longer last), or the submitter sees doomed and must
// start a fresh execution. Never nil for a freshly created execution.
func (ex *execution) attach() *Job {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.doomed || ex.ctx.Err() != nil {
		return nil
	}
	ex.handles++
	return &Job{exec: ex}
}

// report is the progress sink passed to Task.Run.
func (ex *execution) report(done uint64) { ex.done.Store(done) }

// finish resolves the execution exactly once.
func (ex *execution) finish(res any, err error) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	select {
	case <-ex.finished:
		return // already finished
	default:
	}
	ex.result, ex.err = res, err
	switch {
	case err == nil:
		ex.state.Store(int32(Done))
		ex.done.Store(ex.total.Load())
	case ex.ctx.Err() != nil || errors.Is(err, context.Canceled):
		ex.state.Store(int32(Canceled))
	default:
		ex.state.Store(int32(Failed))
	}
	close(ex.finished)
}

// Job is one submitter's handle on an execution. Handles created by
// deduplicated submissions share the execution; canceling one handle
// only cancels the run once every handle has been canceled.
type Job struct {
	exec       *execution
	cancelOnce sync.Once
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	ex := j.exec
	st := Status{
		Key:      ex.task.Key,
		State:    State(ex.state.Load()),
		Done:     ex.done.Load(),
		Total:    ex.total.Load(),
		CacheHit: ex.cacheHit,
	}
	if st.State.Terminal() {
		ex.mu.Lock()
		if ex.err != nil {
			st.Err = ex.err.Error()
		}
		ex.mu.Unlock()
	}
	return st
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry
// abandons the wait without canceling the job.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.exec.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.exec.mu.Lock()
	defer j.exec.mu.Unlock()
	return j.exec.result, j.exec.err
}

// Cancel withdraws this handle's interest. The underlying execution is
// canceled once all of its handles have been canceled (or the engine is
// closed). Cancel is idempotent and safe after completion.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() {
		ex := j.exec
		ex.mu.Lock()
		ex.handles--
		last := ex.handles <= 0
		if last {
			ex.doomed = true // no new handle may attach past this point
		}
		ex.mu.Unlock()
		if last {
			ex.cancel()
		}
	})
}

// State returns the job's current lifecycle state without allocating a
// full Status snapshot (cheap enough for hot aggregation loops).
func (j *Job) State() State { return State(j.exec.state.Load()) }
