package engine

import "container/list"

// resultCache is a content-addressed LRU of finished task results. The
// engine only caches successes; values are stored as-is, so cached
// results must be treated as immutable by every consumer (the sim layer
// returns defensive copies of its slices for this reason).
//
// The cache is externally synchronized: the engine calls it only under
// its own mutex.
type resultCache struct {
	cap   int
	order *list.List               // front = most recently used
	byKey map[string]*list.Element // value: *cacheEntry
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (any, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *resultCache) add(key string, val any) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }
