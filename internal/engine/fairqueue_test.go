package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// qex builds a bare queued execution for a tenant (queue-level tests
// never run these, so a nil Run is fine).
func qex(tenant, key string) *execution {
	ctx, cancel := context.WithCancel(context.Background())
	return newExecution(Task{Key: key, Tenant: tenant}, ctx, cancel)
}

// popAll drains the queue and returns the popped keys in order.
func popAll(t *testing.T, q *queue) []string {
	t.Helper()
	var keys []string
	for q.len() > 0 {
		ex, ok := q.pop()
		if !ok {
			t.Fatal("pop reported closed with items remaining")
		}
		keys = append(keys, ex.task.Key)
	}
	return keys
}

func TestFairQueueRoundRobinAcrossTenants(t *testing.T) {
	q := newQueue(nil)
	for _, k := range []string{"a1", "a2", "a3", "a4"} {
		q.push(qex("alice", k))
	}
	q.push(qex("bob", "b1"))
	q.push(qex("carol", "c1"))

	got := popAll(t, q)
	// One task per tenant per ring visit: bob's and carol's single tasks
	// drain ahead of alice's backlog even though they arrived last.
	want := []string{"a1", "b1", "c1", "a2", "a3", "a4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestFairQueuePreservesPerTenantFIFO(t *testing.T) {
	q := newQueue(nil)
	q.push(qex("alice", "a1"))
	q.push(qex("bob", "b1"))
	q.push(qex("alice", "a2"))
	q.push(qex("bob", "b2"))

	seen := map[string][]string{}
	for _, k := range popAll(t, q) {
		seen[string(k[0])] = append(seen[string(k[0])], k)
	}
	if seen["a"][0] != "a1" || seen["a"][1] != "a2" || seen["b"][0] != "b1" || seen["b"][1] != "b2" {
		t.Fatalf("per-tenant order violated: %v", seen)
	}
}

func TestFairQueueWeights(t *testing.T) {
	q := newQueue(map[string]int{"bob": 2})
	for _, k := range []string{"a1", "a2", "a3"} {
		q.push(qex("alice", k))
	}
	for _, k := range []string{"b1", "b2", "b3", "b4"} {
		q.push(qex("bob", k))
	}

	got := popAll(t, q)
	// alice weighs 1, bob 2: each ring rotation serves one alice task and
	// two bob tasks.
	want := []string{"a1", "b1", "b2", "a2", "b3", "b4", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestFairQueueDrainedTenantLosesCredit(t *testing.T) {
	q := newQueue(map[string]int{"bob": 3})
	q.push(qex("bob", "b1"))
	if got := popAll(t, q); len(got) != 1 {
		t.Fatalf("drained %v", got)
	}
	// bob left the ring with 2 unspent credits; on return he must start a
	// fresh visit, not cash in banked credit ahead of alice's turn.
	q.push(qex("alice", "a1"))
	q.push(qex("alice", "a2"))
	q.push(qex("bob", "b2"))
	q.push(qex("bob", "b3"))
	q.push(qex("bob", "b4"))
	q.push(qex("bob", "b5"))
	got := popAll(t, q)
	want := []string{"a1", "b2", "b3", "b4", "a2", "b5"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestFairQueueDepths(t *testing.T) {
	q := newQueue(nil)
	if d := q.depths(); d != nil {
		t.Fatalf("empty queue depths = %v", d)
	}
	q.push(qex("alice", "a1"))
	q.push(qex("alice", "a2"))
	q.push(qex("bob", "b1"))
	d := q.depths()
	if d["alice"] != 2 || d["bob"] != 1 || len(d) != 2 {
		t.Fatalf("depths = %v", d)
	}
	if q.len() != 3 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestFairQueueCloseDrains(t *testing.T) {
	q := newQueue(nil)
	q.push(qex("alice", "a1"))
	q.push(qex("bob", "b1"))
	q.close()
	if _, ok := q.pop(); !ok {
		t.Fatal("pop after close should drain remaining items")
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("second pop should still drain")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("drained closed queue should report !ok")
	}
}

// TestEngineFairShareAcrossTenants proves the scheduling property end to
// end: with one worker occupied, a flooding tenant's backlog does not
// delay a light tenant's single task past one ring rotation.
func TestEngineFairShareAcrossTenants(t *testing.T) {
	var mu sync.Mutex
	var order []string
	e := New(Options{Workers: 1, CacheEntries: -1, OnRetire: func(tr TaskTrace) {
		if tr.Disposition == DispositionExecuted {
			mu.Lock()
			order = append(order, tr.Key)
			mu.Unlock()
		}
	}})
	defer e.Close()

	gate := make(chan struct{})
	task := func(tenant, key string) Task {
		return Task{Key: key, Tenant: tenant, Run: func(ctx context.Context, report func(uint64)) (any, error) {
			return key, nil
		}}
	}
	// Occupy the single worker so every later submission queues.
	blocker := e.Submit(Task{Key: "gate", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		<-gate
		return nil, nil
	}})

	var jobs []*Job
	for _, k := range []string{"f1", "f2", "f3", "f4", "f5", "f6"} {
		jobs = append(jobs, e.Submit(task("flooder", k)))
	}
	light := e.Submit(task("light", "l1"))
	if st := e.Stats(); st.TenantQueues["flooder"] != 6 || st.TenantQueues["light"] != 1 {
		t.Fatalf("tenant queues = %v", st.TenantQueues)
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := light.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	blocker.Cancel()

	mu.Lock()
	defer mu.Unlock()
	floodersBefore, seen := 0, false
	for _, k := range order {
		if k == "l1" {
			seen = true
			break
		}
		if k[0] == 'f' {
			floodersBefore++
		}
	}
	if !seen {
		t.Fatalf("light tenant task never executed: %v", order)
	}
	// Round-robin: at most one flooder task runs between the worker
	// freeing up and the light tenant's turn.
	if floodersBefore > 1 {
		t.Errorf("%d flooder tasks ran before the light tenant's: %v — starved past one rotation", floodersBefore, order)
	}
	if st := light.Status(); st.Tenant != "light" {
		t.Errorf("status tenant = %q", st.Tenant)
	}
}

// TestFairQueueCanceledTasksStillDrain: canceling a queued job does not
// wedge its tenant's FIFO — the worker pops and retires it as canceled,
// and later tenants still get served.
func TestFairQueueCanceledTasksStillDrain(t *testing.T) {
	e := New(Options{Workers: 1, CacheEntries: -1})
	defer e.Close()

	gate := make(chan struct{})
	blocker := e.Submit(Task{Key: "gate", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		<-gate
		return nil, nil
	}})
	doomed := e.Submit(Task{Key: "doomed", Tenant: "alice", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		t.Error("canceled task must not run")
		return nil, nil
	}})
	after := e.Submit(Task{Key: "after", Tenant: "bob", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		return "ok", nil
	}})
	doomed.Cancel()
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if v, err := after.Wait(ctx); err != nil || v != "ok" {
		t.Fatalf("bob's task after a canceled alice task: %v, %v", v, err)
	}
	if st := doomed.Status(); st.State != Canceled {
		t.Errorf("doomed state = %v", st.State)
	}
	blocker.Cancel()
}
