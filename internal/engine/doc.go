// Package engine is a job-based experiment execution engine: a fixed
// worker pool sharded across GOMAXPROCS, context cancellation, per-job
// progress reporting, and a content-addressed in-memory result cache.
//
// # Tasks and content addressing
//
// Tasks are pure computations identified by a content address (the
// Key): two tasks with the same key MUST compute the same result. The
// engine exploits that in two ways. Identical in-flight submissions are
// deduplicated onto one execution (every submitter gets its own Job
// handle observing the shared run), and finished results are kept in an
// LRU cache so repeated submissions are served without re-running.
//
// The simulator layers two key families on top (internal/sim):
// generator runs are addressed by Fingerprint(spec, config), and trace
// replays by TraceFingerprint(trace digest, config) — so two clients
// uploading byte-identical trace files to jettyd share one execution
// and one cached result.
//
// # Concurrency
//
// The engine is safe for concurrent use by many goroutines; it is the
// concurrency cap for everything built on top of it (the sim suite
// runners and the jettyd service submit here rather than spawning
// their own goroutines). Every Job handle supports Wait, Cancel and
// Status snapshots; an execution is canceled only when every handle to
// it has been canceled.
package engine
