package engine

import "sync"

// queue is an unbounded FIFO of executions. After close, pop keeps
// draining remaining items (so canceled work is still retired by a
// worker) and reports !ok only once empty.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*execution
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends one execution. Pushing after close is a programming
// error; the engine never does it (Submit checks closed first).
func (q *queue) push(ex *execution) {
	q.mu.Lock()
	q.items = append(q.items, ex)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes the oldest execution, blocking while the queue is open and
// empty. It returns !ok when the queue is closed and drained.
func (q *queue) pop() (*execution, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	ex := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return ex, true
}

// len reports the number of queued executions (the queue-depth gauge).
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes all poppers; the queue drains and then reports empty.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
