package engine

import "sync"

// queue is the engine's pending-work structure: per-tenant FIFOs drained
// by deficit round-robin. Within one tenant order is strictly FIFO;
// across tenants each ring visit grants a tenant its weight in task
// credits, so a tenant flooding the queue with a giant sweep cannot
// starve another tenant's single experiment — the light tenant's task is
// at the head of its own FIFO and is reached within one ring rotation.
//
// Tenants enter the ring when their first task arrives and leave it when
// their FIFO drains (the deficit resets, so a returning tenant starts a
// fresh round rather than cashing in banked credit). After close, pop
// keeps draining remaining items (so canceled work is still retired by a
// worker) and reports !ok only once empty.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantFIFO // active (non-empty) tenants, by name
	ring    []*tenantFIFO          // round-robin order (arrival order)
	cur     int                    // ring position the next pop serves
	weights map[string]int         // configured tenant weights (missing = 1)
	total   int
	closed  bool
}

// tenantFIFO is one tenant's pending executions plus its deficit
// round-robin credit.
type tenantFIFO struct {
	name    string
	items   []*execution
	deficit int // remaining credit in this ring visit
}

func newQueue(weights map[string]int) *queue {
	q := &queue{tenants: make(map[string]*tenantFIFO), weights: weights}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// weightOf returns a tenant's configured scheduling weight (credits per
// ring visit), at least 1.
func (q *queue) weightOf(tenant string) int {
	if w := q.weights[tenant]; w > 1 {
		return w
	}
	return 1
}

// push appends one execution to its tenant's FIFO, entering the tenant
// into the ring if it was idle. Pushing after close is a programming
// error; the engine never does it (Submit checks closed first).
func (q *queue) push(ex *execution) {
	tenant := ex.tenantName()
	q.mu.Lock()
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantFIFO{name: tenant}
		q.tenants[tenant] = tq
		q.ring = append(q.ring, tq)
	}
	tq.items = append(tq.items, ex)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes the next execution in fair-share order, blocking while the
// queue is open and empty. It returns !ok when the queue is closed and
// drained.
func (q *queue) pop() (*execution, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		return nil, false
	}

	// Ring entries are never empty (drained tenants leave immediately),
	// so the tenant at cur always has work.
	tq := q.ring[q.cur]
	if tq.deficit <= 0 {
		tq.deficit = q.weightOf(tq.name)
	}
	ex := tq.items[0]
	tq.items[0] = nil
	tq.items = tq.items[1:]
	tq.deficit--
	q.total--

	switch {
	case len(tq.items) == 0:
		// Drained: leave the ring; banked credit does not survive idling.
		q.ring = append(q.ring[:q.cur], q.ring[q.cur+1:]...)
		delete(q.tenants, tq.name)
		if len(q.ring) > 0 {
			q.cur %= len(q.ring)
		} else {
			q.cur = 0
		}
	case tq.deficit == 0:
		q.cur = (q.cur + 1) % len(q.ring)
	}
	return ex, true
}

// len reports the number of queued executions (the queue-depth gauge).
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// depths snapshots the per-tenant queue lengths (the per-tenant
// saturation gauges).
func (q *queue) depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tenants) == 0 {
		return nil
	}
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		out[name] = len(tq.items)
	}
	return out
}

// close wakes all poppers; the queue drains and then reports empty.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
