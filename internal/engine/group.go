package engine

import (
	"context"
	"fmt"
	"sync"
)

// Group tasks: one fused execution covering several content-addressed
// member results at once. The sweep layer uses them to evaluate an
// entire filter axis on a single simulation pass — the filters are
// independent observers of the coherence stream, so one run can produce
// every member cell's result bit-identically (internal/sim owns that
// argument; the engine only provides the scheduling shape).
//
// A group run is one queue slot and one worker occupation, but N
// submissions, N cache fills and N retire traces: every member keeps
// the exact lifecycle an individually submitted task would have had —
// per-member cache hits and in-flight coalescing at submit time,
// per-member progress, disposition, timing breakdown and telemetry at
// retire time. Later per-member submissions of the same keys are served
// from the cache (or coalesce onto the in-flight group) exactly as if
// the members had run alone.

// GroupMember identifies one member of a group task: its content
// address and progress denominator. Members with equal keys must
// compute equal results (the same contract as Task.Key).
type GroupMember struct {
	// Key is the member's content address: the cache/dedup key its
	// result is stored and coalesced under.
	Key string
	// Total is the member's progress denominator (0 = unreported).
	Total uint64
}

// GroupTask is one fused computation producing several member results
// in a single run.
type GroupTask struct {
	// Kind, Origin and Tenant label every member's telemetry and the
	// group's fair-share queue slot, exactly like Task.Kind, Task.Origin
	// and Task.Tenant.
	Kind   string
	Origin string
	Tenant string

	// Members are the results the run can produce. The engine may
	// satisfy any subset from its cache or from identical in-flight
	// executions; Run only computes the rest.
	Members []GroupMember

	// Run computes the live members' results: live holds ascending
	// indices into Members, and the returned slice must hold one result
	// per live index, in the same order. report carries fused progress —
	// the engine mirrors it onto every live member, so per-member
	// progress is monotone. Run must honor ctx like Task.Run.
	Run func(ctx context.Context, live []int, report func(done uint64)) ([]any, error)
}

// groupRun coordinates one queued fused execution and the member
// executions it owns.
type groupRun struct {
	task   GroupTask
	ctx    context.Context
	cancel context.CancelFunc

	// members maps a Members index to its owned execution. Only owned
	// members appear: submissions satisfied by the cache or coalesced
	// onto foreign executions are not part of the run.
	members map[int]*execution

	mu   sync.Mutex
	gone int // owned members whose last handle was canceled (or retired)
}

// noteGone records one owned member leaving (its last handle canceled,
// or the run retiring it); when none remain the group context is
// released, which also cancels a still-running fused pass nobody is
// waiting for anymore.
func (g *groupRun) noteGone() {
	g.mu.Lock()
	g.gone++
	last := g.gone == len(g.members)
	g.mu.Unlock()
	if last {
		g.cancel()
	}
}

// SubmitGroup schedules a group task and returns one job handle per
// member, in Members order. Each member is admitted exactly like an
// individual Submit — served from the result cache, coalesced onto an
// identical in-flight execution (including an earlier member of this
// same group), or owned by the group's single fused run. SubmitGroup
// never blocks on the work itself.
//
// Cancellation is per member: a member whose handles are all canceled
// is marked canceled when the run retires (the fused pass cannot drop
// an attached member mid-run), and the run itself is canceled once
// every owned member has been canceled.
func (e *Engine) SubmitGroup(g GroupTask) []*Job {
	jobs := make([]*Job, len(g.Members))
	var retires []TaskTrace

	// L3 probe, before admission: collect the member keys the in-memory
	// tiers cannot satisfy, load them from the persistent store with
	// e.mu released (disk I/O must not stall other submitters), and let
	// the admission loop below treat the hits like cache fills. A key
	// that races into the cache or in-flight map between probe and
	// admission is simply served by those tiers instead.
	var fromStore map[string]any
	if e.store != nil {
		var misses []string
		seen := make(map[string]struct{}, len(g.Members))
		e.mu.Lock()
		if !e.closed {
			for _, m := range g.Members {
				if _, dup := seen[m.Key]; dup {
					continue
				}
				seen[m.Key] = struct{}{}
				if e.cache != nil {
					if _, ok := e.cache.get(m.Key); ok {
						continue
					}
				}
				if _, ok := e.inflight[m.Key]; ok {
					continue
				}
				misses = append(misses, m.Key)
			}
		}
		e.mu.Unlock()
		for _, key := range misses {
			if res, ok := e.store.Load(key); ok {
				if fromStore == nil {
					fromStore = make(map[string]any)
				}
				fromStore[key] = res
			}
		}
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for i, m := range g.Members {
			ex := newExecution(Task{Key: m.Key, Kind: g.Kind, Origin: g.Origin, Tenant: g.Tenant, Total: m.Total}, context.Background(), func() {})
			ex.finish(nil, ErrClosed)
			jobs[i] = ex.attach()
		}
		return jobs
	}

	groupCtx, groupCancel := context.WithCancel(e.baseCtx)
	gr := &groupRun{task: g, ctx: groupCtx, cancel: groupCancel, members: make(map[int]*execution)}

	for i, m := range g.Members {
		e.stats.Submitted++
		t := Task{Key: m.Key, Kind: g.Kind, Origin: g.Origin, Tenant: g.Tenant, Total: m.Total}

		if e.cache != nil {
			if res, ok := e.cache.get(m.Key); ok {
				e.stats.CacheHits++
				ex := newExecution(t, context.Background(), func() {})
				ex.cacheHit = true
				ex.done.Store(ex.total.Load())
				ex.finish(res, nil)
				jobs[i] = ex.attach()
				retires = append(retires, TaskTrace{
					Kind: t.Kind, Key: t.Key, Origin: t.Origin, Tenant: t.Tenant,
					Disposition: DispositionCacheHit, State: Done,
				})
				continue
			}
		}
		// Coalesce onto an identical in-flight execution — a foreign run,
		// or an earlier member of this very group with the same key (each
		// owned member registers in the in-flight map as it is created,
		// so duplicates fold onto their sibling instead of colliding).
		if ex, ok := e.inflight[m.Key]; ok {
			if j := ex.attach(); j != nil {
				e.stats.Coalesced++
				j.coalesced = true
				jobs[i] = j
				retires = append(retires, TaskTrace{
					Kind: t.Kind, Key: t.Key, Origin: ex.task.Origin, Tenant: ex.task.Tenant,
					Disposition: DispositionCoalesced, State: State(ex.state.Load()),
				})
				continue
			}
		}
		// Serve members the L3 probe found on disk: fill the cache so
		// later submissions hit L1, and finish the member without ever
		// joining the fused run.
		if res, ok := fromStore[m.Key]; ok {
			e.stats.StoreHits++
			if e.cache != nil {
				e.cache.add(m.Key, res)
			}
			ex := newExecution(t, context.Background(), func() {})
			ex.cacheHit = true
			ex.storeHit = true
			ex.done.Store(ex.total.Load())
			ex.finish(res, nil)
			jobs[i] = ex.attach()
			retires = append(retires, TaskTrace{
				Kind: t.Kind, Key: t.Key, Origin: t.Origin, Tenant: t.Tenant,
				Disposition: DispositionStoreHit, State: Done,
			})
			continue
		}

		memberCtx, memberCancel := context.WithCancel(groupCtx)
		ex := newExecution(t, memberCtx, nil)
		var gone sync.Once
		ex.cancel = func() {
			memberCancel()
			gone.Do(gr.noteGone)
		}
		gr.members[i] = ex
		e.inflight[m.Key] = ex
		jobs[i] = ex.attach()
	}

	if len(gr.members) == 0 {
		// Every member was satisfied without running: nothing to queue.
		e.mu.Unlock()
		groupCancel()
		for _, tr := range retires {
			e.retire(tr)
		}
		return jobs
	}
	e.stats.FusedGroups++
	// One queue slot for the whole group: a placeholder execution whose
	// only job is to carry the groupRun to a worker.
	leader := &execution{group: gr}
	e.queue.push(leader)
	e.mu.Unlock()

	for _, tr := range retires {
		e.retire(tr)
	}
	return jobs
}

// memberOrder returns the group's owned member indices, ascending.
func (g *groupRun) memberOrder() []int {
	idxs := make([]int, 0, len(g.members))
	for i := range g.members {
		idxs = append(idxs, i)
	}
	for i := 1; i < len(idxs); i++ { // insertion sort: member counts are small
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	return idxs
}

// runGroup executes (or cancels) one fused group run and retires every
// owned member. It is the group counterpart of runOne: one worker, one
// Task-style Run call, but per-member finish, cache fill, stats and
// retire traces.
func (e *Engine) runGroup(gr *groupRun, scratch *Scratch) {
	idxs := gr.memberOrder()

	var (
		res []any
		err error
	)
	live := make([]int, 0, len(idxs))
	if err = gr.ctx.Err(); err == nil {
		// Members individually canceled while queued drop out of the run;
		// the rest go Running together.
		for _, i := range idxs {
			ex := gr.members[i]
			if ex.ctx.Err() == nil {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			// Every member canceled individually, possibly before the last
			// cancellation's noteGone released the group context: nothing
			// left to compute.
			err = context.Canceled
		}
	}
	if err == nil {
		for _, i := range live {
			ex := gr.members[i]
			ex.markStart()
			ex.state.Store(int32(Running))
		}
		e.running.Add(1)
		ctx := withScratch(gr.ctx, scratch)
		if gr.task.Origin != "" {
			ctx = context.WithValue(ctx, originKey{}, gr.task.Origin)
		}
		if gr.task.Tenant != "" {
			ctx = context.WithValue(ctx, tenantKey{}, gr.task.Tenant)
		}
		report := func(done uint64) {
			for _, i := range live {
				gr.members[i].report(done)
			}
		}
		res, err = gr.task.Run(ctx, live, report)
		e.running.Add(-1)
		if err == nil && len(res) != len(live) {
			err = fmt.Errorf("engine: group run returned %d results for %d live members", len(res), len(live))
		}
	}

	// Distribute: each member gets its own result, terminal state, stats
	// line, cache fill and retire trace — exactly what an individual
	// execution of the same task would have produced.
	type outcome struct {
		ex  *execution
		res any
		err error
	}
	outs := make([]outcome, 0, len(idxs))
	pos := 0 // cursor into live/res
	e.mu.Lock()
	for _, i := range idxs {
		ex := gr.members[i]
		o := outcome{ex: ex}
		inLive := pos < len(live) && live[pos] == i
		var memberRes any
		if inLive {
			if err == nil {
				memberRes = res[pos]
			}
			pos++
		}
		switch {
		case ex.ctx.Err() != nil && (err != nil || gr.ctx.Err() != nil || !inLive):
			// Individually canceled (or the whole group was): no result.
			o.err = context.Canceled
			e.stats.Canceled++
		case err != nil:
			o.err = err
			e.stats.Executed++
			e.stats.Failed++
		case ex.ctx.Err() != nil:
			// Canceled mid-run: the fused pass still computed the result,
			// but the submitter withdrew — mirror per-task semantics (no
			// cache fill, terminal state Canceled).
			o.err = context.Canceled
			e.stats.Canceled++
		default:
			o.res = memberRes
			e.stats.Executed++
			if e.cache != nil {
				e.cache.add(ex.task.Key, memberRes)
			}
		}
		if e.inflight[ex.task.Key] == ex {
			delete(e.inflight, ex.task.Key)
		}
		outs = append(outs, o)
	}
	e.mu.Unlock()

	// Write the computed members through to the persistent tier before
	// any waiter observes completion (same invariant as runOne).
	if e.store != nil {
		for _, o := range outs {
			if o.err == nil {
				e.store.Store(o.ex.task.Key, o.res)
			}
		}
	}

	for _, o := range outs {
		o.ex.finish(o.res, o.err)
		// Release the member context (and, via noteGone, eventually the
		// group context). Must come after finish so a plain failure is
		// not misclassified as canceled.
		o.ex.cancel()
		e.retire(TaskTrace{
			Kind:        o.ex.task.Kind,
			Key:         o.ex.task.Key,
			Origin:      o.ex.task.Origin,
			Tenant:      o.ex.task.Tenant,
			Disposition: DispositionExecuted,
			State:       State(o.ex.state.Load()),
			QueueWait:   o.ex.queueWait(),
			Run:         o.ex.runTime(),
			Err:         o.err,
		})
	}
}
