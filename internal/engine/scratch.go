package engine

import "context"

// Scratch is per-worker reusable state. Every pool worker owns one
// Scratch for its lifetime and threads it into each task's context, so
// consecutive jobs on the same worker can reuse expensive buffers
// (decode batches, record buffers, ...) instead of reallocating them per
// job. A Scratch is only ever touched by its owning worker goroutine —
// tasks run one at a time per worker — so it needs no locking.
//
// Keys follow the context-key convention: package-private struct types,
// one per consumer, so independent consumers cannot collide.
type Scratch struct {
	m map[any]any
}

// Get returns the value stored under key, or nil.
func (s *Scratch) Get(key any) any {
	if s == nil || s.m == nil {
		return nil
	}
	return s.m[key]
}

// Put stores v under key, replacing any previous value.
func (s *Scratch) Put(key, v any) {
	if s.m == nil {
		s.m = make(map[any]any)
	}
	s.m[key] = v
}

// scratchKey carries the worker's Scratch in task contexts.
type scratchKey struct{}

// withScratch attaches a worker's Scratch to a task context.
func withScratch(ctx context.Context, s *Scratch) context.Context {
	return context.WithValue(ctx, scratchKey{}, s)
}

// ScratchFrom returns the per-worker Scratch of the running task's
// context, or nil when the task is not running on an engine worker
// (direct calls, tests). Callers must treat the nil case as "allocate
// fresh state".
func ScratchFrom(ctx context.Context) *Scratch {
	s, _ := ctx.Value(scratchKey{}).(*Scratch)
	return s
}
