package engine

import "testing"

func TestResultCacheBasics(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.add("a", 1)
	c.add("b", 2)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get(a) = %v, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", 1)
	c.add("b", 2)
	c.get("a")    // refresh a: b is now the LRU entry
	c.add("c", 3) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestResultCacheRefreshExisting(t *testing.T) {
	c := newResultCache(2)
	c.add("a", 1)
	c.add("a", 10) // refresh, not duplicate
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get("a"); v.(int) != 10 {
		t.Errorf("get(a) = %v, want 10", v)
	}
}

func TestResultCacheMinimumCapacity(t *testing.T) {
	c := newResultCache(0) // clamped to 1
	c.add("a", 1)
	c.add("b", 2)
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}
