package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// groupOf builds a GroupTask returning base+i for member i, recording
// how many times (and over which live sets) Run was invoked.
func groupOf(prefix string, n, base int, runs *atomic.Int32, lastLive *[]int) GroupTask {
	members := make([]GroupMember, n)
	for i := range members {
		members[i] = GroupMember{Key: fmt.Sprintf("%s-%d", prefix, i), Total: 10}
	}
	return GroupTask{
		Kind:    "fused",
		Members: members,
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			if runs != nil {
				runs.Add(1)
			}
			if lastLive != nil {
				*lastLive = append([]int(nil), live...)
			}
			report(10)
			out := make([]any, len(live))
			for k, i := range live {
				out[k] = base + i
			}
			return out, nil
		},
	}
}

func TestGroupSubmitAndWait(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	var runs atomic.Int32
	jobs := e.SubmitGroup(groupOf("g1", 4, 100, &runs, nil))
	if len(jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(jobs))
	}
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != 100+i {
			t.Fatalf("member %d = %v, want %d", i, res, 100+i)
		}
		st := j.Status()
		if st.State != Done || st.Done != 10 || st.Total != 10 {
			t.Errorf("member %d status = %+v", i, st)
		}
		if st.Disposition != DispositionExecuted {
			t.Errorf("member %d disposition = %q", i, st.Disposition)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("group ran %d times, want 1", got)
	}
	st := e.Stats()
	if st.FusedGroups != 1 || st.Submitted != 4 || st.Executed != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupFillsCachePerMember(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	var runs atomic.Int32
	for _, j := range e.SubmitGroup(groupOf("gc", 3, 0, &runs, nil)) {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Individual resubmission of each member key must be a cache hit.
	for i := 0; i < 3; i++ {
		j := e.Submit(value(fmt.Sprintf("gc-%d", i), -1))
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != i {
			t.Fatalf("member %d from cache = %v, want %d", i, res, i)
		}
		if !j.Status().CacheHit {
			t.Fatalf("member %d resubmission missed the cache", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("group ran %d times, want 1", got)
	}
}

func TestGroupCacheAndCoalesceAtSubmit(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	// Pre-cache member 0 and hold member 1 in flight.
	if _, err := e.Submit(value("mix-0", 1000)).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	inflight := e.Submit(Task{
		Key: "mix-1",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			close(started)
			<-release
			return 1001, nil
		},
	})
	<-started

	var lastLive []int
	jobs := e.SubmitGroup(groupOf("mix", 4, 0, nil, &lastLive))
	if st := jobs[0].Status(); !st.CacheHit || st.State != Done {
		t.Errorf("member 0 should be a cache hit: %+v", st)
	}
	if d := jobs[1].Disposition(); d != DispositionCoalesced {
		t.Errorf("member 1 disposition = %q, want coalesced", d)
	}
	close(release)

	want := []int{1000, 1001, 2, 3}
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != want[i] {
			t.Fatalf("member %d = %v, want %d", i, res, want[i])
		}
	}
	if _, err := inflight.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Only members 2 and 3 were owned by the fused run.
	if len(lastLive) != 2 || lastLive[0] != 2 || lastLive[1] != 3 {
		t.Fatalf("live = %v, want [2 3]", lastLive)
	}
}

func TestGroupDuplicateKeysCoalesce(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	var runs atomic.Int32
	g := GroupTask{
		Members: []GroupMember{{Key: "dup"}, {Key: "dup"}, {Key: "dup"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			runs.Add(1)
			out := make([]any, len(live))
			for k := range live {
				out[k] = 7
			}
			return out, nil
		},
	}
	jobs := e.SubmitGroup(g)
	for _, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != 7 {
			t.Fatalf("dup result = %v", res)
		}
	}
	if jobs[1].Disposition() != DispositionCoalesced || jobs[2].Disposition() != DispositionCoalesced {
		t.Errorf("duplicate members should coalesce onto the first: %q, %q",
			jobs[1].Disposition(), jobs[2].Disposition())
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("group ran %d times, want 1", got)
	}
}

func TestGroupAllSatisfiedWithoutRunning(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	for i := 0; i < 2; i++ {
		if _, err := e.Submit(value(fmt.Sprintf("pre-%d", i), i)).Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	g := GroupTask{
		Members: []GroupMember{{Key: "pre-0"}, {Key: "pre-1"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			return nil, errors.New("must not run")
		},
	}
	for i, j := range e.SubmitGroup(g) {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != i {
			t.Fatalf("member %d = %v", i, res)
		}
	}
	if st := e.Stats(); st.FusedGroups != 0 {
		t.Errorf("fully cached group should not count as a fused run: %+v", st)
	}
}

func TestGroupMemberCancelWhileQueued(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	// Occupy the single worker so the group sits queued.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := e.Submit(Task{
		Key: "blocker",
		Run: func(ctx context.Context, report func(uint64)) (any, error) {
			close(started)
			<-release
			return nil, nil
		},
	})
	<-started

	var lastLive []int
	jobs := e.SubmitGroup(groupOf("cq", 3, 0, nil, &lastLive))
	jobs[1].Cancel()
	close(release)

	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if i == 1 {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled member err = %v", err)
			}
			if st := j.State(); st != Canceled {
				t.Fatalf("canceled member state = %v", st)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != i {
			t.Fatalf("member %d = %v, want %d", i, res, i)
		}
	}
	if len(lastLive) != 2 || lastLive[0] != 0 || lastLive[1] != 2 {
		t.Fatalf("live = %v, want [0 2]", lastLive)
	}
	if st := e.Stats(); st.Canceled != 1 || st.Executed != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupAllMembersCanceledCancelsRun(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{})
	g := GroupTask{
		Members: []GroupMember{{Key: "ac-0"}, {Key: "ac-1"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	jobs := e.SubmitGroup(g)
	<-started
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	}
	if st := e.Stats(); st.Canceled != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupOneMemberCanceledMidRunOthersComplete(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	started := make(chan struct{})
	canceled := make(chan struct{})
	g := GroupTask{
		Members: []GroupMember{{Key: "mr-0"}, {Key: "mr-1"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			close(started)
			<-canceled
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return []any{0, 1}, nil
		},
	}
	jobs := e.SubmitGroup(g)
	<-started
	jobs[0].Cancel()
	close(canceled)

	if _, err := jobs[0].Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled member err = %v", err)
	}
	res, err := jobs[1].Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1 {
		t.Fatalf("surviving member = %v, want 1", res)
	}
	// The canceled member's result must not be cached; the survivor's must.
	if j := e.Submit(value("mr-1", -1)); !j.Status().CacheHit {
		t.Error("surviving member's result missing from cache")
	}
	if j := e.Submit(Task{Key: "mr-0", Run: func(ctx context.Context, report func(uint64)) (any, error) { return 42, nil }}); j.Status().CacheHit {
		t.Error("canceled member's result must not be cached")
	}
}

func TestGroupRunError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	boom := errors.New("boom")
	g := GroupTask{
		Members: []GroupMember{{Key: "err-0"}, {Key: "err-1"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			return nil, boom
		},
	}
	for _, j := range e.SubmitGroup(g) {
		if _, err := j.Wait(context.Background()); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
		if st := j.State(); st != Failed {
			t.Fatalf("state = %v, want failed", st)
		}
	}
	if st := e.Stats(); st.Failed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupResultCountMismatch(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	g := GroupTask{
		Members: []GroupMember{{Key: "mm-0"}, {Key: "mm-1"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			return []any{1}, nil // one short
		},
	}
	for _, j := range e.SubmitGroup(g) {
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("want result-count mismatch error")
		}
	}
}

func TestGroupRetireTraces(t *testing.T) {
	var mu sync.Mutex
	var traces []TaskTrace
	e := New(Options{Workers: 1, OnRetire: func(tr TaskTrace) {
		mu.Lock()
		traces = append(traces, tr)
		mu.Unlock()
	}})
	defer e.Close()

	// Pre-cache member 0 so the group sees a mix of dispositions.
	if _, err := e.Submit(value("tr-0", 0)).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	jobs := e.SubmitGroup(groupOf("tr", 3, 0, nil, nil))
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(traces)
		mu.Unlock()
		if n >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	byKey := map[string][]TaskTrace{}
	for _, tr := range traces {
		byKey[tr.Key] = append(byKey[tr.Key], tr)
	}
	// tr-0: once for the priming Submit, once for the group's cache hit.
	if got := len(byKey["tr-0"]); got != 2 {
		t.Errorf("tr-0 traces = %d, want 2", got)
	}
	for _, key := range []string{"tr-1", "tr-2"} {
		trs := byKey[key]
		if len(trs) != 1 {
			t.Fatalf("%s traces = %d, want exactly 1", key, len(trs))
		}
		tr := trs[0]
		if tr.Kind != "fused" || tr.Disposition != DispositionExecuted || tr.State != Done || tr.Err != nil {
			t.Errorf("%s trace = %+v", key, tr)
		}
	}
}

func TestGroupSubmitAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()

	for _, j := range e.SubmitGroup(groupOf("closed", 2, 0, nil, nil)) {
		if _, err := j.Wait(context.Background()); !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	}
}

func TestGroupProgressMirroredToMembers(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	step := make(chan uint64)
	reported := make(chan struct{})
	g := GroupTask{
		Members: []GroupMember{{Key: "pg-0", Total: 100}, {Key: "pg-1", Total: 100}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			for d := range step {
				report(d)
				reported <- struct{}{}
			}
			return []any{nil, nil}, nil
		},
	}
	jobs := e.SubmitGroup(g)
	var prev uint64
	for _, d := range []uint64{10, 40, 90} {
		step <- d
		<-reported
		for i, j := range jobs {
			st := j.Status()
			if st.Done != d {
				t.Fatalf("member %d done = %d, want %d", i, st.Done, d)
			}
			if st.Done < prev {
				t.Fatalf("member %d progress went backwards: %d < %d", i, st.Done, prev)
			}
		}
		prev = d
	}
	close(step)
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
