package engine

// ResultStore is an optional persistent result tier under the engine's
// in-memory LRU: submissions that miss both the cache (L1) and the
// in-flight map consult it before queueing work, and every successful
// execution is written through to it. jettyd backs it with the
// crash-safe internal/store directory, which makes completed work
// survive a daemon restart — the whole point of the tier.
//
// Both methods are called outside engine locks, possibly from several
// goroutines at once; implementations synchronize internally. Load
// returns the decoded result for a key, or ok=false on a miss (a store
// that cannot decode an entry reports a miss and lets the engine
// recompute). Store persists a freshly computed result; it is fire and
// forget — persistence failures must not fail the job, only surface in
// the store's own error counters.
type ResultStore interface {
	Load(key string) (any, bool)
	Store(key string, val any)
}
