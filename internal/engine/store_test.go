package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// stubStore is an in-memory ResultStore recording its traffic.
type stubStore struct {
	mu     sync.Mutex
	m      map[string]any
	loads  int
	stores int
}

func newStubStore() *stubStore { return &stubStore{m: make(map[string]any)} }

func (s *stubStore) Load(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	v, ok := s.m[key]
	return v, ok
}

func (s *stubStore) Store(key string, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores++
	s.m[key] = val
}

func (s *stubStore) get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func waitDone(t *testing.T, j *Job) any {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return v
}

// TestExecutionWritesThroughToStore pins the L3 write path: a
// successfully executed task is in the store before its waiter observes
// completion.
func TestExecutionWritesThroughToStore(t *testing.T) {
	st := newStubStore()
	e := New(Options{Workers: 1, Store: st})
	defer e.Close()

	j := e.Submit(Task{Key: "k1", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		return "computed", nil
	}})
	if got := waitDone(t, j); got != "computed" {
		t.Fatalf("result = %v", got)
	}
	if v, ok := st.get("k1"); !ok || v != "computed" {
		t.Fatalf("store after execution: %v, %v", v, ok)
	}
}

// TestStoreServesFreshEngine pins the restart scenario: a brand-new
// engine (cold cache) over a warm store serves the result from disk
// with zero executions.
func TestStoreServesFreshEngine(t *testing.T) {
	st := newStubStore()
	st.m["k1"] = "persisted"

	e := New(Options{Workers: 1, Store: st})
	defer e.Close()

	j := e.Submit(Task{Key: "k1", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		t.Error("task ran despite persisted result")
		return nil, nil
	}})
	if got := waitDone(t, j); got != "persisted" {
		t.Fatalf("result = %v", got)
	}
	if d := j.Disposition(); d != DispositionStoreHit {
		t.Fatalf("Disposition = %q; want %q", d, DispositionStoreHit)
	}
	if !j.Status().CacheHit {
		t.Fatalf("store hit must report CacheHit=true in Status")
	}
	stats := e.Stats()
	if stats.StoreHits != 1 || stats.Executed != 0 || stats.CacheHits != 0 {
		t.Fatalf("Stats = %+v; want StoreHits=1 Executed=0 CacheHits=0", stats)
	}

	// The store hit filled the in-memory cache: a second submission is a
	// plain cache hit, no second disk probe needed for correctness.
	j2 := e.Submit(Task{Key: "k1", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		return nil, nil
	}})
	waitDone(t, j2)
	if d := j2.Disposition(); d != DispositionCacheHit {
		t.Fatalf("second submission Disposition = %q; want cache_hit", d)
	}
}

// TestStoreMissExecutesOnce: a miss probes the store once, executes,
// and writes through.
func TestStoreMissExecutesOnce(t *testing.T) {
	st := newStubStore()
	e := New(Options{Workers: 1, Store: st})
	defer e.Close()

	runs := 0
	j := e.Submit(Task{Key: "k", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		runs++
		return 42, nil
	}})
	waitDone(t, j)
	if runs != 1 {
		t.Fatalf("runs = %d", runs)
	}
	if stats := e.Stats(); stats.StoreHits != 0 || stats.Executed != 1 {
		t.Fatalf("Stats = %+v", stats)
	}
}

// TestGroupMembersServedFromStore: a fused group with some members
// persisted runs only the rest, and persists what it computes.
func TestGroupMembersServedFromStore(t *testing.T) {
	st := newStubStore()
	st.m["a"] = "stored-a"

	e := New(Options{Workers: 1, Store: st})
	defer e.Close()

	jobs := e.SubmitGroup(GroupTask{
		Members: []GroupMember{{Key: "a"}, {Key: "b"}},
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			if len(live) != 1 || live[0] != 1 {
				t.Errorf("live = %v; want [1]", live)
			}
			return []any{"computed-b"}, nil
		},
	})
	if got := waitDone(t, jobs[0]); got != "stored-a" {
		t.Fatalf("member a = %v", got)
	}
	if got := waitDone(t, jobs[1]); got != "computed-b" {
		t.Fatalf("member b = %v", got)
	}
	if d := jobs[0].Disposition(); d != DispositionStoreHit {
		t.Fatalf("member a Disposition = %q", d)
	}
	if d := jobs[1].Disposition(); d != DispositionExecuted {
		t.Fatalf("member b Disposition = %q", d)
	}
	if v, ok := st.get("b"); !ok || v != "computed-b" {
		t.Fatalf("member b not written through: %v, %v", v, ok)
	}
	stats := e.Stats()
	if stats.StoreHits != 1 || stats.Executed != 1 {
		t.Fatalf("Stats = %+v; want StoreHits=1 Executed=1", stats)
	}
}

// TestStoreHitRaceWithConcurrentFill: many concurrent submitters of one
// persisted key all resolve to the same result, however the probe races
// with cache fills.
func TestStoreHitRaceWithConcurrentFill(t *testing.T) {
	st := newStubStore()
	st.m["k"] = "v"
	e := New(Options{Workers: 4, Store: st})
	defer e.Close()

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := e.Submit(Task{Key: "k", Run: func(ctx context.Context, report func(uint64)) (any, error) {
				t.Error("task ran despite persisted result")
				return nil, nil
			}})
			if got := waitDone(t, j); got != "v" {
				t.Errorf("result = %v", got)
			}
		}()
	}
	wg.Wait()
	stats := e.Stats()
	if stats.StoreHits+stats.CacheHits+stats.Coalesced != n || stats.Executed != 0 {
		t.Fatalf("Stats = %+v; dispositions must cover all %d submissions with zero executions", stats, n)
	}
}

// TestFailedExecutionNotPersisted: failures never reach the store.
func TestFailedExecutionNotPersisted(t *testing.T) {
	st := newStubStore()
	e := New(Options{Workers: 1, Store: st})
	defer e.Close()

	j := e.Submit(Task{Key: "k", Run: func(ctx context.Context, report func(uint64)) (any, error) {
		return nil, context.DeadlineExceeded
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err == nil {
		t.Fatalf("want error")
	}
	if _, ok := st.get("k"); ok {
		t.Fatalf("failed execution persisted")
	}
}
