package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// TaskTrace is one submission's telemetry record, delivered to
// Options.OnRetire. For executed tasks it carries the lifecycle timing
// breakdown; cache hits and coalesced submissions report their
// disposition with zero durations (they did no queueing or running of
// their own).
type TaskTrace struct {
	Kind        string // Task.Kind ("" when the submitter set none)
	Key         string // content address
	Origin      string // Task.Origin of the execution's first submitter
	Tenant      string // Task.Tenant of the execution's first submitter
	Disposition string // DispositionExecuted | DispositionCacheHit | DispositionCoalesced
	State       State  // terminal state (Done/Failed/Canceled); Queued for coalesced notifications
	QueueWait   time.Duration
	Run         time.Duration
	Err         error // non-nil iff State is Failed or Canceled
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size. 0 means runtime.GOMAXPROCS(0) — one
	// worker per schedulable CPU.
	Workers int
	// CacheEntries bounds the result cache. 0 means the default (256);
	// negative disables caching entirely.
	CacheEntries int
	// OnRetire, when non-nil, observes every submission's outcome: once
	// per executed task as its worker retires it (with the timing
	// breakdown), and once per cache-hit or coalesced submission at
	// submit time. Called outside engine locks, possibly from several
	// goroutines at once; it must be cheap and must not call back into
	// the engine. jettyd wires this to its latency histograms and
	// slow-job log.
	OnRetire func(TaskTrace)
	// TenantWeights sets per-tenant fair-share weights: how many queued
	// tasks a tenant may drain per deficit-round-robin ring visit.
	// Missing (or <2) entries weigh 1. nil means every tenant weighs 1 —
	// pure per-task round-robin across tenants.
	TenantWeights map[string]int
	// Store, when non-nil, is the persistent result tier (L3) under the
	// in-memory cache: consulted on submissions that miss both the cache
	// and the in-flight map, written through on every successful
	// execution. See ResultStore.
	Store ResultStore
}

// DefaultCacheEntries is the result-cache capacity when Options leaves
// CacheEntries zero.
const DefaultCacheEntries = 256

// Stats is a snapshot of the engine's lifetime counters plus the
// instantaneous saturation gauges a scheduler or scrape wants.
type Stats struct {
	Submitted uint64 // Submit calls
	Executed  uint64 // tasks actually run by a worker
	CacheHits uint64 // submissions served from the finished-result cache
	Coalesced uint64 // submissions attached to an identical in-flight run
	StoreHits uint64 // submissions served from the persistent result store
	Canceled  uint64 // executions that ended canceled
	Failed    uint64 // executions that ended in error

	FusedGroups uint64 // group tasks queued as a single fused run (SubmitGroup)

	QueueDepth int // executions queued, not yet picked up by a worker
	Inflight   int // executions currently running on a worker

	// CacheEntries is the number of results currently resident in the
	// finished-result cache (0 when caching is disabled). A cluster
	// coordinator reads it off a worker's /healthz to tell a warm L1
	// from a cold restart.
	CacheEntries int

	// TenantQueues is the per-tenant queued-execution depth (fair-share
	// FIFO lengths); nil when the queue is empty. A fused group counts as
	// one queued execution under its submitting tenant.
	TenantQueues map[string]int
}

// Engine runs tasks on a fixed worker pool.
type Engine struct {
	workers  int
	onRetire func(TaskTrace) // nil when unobserved
	store    ResultStore     // nil when the persistent tier is absent

	mu       sync.Mutex
	inflight map[string]*execution // queued or running, by key
	cache    *resultCache          // nil when caching is disabled
	stats    Stats
	closed   bool

	queue   *queue
	running atomic.Int64 // executions currently inside a worker's Run
	wg      sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New starts an engine. Close it when done to release the workers.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var cache *resultCache
	if opts.CacheEntries >= 0 {
		n := opts.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		cache = newResultCache(n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		workers:    w,
		onRetire:   opts.OnRetire,
		store:      opts.Store,
		inflight:   make(map[string]*execution),
		cache:      cache,
		queue:      newQueue(opts.TenantWeights),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	e.wg.Add(w)
	for i := 0; i < w; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Submit schedules a task and returns a handle observing it. Submissions
// whose key matches a cached result complete immediately; submissions
// whose key matches an in-flight execution share that execution. Submit
// never blocks on the work itself.
//
// The returned handle must eventually be either Waited on or Canceled if
// the caller loses interest; an execution is canceled once every handle
// to it has been canceled.
func (e *Engine) Submit(t Task) *Job {
	e.mu.Lock()
	e.stats.Submitted++

	if e.closed {
		e.mu.Unlock()
		return closedJob(t)
	}
	if j := e.trySatisfyLocked(t); j != nil {
		return j
	}
	if e.store != nil {
		// L3: probe the persistent store with e.mu released (disk I/O
		// must not stall other submitters), then re-run the in-memory
		// fast paths — a racing submission may have filled the cache or
		// started the work while we were reading.
		e.mu.Unlock()
		res, ok := e.store.Load(t.Key)
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return closedJob(t)
		}
		if j := e.trySatisfyLocked(t); j != nil {
			return j
		}
		if ok {
			e.stats.StoreHits++
			if e.cache != nil {
				e.cache.add(t.Key, res)
			}
			e.mu.Unlock()
			ex := newExecution(t, context.Background(), func() {})
			ex.cacheHit = true
			ex.storeHit = true
			ex.done.Store(ex.total.Load())
			ex.finish(res, nil)
			e.retire(TaskTrace{
				Kind: t.Kind, Key: t.Key, Origin: t.Origin, Tenant: t.Tenant,
				Disposition: DispositionStoreHit, State: Done,
			})
			return ex.attach()
		}
	}

	ctx, cancel := context.WithCancel(e.baseCtx)
	ex := newExecution(t, ctx, cancel)
	e.inflight[t.Key] = ex
	e.queue.push(ex)
	j := ex.attach()
	e.mu.Unlock()
	return j
}

// closedJob is the synthetic already-failed handle Submit returns after
// Close.
func closedJob(t Task) *Job {
	ex := newExecution(t, context.Background(), func() {})
	ex.finish(nil, ErrClosed)
	return ex.attach()
}

// trySatisfyLocked attempts the in-memory fast paths under e.mu: the
// finished-result cache, then coalescing onto an identical in-flight
// execution. On success it releases e.mu, delivers the retire trace and
// returns the handle; on miss it returns nil with e.mu still held.
func (e *Engine) trySatisfyLocked(t Task) *Job {
	if e.cache != nil {
		if res, ok := e.cache.get(t.Key); ok {
			e.stats.CacheHits++
			e.mu.Unlock()
			ex := newExecution(t, context.Background(), func() {})
			ex.cacheHit = true
			ex.done.Store(ex.total.Load())
			ex.finish(res, nil)
			e.retire(TaskTrace{
				Kind: t.Kind, Key: t.Key, Origin: t.Origin, Tenant: t.Tenant,
				Disposition: DispositionCacheHit, State: Done,
			})
			return ex.attach()
		}
	}
	// Coalesce onto an identical in-flight run — unless that run is
	// doomed (its last handle canceled it, even if the worker has not
	// retired it yet): an innocent new submitter must not inherit the
	// cancellation, so it gets a fresh execution that replaces the map
	// entry (runOne retires by identity, not by key). attach makes the
	// doomed-vs-attach decision atomically under the execution's lock.
	if ex, ok := e.inflight[t.Key]; ok {
		if j := ex.attach(); j != nil {
			e.stats.Coalesced++
			e.mu.Unlock()
			j.coalesced = true
			e.retire(TaskTrace{
				Kind: t.Kind, Key: t.Key, Origin: ex.task.Origin, Tenant: ex.task.Tenant,
				Disposition: DispositionCoalesced, State: State(ex.state.Load()),
			})
			return j
		}
	}
	return nil
}

// retire delivers one telemetry record to the OnRetire hook, if any.
// Never called with engine locks held.
func (e *Engine) retire(t TaskTrace) {
	if e.onRetire != nil {
		e.onRetire(t)
	}
}

// Stats returns a snapshot of the lifetime counters and the queue-depth
// and in-flight gauges.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	if e.cache != nil {
		st.CacheEntries = e.cache.len()
	}
	e.mu.Unlock()
	st.QueueDepth = e.queue.len()
	st.Inflight = int(e.running.Load())
	st.TenantQueues = e.queue.depths()
	return st
}

// Close cancels every queued and running execution, waits for the
// workers to drain, and rejects all later submissions with ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	e.baseCancel() // cancels every execution context derived from it
	e.queue.close()
	e.wg.Wait()

	// Workers drained the queue (canceled executions finish without
	// running), so nothing is left in flight.
	e.mu.Lock()
	for key, ex := range e.inflight {
		delete(e.inflight, key)
		ex.finish(nil, context.Canceled)
	}
	e.mu.Unlock()
}

// worker is one pool goroutine: pop, run, repeat. After close the queue
// keeps handing out remaining items (their contexts are canceled, so
// they finish immediately) and reports done when empty. Each worker owns
// one Scratch that successive jobs share (see ScratchFrom).
func (e *Engine) worker() {
	defer e.wg.Done()
	scratch := new(Scratch)
	for {
		ex, ok := e.queue.pop()
		if !ok {
			return
		}
		if ex.group != nil {
			e.runGroup(ex.group, scratch)
			continue
		}
		e.runOne(ex, scratch)
	}
}

// runOne executes (or cancels) one queued execution and retires it.
func (e *Engine) runOne(ex *execution, scratch *Scratch) {
	var (
		res any
		err error
	)
	if err = ex.ctx.Err(); err == nil {
		ex.markStart()
		ex.state.Store(int32(Running))
		e.running.Add(1)
		ctx := withScratch(ex.ctx, scratch)
		if ex.task.Origin != "" {
			ctx = context.WithValue(ctx, originKey{}, ex.task.Origin)
		}
		if ex.task.Tenant != "" {
			ctx = context.WithValue(ctx, tenantKey{}, ex.task.Tenant)
		}
		res, err = ex.task.Run(ctx, ex.report)
		e.running.Add(-1)
	}

	e.mu.Lock()
	// Delete by identity: a canceled execution's key may have been taken
	// over by a fresh replacement submission.
	if e.inflight[ex.task.Key] == ex {
		delete(e.inflight, ex.task.Key)
	}
	switch {
	case err == nil:
		e.stats.Executed++
		if e.cache != nil {
			e.cache.add(ex.task.Key, res)
		}
	case ex.ctx.Err() != nil:
		e.stats.Canceled++
	default:
		e.stats.Executed++
		e.stats.Failed++
	}
	e.mu.Unlock()

	// Write through to the persistent tier before any waiter can observe
	// completion: a job reported finished is durably on disk, which is
	// the invariant the kill-and-restart recovery path leans on.
	if err == nil && e.store != nil {
		e.store.Store(ex.task.Key, res)
	}

	ex.finish(res, err)
	// Release the execution's context now that it is resolved: without
	// this, every executed task would leave its cancelCtx registered in
	// baseCtx's children for the engine's lifetime. Must come after
	// finish so a plain failure is not misclassified as canceled.
	ex.cancel()

	e.retire(TaskTrace{
		Kind:        ex.task.Kind,
		Key:         ex.task.Key,
		Origin:      ex.task.Origin,
		Tenant:      ex.task.Tenant,
		Disposition: DispositionExecuted,
		State:       State(ex.state.Load()),
		QueueWait:   ex.queueWait(),
		Run:         ex.runTime(),
		Err:         err,
	})
}
