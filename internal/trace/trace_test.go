package trace

import "testing"

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Errorf("Op strings: got %q, %q", Read.String(), Write.String())
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource(
		[]Ref{{Read, 0}, {Write, 64}},
		[]Ref{{Read, 128}},
	)
	if s.CPUs() != 2 {
		t.Fatalf("CPUs = %d, want 2", s.CPUs())
	}
	r, ok := s.Next(0)
	if !ok || r != (Ref{Read, 0}) {
		t.Fatalf("cpu0 first = %v,%v", r, ok)
	}
	r, ok = s.Next(1)
	if !ok || r != (Ref{Read, 128}) {
		t.Fatalf("cpu1 first = %v,%v", r, ok)
	}
	if _, ok := s.Next(1); ok {
		t.Error("cpu1 should be exhausted")
	}
	r, ok = s.Next(0)
	if !ok || r != (Ref{Write, 64}) {
		t.Fatalf("cpu0 second = %v,%v", r, ok)
	}
	if _, ok := s.Next(0); ok {
		t.Error("cpu0 should be exhausted")
	}
}

func TestLimit(t *testing.T) {
	var n int
	inner := &FuncSource{NumCPUs: 1, Fn: func(cpu int) (Ref, bool) {
		n++
		return Ref{Read, uint64(n)}, true
	}}
	l := NewLimit(inner, 3)
	if l.CPUs() != 1 {
		t.Fatalf("CPUs = %d", l.CPUs())
	}
	got := 0
	for {
		_, ok := l.Next(0)
		if !ok {
			break
		}
		got++
	}
	if got != 3 {
		t.Errorf("limit delivered %d refs, want 3", got)
	}
	// Underlying source should not be pulled after the limit.
	if n != 3 {
		t.Errorf("inner source pulled %d times, want 3", n)
	}
}

func TestLimitPerCPU(t *testing.T) {
	inner := &FuncSource{NumCPUs: 2, Fn: func(cpu int) (Ref, bool) {
		return Ref{Read, uint64(cpu)}, true
	}}
	l := NewLimit(inner, 2)
	for cpu := 0; cpu < 2; cpu++ {
		for i := 0; i < 2; i++ {
			if _, ok := l.Next(cpu); !ok {
				t.Fatalf("cpu%d ref %d: unexpectedly exhausted", cpu, i)
			}
		}
		if _, ok := l.Next(cpu); ok {
			t.Errorf("cpu%d: limit not enforced", cpu)
		}
	}
}

func TestLimitExhaustedInner(t *testing.T) {
	s := NewSliceSource([]Ref{{Read, 1}})
	l := NewLimit(s, 10)
	if _, ok := l.Next(0); !ok {
		t.Fatal("first ref should be available")
	}
	if _, ok := l.Next(0); ok {
		t.Error("inner exhaustion should propagate")
	}
}
