package trace

import "fmt"

// Op is a memory operation kind.
type Op uint8

// Memory operation kinds.
const (
	Read Op = iota
	Write
)

// String returns "R" or "W".
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Ref is a single memory reference issued by one CPU.
type Ref struct {
	Op   Op
	Addr uint64
}

// Rec is one decoded trace record: the issuing CPU and its reference,
// packed flat into 16 bytes so batched decoding (Reader.ReadBatch) fills
// caller-owned []Rec buffers with minimal memory traffic and replay
// loops stream records without per-record interface hops.
type Rec struct {
	Addr uint64
	CPU  int32
	Op   Op
}

// Source produces per-CPU reference streams. Implementations must be
// deterministic for a fixed construction (seeded), so experiments are
// reproducible. Next returns ok=false when cpu's stream is exhausted.
type Source interface {
	// CPUs returns the number of CPU streams the source produces.
	CPUs() int
	// Next returns the next reference for the given CPU.
	Next(cpu int) (Ref, bool)
}

// SliceSource is a Source backed by in-memory per-CPU slices. It is mainly
// useful in tests and examples where a hand-written reference sequence is
// clearer than a generator.
type SliceSource struct {
	refs [][]Ref
	pos  []int
}

// NewSliceSource returns a SliceSource over the given per-CPU slices.
func NewSliceSource(perCPU ...[]Ref) *SliceSource {
	return &SliceSource{refs: perCPU, pos: make([]int, len(perCPU))}
}

// CPUs implements Source.
func (s *SliceSource) CPUs() int { return len(s.refs) }

// Next implements Source.
func (s *SliceSource) Next(cpu int) (Ref, bool) {
	if s.pos[cpu] >= len(s.refs[cpu]) {
		return Ref{}, false
	}
	r := s.refs[cpu][s.pos[cpu]]
	s.pos[cpu]++
	return r, true
}

// Limit wraps a Source and stops each CPU stream after n references.
type Limit struct {
	Src Source
	N   uint64

	used []uint64
}

// NewLimit returns a Source that truncates each per-CPU stream of src to n
// references.
func NewLimit(src Source, n uint64) *Limit {
	return &Limit{Src: src, N: n, used: make([]uint64, src.CPUs())}
}

// CPUs implements Source.
func (l *Limit) CPUs() int { return l.Src.CPUs() }

// Next implements Source.
func (l *Limit) Next(cpu int) (Ref, bool) {
	if l.used[cpu] >= l.N {
		return Ref{}, false
	}
	r, ok := l.Src.Next(cpu)
	if ok {
		l.used[cpu]++
	}
	return r, ok
}

// FuncSource adapts a function to the Source interface.
type FuncSource struct {
	NumCPUs int
	Fn      func(cpu int) (Ref, bool)
}

// CPUs implements Source.
func (f *FuncSource) CPUs() int { return f.NumCPUs }

// Next implements Source.
func (f *FuncSource) Next(cpu int) (Ref, bool) { return f.Fn(cpu) }
