package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Reader decodes a JTRC trace, loading one chunk at a time: memory use
// is O(chunk records) regardless of file size. It offers two views of
// the stream: Read returns records sequentially in recorded order (the
// tool view), and Next implements Source so a trace replays through the
// simulator (the replay view).
type Reader struct {
	r          *bufio.Reader
	cpus       int
	meta       Meta
	compressed bool

	raw   []byte // reused frame payload buffer
	dec   bytes.Buffer
	gz    *gzip.Reader
	chunk []byte   // decoded payload of the current chunk
	off   int      // decode offset into chunk
	left  uint64   // records remaining in the current chunk
	last  []uint64 // per-CPU delta state, reset at each chunk

	chunks uint64
	total  uint64 // records decoded so far
	done   bool
	err    error

	pendingCPU int
	pending    Ref
	hasPending bool
}

// NewReader parses a JTRC header and returns a Reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a JTRC trace)", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("trace: unsupported format version %d (this reader understands %d)", hdr[4], Version)
	}
	flags := hdr[5]
	if flags&^byte(knownFlags) != 0 {
		return nil, fmt.Errorf("trace: unknown flag bits %#02x", flags&^byte(knownFlags))
	}
	cpus := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if cpus < 1 || cpus > MaxCPUs {
		return nil, fmt.Errorf("trace: %d cpus out of range 1..%d", cpus, MaxCPUs)
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading meta length: %w", err)
	}
	if metaLen > maxMetaBytes {
		return nil, fmt.Errorf("trace: meta blob %d bytes exceeds %d", metaLen, maxMetaBytes)
	}
	metaRaw := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaRaw); err != nil {
		return nil, fmt.Errorf("trace: reading meta: %w", err)
	}
	var meta Meta
	if metaLen > 0 {
		if err := json.Unmarshal(metaRaw, &meta); err != nil {
			return nil, fmt.Errorf("trace: decoding meta: %w", err)
		}
	}
	return &Reader{
		r:          br,
		cpus:       cpus,
		meta:       meta,
		compressed: flags&flagGzip != 0,
		last:       make([]uint64, cpus),
	}, nil
}

// CPUs implements Source.
func (t *Reader) CPUs() int { return t.cpus }

// Meta returns the header's metadata blob.
func (t *Reader) Meta() Meta { return t.meta }

// Compressed reports whether chunk payloads are gzip-compressed.
func (t *Reader) Compressed() bool { return t.compressed }

// Records returns the number of records decoded so far.
func (t *Reader) Records() uint64 { return t.total }

// Err returns the first decoding error encountered, if any (a clean end
// of trace is not an error).
func (t *Reader) Err() error { return t.err }

// Read returns the next record in recorded order. It returns io.EOF at
// a clean end of trace and the decoding error otherwise (also retained
// in Err).
func (t *Reader) Read() (cpu int, r Ref, err error) {
	if t.err != nil {
		return 0, Ref{}, t.err
	}
	if t.done {
		return 0, Ref{}, io.EOF
	}
	for t.left == 0 {
		if err := t.nextChunk(); err != nil {
			if err != io.EOF {
				t.err = err
			}
			return 0, Ref{}, err
		}
	}

	if t.off >= len(t.chunk) {
		return 0, Ref{}, t.corrupt("chunk payload ends before its %d records do", t.left)
	}
	head := t.chunk[t.off]
	t.off++
	cpu = int(head >> 1)
	if cpu >= t.cpus {
		return 0, Ref{}, t.corrupt("record for cpu %d beyond the header's %d", cpu, t.cpus)
	}
	u, n := binary.Uvarint(t.chunk[t.off:])
	if n <= 0 {
		return 0, Ref{}, t.corrupt("truncated record varint")
	}
	t.off += n
	addr := uint64(int64(t.last[cpu]) + unzigzag(u))
	t.last[cpu] = addr
	op := Read
	if head&1 != 0 {
		op = Write
	}
	t.left--
	t.total++
	return cpu, Ref{Op: op, Addr: addr}, nil
}

// ReadBatch decodes up to len(dst) records into dst, in recorded order,
// and returns how many it wrote. It returns io.EOF (possibly alongside
// n > 0 decoded records) at a clean end of trace and the decoding error
// otherwise. It is the batched counterpart of Read — the replay hot path
// fills one reusable buffer per chunk instead of making a call per
// record. Do not mix ReadBatch with the Next (Source) view: Next's
// pending record is not visible to batched reads.
func (t *Reader) ReadBatch(dst []Rec) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	n := 0
	for n < len(dst) {
		// Decode straight from the current chunk while records remain;
		// this inner loop is the allocation-free fast path.
		for t.left > 0 && n < len(dst) {
			if t.off >= len(t.chunk) {
				return n, t.corrupt("chunk payload ends before its %d records do", t.left)
			}
			head := t.chunk[t.off]
			t.off++
			cpu := int(head >> 1)
			if cpu >= t.cpus {
				return n, t.corrupt("record for cpu %d beyond the header's %d", cpu, t.cpus)
			}
			u, un := binary.Uvarint(t.chunk[t.off:])
			if un <= 0 {
				return n, t.corrupt("truncated record varint")
			}
			t.off += un
			a := uint64(int64(t.last[cpu]) + unzigzag(u))
			t.last[cpu] = a
			op := Read
			if head&1 != 0 {
				op = Write
			}
			dst[n] = Rec{Addr: a, CPU: int32(cpu), Op: op}
			n++
			t.left--
			t.total++
		}
		if n == len(dst) {
			return n, nil
		}
		if t.err != nil {
			return n, t.err
		}
		if t.done {
			return n, io.EOF
		}
		if err := t.nextChunk(); err != nil {
			if err != io.EOF {
				t.err = err
			}
			return n, err
		}
	}
	return n, nil
}

// nextChunk loads and decodes the next frame. io.EOF signals a clean end
// marker; any other error is corruption.
func (t *Reader) nextChunk() error {
	if t.off != len(t.chunk) {
		return t.corrupt("%d payload bytes left over after the chunk's records", len(t.chunk)-t.off)
	}
	tag, err := t.r.ReadByte()
	if err != nil {
		return t.corrupt("missing end marker: %v", err)
	}
	switch tag {
	case endTag:
		declared, err := binary.ReadUvarint(t.r)
		if err != nil {
			return t.corrupt("truncated end marker: %v", err)
		}
		if declared != t.total {
			return t.corrupt("end marker declares %d records, decoded %d", declared, t.total)
		}
		t.done = true
		return io.EOF
	case chunkTag:
	default:
		return t.corrupt("unknown frame tag %#02x", tag)
	}

	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return t.corrupt("truncated chunk header: %v", err)
	}
	if n == 0 || n > maxChunkRecords {
		return t.corrupt("chunk record count %d out of range 1..%d", n, maxChunkRecords)
	}
	p, err := binary.ReadUvarint(t.r)
	if err != nil {
		return t.corrupt("truncated chunk header: %v", err)
	}
	if p > maxChunkPayloadLen {
		return t.corrupt("chunk payload length %d exceeds %d", p, maxChunkPayloadLen)
	}
	if uint64(cap(t.raw)) < p {
		t.raw = make([]byte, p)
	}
	t.raw = t.raw[:p]
	if _, err := io.ReadFull(t.r, t.raw); err != nil {
		return t.corrupt("truncated chunk payload: %v", err)
	}

	if t.compressed {
		if t.gz == nil {
			t.gz = new(gzip.Reader)
		}
		if err := t.gz.Reset(bytes.NewReader(t.raw)); err != nil {
			return t.corrupt("bad gzip chunk: %v", err)
		}
		t.dec.Reset()
		// A chunk of n records decompresses to at most n*maxRecordBytes;
		// anything larger is corrupt, and the bound caps the allocation.
		limit := int64(n) * maxRecordBytes
		copied, err := io.Copy(&t.dec, io.LimitReader(t.gz, limit+1))
		if err != nil {
			return t.corrupt("bad gzip chunk: %v", err)
		}
		if copied > limit {
			return t.corrupt("decompressed chunk exceeds %d bytes for %d records", limit, n)
		}
		if err := t.gz.Close(); err != nil {
			return t.corrupt("bad gzip chunk: %v", err)
		}
		t.chunk = t.dec.Bytes()
	} else {
		t.chunk = t.raw
	}
	t.off = 0
	t.left = n
	t.chunks++
	for i := range t.last {
		t.last[i] = 0
	}
	return nil
}

// corrupt records and returns a corruption error.
func (t *Reader) corrupt(format string, args ...any) error {
	err := fmt.Errorf("trace: corrupt file: "+format, args...)
	t.err = err
	return err
}

// Next implements Source. All references are delivered in recorded
// order: a record is held pending until the owning CPU asks for it, and
// a request for another CPU returns ok=false. Round-robin replay of a
// round-robin recording therefore never stalls — which is exactly how
// the simulator both records and replays.
func (t *Reader) Next(cpu int) (Ref, bool) {
	if !t.hasPending {
		c, r, err := t.Read()
		if err != nil {
			return Ref{}, false
		}
		t.pendingCPU, t.pending, t.hasPending = c, r, true
	}
	if t.pendingCPU == cpu {
		t.hasPending = false
		return t.pending, true
	}
	return Ref{}, false
}

// Summary is the framing-level description of a trace file, computed
// without decoding any chunk payload.
type Summary struct {
	CPUs       int
	Meta       Meta
	Compressed bool
	Chunks     uint64
	Records    uint64
}

// Summarize scans a trace's header and chunk framing, skipping every
// payload, and verifies the end marker's record count. It is how
// `tracecat inspect` and the jettyd trace upload validate a file
// cheaply.
func Summarize(r io.Reader) (Summary, error) {
	rd, err := NewReader(r)
	if err != nil {
		return Summary{}, err
	}
	s := Summary{CPUs: rd.cpus, Meta: rd.meta, Compressed: rd.compressed}
	for {
		tag, err := rd.r.ReadByte()
		if err != nil {
			return s, rd.corrupt("missing end marker: %v", err)
		}
		if tag == endTag {
			declared, err := binary.ReadUvarint(rd.r)
			if err != nil {
				return s, rd.corrupt("truncated end marker: %v", err)
			}
			if declared != s.Records {
				return s, rd.corrupt("end marker declares %d records, framing sums to %d", declared, s.Records)
			}
			return s, nil
		}
		if tag != chunkTag {
			return s, rd.corrupt("unknown frame tag %#02x", tag)
		}
		n, err := binary.ReadUvarint(rd.r)
		if err != nil {
			return s, rd.corrupt("truncated chunk header: %v", err)
		}
		if n == 0 || n > maxChunkRecords {
			return s, rd.corrupt("chunk record count %d out of range 1..%d", n, maxChunkRecords)
		}
		p, err := binary.ReadUvarint(rd.r)
		if err != nil {
			return s, rd.corrupt("truncated chunk header: %v", err)
		}
		if p > maxChunkPayloadLen {
			return s, rd.corrupt("chunk payload length %d exceeds %d", p, maxChunkPayloadLen)
		}
		if _, err := io.CopyN(io.Discard, rd.r, int64(p)); err != nil {
			return s, rd.corrupt("truncated chunk payload: %v", err)
		}
		s.Chunks++
		s.Records += n
	}
}

// Append copies every record of src into dst in recorded order,
// re-encoding under dst's chunking and compression options. It returns
// the number of records copied. It is the engine behind `tracecat
// convert` and `tracecat merge`; dst must have at least as many CPUs as
// the records reference.
func Append(dst *Writer, src *Reader) (uint64, error) {
	var n uint64
	for {
		cpu, r, err := src.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(cpu, r); err != nil {
			return n, err
		}
		n++
	}
}

// Digest returns the content address of a trace: the hex SHA-256 of its
// raw file bytes. The engine's result cache keys replay runs on it.
func Digest(r io.Reader) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
