package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace file format: traces can be recorded once (e.g. from an expensive
// generator) and replayed many times, the workflow the paper's WWT2-based
// methodology uses ("collect snoop activity traces"). The encoding is a
// compact stream:
//
//	magic "JTT1" | uint32 cpus | records...
//
// each record: uint8 (cpu<<1 | op) | uvarint address-delta-zigzag, with
// per-CPU delta encoding so sequential workloads compress well. A cpu byte
// of 0xFF ends the stream.
const (
	traceMagic = "JTT1"
	endMarker  = 0xFF
	maxCPUs    = 0x7F // cpu packs into 7 bits of the record byte
)

// Writer records a reference stream to an io.Writer.
type Writer struct {
	w    *bufio.Writer
	cpus int
	last []uint64
	err  error
}

// NewWriter starts a trace for an nCPU machine.
func NewWriter(w io.Writer, cpus int) (*Writer, error) {
	if cpus < 1 || cpus > maxCPUs {
		return nil, fmt.Errorf("trace: %d cpus out of range 1..%d", cpus, maxCPUs)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(cpus))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cpus: cpus, last: make([]uint64, cpus)}, nil
}

// Write appends one reference.
func (t *Writer) Write(cpu int, r Ref) error {
	if t.err != nil {
		return t.err
	}
	if cpu < 0 || cpu >= t.cpus {
		return fmt.Errorf("trace: cpu %d out of range", cpu)
	}
	head := byte(cpu << 1)
	if r.Op == Write {
		head |= 1
	}
	if err := t.w.WriteByte(head); err != nil {
		t.err = err
		return err
	}
	delta := int64(r.Addr) - int64(t.last[cpu])
	t.last[cpu] = r.Addr
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], zigzag(delta))
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
		return err
	}
	return nil
}

// Close terminates and flushes the trace.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.WriteByte(endMarker); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader replays a recorded trace as a Source. All references arrive in
// recorded order: Next(cpu) returns the stream's next reference only when
// it belongs to cpu, buffering one pending record internally — which is
// exactly the order the round-robin simulator asks for when the trace was
// recorded round-robin.
type Reader struct {
	r    *bufio.Reader
	cpus int
	last []uint64

	pendingCPU int
	pending    Ref
	hasPending bool
	done       bool
	err        error
}

// NewReader opens a recorded trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	cpus := int(binary.LittleEndian.Uint32(hdr))
	if cpus < 1 || cpus > maxCPUs {
		return nil, fmt.Errorf("trace: %d cpus out of range", cpus)
	}
	return &Reader{r: br, cpus: cpus, last: make([]uint64, cpus)}, nil
}

// CPUs implements Source.
func (t *Reader) CPUs() int { return t.cpus }

// Err returns the first decoding error encountered, if any.
func (t *Reader) Err() error { return t.err }

// Next implements Source. A request for a CPU other than the one owning
// the stream's next record returns ok=false for that CPU only once the
// whole stream is drained; otherwise the record is held until its owner
// asks. (Round-robin replay of a round-robin recording never blocks.)
func (t *Reader) Next(cpu int) (Ref, bool) {
	if !t.hasPending && !t.done {
		t.fetch()
	}
	if t.hasPending && t.pendingCPU == cpu {
		t.hasPending = false
		return t.pending, true
	}
	return Ref{}, false
}

// fetch decodes the next record into the pending slot.
func (t *Reader) fetch() {
	head, err := t.r.ReadByte()
	if err != nil {
		t.done = true
		if err != io.EOF {
			t.err = err
		}
		return
	}
	if head == endMarker {
		t.done = true
		return
	}
	cpu := int(head >> 1)
	if cpu >= t.cpus {
		t.done = true
		t.err = fmt.Errorf("trace: record for cpu %d beyond header's %d", cpu, t.cpus)
		return
	}
	op := Read
	if head&1 != 0 {
		op = Write
	}
	u, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.done = true
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return
	}
	addr := uint64(int64(t.last[cpu]) + unzigzag(u))
	t.last[cpu] = addr
	t.pendingCPU = cpu
	t.pending = Ref{Op: op, Addr: addr}
	t.hasPending = true
}

// Record drains src in round-robin order (up to maxPerCPU references per
// CPU; 0 = until exhaustion) into w. It returns the number recorded.
func Record(w io.Writer, src Source, maxPerCPU uint64) (uint64, error) {
	tw, err := NewWriter(w, src.CPUs())
	if err != nil {
		return 0, err
	}
	var total uint64
	counts := make([]uint64, src.CPUs())
	alive := src.CPUs()
	for alive > 0 {
		alive = 0
		for cpu := 0; cpu < src.CPUs(); cpu++ {
			if maxPerCPU > 0 && counts[cpu] >= maxPerCPU {
				continue
			}
			r, ok := src.Next(cpu)
			if !ok {
				continue
			}
			if err := tw.Write(cpu, r); err != nil {
				return total, err
			}
			counts[cpu]++
			total++
			alive++
		}
	}
	return total, tw.Close()
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
