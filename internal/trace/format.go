package trace

// The JTRC v1 on-disk layout (TRACES.md is the normative spec):
//
//	header:
//	  magic    "JTRC"                      4 bytes
//	  version  0x01                        1 byte
//	  flags    bit0 = gzip chunk payloads  1 byte (unknown bits rejected)
//	  cpus     uint16 little-endian        2 bytes, 1..127
//	  metaLen  uvarint                     then metaLen bytes of JSON (Meta)
//	frames, repeated:
//	  0x01 chunk: uvarint record count n, uvarint payload length p,
//	       then p bytes of payload (gzip stream when flag bit0 is set)
//	  0x00 end:   uvarint total record count (must equal the chunk sum)
//
// A decompressed chunk payload is n records back to back:
//
//	head   1 byte: cpu<<1 | op   (op: 0 = read, 1 = write)
//	delta  uvarint zigzag(addr - prev[cpu])
//
// prev[] starts at zero again in every chunk, so each chunk decodes
// independently of the rest of the file.
const (
	// Magic identifies a JTRC trace file.
	Magic = "JTRC"
	// Version is the format version this package reads and writes.
	// Readers reject any other value.
	Version = 1

	// flagGzip marks per-chunk gzip compression; knownFlags is the set a
	// v1 reader understands (any other bit set is a hard error: flags
	// change the meaning of the payload bytes).
	flagGzip   = 1 << 0
	knownFlags = flagGzip

	// chunkTag and endTag are the frame markers.
	chunkTag = 0x01
	endTag   = 0x00

	// MaxCPUs is the largest per-trace CPU count: the record head byte
	// packs the CPU into 7 bits.
	MaxCPUs = 0x7F

	// DefaultChunkRecords is the Writer's chunk granularity when
	// WriterOptions leaves ChunkRecords zero.
	DefaultChunkRecords = 1 << 16

	// maxRecordBytes bounds one encoded record: head byte plus a
	// max-length 64-bit varint.
	maxRecordBytes = 1 + 10

	// Hostile-input bounds: a reader allocates O(chunk), so the frame
	// header fields that size those allocations are capped.
	maxMetaBytes       = 1 << 20
	maxChunkRecords    = 1 << 24
	maxChunkPayloadLen = maxChunkRecords * maxRecordBytes
)

// Meta is the trace's provenance blob, stored as JSON in the header.
// Unknown JSON keys are ignored on read, so later versions may add
// fields without a format bump.
type Meta struct {
	// App names the generating workload, when the trace was exported
	// from one (a workload.Library name).
	App string `json:"app,omitempty"`
	// Note is free-form provenance ("captured by jettysim", ...).
	Note string `json:"note,omitempty"`
}

// zigzag maps a signed delta onto the unsigned varint space so small
// negative and positive deltas both encode in few bytes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
