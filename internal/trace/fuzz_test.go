package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Native fuzz targets for the JTRC codec — the repository's only parser
// of externally supplied bytes (jettyd accepts uploads from the
// network). Two contracts are enforced:
//
//   - FuzzReader: arbitrary bytes never panic, never loop forever, and
//     fail only through error returns; whatever records decode before an
//     error are well-formed.
//   - FuzzRoundTrip: for any record stream and writer options,
//     write → read → write is byte-identical and record-exact.
//
// CI runs both briefly (-fuzztime=10s) on every push; `go test` runs
// just the seed corpus.

// goldenBytes loads the committed format-pin trace, the corpus seed.
func goldenBytes(f *testing.F) []byte {
	f.Helper()
	data, err := os.ReadFile("testdata/v1.jtrc")
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// readerCorpusEntries decodes every corpus entry committed under
// testdata/fuzz/FuzzReader (Go fuzz-corpus v1 files: one []byte
// argument each). Go feeds those files to FuzzReader automatically;
// FuzzRoundTrip seeds from them too, so an interesting Reader input
// found by past fuzzing — typically a framing edge case — also
// exercises the writer path without anyone re-adding it by hand.
func readerCorpusEntries(tb testing.TB) [][]byte {
	tb.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzReader")
	files, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		tb.Fatal(err)
	}
	var out [][]byte
	for _, fe := range files {
		if fe.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, fe.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "go test fuzz v1") {
			tb.Fatalf("%s: not a go fuzz corpus file", fe.Name())
		}
		for _, ln := range lines[1:] {
			ln = strings.TrimSpace(ln)
			if !strings.HasPrefix(ln, "[]byte(") || !strings.HasSuffix(ln, ")") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(ln, "[]byte("), ")"))
			if err != nil {
				tb.Fatalf("%s: %v", fe.Name(), err)
			}
			out = append(out, []byte(s))
		}
	}
	return out
}

func FuzzReader(f *testing.F) {
	golden := goldenBytes(f)
	f.Add(golden)
	// Truncations at interesting boundaries: inside the header, the meta
	// blob, a chunk header, a chunk payload, and before the end marker.
	for _, n := range []int{0, 4, 7, 10, len(golden) / 2, len(golden) - 1} {
		if n <= len(golden) {
			f.Add(golden[:n])
		}
	}
	// Corruptions: flipped flag bits, bogus version, wrong CPU count,
	// oversized declared lengths.
	for _, i := range []int{4, 5, 6, 9, 12, len(golden) - 2} {
		if i < len(golden) {
			mut := append([]byte(nil), golden...)
			mut[i] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Add([]byte("JTRC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: rejected cleanly
		}
		var n uint64
		for {
			cpu, _, err := rd.Read()
			if err != nil {
				if err != io.EOF && rd.Err() == nil {
					t.Fatalf("Read error %v not retained in Err()", err)
				}
				break
			}
			if cpu < 0 || cpu >= rd.CPUs() {
				t.Fatalf("decoded record for cpu %d of %d", cpu, rd.CPUs())
			}
			n++
		}
		if got := rd.Records(); got != n {
			t.Fatalf("Records() = %d after decoding %d", got, n)
		}
		// After exhaustion the reader stays terminal: no resurrection.
		if _, _, err := rd.Read(); err == nil {
			t.Fatal("Read succeeded after terminal state")
		}
		// A cleanly decodable file must also pass the framing scan, with
		// the same record count. (The converse is not required: Summarize
		// skips payloads by design, so payload-level corruption is only
		// caught by the full decode.)
		sum, serr := Summarize(bytes.NewReader(data))
		if rd.Err() == nil {
			if serr != nil {
				t.Fatalf("Summarize rejects what Read decodes cleanly: %v", serr)
			}
			if sum.Records != n {
				t.Fatalf("Summarize counts %d records, decode found %d", sum.Records, n)
			}
		}
	})
}

func FuzzRoundTrip(f *testing.F) {
	f.Add(goldenBytes(f), uint8(3), uint16(4), false)
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0xFF, 0x80, 0x7F}, uint8(1), uint16(1), true)
	f.Add([]byte{}, uint8(127), uint16(0), false)
	// Every committed FuzzReader corpus entry doubles as record-stream
	// material here (the round-trip fuzzer has a different signature, so
	// Go would not feed it those files on its own).
	for _, data := range readerCorpusEntries(f) {
		f.Add(data, uint8(2), uint16(3), false)
		f.Add(data, uint8(5), uint16(0), true)
	}

	f.Fuzz(func(t *testing.T, raw []byte, cpus uint8, chunk uint16, compress bool) {
		ncpu := int(cpus)%MaxCPUs + 1
		// Derive a record stream from the fuzz bytes: op and cpu from one
		// byte, address deltas (zigzag over the full range) from the next
		// eight — exercising forward/backward jumps of every size.
		type rec struct {
			cpu int
			r   Ref
		}
		var recs []rec
		addr := uint64(0)
		for i := 0; i+2 < len(raw); i += 3 {
			h := raw[i]
			delta := int64(int8(raw[i+1]))<<8 | int64(raw[i+2])
			addr += uint64(delta * 37)
			op := Read
			if h&0x80 != 0 {
				op = Write
			}
			recs = append(recs, rec{cpu: int(h) % ncpu, r: Ref{Op: op, Addr: addr}})
		}

		opts := WriterOptions{
			Compress:     compress,
			ChunkRecords: int(chunk),
			Meta:         Meta{App: "fuzz"},
		}
		encode := func(rs []rec) []byte {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, ncpu, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range rs {
				if err := w.Write(x.cpu, x.r); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}

		first := encode(recs)
		rd, err := NewReader(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		var decoded []rec
		for {
			cpu, r, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("own encoding corrupt after %d records: %v", len(decoded), err)
			}
			decoded = append(decoded, rec{cpu: cpu, r: r})
		}
		if len(decoded) != len(recs) {
			t.Fatalf("decoded %d records, wrote %d", len(decoded), len(recs))
		}
		for i := range recs {
			if decoded[i] != recs[i] {
				t.Fatalf("record %d: %+v, want %+v", i, decoded[i], recs[i])
			}
		}

		second := encode(decoded)
		if !bytes.Equal(first, second) {
			t.Fatalf("write→read→write not byte-identical: %d vs %d bytes", len(first), len(second))
		}
	})
}

// TestFuzzSeedsAreWellFormed sanity-checks the seeding helpers: the
// golden seed really decodes (so the fuzzers start from a valid corpus
// entry, not an instantly rejected one), and the committed FuzzReader
// corpus parses — if it did not, FuzzRoundTrip would silently lose its
// cross-seeding and the CI fuzz smoke would cover less than it claims.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	data, err := os.ReadFile("testdata/v1.jtrc")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(bytes.NewReader(data))
	if err != nil || sum.Records == 0 {
		t.Fatalf("golden seed: %v, %d records", err, sum.Records)
	}
	if entries := readerCorpusEntries(t); len(entries) == 0 {
		t.Fatal("no committed FuzzReader corpus entries decoded (testdata/fuzz/FuzzReader)")
	}
	// And the reader's hostile-input bounds are consistent with the
	// format constants (a drifting bound would let a fuzz input demand
	// absurd allocations before being rejected).
	if maxChunkPayloadLen != maxChunkRecords*maxRecordBytes {
		t.Fatal("payload bound no longer derived from the record bound")
	}
	var buf [binary.MaxVarintLen64]byte
	if n := binary.PutUvarint(buf[:], maxChunkPayloadLen); n > binary.MaxVarintLen64 {
		t.Fatal("unencodable bound")
	}
}
