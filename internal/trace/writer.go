package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// WriterOptions configures a trace Writer.
type WriterOptions struct {
	// Compress gzips every chunk payload (flag bit0).
	Compress bool
	// ChunkRecords is how many records accumulate before a chunk is
	// framed and flushed; it is the Writer's (and every Reader's) memory
	// footprint. 0 means DefaultChunkRecords.
	ChunkRecords int
	// Meta is stored in the header.
	Meta Meta
}

// Writer encodes a reference stream to the JTRC v1 format, buffering one
// chunk at a time: memory use is O(ChunkRecords) regardless of trace
// length, so arbitrarily long streams can be written to a pipe.
type Writer struct {
	w            *bufio.Writer
	cpus         int
	compress     bool
	chunkRecords int

	buf   bytes.Buffer // encoded records of the open chunk
	gzBuf bytes.Buffer // scratch for the compressed payload
	gz    *gzip.Writer
	n     int      // records in the open chunk
	last  []uint64 // per-CPU delta state, reset at each chunk boundary
	total uint64

	closed bool
	err    error
}

// NewWriter writes a JTRC header for an nCPU trace and returns the
// Writer. Close it to frame the final chunk and the end marker.
func NewWriter(w io.Writer, cpus int, opts WriterOptions) (*Writer, error) {
	if cpus < 1 || cpus > MaxCPUs {
		return nil, fmt.Errorf("trace: %d cpus out of range 1..%d", cpus, MaxCPUs)
	}
	chunk := opts.ChunkRecords
	if chunk <= 0 {
		chunk = DefaultChunkRecords
	}
	if chunk > maxChunkRecords {
		chunk = maxChunkRecords
	}
	meta, err := json.Marshal(opts.Meta)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding meta: %w", err)
	}
	if len(meta) > maxMetaBytes {
		return nil, fmt.Errorf("trace: meta blob %d bytes exceeds %d", len(meta), maxMetaBytes)
	}

	bw := bufio.NewWriter(w)
	var flags byte
	if opts.Compress {
		flags |= flagGzip
	}
	hdr := make([]byte, 0, 8+len(meta)+binary.MaxVarintLen64)
	hdr = append(hdr, Magic...)
	hdr = append(hdr, Version, flags)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(cpus))
	hdr = binary.AppendUvarint(hdr, uint64(len(meta)))
	hdr = append(hdr, meta...)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	t := &Writer{
		w:            bw,
		cpus:         cpus,
		compress:     opts.Compress,
		chunkRecords: chunk,
		last:         make([]uint64, cpus),
	}
	if opts.Compress {
		t.gz = gzip.NewWriter(&t.gzBuf)
	}
	return t, nil
}

// CPUs returns the trace's CPU count.
func (t *Writer) CPUs() int { return t.cpus }

// Records returns the number of records written so far.
func (t *Writer) Records() uint64 { return t.total }

// Write appends one reference to the trace.
func (t *Writer) Write(cpu int, r Ref) error {
	if t.err != nil {
		return t.err
	}
	if t.closed {
		return errors.New("trace: write on closed Writer")
	}
	if cpu < 0 || cpu >= t.cpus {
		return fmt.Errorf("trace: cpu %d out of range 0..%d", cpu, t.cpus-1)
	}
	head := byte(cpu << 1)
	if r.Op == Write {
		head |= 1
	}
	delta := int64(r.Addr) - int64(t.last[cpu])
	t.last[cpu] = r.Addr

	var rec [maxRecordBytes]byte
	rec[0] = head
	n := 1 + binary.PutUvarint(rec[1:], zigzag(delta))
	t.buf.Write(rec[:n])
	t.n++
	t.total++
	if t.n >= t.chunkRecords {
		if err := t.flushChunk(); err != nil {
			t.err = err
			return err
		}
	}
	return nil
}

// flushChunk frames and writes the open chunk, then resets the per-CPU
// delta state so the next chunk decodes independently.
func (t *Writer) flushChunk() error {
	if t.n == 0 {
		return nil
	}
	payload := t.buf.Bytes()
	if t.compress {
		t.gzBuf.Reset()
		t.gz.Reset(&t.gzBuf)
		if _, err := t.gz.Write(payload); err != nil {
			return err
		}
		if err := t.gz.Close(); err != nil {
			return err
		}
		payload = t.gzBuf.Bytes()
	}
	var frame [1 + 2*binary.MaxVarintLen64]byte
	frame[0] = chunkTag
	n := 1 + binary.PutUvarint(frame[1:], uint64(t.n))
	n += binary.PutUvarint(frame[n:], uint64(len(payload)))
	if _, err := t.w.Write(frame[:n]); err != nil {
		return err
	}
	if _, err := t.w.Write(payload); err != nil {
		return err
	}
	t.buf.Reset()
	t.n = 0
	for i := range t.last {
		t.last[i] = 0
	}
	return nil
}

// Close flushes the final chunk, writes the end marker (with the total
// record count as a redundancy check) and flushes the underlying writer.
// The Writer is unusable afterwards; Close is not idempotent-safe for
// error inspection but repeated calls are harmless no-ops.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.flushChunk(); err != nil {
		t.err = err
		return err
	}
	var frame [1 + binary.MaxVarintLen64]byte
	frame[0] = endTag
	n := 1 + binary.PutUvarint(frame[1:], t.total)
	if _, err := t.w.Write(frame[:n]); err != nil {
		t.err = err
		return err
	}
	if err := t.w.Flush(); err != nil {
		t.err = err
		return err
	}
	return nil
}

// Capture tees a Source: every reference the consumer pulls through it
// is also written to w, in exactly the pull order. Wrapping a
// simulation's source in a Capture is the capture hook — the recorded
// trace replays through the same machine bit-identically, because the
// file holds precisely the sequence of references the machine stepped.
type Capture struct {
	src Source
	w   *Writer
	err error
}

// NewCapture returns src teed to w. The caller keeps ownership of w
// (and must Close it after the run).
func NewCapture(src Source, w *Writer) *Capture {
	return &Capture{src: src, w: w}
}

// CPUs implements Source.
func (c *Capture) CPUs() int { return c.src.CPUs() }

// Next implements Source, recording every delivered reference.
func (c *Capture) Next(cpu int) (Ref, bool) {
	r, ok := c.src.Next(cpu)
	if ok && c.err == nil {
		c.err = c.w.Write(cpu, r)
	}
	return r, ok
}

// Err returns the first recording error, if any. A capture whose writes
// fail keeps delivering references (the simulation is not disturbed);
// the caller checks Err before trusting the file.
func (c *Capture) Err() error { return c.err }

// Record drains src in round-robin order (up to maxPerCPU references
// per CPU; 0 = until exhaustion) into a new trace written to w. It
// returns the number of records written.
func Record(w io.Writer, src Source, maxPerCPU uint64, opts WriterOptions) (uint64, error) {
	tw, err := NewWriter(w, src.CPUs(), opts)
	if err != nil {
		return 0, err
	}
	counts := make([]uint64, src.CPUs())
	alive := src.CPUs()
	for alive > 0 {
		alive = 0
		for cpu := 0; cpu < src.CPUs(); cpu++ {
			if maxPerCPU > 0 && counts[cpu] >= maxPerCPU {
				continue
			}
			r, ok := src.Next(cpu)
			if !ok {
				continue
			}
			if err := tw.Write(cpu, r); err != nil {
				return tw.Records(), err
			}
			counts[cpu]++
			alive++
		}
	}
	return tw.Records(), tw.Close()
}
