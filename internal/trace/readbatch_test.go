package trace

import (
	"bytes"
	"io"
	"testing"
)

// encodeTestTrace returns a small uncompressed trace and its records.
func encodeTestTrace(t *testing.T, n int) ([]byte, []Rec) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Rec
	for i := 0; i < n; i++ {
		cpu := i % 4
		r := Ref{Op: Op(i % 2), Addr: uint64(i) * 96}
		if err := w.Write(cpu, r); err != nil {
			t.Fatal(err)
		}
		want = append(want, Rec{Addr: r.Addr, CPU: int32(cpu), Op: r.Op})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// TestReadBatchMatchesRead decodes the same trace through Read and
// ReadBatch (with an awkward buffer size) and requires identical record
// sequences.
func TestReadBatchMatchesRead(t *testing.T) {
	data, want := encodeTestTrace(t, 1000)

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []Rec
	buf := make([]Rec, 7) // never aligned with chunk boundaries
	for {
		n, err := rd.ReadBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ReadBatch decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if rd.Err() != nil {
		t.Fatalf("clean end of trace left Err = %v", rd.Err())
	}
}

// TestReadBatchErrorIsSticky pins the post-corruption contract: once
// ReadBatch reports a decode error, subsequent calls return the same
// error and decode nothing — they must not resume mid-chunk and
// fabricate records.
func TestReadBatchErrorIsSticky(t *testing.T) {
	data, _ := encodeTestTrace(t, 1000)

	// Corrupt a byte deep inside the first chunk's payload (past the
	// header region) so decoding fails mid-chunk.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0xff

	rd, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Rec, 64)
	var firstErr error
	for firstErr == nil {
		_, err := rd.ReadBatch(buf)
		if err == io.EOF {
			t.Skip("corruption was not detectable at this byte (valid re-encoding)")
		}
		firstErr = err
	}
	before := rd.Records()
	n, err := rd.ReadBatch(buf)
	if n != 0 || err != firstErr {
		t.Fatalf("ReadBatch after error = (%d, %v), want (0, %v)", n, err, firstErr)
	}
	if rd.Records() != before {
		t.Fatalf("ReadBatch after error advanced the record count %d -> %d", before, rd.Records())
	}
}
