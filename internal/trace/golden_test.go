package trace

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file")

// goldenRecords is a fixed stream exercising the encoding's edge cases:
// both ops, forward and backward deltas, a delta of zero, large jumps,
// multiple CPUs, and a chunk boundary (ChunkRecords is 4 below, so the
// delta state resets mid-stream).
var goldenRecords = []struct {
	cpu int
	r   Ref
}{
	{0, Ref{Op: Read, Addr: 0x1000}},
	{1, Ref{Op: Write, Addr: 0x2000}},
	{0, Ref{Op: Read, Addr: 0x1040}},     // +0x40
	{0, Ref{Op: Write, Addr: 0x1000}},    // -0x40
	{2, Ref{Op: Read, Addr: 0}},          // addr 0 (delta 0 from reset state)
	{2, Ref{Op: Read, Addr: 0}},          // repeat: delta 0
	{1, Ref{Op: Write, Addr: 1 << 40}},   // far jump (new chunk: delta from 0)
	{0, Ref{Op: Read, Addr: 0xFFFFFFFF}}, // new chunk too: full address
}

const goldenPath = "testdata/v1.jtrc"

// encodeGolden produces the byte-exact v1 encoding of goldenRecords.
// Compression is deliberately off: gzip output is not guaranteed stable
// across Go releases, so only the uncompressed encoding is pinned (the
// compressed path is covered by round-trip tests).
func encodeGolden(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, WriterOptions{
		ChunkRecords: 4,
		Meta:         Meta{App: "golden", Note: "format pin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldenRecords {
		if err := w.Write(g.cpu, g.r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenEncoding pins the v1 binary encoding: the writer must emit
// exactly the committed bytes, and the committed bytes must decode to
// exactly the original records. Any change to either direction is a
// format change and requires a version bump (see TRACES.md).
func TestGoldenEncoding(t *testing.T) {
	got := encodeGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), goldenPath)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run Golden -update` after an intentional format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v1 encoding changed:\n got %x\nwant %x\nthis is a format break — bump Version and update TRACES.md", got, want)
	}

	// Decode the committed file and verify record-exact replay.
	rd, err := NewReader(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if rd.CPUs() != 3 || rd.Meta().App != "golden" {
		t.Fatalf("header: %d cpus, meta %+v", rd.CPUs(), rd.Meta())
	}
	for i, g := range goldenRecords {
		cpu, r, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if cpu != g.cpu || r != g.r {
			t.Fatalf("record %d: cpu%d %v, want cpu%d %v", i, cpu, r, g.cpu, g.r)
		}
	}
	if _, _, err := rd.Read(); err != io.EOF {
		t.Fatalf("after last record: %v, want EOF", err)
	}
}
