package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomStreams builds deterministic pseudo-random per-CPU streams.
func randomStreams(seed int64, cpus, perCPU int) [][]Ref {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]Ref, cpus)
	for c := range streams {
		base := uint64(c) << 30
		for i := 0; i < perCPU; i++ {
			op := Read
			if r.Intn(3) == 0 {
				op = Write
			}
			addr := base + uint64(r.Intn(1<<20))
			if r.Intn(16) == 0 { // occasional far jumps exercise big deltas
				addr = r.Uint64()
			}
			streams[c] = append(streams[c], Ref{Op: op, Addr: addr})
		}
	}
	return streams
}

// replayAll drains a Reader through the Source interface round-robin.
func replayAll(t *testing.T, rd *Reader, cpus int) [][]Ref {
	t.Helper()
	got := make([][]Ref, cpus)
	for {
		progressed := false
		for cpu := 0; cpu < cpus; cpu++ {
			if r, ok := rd.Next(cpu); ok {
				got[cpu] = append(got[cpu], r)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	// Writer→Reader must be lossless for arbitrary record streams, for
	// every combination of compression and chunking (including chunk
	// sizes that split the stream mid-cycle).
	for _, tc := range []struct {
		name string
		opts WriterOptions
	}{
		{"plain", WriterOptions{}},
		{"gzip", WriterOptions{Compress: true}},
		{"tiny-chunks", WriterOptions{ChunkRecords: 7}},
		{"gzip-tiny-chunks", WriterOptions{Compress: true, ChunkRecords: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const cpus, perCPU = 4, 500
			streams := randomStreams(42, cpus, perCPU)
			var buf bytes.Buffer
			n, err := Record(&buf, NewSliceSource(streams...), 0, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if n != cpus*perCPU {
				t.Fatalf("recorded %d refs, want %d", n, cpus*perCPU)
			}

			rd, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if rd.CPUs() != cpus {
				t.Fatalf("CPUs = %d", rd.CPUs())
			}
			if rd.Compressed() != tc.opts.Compress {
				t.Fatalf("Compressed = %v", rd.Compressed())
			}
			got := replayAll(t, rd, cpus)
			for c := range streams {
				if len(got[c]) != perCPU {
					t.Fatalf("cpu%d: replayed %d refs, want %d", c, len(got[c]), perCPU)
				}
				for i := range streams[c] {
					if got[c][i] != streams[c][i] {
						t.Fatalf("cpu%d ref %d: %v != %v", c, i, got[c][i], streams[c][i])
					}
				}
			}
			if rd.Records() != uint64(cpus*perCPU) {
				t.Fatalf("Records = %d", rd.Records())
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: for random streams, random chunking and either
	// compression mode, sequential Read returns exactly the written
	// sequence.
	f := func(seed int64, rawCPUs uint8, rawChunk uint16, compress bool) bool {
		cpus := int(rawCPUs%8) + 1
		perCPU := 50
		opts := WriterOptions{Compress: compress, ChunkRecords: int(rawChunk%97) + 1}
		streams := randomStreams(seed, cpus, perCPU)

		var buf bytes.Buffer
		w, err := NewWriter(&buf, cpus, opts)
		if err != nil {
			return false
		}
		type rec struct {
			cpu int
			r   Ref
		}
		var wrote []rec
		// Interleave writes in a seed-dependent order, not round-robin.
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		pos := make([]int, cpus)
		for remaining := cpus * perCPU; remaining > 0; remaining-- {
			cpu := r.Intn(cpus)
			for pos[cpu] >= perCPU {
				cpu = (cpu + 1) % cpus
			}
			ref := streams[cpu][pos[cpu]]
			pos[cpu]++
			if err := w.Write(cpu, ref); err != nil {
				return false
			}
			wrote = append(wrote, rec{cpu, ref})
		}
		if err := w.Close(); err != nil {
			return false
		}

		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range wrote {
			cpu, got, err := rd.Read()
			if err != nil || cpu != want.cpu || got != want.r {
				return false
			}
		}
		_, _, err = rd.Read()
		return err == io.EOF && rd.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	meta := Meta{App: "Ocean", Note: "unit test"}
	w, err := NewWriter(&buf, 2, WriterOptions{Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(1, Ref{Op: Write, Addr: 4096}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Meta() != meta {
		t.Fatalf("meta %+v, want %+v", rd.Meta(), meta)
	}
}

func TestRecordMaxPerCPU(t *testing.T) {
	inner := &FuncSource{NumCPUs: 2, Fn: func(cpu int) (Ref, bool) {
		return Ref{Op: Read, Addr: uint64(cpu)}, true
	}}
	var buf bytes.Buffer
	n, err := Record(&buf, inner, 10, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("recorded %d, want 20", n)
	}
}

func TestSequentialStreamCompressesWell(t *testing.T) {
	// Delta encoding: a sequential walk costs ~2 bytes per record plain,
	// and well under 1 byte with gzip.
	refs := make([]Ref, 10000)
	for i := range refs {
		refs[i] = Ref{Op: Read, Addr: uint64(i) * 32}
	}
	var plain, packed bytes.Buffer
	if _, err := Record(&plain, NewSliceSource(refs), 0, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Record(&packed, NewSliceSource(refs), 0, WriterOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if perRef := float64(plain.Len()) / float64(len(refs)); perRef > 2.5 {
		t.Errorf("sequential encoding costs %.2f bytes/ref, want <= 2.5", perRef)
	}
	if perRef := float64(packed.Len()) / float64(len(refs)); perRef > 1 {
		t.Errorf("gzipped sequential encoding costs %.2f bytes/ref, want <= 1", perRef)
	}
}

func TestCapture(t *testing.T) {
	// A capture must store exactly the pull sequence, so that replaying
	// it yields the same references in the same order.
	streams := randomStreams(7, 3, 100)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, WriterOptions{ChunkRecords: 17})
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCapture(NewSliceSource(streams...), w)

	// Pull in an uneven order: cpu2 twice as often as the others.
	var pulled []Ref
	var pulledCPU []int
	for i := 0; ; i++ {
		cpu := []int{0, 2, 1, 2}[i%4]
		r, ok := cp.Next(cpu)
		if !ok {
			break
		}
		pulled = append(pulled, r)
		pulledCPU = append(pulledCPU, cpu)
	}
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pulled {
		cpu, got, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if cpu != pulledCPU[i] || got != want {
			t.Fatalf("record %d: cpu%d %v, want cpu%d %v", i, cpu, got, pulledCPU[i], want)
		}
	}
	if _, _, err := rd.Read(); err != io.EOF {
		t.Fatalf("after last record: %v, want EOF", err)
	}
}

func TestSummarize(t *testing.T) {
	streams := randomStreams(11, 4, 250)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		opts := WriterOptions{Compress: compress, ChunkRecords: 100, Meta: Meta{App: "Barnes"}}
		if _, err := Record(&buf, NewSliceSource(streams...), 0, opts); err != nil {
			t.Fatal(err)
		}
		s, err := Summarize(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if s.CPUs != 4 || s.Records != 1000 || s.Chunks != 10 {
			t.Fatalf("summary %+v, want 4 cpus, 1000 records, 10 chunks", s)
		}
		if s.Meta.App != "Barnes" || s.Compressed != compress {
			t.Fatalf("summary %+v: bad meta/compression", s)
		}
	}
}

func TestAppendConvertAndMerge(t *testing.T) {
	streams := randomStreams(13, 2, 120)
	var orig bytes.Buffer
	if _, err := Record(&orig, NewSliceSource(streams...), 0, WriterOptions{Compress: true, ChunkRecords: 9}); err != nil {
		t.Fatal(err)
	}

	// Convert: gzip/9 → plain/50; the record sequence must survive.
	var conv bytes.Buffer
	src, err := NewReader(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewWriter(&conv, src.CPUs(), WriterOptions{ChunkRecords: 50, Meta: src.Meta()})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Append(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 240 {
		t.Fatalf("converted %d records, want 240", n)
	}

	// Merge: converted + original = the sequence twice over.
	var merged bytes.Buffer
	out, err := NewWriter(&merged, 2, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []*bytes.Buffer{&conv, &orig} {
		r, err := NewReader(bytes.NewReader(in.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Append(out, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, rd, 2)
	for c := range streams {
		want := append(append([]Ref{}, streams[c]...), streams[c]...)
		if len(got[c]) != len(want) {
			t.Fatalf("cpu%d: merged %d refs, want %d", c, len(got[c]), len(want))
		}
		for i := range want {
			if got[c][i] != want[i] {
				t.Fatalf("cpu%d ref %d: %v != %v", c, i, got[c][i], want[i])
			}
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 2, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(0, Ref{Op: Write, Addr: 12345}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[4] = 9; return b }},
		{"unknown flag", func(b []byte) []byte { b[5] |= 0x80; return b }},
		{"zero cpus", func(b []byte) []byte { b[6], b[7] = 0, 0; return b }},
		{"excess cpus", func(b []byte) []byte { b[6], b[7] = 0xFF, 0x00; return b }},
		{"empty", func(b []byte) []byte { return nil }},
		{"header only", func(b []byte) []byte { return b[:9] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mangle(append([]byte(nil), valid...))
			rd, err := NewReader(bytes.NewReader(b))
			if err != nil {
				return // rejected at open: good
			}
			if _, _, err := rd.Read(); err == nil || err == io.EOF {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestReaderTruncatedAndMiscounted(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(0, Ref{Op: Write, Addr: uint64(i) * 999}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Chop the end marker off: the reader must report corruption, not EOF.
	rd, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := rd.Read(); err != nil {
			break
		}
	}
	if rd.Err() == nil {
		t.Error("truncation not reported")
	}

	// Lie in the end marker's total: must be caught.
	lied := append([]byte(nil), full...)
	lied[len(lied)-1] = 7 // declared total (was 5)
	rd, err = NewReader(bytes.NewReader(lied))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := rd.Read(); err != nil {
			break
		}
	}
	if rd.Err() == nil {
		t.Error("end-marker count mismatch not reported")
	}
	if _, err := Summarize(bytes.NewReader(lied)); err == nil {
		t.Error("Summarize missed the end-marker count mismatch")
	}
}

func TestWriterRejectsBadInputs(t *testing.T) {
	if _, err := NewWriter(io.Discard, 0, WriterOptions{}); err == nil {
		t.Error("0 cpus accepted")
	}
	if _, err := NewWriter(io.Discard, 1000, WriterOptions{}); err == nil {
		t.Error("1000 cpus accepted")
	}
	w, err := NewWriter(io.Discard, 2, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(5, Ref{}); err == nil {
		t.Error("out-of-range cpu accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0, Ref{}); err == nil {
		t.Error("write after Close accepted")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}

func TestDigestIsStable(t *testing.T) {
	d1, err := Digest(bytes.NewReader([]byte("abc")))
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := Digest(bytes.NewReader([]byte("abc")))
	d3, _ := Digest(bytes.NewReader([]byte("abd")))
	if d1 != d2 || d1 == d3 {
		t.Fatalf("digests: %s %s %s", d1, d2, d3)
	}
	if len(d1) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(d1))
	}
}

func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2, WriterOptions{Meta: Meta{App: "demo"}})
	w.Write(0, Ref{Op: Read, Addr: 0x1000})
	w.Write(1, Ref{Op: Write, Addr: 0x2000})
	w.Write(0, Ref{Op: Read, Addr: 0x1040})
	w.Close()

	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	for {
		cpu, r, err := rd.Read()
		if err != nil {
			break
		}
		fmt.Printf("cpu%d %s %#x\n", cpu, r.Op, r.Addr)
	}
	// Output:
	// cpu0 R 0x1000
	// cpu1 W 0x2000
	// cpu0 R 0x1040
}
