package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	// Generate a deterministic pseudo-random stream, record it, replay it,
	// and verify reference-for-reference equality.
	r := rand.New(rand.NewSource(42))
	const cpus, perCPU = 4, 500
	streams := make([][]Ref, cpus)
	for c := range streams {
		base := uint64(c) << 30
		for i := 0; i < perCPU; i++ {
			op := Read
			if r.Intn(3) == 0 {
				op = Write
			}
			streams[c] = append(streams[c], Ref{Op: op, Addr: base + uint64(r.Intn(1<<20))})
		}
	}

	var buf bytes.Buffer
	n, err := Record(&buf, NewSliceSource(streams...), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != cpus*perCPU {
		t.Fatalf("recorded %d refs, want %d", n, cpus*perCPU)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.CPUs() != cpus {
		t.Fatalf("CPUs = %d", rd.CPUs())
	}
	got := make([][]Ref, cpus)
	for remaining := cpus * perCPU; remaining > 0; {
		for cpu := 0; cpu < cpus; cpu++ {
			if r, ok := rd.Next(cpu); ok {
				got[cpu] = append(got[cpu], r)
				remaining--
			}
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	for c := range streams {
		if len(got[c]) != perCPU {
			t.Fatalf("cpu%d: replayed %d refs, want %d", c, len(got[c]), perCPU)
		}
		for i := range streams[c] {
			if got[c][i] != streams[c][i] {
				t.Fatalf("cpu%d ref %d: %v != %v", c, i, got[c][i], streams[c][i])
			}
		}
	}
}

func TestRecordMaxPerCPU(t *testing.T) {
	inner := &FuncSource{NumCPUs: 2, Fn: func(cpu int) (Ref, bool) {
		return Ref{Op: Read, Addr: uint64(cpu)}, true
	}}
	var buf bytes.Buffer
	n, err := Record(&buf, inner, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("recorded %d, want 20", n)
	}
}

func TestSequentialStreamCompressesWell(t *testing.T) {
	// Delta encoding: a sequential walk should cost ~2 bytes per record.
	refs := make([]Ref, 10000)
	for i := range refs {
		refs[i] = Ref{Op: Read, Addr: uint64(i) * 32}
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, NewSliceSource(refs), 0); err != nil {
		t.Fatal(err)
	}
	if perRef := float64(buf.Len()) / float64(len(refs)); perRef > 2.5 {
		t.Errorf("sequential encoding costs %.2f bytes/ref, want <= 2.5", perRef)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Valid header, absurd cpu count.
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	buf.Write([]byte{0, 1, 0, 0}) // 256 cpus
	if _, err := NewReader(&buf); err == nil {
		t.Error("excessive cpu count accepted")
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0, Ref{Op: Write, Addr: 12345}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop off the end marker and part of the varint.
	data := buf.Bytes()[:buf.Len()-2]
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rd.Next(0)
	}
	if rd.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestWriterRejectsBadInputs(t *testing.T) {
	if _, err := NewWriter(io.Discard, 0); err == nil {
		t.Error("0 cpus accepted")
	}
	if _, err := NewWriter(io.Discard, 1000); err == nil {
		t.Error("1000 cpus accepted")
	}
	w, err := NewWriter(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(5, Ref{}); err == nil {
		t.Error("out-of-range cpu accepted")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}
