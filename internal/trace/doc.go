// Package trace defines the memory-reference streams that drive the SMP
// simulator, and the JTRC on-disk trace format that makes those streams
// persistent: record once, inspect, share, and replay many times — the
// collect-once/replay-many workflow of the paper's WWT2-based
// methodology.
//
// # Streams
//
// A reference stream is a per-CPU sequence of read/write byte-address
// references behind the Source interface; the simulator interleaves the
// per-CPU streams itself (round-robin, one reference per CPU per turn).
// SliceSource, FuncSource and Limit are in-memory building blocks;
// package workload provides the synthetic application generators.
//
// # The JTRC trace format
//
// A trace file is a versioned binary container (magic "JTRC", version 1)
// holding a header, a JSON metadata blob, and a sequence of chunks of
// varint-delta-encoded records, each chunk optionally gzip-compressed.
// Chunks are independently decodable (the delta state resets at every
// chunk boundary), so Writer and Reader stream in O(chunk) memory and
// Summarize can walk a file's framing without decoding any payload.
// TRACES.md documents the byte-level layout and the versioning rules in
// full.
//
// The pieces fit together as a pipeline:
//
//   - Writer/Reader encode and decode streams chunk by chunk; Reader is
//     itself a Source, so a stored trace replays through the simulator
//     bit-identically (internal/sim RunTraceCtx).
//   - Capture tees any Source to a Writer in exactly the order the
//     consumer pulls references — the capture hook that lets any
//     simulation emit its reference stream to disk as it runs.
//   - Record drains a Source round-robin into a Writer (the bulk
//     exporter behind `tracecat record`).
//   - Append re-encodes one trace into another Writer (conversion and
//     merging), Summarize scans framing only, and Digest content-
//     addresses a file for the engine's result cache.
package trace
