package energy

import (
	"fmt"

	"jetty/internal/addr"
)

// CacheOrg describes a cache for energy purposes.
type CacheOrg struct {
	Name          string
	SizeBytes     int
	Assoc         int
	BlockBytes    int
	UnitsPerBlock int // coherence subblocks per block (>= 1)
	StateBits     int // coherence state bits per unit (paper: 2 for MOSI; we use 3 for MOESI)
}

// Sets returns the number of cache sets.
func (o CacheOrg) Sets() int { return o.SizeBytes / (o.BlockBytes * o.Assoc) }

// Blocks returns the total number of blocks (tag entries).
func (o CacheOrg) Blocks() int { return o.SizeBytes / o.BlockBytes }

// TagBits returns the stored tag width: physical address bits minus set
// index bits minus block offset bits.
func (o CacheOrg) TagBits() int {
	return addr.PhysBits - addr.Log2(uint64(o.Sets())) - addr.Log2(uint64(o.BlockBytes))
}

// TagEntryBits returns the full width of one tag entry: tag, per-unit
// coherence state, and for associative caches the replacement bookkeeping.
func (o CacheOrg) TagEntryBits() int {
	bits := o.TagBits() + o.UnitsPerBlock*o.StateBits
	if o.Assoc > 1 {
		bits += addr.Log2(uint64(o.Assoc)) // LRU rank
	}
	return bits
}

// UnitBits returns the coherence-unit (subblock) size in bits.
func (o CacheOrg) UnitBits() int { return o.BlockBytes / o.UnitsPerBlock * 8 }

// Validate reports configuration errors.
func (o CacheOrg) Validate() error {
	switch {
	case o.SizeBytes <= 0 || !addr.IsPow2(o.SizeBytes):
		return fmt.Errorf("energy: %s size %d not a power of two", o.Name, o.SizeBytes)
	case o.Assoc <= 0 || !addr.IsPow2(o.Assoc):
		return fmt.Errorf("energy: %s assoc %d not a power of two", o.Name, o.Assoc)
	case o.BlockBytes <= 0 || !addr.IsPow2(o.BlockBytes):
		return fmt.Errorf("energy: %s block %d not a power of two", o.Name, o.BlockBytes)
	case o.UnitsPerBlock <= 0 || !addr.IsPow2(o.UnitsPerBlock):
		return fmt.Errorf("energy: %s units/block %d not a power of two", o.Name, o.UnitsPerBlock)
	case o.Sets() < 1:
		return fmt.Errorf("energy: %s has no sets", o.Name)
	case o.StateBits <= 0:
		return fmt.Errorf("energy: %s needs state bits", o.Name)
	}
	return nil
}

// CacheCosts holds per-operation energies (J) of one cache.
type CacheCosts struct {
	// TagRead is one tag probe: all ways of one set are read and compared.
	TagRead float64
	// TagWrite updates one way's tag entry (fill, state change, invalidate).
	TagWrite float64
	// DataReadUnit reads one coherence unit from one way.
	DataReadUnit float64
	// DataWriteUnit writes one coherence unit into one way.
	DataWriteUnit float64
	// WBProbe is the write-buffer CAM probe paid by EVERY snoop — the
	// paper's Fig. 1: a JETTY never filters snoops to the write buffer,
	// so this energy is common to the baseline and the filtered machine.
	WBProbe float64
}

// Costs derives the per-operation energy catalog for a cache, with the tag
// and data arrays banked optimally (CACTI-lite).
func (t Tech) Costs(o CacheOrg) CacheCosts {
	entry := o.TagEntryBits()
	tag := t.OptimizedTagArray(o.Sets(), o.Assoc*entry, o.Assoc*entry)
	// Data array: rows = sets, cols = all ways' block bits; a unit access
	// activates one bank column slice and drives one unit out.
	data := t.OptimizedArray(o.Sets(), o.Assoc*o.BlockBytes*8, o.UnitBits())

	return CacheCosts{
		TagRead:       t.ReadEnergy(tag) + float64(o.Assoc)*t.CompareEnergy(o.TagBits()),
		TagWrite:      t.WriteEnergy(tag, entry),
		DataReadUnit:  t.ReadEnergy(data),
		DataWriteUnit: t.WriteEnergy(data, o.UnitBits()),
		// 8-entry write buffer holding unit addresses (paper's machine).
		WBProbe: t.WriteBufferCosts(8, addr.PhysBits-addr.Log2(uint64(o.BlockBytes/o.UnitsPerBlock))),
	}
}

// WriteBufferCosts returns the per-probe energy of an n-entry write-buffer
// CAM holding unit addresses: every snoop compares the snooped address
// against all entries (never filtered by JETTY).
func (t Tech) WriteBufferCosts(entries, tagBits int) float64 {
	a := Array{Rows: entries, Cols: tagBits, Banks: Unbanked, BitsOut: 1}
	return t.ReadEnergy(a) + float64(entries)*t.CompareEnergy(tagBits)
}

// PaperL2 returns the paper's L2 organization: 1 MB, 4-way, 64-byte blocks
// of two 32-byte subblocks (§4.1), MOESI state per subblock.
func PaperL2() CacheOrg {
	return CacheOrg{
		Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		UnitsPerBlock: 2, StateBits: 3,
	}
}

// PaperL1 returns the paper's L1 organization: 64 KB direct-mapped,
// 32-byte lines.
func PaperL1() CacheOrg {
	return CacheOrg{
		Name: "L1", SizeBytes: 64 << 10, Assoc: 1, BlockBytes: 32,
		UnitsPerBlock: 1, StateBits: 2, // valid + dirty
	}
}
