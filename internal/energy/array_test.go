package energy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTech180Valid(t *testing.T) {
	if !Tech180().Validate() {
		t.Fatal("Tech180 constants are not physically sane")
	}
}

func TestValidateRejectsBadTech(t *testing.T) {
	bad := Tech180()
	bad.Vdd = 0
	if bad.Validate() {
		t.Error("zero Vdd accepted")
	}
	bad = Tech180()
	bad.SwingRead = bad.Vdd * 2
	if bad.Validate() {
		t.Error("swing above rail accepted")
	}
}

func TestReadEnergyGrowsWithRows(t *testing.T) {
	tech := Tech180()
	small := Array{Rows: 64, Cols: 128, Banks: Unbanked, BitsOut: 32}
	big := Array{Rows: 4096, Cols: 128, Banks: Unbanked, BitsOut: 32}
	if tech.ReadEnergy(big) <= tech.ReadEnergy(small) {
		t.Error("read energy should grow with rows (longer bit lines)")
	}
}

func TestReadEnergyGrowsWithCols(t *testing.T) {
	tech := Tech180()
	small := Array{Rows: 256, Cols: 64, Banks: Unbanked, BitsOut: 32}
	big := Array{Rows: 256, Cols: 2048, Banks: Unbanked, BitsOut: 32}
	if tech.ReadEnergy(big) <= tech.ReadEnergy(small) {
		t.Error("read energy should grow with cols (more bit lines switched)")
	}
}

func TestBankingReducesLargeArrayEnergy(t *testing.T) {
	tech := Tech180()
	a := Array{Rows: 4096, Cols: 2048, Banks: Unbanked, BitsOut: 256}
	unbanked := tech.ReadEnergy(a)
	a.Banks = tech.OptimalBanking(a)
	banked := tech.ReadEnergy(a)
	if banked >= unbanked {
		t.Errorf("optimal banking (%v) did not reduce energy: %g >= %g", a.Banks, banked, unbanked)
	}
}

func TestOptimalBankingNeverWorse(t *testing.T) {
	tech := Tech180()
	f := func(r, c uint16) bool {
		rows := 1 << (int(r)%8 + 2) // 4..2048
		cols := 1 << (int(c)%8 + 2)
		a := Array{Rows: rows, Cols: cols, Banks: Unbanked, BitsOut: 32}
		base := tech.ReadEnergy(a)
		a.Banks = tech.OptimalBanking(a)
		return tech.ReadEnergy(a) <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTinyArrayStaysUnbanked(t *testing.T) {
	tech := Tech180()
	a := Array{Rows: 32, Cols: 32, Banks: Unbanked, BitsOut: 32}
	if got := tech.OptimalBanking(a); got != Unbanked {
		// Not a hard requirement, but banking a register-file-sized array
		// should never pay off with routing overheads modeled.
		t.Errorf("32x32 array banked as %v", got)
	}
}

func TestWriteEnergyScalesWithBits(t *testing.T) {
	tech := Tech180()
	a := Array{Rows: 256, Cols: 256, Banks: Unbanked, BitsOut: 32}
	if tech.WriteEnergy(a, 256) <= tech.WriteEnergy(a, 8) {
		t.Error("writing more bits should cost more")
	}
}

func TestEnergiesPositive(t *testing.T) {
	tech := Tech180()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a := Array{
			Rows: 1 << (r.Intn(12) + 1), Cols: 1 << (r.Intn(12) + 1),
			Banks: Unbanked, BitsOut: 1 + r.Intn(256),
		}
		if tech.ReadEnergy(a) <= 0 {
			t.Fatalf("non-positive read energy for %+v", a)
		}
		if tech.WriteEnergy(a, 16) <= 0 {
			t.Fatalf("non-positive write energy for %+v", a)
		}
	}
}

func TestCompareEnergyLinear(t *testing.T) {
	tech := Tech180()
	if tech.CompareEnergy(40) != 2*tech.CompareEnergy(20) {
		t.Error("compare energy should be linear in bits")
	}
}

func TestBankingString(t *testing.T) {
	if got := (Banking{Ndwl: 4, Ndbl: 2}).String(); got != "4x2" {
		t.Errorf("Banking.String() = %q", got)
	}
}

func TestModeString(t *testing.T) {
	if SerialTagData.String() != "serial" || ParallelTagData.String() != "parallel" {
		t.Error("mode strings wrong")
	}
}
