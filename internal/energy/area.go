package energy

// Area estimation: the paper's conclusion points at "performance and cost
// optimizations" as further applications of snoop filters; cost means
// silicon area. The model below is deliberately simple — SRAM cell area
// times bit count, plus a periphery overhead factor per array — but it is
// consistent across structures, which is all comparisons need.

// peripheryFactor inflates raw cell area for decoders, sense amplifiers
// and drivers (a standard ~30% adder for small SRAM macros).
const peripheryFactor = 1.3

// cellAreaUM2 returns the area of one SRAM cell in µm².
func (t Tech) cellAreaUM2() float64 { return t.CellWidthUM * t.CellHeightUM }

// ArrayAreaUM2 returns the estimated silicon area of an array in µm².
func (t Tech) ArrayAreaUM2(a Array) float64 {
	bits := float64(a.Rows) * float64(a.Cols)
	return bits * t.cellAreaUM2() * peripheryFactor
}

// CacheAreaUM2 returns the estimated area of a cache's tag and data
// arrays in µm².
func (t Tech) CacheAreaUM2(o CacheOrg) (tag, data float64) {
	tagBits := float64(o.Sets()) * float64(o.Assoc*o.TagEntryBits())
	dataBits := float64(o.SizeBytes) * 8
	return tagBits * t.cellAreaUM2() * peripheryFactor,
		dataBits * t.cellAreaUM2() * peripheryFactor
}

// ExcludeAreaUM2 returns the estimated area of an EJ/VEJ array in µm².
func (t Tech) ExcludeAreaUM2(o ExcludeOrg) float64 {
	bits := float64(o.Sets*o.Ways) * float64(o.TagBits+o.VectorBits)
	return bits * t.cellAreaUM2() * peripheryFactor
}

// IncludeAreaUM2 returns the estimated area of an IJ (p-bit arrays plus
// counter arrays) in µm².
func (t Tech) IncludeAreaUM2(o IncludeOrg) float64 {
	bits := float64(o.PBitStorageBits() + o.CntStorageBits())
	return bits * t.cellAreaUM2() * peripheryFactor
}
