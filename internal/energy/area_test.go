package energy

import "testing"

func TestAreaPositiveAndMonotone(t *testing.T) {
	tech := Tech180()
	small := Array{Rows: 32, Cols: 32, Banks: Unbanked, BitsOut: 32}
	big := Array{Rows: 1024, Cols: 256, Banks: Unbanked, BitsOut: 32}
	as, ab := tech.ArrayAreaUM2(small), tech.ArrayAreaUM2(big)
	if as <= 0 || ab <= as {
		t.Errorf("area not positive/monotone: %g vs %g", as, ab)
	}
}

func TestJettyAreaTinyVsL2(t *testing.T) {
	// The paper's cost argument: the largest JETTY is a rounding error
	// next to the L2 it guards.
	tech := Tech180()
	tag, data := tech.CacheAreaUM2(PaperL2())
	hjArea := tech.IncludeAreaUM2(IncludeOrg{Entries: 1024, NumArrays: 4, CntBits: 14}) +
		tech.ExcludeAreaUM2(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 26, VectorBits: 1})
	if hjArea <= 0 {
		t.Fatal("non-positive filter area")
	}
	if ratio := hjArea / (tag + data); ratio > 0.01 {
		t.Errorf("largest HJ is %.3f%% of the L2 area; expected well under 1%%", ratio*100)
	}
}

func TestCacheAreaSplit(t *testing.T) {
	tech := Tech180()
	tag, data := tech.CacheAreaUM2(PaperL2())
	if tag <= 0 || data <= 0 {
		t.Fatal("non-positive cache area")
	}
	// 1MB data vs ~26-bit-entry tags: data dominates by far.
	if tag >= data/10 {
		t.Errorf("tag area %g should be well under a tenth of data area %g", tag, data)
	}
}

func TestExcludeAreaScalesWithEntries(t *testing.T) {
	tech := Tech180()
	a := tech.ExcludeAreaUM2(ExcludeOrg{Sets: 8, Ways: 2, TagBits: 26, VectorBits: 1})
	b := tech.ExcludeAreaUM2(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 26, VectorBits: 1})
	if b <= a {
		t.Error("bigger EJ should occupy more area")
	}
}
