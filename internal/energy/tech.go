package energy

// Tech holds the process/circuit constants of the energy model.
// The defaults (Tech180) are representative published values for a
// 0.18 µm CMOS process at 1.8 V, the paper's technology point.
type Tech struct {
	Vdd       float64 // supply voltage (V)
	SwingRead float64 // bit-line read swing (V); writes swing full rail

	CBitDrain  float64 // drain capacitance each cell adds to its bit line (F)
	CWordGate  float64 // gate capacitance each cell adds to its word line (F)
	CWirePerUM float64 // metal wire capacitance (F/µm)

	CellWidthUM  float64 // SRAM cell width (µm), sets word-line wire length
	CellHeightUM float64 // SRAM cell height (µm), sets bit-line wire length

	ESenseAmp float64 // energy per activated sense amplifier (J)
	CDecodeFF float64 // effective decoder capacitance per address bit (F)
	COutBit   float64 // capacitance driven per output bit (F)

	ECompareBit float64 // energy per compared tag bit (comparator) (J)
	EBankFixed  float64 // per-access periphery overhead of each extra sub-bank (J)
}

// Tech180 returns the 0.18 µm / 1.8 V technology point used throughout the
// reproduction (paper §4.1: "0.18µm CMOS technology operating at 1.8V").
func Tech180() Tech {
	return Tech{
		Vdd:          1.8,
		SwingRead:    0.3,
		CBitDrain:    1.5e-15, // 1.5 fF drain load per cell
		CWordGate:    1.8e-15, // 1.8 fF of pass-gate load per cell
		CWirePerUM:   0.27e-15,
		CellWidthUM:  2.4,
		CellHeightUM: 1.8,
		ESenseAmp:    6.0e-14, // 0.06 pJ per sensed column
		CDecodeFF:    40e-15,  // per address bit, lumped
		COutBit:      25e-15,
		ECompareBit:  4.0e-15,
		EBankFixed:   2.0e-13, // 0.2 pJ of decoder/sense periphery per extra bank
	}
}

// Validate reports whether the technology constants are physically sane
// (all positive, read swing below the rail).
func (t Tech) Validate() bool {
	pos := t.Vdd > 0 && t.SwingRead > 0 && t.CBitDrain > 0 && t.CWordGate > 0 &&
		t.CWirePerUM > 0 && t.CellWidthUM > 0 && t.CellHeightUM > 0 &&
		t.ESenseAmp > 0 && t.CDecodeFF > 0 && t.COutBit > 0 && t.ECompareBit > 0 && t.EBankFixed > 0
	return pos && t.SwingRead < t.Vdd
}
