// Package energy implements the analytical cache-energy model the paper
// uses to evaluate JETTY: a Kamble–Ghose-style per-access model of SRAM
// array energy (bit lines, word lines, sense amps, decode and output
// drivers), a CACTI-lite bank-organization optimizer (the paper "used CACTI
// to determine the optimal number of banks"), per-operation energy catalogs
// for the L2/L1/write-buffer and for every JETTY structure, and an
// accounting layer that maps simulator event counts to joules and to the
// paper's two reduction metrics (over snoop accesses, over all L2 accesses).
//
// Absolute joule values depend on process constants that the paper takes
// from a 0.18 µm tutorial; what the evaluation actually relies on is the
// *ratio* between structures (a JETTY probe must be tiny next to an L2 tag
// probe, data arrays dwarf tag arrays, …), and those ratios derive from
// array geometry exactly as in Kamble–Ghose.
//
// The model divides into: Tech (process constants; Tech180 is the
// paper's 0.18 µm point), CacheOrg/ExcludeOrg/IncludeOrg (array
// geometries of the L2 and each JETTY structure), per-operation Costs
// derived from them, Counts/FilterCounts (the event tallies the
// simulator accumulates), and Account/AccountFiltered, which combine
// counts and costs into Breakdowns and the paper's Figure 6 reduction
// metrics.
package energy
