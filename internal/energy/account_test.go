package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleCounts() Counts {
	return Counts{
		LocalReads: 1000, LocalWrites: 400,
		LocalReadHits: 800, LocalWriteHits: 350,
		LocalFills: 250, LocalStateWrite: 60,
		TagAllocs: 120, TagEvictions: 110, DirtyWBUnits: 90,
		Snoops: 3000, SnoopHits: 300, SnoopMisses: 2700,
		SnoopSupplies: 200, SnoopStateWrites: 280,
	}
}

func TestCountsAdd(t *testing.T) {
	a := sampleCounts()
	b := sampleCounts()
	a.Add(b)
	if a.Snoops != 6000 || a.LocalReads != 2000 || a.DirtyWBUnits != 180 {
		t.Errorf("Add mismatch: %+v", a)
	}
}

func TestFilterCountsAdd(t *testing.T) {
	a := FilterCounts{Probes: 10, Filtered: 6, EJWrites: 2, CntUpdates: 3, PBitWrites: 1}
	a.Add(FilterCounts{Probes: 5, Filtered: 1, FilteredHits: 2})
	if a.Probes != 15 || a.Filtered != 7 || a.FilteredHits != 2 {
		t.Errorf("Add mismatch: %+v", a)
	}
}

func TestBaselineBreakdownPositive(t *testing.T) {
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	b := Account(sampleCounts(), costs, 4, SerialTagData)
	if b.LocalTag <= 0 || b.SnoopTag <= 0 || b.LocalData <= 0 || b.SnoopData <= 0 {
		t.Errorf("breakdown has non-positive components: %+v", b)
	}
	if b.Jetty != 0 {
		t.Errorf("baseline must have no jetty energy, got %g", b.Jetty)
	}
	if b.SnoopWB <= 0 {
		t.Error("write-buffer probe energy must be charged on snoops")
	}
	if math.Abs(b.Total()-(b.LocalTag+b.LocalData+b.SnoopTag+b.SnoopData+b.SnoopState+b.SnoopWB)) > 1e-18 {
		t.Error("Total() mismatch")
	}
}

func TestParallelCostsMoreThanSerial(t *testing.T) {
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	ser := Account(c, costs, 4, SerialTagData)
	par := Account(c, costs, 4, ParallelTagData)
	if par.Total() <= ser.Total() {
		t.Errorf("parallel (%.3e) should cost more than serial (%.3e)", par.Total(), ser.Total())
	}
	if par.SnoopData <= ser.SnoopData {
		t.Error("parallel snoop data energy should exceed serial's")
	}
}

func TestFilteringReducesSnoopTag(t *testing.T) {
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	fcost := HybridCosts(
		tech.IncludeCosts(IncludeOrg{Entries: 512, NumArrays: 4, CntBits: 14}),
		tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 24, VectorBits: 1}),
	)
	fc := FilterCounts{Probes: c.Snoops, Filtered: 2000, EJWrites: 500,
		CntUpdates: c.TagAllocs + c.TagEvictions, PBitWrites: 100}

	base := Account(c, costs, 4, SerialTagData)
	with := AccountFiltered(c, costs, 4, SerialTagData, fc, fcost)

	if with.SnoopTag >= base.SnoopTag {
		t.Error("filtering should cut snoop tag energy")
	}
	if with.Jetty <= 0 {
		t.Error("filter energy must be charged")
	}
	if with.Total() >= base.Total() {
		t.Errorf("with-jetty total (%.4e) should beat baseline (%.4e) at 2/3 filter rate", with.Total(), base.Total())
	}
	// Local components must be identical: jetty never touches local accesses.
	if with.LocalTag != base.LocalTag || with.LocalData != base.LocalData {
		t.Error("local energy must be unchanged by filtering")
	}
}

func TestZeroCoverageCostsExtra(t *testing.T) {
	// A filter that never filters anything strictly adds energy — the
	// paper's "worst case" (§2, widely-shared data).
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	fcost := tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 24, VectorBits: 1})
	fc := FilterCounts{Probes: c.Snoops, Filtered: 0, EJWrites: 2500}
	base := Account(c, costs, 4, SerialTagData)
	with := AccountFiltered(c, costs, 4, SerialTagData, fc, fcost)
	if with.Total() <= base.Total() {
		t.Error("useless filter must increase total energy")
	}
}

func TestFilteredClampedToSnoops(t *testing.T) {
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	fc := FilterCounts{Probes: c.Snoops, Filtered: c.Snoops * 10}
	b := AccountFiltered(c, costs, 4, SerialTagData, fc, FilterCosts{})
	if b.SnoopTag != 0 {
		t.Errorf("over-filtering should clamp snoop tag to 0, got %g", b.SnoopTag)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(10, 7); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Reduction(10,7) = %g, want 0.3", got)
	}
	if got := Reduction(0, 5); got != 0 {
		t.Errorf("Reduction(0,5) = %g, want 0", got)
	}
	if got := Reduction(10, 12); got >= 0 {
		// More energy than baseline is a negative reduction.
		if got != -0.2 {
			t.Errorf("Reduction(10,12) = %g, want -0.2", got)
		}
	}
}

func TestReductionMonotoneInCoverage(t *testing.T) {
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	fcost := tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 24, VectorBits: 1})
	base := Account(c, costs, 4, SerialTagData).Total()

	f := func(f1, f2 uint16) bool {
		a, b := uint64(f1)%c.Snoops, uint64(f2)%c.Snoops
		if a > b {
			a, b = b, a
		}
		lo := AccountFiltered(c, costs, 4, SerialTagData,
			FilterCounts{Probes: c.Snoops, Filtered: a}, fcost).Total()
		hi := AccountFiltered(c, costs, 4, SerialTagData,
			FilterCounts{Probes: c.Snoops, Filtered: b}, fcost).Total()
		return Reduction(base, hi) >= Reduction(base, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJettyProbeTinyVsL2Tag(t *testing.T) {
	// Paper §2.2: "JETTY is much smaller than the tag hierarchy". The
	// largest structures used must probe at a small fraction of the L2 tag
	// probe energy or the whole scheme cannot win.
	tech := Tech180()
	l2 := tech.Costs(PaperL2())
	biggest := HybridCosts(
		tech.IncludeCosts(IncludeOrg{Entries: 1024, NumArrays: 4, CntBits: 14}),
		tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 26, VectorBits: 1}),
	)
	if ratio := biggest.Probe / l2.TagRead; ratio > 0.5 {
		t.Errorf("largest HJ probe is %.2fx the L2 tag probe; filter cannot save energy", ratio)
	}
}

func TestIncludeStorageArithmetic(t *testing.T) {
	o := IncludeOrg{Entries: 1024, NumArrays: 4, CntBits: 14}
	if o.PBitStorageBits() != 4096 {
		t.Errorf("p-bits = %d, want 4096", o.PBitStorageBits())
	}
	if o.CntStorageBits() != 4*1024*14 {
		t.Errorf("cnt bits = %d", o.CntStorageBits())
	}
}

func TestHybridCostsCombine(t *testing.T) {
	tech := Tech180()
	ij := tech.IncludeCosts(IncludeOrg{Entries: 256, NumArrays: 4, CntBits: 14})
	ej := tech.ExcludeCosts(ExcludeOrg{Sets: 16, Ways: 2, TagBits: 25, VectorBits: 1})
	hj := HybridCosts(ij, ej)
	if hj.Probe != ij.Probe+ej.Probe {
		t.Error("hybrid probe must pay both structures")
	}
	if hj.EJWrite != ej.EJWrite || hj.CntUpdate != ij.CntUpdate {
		t.Error("hybrid write costs must come from the constituent parts")
	}
}

func TestVectorEntryCheaperPerCoveredUnit(t *testing.T) {
	tech := Tech180()
	ej := tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 26, VectorBits: 1})
	vej := tech.ExcludeCosts(ExcludeOrg{Sets: 32, Ways: 4, TagBits: 23, VectorBits: 8})
	// A VEJ entry covers 8 units; probing should not cost 8x the EJ probe.
	if vej.Probe > 2*ej.Probe {
		t.Errorf("VEJ probe %.3e unexpectedly large vs EJ %.3e", vej.Probe, ej.Probe)
	}
}

func TestWBProbeEnergyNotFilterable(t *testing.T) {
	// The write-buffer probe is paid by every snoop even at 100% coverage
	// (the paper's Fig. 1: only the L2 tag probe is skipped).
	tech := Tech180()
	costs := tech.Costs(PaperL2())
	c := sampleCounts()
	fc := FilterCounts{Probes: c.Snoops, Filtered: c.Snoops}
	with := AccountFiltered(c, costs, 4, SerialTagData, fc, FilterCosts{})
	base := Account(c, costs, 4, SerialTagData)
	if with.SnoopWB != base.SnoopWB {
		t.Errorf("WB energy changed under filtering: %g vs %g", with.SnoopWB, base.SnoopWB)
	}
	if with.SnoopWB <= 0 {
		t.Error("WB energy missing")
	}
}
