package energy

import "testing"

func TestPaperOrgsValid(t *testing.T) {
	if err := PaperL2().Validate(); err != nil {
		t.Errorf("PaperL2 invalid: %v", err)
	}
	if err := PaperL1().Validate(); err != nil {
		t.Errorf("PaperL1 invalid: %v", err)
	}
}

func TestPaperL2Geometry(t *testing.T) {
	o := PaperL2()
	if got := o.Sets(); got != 4096 {
		t.Errorf("L2 sets = %d, want 4096 (1MB / (64B * 4 ways))", got)
	}
	if got := o.Blocks(); got != 16384 {
		t.Errorf("L2 blocks = %d, want 16384", got)
	}
	// 36-bit PA - 12 set bits - 6 offset bits = 18 tag bits.
	if got := o.TagBits(); got != 18 {
		t.Errorf("L2 tag bits = %d, want 18", got)
	}
	if got := o.UnitBits(); got != 256 {
		t.Errorf("L2 unit bits = %d, want 256 (32B subblock)", got)
	}
}

func TestPaperL1Geometry(t *testing.T) {
	o := PaperL1()
	if got := o.Sets(); got != 2048 {
		t.Errorf("L1 sets = %d, want 2048", got)
	}
	// 36 - 11 - 5 = 20 tag bits.
	if got := o.TagBits(); got != 20 {
		t.Errorf("L1 tag bits = %d, want 20", got)
	}
}

func TestCacheOrgValidateErrors(t *testing.T) {
	bads := []CacheOrg{
		{Name: "sz", SizeBytes: 3000, Assoc: 1, BlockBytes: 64, UnitsPerBlock: 1, StateBits: 2},
		{Name: "as", SizeBytes: 1 << 20, Assoc: 3, BlockBytes: 64, UnitsPerBlock: 1, StateBits: 2},
		{Name: "bl", SizeBytes: 1 << 20, Assoc: 1, BlockBytes: 48, UnitsPerBlock: 1, StateBits: 2},
		{Name: "un", SizeBytes: 1 << 20, Assoc: 1, BlockBytes: 64, UnitsPerBlock: 3, StateBits: 2},
		{Name: "st", SizeBytes: 1 << 20, Assoc: 1, BlockBytes: 64, UnitsPerBlock: 1, StateBits: 0},
	}
	for _, o := range bads {
		if err := o.Validate(); err == nil {
			t.Errorf("org %q: expected validation error", o.Name)
		}
	}
}

func TestTagEntryIncludesLRU(t *testing.T) {
	dm := CacheOrg{Name: "dm", SizeBytes: 1 << 20, Assoc: 1, BlockBytes: 64, UnitsPerBlock: 1, StateBits: 3}
	sa := dm
	sa.Assoc = 4
	// 4-way loses 2 set-index bits -> +2 tag bits, plus 2 LRU bits.
	if sa.TagEntryBits() != dm.TagEntryBits()+4 {
		t.Errorf("entry bits: dm=%d sa=%d", dm.TagEntryBits(), sa.TagEntryBits())
	}
}

func TestCostsOrdering(t *testing.T) {
	tech := Tech180()
	l2 := tech.Costs(PaperL2())
	l1 := tech.Costs(PaperL1())

	if l2.TagRead <= 0 || l2.DataReadUnit <= 0 {
		t.Fatal("non-positive L2 costs")
	}
	// The paper's motivation (§1): in large high-associativity L2s, tag
	// lookups read multiple block tags and "account for a significant
	// fraction of the overall energy consumed" — tag and data accesses are
	// of comparable magnitude, not orders apart.
	if r := l2.TagRead / l2.DataReadUnit; r < 0.25 || r > 4 {
		t.Errorf("L2 tag/data-unit energy ratio = %.2f, want comparable (0.25..4)", r)
	}
	if l1.TagRead >= l2.TagRead {
		t.Errorf("L1 tag probe (%.3e) should be cheaper than L2's 4-way probe (%.3e)", l1.TagRead, l2.TagRead)
	}
}

func TestHigherAssocCostsMoreTagEnergy(t *testing.T) {
	tech := Tech180()
	base := PaperL2()
	wide := base
	wide.Assoc = 8
	if tech.Costs(wide).TagRead <= tech.Costs(base).TagRead {
		t.Error("8-way tag probe should cost more than 4-way (reads more tags)")
	}
}

func TestBiggerCacheCostsMore(t *testing.T) {
	tech := Tech180()
	small := PaperL2()
	big := small
	big.SizeBytes = 4 << 20
	if tech.Costs(big).TagRead <= tech.Costs(small).TagRead {
		t.Error("4MB tag probe should cost more than 1MB")
	}
	if tech.Costs(big).DataReadUnit <= tech.Costs(small).DataReadUnit {
		t.Error("4MB data access should cost more than 1MB")
	}
}

func TestWriteBufferProbeTiny(t *testing.T) {
	tech := Tech180()
	wb := tech.WriteBufferCosts(8, 31)
	l2 := tech.Costs(PaperL2())
	if wb <= 0 {
		t.Fatal("WB probe energy must be positive")
	}
	if wb >= l2.TagRead/4 {
		t.Errorf("8-entry WB probe (%.3e) should be well under the L2 tag probe (%.3e)", wb, l2.TagRead)
	}
}
