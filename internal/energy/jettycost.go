package energy

// ExcludeOrg describes an exclude-JETTY (EJ) or vector-exclude-JETTY (VEJ)
// storage array for energy purposes: Sets x Ways entries of
// (TagBits tag + VectorBits presence). Plain EJ has VectorBits == 1.
type ExcludeOrg struct {
	Sets, Ways, TagBits, VectorBits int
}

// entryBits returns one EJ entry's width.
func (o ExcludeOrg) entryBits() int { return o.TagBits + o.VectorBits }

// IncludeOrg describes an include-JETTY (IJ) for energy purposes:
// NumArrays sub-arrays of Entries (= 2^E) positions, each with a presence
// bit and a CntBits counter. On a snoop only the p-bit arrays are read
// (paper §3.2/Fig. 3(c)); counters are touched only on L2 block
// allocation/eviction.
type IncludeOrg struct {
	Entries, NumArrays, CntBits int
}

// PBitStorageBits returns total presence-bit storage.
func (o IncludeOrg) PBitStorageBits() int { return o.Entries * o.NumArrays }

// CntStorageBits returns total counter storage.
func (o IncludeOrg) CntStorageBits() int { return o.Entries * o.NumArrays * o.CntBits }

// FilterCosts holds the per-operation energies (J) of one JETTY instance.
type FilterCosts struct {
	// Probe is charged on every snoop: the EJ set read+compare plus every
	// IJ p-bit array read (hybrids pay both; pure variants pay one part).
	Probe float64
	// EJWrite is one exclude-array entry write (allocation or present-bit
	// clear on a local fill).
	EJWrite float64
	// CntUpdate is the counter read-modify-write across all IJ sub-arrays
	// for one L2 block allocation or eviction.
	CntUpdate float64
	// PBitWrite is one presence-bit array write (p-bit set/clear).
	PBitWrite float64
}

// ExcludeCosts returns the probe/write energies of an EJ/VEJ array.
func (t Tech) ExcludeCosts(o ExcludeOrg) FilterCosts {
	entry := o.entryBits()
	a := Array{Rows: o.Sets, Cols: o.Ways * entry, Banks: Unbanked, BitsOut: o.Ways * entry}
	probe := t.ReadEnergy(a) + float64(o.Ways)*t.CompareEnergy(o.TagBits)
	return FilterCosts{
		Probe:   probe,
		EJWrite: t.WriteEnergy(a, entry),
	}
}

// pbitArray returns the square-ish physical organization of one IJ p-bit
// sub-array (paper Fig. 3(c): 256 entries as 16x16, 1024 as 32x32).
func pbitArray(entries int) Array {
	rows := 1
	for rows*rows < entries {
		rows *= 2
	}
	cols := entries / rows
	if cols < 1 {
		cols = 1
	}
	return Array{Rows: rows, Cols: cols, Banks: Unbanked, BitsOut: 1}
}

// IncludeCosts returns the probe/update energies of an IJ.
func (t Tech) IncludeCosts(o IncludeOrg) FilterCosts {
	pb := pbitArray(o.Entries)
	probe := float64(o.NumArrays) * t.ReadEnergy(pb)

	cnt := t.OptimizedArray(o.Entries, o.CntBits, o.CntBits)
	update := float64(o.NumArrays) * (t.ReadEnergy(cnt) + t.WriteEnergy(cnt, o.CntBits))

	return FilterCosts{
		Probe:     probe,
		CntUpdate: update,
		PBitWrite: t.WriteEnergy(pb, 1),
	}
}

// HybridCosts combines an IJ and an EJ probed in parallel (paper §3.3):
// every probe pays both structures; writes keep their own costs.
func HybridCosts(ij, ej FilterCosts) FilterCosts {
	return FilterCosts{
		Probe:     ij.Probe + ej.Probe,
		EJWrite:   ej.EJWrite,
		CntUpdate: ij.CntUpdate,
		PBitWrite: ij.PBitWrite,
	}
}
