package energy

// Mode selects how the L2 tag and data arrays are sequenced.
type Mode int

const (
	// SerialTagData probes tags first and touches the data array only on a
	// hit (Alpha 21164 / Intel Xeon style; the paper's energy-optimized L2).
	SerialTagData Mode = iota
	// ParallelTagData reads all ways' data concurrently with the tag probe
	// (latency-optimized; paper Fig. 6(c)(d)).
	ParallelTagData
)

// String names the mode.
func (m Mode) String() string {
	if m == ParallelTagData {
		return "parallel"
	}
	return "serial"
}

// Counts aggregates the L2-relevant event counts of one simulation run
// (all CPUs). The simulator fills this in; Account turns it into joules.
type Counts struct {
	// Processor-side (local) L2 activity.
	LocalReads      uint64 // tag probes from L1 read misses
	LocalWrites     uint64 // tag probes from L1 writebacks / write misses
	LocalReadHits   uint64
	LocalWriteHits  uint64
	LocalFills      uint64 // coherence units installed (tag write + data write)
	LocalStateWrite uint64 // tag-entry state updates on local hits (e.g. S->M)
	TagAllocs       uint64 // block tags installed (drives IJ counters)
	TagEvictions    uint64 // block tags removed (drives IJ counters)
	DirtyWBUnits    uint64 // dirty units read out on eviction/supply writeback

	// Snoop-side activity (counts are for the *unfiltered* machine; the
	// filter's Filtered count is subtracted at accounting time).
	Snoops           uint64 // snoop-induced tag probes
	SnoopHits        uint64
	SnoopMisses      uint64
	SnoopSupplies    uint64 // snoop hits that read data out to the bus
	SnoopStateWrites uint64 // snoop hits that updated tag state
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.LocalReads += other.LocalReads
	c.LocalWrites += other.LocalWrites
	c.LocalReadHits += other.LocalReadHits
	c.LocalWriteHits += other.LocalWriteHits
	c.LocalFills += other.LocalFills
	c.LocalStateWrite += other.LocalStateWrite
	c.TagAllocs += other.TagAllocs
	c.TagEvictions += other.TagEvictions
	c.DirtyWBUnits += other.DirtyWBUnits
	c.Snoops += other.Snoops
	c.SnoopHits += other.SnoopHits
	c.SnoopMisses += other.SnoopMisses
	c.SnoopSupplies += other.SnoopSupplies
	c.SnoopStateWrites += other.SnoopStateWrites
}

// Sub returns c - other field by field. Counters are monotone within one
// run, so subtracting an earlier snapshot from a later one yields the
// interval's activity (the metrics sampler's window deltas).
func (c Counts) Sub(other Counts) Counts {
	c.LocalReads -= other.LocalReads
	c.LocalWrites -= other.LocalWrites
	c.LocalReadHits -= other.LocalReadHits
	c.LocalWriteHits -= other.LocalWriteHits
	c.LocalFills -= other.LocalFills
	c.LocalStateWrite -= other.LocalStateWrite
	c.TagAllocs -= other.TagAllocs
	c.TagEvictions -= other.TagEvictions
	c.DirtyWBUnits -= other.DirtyWBUnits
	c.Snoops -= other.Snoops
	c.SnoopHits -= other.SnoopHits
	c.SnoopMisses -= other.SnoopMisses
	c.SnoopSupplies -= other.SnoopSupplies
	c.SnoopStateWrites -= other.SnoopStateWrites
	return c
}

// LocalProbes returns all processor-side tag probes.
func (c Counts) LocalProbes() uint64 { return c.LocalReads + c.LocalWrites }

// FilterCounts aggregates the activity of one JETTY configuration across
// all CPUs of a run.
type FilterCounts struct {
	Probes       uint64 // every snoop probes the local JETTY
	Filtered     uint64 // snoops answered "guaranteed absent"
	EJWrites     uint64 // EJ allocations + present-bit clears
	CntUpdates   uint64 // block alloc/evict events (each touches all sub-arrays)
	PBitWrites   uint64 // presence-bit transitions
	FilteredHits uint64 // MUST stay 0: filtered snoops that would have hit
}

// Add accumulates other into f.
func (f *FilterCounts) Add(other FilterCounts) {
	f.Probes += other.Probes
	f.Filtered += other.Filtered
	f.EJWrites += other.EJWrites
	f.CntUpdates += other.CntUpdates
	f.PBitWrites += other.PBitWrites
	f.FilteredHits += other.FilteredHits
}

// Sub returns f - other field by field (interval deltas between two
// cumulative snapshots, like Counts.Sub).
func (f FilterCounts) Sub(other FilterCounts) FilterCounts {
	f.Probes -= other.Probes
	f.Filtered -= other.Filtered
	f.EJWrites -= other.EJWrites
	f.CntUpdates -= other.CntUpdates
	f.PBitWrites -= other.PBitWrites
	f.FilteredHits -= other.FilteredHits
	return f
}

// Breakdown is the energy (J) of one run split by component.
type Breakdown struct {
	LocalTag   float64
	LocalData  float64
	SnoopTag   float64
	SnoopData  float64 // data read out for supplies; in parallel mode, the per-probe way reads
	SnoopState float64 // tag writes caused by snoop hits
	SnoopWB    float64 // write-buffer CAM probes: every snoop, never filtered
	Jetty      float64 // all filter energy (probes + updates); 0 for baseline
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.LocalTag + b.LocalData + b.SnoopTag + b.SnoopData + b.SnoopState + b.SnoopWB + b.Jetty
}

// SnoopTotal returns the energy attributable to snoop handling, the
// denominator of the paper's "over all snoop accesses" metric.
func (b Breakdown) SnoopTotal() float64 {
	return b.SnoopTag + b.SnoopData + b.SnoopState + b.SnoopWB + b.Jetty
}

// Account computes the baseline (no JETTY) energy breakdown of a run.
func Account(c Counts, costs CacheCosts, assoc int, mode Mode) Breakdown {
	return accountWith(c, costs, assoc, mode, 0, FilterCounts{}, FilterCosts{})
}

// AccountFiltered computes the energy breakdown with a JETTY in place:
// filtered snoops skip the L2 tag probe (and, in parallel mode, the
// concurrent data-way reads); the filter's own probe and update energy is
// charged on every snoop and every L2 block alloc/evict.
func AccountFiltered(c Counts, costs CacheCosts, assoc int, mode Mode, fc FilterCounts, fcost FilterCosts) Breakdown {
	return accountWith(c, costs, assoc, mode, fc.Filtered, fc, fcost)
}

func accountWith(c Counts, costs CacheCosts, assoc int, mode Mode, filtered uint64, fc FilterCounts, fcost FilterCosts) Breakdown {
	var b Breakdown
	way := float64(assoc)
	snoopProbes := float64(c.Snoops - min64(filtered, c.Snoops))

	// Tag energy.
	b.LocalTag = float64(c.LocalProbes())*costs.TagRead +
		float64(c.LocalFills+c.LocalStateWrite+c.TagEvictions)*costs.TagWrite
	b.SnoopTag = snoopProbes * costs.TagRead
	b.SnoopState = float64(c.SnoopStateWrites) * costs.TagWrite
	// The write buffer is probed by every snoop, filtered or not.
	b.SnoopWB = float64(c.Snoops) * costs.WBProbe

	// Data energy.
	switch mode {
	case SerialTagData:
		b.LocalData = float64(c.LocalReadHits)*costs.DataReadUnit +
			float64(c.LocalWriteHits+c.LocalFills)*costs.DataWriteUnit +
			float64(c.DirtyWBUnits)*costs.DataReadUnit
		b.SnoopData = float64(c.SnoopSupplies) * costs.DataReadUnit
	case ParallelTagData:
		// Every probe reads all ways' data concurrently with the tags.
		b.LocalData = float64(c.LocalProbes())*way*costs.DataReadUnit +
			float64(c.LocalWriteHits+c.LocalFills)*costs.DataWriteUnit +
			float64(c.DirtyWBUnits)*costs.DataReadUnit
		b.SnoopData = snoopProbes * way * costs.DataReadUnit
	}

	// Filter energy.
	b.Jetty = float64(fc.Probes)*fcost.Probe +
		float64(fc.EJWrites)*fcost.EJWrite +
		float64(fc.CntUpdates)*fcost.CntUpdate +
		float64(fc.PBitWrites)*fcost.PBitWrite
	return b
}

// Reduction returns (base - with) / base, clamped to 0 when base is 0.
func Reduction(base, with float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - with) / base
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
