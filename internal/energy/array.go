package energy

import (
	"fmt"
	"math"
)

// Array describes one logical SRAM array: Rows word lines by Cols bit-line
// pairs, physically split into Banks independent sub-banks (only one bank
// activates per access). BitsOut is how many bits leave the array on a read
// (the rest are read internally but not driven out).
type Array struct {
	Rows, Cols int
	Banks      Banking
	BitsOut    int
}

// Banking is a bank organization: the array is split into Ndwl column
// slices and Ndbl row slices; one of the Ndwl*Ndbl sub-banks activates per
// access, at the cost of routing address and data over an H-tree whose wire
// length grows with the number of banks.
type Banking struct {
	Ndwl, Ndbl int
}

// Unbanked is the trivial organization: one monolithic bank.
var Unbanked = Banking{Ndwl: 1, Ndbl: 1}

// String returns "Ndwl x Ndbl".
func (b Banking) String() string { return fmt.Sprintf("%dx%d", b.Ndwl, b.Ndbl) }

// subRows and subCols return the active sub-bank dimensions.
func (a Array) subRows() int { return ceilDiv(a.Rows, a.Banks.Ndbl) }
func (a Array) subCols() int { return ceilDiv(a.Cols, a.Banks.Ndwl) }

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// bitLineCap returns the capacitance of one bit line in the active sub-bank.
func (t Tech) bitLineCap(a Array) float64 {
	rows := float64(a.subRows())
	return rows*t.CBitDrain + rows*t.CellHeightUM*t.CWirePerUM
}

// wordLineCap returns the capacitance of one word line in the active sub-bank.
func (t Tech) wordLineCap(a Array) float64 {
	cols := float64(a.subCols())
	return cols*t.CWordGate + cols*t.CellWidthUM*t.CWirePerUM
}

// routeEnergy returns the H-tree routing energy paid per access for a
// banked organization: address plus data bits travel global wires whose
// length scales with the physical extent of the whole array. Global
// interconnect is driven low-swing (differential), as large-cache designs
// do, so it scales with Vdd*SwingRead rather than Vdd^2.
func (t Tech) routeEnergy(a Array) float64 {
	nb := a.Banks.Ndwl * a.Banks.Ndbl
	if nb <= 1 {
		return 0
	}
	// H-tree half-span of the whole array in µm, deepening with banks.
	w := float64(a.Cols) * t.CellWidthUM
	h := float64(a.Rows) * t.CellHeightUM
	span := math.Sqrt(w*h) * (1 + math.Log2(float64(nb))/8)
	bits := float64(a.BitsOut + 32) // data out + address/control distribution
	wire := bits * span * t.CWirePerUM * t.Vdd * t.SwingRead
	// Each extra sub-bank carries its own decoder/sense periphery; the
	// per-access share keeps tiny arrays from banking absurdly.
	periphery := float64(nb-1) * t.EBankFixed
	return wire + periphery
}

// ReadEnergy returns the energy (J) of one read access to the array.
func (t Tech) ReadEnergy(a Array) float64 {
	cols := float64(a.subCols())
	ebit := cols * t.bitLineCap(a) * t.Vdd * t.SwingRead // limited-swing read
	eword := t.wordLineCap(a) * t.Vdd * t.Vdd
	edec := float64(log2ceil(a.Rows)) * t.CDecodeFF * t.Vdd * t.Vdd
	esense := cols * t.ESenseAmp
	eout := float64(a.BitsOut) * t.COutBit * t.Vdd * t.Vdd
	eroute := t.routeEnergy(a)
	return ebit + eword + edec + esense + eout + eroute
}

// WriteEnergy returns the energy (J) of one write of wbits bits into the
// array (full-rail bit-line swing on the written columns).
func (t Tech) WriteEnergy(a Array, wbits int) float64 {
	eb := float64(wbits) * t.bitLineCap(a) * t.Vdd * t.Vdd
	eword := t.wordLineCap(a) * t.Vdd * t.Vdd
	edec := float64(log2ceil(a.Rows)) * t.CDecodeFF * t.Vdd * t.Vdd
	eroute := t.routeEnergy(a)
	return eb + eword + edec + eroute
}

// CompareEnergy returns the energy of comparing nbits of tag against a
// stored value (one comparator activation).
func (t Tech) CompareEnergy(nbits int) float64 {
	return float64(nbits) * t.ECompareBit
}

// OptimalBanking searches power-of-two bank splits (up to 32x32) for the
// organization minimizing ReadEnergy — the role CACTI plays in the paper.
// Degenerate arrays (a single row or column) stay unbanked.
func (t Tech) OptimalBanking(a Array) Banking {
	return t.OptimalBankingLimited(a, 32, 32)
}

// OptimalBankingLimited is OptimalBanking with upper bounds on the column
// (maxNdwl) and row (maxNdbl) splits. Latency-critical arrays — the L2 tag
// array sits on the snoop-response path — cannot be row-banked arbitrarily
// deep, which CACTI models via its time/energy objective; we expose it as a
// cap. A bank's column slice is never allowed to be narrower than BitsOut:
// an access must deliver all its bits from the one active bank.
func (t Tech) OptimalBankingLimited(a Array, maxNdwl, maxNdbl int) Banking {
	best := Unbanked
	a.Banks = Unbanked
	bestE := t.ReadEnergy(a)
	minCols := a.BitsOut
	if minCols > a.Cols {
		minCols = a.Cols
	}
	for ndwl := 1; ndwl <= maxNdwl; ndwl *= 2 {
		for ndbl := 1; ndbl <= maxNdbl; ndbl *= 2 {
			if ndwl > a.Cols || ndbl > a.Rows || a.Cols/ndwl < minCols {
				continue
			}
			cand := Banking{Ndwl: ndwl, Ndbl: ndbl}
			a.Banks = cand
			if e := t.ReadEnergy(a); e < bestE {
				bestE, best = e, cand
			}
		}
	}
	return best
}

// OptimizedArray returns the array with its banking set to the optimum.
func (t Tech) OptimizedArray(rows, cols, bitsOut int) Array {
	a := Array{Rows: rows, Cols: cols, BitsOut: bitsOut, Banks: Unbanked}
	a.Banks = t.OptimalBanking(a)
	return a
}

// maxTagNdbl caps row-banking of tag arrays: the tag match must answer
// snoops with minimal latency, so tag arrays stay monolithic (the paper
// applies CACTI banking to reduce access energy where latency allows —
// i.e., the data array).
const maxTagNdbl = 1

// OptimizedTagArray returns a tag array banked under the latency cap.
func (t Tech) OptimizedTagArray(rows, cols, bitsOut int) Array {
	a := Array{Rows: rows, Cols: cols, BitsOut: bitsOut, Banks: Unbanked}
	a.Banks = t.OptimalBankingLimited(a, 32, maxTagNdbl)
	return a
}

func log2ceil(v int) int {
	n := 0
	for (1 << n) < v {
		n++
	}
	return n
}
