package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jetty/internal/engine"
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// DispositionMemoHit marks a cell resolved from the coordinator's L2
// memo without any dispatch (per-cell status only; workers report the
// engine dispositions).
const DispositionMemoHit = "memo_hit"

// attempt is one dispatch of one unit to one worker.
type attempt struct {
	unit int
	w    *worker
	// hedged is set (under the sweep's mutex) when the unit was already
	// requeued because the worker was declared dead while this attempt
	// was in flight. The attempt keeps running — if the lost twin still
	// delivers, its results coalesce by digest — but its own failure
	// must not requeue the unit a second time.
	hedged bool
}

// Sweep is one distributed sweep: cells sharded over the cluster,
// results coalescing by digest. It mirrors sweep.Sweep's observable
// surface (Status/Wait/Cancel/Unfinished) so jettyd serves both from
// the same endpoints.
type Sweep struct {
	co     *Coordinator
	spec   sweep.Spec
	cells  []sweep.Cell
	units  [][]int // sweep.PlanUnits groups: the dispatch granularity
	unitOf []int   // cell position → unit index
	origin string
	tenant string
	traces []sim.TraceInput // referenced trace uploads, by first use

	// keyPos maps a cell digest to every position holding it: one
	// delivery resolves all of them, and a duplicate delivery (a
	// rescheduled cell racing its lost twin) is detected here and
	// coalesced instead of double-counted.
	keyPos map[string][]int

	kick chan struct{} // 1-buffered scheduler wakeup
	done chan struct{} // closed when the sweep reaches a terminal state

	mu           sync.Mutex
	results      []sim.AppResult
	have         []bool
	haveCount    int
	dispo        []string // per position: engine disposition or memo_hit
	workerOf     []string // per position: delivering worker
	pending      []int    // unit indices awaiting dispatch
	unitAttempts []int
	live         map[*attempt]struct{}
	err          error
	canceled     bool
	finished     bool
	result       *sweep.Result
}

// Submit expands the spec, resolves what it can from the L2 memo, and
// starts the scheduler. traces resolves "trace:<digest>" entries from
// the coordinator's own store; referenced traces are pushed to workers
// on demand.
func (co *Coordinator) Submit(spec sweep.Spec, traces sweep.TraceResolver, origin, tenant string) (*Sweep, error) {
	co.mu.Lock()
	closed := co.closed
	co.mu.Unlock()
	if closed {
		return nil, errors.New("cluster: coordinator closed")
	}
	cells, err := spec.Expand(traces)
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		co:     co,
		spec:   spec,
		cells:  cells,
		units:  sweep.PlanUnits(spec, cells),
		origin: origin,
		tenant: tenant,
		keyPos: make(map[string][]int, len(cells)),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		live:   make(map[*attempt]struct{}),
	}
	s.results = make([]sim.AppResult, len(cells))
	s.have = make([]bool, len(cells))
	s.dispo = make([]string, len(cells))
	s.workerOf = make([]string, len(cells))
	s.unitOf = make([]int, len(cells))
	s.unitAttempts = make([]int, len(s.units))
	for u, unit := range s.units {
		for _, p := range unit {
			s.unitOf[p] = u
		}
	}
	for _, c := range cells {
		s.keyPos[c.Key] = append(s.keyPos[c.Key], c.Index)
	}

	// Collect the referenced traces once: workers re-expand the spec, so
	// every "trace:<digest>" entry must be resolvable there before any
	// unit referencing it dispatches.
	seen := map[string]bool{}
	for _, w := range spec.Workloads {
		if !strings.HasPrefix(w, sweep.TracePrefix) {
			continue
		}
		ref := strings.TrimPrefix(w, sweep.TracePrefix)
		if seen[ref] {
			continue
		}
		seen[ref] = true
		in, err := traces(ref)
		if err != nil {
			return nil, fmt.Errorf("cluster: trace %q: %w", ref, err)
		}
		s.traces = append(s.traces, in)
	}

	// L2 pass: anything the memo already holds resolves without a
	// dispatch — the "cluster-wide rerun recomputes zero cells" tier.
	memoHits := uint64(0)
	co.mu.Lock()
	for i, c := range cells {
		if s.have[i] {
			continue
		}
		if res, ok := co.memo.get(c.Key); ok {
			for _, p := range s.keyPos[c.Key] {
				if !s.have[p] {
					s.results[p] = res.Clone()
					s.have[p] = true
					s.haveCount++
					s.dispo[p] = DispositionMemoHit
					memoHits++
				}
			}
		}
	}
	co.counters.MemoHits += memoHits
	co.mu.Unlock()

	// L3 pass: cells the in-memory memo missed are probed in the
	// persistent store — the tier that makes a coordinator restart
	// memo-warm. Disk I/O runs outside co.mu (the sweep is not yet
	// published, so its own fields need no lock); hits warm the memo and
	// count as memo hits, since they resolve exactly like one.
	if co.opts.Store != nil {
		storeHits := uint64(0)
		probed := map[string]bool{}
		for i, c := range cells {
			if s.have[i] || probed[c.Key] {
				continue
			}
			probed[c.Key] = true
			v, ok := co.opts.Store.Load(c.Key)
			if !ok {
				continue
			}
			res, ok := v.(sim.AppResult)
			if !ok {
				continue
			}
			for _, p := range s.keyPos[c.Key] {
				if !s.have[p] {
					s.results[p] = res.Clone()
					s.have[p] = true
					s.haveCount++
					s.dispo[p] = DispositionMemoHit
					storeHits++
				}
			}
			co.mu.Lock()
			co.memo.put(c.Key, res)
			co.mu.Unlock()
		}
		if storeHits > 0 {
			co.mu.Lock()
			co.counters.MemoHits += storeHits
			co.mu.Unlock()
		}
	}

	for u := range s.units {
		if !s.unitResolvedLocked(u) { // no lock needed pre-publication
			s.pending = append(s.pending, u)
		}
	}

	co.register(s)
	go s.run()
	return s, nil
}

// Spec returns the sweep's spec as submitted.
func (s *Sweep) Spec() sweep.Spec { return s.spec }

// Tenant returns the submitting tenant ("" for the default tenant).
func (s *Sweep) Tenant() string { return s.tenant }

// Cells returns the expanded cells in expansion order.
func (s *Sweep) Cells() []sweep.Cell { return s.cells }

// unitResolvedLocked reports whether every cell of the unit is
// resolved. Callers hold s.mu (or the sweep is not yet published).
func (s *Sweep) unitResolvedLocked(u int) bool {
	for _, p := range s.units[u] {
		if !s.have[p] {
			return false
		}
	}
	return true
}

// unresolvedLocked counts the unit's unresolved cells.
func (s *Sweep) unresolvedLocked(u int) int {
	n := 0
	for _, p := range s.units[u] {
		if !s.have[p] {
			n++
		}
	}
	return n
}

// kickScheduler wakes the scheduler loop (non-blocking).
func (s *Sweep) kickScheduler() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// workerDown hedges: every live attempt on w has its unit requeued
// immediately, without waiting for (or canceling) the attempt itself.
// If the lost twin delivers anyway, the results coalesce by digest and
// count as redundant completions.
func (s *Sweep) workerDown(w *worker) {
	rescheduled := uint64(0)
	s.mu.Lock()
	for a := range s.live {
		if a.w != w || a.hedged {
			continue
		}
		a.hedged = true
		if !s.unitResolvedLocked(a.unit) {
			s.pending = append(s.pending, a.unit)
			rescheduled += uint64(s.unresolvedLocked(a.unit))
		}
	}
	s.mu.Unlock()
	if rescheduled > 0 {
		s.co.mu.Lock()
		s.co.counters.CellsRescheduled += rescheduled
		s.co.mu.Unlock()
		s.co.log.Info("cluster cells rescheduled", "worker", w.client.Name(), "cells", rescheduled)
	}
	s.kickScheduler()
}

// fail records a permanent sweep failure (first one wins).
func (s *Sweep) fail(err error) {
	s.mu.Lock()
	if s.err == nil && !s.finished {
		s.err = err
	}
	s.mu.Unlock()
	s.kickScheduler()
}

// run is the scheduler loop: dispatch pending units to the best
// workers, wait for deliveries, finalize when every cell is resolved.
func (s *Sweep) run() {
	defer s.co.unregister(s)
	for {
		s.mu.Lock()
		if s.err != nil || s.canceled {
			s.finished = true
			s.mu.Unlock()
			close(s.done)
			return
		}
		if s.haveCount == len(s.cells) {
			results := s.results
			s.mu.Unlock()
			// Fold outside the lock (status snapshots keep flowing), then
			// publish. The fold is the same code path the single-process
			// sweep runs, over JSON-exact results — bit-identical output.
			res := sweep.Fold(s.spec, s.cells, results)
			s.mu.Lock()
			s.result = res
			s.finished = true
			s.mu.Unlock()
			close(s.done)
			return
		}
		u := -1
		for len(s.pending) > 0 {
			cand := s.pending[0]
			s.pending = s.pending[1:]
			if !s.unitResolvedLocked(cand) {
				u = cand
				break
			}
		}
		var attempts int
		if u >= 0 {
			attempts = s.unitAttempts[u]
		}
		s.mu.Unlock()

		if u >= 0 {
			if attempts >= s.co.opts.MaxAttempts {
				s.fail(fmt.Errorf("cluster: unit %d failed after %d attempts", u, attempts))
				continue
			}
			if w := s.co.acquire(); w != nil {
				s.startAttempt(u, w)
				continue // keep dispatching while units and workers last
			}
			s.mu.Lock()
			s.pending = append(s.pending, u)
			s.mu.Unlock()
		}

		select {
		case <-s.kick:
		case <-time.After(200 * time.Millisecond):
		case <-s.co.ctx.Done():
			s.fail(errors.New("cluster: coordinator closed"))
		}
	}
}

// startAttempt launches one dispatch goroutine.
func (s *Sweep) startAttempt(u int, w *worker) {
	a := &attempt{unit: u, w: w}
	s.mu.Lock()
	s.unitAttempts[u]++
	n := s.unitAttempts[u]
	s.live[a] = struct{}{}
	s.mu.Unlock()
	s.co.mu.Lock()
	s.co.counters.CellsDispatched += uint64(len(s.units[u]))
	s.co.mu.Unlock()
	go s.runAttempt(a, n)
}

// runAttempt dispatches the unit, classifies the outcome, and wakes the
// scheduler. Error taxonomy: transport failure condemns the worker
// (mark dead, hedge); 5xx/429 condemns the moment (requeue with
// backoff, worker stays alive); any other 4xx condemns the request
// (permanent sweep failure).
func (s *Sweep) runAttempt(a *attempt, attemptNo int) {
	ctx, cancel := context.WithTimeout(s.co.ctx, s.co.opts.RequestTimeout)
	defer cancel()

	indices := s.units[a.unit]
	start := time.Now()
	err := s.co.ensureTraces(ctx, a.w, s.tenant, s.traces)
	var resp CellsResponse
	if err == nil {
		resp, err = a.w.client.RunCells(ctx, s.tenant, CellsRequest{Spec: s.spec, Indices: indices})
	}

	if err == nil {
		perCell := time.Since(start) / time.Duration(len(indices))
		s.co.release(a.w, true, perCell)
		s.deliver(a, resp)
		s.kickScheduler()
		return
	}

	s.co.release(a.w, false, 0)
	var se *StatusError
	switch {
	case errors.As(err, &se) && se.Permanent():
		s.removeAttempt(a, false)
		s.fail(fmt.Errorf("cluster: worker %s rejected unit %d: %w", a.w.client.Name(), a.unit, err))
	case errors.As(err, &se):
		// Transient (overload, draining, quota pressure): back off, then
		// requeue — the scheduler may well pick a different worker.
		backoff := s.co.opts.RetryBackoff << (attemptNo - 1)
		if backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
		select {
		case <-time.After(backoff):
		case <-s.co.ctx.Done():
		}
		s.removeAttempt(a, true)
	default:
		// Transport failure: the worker is gone. markDead hedges every
		// live attempt on it — including this one — so requeue here only
		// if that pass didn't (the worker was already dead).
		s.co.markDead(a.w, err)
		s.removeAttempt(a, true)
	}
	s.kickScheduler()
}

// removeAttempt drops a finished attempt, optionally requeueing its
// unit (skipped when a workerDown hedge already did).
func (s *Sweep) removeAttempt(a *attempt, requeue bool) {
	s.mu.Lock()
	delete(s.live, a)
	if requeue && !a.hedged && !s.unitResolvedLocked(a.unit) {
		s.pending = append(s.pending, a.unit)
	}
	s.mu.Unlock()
}

// deliver resolves the attempt's outcomes. Resolution is by digest:
// the first delivery of a key fills every position holding it; a later
// delivery of the same key (the lost twin of a rescheduled cell) is
// counted redundant and dropped. Fresh results feed the L2 memo.
func (s *Sweep) deliver(a *attempt, resp CellsResponse) {
	type memoFill struct {
		key string
		res sim.AppResult
	}
	var fills []memoFill
	var redundant, computed, l1hits uint64

	s.mu.Lock()
	delete(s.live, a)
	if s.finished {
		s.mu.Unlock()
		return
	}
	for _, oc := range resp.Cells {
		positions := s.keyPos[oc.Key]
		if len(positions) == 0 {
			continue // unknown key: not ours, drop
		}
		if s.have[positions[0]] {
			redundant++
			continue
		}
		for i, p := range positions {
			res := oc.Result
			if i > 0 {
				res = oc.Result.Clone()
			}
			s.results[p] = res
			s.have[p] = true
			s.haveCount++
			s.dispo[p] = oc.Disposition
			s.workerOf[p] = a.w.client.Name()
		}
		switch oc.Disposition {
		case engine.DispositionExecuted:
			computed++
		default:
			l1hits++
		}
		fills = append(fills, memoFill{key: oc.Key, res: oc.Result})
	}
	s.mu.Unlock()

	s.co.mu.Lock()
	s.co.counters.RedundantCompletions += redundant
	s.co.counters.CellsComputed += computed
	s.co.counters.WorkerCacheHits += l1hits
	for _, f := range fills {
		s.co.memo.put(f.key, f.res)
	}
	s.co.mu.Unlock()

	// Write delivered results through to the persistent store (disk I/O
	// outside co.mu), so the memo they just filled survives a restart.
	if s.co.opts.Store != nil {
		for _, f := range fills {
			s.co.opts.Store.Store(f.key, f.res)
		}
	}
}

// Status snapshots the sweep, sweep.Status-shaped. detailed adds the
// per-cell table and — while the sweep is still running — the partial
// per-filter aggregates folded from the cells resolved so far.
func (s *Sweep) Status(detailed bool) sweep.Status {
	s.mu.Lock()
	out := sweep.Status{Name: s.spec.Name, Tenant: s.tenant, Cells: len(s.cells)}
	running := make(map[int]bool, len(s.live))
	for a := range s.live {
		running[a.unit] = true
	}
	var doneCells []sweep.Cell
	var doneResults []sim.AppResult
	for i, c := range s.cells {
		total := c.Total()
		out.Total += total
		state := engine.Queued.String()
		switch {
		case s.have[i]:
			state = engine.Done.String()
			out.Done += total
			out.Finished++
			if s.dispo[i] != engine.DispositionExecuted {
				out.CacheHits++
			}
			if detailed && !s.finished {
				doneCells = append(doneCells, c)
				doneResults = append(doneResults, s.results[i])
			}
		case running[s.unitOf[i]]:
			state = engine.Running.String()
		}
		if detailed {
			var cellDone uint64
			if s.have[i] {
				cellDone = total
			}
			out.Cell = append(out.Cell, sweep.CellStatus{
				Index:       c.Index,
				Workload:    c.Workload,
				Machine:     c.Machine,
				Repeat:      c.Repeat,
				Key:         c.Key,
				State:       state,
				Done:        cellDone,
				Total:       total,
				CacheHit:    s.have[i] && s.dispo[i] != engine.DispositionExecuted,
				Disposition: s.dispo[i],
				Origin:      s.origin,
				Tenant:      s.tenant,
			})
		}
	}
	switch {
	case s.err != nil:
		out.State = "failed"
	case s.canceled:
		out.State = "canceled"
	case s.haveCount == len(s.cells):
		out.State = "done"
	case len(s.live) > 0 || s.haveCount > 0:
		out.State = "running"
	default:
		out.State = "queued"
	}
	if out.Total > 0 {
		out.Fraction = float64(out.Done) / float64(out.Total)
	}
	if out.State == "done" {
		out.Fraction = 1
	}
	s.mu.Unlock()

	if len(doneCells) > 0 && len(doneCells) < len(s.cells) {
		out.PartialMetrics = sweep.Fold(s.spec, doneCells, doneResults).Metrics
	}
	return out
}

// Unfinished reports whether the sweep is still scheduling or waiting
// on deliveries.
func (s *Sweep) Unfinished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.finished
}

// UnfinishedCells counts cells not yet resolved.
func (s *Sweep) UnfinishedCells() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return 0
	}
	return len(s.cells) - s.haveCount
}

// Cancel stops the sweep. In-flight dispatches are left to finish on
// their workers (their results feed the memo via deliver's early-return
// guard being off only pre-finish; post-cancel deliveries are dropped).
func (s *Sweep) Cancel() {
	s.mu.Lock()
	s.canceled = true
	s.mu.Unlock()
	s.kickScheduler()
}

// Wait blocks until the sweep reaches a terminal state (or ctx
// expires) and returns the folded result.
func (s *Sweep) Wait(ctx context.Context) (*sweep.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if s.result == nil {
		return nil, errors.New("cluster: sweep canceled")
	}
	return s.result, nil
}
