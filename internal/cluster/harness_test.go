package cluster_test

// The fault-injection harness: every worker in these tests is a real
// jettyd service wrapped in a proxy handler that can misbehave on
// demand — drop the connection after computing (the reply lost in
// flight), answer 503 bursts (overload), stall past the coordinator's
// dispatch deadline (slow-loris), or crash outright and later restart
// as a fresh process that lost every byte of in-memory state (engine
// cache, trace store). The coordinator under test talks to it over a
// real HTTP listener, exactly as it would to a remote daemon.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/engine"
	"jetty/internal/service"
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// faultyWorker is one worker daemon plus its fault switchboard.
type faultyWorker struct {
	opts service.Options
	url  string

	mu        sync.Mutex
	svc       *service.Server
	crashed   bool          // every request aborts the connection
	failNext  int           // next N /v1/cells requests answer 503
	dropNext  int           // next N /v1/cells requests compute, then abort
	stallNext int           // next N /v1/cells requests stall by stall
	stall     time.Duration // slow-loris delay for stalled requests
	cellReqs  int           // /v1/cells requests seen (lifetime)
	traceUps  int           // /v1/traces uploads seen (lifetime)
	tenants   map[string]bool
	onCells   func(n int) // called with the 1-based count before serving
}

func newFaultyWorker(t *testing.T, opts service.Options) *faultyWorker {
	t.Helper()
	w := &faultyWorker{opts: opts, tenants: make(map[string]bool)}
	w.svc = service.New(opts)
	srv := httptest.NewServer(http.HandlerFunc(w.serve))
	w.url = srv.URL
	t.Cleanup(func() {
		srv.Close()
		w.mu.Lock()
		svc := w.svc
		w.mu.Unlock()
		svc.Close()
	})
	return w
}

func (w *faultyWorker) serve(rw http.ResponseWriter, r *http.Request) {
	isCells := r.Method == http.MethodPost && r.URL.Path == "/v1/cells"

	w.mu.Lock()
	if isCells {
		w.cellReqs++
		if tn := r.Header.Get("X-Jetty-Tenant"); tn != "" {
			w.tenants[tn] = true
		}
		if w.onCells != nil {
			// Release the lock for the callback: it may flip fault
			// switches through the methods below.
			f, n := w.onCells, w.cellReqs
			w.mu.Unlock()
			f(n)
			w.mu.Lock()
		}
	}
	if r.Method == http.MethodPost && r.URL.Path == "/v1/traces" {
		w.traceUps++
	}
	if w.crashed {
		w.mu.Unlock()
		panic(http.ErrAbortHandler) // connection drops, no reply
	}
	svc := w.svc
	var drop bool
	var stall time.Duration
	if isCells {
		if w.failNext > 0 {
			w.failNext--
			w.mu.Unlock()
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusServiceUnavailable)
			rw.Write([]byte(`{"error":"injected overload"}`))
			return
		}
		if w.dropNext > 0 {
			w.dropNext--
			drop = true
		}
		if w.stallNext > 0 {
			w.stallNext--
			stall = w.stall
		}
	}
	w.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	if drop {
		// Compute the unit for real — the engine cache warms, the work
		// is done — then lose the reply mid-flight.
		rec := httptest.NewRecorder()
		svc.Handler().ServeHTTP(rec, r)
		panic(http.ErrAbortHandler)
	}
	svc.Handler().ServeHTTP(rw, r)
}

// crash makes every subsequent request abort its connection, as if the
// process died. In-flight requests on the old service keep computing
// (their replies may or may not make it out, like a real crash).
func (w *faultyWorker) crash() {
	w.mu.Lock()
	w.crashed = true
	w.mu.Unlock()
}

// restart replaces the crashed daemon with a brand-new one: fresh
// engine (empty cache), fresh trace store — everything in-memory is
// gone, exactly like a process restart.
func (w *faultyWorker) restart() {
	w.mu.Lock()
	old := w.svc
	w.svc = service.New(w.opts)
	w.crashed = false
	w.mu.Unlock()
	old.Close()
}

func (w *faultyWorker) cellRequests() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cellReqs
}

func (w *faultyWorker) traceUploads() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.traceUps
}

func (w *faultyWorker) sawTenant(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tenants[name]
}

// startWorkers boots n healthy workers and returns them with their
// dial-ready clients.
func startWorkers(t *testing.T, n int, opts service.Options) ([]*faultyWorker, []*cluster.Client) {
	t.Helper()
	workers := make([]*faultyWorker, n)
	clients := make([]*cluster.Client, n)
	for i := range workers {
		workers[i] = newFaultyWorker(t, opts)
		c, err := cluster.NewClient(workers[i].url)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	return workers, clients
}

// newCoordinator builds a test-paced coordinator (fast probes, tiny
// backoff) over the clients, closed with the test.
func newCoordinator(t *testing.T, clients []*cluster.Client, mod func(*cluster.Options)) *cluster.Coordinator {
	t.Helper()
	opts := cluster.Options{
		Workers:        clients,
		ProbeInterval:  25 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		RetryBackoff:   time.Millisecond,
	}
	if mod != nil {
		mod(&opts)
	}
	co, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// runLocal runs the spec on a private single-process engine — the
// reference the distributed result must match bit for bit.
func runLocal(t *testing.T, spec sweep.Spec, traces sweep.TraceResolver) *sweep.Result {
	t.Helper()
	eng := engine.New(engine.Options{})
	t.Cleanup(eng.Close)
	res, err := sweep.Run(t.Context(), sim.NewRunner(eng), spec, traces)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// distinctKeys counts the sweep's distinct cell digests (duplicate-key
// cells retire from one delivery).
func distinctKeys(cells []sweep.Cell) int {
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		seen[c.Key] = true
	}
	return len(seen)
}
