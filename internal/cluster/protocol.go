// Package cluster implements jettyd's coordinator/worker mode: a
// coordinator expands a sweep spec, shards its content-addressed cells
// across remote jettyd workers over the ordinary HTTP/JSON API, streams
// partial aggregates back, and tolerates worker loss by health-checking
// and rescheduling unfinished cells.
//
// The cell digest makes all of this safe: a cell's key is a content
// address of everything that determines its result, so results are
// location-independent (any worker computes the same bytes), dedupable
// (a rescheduled cell that raced its lost twin coalesces in the result
// set by key), and cacheable in two tiers — every worker's engine cache
// is an L1, and the coordinator keeps a digest→result memo as the L2,
// so a cluster-wide rerun of an identical spec recomputes zero cells.
package cluster

import (
	"jetty/internal/sim"
	"jetty/internal/sweep"
)

// CellsPath is the worker endpoint a coordinator dispatches cell units
// to: POST a CellsRequest, receive a CellsResponse when every requested
// cell has finished.
const CellsPath = "/v1/cells"

// CellsRequest asks a worker to run a subset of a sweep's cells. The
// whole spec ships with the request: expansion is deterministic, so the
// worker reconstructs exactly the coordinator's cells (seeds, machine
// configs, sampling) from spec + indices — no per-cell parameter
// marshalling, and the indices stay meaningful in both processes.
type CellsRequest struct {
	// Spec is the full sweep specification.
	Spec sweep.Spec `json:"spec"`
	// Indices selects the cells to run, by expansion index, strictly
	// ascending. A coordinator dispatches whole planned units
	// (sweep.PlanUnits), so cells that fuse onto one simulation pass
	// still fuse on the worker.
	Indices []int `json:"indices"`
}

// CellOutcome is one finished cell.
type CellOutcome struct {
	// Index is the cell's expansion index (mirrors the request).
	Index int `json:"index"`
	// Key is the cell's content address, echoed so the coordinator can
	// resolve by digest without trusting index bookkeeping.
	Key string `json:"key"`
	// Disposition is the worker engine's verdict: "executed" for a fresh
	// computation, "cache_hit" for an L1 hit, "coalesced" for a ride on
	// an identical in-flight run.
	Disposition string `json:"disposition,omitempty"`
	// Result is the cell's measurement.
	Result sim.AppResult `json:"result"`
}

// CellsResponse is the worker's reply once every requested cell
// finished.
type CellsResponse struct {
	// Worker optionally names the responding worker (diagnostics only).
	Worker string `json:"worker,omitempty"`
	// Cells holds one outcome per requested index, in request order.
	Cells []CellOutcome `json:"cells"`
}
