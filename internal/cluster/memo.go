package cluster

import (
	"container/list"

	"jetty/internal/sim"
)

// memo is the coordinator-side digest→result store: the L2 of the
// cluster's two-tier result cache (each worker's engine cache is an
// L1). A rerun of an identical spec resolves every cell here without a
// single dispatch; a partially overlapping spec dispatches only the
// novel cells. LRU-bounded, externally synchronized (the coordinator's
// mutex), values defensively cloned on both sides.
type memo struct {
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recent
}

type memoEntry struct {
	key string
	res sim.AppResult
}

func newMemo(capacity int) *memo {
	return &memo{cap: capacity, items: make(map[string]*list.Element), order: list.New()}
}

func (m *memo) get(key string) (sim.AppResult, bool) {
	el, ok := m.items[key]
	if !ok {
		return sim.AppResult{}, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry).res.Clone(), true
}

func (m *memo) put(key string, res sim.AppResult) {
	if m.cap <= 0 {
		// Memoization disabled (Options.MemoEntries < 0, matching the
		// -cache flag's "negative disables" contract): put is an explicit
		// no-op. Without this guard every put cloned the result into the
		// list only to evict it again in the loop below.
		return
	}
	if el, ok := m.items[key]; ok {
		m.order.MoveToFront(el)
		el.Value.(*memoEntry).res = res.Clone()
		return
	}
	m.items[key] = m.order.PushFront(&memoEntry{key: key, res: res.Clone()})
	for m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memoEntry).key)
	}
}

func (m *memo) len() int { return m.order.Len() }
