package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"jetty/internal/engine"
)

// tenantHeader mirrors service.TenantHeader (the package boundary runs
// the other way: service wires a Coordinator in, so cluster cannot
// import service). Fan-out requests carry the submitting tenant so each
// worker's fair-share queue and quotas see the true identity.
const tenantHeader = "X-Jetty-Tenant"

// StatusError is a worker's non-2xx HTTP reply. It distinguishes the
// retry classes: 5xx is transient (the worker is alive but overloaded
// or draining — retry elsewhere or later), 4xx is permanent (the
// request itself is bad — retrying cannot help).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("worker replied %d: %s", e.Code, e.Msg)
}

// Permanent reports whether the reply condemns the request rather than
// the moment: 4xx, except 429 — a worker-side tenant quota rejection is
// backpressure (Retry-After and all), not a malformed request.
func (e *StatusError) Permanent() bool {
	return e.Code >= 400 && e.Code < 500 && e.Code != http.StatusTooManyRequests
}

// Health is a worker's probed state.
type Health struct {
	OK    bool   `json:"ok"`
	State string `json:"state"`
	// Workers is the worker's engine pool width.
	Workers int `json:"workers"`
	// Stats carries the engine's saturation gauges; QueueDepth and
	// Inflight weight the coordinator's scheduler, CacheEntries tells a
	// warm L1 from a cold restart.
	Stats engine.Stats `json:"stats"`
}

// Client is a coordinator's handle on one remote jettyd worker.
type Client struct {
	base string
	name string
	http *http.Client
}

// NewClient dials nothing: it validates the base URL ("http://host:port")
// and returns a handle. The zero-timeout http.Client is deliberate —
// every call takes a context, and cell runs legitimately outlive any
// fixed client timeout.
func NewClient(base string) (*Client, error) {
	base = strings.TrimRight(base, "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: worker URL %q: want http://host:port", base)
	}
	return &Client{base: base, name: u.Host, http: &http.Client{}}, nil
}

// URL returns the worker's base URL.
func (c *Client) URL() string { return c.base }

// Name returns the worker's display name (the URL's host:port).
func (c *Client) Name() string { return c.name }

// Probe fetches the worker's /healthz. A reachable-but-draining worker
// (503 with a parseable body) returns Health{OK: false} and no error;
// transport failures return an error.
func (c *Client) Probe(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("cluster: %s: bad healthz body: %w", c.name, err)
	}
	return h, nil
}

// RunCells dispatches one cell unit and blocks until the worker ran it
// (or ctx expires). Non-2xx replies come back as *StatusError.
func (c *Client) RunCells(ctx context.Context, tenant string, creq CellsRequest) (CellsResponse, error) {
	body, err := json.Marshal(creq)
	if err != nil {
		return CellsResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+CellsPath, bytes.NewReader(body))
	if err != nil {
		return CellsResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return CellsResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CellsResponse{}, &StatusError{Code: resp.StatusCode, Msg: errorBody(resp.Body)}
	}
	var out CellsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return CellsResponse{}, fmt.Errorf("cluster: %s: bad cells body: %w", c.name, err)
	}
	return out, nil
}

// UploadTrace pushes a raw JTRC trace file to the worker's upload store
// so "trace:<digest>" spec entries resolve there. Content addressing
// makes the push idempotent: the worker stores it under the same digest
// the coordinator resolved.
func (c *Client) UploadTrace(ctx context.Context, tenant string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/traces", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Msg: errorBody(resp.Body)}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// errorBody extracts the service's {"error": ...} message, falling back
// to the raw (truncated) body.
func errorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}
