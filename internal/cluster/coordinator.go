package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"jetty/internal/engine"
	"jetty/internal/sim"
)

// Defaults for the zero Options fields.
const (
	DefaultProbeInterval        = 2 * time.Second
	DefaultRequestTimeout       = 5 * time.Minute
	DefaultMaxAttempts          = 8
	DefaultRetryBackoff         = 100 * time.Millisecond
	DefaultMaxInflightPerWorker = 4
	DefaultMemoEntries          = 4096
)

// maxRetryBackoff caps the exponential retry backoff.
const maxRetryBackoff = 2 * time.Second

// Options configures a Coordinator.
type Options struct {
	// Workers are the remote jettyd workers to shard cells across.
	// Required, at least one.
	Workers []*Client
	// ProbeInterval is the health-probe period (0 = 2s). A worker whose
	// probe fails transport, or reports draining, is marked dead: its
	// in-flight units are hedged onto survivors immediately and it gets
	// no new work until a probe succeeds again.
	ProbeInterval time.Duration
	// RequestTimeout bounds one cell-unit dispatch (0 = 5m). A timed-out
	// dispatch counts as a transport failure.
	RequestTimeout time.Duration
	// MaxAttempts bounds dispatches per cell unit before the sweep fails
	// (0 = 8).
	MaxAttempts int
	// RetryBackoff is the base delay before redispatching a unit after a
	// transient (5xx/429) worker reply; it doubles per attempt up to 2s
	// (0 = 100ms).
	RetryBackoff time.Duration
	// MaxInflightPerWorker bounds concurrently dispatched units per
	// worker (0 = 4).
	MaxInflightPerWorker int
	// MemoEntries is the L2 digest→result memo capacity (0 = 4096,
	// negative disables memoization — the same contract as the -cache
	// flag).
	MemoEntries int
	// Store, when non-nil, persists the memo's results: every delivered
	// cell result is written through, and cells the in-memory memo
	// cannot resolve are probed here before any dispatch. Backed by the
	// same crash-safe result directory as the local engine's L3, it
	// makes the digest→result memo survive coordinator restarts.
	Store engine.ResultStore
	// Logger receives reschedule and worker-transition records (nil
	// discards).
	Logger *slog.Logger
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.MaxInflightPerWorker <= 0 {
		o.MaxInflightPerWorker = DefaultMaxInflightPerWorker
	}
	if o.MemoEntries == 0 {
		o.MemoEntries = DefaultMemoEntries
	}
	return o
}

// worker is the coordinator's book on one remote worker. Guarded by the
// coordinator's mutex.
type worker struct {
	client *Client

	alive      bool
	lastErr    string
	queueDepth int // last probed engine queue depth
	probed     engine.Stats

	inflight   int     // units currently dispatched by this coordinator
	ewmaSec    float64 // EWMA of observed per-cell latency
	hasEWMA    bool
	dispatched uint64 // units sent
	completed  uint64 // units that returned results
	failed     uint64 // units that errored (transport or status)

	// uploaded tracks trace digests pushed to this worker. Cleared on a
	// dead→alive transition: a restart may have lost the in-memory
	// upload store, so the coordinator re-pushes on demand.
	uploaded map[string]bool
}

// ewmaWeight is the weight of the newest per-cell latency sample.
const ewmaWeight = 0.3

// score is the scheduler's load estimate: expected per-cell latency
// scaled by how much work is already stacked on the worker (its probed
// engine queue plus the units this coordinator has in flight). Lower is
// better; a worker with no history scores 0 and gets tried first.
func (w *worker) score() float64 {
	return w.ewmaSec * float64(1+w.queueDepth+w.inflight)
}

// counters are the coordinator's lifetime counters (cluster-wide, all
// sweeps). Guarded by the coordinator's mutex.
type counters struct {
	CellsDispatched      uint64 `json:"cells_dispatched"`
	CellsRescheduled     uint64 `json:"cells_rescheduled"`
	RedundantCompletions uint64 `json:"redundant_completions"`
	MemoHits             uint64 `json:"memo_hits"`
	WorkerCacheHits      uint64 `json:"worker_cache_hits"`
	CellsComputed        uint64 `json:"cells_computed"`
}

// Coordinator shards sweeps across remote jettyd workers.
type Coordinator struct {
	opts Options
	log  *slog.Logger

	ctx       context.Context
	cancel    context.CancelFunc
	probeDone chan struct{}

	mu       sync.Mutex
	workers  []*worker
	memo     *memo
	sweeps   map[*Sweep]struct{}
	counters counters
	closed   bool
}

// New starts a coordinator over the given workers (all assumed alive
// until a probe or dispatch says otherwise) and its background health
// prober. Close it when done.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		opts:      opts,
		log:       log,
		ctx:       ctx,
		cancel:    cancel,
		probeDone: make(chan struct{}),
		memo:      newMemo(opts.MemoEntries),
		sweeps:    make(map[*Sweep]struct{}),
	}
	for _, c := range opts.Workers {
		co.workers = append(co.workers, &worker{client: c, alive: true, uploaded: make(map[string]bool)})
	}
	go co.probeLoop()
	return co, nil
}

// Close stops the prober and fails every active sweep.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.mu.Unlock()
	co.cancel()
	<-co.probeDone
}

// probeLoop periodically probes every worker.
func (co *Coordinator) probeLoop() {
	defer close(co.probeDone)
	t := time.NewTicker(co.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-t.C:
			co.probeAll()
		}
	}
}

// probeAll probes every worker concurrently and applies the liveness
// transitions: dead→alive resumes scheduling (and forgets uploaded
// traces — a restart may have lost them), alive→dead hedges the
// worker's in-flight units onto survivors.
func (co *Coordinator) probeAll() {
	ctx, cancel := context.WithTimeout(co.ctx, co.opts.ProbeInterval)
	defer cancel()
	healths := make([]Health, len(co.workers))
	errs := make([]error, len(co.workers))
	var wg sync.WaitGroup
	for i, w := range co.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			healths[i], errs[i] = w.client.Probe(ctx)
		}()
	}
	wg.Wait()

	var died []*worker
	revived := false
	co.mu.Lock()
	for i, w := range co.workers {
		switch {
		case errs[i] != nil:
			if w.alive {
				w.alive = false
				w.lastErr = errs[i].Error()
				died = append(died, w)
			}
		case !healths[i].OK:
			if w.alive {
				w.alive = false
				w.lastErr = "draining (" + healths[i].State + ")"
				died = append(died, w)
			}
		default:
			if !w.alive {
				w.alive = true
				w.lastErr = ""
				w.uploaded = make(map[string]bool)
				revived = true
				co.log.Info("cluster worker revived", "worker", w.client.Name())
			}
			w.queueDepth = healths[i].Stats.QueueDepth
			w.probed = healths[i].Stats
		}
	}
	sweeps := make([]*Sweep, 0, len(co.sweeps))
	for s := range co.sweeps {
		sweeps = append(sweeps, s)
	}
	co.mu.Unlock()

	for _, w := range died {
		co.log.Warn("cluster worker down", "worker", w.client.Name(), "error", w.lastErr)
		for _, s := range sweeps {
			s.workerDown(w)
		}
	}
	if revived {
		for _, s := range sweeps {
			s.kickScheduler()
		}
	}
}

// markDead records a dispatch-observed transport failure and hedges the
// worker's in-flight units. No-op if the worker is already dead.
func (co *Coordinator) markDead(w *worker, err error) {
	co.mu.Lock()
	if !w.alive {
		co.mu.Unlock()
		return
	}
	w.alive = false
	w.lastErr = err.Error()
	sweeps := make([]*Sweep, 0, len(co.sweeps))
	for s := range co.sweeps {
		sweeps = append(sweeps, s)
	}
	co.mu.Unlock()
	co.log.Warn("cluster worker down", "worker", w.client.Name(), "error", err)
	for _, s := range sweeps {
		s.workerDown(w)
	}
}

// acquire picks the least-loaded alive worker with dispatch headroom,
// reserving one in-flight slot. Returns nil when no worker qualifies.
func (co *Coordinator) acquire() *worker {
	co.mu.Lock()
	defer co.mu.Unlock()
	var best *worker
	for _, w := range co.workers {
		if !w.alive || w.inflight >= co.opts.MaxInflightPerWorker {
			continue
		}
		if best == nil || w.score() < best.score() {
			best = w
		}
	}
	if best != nil {
		best.inflight++
		best.dispatched++
	}
	return best
}

// release returns a worker's in-flight slot. perCell, when positive,
// folds into the worker's per-cell latency EWMA.
func (co *Coordinator) release(w *worker, ok bool, perCell time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	w.inflight--
	if ok {
		w.completed++
		if perCell > 0 {
			sample := perCell.Seconds()
			if !w.hasEWMA {
				w.ewmaSec, w.hasEWMA = sample, true
			} else {
				w.ewmaSec = ewmaWeight*sample + (1-ewmaWeight)*w.ewmaSec
			}
		}
	} else {
		w.failed++
	}
}

// ensureTraces pushes any referenced trace the worker has not been sent
// yet. Content addressing makes double-pushes harmless, so the uploaded
// set is an optimization, not a correctness requirement.
func (co *Coordinator) ensureTraces(ctx context.Context, w *worker, tenant string, traces []sim.TraceInput) error {
	for _, in := range traces {
		co.mu.Lock()
		have := w.uploaded[in.Digest]
		co.mu.Unlock()
		if have {
			continue
		}
		if err := w.client.UploadTrace(ctx, tenant, in.Data); err != nil {
			return err
		}
		co.mu.Lock()
		w.uploaded[in.Digest] = true
		co.mu.Unlock()
	}
	return nil
}

// register adds an active sweep (so worker-death hedging reaches it).
func (co *Coordinator) register(s *Sweep) {
	co.mu.Lock()
	co.sweeps[s] = struct{}{}
	co.mu.Unlock()
}

// unregister removes a finished sweep.
func (co *Coordinator) unregister(s *Sweep) {
	co.mu.Lock()
	delete(co.sweeps, s)
	co.mu.Unlock()
}

// WorkerStats is one worker's row in a Stats snapshot.
type WorkerStats struct {
	Name            string  `json:"name"`
	URL             string  `json:"url"`
	Alive           bool    `json:"alive"`
	QueueDepth      int     `json:"queue_depth"`
	CacheEntries    int     `json:"cache_entries"`
	Inflight        int     `json:"inflight"`
	EWMACellSeconds float64 `json:"ewma_cell_seconds"`
	Dispatched      uint64  `json:"dispatched"`
	Completed       uint64  `json:"completed"`
	Failed          uint64  `json:"failed"`
	LastError       string  `json:"last_error,omitempty"`
}

// Stats is a coordinator snapshot. Every field — the counters and the
// whole worker table — is copied under one mutex hold, so a render
// never mixes states from different instants (the same discipline as
// the service's metrics snapshot).
type Stats struct {
	WorkersConfigured int `json:"workers_configured"`
	WorkersAlive      int `json:"workers_alive"`
	ActiveSweeps      int `json:"active_sweeps"`
	MemoEntries       int `json:"memo_entries"`
	counters
	Workers []WorkerStats `json:"workers"`
}

// Stats snapshots the coordinator under a single mutex hold.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := Stats{
		WorkersConfigured: len(co.workers),
		ActiveSweeps:      len(co.sweeps),
		MemoEntries:       co.memo.len(),
		counters:          co.counters,
	}
	for _, w := range co.workers {
		if w.alive {
			st.WorkersAlive++
		}
		st.Workers = append(st.Workers, WorkerStats{
			Name:            w.client.Name(),
			URL:             w.client.URL(),
			Alive:           w.alive,
			QueueDepth:      w.queueDepth,
			CacheEntries:    w.probed.CacheEntries,
			Inflight:        w.inflight,
			EWMACellSeconds: w.ewmaSec,
			Dispatched:      w.dispatched,
			Completed:       w.completed,
			Failed:          w.failed,
			LastError:       w.lastErr,
		})
	}
	return st
}
