package cluster

import (
	"fmt"
	"testing"

	"jetty/internal/sim"
)

func memoResult(refs uint64) sim.AppResult {
	return sim.AppResult{Refs: refs, RemoteHitFrac: []float64{0.5}}
}

// TestMemoNonpositiveCapacityIsNoop pins the -cache-style "negative
// disables" contract: a memo with cap <= 0 stores nothing — in
// particular it must not clone every result into the LRU only to evict
// it again within the same put.
func TestMemoNonpositiveCapacityIsNoop(t *testing.T) {
	for _, capacity := range []int{0, -1, -4096} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			m := newMemo(capacity)
			for i := 0; i < 4; i++ {
				m.put(fmt.Sprintf("k%d", i), memoResult(uint64(i)))
			}
			if m.len() != 0 {
				t.Fatalf("len = %d; want 0 (disabled memo must hold nothing)", m.len())
			}
			if _, ok := m.get("k0"); ok {
				t.Fatalf("get hit on a disabled memo")
			}
		})
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := newMemo(2)
	m.put("a", memoResult(1))
	m.put("b", memoResult(2))
	if _, ok := m.get("a"); !ok { // refresh a: b is now the eviction victim
		t.Fatal("a missing")
	}
	m.put("c", memoResult(3))
	if m.len() != 2 {
		t.Fatalf("len = %d; want 2", m.len())
	}
	if _, ok := m.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := m.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}

	// Overwrite refreshes in place, no growth.
	m.put("a", memoResult(9))
	if m.len() != 2 {
		t.Fatalf("len after overwrite = %d; want 2", m.len())
	}
	if res, ok := m.get("a"); !ok || res.Refs != 9 {
		t.Fatalf("overwrite lost: %+v, %v", res, ok)
	}
}

// TestMemoClonesOnBothSides: mutations of a caller's result after put,
// or of a returned result, must not leak into the memo.
func TestMemoClonesOnBothSides(t *testing.T) {
	m := newMemo(4)
	in := memoResult(1)
	m.put("k", in)
	in.RemoteHitFrac[0] = 99

	out, ok := m.get("k")
	if !ok || out.RemoteHitFrac[0] != 0.5 {
		t.Fatalf("put did not clone: %+v", out)
	}
	out.RemoteHitFrac[0] = 42
	again, _ := m.get("k")
	if again.RemoteHitFrac[0] != 0.5 {
		t.Fatalf("get did not clone: %+v", again)
	}
}
