package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/service"
	"jetty/internal/sim"
	"jetty/internal/sweep"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// waitSweep waits for the distributed sweep and fails the test on error.
func waitSweep(t *testing.T, s *cluster.Sweep) *sweep.Result {
	t.Helper()
	res, err := s.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// randomSpec draws one sweep spec from the property-test distribution:
// 1–2 workloads, 1–2 machines, 1–3 filters in either placement mode,
// optional repetition, optional sampled timelines, fusion sometimes
// disabled — every axis the distributed path must preserve.
func randomSpec(r *rand.Rand) sweep.Spec {
	workloads := []string{"Lu", "ch", "Fmm"}
	filters := []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"}
	spec := sweep.Spec{
		Name:  fmt.Sprintf("prop-%d", r.Intn(1_000_000)),
		Scale: 0.01 + 0.02*r.Float64(),
	}
	for _, i := range r.Perm(len(workloads))[:1+r.Intn(2)] {
		spec.Workloads = append(spec.Workloads, workloads[i])
	}
	for _, i := range r.Perm(len(filters))[:1+r.Intn(3)] {
		spec.Filters = append(spec.Filters, filters[i])
	}
	if r.Intn(2) == 0 {
		spec.Machines = append(spec.Machines, sweep.Machine{}, sweep.Machine{CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2})
	}
	if r.Intn(2) == 0 {
		spec.FilterMode = sweep.ModeEach // fused groups are the dispatch unit
		spec.NoFuse = r.Intn(3) == 0
	}
	if r.Intn(2) == 0 {
		spec.Repeat = 2
	}
	if r.Intn(2) == 0 {
		spec.Interval = 20_000 + uint64(r.Intn(4))*10_000
		if r.Intn(2) == 0 {
			spec.Timelines = sweep.TimelinesAll
		} else {
			spec.Timelines = sweep.TimelinesFirst
		}
	}
	return spec
}

// TestClusterMatchesSingleProcess is the distribution property: for
// randomized specs — fused "each"-mode groups, sampled timelines,
// repeats, multi-machine axes — a 3-worker cluster folds the exact
// result a single process folds. DeepEqual, not approximately: the
// cells are content-addressed, the results JSON-exact, and the fold is
// the same code path.
func TestClusterMatchesSingleProcess(t *testing.T) {
	_, clients := startWorkers(t, 3, service.Options{Workers: 2})
	co := newCoordinator(t, clients, nil)

	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := randomSpec(rand.New(rand.NewSource(seed)))
			if err := spec.Validate(); err != nil {
				t.Fatalf("generated spec invalid: %v", err)
			}
			want := runLocal(t, spec, nil)

			s, err := co.Submit(spec, nil, "test", "")
			if err != nil {
				t.Fatal(err)
			}
			got := waitSweep(t, s)
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("metrics diverge from single-process run:\nlocal   %+v\ncluster %+v", want.Metrics, got.Metrics)
			}
			if !reflect.DeepEqual(want.Timelines, got.Timelines) {
				t.Errorf("timelines diverge from single-process run")
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("folded results diverge from single-process run")
			}
		})
	}
}

// TestClusterSurvivesWorkerLoss kills and degrades workers mid-sweep —
// one crashes on its first unit and restarts with empty state, one
// answers a 503 burst and then loses a computed reply mid-flight, one
// stays healthy — and the sweep must still retire every cell exactly
// once, bit-identical to the single-process run.
func TestClusterSurvivesWorkerLoss(t *testing.T) {
	workers, clients := startWorkers(t, 3, service.Options{Workers: 2})
	co := newCoordinator(t, clients, func(o *cluster.Options) {
		o.MaxInflightPerWorker = 2
	})

	// Worker 0 crashes the moment its first unit arrives, and comes back
	// 150ms later as a fresh process that remembers nothing.
	workers[0].onCells = func(n int) {
		if n == 1 {
			workers[0].crash()
			go func() {
				time.Sleep(150 * time.Millisecond)
				workers[0].restart()
			}()
		}
	}
	// Worker 1 is overloaded for its first two units, then computes one
	// unit fully but loses the reply on the wire.
	workers[1].failNext = 2
	workers[1].dropNext = 1

	spec := sweep.Spec{
		Name:       "worker-loss",
		Workloads:  []string{"Lu", "ch"},
		Machines:   []sweep.Machine{{}, {CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2}},
		Filters:    []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"},
		FilterMode: sweep.ModeEach,
		Repeat:     2,
		Scale:      0.02,
	}
	want := runLocal(t, spec, nil)

	s, err := co.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitSweep(t, s)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("result diverges from single-process run after worker loss")
	}

	st := co.Stats()
	if st.CellsRescheduled == 0 {
		t.Error("crash produced no rescheduled cells — the fault never landed")
	}
	// Exactly-once retirement, observed through the counters: every
	// distinct digest was resolved by exactly one non-redundant delivery
	// (computed, L1 cache hit, or L2 memo hit). Lost twins that delivered
	// anyway are accounted separately as redundant completions.
	retired := st.CellsComputed + st.WorkerCacheHits + st.MemoHits
	if want := uint64(distinctKeys(s.Cells())); retired != want {
		t.Errorf("retired %d distinct cells (computed %d + L1 %d + L2 %d), want exactly %d",
			retired, st.CellsComputed, st.WorkerCacheHits, st.MemoHits, want)
	}
	if workers[0].cellRequests() == 0 {
		t.Error("worker 0 never saw a unit — crash path untested")
	}
}

// TestClusterSurvivesSlowLoris: a worker that stalls past the dispatch
// deadline is declared dead and its unit rescheduled; the sweep
// completes on the survivors, and the stalled worker is revived by the
// prober once it behaves again.
func TestClusterSurvivesSlowLoris(t *testing.T) {
	workers, clients := startWorkers(t, 2, service.Options{Workers: 2})
	co := newCoordinator(t, clients, func(o *cluster.Options) {
		o.RequestTimeout = 250 * time.Millisecond
	})

	// Worker 0 stalls its first unit well past the 250ms dispatch
	// deadline, then behaves.
	workers[0].stall = 2 * time.Second
	workers[0].stallNext = 1

	spec := sweep.Spec{
		Name:      "slow-loris",
		Workloads: []string{"Lu", "ch"},
		Filters:   []string{"EJ-16x2"},
		Repeat:    2,
		Scale:     0.02,
	}
	want := runLocal(t, spec, nil)
	s, err := co.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitSweep(t, s)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("result diverges from single-process run after slow-loris stall")
	}
	if st := co.Stats(); st.CellsRescheduled == 0 {
		t.Error("stalled unit was never rescheduled")
	}

	// The prober revives the worker once it answers again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := co.Stats(); st.WorkersAlive == st.WorkersConfigured {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled worker never revived")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRerunHitsBothCacheTiers pins the two-tier cache contract:
// a rerun on the same coordinator resolves every cell from the L2 memo
// with zero dispatches, and a cold coordinator over warm workers
// resolves every cell from the workers' L1 engine caches with zero
// recompute. The happy path records no redundant completions.
func TestClusterRerunHitsBothCacheTiers(t *testing.T) {
	workers, clients := startWorkers(t, 1, service.Options{Workers: 2})
	co := newCoordinator(t, clients, nil)

	spec := sweep.Spec{
		Name:       "rerun",
		Workloads:  []string{"Lu", "ch"},
		Filters:    []string{"EJ-32x4", "EJ-16x2"},
		FilterMode: sweep.ModeEach,
		Scale:      0.02,
	}
	s1, err := co.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	first := waitSweep(t, s1)
	keys := uint64(distinctKeys(s1.Cells()))

	st1 := co.Stats()
	if st1.MemoHits != 0 || st1.CellsComputed == 0 {
		t.Fatalf("cold run: memo hits %d (want 0), computed %d (want >0)", st1.MemoHits, st1.CellsComputed)
	}

	// Rerun on the same coordinator: the L2 memo answers everything at
	// submit time — zero cells dispatched cluster-wide.
	s2, err := co.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	second := waitSweep(t, s2)
	st2 := co.Stats()
	if got := st2.MemoHits - st1.MemoHits; got != keys {
		t.Errorf("L2 rerun: %d memo hits, want %d", got, keys)
	}
	if st2.CellsDispatched != st1.CellsDispatched {
		t.Errorf("L2 rerun dispatched %d cells, want 0", st2.CellsDispatched-st1.CellsDispatched)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("memo-served rerun diverges from the computed run")
	}

	// A cold coordinator (empty memo) over the same warm worker: every
	// cell dispatches, and the worker answers all of them from its L1
	// engine cache — zero recompute.
	c2, err := cluster.NewClient(workers[0].url)
	if err != nil {
		t.Fatal(err)
	}
	cold := newCoordinator(t, []*cluster.Client{c2}, nil)
	s3, err := cold.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	third := waitSweep(t, s3)
	st3 := cold.Stats()
	if st3.CellsComputed != 0 {
		t.Errorf("warm-worker rerun recomputed %d cells, want 0", st3.CellsComputed)
	}
	if st3.WorkerCacheHits != keys {
		t.Errorf("warm-worker rerun: %d L1 hits, want %d", st3.WorkerCacheHits, keys)
	}
	if !reflect.DeepEqual(first, third) {
		t.Error("L1-served rerun diverges from the computed run")
	}

	for _, st := range []cluster.Stats{st1, st2, st3} {
		if st.RedundantCompletions != 0 {
			t.Errorf("happy path recorded %d redundant completions, want 0", st.RedundantCompletions)
		}
	}
}

// TestClusterReuploadsTracesAfterRestart: a worker restart loses the
// in-memory trace store; the coordinator must notice the revival and
// push referenced traces again before dispatching to it.
func TestClusterReuploadsTracesAfterRestart(t *testing.T) {
	workers, clients := startWorkers(t, 1, service.Options{Workers: 2})
	co := newCoordinator(t, clients, nil)

	sp, err := workload.Lookup("WebServer")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, sp.Source(2), 4000, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}}); err != nil {
		t.Fatal(err)
	}
	in, err := sim.LoadTrace("", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	resolver := func(ref string) (sim.TraceInput, error) {
		if ref == in.Digest {
			return in, nil
		}
		return sim.TraceInput{}, fmt.Errorf("unknown trace %q", ref)
	}
	spec := sweep.Spec{
		Name:      "trace-restart",
		Workloads: []string{sweep.TracePrefix + in.Digest},
		Machines:  []sweep.Machine{{}, {CPUs: 2, L2Bytes: 512 << 10, L2Assoc: 2}},
		Filters:   []string{"EJ-16x2"},
	}
	want := runLocal(t, spec, resolver)

	// Crash on the first unit; restart shortly after with an empty trace
	// store. The second dispatch must be preceded by a fresh upload.
	workers[0].onCells = func(n int) {
		if n == 1 {
			workers[0].crash()
			go func() {
				time.Sleep(100 * time.Millisecond)
				workers[0].restart()
			}()
		}
	}

	s, err := co.Submit(spec, resolver, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitSweep(t, s)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("trace sweep diverges from single-process run after restart")
	}
	if ups := workers[0].traceUploads(); ups < 2 {
		t.Errorf("worker saw %d trace uploads, want >= 2 (one per incarnation)", ups)
	}
}

// TestClusterTenantPropagation: the coordinator stamps every fan-out
// request — cell dispatches and trace uploads — with the submitting
// tenant, so worker-side quotas and fair-share see the real principal.
func TestClusterTenantPropagation(t *testing.T) {
	workers, clients := startWorkers(t, 2, service.Options{Workers: 2})
	co := newCoordinator(t, clients, nil)

	spec := sweep.Spec{
		Name:      "tenants",
		Workloads: []string{"Lu", "ch"},
		Filters:   []string{"EJ-16x2"},
		Repeat:    2,
		Scale:     0.02,
	}
	s, err := co.Submit(spec, nil, "test", "team-a")
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, s)
	saw := false
	for _, w := range workers {
		if w.cellRequests() > 0 {
			if !w.sawTenant("team-a") {
				t.Error("worker handled cells without the X-Jetty-Tenant header")
			}
			saw = true
		}
	}
	if !saw {
		t.Fatal("no worker handled any cells")
	}
}

// TestClusterStatsMonotoneUnderFaults hammers Stats() from several
// goroutines while a sweep runs through crashes and 503 bursts: every
// snapshot must be internally coherent (single-mutex-hold discipline)
// and every counter monotone across successive snapshots — the
// /v1/cluster/status torn-read regression test, run under -race.
func TestClusterStatsMonotoneUnderFaults(t *testing.T) {
	workers, clients := startWorkers(t, 3, service.Options{Workers: 2})
	co := newCoordinator(t, clients, nil)

	workers[0].onCells = func(n int) {
		if n == 1 {
			workers[0].crash()
			go func() {
				time.Sleep(100 * time.Millisecond)
				workers[0].restart()
			}()
		}
	}
	workers[1].failNext = 3

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev cluster.Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := co.Stats()
				if st.WorkersAlive > st.WorkersConfigured {
					t.Errorf("snapshot reports %d alive of %d configured", st.WorkersAlive, st.WorkersConfigured)
				}
				if len(st.Workers) != st.WorkersConfigured {
					t.Errorf("snapshot has %d worker rows, want %d", len(st.Workers), st.WorkersConfigured)
				}
				if st.CellsDispatched < prev.CellsDispatched ||
					st.CellsRescheduled < prev.CellsRescheduled ||
					st.RedundantCompletions < prev.RedundantCompletions ||
					st.MemoHits < prev.MemoHits ||
					st.WorkerCacheHits < prev.WorkerCacheHits ||
					st.CellsComputed < prev.CellsComputed {
					t.Errorf("counters went backwards: %+v then %+v", prev, st)
				}
				prev = st
			}
		}()
	}

	spec := sweep.Spec{
		Name:       "stats-race",
		Workloads:  []string{"Lu", "ch"},
		Filters:    []string{"EJ-32x4", "EJ-16x2", "IJ-8x4x7"},
		FilterMode: sweep.ModeEach,
		Repeat:     2,
		Scale:      0.02,
	}
	s, err := co.Submit(spec, nil, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, s)
	close(stop)
	wg.Wait()
}

// TestClusterPermanentErrorFailsSweep: a 4xx the worker will repeat
// (here: a trace reference no worker can resolve) must fail the sweep
// promptly instead of burning retries.
func TestClusterPermanentErrorFailsSweep(t *testing.T) {
	_, clients := startWorkers(t, 1, service.Options{Workers: 1})
	co := newCoordinator(t, clients, nil)

	// The coordinator can resolve the reference, but the referenced data
	// hashes to a different digest, so the worker's store lookup fails
	// with 400 after upload — a permanent, unretryable mismatch.
	bogus := func(ref string) (sim.TraceInput, error) {
		in, err := sim.LoadTrace("", recordedTrace(t))
		if err != nil {
			return sim.TraceInput{}, err
		}
		return in, nil
	}
	spec := sweep.Spec{
		Name:      "permanent",
		Workloads: []string{sweep.TracePrefix + "deadbeef"},
		Filters:   []string{"EJ-16x2"},
	}
	s, err := co.Submit(spec, bogus, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 20*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx); err == nil {
		t.Fatal("sweep with an unresolvable worker-side trace reference succeeded")
	}
}

// recordedTrace returns a small recorded trace stream.
func recordedTrace(t *testing.T) []byte {
	t.Helper()
	sp, err := workload.Lookup("WebServer")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, sp.Source(2), 2000, trace.WriterOptions{Meta: trace.Meta{App: sp.Name}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
