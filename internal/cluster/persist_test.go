package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"jetty/internal/cluster"
	"jetty/internal/service"
	"jetty/internal/sim"
	"jetty/internal/store"
	"jetty/internal/sweep"
)

// TestCoordinatorMemoSurvivesRestart pins ROADMAP item 2's cross-sweep
// memo persistence: a coordinator backed by a result store delivers a
// sweep, a brand-new coordinator (fresh in-memory memo, i.e. a restart)
// over the same store resolves the identical sweep entirely from disk —
// zero dispatches, every cell a memo hit, result DeepEqual — even
// though the workers also restarted and lost their L1 caches.
func TestCoordinatorMemoSurvivesRestart(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk := sim.NewDiskCache(st)

	spec := sweep.Spec{
		Name:       "persist",
		Workloads:  []string{"Lu", "Fmm"},
		Filters:    []string{"EJ-32x4", "EJ-16x2"},
		FilterMode: sweep.ModeEach,
		Scale:      0.02,
	}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := distinctKeys(cells)

	workers, clients := startWorkers(t, 2, service.Options{Workers: 2})
	co1 := newCoordinator(t, clients, func(o *cluster.Options) { o.Store = disk })
	s1, err := co1.Submit(spec, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitSweep(t, s1)

	// Deliveries write through to the store after the sweep resolves;
	// wait for every distinct cell to land before "restarting".
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Results < want {
		if time.Now().After(deadline) {
			t.Fatalf("store has %d results; want %d", st.Stats().Results, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	co1.Close()

	// Restart everything: fresh coordinator memo, fresh worker engines.
	// Only the disk knows the results now.
	for _, w := range workers {
		w.crash()
		w.restart()
	}
	co2 := newCoordinator(t, clients, func(o *cluster.Options) { o.Store = disk })
	s2, err := co2.Submit(spec, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitSweep(t, s2)

	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("restarted coordinator result diverged from original")
	}
	cst := co2.Stats()
	if cst.CellsDispatched != 0 {
		t.Fatalf("CellsDispatched = %d after restart; want 0 (all cells from the persistent memo)", cst.CellsDispatched)
	}
	if cst.MemoHits != uint64(len(cells)) {
		t.Fatalf("MemoHits = %d; want %d", cst.MemoHits, len(cells))
	}
}

// TestCoordinatorMemoDisabledStillPersists: a negative MemoEntries
// disables the in-memory memo but the persistent tier still resolves a
// rerun without dispatches.
func TestCoordinatorMemoDisabledStillPersists(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk := sim.NewDiskCache(st)

	spec := sweep.Spec{Name: "nomemo", Workloads: []string{"Lu"}, Filters: []string{"EJ-16x2"}, Scale: 0.02}
	cells, err := spec.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}

	_, clients := startWorkers(t, 1, service.Options{Workers: 2})
	co := newCoordinator(t, clients, func(o *cluster.Options) {
		o.Store = disk
		o.MemoEntries = -1
	})
	s1, err := co.Submit(spec, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitSweep(t, s1)

	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Results < distinctKeys(cells) {
		if time.Now().After(deadline) {
			t.Fatalf("store has %d results; want %d", st.Stats().Results, distinctKeys(cells))
		}
		time.Sleep(5 * time.Millisecond)
	}

	s2, err := co.Submit(spec, nil, "", "")
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitSweep(t, s2)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("rerun result diverged")
	}
	st2 := co.Stats()
	if st2.MemoEntries != 0 {
		t.Fatalf("MemoEntries = %d with memo disabled; want 0", st2.MemoEntries)
	}
	if st2.MemoHits != uint64(len(cells)) {
		t.Fatalf("MemoHits = %d; want %d (rerun resolved from the persistent tier)", st2.MemoHits, len(cells))
	}
}
