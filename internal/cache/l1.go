package cache

import (
	"fmt"

	"jetty/internal/addr"
)

// L1Config sizes the direct-mapped, write-back, write-allocate L1.
type L1Config struct {
	SizeBytes int
	LineBytes int
}

// Lines returns the number of line frames.
func (c L1Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Validate reports configuration errors.
func (c L1Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || !addr.IsPow2(c.SizeBytes):
		return fmt.Errorf("cache: L1 size %d not a power of two", c.SizeBytes)
	case c.LineBytes <= 0 || !addr.IsPow2(c.LineBytes):
		return fmt.Errorf("cache: L1 line %d not a power of two", c.LineBytes)
	case c.Lines() < 1:
		return fmt.Errorf("cache: L1 of %d bytes cannot hold %d-byte lines", c.SizeBytes, c.LineBytes)
	}
	return nil
}

type l1Line struct {
	tag   uint64
	valid bool
	dirty bool
	excl  bool // filled while the L2 unit was writable (M/E): stores may
	// proceed without interrogating the L2 (MESI-in-L1)
}

// L1 is a direct-mapped, write-back, data-less L1. Coherence is enforced
// at the L2 (inclusion): the L1 tracks valid/dirty plus an exclusivity
// hint that lets stores to lines fetched in a writable state proceed
// without an L2 access (deferring the M update to writeback time, as
// MESI-in-L1 hierarchies do).
type L1 struct {
	cfg     L1Config
	idxBits int
	lines   []l1Line
}

// NewL1 builds an L1. It panics on an invalid configuration.
func NewL1(cfg L1Config) *L1 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &L1{
		cfg:     cfg,
		idxBits: addr.Log2(uint64(cfg.Lines())),
		lines:   make([]l1Line, cfg.Lines()),
	}
}

// Config returns the cache configuration.
func (l *L1) Config() L1Config { return l.cfg }

// LineAddr returns the line number of a byte address.
func (l *L1) LineAddr(a addr.Addr) uint64 {
	return (a & addr.PhysMask) / uint64(l.cfg.LineBytes)
}

func (l *L1) split(line uint64) (int, uint64) {
	return int(line & ((1 << uint(l.idxBits)) - 1)), line >> uint(l.idxBits)
}

// Contains reports whether the line is present.
func (l *L1) Contains(line uint64) bool {
	idx, tag := l.split(line)
	return l.lines[idx].valid && l.lines[idx].tag == tag
}

// Dirty reports whether the line is present and dirty.
func (l *L1) Dirty(line uint64) bool {
	idx, tag := l.split(line)
	return l.lines[idx].valid && l.lines[idx].tag == tag && l.lines[idx].dirty
}

// Exclusive reports whether the line is present with its exclusivity
// hint set (a store needs no L2 interrogation).
func (l *L1) Exclusive(line uint64) bool {
	idx, tag := l.split(line)
	return l.lines[idx].valid && l.lines[idx].tag == tag && l.lines[idx].excl
}

// ClearExclusive drops the exclusivity hint (the L2 unit was downgraded
// by a snoop while the line sat in L1).
func (l *L1) ClearExclusive(line uint64) {
	idx, tag := l.split(line)
	if f := &l.lines[idx]; f.valid && f.tag == tag {
		f.excl = false
	}
}

// MarkDirty marks a present line dirty; it panics if the line is absent.
func (l *L1) MarkDirty(line uint64) {
	idx, tag := l.split(line)
	if !l.lines[idx].valid || l.lines[idx].tag != tag {
		panic(fmt.Sprintf("cache: MarkDirty(%#x) on absent line", line))
	}
	l.lines[idx].dirty = true
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Line  uint64
	Dirty bool
}

// Fill installs a line, returning the displaced victim if a valid line
// occupied the frame. excl records whether the covering L2 unit is
// writable (M/E) at fill time.
func (l *L1) Fill(line uint64, excl bool) (Victim, bool) {
	idx, tag := l.split(line)
	f := &l.lines[idx]
	var v Victim
	had := false
	if f.valid && f.tag != tag {
		v = Victim{Line: f.tag<<uint(l.idxBits) | uint64(idx), Dirty: f.dirty}
		had = true
	}
	f.valid = true
	f.tag = tag
	f.dirty = false
	f.excl = excl
	return v, had
}

// Clean clears the dirty bit of the line if present (snoop downgrade: the
// dirty data has merged into the L2 copy being supplied on the bus).
func (l *L1) Clean(line uint64) {
	idx, tag := l.split(line)
	if f := &l.lines[idx]; f.valid && f.tag == tag {
		f.dirty = false
	}
}

// Invalidate removes the line if present, returning whether it was present
// and whether it was dirty (inclusion enforcement discards the dirty data
// upward into the L2, which the protocol layer accounts for).
func (l *L1) Invalidate(line uint64) (present, dirty bool) {
	idx, tag := l.split(line)
	f := &l.lines[idx]
	if !f.valid || f.tag != tag {
		return false, false
	}
	present, dirty = true, f.dirty
	f.valid = false
	f.dirty = false
	f.excl = false
	return present, dirty
}

// ValidLines returns the number of valid lines.
func (l *L1) ValidLines() int {
	n := 0
	for i := range l.lines {
		if l.lines[i].valid {
			n++
		}
	}
	return n
}

// ForEachValidLine calls fn for every valid line number.
func (l *L1) ForEachValidLine(fn func(line uint64, dirty bool)) {
	for idx := range l.lines {
		f := &l.lines[idx]
		if f.valid {
			fn(f.tag<<uint(l.idxBits)|uint64(idx), f.dirty)
		}
	}
}
