package cache

import (
	"fmt"

	"jetty/internal/addr"
)

// L1Config sizes the direct-mapped, write-back, write-allocate L1.
type L1Config struct {
	SizeBytes int
	LineBytes int
}

// Lines returns the number of line frames.
func (c L1Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Validate reports configuration errors.
func (c L1Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || !addr.IsPow2(c.SizeBytes):
		return fmt.Errorf("cache: L1 size %d not a power of two", c.SizeBytes)
	case c.LineBytes <= 0 || !addr.IsPow2(c.LineBytes):
		return fmt.Errorf("cache: L1 line %d not a power of two", c.LineBytes)
	case c.Lines() < 1:
		return fmt.Errorf("cache: L1 of %d bytes cannot hold %d-byte lines", c.SizeBytes, c.LineBytes)
	}
	return nil
}

// Each line frame is one packed word: the tag in the high bits, the
// covering L2 frame in the middle, the valid/dirty/excl flags in the low
// three bits. A lookup is then a single load plus compare — no struct
// field fan-out — which matters because Contains sits on the critical
// path of every simulated reference.
//
// Caching the L2 frame per line exploits inclusion: while a line is
// valid in L1 its coherence unit is valid in L2, so the unit's block
// cannot leave (or move within) the L2 — the frame recorded at fill time
// stays correct for the line's whole residency. Store drains and victim
// cleanups therefore skip the L2 associative search entirely.
const (
	l1Valid = 1 << 0
	l1Dirty = 1 << 1
	l1Excl  = 1 << 2 // filled while the L2 unit was writable (M/E): stores
	// may proceed without interrogating the L2 (MESI-in-L1)
	l1FrameShift = 3
	l1FrameBits  = 28
	l1TagShift   = l1FrameShift + l1FrameBits
	l1FrameMask  = (1 << l1FrameBits) - 1
)

// MaxCachedFrames is the largest L2 frame count whose Frame indexes fit
// the L1 line word's frame field. The protocol layer must reject L2
// configurations beyond it before wiring the two caches together
// (smp.Config.Validate does).
const MaxCachedFrames = 1 << l1FrameBits

// L1 is a direct-mapped, write-back, data-less L1. Coherence is enforced
// at the L2 (inclusion): the L1 tracks valid/dirty plus an exclusivity
// hint that lets stores to lines fetched in a writable state proceed
// without an L2 access (deferring the M update to writeback time, as
// MESI-in-L1 hierarchies do).
type L1 struct {
	cfg       L1Config
	idxBits   uint
	idxMask   uint64
	lineShift uint
	words     []uint64 // packed tag+flags per frame; 0 == invalid
}

// NewL1 builds an L1. It panics on an invalid configuration.
func NewL1(cfg L1Config) *L1 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	idxBits := uint(addr.Log2(uint64(cfg.Lines())))
	if tagBits := addr.PhysBits - addr.Log2(uint64(cfg.SizeBytes)); tagBits+l1TagShift > 64 {
		panic(fmt.Sprintf("cache: L1 of %d bytes leaves %d tag bits, exceeding the packed word", cfg.SizeBytes, tagBits))
	}
	return &L1{
		cfg:       cfg,
		idxBits:   idxBits,
		idxMask:   (uint64(1) << idxBits) - 1,
		lineShift: uint(addr.Log2(uint64(cfg.LineBytes))),
		words:     make([]uint64, cfg.Lines()),
	}
}

// Config returns the cache configuration.
func (l *L1) Config() L1Config { return l.cfg }

// LineAddr returns the line number of a byte address.
func (l *L1) LineAddr(a addr.Addr) uint64 {
	return (a & addr.PhysMask) >> l.lineShift
}

func (l *L1) split(line uint64) (int, uint64) {
	return int(line & l.idxMask), line >> l.idxBits
}

// Contains reports whether the line is present.
func (l *L1) Contains(line uint64) bool {
	idx, tag := l.split(line)
	w := l.words[idx]
	return w&l1Valid != 0 && w>>l1TagShift == tag
}

// LineShift returns log2(LineBytes): byte address >> LineShift == line.
func (l *L1) LineShift() uint { return l.lineShift }

// Lookup returns the line's presence, dirty and exclusivity flags plus
// the cached covering L2 frame in one probe (the store-drain path needs
// all of them).
func (l *L1) Lookup(line uint64) (present, dirty, excl bool, frame Frame) {
	idx, tag := l.split(line)
	w := l.words[idx]
	if w&l1Valid == 0 || w>>l1TagShift != tag {
		return false, false, false, NoFrame
	}
	return true, w&l1Dirty != 0, w&l1Excl != 0, Frame(w >> l1FrameShift & l1FrameMask)
}

// Dirty reports whether the line is present and dirty.
func (l *L1) Dirty(line uint64) bool {
	idx, tag := l.split(line)
	w := l.words[idx]
	return w&(l1Valid|l1Dirty) == l1Valid|l1Dirty && w>>l1TagShift == tag
}

// Exclusive reports whether the line is present with its exclusivity
// hint set (a store needs no L2 interrogation).
func (l *L1) Exclusive(line uint64) bool {
	idx, tag := l.split(line)
	w := l.words[idx]
	return w&(l1Valid|l1Excl) == l1Valid|l1Excl && w>>l1TagShift == tag
}

// ClearExclusive drops the exclusivity hint (the L2 unit was downgraded
// by a snoop while the line sat in L1).
func (l *L1) ClearExclusive(line uint64) {
	idx, tag := l.split(line)
	if w := l.words[idx]; w&l1Valid != 0 && w>>l1TagShift == tag {
		l.words[idx] = w &^ l1Excl
	}
}

// MarkDirty marks a present line dirty; it panics if the line is absent.
func (l *L1) MarkDirty(line uint64) {
	idx, tag := l.split(line)
	w := l.words[idx]
	if w&l1Valid == 0 || w>>l1TagShift != tag {
		panic(fmt.Sprintf("cache: MarkDirty(%#x) on absent line", line))
	}
	l.words[idx] = w | l1Dirty
}

// Victim describes a line displaced by Fill, carrying the cached L2
// frame of the displaced line's unit.
type Victim struct {
	Line  uint64
	Frame Frame
	Dirty bool
}

// Fill installs a line, returning the displaced victim if a valid line
// occupied the frame. excl records whether the covering L2 unit is
// writable (M/E) at fill time; frame is the unit's L2 frame, cached in
// the line word for the store-drain and victim paths.
func (l *L1) Fill(line uint64, excl bool, frame Frame) (Victim, bool) {
	idx, tag := l.split(line)
	w := l.words[idx]
	var v Victim
	had := false
	if w&l1Valid != 0 && w>>l1TagShift != tag {
		v = Victim{
			Line:  (w>>l1TagShift)<<l.idxBits | uint64(idx),
			Frame: Frame(w >> l1FrameShift & l1FrameMask),
			Dirty: w&l1Dirty != 0,
		}
		had = true
	}
	nw := tag<<l1TagShift | uint64(frame)<<l1FrameShift | l1Valid
	if excl {
		nw |= l1Excl
	}
	l.words[idx] = nw
	return v, had
}

// Clean clears the dirty bit of the line if present (snoop downgrade: the
// dirty data has merged into the L2 copy being supplied on the bus).
func (l *L1) Clean(line uint64) {
	idx, tag := l.split(line)
	if w := l.words[idx]; w&l1Valid != 0 && w>>l1TagShift == tag {
		l.words[idx] = w &^ l1Dirty
	}
}

// Invalidate removes the line if present, returning whether it was present
// and whether it was dirty (inclusion enforcement discards the dirty data
// upward into the L2, which the protocol layer accounts for).
func (l *L1) Invalidate(line uint64) (present, dirty bool) {
	idx, tag := l.split(line)
	w := l.words[idx]
	if w&l1Valid == 0 || w>>l1TagShift != tag {
		return false, false
	}
	l.words[idx] = 0
	return true, w&l1Dirty != 0
}

// ValidLines returns the number of valid lines.
func (l *L1) ValidLines() int {
	n := 0
	for _, w := range l.words {
		if w&l1Valid != 0 {
			n++
		}
	}
	return n
}

// ForEachValidLine calls fn for every valid line number.
func (l *L1) ForEachValidLine(fn func(line uint64, dirty bool)) {
	for idx, w := range l.words {
		if w&l1Valid != 0 {
			fn((w>>l1TagShift)<<l.idxBits|uint64(idx), w&l1Dirty != 0)
		}
	}
}
