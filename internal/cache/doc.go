// Package cache provides the tag-array mechanics of the simulated memory
// hierarchy: a set-associative, subblocked L2 keeping MOESI state per
// coherence unit, and a direct-mapped write-back L1. The packages above
// (internal/smp) drive the coherence protocol; this package only provides
// the state containers and their replacement behaviour.
//
// The simulation is data-less: only tags and states are modeled, which is
// all the paper's coverage and energy evaluation needs.
//
// Both caches are laid out for the simulator's per-access hot path (see
// PERFORMANCE.md at the repository root). The L2 keeps flat parallel
// arrays — compact uint32 tags with liveness folded into an all-ones
// sentinel, one packed state+hint byte per coherence unit, per-frame LRU
// timestamps — and exposes a Frame handle so one associative search per
// access serves every subsequent touch, state access and hint update.
// The L1 packs each line's tag, flags and covering L2 frame into a
// single uint64 word; caching the frame is sound because inclusion pins
// a block in its L2 frame for as long as any L1 line covers it.
// EnsureBlock reports evictions through a per-cache scratch buffer, so
// steady-state operation allocates nothing.
package cache
