package cache

import (
	"fmt"

	"jetty/internal/addr"
)

// L2Config sizes an L2 cache.
type L2Config struct {
	SizeBytes int
	Assoc     int
	Geom      addr.Geometry
}

// Sets returns the number of sets.
func (c L2Config) Sets() int { return c.SizeBytes / (c.Geom.BlockBytes * c.Assoc) }

// Blocks returns the total number of block frames.
func (c L2Config) Blocks() int { return c.SizeBytes / c.Geom.BlockBytes }

// Validate reports configuration errors.
func (c L2Config) Validate() error {
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	switch {
	case c.SizeBytes <= 0 || !addr.IsPow2(c.SizeBytes):
		return fmt.Errorf("cache: L2 size %d not a power of two", c.SizeBytes)
	case c.Assoc <= 0 || !addr.IsPow2(c.Assoc) || c.Assoc > 64:
		return fmt.Errorf("cache: L2 assoc %d not a power of two in 1..64", c.Assoc)
	case c.Sets() < 1:
		return fmt.Errorf("cache: L2 of %d bytes cannot hold %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Assoc, c.Geom.BlockBytes)
	}
	return nil
}

// way is one L2 block frame.
type way struct {
	tag   uint64 // block address >> setBits
	live  bool   // tag installed (at least one valid unit)
	lru   uint8  // replacement rank, 0 = most recent
	state []State
	inL1  []bool // per-unit hint: a covered L1 line may exist
}

// anyValid reports whether any unit of the frame is valid.
func (w *way) anyValid() bool {
	for _, s := range w.state {
		if s.Valid() {
			return true
		}
	}
	return false
}

// EvictedUnit describes one valid unit of an evicted block.
type EvictedUnit struct {
	Unit  uint64
	State State
	InL1  bool
}

// Eviction describes a block leaving the L2 (capacity replacement): every
// valid unit, so the caller can write back dirty ones and enforce L1
// inclusion.
type Eviction struct {
	Block uint64
	Units []EvictedUnit
}

// DirtyUnits counts units needing writeback.
func (e Eviction) DirtyUnits() int {
	n := 0
	for _, u := range e.Units {
		if u.State.Dirty() {
			n++
		}
	}
	return n
}

// L2 is a set-associative, subblocked, data-less L2 cache.
type L2 struct {
	cfg     L2Config
	setBits int
	sets    []way // sets * assoc, row-major
}

// NewL2 builds an L2. It panics on an invalid configuration.
func NewL2(cfg L2Config) *L2 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	l := &L2{cfg: cfg, setBits: addr.Log2(uint64(cfg.Sets()))}
	n := cfg.Sets() * cfg.Assoc
	l.sets = make([]way, n)
	for i := range l.sets {
		l.sets[i].state = make([]State, cfg.Geom.UnitsPerBlock)
		l.sets[i].inL1 = make([]bool, cfg.Geom.UnitsPerBlock)
		l.sets[i].lru = uint8(i % cfg.Assoc)
	}
	return l
}

// Config returns the cache configuration.
func (l *L2) Config() L2Config { return l.cfg }

// split returns (set, tag) of a block address.
func (l *L2) split(block uint64) (int, uint64) {
	return int(block & ((1 << uint(l.setBits)) - 1)), block >> uint(l.setBits)
}

// frame returns the frame holding block, or nil.
func (l *L2) frame(block uint64) *way {
	set, tag := l.split(block)
	base := set * l.cfg.Assoc
	for w := 0; w < l.cfg.Assoc; w++ {
		f := &l.sets[base+w]
		if f.live && f.tag == tag {
			return f
		}
	}
	return nil
}

// HasBlock reports whether the block's tag is installed.
func (l *L2) HasBlock(block uint64) bool { return l.frame(block) != nil }

// UnitState returns the MOESI state of a coherence unit (Invalid if the
// block is absent).
func (l *L2) UnitState(unit uint64) State {
	f := l.frame(l.cfg.Geom.BlockOfUnit(unit))
	if f == nil {
		return Invalid
	}
	return f.state[int(unit%uint64(l.cfg.Geom.UnitsPerBlock))]
}

// Touch promotes the block to most-recently-used. No-op if absent.
func (l *L2) Touch(block uint64) {
	set, tag := l.split(block)
	base := set * l.cfg.Assoc
	for w := 0; w < l.cfg.Assoc; w++ {
		if f := &l.sets[base+w]; f.live && f.tag == tag {
			l.promote(set, w)
			return
		}
	}
}

func (l *L2) promote(set, w int) {
	base := set * l.cfg.Assoc
	old := l.sets[base+w].lru
	for i := 0; i < l.cfg.Assoc; i++ {
		if l.sets[base+i].lru < old {
			l.sets[base+i].lru++
		}
	}
	l.sets[base+w].lru = 0
}

// EnsureBlock installs the block's tag if absent, evicting a victim frame
// when the set is full. It returns the eviction (nil if none) and whether
// a new tag was installed (an IJ BlockAllocated event).
func (l *L2) EnsureBlock(block uint64) (*Eviction, bool) {
	if l.frame(block) != nil {
		return nil, false
	}
	set, tag := l.split(block)
	base := set * l.cfg.Assoc

	victim, worst := -1, uint8(0)
	for w := 0; w < l.cfg.Assoc; w++ {
		f := &l.sets[base+w]
		if !f.live {
			victim = w
			break
		}
		if f.lru >= worst {
			victim, worst = w, f.lru
		}
	}

	f := &l.sets[base+victim]
	var ev *Eviction
	if f.live {
		ev = &Eviction{Block: f.tag<<uint(l.setBits) | uint64(set)}
		for i, s := range f.state {
			if s.Valid() {
				ev.Units = append(ev.Units, EvictedUnit{
					Unit:  l.cfg.Geom.UnitOfBlock(ev.Block, i),
					State: s,
					InL1:  f.inL1[i],
				})
			}
		}
	}
	f.tag = tag
	f.live = true
	for i := range f.state {
		f.state[i] = Invalid
		f.inL1[i] = false
	}
	l.promote(set, victim)
	return ev, true
}

// SetUnitState sets the MOESI state of a unit whose block tag must be
// installed (EnsureBlock first); it panics otherwise — the protocol layer
// must never touch units of absent blocks.
func (l *L2) SetUnitState(unit uint64, s State) {
	f := l.frame(l.cfg.Geom.BlockOfUnit(unit))
	if f == nil {
		panic(fmt.Sprintf("cache: SetUnitState(%#x) on absent block", unit))
	}
	f.state[int(unit%uint64(l.cfg.Geom.UnitsPerBlock))] = s
}

// InvalidateUnit invalidates a unit (snoop-induced). If that empties the
// block, the tag is freed. It returns the unit's prior state and whether
// the block was deallocated (an IJ BlockEvicted event).
func (l *L2) InvalidateUnit(unit uint64) (prior State, blockFreed bool) {
	block := l.cfg.Geom.BlockOfUnit(unit)
	f := l.frame(block)
	if f == nil {
		return Invalid, false
	}
	idx := int(unit % uint64(l.cfg.Geom.UnitsPerBlock))
	prior = f.state[idx]
	f.state[idx] = Invalid
	f.inL1[idx] = false
	if !f.anyValid() {
		f.live = false
		return prior, true
	}
	return prior, false
}

// SetInL1 records whether a covered L1 line may exist for the unit.
func (l *L2) SetInL1(unit uint64, v bool) {
	f := l.frame(l.cfg.Geom.BlockOfUnit(unit))
	if f == nil {
		return
	}
	f.inL1[int(unit%uint64(l.cfg.Geom.UnitsPerBlock))] = v
}

// InL1 reports the L1-inclusion hint for the unit.
func (l *L2) InL1(unit uint64) bool {
	f := l.frame(l.cfg.Geom.BlockOfUnit(unit))
	if f == nil {
		return false
	}
	return f.inL1[int(unit%uint64(l.cfg.Geom.UnitsPerBlock))]
}

// LiveBlocks returns the number of installed block tags.
func (l *L2) LiveBlocks() int {
	n := 0
	for i := range l.sets {
		if l.sets[i].live {
			n++
		}
	}
	return n
}

// ForEachValidUnit calls fn for every valid unit. Iteration order is
// arbitrary but deterministic. Intended for invariant checks and tests.
func (l *L2) ForEachValidUnit(fn func(unit uint64, s State)) {
	sets := l.cfg.Sets()
	for set := 0; set < sets; set++ {
		for w := 0; w < l.cfg.Assoc; w++ {
			f := &l.sets[set*l.cfg.Assoc+w]
			if !f.live {
				continue
			}
			block := f.tag<<uint(l.setBits) | uint64(set)
			for i, s := range f.state {
				if s.Valid() {
					fn(l.cfg.Geom.UnitOfBlock(block, i), s)
				}
			}
		}
	}
}
