package cache

import (
	"fmt"

	"jetty/internal/addr"
)

// L2Config sizes an L2 cache.
type L2Config struct {
	SizeBytes int
	Assoc     int
	Geom      addr.Geometry
}

// Sets returns the number of sets.
func (c L2Config) Sets() int { return c.SizeBytes / (c.Geom.BlockBytes * c.Assoc) }

// Blocks returns the total number of block frames.
func (c L2Config) Blocks() int { return c.SizeBytes / c.Geom.BlockBytes }

// Validate reports configuration errors.
func (c L2Config) Validate() error {
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	switch {
	case c.SizeBytes <= 0 || !addr.IsPow2(c.SizeBytes):
		return fmt.Errorf("cache: L2 size %d not a power of two", c.SizeBytes)
	case c.Assoc <= 0 || !addr.IsPow2(c.Assoc) || c.Assoc > 64:
		return fmt.Errorf("cache: L2 assoc %d not a power of two in 1..64", c.Assoc)
	case c.Sets() < 1:
		return fmt.Errorf("cache: L2 of %d bytes cannot hold %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Assoc, c.Geom.BlockBytes)
	case c.SizeBytes/c.Assoc < 32:
		// Tag width is PhysBits - log2(SizeBytes/Assoc); 32 bytes per way
		// bounds it at 31 bits so a tag (plus the empty sentinel) packs
		// into the uint32 tag array.
		return fmt.Errorf("cache: L2 of %d bytes at %d ways leaves tags wider than 31 bits",
			c.SizeBytes, c.Assoc)
	}
	return nil
}

// EvictedUnit describes one valid unit of an evicted block.
type EvictedUnit struct {
	Unit  uint64
	State State
	InL1  bool
}

// Eviction describes a block leaving the L2 (capacity replacement): every
// valid unit, so the caller can write back dirty ones and enforce L1
// inclusion. Evictions returned by EnsureBlock point into a per-cache
// scratch buffer and stay valid only until the next EnsureBlock call.
type Eviction struct {
	Block uint64
	Units []EvictedUnit
}

// DirtyUnits counts units needing writeback.
func (e Eviction) DirtyUnits() int {
	n := 0
	for _, u := range e.Units {
		if u.State.Dirty() {
			n++
		}
	}
	return n
}

// Frame is a handle to a resident L2 block frame, as returned by
// FindBlock and EnsureFrame. A frame stays valid while its block stays
// resident: any EnsureBlock/EnsureFrame in the same cache, or an
// invalidation that frees the block, may invalidate outstanding frames.
type Frame int32

// NoFrame is the absent-block result of FindBlock.
const NoFrame Frame = -1

// Ok reports whether the handle names a resident frame.
func (f Frame) Ok() bool { return f >= 0 }

// emptyTag marks a frame with no installed tag. No real tag collides:
// Validate bounds tags at 31 bits (see the SizeBytes/Assoc check), so
// the sentinel is unreachable. Folding liveness into a compact uint32
// tag word keeps the associative search to one contiguous run per set —
// a 4-way set's tags span 16 bytes of one cache line.
const emptyTag = ^uint32(0)

// Unit-byte layout: MOESI state in the low 3 bits, the L1-inclusion hint
// in bit 3. One byte per unit keeps the state and the hint on the same
// cache line for every state+hint access pair.
const (
	unitStateMask = 0x7
	unitInL1      = 1 << 3
)

// L2 is a set-associative, subblocked, data-less L2 cache.
//
// The per-frame state lives in flat parallel arrays (tags, liveness, LRU
// ranks, unit states, L1-inclusion hints) rather than per-way structs,
// and the set/tag/unit arithmetic is precomputed shifts and masks: the
// associative search on every simulated L2 access walks a few contiguous
// cache lines instead of chasing per-way slice headers. See
// PERFORMANCE.md for the measured effect.
type L2 struct {
	cfg        L2Config
	assoc      int
	assocShift uint
	setBits    uint
	setMask    uint64
	upb        int  // units per block
	upbShift   uint // log2(upb)
	unitMask   uint64

	tags  []uint32 // per frame: block address >> setBits; emptyTag == free
	units []uint8  // frame-major, upb per frame: state (low 3 bits) | inL1 (bit 3)

	// Recency is tracked with per-frame timestamps: TouchAt is one store
	// (stamp = clock++) instead of a rank-shuffling loop over the set,
	// and the replacement scan takes the minimum stamp. Stamps within a
	// set are always distinct, so the victim matches rank-based LRU.
	stamp []uint64
	clock uint64

	ev Eviction // reusable EnsureBlock result; see Eviction
}

// NewL2 builds an L2. It panics on an invalid configuration.
func NewL2(cfg L2Config) *L2 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	frames := sets * cfg.Assoc
	upb := cfg.Geom.UnitsPerBlock
	l := &L2{
		cfg:        cfg,
		assoc:      cfg.Assoc,
		assocShift: uint(addr.Log2(uint64(cfg.Assoc))),
		setBits:    uint(addr.Log2(uint64(sets))),
		setMask:    uint64(sets) - 1,
		upb:        upb,
		upbShift:   uint(addr.Log2(uint64(upb))),
		unitMask:   uint64(upb) - 1,
		tags:       make([]uint32, frames),
		stamp:      make([]uint64, frames),
		units:      make([]uint8, frames*upb),
		ev:         Eviction{Units: make([]EvictedUnit, 0, upb)},
	}
	wayMask := cfg.Assoc - 1
	for i := range l.stamp {
		l.tags[i] = emptyTag
		// Distinct initial recency within each set: way 0 most recent.
		l.stamp[i] = uint64(wayMask - i&wayMask)
	}
	l.clock = uint64(cfg.Assoc)
	return l
}

// Config returns the cache configuration.
func (l *L2) Config() L2Config { return l.cfg }

// FindBlock returns the frame holding block, or NoFrame.
func (l *L2) FindBlock(block uint64) Frame {
	set := int(block & l.setMask)
	tag := uint32(block >> l.setBits)
	base := set << l.assocShift
	for w, t := range l.tags[base : base+l.assoc] {
		if t == tag {
			return Frame(base + w)
		}
	}
	return NoFrame
}

// unitIdx returns the state/inL1 array index of unit within frame f.
func (l *L2) unitIdx(f Frame, unit uint64) int {
	return int(f)<<l.upbShift | int(unit&l.unitMask)
}

// StateAt returns the MOESI state of a unit of a resident frame.
func (l *L2) StateAt(f Frame, unit uint64) State {
	return State(l.units[l.unitIdx(f, unit)] & unitStateMask)
}

// SetStateAt sets the MOESI state of a unit of a resident frame.
func (l *L2) SetStateAt(f Frame, unit uint64, s State) {
	idx := l.unitIdx(f, unit)
	l.units[idx] = l.units[idx]&^unitStateMask | uint8(s)
}

// InL1At reports the L1-inclusion hint of a unit of a resident frame.
func (l *L2) InL1At(f Frame, unit uint64) bool {
	return l.units[l.unitIdx(f, unit)]&unitInL1 != 0
}

// SetInL1At records whether a covered L1 line may exist for a unit of a
// resident frame.
func (l *L2) SetInL1At(f Frame, unit uint64, v bool) {
	idx := l.unitIdx(f, unit)
	if v {
		l.units[idx] |= unitInL1
	} else {
		l.units[idx] &^= unitInL1
	}
}

// TouchAt promotes the frame to most-recently-used in its set.
func (l *L2) TouchAt(f Frame) {
	l.stamp[f] = l.clock
	l.clock++
}

// InvalidateAt invalidates a unit of a resident frame (snoop-induced).
// If that empties the block, the tag is freed — and the frame handle
// becomes invalid. It returns the unit's prior state and whether the
// block was deallocated (an IJ BlockEvicted event).
func (l *L2) InvalidateAt(f Frame, unit uint64) (prior State, blockFreed bool) {
	idx := l.unitIdx(f, unit)
	prior = State(l.units[idx] & unitStateMask)
	l.units[idx] = 0
	base := int(f) << l.upbShift
	for i := base; i < base+l.upb; i++ {
		if l.units[i]&unitStateMask != 0 {
			return prior, false
		}
	}
	l.tags[f] = emptyTag
	return prior, true
}

// blockOf returns the block address held by a resident frame.
func (l *L2) blockOf(f Frame) uint64 {
	set := uint64(int(f) >> l.assocShift)
	return uint64(l.tags[f])<<l.setBits | set
}

// EnsureFrame installs the block's tag if absent, evicting a victim
// frame when the set is full, and returns the block's frame. ev (nil if
// no eviction) points into the cache's scratch buffer and is valid only
// until the next EnsureFrame/EnsureBlock call.
func (l *L2) EnsureFrame(block uint64) (ev *Eviction, allocated bool, f Frame) {
	if f := l.FindBlock(block); f.Ok() {
		return nil, false, f
	}
	set := int(block & l.setMask)
	tag := uint32(block >> l.setBits)
	base := set << l.assocShift

	victim := -1
	oldest := ^uint64(0)
	for w := 0; w < l.assoc; w++ {
		if l.tags[base+w] == emptyTag {
			victim = w
			break
		}
		if l.stamp[base+w] < oldest {
			victim, oldest = w, l.stamp[base+w]
		}
	}

	f = Frame(base + victim)
	ubase := int(f) << l.upbShift
	if l.tags[f] != emptyTag {
		l.ev.Block = l.blockOf(f)
		l.ev.Units = l.ev.Units[:0]
		for i := 0; i < l.upb; i++ {
			if b := l.units[ubase+i]; b&unitStateMask != 0 {
				l.ev.Units = append(l.ev.Units, EvictedUnit{
					Unit:  l.ev.Block<<l.upbShift | uint64(i),
					State: State(b & unitStateMask),
					InL1:  b&unitInL1 != 0,
				})
			}
		}
		ev = &l.ev
	}
	l.tags[f] = tag
	for i := 0; i < l.upb; i++ {
		l.units[ubase+i] = 0
	}
	l.TouchAt(f)
	return ev, true, f
}

// EnsureBlock installs the block's tag if absent, evicting a victim frame
// when the set is full. It returns the eviction (nil if none; valid only
// until the next EnsureBlock/EnsureFrame call) and whether a new tag was
// installed (an IJ BlockAllocated event).
func (l *L2) EnsureBlock(block uint64) (*Eviction, bool) {
	ev, allocated, _ := l.EnsureFrame(block)
	return ev, allocated
}

// HasBlock reports whether the block's tag is installed.
func (l *L2) HasBlock(block uint64) bool { return l.FindBlock(block).Ok() }

// UnitState returns the MOESI state of a coherence unit (Invalid if the
// block is absent).
func (l *L2) UnitState(unit uint64) State {
	f := l.FindBlock(unit >> l.upbShift)
	if !f.Ok() {
		return Invalid
	}
	return l.StateAt(f, unit)
}

// Touch promotes the block to most-recently-used. No-op if absent.
func (l *L2) Touch(block uint64) {
	if f := l.FindBlock(block); f.Ok() {
		l.TouchAt(f)
	}
}

// SetUnitState sets the MOESI state of a unit whose block tag must be
// installed (EnsureBlock first); it panics otherwise — the protocol layer
// must never touch units of absent blocks.
func (l *L2) SetUnitState(unit uint64, s State) {
	f := l.FindBlock(unit >> l.upbShift)
	if !f.Ok() {
		panic(fmt.Sprintf("cache: SetUnitState(%#x) on absent block", unit))
	}
	l.SetStateAt(f, unit, s)
}

// InvalidateUnit invalidates a unit (snoop-induced). If that empties the
// block, the tag is freed. It returns the unit's prior state and whether
// the block was deallocated (an IJ BlockEvicted event).
func (l *L2) InvalidateUnit(unit uint64) (prior State, blockFreed bool) {
	f := l.FindBlock(unit >> l.upbShift)
	if !f.Ok() {
		return Invalid, false
	}
	return l.InvalidateAt(f, unit)
}

// SetInL1 records whether a covered L1 line may exist for the unit.
// No-op if the block is absent.
func (l *L2) SetInL1(unit uint64, v bool) {
	if f := l.FindBlock(unit >> l.upbShift); f.Ok() {
		l.SetInL1At(f, unit, v)
	}
}

// InL1 reports the L1-inclusion hint for the unit.
func (l *L2) InL1(unit uint64) bool {
	f := l.FindBlock(unit >> l.upbShift)
	if !f.Ok() {
		return false
	}
	return l.InL1At(f, unit)
}

// LiveBlocks returns the number of installed block tags.
func (l *L2) LiveBlocks() int {
	n := 0
	for _, t := range l.tags {
		if t != emptyTag {
			n++
		}
	}
	return n
}

// ForEachValidUnit calls fn for every valid unit. Iteration order is
// arbitrary but deterministic. Intended for invariant checks and tests.
func (l *L2) ForEachValidUnit(fn func(unit uint64, s State)) {
	for f := range l.tags {
		if l.tags[f] == emptyTag {
			continue
		}
		block := l.blockOf(Frame(f))
		base := f << l.upbShift
		for i := 0; i < l.upb; i++ {
			if b := l.units[base+i]; b&unitStateMask != 0 {
				fn(block<<l.upbShift|uint64(i), State(b&unitStateMask))
			}
		}
	}
}
