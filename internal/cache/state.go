package cache

// State is a MOESI coherence state.
type State uint8

// MOESI states. The zero value is Invalid.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String returns the one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Valid reports whether the unit holds data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the unit holds data newer than memory (must be
// written back on eviction).
func (s State) Dirty() bool { return s == Modified || s == Owned }

// CanSupply reports whether a cache in this state responds to a bus read
// with data, inhibiting memory (owner responsibility).
func (s State) CanSupply() bool { return s == Modified || s == Owned || s == Exclusive }

// Writable reports whether a store can proceed without a bus transaction.
func (s State) Writable() bool { return s == Modified || s == Exclusive }
