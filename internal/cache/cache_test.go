package cache

import (
	"math/rand"
	"testing"

	"jetty/internal/addr"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M", State(9): "?"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		s                              State
		valid, dirty, supply, writable bool
	}{
		{Invalid, false, false, false, false},
		{Shared, true, false, false, false},
		{Exclusive, true, false, true, true},
		{Owned, true, true, true, false},
		{Modified, true, true, true, true},
	}
	for _, c := range cases {
		if c.s.Valid() != c.valid || c.s.Dirty() != c.dirty ||
			c.s.CanSupply() != c.supply || c.s.Writable() != c.writable {
			t.Errorf("state %v predicates wrong", c.s)
		}
	}
}

func smallL2() *L2 {
	return NewL2(L2Config{SizeBytes: 1 << 12, Assoc: 2, Geom: addr.Subblocked}) // 32 sets
}

func TestL2ConfigValidate(t *testing.T) {
	good := L2Config{SizeBytes: 1 << 20, Assoc: 4, Geom: addr.Subblocked}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Sets() != 4096 || good.Blocks() != 16384 {
		t.Errorf("paper L2 geometry wrong: %d sets, %d blocks", good.Sets(), good.Blocks())
	}
	bad := []L2Config{
		{SizeBytes: 3000, Assoc: 4, Geom: addr.Subblocked},
		{SizeBytes: 1 << 20, Assoc: 3, Geom: addr.Subblocked},
		{SizeBytes: 1 << 20, Assoc: 4, Geom: addr.Geometry{BlockBytes: 48, UnitsPerBlock: 2}},
		{SizeBytes: 64, Assoc: 4, Geom: addr.Subblocked},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestL2FillAndLookup(t *testing.T) {
	l2 := smallL2()
	block := uint64(0x100)
	unit := addr.Subblocked.UnitOfBlock(block, 0)

	if l2.HasBlock(block) || l2.UnitState(unit) != Invalid {
		t.Fatal("empty cache claims content")
	}
	ev, alloc := l2.EnsureBlock(block)
	if ev != nil || !alloc {
		t.Fatalf("first allocation: ev=%v alloc=%v", ev, alloc)
	}
	l2.SetUnitState(unit, Exclusive)
	if got := l2.UnitState(unit); got != Exclusive {
		t.Errorf("unit state = %v", got)
	}
	// Sibling unit still invalid.
	if got := l2.UnitState(unit + 1); got != Invalid {
		t.Errorf("sibling state = %v", got)
	}
	// Re-ensuring is a no-op.
	if _, alloc := l2.EnsureBlock(block); alloc {
		t.Error("re-allocation of present block")
	}
	if l2.LiveBlocks() != 1 {
		t.Errorf("LiveBlocks = %d", l2.LiveBlocks())
	}
}

func TestL2SetUnitStateOnAbsentBlockPanics(t *testing.T) {
	l2 := smallL2()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l2.SetUnitState(12345, Shared)
}

func TestL2EvictionCarriesDirtyUnits(t *testing.T) {
	l2 := smallL2() // 32 sets, 2-way
	g := addr.Subblocked
	// Three blocks mapping to the same set force one eviction.
	b0, b1, b2 := uint64(0), uint64(32), uint64(64)
	for _, b := range []uint64{b0, b1} {
		if _, alloc := l2.EnsureBlock(b); !alloc {
			t.Fatal("allocation failed")
		}
	}
	l2.SetUnitState(g.UnitOfBlock(b0, 0), Modified)
	l2.SetUnitState(g.UnitOfBlock(b0, 1), Shared)
	l2.SetInL1(g.UnitOfBlock(b0, 0), true)
	l2.SetUnitState(g.UnitOfBlock(b1, 0), Exclusive)
	l2.Touch(b0) // b1 becomes LRU

	ev, alloc := l2.EnsureBlock(b2)
	if !alloc || ev == nil {
		t.Fatalf("expected eviction, got ev=%v", ev)
	}
	if ev.Block != b1 {
		t.Fatalf("evicted block %#x, want %#x (LRU)", ev.Block, b1)
	}
	if len(ev.Units) != 1 || ev.Units[0].State != Exclusive {
		t.Fatalf("eviction units = %+v", ev.Units)
	}
	if ev.DirtyUnits() != 0 {
		t.Error("exclusive unit is not dirty")
	}

	// Now evict b0: its M unit is dirty and flagged inL1.
	ev, _ = l2.EnsureBlock(uint64(96))
	if ev == nil || ev.Block != b0 {
		t.Fatalf("expected b0 eviction, got %+v", ev)
	}
	if ev.DirtyUnits() != 1 {
		t.Errorf("DirtyUnits = %d, want 1", ev.DirtyUnits())
	}
	var sawInL1 bool
	for _, u := range ev.Units {
		if u.InL1 {
			sawInL1 = true
		}
	}
	if !sawInL1 {
		t.Error("inL1 hint lost during eviction")
	}
}

func TestL2PrefersInvalidFrame(t *testing.T) {
	l2 := smallL2()
	b0, b1, b2 := uint64(0), uint64(32), uint64(64)
	l2.EnsureBlock(b0)
	l2.SetUnitState(addr.Subblocked.UnitOfBlock(b0, 0), Shared)
	l2.EnsureBlock(b1)
	l2.SetUnitState(addr.Subblocked.UnitOfBlock(b1, 0), Shared)
	// Invalidate all of b0 -> frame freed.
	if _, freed := l2.InvalidateUnit(addr.Subblocked.UnitOfBlock(b0, 0)); !freed {
		t.Fatal("block should be freed when last unit invalidated")
	}
	ev, _ := l2.EnsureBlock(b2)
	if ev != nil {
		t.Errorf("allocation should reuse the freed frame, evicted %+v", ev)
	}
	if !l2.HasBlock(b1) {
		t.Error("valid block b1 was displaced")
	}
}

func TestL2InvalidateUnit(t *testing.T) {
	l2 := smallL2()
	g := addr.Subblocked
	b := uint64(7)
	u0, u1 := g.UnitOfBlock(b, 0), g.UnitOfBlock(b, 1)
	l2.EnsureBlock(b)
	l2.SetUnitState(u0, Modified)
	l2.SetUnitState(u1, Shared)

	prior, freed := l2.InvalidateUnit(u0)
	if prior != Modified || freed {
		t.Fatalf("InvalidateUnit(u0) = %v,%v", prior, freed)
	}
	if !l2.HasBlock(b) {
		t.Fatal("block freed while a unit remains valid")
	}
	prior, freed = l2.InvalidateUnit(u1)
	if prior != Shared || !freed {
		t.Fatalf("InvalidateUnit(u1) = %v,%v", prior, freed)
	}
	if l2.HasBlock(b) || l2.LiveBlocks() != 0 {
		t.Error("block tag not deallocated")
	}
	// Invalidating an absent unit is harmless.
	if prior, freed := l2.InvalidateUnit(u1); prior != Invalid || freed {
		t.Error("invalidate of absent unit should be a no-op")
	}
}

func TestL2InL1Hint(t *testing.T) {
	l2 := smallL2()
	u := uint64(100)
	if l2.InL1(u) {
		t.Error("absent unit cannot be in L1")
	}
	l2.SetInL1(u, true) // absent block: ignored
	if l2.InL1(u) {
		t.Error("hint set on absent block")
	}
	b := addr.Subblocked.BlockOfUnit(u)
	l2.EnsureBlock(b)
	l2.SetUnitState(u, Shared)
	l2.SetInL1(u, true)
	if !l2.InL1(u) {
		t.Error("hint lost")
	}
	l2.InvalidateUnit(u)
	if l2.InL1(u) {
		t.Error("hint must clear on invalidation")
	}
}

func TestL2ForEachValidUnit(t *testing.T) {
	l2 := smallL2()
	g := addr.Subblocked
	want := map[uint64]State{}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		b := uint64(r.Intn(512))
		u := g.UnitOfBlock(b, r.Intn(2))
		if ev, _ := l2.EnsureBlock(b); ev != nil {
			for _, eu := range ev.Units {
				delete(want, eu.Unit)
			}
		}
		s := State(1 + r.Intn(4))
		l2.SetUnitState(u, s)
		want[u] = s
	}
	got := map[uint64]State{}
	l2.ForEachValidUnit(func(unit uint64, s State) { got[unit] = s })
	if len(got) != len(want) {
		t.Fatalf("valid units: got %d, want %d", len(got), len(want))
	}
	for u, s := range want {
		if got[u] != s {
			t.Errorf("unit %#x: state %v, want %v", u, got[u], s)
		}
	}
}

func TestL2LRUOrdering(t *testing.T) {
	// 1-set cache to test pure LRU.
	l2 := NewL2(L2Config{SizeBytes: 256, Assoc: 4, Geom: addr.NonSubblocked}) // 4 blocks, 1 set
	for b := uint64(0); b < 4; b++ {
		l2.EnsureBlock(b)
		l2.SetUnitState(addr.NonSubblocked.UnitOfBlock(b, 0), Shared)
	}
	l2.Touch(0) // order now 0 MRU, then 3,2,1
	ev, _ := l2.EnsureBlock(10)
	if ev == nil || ev.Block != 1 {
		t.Fatalf("evicted %+v, want block 1 (LRU)", ev)
	}
}

func TestL1FillLookupInvalidate(t *testing.T) {
	l1 := NewL1(L1Config{SizeBytes: 1 << 10, LineBytes: 32}) // 32 lines
	line := uint64(5)
	if l1.Contains(line) {
		t.Fatal("empty L1 claims content")
	}
	if _, had := l1.Fill(line, false, 0); had {
		t.Fatal("fill into empty frame returned victim")
	}
	if !l1.Contains(line) || l1.Dirty(line) {
		t.Fatal("fill failed or dirty by default")
	}
	l1.MarkDirty(line)
	if !l1.Dirty(line) {
		t.Fatal("MarkDirty failed")
	}
	present, dirty := l1.Invalidate(line)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v", present, dirty)
	}
	if l1.Contains(line) {
		t.Fatal("line still present after invalidation")
	}
	if present, _ := l1.Invalidate(line); present {
		t.Error("double invalidation reported presence")
	}
}

func TestL1ConflictVictim(t *testing.T) {
	l1 := NewL1(L1Config{SizeBytes: 1 << 10, LineBytes: 32}) // 32 lines
	a, b := uint64(7), uint64(7+32)                          // same frame
	l1.Fill(a, false, 0)
	l1.MarkDirty(a)
	v, had := l1.Fill(b, false, 0)
	if !had || v.Line != a || !v.Dirty {
		t.Fatalf("victim = %+v,%v; want dirty line %#x", v, had, a)
	}
	if l1.Contains(a) || !l1.Contains(b) {
		t.Error("replacement state wrong")
	}
	// Refilling the same line is not a replacement.
	if _, had := l1.Fill(b, false, 0); had {
		t.Error("refill of resident line returned victim")
	}
}

func TestL1MarkDirtyPanicsOnAbsent(t *testing.T) {
	l1 := NewL1(L1Config{SizeBytes: 1 << 10, LineBytes: 32})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l1.MarkDirty(99)
}

func TestL1Counters(t *testing.T) {
	l1 := NewL1(L1Config{SizeBytes: 1 << 10, LineBytes: 32})
	for i := uint64(0); i < 10; i++ {
		l1.Fill(i, false, 0)
	}
	if l1.ValidLines() != 10 {
		t.Errorf("ValidLines = %d", l1.ValidLines())
	}
	seen := 0
	l1.ForEachValidLine(func(line uint64, dirty bool) { seen++ })
	if seen != 10 {
		t.Errorf("ForEachValidLine visited %d", seen)
	}
}

func TestL1ConfigValidate(t *testing.T) {
	if err := (L1Config{SizeBytes: 64 << 10, LineBytes: 32}).Validate(); err != nil {
		t.Errorf("paper L1 rejected: %v", err)
	}
	for _, c := range []L1Config{
		{SizeBytes: 0, LineBytes: 32},
		{SizeBytes: 1000, LineBytes: 32},
		{SizeBytes: 1 << 10, LineBytes: 0},
		{SizeBytes: 16, LineBytes: 32},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %+v accepted", c)
		}
	}
}

func TestL1LineAddrMasksPhysical(t *testing.T) {
	l1 := NewL1(L1Config{SizeBytes: 1 << 10, LineBytes: 32})
	hi := uint64(1)<<40 | 64
	if got, want := l1.LineAddr(hi), uint64(2); got != want {
		t.Errorf("LineAddr = %d, want %d", got, want)
	}
}

// TestL2RandomizedConsistency cross-checks the L2 against a reference map
// under random alloc/invalidate traffic.
func TestL2RandomizedConsistency(t *testing.T) {
	l2 := NewL2(L2Config{SizeBytes: 1 << 13, Assoc: 4, Geom: addr.Subblocked}) // 128 blocks
	g := addr.Subblocked
	ref := map[uint64]State{} // unit -> state
	r := rand.New(rand.NewSource(99))
	for step := 0; step < 100000; step++ {
		b := uint64(r.Intn(1 << 10))
		u := g.UnitOfBlock(b, r.Intn(2))
		switch r.Intn(3) {
		case 0:
			if ev, _ := l2.EnsureBlock(b); ev != nil {
				for _, eu := range ev.Units {
					if ref[eu.Unit] != eu.State {
						t.Fatalf("eviction reported %v for unit %#x, ref %v", eu.State, eu.Unit, ref[eu.Unit])
					}
					delete(ref, eu.Unit)
				}
			}
			s := State(1 + r.Intn(4))
			l2.SetUnitState(u, s)
			ref[u] = s
		case 1:
			prior, _ := l2.InvalidateUnit(u)
			if want := ref[u]; prior != want {
				t.Fatalf("invalidate prior %v, ref %v", prior, want)
			}
			delete(ref, u)
		default:
			if got, want := l2.UnitState(u), ref[u]; got != want {
				t.Fatalf("UnitState(%#x) = %v, ref %v", u, got, want)
			}
		}
	}
	// Final full sweep.
	count := 0
	l2.ForEachValidUnit(func(unit uint64, s State) {
		count++
		if ref[unit] != s {
			t.Fatalf("sweep: unit %#x state %v, ref %v", unit, s, ref[unit])
		}
	})
	if count != len(ref) {
		t.Fatalf("sweep count %d, ref %d", count, len(ref))
	}
}
