package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// An in-repo promlint: enough of the Prometheus text-format contract to
// keep /metrics honest without importing a client library. The rules it
// enforces are the ones a real scraper depends on:
//
//   - every series belongs to a family with # HELP and # TYPE lines
//   - counter families end in _total
//   - no duplicate series (same name and label set twice)
//   - histogram buckets are cumulative, carry a +Inf bucket, and the
//     +Inf bucket equals the family's _count
//
// CheckMonotone adds the cross-scrape rule: counters (and histogram
// bucket/count/sum series) never decrease between two scrapes.

// MetricMeta is one family's declared metadata.
type MetricMeta struct {
	Help string
	Type string
}

// Sample is one parsed series line.
type Sample struct {
	Name   string            // full series name (may carry _bucket/_sum/_count)
	Labels map[string]string // parsed label set
	Value  float64
}

// seriesID is a canonical identity for one series: name plus the sorted
// label pairs.
func (s Sample) seriesID() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.Labels[k])
	}
	return b.String()
}

// Exposition is one parsed /metrics payload.
type Exposition struct {
	Meta    map[string]MetricMeta
	Samples []Sample
}

// ParseText parses a Prometheus text-format exposition. It is strict
// about line shape (that is the point) but does not validate semantics;
// Lint does.
func ParseText(text string) (*Exposition, error) {
	exp := &Exposition{Meta: make(map[string]MetricMeta)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				m := exp.Meta[name]
				if fields[1] == "HELP" {
					if len(fields) == 4 {
						m.Help = fields[3]
					}
				} else {
					if len(fields) < 4 {
						return nil, fmt.Errorf("line %d: TYPE without a type", ln+1)
					}
					m.Type = fields[3]
				}
				exp.Meta[name] = m
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	return exp, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in series %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	s.Labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in series %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` handling \\, \" and \n escapes.
func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without =")
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("label %s value unterminated", key)
		}
		i++ // closing quote
		out[key] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return out, nil
}

// familyOf strips the histogram sample suffixes so a series maps back to
// its declared family. typ guards against families whose own names end
// in _sum or _count.
func familyOf(name string, meta map[string]MetricMeta) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if m, ok := meta[base]; ok && m.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// Lint checks one exposition against the format contract and returns the
// problems found (empty means clean).
func Lint(text string) []string {
	exp, err := ParseText(text)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	seen := map[string]bool{}
	type histSeries struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	hists := map[string]*histSeries{}

	for _, s := range exp.Samples {
		fam := familyOf(s.Name, exp.Meta)
		meta, ok := exp.Meta[fam]
		switch {
		case !ok:
			problems = append(problems, fmt.Sprintf("%s: series without # HELP/# TYPE", s.Name))
			continue
		case meta.Help == "":
			problems = append(problems, fmt.Sprintf("%s: missing # HELP", fam))
		case meta.Type == "":
			problems = append(problems, fmt.Sprintf("%s: missing # TYPE", fam))
		}
		if meta.Type == "counter" && !strings.HasSuffix(fam, "_total") {
			problems = append(problems, fmt.Sprintf("%s: counter not suffixed _total", fam))
		}
		if !metricNameRE.MatchString(s.Name) {
			problems = append(problems, fmt.Sprintf("%s: invalid metric name", s.Name))
		}
		id := s.seriesID()
		if seen[id] {
			problems = append(problems, fmt.Sprintf("%s: duplicate series %s", fam, id))
		}
		seen[id] = true

		if meta.Type == "histogram" {
			// Key the child by the label set minus le, under the family name.
			labels := make(map[string]string, len(s.Labels))
			for k, v := range s.Labels {
				if k != "le" {
					labels[k] = v
				}
			}
			key := Sample{Name: fam, Labels: labels}.seriesID()
			h := hists[key]
			if h == nil {
				h = &histSeries{buckets: map[float64]float64{}}
				hists[key] = h
			}
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le := s.Labels["le"]
				bound := math.Inf(1)
				if le != "+Inf" {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s: bad le %q", fam, le))
						continue
					}
					bound = b
				}
				h.buckets[bound] = s.Value
			case strings.HasSuffix(s.Name, "_count"):
				h.count, h.hasCnt = s.Value, true
			case strings.HasSuffix(s.Name, "_sum"):
				h.hasSum = true
			default:
				problems = append(problems, fmt.Sprintf("%s: bare series on histogram family", fam))
			}
		}
	}

	// Histogram shape: cumulative buckets, +Inf present and == _count.
	histKeys := make([]string, 0, len(hists))
	for k := range hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		h := hists[key]
		if !h.hasCnt || !h.hasSum {
			problems = append(problems, fmt.Sprintf("%s: histogram missing _count or _sum", key))
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
			problems = append(problems, fmt.Sprintf("%s: histogram missing +Inf bucket", key))
			continue
		}
		prev := 0.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				problems = append(problems, fmt.Sprintf("%s: bucket counts not cumulative at le=%v", key, b))
			}
			prev = h.buckets[b]
		}
		if h.hasCnt && h.buckets[math.Inf(1)] != h.count {
			problems = append(problems, fmt.Sprintf("%s: +Inf bucket %v != count %v",
				key, h.buckets[math.Inf(1)], h.count))
		}
	}
	return problems
}

// CheckMonotone compares two scrapes (before, then after) and reports
// every counter-typed series — including histogram _bucket/_count/_sum
// series — whose value decreased. Series present only in one scrape are
// fine (children appear as label values are first observed).
func CheckMonotone(before, after string) []string {
	b, err := ParseText(before)
	if err != nil {
		return []string{"before: " + err.Error()}
	}
	a, err := ParseText(after)
	if err != nil {
		return []string{"after: " + err.Error()}
	}
	prev := map[string]float64{}
	for _, s := range b.Samples {
		prev[s.seriesID()] = s.Value
	}
	var problems []string
	for _, s := range a.Samples {
		fam := familyOf(s.Name, a.Meta)
		typ := a.Meta[fam].Type
		monotone := typ == "counter" || typ == "histogram"
		if !monotone {
			continue
		}
		if old, ok := prev[s.seriesID()]; ok && s.Value < old {
			problems = append(problems, fmt.Sprintf("%s: %v -> %v went backwards", s.seriesID(), old, s.Value))
		}
	}
	return problems
}
