package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// 0.5 and 1 land in le=1 (bounds are inclusive upper), 1.5 in le=2,
	// 3 in le=5, 100 in +Inf.
	counts, sum := h.snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, counts[i], w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if sum != 106 {
		t.Errorf("Sum = %v, want 106", sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefBuckets)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("Count = %d, want %d", got, goroutines*per)
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramObserveAllocs pins the hot-path property the engine hook
// and HTTP middleware rely on: recording into a resolved child costs no
// allocations, and neither does the family lookup once the child exists.
func TestHistogramObserveAllocs(t *testing.T) {
	r := NewRegistry()
	fam := r.NewHistogramFamily("test_latency_seconds", "test.", []string{"kind"}, nil)
	h := fam.With("workload")

	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { fam.With("workload").Observe(0.017) }); n != 0 {
		t.Errorf("With+Observe on an existing child allocates %v per run, want 0", n)
	}

	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per run, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v per run, want 0", n)
	}
}

func TestHistogramFamilyWithPanics(t *testing.T) {
	r := NewRegistry()
	fam := r.NewHistogramFamily("test_hist_seconds", "test.", []string{"a", "b"}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong label count did not panic")
		}
	}()
	fam.With("only-one")
}

func TestHistogramFamilyChildrenDistinct(t *testing.T) {
	r := NewRegistry()
	fam := r.NewHistogramFamily("test_routes_seconds", "test.", []string{"route", "status"}, nil)
	a := fam.With("/v1/experiments", "200")
	b := fam.With("/v1/experiments", "404")
	if a == b {
		t.Fatal("distinct label values returned the same child")
	}
	if fam.With("/v1/experiments", "200") != a {
		t.Fatal("same label values did not return the same child")
	}
	a.Observe(1)
	if b.Count() != 0 {
		t.Fatal("observation leaked across children")
	}
}
