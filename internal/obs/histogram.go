package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// chosen to resolve both sub-millisecond handler latencies and
// multi-minute simulation runs in one family. The implicit +Inf bucket
// is always appended.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 300,
}

// Histogram is a fixed-bucket, lock-free histogram. Observe is safe from
// any number of goroutines and never allocates: one linear scan over the
// (small) bound slice, one atomic increment, one CAS loop folding the
// value into the float64 sum. Rendering reads the buckets without
// stopping writers; cumulative counts are rebuilt at render time, so the
// exposition's +Inf bucket always equals the sample count by
// construction (the Prometheus invariant promlint checks).
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. 0 allocations; BenchmarkObsOverhead and
// TestHistogramObserveAllocs pin that property.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the per-bucket counts (non-cumulative) and the sum.
func (h *Histogram) snapshot() (counts []uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum()
}

// labelKey indexes a family's children without allocating on lookup:
// families carry at most three labels, so a fixed-size array key keeps
// the map access allocation-free even on the hot path.
type labelKey [maxLabels]string

// maxLabels is the most labels one family may carry.
const maxLabels = 3

// HistogramFamily is a set of Histograms sharing a name and bucket
// layout, distinguished by label values (e.g. route and status for HTTP
// latency). Resolve a child once with With and keep the handle: Observe
// on the child is the lock-free hot path; With itself takes a read lock
// and allocates only when it creates a new child.
type HistogramFamily struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[labelKey]*Histogram
	order    []labelKey // insertion order, for stable rendering
}

// With returns the child histogram for the given label values (creating
// it on first use). The number of values must match the family's label
// names; With panics otherwise — a miswired instrument is a programming
// error, not a runtime condition.
func (f *HistogramFamily) With(values ...string) *Histogram {
	if len(values) != len(f.labels) {
		panic("obs: label value count mismatch for " + f.name)
	}
	var key labelKey
	copy(key[:], values)

	f.mu.RLock()
	h := f.children[key]
	f.mu.RUnlock()
	if h != nil {
		return h
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if h := f.children[key]; h != nil {
		return h
	}
	h = newHistogram(f.bounds)
	f.children[key] = h
	f.order = append(f.order, key)
	return h
}
