// Package obs is jettyd's zero-dependency telemetry layer: the
// instruments every serving layer records into and the exposition
// /metrics renders from.
//
// It deliberately reimplements the small slice of a metrics client the
// daemon needs rather than importing one:
//
//   - Histogram / HistogramFamily: fixed-bucket, lock-free latency
//     histograms. Observe is one bound scan plus two atomics and never
//     allocates — cheap enough for the engine's job-retire hook and the
//     per-request HTTP path (BenchmarkObsOverhead pins the cost, and
//     TestHistogramObserveAllocs pins 0 allocs/op).
//   - Counter / Gauge / GaugeFamily: atomic scalars. Counters are
//     monotone; Set exists to mirror externally maintained monotone
//     totals (engine.Stats) into one consistent scrape.
//   - Registry: orders families and renders the Prometheus text
//     exposition format (0.0.4). Cumulative histogram buckets are
//     rebuilt at render time, so +Inf always equals _count even while
//     writers race the scrape.
//   - Lint / CheckMonotone: an in-repo promlint that CI and the service
//     tests run against live scrape output — HELP/TYPE present for
//     every series, counters suffixed _total and never decreasing
//     across scrapes, histogram buckets cumulative.
//   - NewRequestID / WithRequestID: request-ID generation and context
//     propagation; the service middleware echoes the ID as
//     X-Request-Id and the engine carries it as Task.Origin so job
//     telemetry correlates back to the submitting request.
//   - NewLogger: log/slog construction for jettyd's -log-format and
//     -log-level flags (JSON lines by default).
//   - ReadBuildInfo: the /buildinfo payload and jettyd_build_info
//     metric, from runtime/debug.ReadBuildInfo.
//
// The package depends only on the standard library, keeping the
// simulator importable without pulling a metrics stack.
package obs
