package obs

import "runtime/debug"

// BuildInfo is the subset of runtime/debug.BuildInfo worth exposing on
// /buildinfo and as the jettyd_build_info metric.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path"`
	Version   string `json:"version"`            // module version ("(devel)" for local builds)
	Revision  string `json:"revision,omitempty"` // vcs.revision when stamped
	Time      string `json:"time,omitempty"`     // vcs.time when stamped
	Modified  bool   `json:"modified,omitempty"` // vcs.modified when stamped
}

// ReadBuildInfo reads the running binary's build information. Binaries
// built without module support (rare) report only zero values.
func ReadBuildInfo() BuildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return BuildInfo{Version: "unknown"}
	}
	out := BuildInfo{
		GoVersion: bi.GoVersion,
		Path:      bi.Path,
		Version:   bi.Main.Version,
	}
	if out.Version == "" {
		out.Version = "unknown"
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.Time = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}
