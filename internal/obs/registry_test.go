package obs

import (
	"strings"
	"testing"
)

func TestRegistryWriteTextLintsClean(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_events_total", "Events seen.")
	g := r.NewGauge("test_depth", "Queue depth.")
	gf := r.NewGaugeFamily("test_build_info", "Build info.", []string{"version"})
	hf := r.NewHistogramFamily("test_latency_seconds", "Latency.", []string{"route"}, nil)

	c.Add(3)
	g.Set(7)
	gf.With("v1.2").Set(1)
	hf.With("/a").Observe(0.001)
	hf.With("/a").Observe(10)
	hf.With("/b with space").Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_events_total Events seen.",
		"# TYPE test_events_total counter",
		"test_events_total 3",
		"test_depth 7",
		`test_build_info{version="v1.2"} 1`,
		`test_latency_seconds_bucket{route="/a",le="+Inf"} 2`,
		`test_latency_seconds_count{route="/a"} 2`,
		`test_latency_seconds_count{route="/b with space"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if problems := Lint(out); len(problems) != 0 {
		t.Errorf("own exposition does not lint clean: %v", problems)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	gf := r.NewGaugeFamily("test_info", "Info.", []string{"v"})
	gf.With(`quo"te\slash` + "\nnewline").Set(1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `v="quo\"te\\slash\nnewline"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	// The strict parser must round-trip the escaped value.
	exp, err := ParseText(out)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range exp.Samples {
		if s.Labels["v"] == "quo\"te\\slash\nnewline" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label did not round-trip: %+v", exp.Samples)
	}
}

func TestRegistryRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"duplicate name", func(r *Registry) {
			r.NewGauge("test_dup", "a.")
			r.NewGauge("test_dup", "b.")
		}},
		{"counter without _total", func(r *Registry) {
			r.NewCounter("test_events", "missing suffix.")
		}},
		{"invalid name", func(r *Registry) {
			r.NewGauge("test-dashes", "bad.")
		}},
		{"too many labels", func(r *Registry) {
			r.NewGaugeFamily("test_labels", "bad.", []string{"a", "b", "c", "d"})
		}},
		{"reserved label", func(r *Registry) {
			r.NewGaugeFamily("test_reserved", "bad.", []string{"__name__"})
		}},
		{"descending buckets", func(r *Registry) {
			r.NewHistogramFamily("test_h_seconds", "bad.", nil, []float64{2, 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestRegistryHistogramCumulativeUnderLoad(t *testing.T) {
	// Scrape while writers race: every rendered exposition must still
	// satisfy the cumulative-bucket and +Inf == _count invariants, because
	// cumulative counts are rebuilt at render time.
	r := NewRegistry()
	hf := r.NewHistogramFamily("test_race_seconds", "Race.", nil, []float64{0.01, 0.1, 1})
	h := hf.With()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.05)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if problems := Lint(b.String()); len(problems) != 0 {
			close(stop)
			t.Fatalf("scrape %d under load failed lint: %v", i, problems)
		}
	}
	close(stop)
}

func TestRegistryCounterFamily(t *testing.T) {
	r := NewRegistry()
	cf := r.NewCounterFamily("test_rejections_total", "Rejections by tenant and reason.",
		[]string{"tenant", "reason"})
	cf.With("bob", "quota").Add(2)
	cf.With("alice", "quota").Add(1)
	cf.With("bob", "quota").Add(3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_rejections_total counter",
		`test_rejections_total{tenant="alice",reason="quota"} 1`,
		`test_rejections_total{tenant="bob",reason="quota"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Children render sorted by label values: alice before bob.
	if strings.Index(out, `tenant="alice"`) > strings.Index(out, `tenant="bob"`) {
		t.Errorf("counter children not sorted:\n%s", out)
	}
	if problems := Lint(out); len(problems) != 0 {
		t.Errorf("counter family does not lint clean: %v", problems)
	}
	// Same With twice returns the same child.
	if cf.With("bob", "quota") != cf.With("bob", "quota") {
		t.Error("With returned distinct children for equal labels")
	}
}

func TestRegistryCounterFamilyPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("counter family without _total suffix should panic")
		}
	}()
	r.NewCounterFamily("test_bad_name", "Bad.", []string{"a"})
}
