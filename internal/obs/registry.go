package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. Add bumps it; Set mirrors an
// external monotone counter (e.g. an engine.Stats field) into the
// exposition — callers must only ever set non-decreasing values.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter with an externally maintained total.
func (c *Counter) Set(total uint64) { c.v.Store(total) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct{ v atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.v.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// CounterFamily is a set of Counters sharing a name, distinguished by
// label values (e.g. per-tenant admission-rejection counts).
type CounterFamily struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[labelKey]*Counter
	order    []labelKey
}

// With returns the child counter for the given label values, creating it
// on first use. Panics on a label-count mismatch (programming error).
func (f *CounterFamily) With(values ...string) *Counter {
	if len(values) != len(f.labels) {
		panic("obs: label value count mismatch for " + f.name)
	}
	var key labelKey
	copy(key[:], values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c = &Counter{}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// GaugeFamily is a set of Gauges sharing a name, distinguished by label
// values (e.g. jettyd_build_info's version labels).
type GaugeFamily struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[labelKey]*Gauge
	order    []labelKey
}

// With returns the child gauge for the given label values, creating it
// on first use. Panics on a label-count mismatch (programming error).
func (f *GaugeFamily) With(values ...string) *Gauge {
	if len(values) != len(f.labels) {
		panic("obs: label value count mismatch for " + f.name)
	}
	var key labelKey
	copy(key[:], values)
	f.mu.RLock()
	g := f.children[key]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g := f.children[key]; g != nil {
		return g
	}
	g = &Gauge{}
	f.children[key] = g
	f.order = append(f.order, key)
	return g
}

// family is one registered metric family: exactly one of the instrument
// pointers is set, matching typ.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	counter  *Counter
	counters *CounterFamily
	gauge    *Gauge
	gauges   *GaugeFamily
	hist     *HistogramFamily
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Families render in registration
// order; every family always renders its HELP and TYPE lines, so a
// scrape can never observe a bare series (the promlint invariant).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register panics on duplicate or malformed names: instruments are wired
// at construction time, so a bad registration is a programming error.
func (r *Registry) register(f *family) {
	if !metricNameRE.MatchString(f.name) {
		panic("obs: invalid metric name " + f.name)
	}
	if f.typ == "counter" && !strings.HasSuffix(f.name, "_total") {
		panic("obs: counter " + f.name + " must end in _total")
	}
	if len(f.labels) > maxLabels {
		panic("obs: too many labels on " + f.name)
	}
	for _, l := range f.labels {
		if !metricNameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			panic("obs: invalid label name " + l + " on " + f.name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("obs: duplicate metric " + f.name)
	}
	r.families = append(r.families, f)
	r.byName[f.name] = f
}

// NewCounter registers an unlabeled counter. The name must end in
// _total (Prometheus counter convention; the in-repo linter enforces
// the same rule on scrape output).
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewCounterFamily registers a labeled counter family. The name must end
// in _total, like NewCounter's.
func (r *Registry) NewCounterFamily(name, help string, labels []string) *CounterFamily {
	f := &CounterFamily{name: name, labels: labels, children: make(map[labelKey]*Counter)}
	r.register(&family{name: name, help: help, typ: "counter", labels: labels, counters: f})
	return f
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewGaugeFamily registers a labeled gauge family.
func (r *Registry) NewGaugeFamily(name, help string, labels []string) *GaugeFamily {
	f := &GaugeFamily{name: name, labels: labels, children: make(map[labelKey]*Gauge)}
	r.register(&family{name: name, help: help, typ: "gauge", labels: labels, gauges: f})
	return f
}

// NewHistogramFamily registers a labeled histogram family with the given
// bucket upper bounds (nil means DefBuckets). Bounds must be strictly
// ascending.
func (r *Registry) NewHistogramFamily(name, help string, labels []string, bounds []float64) *HistogramFamily {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending for " + name)
		}
	}
	f := &HistogramFamily{
		name:     name,
		help:     help,
		labels:   labels,
		bounds:   bounds,
		children: make(map[labelKey]*Histogram),
	}
	r.register(&family{name: name, help: help, typ: "histogram", labels: labels, hist: f})
	return f
}

// WriteText renders every family in the Prometheus text exposition
// format. Values are read live from the instruments; callers that need a
// consistent multi-source snapshot (the jettyd /metrics handler does)
// set the mirrored instruments from one snapshot first, then render.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case f.counters != nil:
			f.counters.mu.RLock()
			keys := append([]labelKey(nil), f.counters.order...)
			f.counters.mu.RUnlock()
			sortLabelKeys(keys)
			for _, key := range keys {
				f.counters.mu.RLock()
				c := f.counters.children[key]
				f.counters.mu.RUnlock()
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(f.labels, key, "", 0), c.Value())
			}
		case f.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case f.gauges != nil:
			f.gauges.mu.RLock()
			for _, key := range f.gauges.order {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(f.labels, key, "", 0),
					formatFloat(f.gauges.children[key].Value()))
			}
			f.gauges.mu.RUnlock()
		case f.hist != nil:
			renderHistogramFamily(&b, f)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderHistogramFamily writes one histogram family: per child, the
// cumulative le-labeled buckets, then _sum and _count. Children render
// sorted by label values so successive scrapes are diffable.
func renderHistogramFamily(b *strings.Builder, f *family) {
	f.hist.mu.RLock()
	keys := append([]labelKey(nil), f.hist.order...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = f.hist.children[k]
	}
	f.hist.mu.RUnlock()
	sort.Sort(&byKey{keys, children})

	for i, key := range keys {
		counts, sum := children[i].snapshot()
		var cum uint64
		for bi, c := range counts {
			cum += c
			le := "+Inf"
			if bi < len(f.hist.bounds) {
				le = formatFloat(f.hist.bounds[bi])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, key, le, 1), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, key, "", 0), formatFloat(sum))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labels, key, "", 0), cum)
	}
}

// sortLabelKeys orders label-value tuples lexicographically so counter
// families render diffably across scrapes.
func sortLabelKeys(keys []labelKey) {
	sort.Slice(keys, func(i, j int) bool {
		for n := range keys[i] {
			if keys[i][n] != keys[j][n] {
				return keys[i][n] < keys[j][n]
			}
		}
		return false
	})
}

// byKey sorts histogram children and their keys together.
type byKey struct {
	keys     []labelKey
	children []*Histogram
}

func (s *byKey) Len() int { return len(s.keys) }
func (s *byKey) Less(i, j int) bool {
	for n := range s.keys[i] {
		if s.keys[i][n] != s.keys[j][n] {
			return s.keys[i][n] < s.keys[j][n]
		}
	}
	return false
}
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.children[i], s.children[j] = s.children[j], s.children[i]
}

// renderLabels formats a label set, optionally appending le (histogram
// buckets). extra is 1 when le is present, 0 otherwise; an empty label
// set with no le renders as nothing.
func renderLabels(names []string, key labelKey, le string, extra int) string {
	if len(names)+extra == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(key[i]))
		b.WriteByte('"')
	}
	if extra == 1 {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
