package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestNewRequestID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{8}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !re.MatchString(id) {
			t.Fatalf("malformed request ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestRequestIDContext(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("empty context carries ID %q", got)
	}
	ctx := WithRequestID(context.Background(), "abc-123")
	if got := RequestID(ctx); got != "abc-123" {
		t.Errorf("RequestID = %q, want abc-123", got)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("visible", "k", "v")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 line (debug suppressed at info), got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v: %q", err, lines[0])
	}
	if rec["msg"] != "visible" || rec["k"] != "v" {
		t.Errorf("unexpected record: %v", rec)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("shown")
	if !strings.Contains(buf.String(), "msg=shown") {
		t.Errorf("text logger at debug suppressed debug: %q", buf.String())
	}

	for _, bad := range [][2]string{{"xml", "info"}, {"json", "loud"}} {
		if _, err := NewLogger(&buf, bad[0], bad[1]); err == nil {
			t.Errorf("NewLogger(%q, %q) did not error", bad[0], bad[1])
		}
	}
}

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if bi.Version == "" {
		t.Error("Version empty (expect (devel) or a tag)")
	}
}
