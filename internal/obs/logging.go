package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format is "json" (one
// JSON object per line — the machine-ingestible default for a daemon)
// or "text" (slog's key=value form, friendlier on a terminal). level is
// "debug", "info", "warn" or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json|text)", format)
	}
}
