package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs: every HTTP request gets one, echoed as X-Request-Id,
// stamped on the access-log record, and propagated into the engine job
// the request submits (engine.Task.Origin) so a slow-job log line or a
// status JSON payload can be correlated back to the request that caused
// it. The ID is a per-process random prefix plus a sequence number:
// unique across restarts, cheap, and ordered within one process.

var (
	reqPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degraded but functional: sequence numbers alone still
			// correlate within one process.
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

// NewRequestID returns a fresh request ID, e.g. "9f1c02ab-0000002a".
func NewRequestID() string {
	return fmt.Sprintf("%s-%08x", reqPrefix, reqSeq.Add(1))
}

// reqIDKey is the context key RequestID / WithRequestID share.
type reqIDKey struct{}

// WithRequestID stamps a request ID onto a context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the context's request ID, or "" when unset.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
