package obs

import (
	"strings"
	"testing"
)

const cleanExposition = `# HELP test_events_total Events.
# TYPE test_events_total counter
test_events_total 4
# HELP test_lat_seconds Latency.
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.1"} 2
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 1.5
test_lat_seconds_count 3
`

func TestLintClean(t *testing.T) {
	if problems := Lint(cleanExposition); len(problems) != 0 {
		t.Errorf("clean exposition reported problems: %v", problems)
	}
}

func TestLintProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of one reported problem
	}{
		{
			"series without metadata",
			"orphan_series 1\n",
			"without # HELP",
		},
		{
			"counter not suffixed",
			"# HELP test_events Events.\n# TYPE test_events counter\ntest_events 1\n",
			"not suffixed _total",
		},
		{
			"duplicate series",
			"# HELP test_g G.\n# TYPE test_g gauge\ntest_g 1\ntest_g 2\n",
			"duplicate series",
		},
		{
			"buckets not cumulative",
			"# HELP test_h Latency.\n# TYPE test_h histogram\n" +
				"test_h_bucket{le=\"0.1\"} 5\ntest_h_bucket{le=\"+Inf\"} 3\ntest_h_sum 1\ntest_h_count 3\n",
			"not cumulative",
		},
		{
			"+Inf disagrees with count",
			"# HELP test_h Latency.\n# TYPE test_h histogram\n" +
				"test_h_bucket{le=\"+Inf\"} 3\ntest_h_sum 1\ntest_h_count 5\n",
			"!= count",
		},
		{
			"missing +Inf bucket",
			"# HELP test_h Latency.\n# TYPE test_h histogram\n" +
				"test_h_bucket{le=\"0.1\"} 3\ntest_h_sum 1\ntest_h_count 3\n",
			"missing +Inf",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint(tc.text)
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Errorf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"novalue\n",
		"bad{unterminated 1\n",
		"bad{k=\"v\"} notanumber\n",
	} {
		if _, err := ParseText(text); err == nil {
			t.Errorf("ParseText(%q) did not error", text)
		}
	}
}

func TestCheckMonotone(t *testing.T) {
	before := cleanExposition
	after := strings.NewReplacer(
		"test_events_total 4", "test_events_total 9",
		`test_lat_seconds_bucket{le="+Inf"} 3`, `test_lat_seconds_bucket{le="+Inf"} 7`,
		"test_lat_seconds_count 3", "test_lat_seconds_count 7",
	).Replace(before)
	if problems := CheckMonotone(before, after); len(problems) != 0 {
		t.Errorf("monotone growth reported problems: %v", problems)
	}

	regressed := strings.Replace(before, "test_events_total 4", "test_events_total 1", 1)
	problems := CheckMonotone(before, regressed)
	if len(problems) == 0 {
		t.Fatal("counter regression not reported")
	}
	if !strings.Contains(problems[0], "went backwards") {
		t.Errorf("unexpected problem text: %v", problems)
	}

	// Gauges may move freely.
	gBefore := "# HELP test_g G.\n# TYPE test_g gauge\ntest_g 5\n"
	gAfter := strings.Replace(gBefore, "test_g 5", "test_g 2", 1)
	if problems := CheckMonotone(gBefore, gAfter); len(problems) != 0 {
		t.Errorf("gauge decrease reported as problem: %v", problems)
	}

	// A series appearing only after (new histogram child) is fine.
	withNew := after + "# HELP test_new_total New.\n# TYPE test_new_total counter\ntest_new_total 1\n"
	if problems := CheckMonotone(before, withNew); len(problems) != 0 {
		t.Errorf("new series reported as problem: %v", problems)
	}
}
