package obs

import (
	"io"
	"strings"
	"testing"
)

// BenchmarkObsOverhead pins the cost of the instruments on jettyd's hot
// paths. PERFORMANCE.md budgets <5% for observability; the recorded
// sub-benchmarks here are the per-event costs that budget is spent on:
// Observe is the engine retire hook and the per-request middleware
// record, With/Observe is the middleware's labeled lookup, and
// Render is the (cold-path) scrape. Observe and the resolved-child
// paths must report 0 allocs/op — TestHistogramObserveAllocs enforces
// the same property as a test so a regression fails CI, not just a
// benchmark diff.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("Observe", func(b *testing.B) {
		r := NewRegistry()
		h := r.NewHistogramFamily("bench_latency_seconds", "bench.", nil, nil).With()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.0042)
		}
	})
	b.Run("WithObserve", func(b *testing.B) {
		r := NewRegistry()
		fam := r.NewHistogramFamily("bench_routed_seconds", "bench.", []string{"route", "status"}, nil)
		fam.With("GET /v1/experiments/{id}", "200") // create the child off-clock
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fam.With("GET /v1/experiments/{id}", "200").Observe(0.0042)
		}
	})
	b.Run("CounterAdd", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		var g Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("ObserveParallel", func(b *testing.B) {
		r := NewRegistry()
		h := r.NewHistogramFamily("bench_par_seconds", "bench.", nil, nil).With()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.0042)
			}
		})
	})
	b.Run("Render", func(b *testing.B) {
		r := NewRegistry()
		fam := r.NewHistogramFamily("bench_render_seconds", "bench.", []string{"route"}, nil)
		for _, route := range []string{"/a", "/b", "/c", "/d"} {
			for i := 0; i < 100; i++ {
				fam.With(route).Observe(float64(i) / 100)
			}
		}
		r.NewCounter("bench_events_total", "bench.").Add(42)
		r.NewGauge("bench_depth", "bench.").Set(7)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.WriteText(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NewRequestID", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if id := NewRequestID(); id == "" {
				b.Fatal("empty ID")
			}
		}
	})
	b.Run("Lint", func(b *testing.B) {
		r := NewRegistry()
		fam := r.NewHistogramFamily("bench_lint_seconds", "bench.", []string{"route"}, nil)
		for _, route := range []string{"/a", "/b"} {
			fam.With(route).Observe(0.1)
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			b.Fatal(err)
		}
		text := sb.String()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if problems := Lint(text); len(problems) != 0 {
				b.Fatal(problems)
			}
		}
	})
}
