package jetty

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over RANDOM filter geometries: whatever the
// configuration, no sequence of legal events may ever produce a false
// "absent" verdict. These generalize the fixed-geometry safety tests.

// randExcludeConfig derives a valid ExcludeConfig from raw fuzz input.
func randExcludeConfig(a, b, c uint8) ExcludeConfig {
	sets := 1 << (a % 7)   // 1..64
	ways := 1 + int(b%4)   // 1..4
	vector := 1 << (c % 4) // 1,2,4,8
	return ExcludeConfig{Sets: sets, Ways: ways, Vector: vector}
}

func TestExcludeSafetyAnyGeometry(t *testing.T) {
	f := func(a, b, c uint8, seed int64) bool {
		cfg := randExcludeConfig(a, b, c)
		if cfg.Vector > 1 && cfg.Vector < upb {
			cfg.Vector = upb
		}
		e := NewExclude(cfg, upb)
		cached := map[uint64]bool{}
		blockPresent := func(blk uint64) bool {
			return cached[unitOf(blk, 0)] || cached[unitOf(blk, 1)]
		}
		r := rand.New(rand.NewSource(seed))
		for step := 0; step < 4000; step++ {
			blk := uint64(r.Intn(256))
			u := unitOf(blk, r.Intn(upb))
			switch r.Intn(4) {
			case 0:
				cached[u] = true
				e.Fill(u, blk)
			case 1:
				delete(cached, unitOf(blk, 0))
				delete(cached, unitOf(blk, 1))
			default:
				if e.Probe(u, blk) && cached[u] {
					return false // safety violation
				}
				if !cached[u] {
					e.SnoopMiss(u, blk, !blockPresent(blk))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncludeSafetyAnyGeometry(t *testing.T) {
	f := func(a, b, c uint8, seed int64) bool {
		cfg := IncludeConfig{
			IndexBits: 2 + int(a%9), // 2..10
			Arrays:    1 + int(b%5), // 1..5
			SkipBits:  1 + int(c%9), // 1..9
		}
		ij := NewInclude(cfg)
		live := map[uint64]int{}
		r := rand.New(rand.NewSource(seed))
		for step := 0; step < 4000; step++ {
			blk := uint64(r.Intn(512))
			switch r.Intn(4) {
			case 0:
				ij.BlockAllocated(blk)
				live[blk]++
			case 1:
				if live[blk] > 0 {
					ij.BlockEvicted(blk)
					live[blk]--
				}
			default:
				if ij.Probe(blk*2, blk) && live[blk] > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHybridSafetyAnyGeometry(t *testing.T) {
	f := func(a, b, c, d uint8, seed int64) bool {
		ejCfg := randExcludeConfig(a, b, c)
		if ejCfg.Vector > 1 && ejCfg.Vector < upb {
			ejCfg.Vector = upb
		}
		ijCfg := IncludeConfig{
			IndexBits: 3 + int(d%7),
			Arrays:    1 + int(a%4),
			SkipBits:  1 + int(b%7),
		}
		h := NewHybrid(ijCfg, ejCfg, upb)
		blocks := map[uint64]map[uint64]bool{} // block -> unit set
		r := rand.New(rand.NewSource(seed))
		for step := 0; step < 4000; step++ {
			blk := uint64(r.Intn(256))
			u := unitOf(blk, r.Intn(upb))
			switch r.Intn(5) {
			case 0:
				set := blocks[blk]
				if set == nil {
					set = map[uint64]bool{}
					blocks[blk] = set
					h.BlockAllocated(blk)
				}
				if !set[u] {
					set[u] = true
					h.Fill(u, blk)
				}
			case 1:
				if blocks[blk] != nil {
					delete(blocks, blk)
					h.BlockEvicted(blk)
				}
			default:
				present := blocks[blk] != nil && blocks[blk][u]
				if h.Probe(u, blk) && present {
					return false
				}
				if !present {
					h.SnoopMiss(u, blk, blocks[blk] == nil)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExcludeNeverExceedsCapacity: the number of live entries can never
// exceed Sets x Ways regardless of the reference stream (a structural
// sanity property exercised via the counters: filtered implies resident).
func TestExcludeBoundedResidency(t *testing.T) {
	cfg := ExcludeConfig{Sets: 4, Ways: 2, Vector: 1}
	e := NewExclude(cfg, upb)
	// Record far more blocks than capacity.
	for blk := uint64(0); blk < 1000; blk++ {
		e.SnoopMiss(unitOf(blk, 0), blk, true)
	}
	// At most Sets*Ways distinct blocks may still be filterable.
	resident := 0
	for blk := uint64(0); blk < 1000; blk++ {
		if e.Peek(unitOf(blk, 0), blk) {
			resident++
		}
	}
	if resident > cfg.Entries() {
		t.Errorf("%d blocks filterable with only %d entries", resident, cfg.Entries())
	}
	if resident == 0 {
		t.Error("no residual entries at all")
	}
}
