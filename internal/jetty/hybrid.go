package jetty

import (
	"fmt"

	"jetty/internal/energy"
)

// Hybrid is the hybrid-JETTY (§3.3): an include-JETTY and an exclude-JETTY
// probed in parallel. A snoop is filtered if either part can guarantee
// absence. Because the EJ serves as backup for the IJ, EJ entries are
// allocated only for snoops the IJ failed to filter — which is every
// snoop that reaches SnoopMiss, since a hybrid-filtered snoop never
// probes the L2 at all.
type Hybrid struct {
	ij *Include
	ej *Exclude

	count energy.FilterCounts
}

// NewHybrid builds an HJ from its two constituent configurations, for a
// machine whose L2 blocks hold unitsPerBlock coherence units.
func NewHybrid(ijCfg IncludeConfig, ejCfg ExcludeConfig, unitsPerBlock int) *Hybrid {
	return &Hybrid{ij: NewInclude(ijCfg), ej: NewExclude(ejCfg, unitsPerBlock)}
}

// Name returns the paper-style name HJ(IJ-..., EJ-...).
func (h *Hybrid) Name() string {
	return fmt.Sprintf("HJ(%s,%s)", h.ij.Name(), h.ej.Name())
}

// Include returns the constituent include-JETTY.
func (h *Hybrid) Include() *Include { return h.ij }

// Exclude returns the constituent exclude-JETTY.
func (h *Hybrid) Exclude() *Exclude { return h.ej }

// Probe implements Filter: both parts are consulted in parallel (the
// energy model charges both); either may filter.
func (h *Hybrid) Probe(unit, block uint64) bool {
	h.count.Probes++
	if h.ij.probe(block) || h.ej.probe(unit, block) {
		h.count.Filtered++
		return true
	}
	return false
}

// Peek implements Filter: a side-effect-free Probe of both parts.
func (h *Hybrid) Peek(unit, block uint64) bool {
	return h.ij.Peek(unit, block) || h.ej.Peek(unit, block)
}

// SnoopMiss implements Filter: only the EJ learns from snoop misses, and
// by construction only for snoops the IJ failed to filter.
func (h *Hybrid) SnoopMiss(unit, block uint64, blockAbsent bool) {
	h.ej.SnoopMiss(unit, block, blockAbsent)
}

// Fill implements Filter.
func (h *Hybrid) Fill(unit, block uint64) { h.ej.Fill(unit, block) }

// BlockAllocated implements Filter.
func (h *Hybrid) BlockAllocated(block uint64) { h.ij.BlockAllocated(block) }

// BlockEvicted implements Filter.
func (h *Hybrid) BlockEvicted(block uint64) { h.ij.BlockEvicted(block) }

// Counts implements Filter: the hybrid's own probe/filter counts combined
// with the constituents' write activity.
func (h *Hybrid) Counts() energy.FilterCounts {
	c := h.count
	c.EJWrites = h.ej.Counts().EJWrites
	c.CntUpdates = h.ij.Counts().CntUpdates
	c.PBitWrites = h.ij.Counts().PBitWrites
	return c
}

// Reset implements Filter.
func (h *Hybrid) Reset() {
	h.ij.Reset()
	h.ej.Reset()
	h.count = energy.FilterCounts{}
}
