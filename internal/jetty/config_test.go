package jetty

import (
	"testing"

	"jetty/internal/energy"
)

func TestParseRoundTrip(t *testing.T) {
	names := []string{
		"EJ-32x4", "EJ-8x2", "VEJ-32x4-8", "VEJ-16x4-4",
		"IJ-10x4x7", "IJ-6x5x6", "HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-8x4x7,EJ-16x2)",
	}
	for _, n := range names {
		c, err := Parse(n)
		if err != nil {
			t.Errorf("Parse(%q): %v", n, err)
			continue
		}
		if got := c.Name(); got != n {
			t.Errorf("round trip: %q -> %q", n, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "XJ-32x4", "EJ-32", "EJ-32x4x2", "VEJ-32x4", "IJ-10x4",
		"HJ(EJ-32x4,IJ-10x4x7)", "HJ(IJ-10x4x7)", "EJ-ax4", "IJ-10x4xz",
		"EJ-0x4", "VEJ-32x4-3", "HJ(IJ-10x4x7,EJ-32x4", "HJ(IJ-10x4x7,VEJ-32x4)",
	}
	for _, n := range bad {
		if _, err := Parse(n); err == nil {
			t.Errorf("Parse(%q): expected error", n)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage should panic")
		}
	}()
	MustParse("nope")
}

func TestPaperConfigListsParse(t *testing.T) {
	for _, list := range [][]string{Fig4aConfigs, Fig4bConfigs, Fig5aConfigs, Fig5bConfigs, Fig6Configs, Table4Configs} {
		cfgs, err := ParseAll(list)
		if err != nil {
			t.Fatalf("paper config list failed to parse: %v", err)
		}
		for i, c := range cfgs {
			if err := c.Validate(); err != nil {
				t.Errorf("%s: %v", list[i], err)
			}
			f := c.New(2)
			if f.Name() != list[i] {
				t.Errorf("instantiated name %q != %q", f.Name(), list[i])
			}
		}
	}
}

func TestParseAllPropagatesError(t *testing.T) {
	if _, err := ParseAll([]string{"EJ-32x4", "bogus"}); err == nil {
		t.Error("expected error")
	}
}

func TestConfigNewKinds(t *testing.T) {
	if _, ok := MustParse("EJ-32x4").New(2).(*Exclude); !ok {
		t.Error("EJ config should build *Exclude")
	}
	if _, ok := MustParse("VEJ-32x4-8").New(2).(*Exclude); !ok {
		t.Error("VEJ config should build *Exclude")
	}
	if _, ok := MustParse("IJ-9x4x7").New(2).(*Include); !ok {
		t.Error("IJ config should build *Include")
	}
	if _, ok := MustParse("HJ(IJ-9x4x7,EJ-32x4)").New(2).(*Hybrid); !ok {
		t.Error("HJ config should build *Hybrid")
	}
}

func TestConfigValidateEmpty(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config should not validate")
	}
	if got := (Config{}).Name(); got != "none" {
		t.Errorf("empty config name = %q", got)
	}
}

func TestConfigCostsPositiveAndOrdered(t *testing.T) {
	tech := energy.Tech180()
	const unitBits, cntBits = 31, 14
	ej := MustParse("EJ-32x4").Costs(tech, unitBits, cntBits)
	ij := MustParse("IJ-10x4x7").Costs(tech, unitBits, cntBits)
	hj := MustParse("HJ(IJ-10x4x7,EJ-32x4)").Costs(tech, unitBits, cntBits)
	if ej.Probe <= 0 || ij.Probe <= 0 {
		t.Fatal("non-positive probe costs")
	}
	if hj.Probe != ej.Probe+ij.Probe {
		t.Error("hybrid probe cost must equal the sum of its parts")
	}
	if ej.EJWrite <= 0 || ij.CntUpdate <= 0 {
		t.Error("write costs must be positive")
	}
	// Bigger exclude arrays cost more to probe.
	small := MustParse("EJ-8x2").Costs(tech, unitBits, cntBits)
	if small.Probe >= ej.Probe {
		t.Error("EJ-8x2 probe should cost less than EJ-32x4")
	}
	// Bigger include arrays cost more to probe.
	smallIJ := MustParse("IJ-6x5x6").Costs(tech, unitBits, cntBits)
	bigIJ := MustParse("IJ-10x4x7").Costs(tech, unitBits, cntBits)
	if smallIJ.Probe/float64(5) >= bigIJ.Probe/float64(4) {
		t.Error("per-array probe cost should grow with sub-array size")
	}
}

func TestExcludeEnergyOrgTagBits(t *testing.T) {
	// 31-bit unit address, 32 sets (5 bits), vector 8 (3 bits) -> 23 tag bits.
	org := (ExcludeConfig{Sets: 32, Ways: 4, Vector: 8}).EnergyOrg(31)
	if org.TagBits != 23 {
		t.Errorf("tag bits = %d, want 23", org.TagBits)
	}
	if org.VectorBits != 8 || org.Sets != 32 || org.Ways != 4 {
		t.Errorf("org mismatch: %+v", org)
	}
	// Degenerate: never below 1 bit.
	tiny := (ExcludeConfig{Sets: 32, Ways: 4, Vector: 8}).EnergyOrg(4)
	if tiny.TagBits != 1 {
		t.Errorf("clamped tag bits = %d, want 1", tiny.TagBits)
	}
}
