package jetty

import (
	"fmt"
	"strconv"
	"strings"

	"jetty/internal/energy"
)

// Config names one JETTY configuration of any variant. Exactly one of the
// following holds: only Exclude set (EJ/VEJ), only Include set (IJ), or
// both set (HJ).
type Config struct {
	Exclude *ExcludeConfig
	Include *IncludeConfig
}

// Name returns the paper-style configuration name.
func (c Config) Name() string {
	switch {
	case c.Include != nil && c.Exclude != nil:
		return fmt.Sprintf("HJ(%s,%s)", c.Include.Name(), c.Exclude.Name())
	case c.Include != nil:
		return c.Include.Name()
	case c.Exclude != nil:
		return c.Exclude.Name()
	default:
		return "none"
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Include == nil && c.Exclude == nil {
		return fmt.Errorf("jetty: empty configuration")
	}
	if c.Exclude != nil {
		if err := c.Exclude.Validate(); err != nil {
			return err
		}
	}
	if c.Include != nil {
		return c.Include.Validate()
	}
	return nil
}

// New instantiates the configured filter for a machine whose L2 blocks
// hold unitsPerBlock coherence units (1 for non-subblocked caches).
func (c Config) New(unitsPerBlock int) Filter {
	switch {
	case c.Include != nil && c.Exclude != nil:
		return NewHybrid(*c.Include, *c.Exclude, unitsPerBlock)
	case c.Include != nil:
		return NewInclude(*c.Include)
	case c.Exclude != nil:
		return NewExclude(*c.Exclude, unitsPerBlock)
	default:
		panic("jetty: empty configuration")
	}
}

// Costs derives the per-operation energy catalog of this configuration.
// unitAddrBits sizes the exclude tags; cntBits the include counters.
func (c Config) Costs(t energy.Tech, unitAddrBits, cntBits int) energy.FilterCosts {
	switch {
	case c.Include != nil && c.Exclude != nil:
		return energy.HybridCosts(
			t.IncludeCosts(c.Include.EnergyOrg(cntBits)),
			t.ExcludeCosts(c.Exclude.EnergyOrg(unitAddrBits)),
		)
	case c.Include != nil:
		return t.IncludeCosts(c.Include.EnergyOrg(cntBits))
	case c.Exclude != nil:
		return t.ExcludeCosts(c.Exclude.EnergyOrg(unitAddrBits))
	default:
		return energy.FilterCosts{}
	}
}

// Parse parses a paper-style configuration name:
//
//	EJ-32x4          32-set 4-way exclude-JETTY
//	VEJ-32x4-8       as above with 8-bit present vectors
//	IJ-10x4x7        include-JETTY, four 1K-entry sub-arrays, skip 7
//	HJ(IJ-10x4x7,EJ-32x4)   hybrid of the two
func Parse(s string) (Config, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "HJ(") && strings.HasSuffix(s, ")"):
		inner := s[len("HJ(") : len(s)-1]
		parts := strings.SplitN(inner, ",", 2)
		if len(parts) != 2 {
			return Config{}, fmt.Errorf("jetty: malformed hybrid %q", s)
		}
		ij, err := Parse(parts[0])
		if err != nil {
			return Config{}, err
		}
		ej, err := Parse(parts[1])
		if err != nil {
			return Config{}, err
		}
		if ij.Include == nil || ij.Exclude != nil || ej.Exclude == nil || ej.Include != nil {
			return Config{}, fmt.Errorf("jetty: hybrid %q must be HJ(IJ-...,EJ-...)", s)
		}
		return Config{Include: ij.Include, Exclude: ej.Exclude}, nil

	case strings.HasPrefix(s, "VEJ-"):
		nums, err := splitInts(s[len("VEJ-"):], 3)
		if err != nil {
			return Config{}, fmt.Errorf("jetty: malformed VEJ config %q: %v", s, err)
		}
		cfg := Config{Exclude: &ExcludeConfig{Sets: nums[0], Ways: nums[1], Vector: nums[2]}}
		return cfg, cfg.Validate()

	case strings.HasPrefix(s, "EJ-"):
		nums, err := splitInts(s[len("EJ-"):], 2)
		if err != nil {
			return Config{}, fmt.Errorf("jetty: malformed EJ config %q: %v", s, err)
		}
		cfg := Config{Exclude: &ExcludeConfig{Sets: nums[0], Ways: nums[1], Vector: 1}}
		return cfg, cfg.Validate()

	case strings.HasPrefix(s, "IJ-"):
		nums, err := splitInts(s[len("IJ-"):], 3)
		if err != nil {
			return Config{}, fmt.Errorf("jetty: malformed IJ config %q: %v", s, err)
		}
		cfg := Config{Include: &IncludeConfig{IndexBits: nums[0], Arrays: nums[1], SkipBits: nums[2]}}
		return cfg, cfg.Validate()
	}
	return Config{}, fmt.Errorf("jetty: unrecognized configuration %q", s)
}

// MustParse is Parse for static configuration literals; it panics on error.
func MustParse(s string) Config {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// splitInts splits "a x b [x|-] c" forms like "32x4" or "32x4-8" into n ints.
func splitInts(s string, n int) ([]int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == '-' })
	if len(fields) != n {
		return nil, fmt.Errorf("want %d fields, got %d", n, len(fields))
	}
	out := make([]int, n)
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// The paper's evaluated configuration sets, one per figure.
var (
	// Fig4aConfigs are the six exclude-JETTYs of Figure 4(a).
	Fig4aConfigs = []string{"EJ-32x4", "EJ-32x2", "EJ-16x4", "EJ-16x2", "EJ-8x4", "EJ-8x2"}
	// Fig4bConfigs are the vector-exclude-JETTYs of Figure 4(b), with their
	// plain-EJ baselines for comparison.
	Fig4bConfigs = []string{"VEJ-32x4-8", "VEJ-32x4-4", "EJ-32x4", "VEJ-16x4-8", "VEJ-16x4-4", "EJ-16x4"}
	// Fig5aConfigs are the five include-JETTYs of Figure 5(a).
	Fig5aConfigs = []string{"IJ-10x4x7", "IJ-9x4x7", "IJ-8x4x7", "IJ-7x5x6", "IJ-6x5x6"}
	// Fig5bConfigs are the six hybrids of Figure 5(b): (Ia..Ic, Ea|Eb) with
	// Ia=IJ-10x4x7, Ib=IJ-9x4x7, Ic=IJ-8x4x7, Ea=EJ-32x4, Eb=EJ-16x2.
	Fig5bConfigs = []string{
		"HJ(IJ-10x4x7,EJ-32x4)", "HJ(IJ-9x4x7,EJ-32x4)", "HJ(IJ-8x4x7,EJ-32x4)",
		"HJ(IJ-10x4x7,EJ-16x2)", "HJ(IJ-9x4x7,EJ-16x2)", "HJ(IJ-8x4x7,EJ-16x2)",
	}
	// Fig6Configs are the hybrids whose energy Figure 6 reports; parts
	// (b)-(d) focus on the EJ-32x4 hybrids (left three).
	Fig6Configs = Fig5bConfigs
	// Table4Configs are the include-JETTYs whose storage Table 4 lists.
	Table4Configs = Fig5aConfigs
)

// ParseAll parses a list of configuration names.
func ParseAll(names []string) ([]Config, error) {
	out := make([]Config, len(names))
	for i, n := range names {
		c, err := Parse(n)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
