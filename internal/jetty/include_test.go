package jetty

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIncludeConfigValidate(t *testing.T) {
	good := []IncludeConfig{{10, 4, 7}, {9, 4, 7}, {8, 4, 7}, {7, 5, 6}, {6, 5, 6}, {1, 1, 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", c, err)
		}
	}
	bad := []IncludeConfig{{0, 4, 7}, {25, 4, 7}, {10, 0, 7}, {10, 17, 7}, {10, 4, 0}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: expected validation error", c)
		}
	}
}

func TestIncludeName(t *testing.T) {
	if got := (IncludeConfig{10, 4, 7}).Name(); got != "IJ-10x4x7" {
		t.Errorf("Name = %q", got)
	}
}

func TestCntBitsFor(t *testing.T) {
	// Paper: 14 bits pessimistically cover a 16K-block L2.
	if got := CntBitsFor(16384); got != 14 {
		t.Errorf("CntBitsFor(16384) = %d, want 14", got)
	}
	if got := CntBitsFor(1); got != 0 {
		t.Errorf("CntBitsFor(1) = %d, want 0", got)
	}
	if got := CntBitsFor(3); got != 2 {
		t.Errorf("CntBitsFor(3) = %d, want 2", got)
	}
}

func TestIncludeEmptyFiltersEverything(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 8, Arrays: 4, SkipBits: 7})
	for _, b := range []uint64{0, 1, 0xdeadbeef, 1 << 29} {
		if !ij.Probe(b*2, b) {
			t.Errorf("empty IJ failed to filter block %#x", b)
		}
	}
}

func TestIncludeAllocatedBlockNeverFiltered(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 8, Arrays: 4, SkipBits: 7})
	b := uint64(0xabcd)
	ij.BlockAllocated(b)
	if ij.Probe(b*2, b) {
		t.Fatal("IJ filtered an allocated block (safety violation)")
	}
	ij.BlockEvicted(b)
	if !ij.Probe(b*2, b) {
		t.Fatal("IJ failed to filter after the only matching block left")
	}
}

func TestIncludeCountingAliases(t *testing.T) {
	// Two blocks aliasing in every sub-array: evicting one must keep the
	// other protected (the counter, not a plain bit, is the point).
	cfg := IncludeConfig{IndexBits: 4, Arrays: 2, SkipBits: 3}
	ij := NewInclude(cfg)
	b1 := uint64(0)
	b2 := b1 + 1<<10 // beyond all indexed bits (2 arrays * 3 skip + 4 bits = 10)
	// Verify aliasing assumption.
	for i := 0; i < cfg.Arrays; i++ {
		if ij.index(i, b1) != ij.index(i, b2) {
			t.Fatalf("test blocks must alias in sub-array %d", i)
		}
	}
	ij.BlockAllocated(b1)
	ij.BlockAllocated(b2)
	ij.BlockEvicted(b1)
	if ij.Probe(b2*2, b2) {
		t.Fatal("IJ filtered b2 while it is still cached (counter bug)")
	}
	ij.BlockEvicted(b2)
	if !ij.Probe(b2*2, b2) {
		t.Fatal("IJ should filter after both aliasing blocks left")
	}
}

func TestIncludeFalsePositiveByConstruction(t *testing.T) {
	// A block sharing every index slice with allocated blocks is a false
	// positive: not filtered although absent. This is allowed (superset
	// semantics); verify the structure behaves that way.
	cfg := IncludeConfig{IndexBits: 4, Arrays: 2, SkipBits: 4}
	ij := NewInclude(cfg)
	// ghost[idx0]=a[idx0], ghost[idx1]=b[idx1].
	a := uint64(0x05)  // idx0 = 5
	b := uint64(0x070) // idx1 = 7
	ghost := uint64(0x075)
	ij.BlockAllocated(a)
	ij.BlockAllocated(b)
	if ij.probe(ghost) {
		t.Fatal("expected a false positive (unfiltered) for the ghost block")
	}
}

func TestIncludeEvictUnallocatedPanics(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 6, Arrays: 3, SkipBits: 5})
	defer func() {
		if recover() == nil {
			t.Error("eviction without allocation must panic")
		}
	}()
	ij.BlockEvicted(42)
}

func TestIncludeCounterUnderflowPanics(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 6, Arrays: 3, SkipBits: 5})
	ij.BlockAllocated(1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched eviction must panic")
		}
	}()
	// live > 0 but block 2's counters may be zero in some sub-array.
	ij.BlockEvicted(2)
}

func TestIncludeCounters(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 8, Arrays: 4, SkipBits: 7})
	ij.BlockAllocated(10)
	ij.BlockAllocated(10)
	ij.BlockEvicted(10)
	ij.Probe(20, 10)
	ij.Probe(2000, 1000)
	c := ij.Counts()
	if c.CntUpdates != 3 {
		t.Errorf("CntUpdates = %d, want 3", c.CntUpdates)
	}
	if c.Probes != 2 {
		t.Errorf("Probes = %d, want 2", c.Probes)
	}
	// First alloc set 4 p-bits; second alloc of same block set none; the
	// evict (2->1) cleared none.
	if c.PBitWrites != 4 {
		t.Errorf("PBitWrites = %d, want 4", c.PBitWrites)
	}
	if ij.Live() != 1 {
		t.Errorf("Live = %d, want 1", ij.Live())
	}
}

func TestIncludeReset(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 6, Arrays: 3, SkipBits: 5})
	ij.BlockAllocated(5)
	ij.Reset()
	if ij.Live() != 0 {
		t.Error("reset did not clear live count")
	}
	if !ij.Probe(10, 5) {
		t.Error("reset IJ should filter everything")
	}
}

func TestIncludeOverlappingIndexCoverage(t *testing.T) {
	// Paper: partially-overlapping indexes (S < E) discriminate better
	// than aligned ones for clustered block addresses. Allocate a small
	// cluster, then compare filter rates over a disjoint address window.
	mk := func(skip int) *Include {
		return NewInclude(IncludeConfig{IndexBits: 8, Arrays: 4, SkipBits: skip})
	}
	overlapped, aligned := mk(7), mk(8)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 64; i++ {
		b := uint64(r.Intn(1 << 12)) // clustered low addresses
		overlapped.BlockAllocated(b)
		aligned.BlockAllocated(b)
	}
	filteredO, filteredA := 0, 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		b := uint64(1<<20) + uint64(r.Intn(1<<14)) // distinct region
		if overlapped.probe(b) {
			filteredO++
		}
		if aligned.probe(b) {
			filteredA++
		}
	}
	// Both should filter the vast majority; this documents that the
	// overlap does not hurt on disjoint regions.
	if filteredO < probes*9/10 {
		t.Errorf("overlapped IJ filtered only %d/%d of disjoint snoops", filteredO, probes)
	}
	if filteredA < probes*9/10 {
		t.Errorf("aligned IJ filtered only %d/%d of disjoint snoops", filteredA, probes)
	}
}

// TestIncludeSafetyQuick model-checks the core invariant with random
// alloc/evict/probe sequences: a probe may never filter a live block.
func TestIncludeSafetyQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		ij := NewInclude(IncludeConfig{IndexBits: 5, Arrays: 3, SkipBits: 4})
		live := map[uint64]int{}
		r := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			b := uint64(op % 512)
			switch r.Intn(3) {
			case 0:
				ij.BlockAllocated(b)
				live[b]++
			case 1:
				if live[b] > 0 {
					ij.BlockEvicted(b)
					live[b]--
				}
			default:
				if ij.probe(b) && live[b] > 0 {
					return false // safety violation
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIncludeExactnessAfterDrain: after evicting everything that was
// allocated, the filter must return to the filter-everything state (the
// counters make the Bloom filter deletable).
func TestIncludeExactnessAfterDrain(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 7, Arrays: 4, SkipBits: 6})
	r := rand.New(rand.NewSource(9))
	var blocks []uint64
	for i := 0; i < 1000; i++ {
		b := uint64(r.Intn(1 << 20))
		blocks = append(blocks, b)
		ij.BlockAllocated(b)
	}
	for _, b := range blocks {
		ij.BlockEvicted(b)
	}
	if ij.Live() != 0 {
		t.Fatalf("Live = %d after drain", ij.Live())
	}
	for i := 0; i < 1000; i++ {
		b := uint64(r.Intn(1 << 24))
		if !ij.probe(b) {
			t.Fatalf("drained IJ failed to filter block %#x", b)
		}
	}
}

func TestStorageTable4(t *testing.T) {
	// Table 4 geometry: p-bit totals and counter organizations.
	rows := map[string]struct {
		pbits  int
		cntOrg string
	}{
		"IJ-10x4x7": {4 * 1024, "4 x 32 x 32"},
		"IJ-9x4x7":  {4 * 512, "4 x 32 x 16"},
		"IJ-8x4x7":  {4 * 256, "4 x 16 x 16"},
		"IJ-7x5x6":  {5 * 128, "5 x 16 x 8"},
		"IJ-6x5x6":  {5 * 64, "5 x 8 x 8"},
	}
	for _, name := range Table4Configs {
		cfg := MustParse(name).Include
		row := cfg.Storage(14)
		want := rows[name]
		if row.PBitBits != want.pbits {
			t.Errorf("%s: p-bits = %d, want %d", name, row.PBitBits, want.pbits)
		}
		if row.CntOrg != want.cntOrg {
			t.Errorf("%s: cnt org = %q, want %q", name, row.CntOrg, want.cntOrg)
		}
		if row.TotalBits != row.PBitBits*(1+14) {
			t.Errorf("%s: total bits = %d, want %d", name, row.TotalBits, row.PBitBits*15)
		}
	}
	// The largest IJ's counter storage matches the paper's 7168 bytes
	// (14-bit counters over 4x1024 entries).
	big := MustParse("IJ-10x4x7").Include.Storage(14)
	if cntBytes := big.CntBits * big.PBitBits / 8; cntBytes != 7168 {
		t.Errorf("IJ-10x4x7 counter bytes = %d, want 7168", cntBytes)
	}
}
