package jetty

import (
	"math/rand"
	"testing"
)

func newTestHybrid() *Hybrid {
	return NewHybrid(
		IncludeConfig{IndexBits: 8, Arrays: 4, SkipBits: 7},
		ExcludeConfig{Sets: 32, Ways: 4, Vector: 1},
		upb,
	)
}

func TestHybridName(t *testing.T) {
	if got := newTestHybrid().Name(); got != "HJ(IJ-8x4x7,EJ-32x4)" {
		t.Errorf("Name = %q", got)
	}
}

func TestHybridFiltersViaEitherPart(t *testing.T) {
	h := newTestHybrid()
	b := uint64(0x77)
	u := b * 2

	// Empty IJ filters everything.
	if !h.Probe(u, b) {
		t.Fatal("empty hybrid should filter via IJ")
	}
	// Allocate the block: IJ can no longer filter it.
	h.BlockAllocated(b)
	if h.Probe(u, b) {
		t.Fatal("hybrid filtered an allocated block")
	}
	// Evict and snoop-miss elsewhere: suppose block b is re-allocated so
	// IJ says maybe, but the EJ has learned unit u is absent.
	h.BlockEvicted(b)
	h.BlockAllocated(b + 4096) // aliases nothing relevant; IJ may or may not filter b now
	if !h.Probe(u, b) {
		// IJ couldn't filter: record the miss and the EJ takes over.
		h.SnoopMiss(u, b, true)
		if !h.Probe(u, b) {
			t.Fatal("EJ part did not learn the snoop miss")
		}
	}
}

func TestHybridEJBackstopsIJ(t *testing.T) {
	// Construct the §3.3 scenario: a block the IJ cannot filter (aliased
	// with live blocks in every sub-array) is caught by the EJ after one
	// snoop miss.
	cfg := IncludeConfig{IndexBits: 4, Arrays: 2, SkipBits: 4}
	h := NewHybrid(cfg, ExcludeConfig{Sets: 16, Ways: 2, Vector: 1}, upb)
	a, b := uint64(0x05), uint64(0x070)
	ghost := uint64(0x075) // aliases a in array 0 and b in array 1
	h.BlockAllocated(a)
	h.BlockAllocated(b)
	if h.Probe(ghost*2, ghost) {
		t.Fatal("IJ should false-positive on the ghost block")
	}
	h.SnoopMiss(ghost*2, ghost, true)
	if !h.Probe(ghost*2, ghost) {
		t.Fatal("EJ should filter the ghost after its snoop miss")
	}
}

func TestHybridFillClearsEJ(t *testing.T) {
	h := newTestHybrid()
	b := uint64(0x31)
	u := b * 2
	h.BlockAllocated(b + 1) // make IJ unable to filter nothing in particular
	// Teach the EJ, then fill the unit locally.
	h.SnoopMiss(u, b, true)
	h.Fill(u, b)
	h.BlockAllocated(b)
	if h.Probe(u, b) {
		t.Fatal("hybrid filtered a cached unit after fill (safety violation)")
	}
}

func TestHybridCountsCombineParts(t *testing.T) {
	h := newTestHybrid()
	h.BlockAllocated(1)
	h.Probe(2, 1) // IJ can't filter block 1... probes counted on hybrid
	h.Probe(40, 20)
	h.SnoopMiss(2, 1, true)
	c := h.Counts()
	if c.Probes != 2 {
		t.Errorf("Probes = %d, want 2", c.Probes)
	}
	if c.CntUpdates != 1 {
		t.Errorf("CntUpdates = %d, want 1", c.CntUpdates)
	}
	if c.EJWrites != 1 {
		t.Errorf("EJWrites = %d, want 1", c.EJWrites)
	}
	// Constituents must not double-count hybrid probes.
	if h.Include().Counts().Probes != 0 || h.Exclude().Counts().Probes != 0 {
		t.Error("constituent probe counters should stay untouched by hybrid probes")
	}
}

func TestHybridReset(t *testing.T) {
	h := newTestHybrid()
	h.BlockAllocated(1)
	h.SnoopMiss(10, 5, true)
	h.Probe(10, 5)
	h.Reset()
	if c := h.Counts(); c.Probes != 0 || c.EJWrites != 0 || c.CntUpdates != 0 {
		t.Errorf("reset left counters: %+v", c)
	}
	if h.Include().Live() != 0 {
		t.Error("reset did not drain IJ")
	}
}

// TestHybridSafety runs the full random workout of the combined filter
// against a reference model of L2 content at both granularities.
func TestHybridSafety(t *testing.T) {
	h := NewHybrid(
		IncludeConfig{IndexBits: 6, Arrays: 4, SkipBits: 5},
		ExcludeConfig{Sets: 16, Ways: 2, Vector: 4},
		upb,
	)
	type blockState struct{ units map[uint64]bool }
	blocks := map[uint64]*blockState{}
	unitsPerBlock := uint64(2)
	r := rand.New(rand.NewSource(1234))
	const span = 1 << 10

	cachedUnit := func(u uint64) bool {
		b := u / unitsPerBlock
		st := blocks[b]
		return st != nil && st.units[u]
	}

	for step := 0; step < 300000; step++ {
		b := uint64(r.Intn(span))
		u := b*unitsPerBlock + uint64(r.Intn(int(unitsPerBlock)))
		switch r.Intn(5) {
		case 0: // local fill of a unit (allocating the block if needed)
			st := blocks[b]
			if st == nil {
				st = &blockState{units: map[uint64]bool{}}
				blocks[b] = st
				h.BlockAllocated(b)
			}
			if !st.units[u] {
				st.units[u] = true
				h.Fill(u, b)
			}
		case 1: // evict the whole block
			if blocks[b] != nil {
				delete(blocks, b)
				h.BlockEvicted(b)
			}
		default: // snoop
			filtered := h.Probe(u, b)
			if filtered && cachedUnit(u) {
				t.Fatalf("SAFETY VIOLATION at step %d: filtered snoop to cached unit %#x", step, u)
			}
			if !filtered && !cachedUnit(u) {
				h.SnoopMiss(u, b, blocks[b] == nil)
			}
		}
	}
	// Sanity: the workout should have exercised both filtering and misses.
	c := h.Counts()
	if c.Filtered == 0 || c.Filtered == c.Probes {
		t.Errorf("degenerate workout: %d/%d filtered", c.Filtered, c.Probes)
	}
}

// TestHybridBeatsParts reproduces the paper's §4.3.4 observation on a
// mixed snoop stream: the hybrid's coverage is at least that of each part.
func TestHybridBeatsParts(t *testing.T) {
	ijCfg := IncludeConfig{IndexBits: 6, Arrays: 4, SkipBits: 5}
	ejCfg := ExcludeConfig{Sets: 16, Ways: 2, Vector: 1}
	h := NewHybrid(ijCfg, ejCfg, upb)
	ij := NewInclude(ijCfg)
	ej := NewExclude(ejCfg, upb)

	r := rand.New(rand.NewSource(77))
	live := map[uint64]bool{}
	coverProbes, coverH, coverIJ, coverEJ := 0, 0, 0, 0
	for step := 0; step < 200000; step++ {
		b := uint64(r.Intn(1 << 9))
		u := b * 2
		switch r.Intn(6) {
		case 0:
			if !live[b] {
				live[b] = true
				h.BlockAllocated(b)
				ij.BlockAllocated(b)
				ej.Fill(u, b)
			}
		case 1:
			if live[b] {
				delete(live, b)
				h.BlockEvicted(b)
				ij.BlockEvicted(b)
			}
		default:
			if live[b] {
				continue
			}
			coverProbes++
			if h.Probe(u, b) {
				coverH++
			} else {
				h.SnoopMiss(u, b, true)
			}
			if ij.Probe(u, b) {
				coverIJ++
			}
			if ej.Probe(u, b) {
				coverEJ++
			} else {
				ej.SnoopMiss(u, b, true)
			}
		}
	}
	if coverProbes == 0 {
		t.Fatal("no snoop misses exercised")
	}
	if coverH < coverIJ || coverH < coverEJ {
		t.Errorf("hybrid coverage %d below parts (IJ %d, EJ %d) over %d probes",
			coverH, coverIJ, coverEJ, coverProbes)
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	// Peek must not perturb counters or replacement state: a peeked entry
	// must still be the LRU victim it was before.
	e := NewExclude(ExcludeConfig{Sets: 1, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(2, 1, true)
	e.SnoopMiss(4, 2, true)
	// Entry for block 1 is LRU. Peeking it must NOT refresh it.
	if !e.Peek(2, 1) {
		t.Fatal("Peek failed to see the entry")
	}
	pre := e.Counts()
	e.SnoopMiss(6, 3, true) // should evict block 1 (still LRU)
	if e.Peek(2, 1) {
		t.Error("peeked entry was refreshed (side effect)")
	}
	if got := e.Counts().Probes; got != pre.Probes {
		t.Errorf("Peek counted probes: %d -> %d", pre.Probes, got)
	}

	// Probe, by contrast, refreshes.
	e2 := NewExclude(ExcludeConfig{Sets: 1, Ways: 2, Vector: 1}, upb)
	e2.SnoopMiss(2, 1, true)
	e2.SnoopMiss(4, 2, true)
	e2.Probe(2, 1)           // touch block 1 -> block 2 becomes LRU
	e2.SnoopMiss(6, 3, true) // evicts block 2
	if !e2.Peek(2, 1) {
		t.Error("probed entry should have been retained")
	}
	if e2.Peek(4, 2) {
		t.Error("LRU entry should have been evicted")
	}
}

func TestHybridPeekMatchesProbeVerdict(t *testing.T) {
	h := newTestHybrid()
	h.BlockAllocated(10)
	h.SnoopMiss(44, 22, true)
	cases := []struct{ u, b uint64 }{{20, 10}, {44, 22}, {999, 499}}
	for _, c := range cases {
		peek := h.Peek(c.u, c.b)
		probe := h.Probe(c.u, c.b)
		if peek != probe {
			t.Errorf("unit %d: Peek=%v Probe=%v", c.u, peek, probe)
		}
	}
}

func TestIncludePeekPure(t *testing.T) {
	ij := NewInclude(IncludeConfig{IndexBits: 6, Arrays: 3, SkipBits: 5})
	ij.BlockAllocated(7)
	pre := ij.Counts()
	for i := 0; i < 100; i++ {
		ij.Peek(14, 7)
		ij.Peek(2000, 1000)
	}
	if ij.Counts() != pre {
		t.Error("Peek mutated IJ counters")
	}
}
