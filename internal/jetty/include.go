package jetty

import (
	"fmt"

	"jetty/internal/energy"
)

// IncludeConfig describes an include-JETTY, named IJ-ExNxS in the paper:
// N sub-arrays of 2^E counting entries; sub-array i is indexed by E bits
// of the block address starting at bit i*S. SkipBits < IndexBits gives the
// partially-overlapping indexes the paper found more accurate (§3.2).
type IncludeConfig struct {
	IndexBits int // E: log2(entries per sub-array)
	Arrays    int // N: number of sub-arrays
	SkipBits  int // S: bit offset between consecutive sub-array indexes
}

// Name returns the paper-style name IJ-ExNxS.
func (c IncludeConfig) Name() string {
	return fmt.Sprintf("IJ-%dx%dx%d", c.IndexBits, c.Arrays, c.SkipBits)
}

// Entries returns the number of entries in each sub-array.
func (c IncludeConfig) Entries() int { return 1 << uint(c.IndexBits) }

// Validate reports configuration errors.
func (c IncludeConfig) Validate() error {
	switch {
	case c.IndexBits < 1 || c.IndexBits > 24:
		return fmt.Errorf("jetty: include index bits %d out of range 1..24", c.IndexBits)
	case c.Arrays < 1 || c.Arrays > 16:
		return fmt.Errorf("jetty: include arrays %d out of range 1..16", c.Arrays)
	case c.SkipBits < 1:
		return fmt.Errorf("jetty: include skip bits %d must be positive", c.SkipBits)
	}
	return nil
}

// EnergyOrg returns the storage organization for energy costing. cntBits
// is the counter width; the paper pessimistically sizes counters to cover
// every L2 block mapping to one entry (14 bits for a 16K-block L2).
func (c IncludeConfig) EnergyOrg(cntBits int) energy.IncludeOrg {
	return energy.IncludeOrg{Entries: c.Entries(), NumArrays: c.Arrays, CntBits: cntBits}
}

// CntBitsFor returns the pessimistic counter width for an L2 with the
// given number of blocks: every block could map to the same entry.
func CntBitsFor(l2Blocks int) int {
	bits := 0
	for (1 << uint(bits)) < l2Blocks {
		bits++
	}
	return bits
}

// incArray is one sub-array's precomputed geometry: the shift selecting
// its index slice of the block address, its base offset into the flat
// counter array, and its word offset into the p-bit array.
type incArray struct {
	shift  uint
	base   int
	pbBase int
}

// Include is the include-JETTY: a counting-Bloom-like encoding of a
// superset of the blocks currently cached in the local L2. Each sub-array
// entry counts how many live L2 blocks match its index slice; a snoop
// whose block address hits a zero count in *any* sub-array is guaranteed
// absent and filtered. The paper stores presence bits separately from the
// counters (Fig. 3(c)) so snoops read only the tiny p-bit arrays; here the
// p-bit is derived (count > 0) and the energy accounting distinguishes
// p-bit reads from counter updates via the event counters.
//
// The sub-arrays live back to back in one flat counter slice (array-
// major) with per-array shifts precomputed at construction. Like the
// paper's hardware, probes never read the counters: a materialized p-bit
// bitset (bit = count > 0, maintained on 0<->1 transitions) serves every
// snoop from a few cache-resident words, and the counters are touched
// only on block allocation and eviction.
type Include struct {
	cfg     IncludeConfig
	idxMask uint64
	arrays  []incArray
	cnt     []uint32 // arrays * entries live-block counts, array-major
	pb      []uint64 // p-bit words, array-major: bit idx&63 of word idx>>6
	live    uint64   // total allocated blocks, for invariant checks

	count energy.FilterCounts
}

// NewInclude builds an IJ. It panics on an invalid configuration.
func NewInclude(cfg IncludeConfig) *Include {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	pbWords := (cfg.Entries() + 63) / 64
	ij := &Include{
		cfg:     cfg,
		idxMask: mask(cfg.IndexBits),
		arrays:  make([]incArray, cfg.Arrays),
		cnt:     make([]uint32, cfg.Arrays*cfg.Entries()),
		pb:      make([]uint64, cfg.Arrays*pbWords),
	}
	for i := range ij.arrays {
		ij.arrays[i] = incArray{
			shift:  uint(i * cfg.SkipBits),
			base:   i * cfg.Entries(),
			pbBase: i * pbWords,
		}
	}
	return ij
}

// Name implements Filter.
func (ij *Include) Name() string { return ij.cfg.Name() }

// Config returns the filter's configuration.
func (ij *Include) Config() IncludeConfig { return ij.cfg }

// index returns sub-array i's entry index for a block address.
func (ij *Include) index(i int, block uint64) int {
	return int((block >> ij.arrays[i].shift) & ij.idxMask)
}

// Probe implements Filter: filtered iff any sub-array's count is zero.
func (ij *Include) Probe(unit, block uint64) bool {
	ij.count.Probes++
	if ij.probe(block) {
		ij.count.Filtered++
		return true
	}
	return false
}

// Peek implements Filter: a side-effect-free Probe (IJ probes are already
// pure; this just skips the counters).
func (ij *Include) Peek(unit, block uint64) bool { return ij.probe(block) }

// probe is the uncounted lookup, shared with the hybrid: a p-bit read
// per sub-array, exactly what the paper's snoop path touches.
func (ij *Include) probe(block uint64) bool {
	for _, a := range ij.arrays {
		idx := int((block >> a.shift) & ij.idxMask)
		if ij.pb[a.pbBase+idx>>6]>>(uint(idx)&63)&1 == 0 {
			return true
		}
	}
	return false
}

// SnoopMiss implements Filter; include structures learn nothing from
// snoop misses (they track what *is* cached).
func (ij *Include) SnoopMiss(unit, block uint64, blockAbsent bool) {}

// Fill implements Filter; unit fills within an already-allocated block do
// not change tag-level presence.
func (ij *Include) Fill(unit, block uint64) {}

// BlockAllocated implements Filter: the L2 installed a block tag; every
// sub-array's matching counter is incremented (one counter per sub-array,
// §3.2), setting the derived p-bit on a 0->1 transition.
func (ij *Include) BlockAllocated(block uint64) {
	ij.count.CntUpdates++
	ij.live++
	for _, a := range ij.arrays {
		e := int((block >> a.shift) & ij.idxMask)
		idx := a.base + e
		if ij.cnt[idx] == 0 {
			ij.count.PBitWrites++
			ij.pb[a.pbBase+e>>6] |= 1 << (uint(e) & 63)
		}
		ij.cnt[idx]++
	}
}

// BlockEvicted implements Filter: the L2 removed a block tag; counters are
// decremented, clearing the derived p-bit on a 1->0 transition. A counter
// underflow means the caller violated the alloc/evict pairing contract and
// panics — silently continuing would let the filter turn unsafe.
func (ij *Include) BlockEvicted(block uint64) {
	ij.count.CntUpdates++
	if ij.live == 0 {
		panic("jetty: include filter: eviction without allocation")
	}
	ij.live--
	for i, a := range ij.arrays {
		e := int((block >> a.shift) & ij.idxMask)
		idx := a.base + e
		if ij.cnt[idx] == 0 {
			panic(fmt.Sprintf("jetty: include filter: counter underflow in sub-array %d (block %#x never allocated)", i, block))
		}
		ij.cnt[idx]--
		if ij.cnt[idx] == 0 {
			ij.count.PBitWrites++
			ij.pb[a.pbBase+e>>6] &^= 1 << (uint(e) & 63)
		}
	}
}

// Live returns the number of currently allocated blocks the filter knows of.
func (ij *Include) Live() uint64 { return ij.live }

// Counts implements Filter.
func (ij *Include) Counts() energy.FilterCounts { return ij.count }

// Reset implements Filter.
func (ij *Include) Reset() {
	for i := range ij.cnt {
		ij.cnt[i] = 0
	}
	for i := range ij.pb {
		ij.pb[i] = 0
	}
	ij.live = 0
	ij.count = energy.FilterCounts{}
}
