package jetty

import (
	"fmt"

	"jetty/internal/energy"
)

// ExcludeConfig describes an exclude-JETTY: Sets x Ways entries, each
// covering Vector coherence units (Vector == 1 is the plain EJ of §3.1;
// Vector > 1 is the VEJ of Fig. 3(a)).
type ExcludeConfig struct {
	Sets   int // number of sets (power of two)
	Ways   int // associativity
	Vector int // present-vector bits per entry (power of two, >= 1)
}

// Name returns the paper-style name: EJ-SxA or VEJ-SxA-V.
func (c ExcludeConfig) Name() string {
	if c.Vector > 1 {
		return fmt.Sprintf("VEJ-%dx%d-%d", c.Sets, c.Ways, c.Vector)
	}
	return fmt.Sprintf("EJ-%dx%d", c.Sets, c.Ways)
}

// Entries returns the total entry count.
func (c ExcludeConfig) Entries() int { return c.Sets * c.Ways }

// Validate reports configuration errors.
func (c ExcludeConfig) Validate() error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("jetty: exclude sets %d not a positive power of two", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("jetty: exclude ways %d must be positive", c.Ways)
	case c.Vector <= 0 || c.Vector&(c.Vector-1) != 0 || c.Vector > 64:
		return fmt.Errorf("jetty: exclude vector %d must be a power of two in 1..64", c.Vector)
	}
	return nil
}

// EnergyOrg returns the storage organization used for energy costing,
// given the coherence-unit address width of the machine.
func (c ExcludeConfig) EnergyOrg(unitAddrBits int) energy.ExcludeOrg {
	tag := unitAddrBits - log2(c.Sets) - log2(c.Vector)
	if tag < 1 {
		tag = 1
	}
	return energy.ExcludeOrg{Sets: c.Sets, Ways: c.Ways, TagBits: tag, VectorBits: c.Vector}
}

// Exclude is the exclude-JETTY (EJ / VEJ), recording a subset of what is
// known NOT to be cached.
//
// The plain EJ (Vector == 1) works at *block* granularity: "EJ keeps a
// record of blocks that ... missed in the local L2 and are still not
// cached" (§3.1). An entry is allocated only when a snoop found no
// matching L2 tag at all — a whole-block guarantee — so a later snoop to
// *any* subblock of that block is safely filtered. This is why the paper
// observes that "accesses to the different subblocks within the same L2
// block will result in a miss" creates EJ locality.
//
// The VEJ (Vector > 1) refines this to coherence-unit granularity: each
// entry carries a present-vector over Vector consecutive units. A snoop
// miss sets the missed unit's bit; when the whole block was absent, the
// bits of every unit of that block (they share an entry chunk) are set —
// the spatial-locality capture of Fig. 3(a).
//
// Address split for a VEJ entry: the low log2(V) unit-address bits select
// the vector bit; the next log2(S) bits the set; the rest is the tag. A
// plain EJ indexes sets with *block*-address bits. The two therefore use
// different PA bits for the set index — the effect §4.3.2 observes.
type Exclude struct {
	cfg           ExcludeConfig
	unitsPerBlock int

	// Precomputed address-split geometry (shifts and masks derived once
	// from the configuration, so every probe is pure bit arithmetic).
	vecBits  uint
	vecMask  uint64
	setBits  uint
	setMask  uint64
	tagShift uint

	// Entries are array-of-struct: one probe's find walks a set's tag and
	// present-vector pairs on a single cache line (4 ways == 64 bytes)
	// instead of gathering from parallel arrays.
	ents []ejEntry // sets*ways

	// Recency is tracked with per-entry timestamps: a touch is one store
	// (stamp = clock++) instead of a rank-shuffling loop, and the victim
	// scan takes the minimum stamp. Stamps within a set are always
	// distinct, so the selected victim is identical to rank-based LRU.
	stamp []uint64
	clock uint64

	// One-shot probe memo: Probe records the (key, find result) it just
	// computed so the SnoopMiss that immediately follows an unfiltered
	// snoop skips the second split+find. Every mutating entry point
	// consumes or invalidates it, so it never survives past the next
	// call of any kind.
	memoKey uint64
	memoW   int32
	memoOK  bool

	count energy.FilterCounts
}

// ejEntry is one exclude-JETTY entry. pv == 0 marks an invalid entry.
type ejEntry struct {
	tag uint64
	pv  uint64 // present-vector bitmask
}

// NewExclude builds an EJ/VEJ for a machine whose L2 blocks hold
// unitsPerBlock coherence units. It panics on an invalid configuration
// (construction is programmer-controlled; see Validate).
func NewExclude(cfg ExcludeConfig, unitsPerBlock int) *Exclude {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if unitsPerBlock < 1 || unitsPerBlock&(unitsPerBlock-1) != 0 {
		panic(fmt.Sprintf("jetty: units per block %d not a positive power of two", unitsPerBlock))
	}
	if cfg.Vector > 1 && cfg.Vector < unitsPerBlock {
		// A vector entry must cover whole blocks for the block-absent
		// fan-out to stay within one entry.
		panic(fmt.Sprintf("jetty: vector %d smaller than units per block %d", cfg.Vector, unitsPerBlock))
	}
	n := cfg.Entries()
	vecBits := uint(log2(cfg.Vector))
	setBits := uint(log2(cfg.Sets))
	e := &Exclude{
		cfg:           cfg,
		unitsPerBlock: unitsPerBlock,
		vecBits:       vecBits,
		vecMask:       mask(int(vecBits)),
		setBits:       setBits,
		setMask:       mask(int(setBits)),
		tagShift:      vecBits + setBits,
		ents:          make([]ejEntry, n),
		stamp:         make([]uint64, n),
	}
	e.Reset()
	return e
}

// Name implements Filter.
func (e *Exclude) Name() string { return e.cfg.Name() }

// Config returns the filter's configuration.
func (e *Exclude) Config() ExcludeConfig { return e.cfg }

// key returns the address the filter tracks an entry under: the block
// address for plain EJ, the unit address for VEJ.
func (e *Exclude) key(unit, block uint64) uint64 {
	if e.cfg.Vector > 1 {
		return unit
	}
	return block
}

// split decomposes a tracked address into (set, tag, vector bit mask).
func (e *Exclude) split(key uint64) (set int, tag uint64, bit uint64) {
	bit = uint64(1) << (key & e.vecMask)
	set = int((key >> e.vecBits) & e.setMask)
	tag = key >> e.tagShift
	return set, tag, bit
}

// find returns the way holding tag in set, or -1.
func (e *Exclude) find(set int, tag uint64) int {
	base := set * e.cfg.Ways
	for w, ent := range e.ents[base : base+e.cfg.Ways] {
		if ent.pv != 0 && ent.tag == tag {
			return w
		}
	}
	return -1
}

// touch promotes way w of set to most-recently-used.
func (e *Exclude) touch(set, w int) {
	e.stamp[set*e.cfg.Ways+w] = e.clock
	e.clock++
}

// victim returns the way to replace in set: an invalid way if one exists,
// else the least-recently-touched way (minimum stamp).
func (e *Exclude) victim(set int) int {
	base := set * e.cfg.Ways
	v, oldest := 0, e.stamp[base]
	for w := 0; w < e.cfg.Ways; w++ {
		if e.ents[base+w].pv == 0 {
			return w
		}
		if e.stamp[base+w] < oldest {
			v, oldest = w, e.stamp[base+w]
		}
	}
	return v
}

// Probe implements Filter: a snoop is filtered iff a matching entry has
// the tracked address's present bit set (guaranteed absent from L2).
func (e *Exclude) Probe(unit, block uint64) bool {
	e.count.Probes++
	if e.probe(unit, block) {
		e.count.Filtered++
		return true
	}
	return false
}

// probe is the uncounted lookup, shared with the hybrid. A hit refreshes
// the entry's recency: addresses that keep being snooped stay resident.
func (e *Exclude) probe(unit, block uint64) bool {
	key := e.key(unit, block)
	set, tag, bit := e.split(key)
	w := e.find(set, tag)
	e.memoKey, e.memoW, e.memoOK = key, int32(w), true
	if w >= 0 && e.ents[set*e.cfg.Ways+w].pv&bit != 0 {
		e.touch(set, w)
		return true
	}
	return false
}

// Peek implements Filter: a side-effect-free Probe.
func (e *Exclude) Peek(unit, block uint64) bool {
	set, tag, bit := e.split(e.key(unit, block))
	w := e.find(set, tag)
	return w >= 0 && e.ents[set*e.cfg.Ways+w].pv&bit != 0
}

// SnoopMiss implements Filter: record that a snoop missed in the local
// L2. blockAbsent reports whether the whole block's tag missed (rather
// than a tag hit with the snooped unit invalid). The plain EJ can only
// learn whole-block absences; the VEJ records the unit — and on a whole-
// block absence, every unit of that block.
func (e *Exclude) SnoopMiss(unit, block uint64, blockAbsent bool) {
	if e.cfg.Vector == 1 {
		if !blockAbsent {
			return // only a subblock missed: no block-level guarantee
		}
		e.recordKeyBits(block, 1)
		return
	}
	if blockAbsent {
		// All units of the block share this entry (Vector >= units/block):
		// set the whole block's bit group.
		first := block * uint64(e.unitsPerBlock)
		groupBits := uint64(0)
		for i := 0; i < e.unitsPerBlock; i++ {
			_, _, b := e.split(first + uint64(i))
			groupBits |= b
		}
		e.recordKeyBits(unit, groupBits)
		return
	}
	_, _, bit := e.split(unit)
	e.recordKeyBits(unit, bit)
}

// recordKeyBits sets present bits in the entry tracking key, allocating
// (with LRU replacement) if needed.
func (e *Exclude) recordKeyBits(key uint64, bits uint64) {
	set, tag, _ := e.split(key)
	base := set * e.cfg.Ways
	w := -1
	if e.memoOK && e.memoKey == key {
		w = int(e.memoW)
	} else {
		w = e.find(set, tag)
	}
	e.memoOK = false
	if w >= 0 {
		if e.ents[base+w].pv&bits != bits {
			e.ents[base+w].pv |= bits
			e.count.EJWrites++
		}
		e.touch(set, w)
		return
	}
	w = e.victim(set)
	e.ents[base+w] = ejEntry{tag: tag, pv: bits}
	e.touch(set, w)
	e.count.EJWrites++
}

// Fill implements Filter: the local L2 gained unit, so any matching
// present bit must be cleared to preserve safety. For the plain EJ the
// whole block entry clears (the block is no longer wholly absent); for
// the VEJ only the filled unit's bit clears.
func (e *Exclude) Fill(unit, block uint64) {
	e.memoOK = false
	set, tag, bit := e.split(e.key(unit, block))
	base := set * e.cfg.Ways
	if w := e.find(set, tag); w >= 0 && e.ents[base+w].pv&bit != 0 {
		e.ents[base+w].pv &^= bit
		e.count.EJWrites++
	}
}

// BlockAllocated implements Filter; exclude structures ignore tag events
// (Fill already clears entries).
func (e *Exclude) BlockAllocated(block uint64) {}

// BlockEvicted implements Filter; exclude structures ignore tag events.
// (An eviction makes units *absent*, which an EJ only learns from future
// snoop misses — recording it here would be an optimization the paper
// does not perform.)
func (e *Exclude) BlockEvicted(block uint64) {}

// Counts implements Filter.
func (e *Exclude) Counts() energy.FilterCounts { return e.count }

// Reset implements Filter.
func (e *Exclude) Reset() {
	e.memoOK = false
	ways := e.cfg.Ways
	for i := range e.ents {
		e.ents[i] = ejEntry{}
		// Distinct initial recency within each set: way 0 most recent.
		e.stamp[i] = uint64(ways - 1 - i%ways)
	}
	e.clock = uint64(ways)
	e.count = energy.FilterCounts{}
}

// log2 returns log2 for exact powers of two.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
