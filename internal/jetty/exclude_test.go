package jetty

import (
	"math/rand"
	"testing"
)

// Test machines use 2 units per block (the paper's subblocked geometry).
const upb = 2

func TestExcludeConfigValidate(t *testing.T) {
	good := []ExcludeConfig{
		{32, 4, 1}, {16, 2, 1}, {8, 4, 1}, {32, 4, 8}, {16, 4, 4}, {1, 1, 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", c, err)
		}
	}
	bad := []ExcludeConfig{
		{0, 4, 1}, {3, 4, 1}, {32, 0, 1}, {32, 4, 0}, {32, 4, 3}, {32, 4, 128},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: expected validation error", c)
		}
	}
}

func TestNewExcludeRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("vector smaller than units/block must panic")
		}
	}()
	NewExclude(ExcludeConfig{Sets: 16, Ways: 2, Vector: 2}, 4)
}

func TestExcludeNames(t *testing.T) {
	if got := (ExcludeConfig{32, 4, 1}).Name(); got != "EJ-32x4" {
		t.Errorf("Name = %q", got)
	}
	if got := (ExcludeConfig{16, 4, 8}).Name(); got != "VEJ-16x4-8" {
		t.Errorf("Name = %q", got)
	}
}

// unitOf returns unit i of block b under the test geometry.
func unitOf(b uint64, i int) uint64 { return b*upb + uint64(i) }

func TestExcludeBlockGranularityCycle(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 32, Ways: 4, Vector: 1}, upb)
	b := uint64(0x1234)

	if e.Probe(unitOf(b, 0), b) {
		t.Fatal("empty EJ filtered a snoop")
	}
	// A whole-block miss teaches the EJ; BOTH subblocks now filter — the
	// paper's "subblocking creates EJ locality" effect.
	e.SnoopMiss(unitOf(b, 0), b, true)
	if !e.Probe(unitOf(b, 0), b) {
		t.Fatal("EJ did not filter the missed subblock")
	}
	if !e.Probe(unitOf(b, 1), b) {
		t.Fatal("EJ did not filter the sibling subblock of a wholly-absent block")
	}
	// A local fill of either unit clears the whole-block guarantee.
	e.Fill(unitOf(b, 1), b)
	if e.Probe(unitOf(b, 0), b) || e.Probe(unitOf(b, 1), b) {
		t.Fatal("EJ filtered a block the L2 just (partly) gained")
	}
}

func TestExcludeIgnoresSubblockOnlyMisses(t *testing.T) {
	// Tag hit with the snooped unit invalid: the plain EJ may NOT record
	// anything (the sibling may be cached).
	e := NewExclude(ExcludeConfig{Sets: 32, Ways: 4, Vector: 1}, upb)
	b := uint64(0x40)
	e.SnoopMiss(unitOf(b, 0), b, false)
	if e.Probe(unitOf(b, 0), b) {
		t.Fatal("EJ recorded a subblock-only miss (unsafe at block granularity)")
	}
}

func TestExcludeDistinguishesBlocks(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 8, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(unitOf(100, 0), 100, true)
	if e.Probe(unitOf(101, 0), 101) {
		t.Error("EJ filtered a different block")
	}
	if e.Probe(unitOf(100+8, 0), 100+8) {
		t.Error("EJ filtered a tag-mismatched block in the same set")
	}
}

func TestExcludeLRUReplacement(t *testing.T) {
	// 1 set x 2 ways: third distinct block evicts the least recently used.
	e := NewExclude(ExcludeConfig{Sets: 1, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(unitOf(1, 0), 1, true)
	e.SnoopMiss(unitOf(2, 0), 2, true)
	e.Probe(unitOf(1, 0), 1) // touch 1 -> 2 becomes LRU
	e.SnoopMiss(unitOf(3, 0), 3, true)
	if !e.Probe(unitOf(1, 0), 1) {
		t.Error("recently-touched entry was evicted")
	}
	if e.Probe(unitOf(2, 0), 2) {
		t.Error("LRU entry should have been evicted")
	}
	if !e.Probe(unitOf(3, 0), 3) {
		t.Error("newly-allocated entry missing")
	}
}

func TestExcludeReallocationPrefersInvalidWay(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 1, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(unitOf(1, 0), 1, true)
	e.SnoopMiss(unitOf(2, 0), 2, true)
	e.Fill(unitOf(1, 0), 1) // entry 1 now empty (pv == 0)
	e.SnoopMiss(unitOf(3, 0), 3, true)
	if !e.Probe(unitOf(2, 0), 2) {
		t.Error("valid entry evicted while an invalid way existed")
	}
	if !e.Probe(unitOf(3, 0), 3) {
		t.Error("new entry not present")
	}
}

func TestVectorExcludeUnitGranularity(t *testing.T) {
	// A VEJ records subblock-only misses at unit granularity — the case
	// the plain EJ must ignore.
	v := NewExclude(ExcludeConfig{Sets: 16, Ways: 2, Vector: 4}, upb)
	b := uint64(0x800)
	v.SnoopMiss(unitOf(b, 0), b, false)
	if !v.Probe(unitOf(b, 0), b) {
		t.Fatal("VEJ did not filter the recorded unit")
	}
	if v.Probe(unitOf(b, 1), b) {
		t.Fatal("VEJ filtered the sibling unit after a unit-only miss")
	}
}

func TestVectorExcludeBlockFanOut(t *testing.T) {
	// A whole-block miss sets every unit bit of that block in one entry.
	v := NewExclude(ExcludeConfig{Sets: 16, Ways: 2, Vector: 8}, upb)
	b := uint64(0x900)
	v.SnoopMiss(unitOf(b, 0), b, true)
	if !v.Probe(unitOf(b, 0), b) || !v.Probe(unitOf(b, 1), b) {
		t.Fatal("block-absent miss should cover all units of the block")
	}
	// Fill of one unit clears only that unit's bit.
	v.Fill(unitOf(b, 0), b)
	if v.Probe(unitOf(b, 0), b) {
		t.Error("filled unit still filtered")
	}
	if !v.Probe(unitOf(b, 1), b) {
		t.Error("fill of one unit cleared its sibling's bit")
	}
}

func TestVectorExcludeSpatialCoverage(t *testing.T) {
	// An 8-bit vector entry covers 8 consecutive units (4 blocks) under
	// one tag: sequential whole-block misses coalesce into one entry.
	v := NewExclude(ExcludeConfig{Sets: 16, Ways: 2, Vector: 8}, upb)
	base := uint64(0x1000) // block number, 8-unit aligned chunk
	for i := uint64(0); i < 4; i++ {
		v.SnoopMiss(unitOf(base+i, 0), base+i, true)
	}
	for i := uint64(0); i < 4; i++ {
		if !v.Probe(unitOf(base+i, 0), base+i) || !v.Probe(unitOf(base+i, 1), base+i) {
			t.Fatalf("block %d of the chunk not fully covered", i)
		}
	}
	// A fifth block in a different chunk allocates separately without
	// evicting (different set or way).
	v.SnoopMiss(unitOf(base+4, 0), base+4, true)
	if !v.Probe(unitOf(base, 0), base) {
		t.Error("vector entry was evicted by the adjacent chunk")
	}
}

func TestExcludeSetIndexDiffersWithVector(t *testing.T) {
	// Paper §4.3.2: a VEJ and an EJ with equal sets/ways use different PA
	// bits for the set index (EJ indexes by block, VEJ by unit above the
	// vector field). Verify two blocks mapping to different EJ sets can
	// collide in the VEJ and vice versa.
	ej := NewExclude(ExcludeConfig{Sets: 16, Ways: 4, Vector: 1}, upb)
	vej := NewExclude(ExcludeConfig{Sets: 16, Ways: 4, Vector: 4}, upb)
	b1, b2 := uint64(17), uint64(18)
	s1e, _, _ := ej.split(b1)
	s2e, _, _ := ej.split(b2)
	// VEJ keys on units: unit = block*2.
	s1v, _, _ := vej.split(b1 * upb)
	s2v, _, _ := vej.split(b2 * upb)
	if s1e == s2e {
		t.Fatalf("blocks 17/18 should differ in EJ set, both got %d", s1e)
	}
	if s1v == s2v {
		// units 34 and 36: (34>>2)&15 = 8, (36>>2)&15 = 9 — they differ
		// here; the point is the mapping differs from the EJ's.
		if s1e != s1v {
			return
		}
		t.Fatalf("expected different set mappings between EJ and VEJ")
	}
}

func TestExcludeCounters(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 4, Ways: 2, Vector: 1}, upb)
	e.Probe(2, 1)
	e.SnoopMiss(2, 1, true)
	e.Probe(2, 1)
	e.Probe(4, 2)
	c := e.Counts()
	if c.Probes != 3 {
		t.Errorf("Probes = %d, want 3", c.Probes)
	}
	if c.Filtered != 1 {
		t.Errorf("Filtered = %d, want 1", c.Filtered)
	}
	if c.EJWrites != 1 {
		t.Errorf("EJWrites = %d, want 1", c.EJWrites)
	}
	e.Fill(2, 1)
	if e.Counts().EJWrites != 2 {
		t.Errorf("fill should count one write, got %d", e.Counts().EJWrites)
	}
	e.Fill(99, 49)
	if e.Counts().EJWrites != 2 {
		t.Error("fill of unknown block should not write")
	}
}

func TestExcludeRedundantSnoopMissNoWrite(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 4, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(14, 7, true)
	w := e.Counts().EJWrites
	e.SnoopMiss(14, 7, true) // already recorded: LRU touch only
	if e.Counts().EJWrites != w {
		t.Error("re-recording an existing block should not count a write")
	}
}

func TestExcludeReset(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 4, Ways: 2, Vector: 1}, upb)
	e.SnoopMiss(14, 7, true)
	e.Reset()
	if e.Probe(14, 7) {
		t.Error("reset filter still filters")
	}
	if c := e.Counts(); c.Probes != 1 || c.EJWrites != 0 {
		t.Errorf("reset did not clear counters: %+v", c)
	}
}

// TestExcludeSafety is the paper's requirement 3: never filter a snoop to
// a cached unit. We drive EJ/VEJ variants alongside a reference model of
// cached units with random fills, block evictions and snoops.
func TestExcludeSafety(t *testing.T) {
	for _, cfg := range []ExcludeConfig{{8, 2, 1}, {32, 4, 1}, {16, 4, 4}, {32, 4, 8}} {
		e := NewExclude(cfg, upb)
		cached := map[uint64]bool{} // unit -> present
		blockPresent := func(b uint64) bool {
			return cached[unitOf(b, 0)] || cached[unitOf(b, 1)]
		}
		r := rand.New(rand.NewSource(42))
		const blocks = 1 << 11
		for step := 0; step < 200000; step++ {
			b := uint64(r.Intn(blocks))
			u := unitOf(b, r.Intn(upb))
			switch r.Intn(4) {
			case 0: // local fill
				cached[u] = true
				e.Fill(u, b)
			case 1: // eviction: the whole block leaves silently
				delete(cached, unitOf(b, 0))
				delete(cached, unitOf(b, 1))
			default: // snoop
				filtered := e.Probe(u, b)
				if filtered && cached[u] {
					t.Fatalf("%s: SAFETY VIOLATION at step %d: filtered snoop to cached unit %#x", cfg.Name(), step, u)
				}
				if !filtered && !cached[u] {
					e.SnoopMiss(u, b, !blockPresent(b))
				}
			}
		}
		c := e.Counts()
		if c.Filtered == 0 {
			t.Errorf("%s: degenerate workout, nothing filtered", cfg.Name())
		}
	}
}

func TestExcludeCoverageOnLoopingSnoops(t *testing.T) {
	// A snoop stream with strong temporal locality over few absent blocks
	// (the producer/consumer pattern of §3.1) should be almost fully
	// covered after warmup.
	e := NewExclude(ExcludeConfig{Sets: 32, Ways: 4, Vector: 1}, upb)
	blocks := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	for pass := 0; pass < 50; pass++ {
		for _, b := range blocks {
			u := unitOf(b, pass%upb)
			if !e.Probe(u, b) {
				e.SnoopMiss(u, b, true)
			}
		}
	}
	c := e.Counts()
	cov := float64(c.Filtered) / float64(c.Probes)
	if cov < 0.9 {
		t.Errorf("coverage on a looping snoop stream = %.2f, want > 0.9", cov)
	}
}

func TestExcludeSiblingSubblockCoverage(t *testing.T) {
	// The dominant EJ win under subblocking: a streaming remote CPU
	// touches unit 0 then unit 1 of each (absent) block; the second snoop
	// is filtered by the entry the first allocated.
	e := NewExclude(ExcludeConfig{Sets: 32, Ways: 4, Vector: 1}, upb)
	filtered := 0
	const n = 1000
	for b := uint64(0); b < n; b++ {
		if e.Probe(unitOf(b, 0), b) {
			filtered++
		} else {
			e.SnoopMiss(unitOf(b, 0), b, true)
		}
		if e.Probe(unitOf(b, 1), b) {
			filtered++
		} else {
			e.SnoopMiss(unitOf(b, 1), b, false)
		}
	}
	if got := float64(filtered) / (2 * n); got < 0.45 || got > 0.55 {
		t.Errorf("sibling-subblock coverage = %.2f, want ~0.5", got)
	}
}

func TestExcludeThrashingWhenWorkingSetExceedsCapacity(t *testing.T) {
	e := NewExclude(ExcludeConfig{Sets: 8, Ways: 2, Vector: 1}, upb)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b := uint64(r.Intn(1 << 16))
		u := unitOf(b, 0)
		if !e.Probe(u, b) {
			e.SnoopMiss(u, b, true)
		}
	}
	c := e.Counts()
	cov := float64(c.Filtered) / float64(c.Probes)
	if cov > 0.05 {
		t.Errorf("coverage under thrashing = %.3f, want near zero", cov)
	}
}
