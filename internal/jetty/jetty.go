// Package jetty implements the paper's primary contribution: the JETTY
// family of snoop filters (HPCA 2001). A JETTY sits between the shared bus
// and the backside of each processor's L2; every incoming snoop probes it
// first. The filter answers either "guaranteed not cached locally" — the
// L2 tag probe is skipped and its energy saved — or "maybe cached", in
// which case the snoop proceeds normally. Three variants are provided:
//
//   - Exclude-JETTY (EJ) and its Vector variant (VEJ): a small associative
//     array recording a *subset of the blocks known absent* — recently
//     snooped units that missed in the local L2 and have not been fetched
//     since (§3.1).
//   - Include-JETTY (IJ): counting sub-arrays encoding a *superset of the
//     blocks present* — a counting-Bloom-like structure updated on L2
//     block allocation and eviction (§3.2).
//   - Hybrid-JETTY (HJ): an IJ and an EJ probed in parallel; either may
//     filter, and the EJ learns only the snoops the IJ failed to filter
//     (§3.3).
//
// All variants obey the paper's safety requirement: they may fail to
// filter, but they must never report "absent" while a copy is cached.
package jetty

import "jetty/internal/energy"

// Filter is the interface every JETTY variant implements. The simulator
// (or any cache controller embedding a JETTY) drives it with five events:
//
//   - Probe on every incoming snoop; a true result means the snoop is
//     filtered (the block is guaranteed absent from the local L2).
//   - SnoopMiss after an unfiltered snoop probed the L2 and missed.
//   - Fill when the local L2 gains a coherence unit.
//   - BlockAllocated / BlockEvicted when the local L2 installs or removes
//     a block tag (the include structures track tags, not units).
//
// unit is the coherence-unit (subblock) address; block the L2 block
// address. Implementations are not safe for concurrent use: each CPU owns
// one private instance, mirroring the hardware.
type Filter interface {
	// Name returns the paper-style configuration name, e.g. "EJ-32x4".
	Name() string
	// Probe consults the filter for a snoop. true = guaranteed absent.
	Probe(unit, block uint64) bool
	// Peek is Probe without side effects: no counters, no recency update.
	// Verification sweeps use it to audit the filter against actual cache
	// contents without perturbing the experiment.
	Peek(unit, block uint64) bool
	// SnoopMiss records that an unfiltered snoop missed in the local L2.
	// blockAbsent reports whether the whole block's tag missed (true) or
	// only the snooped unit was invalid under a matching tag (false) —
	// the distinction decides what an exclude structure may safely learn.
	SnoopMiss(unit, block uint64, blockAbsent bool)
	// Fill records that the local L2 gained the coherence unit.
	Fill(unit, block uint64)
	// BlockAllocated records that the local L2 installed a block tag.
	BlockAllocated(block uint64)
	// BlockEvicted records that the local L2 removed a block tag.
	BlockEvicted(block uint64)
	// Counts exposes the filter's accumulated event counters.
	Counts() energy.FilterCounts
	// Reset clears all state and counters.
	Reset()
}

// mask returns a bit mask of n low bits.
func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}
