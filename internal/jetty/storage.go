package jetty

import "fmt"

// StorageRow is one row of Table 4: the storage requirements of an
// include-JETTY configuration. On a snoop only the p-bit arrays are read;
// the counters exist to keep the p-bits coherent across evictions.
type StorageRow struct {
	Config    IncludeConfig
	PBitBits  int    // total presence bits: N x 2^E
	PBitOrg   string // "N x entries" as the paper prints it
	CntOrg    string // square-ish counter organization, "N x rows x cols"
	CntBits   int    // counter width per entry
	TotalBits int    // p-bits + counters
}

// TotalBytes returns the total storage in bytes, rounded up.
func (r StorageRow) TotalBytes() int { return (r.TotalBits + 7) / 8 }

// Storage computes the Table 4 row for an include configuration with the
// given counter width (the paper pessimistically uses 14 bits for a
// 16K-block L2; see CntBitsFor).
func (c IncludeConfig) Storage(cntBits int) StorageRow {
	entries := c.Entries()
	rows := 1
	for rows*rows < entries {
		rows *= 2
	}
	cols := entries / rows
	if cols < 1 {
		cols = 1
	}
	return StorageRow{
		Config:    c,
		PBitBits:  c.Arrays * entries,
		PBitOrg:   fmt.Sprintf("%d x %d", c.Arrays, entries),
		CntOrg:    fmt.Sprintf("%d x %d x %d", c.Arrays, rows, cols),
		CntBits:   cntBits,
		TotalBits: c.Arrays*entries + c.Arrays*entries*cntBits,
	}
}
