package sim

import (
	"strings"
	"testing"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// quickSpec returns a fast-running workload for unit tests.
func quickSpec(t *testing.T) workload.Spec {
	t.Helper()
	sp, err := workload.ByName("Lu")
	if err != nil {
		t.Fatal(err)
	}
	sp.Accesses = 120_000
	return sp
}

func TestRunAppBasics(t *testing.T) {
	cfg := smp.PaperConfig(4).WithFilters(
		jetty.MustParse("HJ(IJ-9x4x7,EJ-32x4)"),
		jetty.MustParse("EJ-16x2"),
	)
	res, err := RunApp(quickSpec(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 120_000 {
		t.Errorf("Refs = %d", res.Refs)
	}
	if res.L1HitRate <= 0 || res.L1HitRate > 1 {
		t.Errorf("L1HitRate = %v", res.L1HitRate)
	}
	if len(res.RemoteHitFrac) != 4 {
		t.Errorf("remote hit histogram size %d", len(res.RemoteHitFrac))
	}
	if len(res.FilterNames) != 2 || len(res.Coverage) != 2 {
		t.Fatalf("filter results incomplete: %v", res.FilterNames)
	}
	cov, err := res.CoverageOf("HJ(IJ-9x4x7,EJ-32x4)")
	if err != nil {
		t.Fatal(err)
	}
	if cov <= 0 || cov > 1 {
		t.Errorf("hybrid coverage = %v", cov)
	}
	if _, err := res.CoverageOf("nope"); err == nil {
		t.Error("unknown filter should error")
	}
	if _, err := res.FilterCountsOf("EJ-16x2"); err != nil {
		t.Error(err)
	}
	if _, err := res.FilterCountsOf("nope"); err == nil {
		t.Error("unknown filter should error")
	}
}

func TestRunAppValidatesInputs(t *testing.T) {
	sp := quickSpec(t)
	sp.Hot.Frac = 5 // invalid
	if _, err := RunApp(sp, smp.PaperConfig(4)); err == nil {
		t.Error("invalid spec accepted")
	}
	cfg := smp.PaperConfig(4)
	cfg.CPUs = 0
	if _, err := RunApp(quickSpec(t), cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunSuiteScales(t *testing.T) {
	results, err := RunSuite(smp.PaperConfig(4), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("suite size %d", len(results))
	}
	for _, r := range results {
		if r.Refs == 0 {
			t.Errorf("%s: no references processed", r.Spec.Name)
		}
	}
}

func TestAllFigureConfigsDeduplicated(t *testing.T) {
	names := AllFigureConfigs()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate config %q", n)
		}
		seen[n] = true
	}
	// Must contain every named config of each figure.
	for _, list := range [][]string{jetty.Fig4aConfigs, jetty.Fig4bConfigs, jetty.Fig5aConfigs, jetty.Fig5bConfigs} {
		for _, n := range list {
			if !seen[n] {
				t.Errorf("figure config %q missing from union", n)
			}
		}
	}
}

func TestL2EnergyOrgMatchesMachine(t *testing.T) {
	cfg := smp.PaperConfig(4)
	org := L2EnergyOrg(cfg)
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.SizeBytes != cfg.L2.SizeBytes || org.Assoc != cfg.L2.Assoc ||
		org.UnitsPerBlock != cfg.L2.Geom.UnitsPerBlock {
		t.Errorf("org mismatch: %+v", org)
	}
}

func TestEnergyReductionsShape(t *testing.T) {
	cfg := smp.PaperConfig(4).WithFilters(
		jetty.MustParse("HJ(IJ-10x4x7,EJ-32x4)"),
		jetty.MustParse("EJ-8x2"),
	)
	res, err := RunApp(quickSpec(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tech := energy.Tech180()
	serial := EnergyReductions(res, cfg, tech, energy.SerialTagData)
	parallel := EnergyReductions(res, cfg, tech, energy.ParallelTagData)
	if len(serial) != 2 || len(parallel) != 2 {
		t.Fatalf("want 2 reductions per mode")
	}
	// The big hybrid must save energy on snoops; over-all must not exceed
	// over-snoops (snoop energy is a subset of total energy).
	if serial[0].OverSnoops <= 0 {
		t.Errorf("hybrid failed to save snoop energy: %v", serial[0].OverSnoops)
	}
	for _, r := range append(serial, parallel...) {
		// Snoop energy is a subset of total energy, so whatever is saved
		// (or lost) dilutes when normalized by the larger total.
		if abs(r.OverAll) > abs(r.OverSnoops)+1e-12 {
			t.Errorf("%s: |over-all| %.3f exceeds |over-snoops| %.3f", r.Filter, r.OverAll, r.OverSnoops)
		}
		if r.With.Jetty <= 0 {
			t.Errorf("%s: filter energy not charged", r.Filter)
		}
		if r.Baseline.Jetty != 0 {
			t.Errorf("%s: baseline has filter energy", r.Filter)
		}
	}
	// Parallel mode must save at least as much snoop-side energy as
	// serial (filtered snoops also skip the concurrent data-way reads).
	if parallel[0].OverAll < serial[0].OverAll {
		t.Errorf("parallel over-all %.3f below serial %.3f", parallel[0].OverAll, serial[0].OverAll)
	}
}

func TestAverage(t *testing.T) {
	if got := Average(nil); got != 0 {
		t.Errorf("Average(nil) = %v", got)
	}
	if got := Average([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Average = %v", got)
	}
}

func TestReportsRenderExpectedContent(t *testing.T) {
	if out := Table1Report(); !strings.Contains(out, "Xeon") || !strings.Contains(out, "512K") {
		t.Errorf("Table1Report missing content:\n%s", out)
	}
	out := Fig2Report(5)
	if !strings.Contains(out, "32-byte lines") || !strings.Contains(out, "64-byte lines") {
		t.Errorf("Fig2Report missing panels:\n%s", out)
	}
	if !strings.Contains(out, "headline point") {
		t.Error("Fig2Report missing headline point")
	}

	cfg := smp.PaperConfig(4).WithFilters(jetty.MustParse("HJ(IJ-10x4x7,EJ-32x4)"), jetty.MustParse("EJ-32x4"))
	sp := quickSpec(t)
	res, err := RunApp(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := []AppResult{res}

	if out := Table2Report(results); !strings.Contains(out, "Lu") || !strings.Contains(out, "L1 hit") {
		t.Errorf("Table2Report:\n%s", out)
	}
	if out := Table3Report(results); !strings.Contains(out, "AVERAGE") {
		t.Errorf("Table3Report:\n%s", out)
	}
	if out := CoverageReport("t", results, []string{"EJ-32x4"}, "note"); !strings.Contains(out, "EJ-32x4") || !strings.Contains(out, "note") {
		t.Errorf("CoverageReport:\n%s", out)
	}
	// Unknown config renders n/a instead of failing.
	if out := CoverageReport("t", results, []string{"EJ-8x4"}, ""); !strings.Contains(out, "n/a") {
		t.Errorf("CoverageReport should mark missing configs:\n%s", out)
	}
	if out := Table4Report(cfg); !strings.Contains(out, "IJ-10x4x7") || !strings.Contains(out, "cnt width 14") {
		t.Errorf("Table4Report:\n%s", out)
	}
	if out := Fig6Report(results, cfg); !strings.Contains(out, "Figure 6(a)") || !strings.Contains(out, "Figure 6(d)") {
		t.Errorf("Fig6Report:\n%s", out)
	}
	if out := SummaryReport(results, "test"); !strings.Contains(out, "best HJ") {
		t.Errorf("SummaryReport:\n%s", out)
	}
}

// TestOnePassEqualsIsolatedPass verifies the core one-pass-many-filters
// methodology: a filter measured alongside 20 others reports exactly the
// same coverage as the same filter measured alone (filters are passive
// observers; the protocol is independent of them).
func TestOnePassEqualsIsolatedPass(t *testing.T) {
	sp := quickSpec(t)
	target := "HJ(IJ-9x4x7,EJ-32x4)"

	all, err := jetty.ParseAll(AllFigureConfigs())
	if err != nil {
		t.Fatal(err)
	}
	resMany, err := RunApp(sp, smp.PaperConfig(4).WithFilters(all...))
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := RunApp(sp, smp.PaperConfig(4).WithFilters(jetty.MustParse(target)))
	if err != nil {
		t.Fatal(err)
	}
	covMany, _ := resMany.CoverageOf(target)
	covOne, _ := resOne.CoverageOf(target)
	if covMany != covOne {
		t.Errorf("coverage differs: %v in bank vs %v alone", covMany, covOne)
	}
	fcMany, _ := resMany.FilterCountsOf(target)
	fcOne, _ := resOne.FilterCountsOf(target)
	if fcMany != fcOne {
		t.Errorf("filter counts differ:\nbank:  %+v\nalone: %+v", fcMany, fcOne)
	}
	if resMany.Counts != resOne.Counts {
		t.Error("system counts depend on the filter bank (they must not)")
	}
}

// TestSubblockingIncreasesSnoopMisses reproduces the §4.2 parenthetical:
// the subblocked machine shows a higher snoop-miss fraction than the
// non-subblocked one (sibling-subblock snoops miss under a present tag).
func TestSubblockingIncreasesSnoopMisses(t *testing.T) {
	sp, err := workload.ByName("Em3d") // streaming: strong subblock effect
	if err != nil {
		t.Fatal(err)
	}
	sp.Accesses = 200_000
	sb, err := RunApp(sp, smp.PaperConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	nsb, err := RunApp(sp, smp.PaperConfigNSB(4))
	if err != nil {
		t.Fatal(err)
	}
	if sb.SnoopMissOfAll <= nsb.SnoopMissOfAll {
		t.Errorf("subblocked snoop-miss share %.3f should exceed non-subblocked %.3f",
			sb.SnoopMissOfAll, nsb.SnoopMissOfAll)
	}
}

// TestEightWayIncreasesSnoopShare reproduces the §4.3 observation that an
// 8-way SMP sees a larger snoop-miss share of all L2 accesses than 4-way.
func TestEightWayIncreasesSnoopShare(t *testing.T) {
	sp := quickSpec(t)
	four, err := RunApp(sp, smp.PaperConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunApp(sp, smp.PaperConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if eight.SnoopMissOfAll <= four.SnoopMissOfAll {
		t.Errorf("8-way share %.3f should exceed 4-way %.3f",
			eight.SnoopMissOfAll, four.SnoopMissOfAll)
	}
}

// TestMigrationCreatesRareSnoopHits reproduces the paper's §2 narrative:
// a pure throughput engine has essentially zero remote snoop hits; adding
// OS process migration introduces some (the migrated process pulls its
// data out of the previous CPU's caches) while staying miss-dominated.
func TestMigrationCreatesRareSnoopHits(t *testing.T) {
	cfg := smp.PaperConfig(4)
	pure, err := RunApp(workload.Throughput().Scale(0.4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := RunApp(workload.MigratingThroughput(20_000).Scale(0.4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pure.Counts.SnoopHits != 0 {
		t.Errorf("pure throughput engine had %d snoop hits, want 0", pure.Counts.SnoopHits)
	}
	if mig.Counts.SnoopHits == 0 {
		t.Error("migration produced no snoop hits")
	}
	if mig.SnoopMissOfSnoops < 0.8 {
		t.Errorf("migration hits should stay infrequent: miss rate %.2f", mig.SnoopMissOfSnoops)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSensitivityMonotone verifies the paper's §1 motivation holds in the
// model: at fixed associativity, the best hybrid's energy savings grow
// with L2 size (bigger tags, same filter cost).
func TestSensitivityMonotone(t *testing.T) {
	points, err := L2Sensitivity("Ocean", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("want 8 sweep points, got %d", len(points))
	}
	prev := map[int]float64{} // assoc -> last overAll
	for _, p := range points {
		if last, ok := prev[p.Assoc]; ok && p.OverAll <= last {
			t.Errorf("savings not growing with L2 size at assoc %d: %.3f after %.3f",
				p.Assoc, p.OverAll, last)
		}
		prev[p.Assoc] = p.OverAll
	}
	if out := SensitivityReport(points, "Ocean"); !strings.Contains(out, "4096KB") {
		t.Error("report missing sweep points")
	}
}

func TestL2SensitivityUnknownApp(t *testing.T) {
	if _, err := L2Sensitivity("quake", 1); err == nil {
		t.Error("unknown app accepted")
	}
}
