package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"jetty/internal/addr"
	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/trace"
	"jetty/internal/workload"
)

// The paper's correctness condition (§3): a JETTY may fail to filter,
// but it must NEVER answer "not present" for a block that is actually
// cached — a wrong "absent" breaks coherence. The jetty package proves
// this per-filter against a model; this file proves it end to end:
// random operation streams driven through the full machine with every
// variant family attached at once, audited mid-run (not just at the
// end) by smp.CheckFilterSafety's sweep of the real cache contents.
// The CI race job runs it under -race like everything else.

// safetyBank returns every variant family, in geometries randomized per
// seed (all valid per jetty's Validate rules; the fixed paper
// geometries are covered by the figure-bank tests).
func safetyBank(r *rand.Rand) []jetty.Config {
	ej := &jetty.ExcludeConfig{Sets: 1 << (1 + r.Intn(6)), Ways: 1 + r.Intn(4), Vector: 1}
	vej := &jetty.ExcludeConfig{Sets: 1 << (1 + r.Intn(6)), Ways: 1 + r.Intn(4), Vector: 1 << (1 + r.Intn(3))}
	ij := &jetty.IncludeConfig{IndexBits: 4 + r.Intn(7), Arrays: 1 + r.Intn(5), SkipBits: 1 + r.Intn(8)}
	hij := &jetty.IncludeConfig{IndexBits: 4 + r.Intn(7), Arrays: 1 + r.Intn(5), SkipBits: 1 + r.Intn(8)}
	hej := &jetty.ExcludeConfig{Sets: 1 << (1 + r.Intn(6)), Ways: 1 + r.Intn(4), Vector: 1}
	return []jetty.Config{
		{Exclude: ej},
		{Exclude: vej},
		{Include: ij},
		{Include: hij, Exclude: hej},
	}
}

// randMachine perturbs the paper machine: width, L2 geometry,
// subblocking, write-buffer depth.
func randMachine(r *rand.Rand, filters []jetty.Config) (smp.Config, error) {
	cfg := smp.PaperConfig(1 + r.Intn(8)).WithFilters(filters...)
	cfg.L2.SizeBytes = (128 << 10) << r.Intn(4) // 128K..1M
	cfg.L2.Assoc = 1 << r.Intn(4)               // 1..8
	if r.Intn(2) == 0 {
		cfg.L2.Geom = addr.NonSubblocked
	}
	cfg.WBEntries = r.Intn(9)
	return cfg, cfg.Validate()
}

// auditChunks drives src through sys for total references, auditing the
// safety condition (and full MOESI coherence) every auditEvery
// references — violations must be caught when they happen, not only
// after the end-of-run drain.
func auditChunks(t *testing.T, sys *smp.System, src trace.Source, total, auditEvery uint64) {
	t.Helper()
	var done uint64
	for done < total {
		n := auditEvery
		if rem := total - done; rem < n {
			n = rem
		}
		ran := sys.Run(src, n)
		done += ran
		if err := sys.CheckFilterSafety(); err != nil {
			t.Fatalf("after %d refs: %v", done, err)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatalf("after %d refs: %v", done, err)
		}
		if ran == 0 {
			return
		}
	}
	sys.DrainWriteBuffers()
	if err := sys.CheckFilterSafety(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestFilterSafetyUnderRandomWorkloads: randomized workload signatures
// (random tier mix, sharing patterns, footprints) on randomized machines.
func TestFilterSafetyUnderRandomWorkloads(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(0x1E77 ^ int64(round)*2654435761))
			sp := randSpec(r, round)
			cfg, err := randMachine(r, safetyBank(r))
			if err != nil {
				t.Fatal(err)
			}
			sys := smp.New(cfg)
			auditChunks(t, sys, sp.Source(cfg.CPUs), 60_000, 6_000)
		})
	}
}

// randSpec builds a valid random workload spec: raw fractions drawn
// uniformly and normalized, geometries drawn from the ranges the library
// itself uses.
func randSpec(r *rand.Rand, i int) workload.Spec {
	frac := make([]float64, 7)
	sum := 0.0
	for j := range frac {
		frac[j] = r.Float64()
		sum += frac[j]
	}
	for j := range frac {
		frac[j] /= sum
	}
	sp := workload.Spec{
		Name: fmt.Sprintf("rand-%d", i), Abbrev: fmt.Sprintf("r%d", i),
		Accesses: 60_000, WriteFrac: r.Float64() * 0.6,
		Hot:    workload.Region{Frac: frac[0], Bytes: 4 << (10 + r.Intn(4))},
		Warm:   workload.Region{Frac: frac[1], Bytes: 64 << (10 + r.Intn(3)), Burst: r.Intn(8)},
		Stream: workload.Region{Frac: frac[2], Bytes: 1 << (20 + r.Intn(3)), Stride: 8 << r.Intn(3)},
		Pair: workload.PairSharing{Frac: frac[3], Bytes: 64 << 10,
			LagBytes: 1 << (10 + r.Intn(5)), Stride: 8 << r.Intn(3)},
		Mig:  workload.MigratorySharing{Frac: frac[4], Records: 1 + r.Intn(256), Hold: 1 + r.Intn(32)},
		Wide: workload.WideSharing{Frac: frac[5], Bytes: 4 << (10 + r.Intn(3)), WriteFrac: r.Float64() * 0.2},
		Zipf: workload.ZipfSharing{Frac: frac[6], Bytes: 64 << (10 + r.Intn(5)),
			S: 1.01 + r.Float64(), WriteFrac: r.Float64() * 0.5},
		Seed: int64(i)*7919 + 13,
	}
	if r.Intn(3) == 0 {
		sp.MigrationPeriod = uint64(1+r.Intn(20)) * 1000
	}
	return sp
}

// TestFilterSafetyUnderAdversarialStreams: raw random reference streams
// with no generator structure at all — uniformly random addresses in a
// window sized to force constant eviction and re-allocation, the churn
// that stresses the include counters and exclude learn/unlearn paths
// hardest.
func TestFilterSafetyUnderAdversarialStreams(t *testing.T) {
	cases := []struct {
		name   string
		window uint64 // address window
		writes float64
	}{
		{"l2-sized-churn", 2 << 20, 0.3},    // 2× the L2: heavy conflict misses
		{"tiny-hot-set", 8 << 10, 0.5},      // everything collides, many upgrades
		{"huge-sparse", 1 << 32, 0.1},       // compulsory misses, no reuse
		{"writeback-storm", 256 << 10, 0.9}, // dirty evictions dominate
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(len(tc.name)) * 1_000_003))
			cfg, err := randMachine(r, safetyBank(r))
			if err != nil {
				t.Fatal(err)
			}
			streams := make([]*rand.Rand, cfg.CPUs)
			for i := range streams {
				streams[i] = rand.New(rand.NewSource(int64(i) * 104_729))
			}
			src := &trace.FuncSource{
				NumCPUs: cfg.CPUs,
				Fn: func(cpu int) (trace.Ref, bool) {
					sr := streams[cpu]
					op := trace.Read
					if sr.Float64() < tc.writes {
						op = trace.Write
					}
					return trace.Ref{Op: op, Addr: sr.Uint64() % tc.window}, true
				},
			}
			sys := smp.New(cfg)
			auditChunks(t, sys, src, 50_000, 5_000)
		})
	}
}
