package sim

import (
	"context"

	"jetty/internal/energy"
	"jetty/internal/engine"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// Fused evaluation: JETTY filters are passive observers of the
// coherence stream — they never change what the bus sees — so any
// number of filter banks can ride on ONE simulation pass and each
// observe exactly the stream it would have seen alone. This file
// exploits that: it runs the machine once with every member's bank
// concatenated into one wide observer bank, then projects the wide
// result back into per-member AppResults by slicing each member's
// contiguous filter columns out.
//
// The projection is bit-identical to running each member separately
// (TestSweepFusedMatchesPerCell in internal/sweep pins it):
//   - Machine state, counters, bus statistics and hit rates are pure
//     functions of (reference stream, machine config minus filters),
//     so the wide run's aggregates equal every member's.
//   - A filter instance's counts depend only on the snoop stream and
//     its own configuration — never on its neighbors in the bank — so
//     slicing columns [off, off+n) yields the member's exact counts.
//   - Coverage is Filtered/SnoopMisses: same integers, same float.
//   - Timeline windows carry machine Counts (filter-independent, and
//     Window.Energy derives from Counts alone) plus per-filter columns
//     sliced the same way.

// FusedMember is one member of a fused run: the content address its
// result is cached under (the member cell's existing per-cell key, so
// fused and per-cell runs share cache entries) and its filter bank.
type FusedMember struct {
	Key  string
	Bank []jetty.Config
}

// fusedConfig widens base with every bank concatenated in order. base
// must carry no filters of its own (the planner groups by the
// filterless config).
func fusedConfig(base smp.Config, banks [][]jetty.Config) smp.Config {
	total := 0
	for _, b := range banks {
		total += len(b)
	}
	all := make([]jetty.Config, 0, total)
	for _, b := range banks {
		all = append(all, b...)
	}
	return base.WithFilters(all...)
}

// projectResult slices one member's result out of the wide run: filter
// columns [off, off+n) of the aggregate counters and of every timeline
// window, everything else copied verbatim (it is identical for every
// member by construction). Slices are freshly allocated — members must
// not alias each other or the wide result (they go into the engine
// cache independently).
func projectResult(full AppResult, off, n int) AppResult {
	r := full
	r.RemoteHitFrac = append([]float64(nil), full.RemoteHitFrac...)
	r.Bus.RemoteHits = append([]uint64(nil), full.Bus.RemoteHits...)
	r.FilterNames = append([]string(nil), full.FilterNames[off:off+n]...)
	r.FilterCounts = append([]energy.FilterCounts(nil), full.FilterCounts[off:off+n]...)
	r.Coverage = append([]float64(nil), full.Coverage[off:off+n]...)
	if full.Timeline != nil {
		tl := &metrics.Timeline{
			Interval:    full.Timeline.Interval,
			FilterNames: append([]string(nil), full.Timeline.FilterNames[off:off+n]...),
			Windows:     append([]metrics.Window(nil), full.Timeline.Windows...),
		}
		for i := range tl.Windows {
			tl.Windows[i].Filters = append([]energy.FilterCounts(nil), full.Timeline.Windows[i].Filters[off:off+n]...)
		}
		r.Timeline = tl
	}
	return r
}

// projectAll demuxes the wide result into one AppResult per bank, in
// bank order.
func projectAll(full AppResult, banks [][]jetty.Config) []AppResult {
	out := make([]AppResult, len(banks))
	off := 0
	for i, b := range banks {
		out[i] = projectResult(full, off, len(b))
		off += len(b)
	}
	return out
}

// RunAppFusedCtx runs ONE simulation of sp on base with every bank
// attached as concatenated observers and returns one AppResult per
// bank, each bit-identical to a separate run of sp on
// base.WithFilters(bank...). opt attaches interval sampling (each
// member's result then carries its sliced Timeline).
func RunAppFusedCtx(ctx context.Context, sp workload.Spec, base smp.Config, banks [][]jetty.Config, opt SampleOptions, report func(done uint64)) ([]AppResult, error) {
	full, err := runApp(ctx, sp, fusedConfig(base, banks), nil, opt, report)
	if err != nil {
		return nil, err
	}
	return projectAll(full, banks), nil
}

// RunTraceFusedCtx is RunAppFusedCtx for a stored-trace replay.
func RunTraceFusedCtx(ctx context.Context, in TraceInput, base smp.Config, banks [][]jetty.Config, opt SampleOptions, report func(done uint64)) ([]AppResult, error) {
	full, err := runTrace(ctx, in, fusedConfig(base, banks), opt, report)
	if err != nil {
		return nil, err
	}
	return projectAll(full, banks), nil
}

// fusedGroup assembles the engine.GroupTask shared by the app and
// trace constructors: per-member keys/totals, and a Run that attaches
// only the live members' banks (canceled and cache-satisfied members
// cost nothing) before demuxing.
func fusedGroup(members []FusedMember, total uint64, run func(ctx context.Context, banks [][]jetty.Config, report func(uint64)) ([]AppResult, error)) engine.GroupTask {
	ms := make([]engine.GroupMember, len(members))
	for i, m := range members {
		ms[i] = engine.GroupMember{Key: m.Key, Total: total}
	}
	return engine.GroupTask{
		Kind:    KindFused,
		Members: ms,
		Run: func(ctx context.Context, live []int, report func(uint64)) ([]any, error) {
			banks := make([][]jetty.Config, len(live))
			for k, i := range live {
				banks[k] = members[i].Bank
			}
			results, err := run(ctx, banks, report)
			if err != nil {
				return nil, err
			}
			out := make([]any, len(results))
			for k, r := range results {
				out[k] = r
			}
			return out, nil
		},
	}
}

// FusedAppGroup wraps one fused generator run as an engine group task:
// one queued simulation, one engine-cache fill per member under that
// member's own key. The caller sets Origin on the returned task if it
// has one (the sweep scheduler stamps the submitting request's ID).
func FusedAppGroup(sp workload.Spec, base smp.Config, members []FusedMember, opt SampleOptions) engine.GroupTask {
	return fusedGroup(members, sp.Accesses, func(ctx context.Context, banks [][]jetty.Config, report func(uint64)) ([]AppResult, error) {
		return RunAppFusedCtx(ctx, sp, base, banks, opt, report)
	})
}

// FusedTraceGroup is FusedAppGroup for a stored-trace replay.
func FusedTraceGroup(in TraceInput, base smp.Config, members []FusedMember, opt SampleOptions) engine.GroupTask {
	return fusedGroup(members, in.Records, func(ctx context.Context, banks [][]jetty.Config, report func(uint64)) ([]AppResult, error) {
		return RunTraceFusedCtx(ctx, in, base, banks, opt, report)
	})
}
