package sim

import "jetty/internal/energy"

// Snoop-latency analysis (paper §2.2): a JETTY sits in series with the L2
// tag array, so unfiltered snoops pay its latency on top of the tag probe;
// filtered snoops answer from the JETTY alone. The paper argues the
// addition is negligible — the JETTY is register-file-sized (a fraction of
// a cycle) while an L2 tag probe takes many cycles and the bus runs 4-10x
// slower than the core. This module quantifies that argument, and also the
// tag-port-pressure relief the conclusion hints at when it mentions
// performance optimizations: every filtered snoop is an L2 tag-array slot
// the local processor does not compete with.

// LatencyParams are the §2.2 timing assumptions, in processor cycles.
type LatencyParams struct {
	JettyCycles  float64 // JETTY probe ("half a cycle in many processors")
	L2TagCycles  float64 // "it takes several (e.g., 12) cycles to access a reasonably sized L2"
	BusClockMult float64 // bus cycle in CPU cycles ("4~10 times slower")
}

// PaperLatency returns the §2.2 reference numbers.
func PaperLatency() LatencyParams {
	return LatencyParams{JettyCycles: 0.5, L2TagCycles: 12, BusClockMult: 6}
}

// LatencyReport quantifies the latency/occupancy effects of one filter.
type LatencyReport struct {
	// BaseSnoopResponse is the mean snoop response latency without a
	// JETTY (every snoop probes the L2 tags), in CPU cycles.
	BaseSnoopResponse float64
	// WithSnoopResponse is the mean with the filter: filtered snoops
	// answer from the JETTY; unfiltered ones pay JETTY + tag probe.
	WithSnoopResponse float64
	// WorstCasePenalty is the added latency of a non-filtered snoop in
	// bus cycles — the §2.2 claim is that this is a small fraction.
	WorstCasePenaltyBusCycles float64
	// TagPortRelief is the fraction of all L2 tag-array accesses removed
	// by filtering — bandwidth returned to the local processor.
	TagPortRelief float64
}

// Latency computes the report for one filter of a run.
func Latency(counts energy.Counts, fc energy.FilterCounts, p LatencyParams) LatencyReport {
	var r LatencyReport
	snoops := float64(counts.Snoops)
	if snoops == 0 {
		return r
	}
	filtered := float64(fc.Filtered)
	if filtered > snoops {
		filtered = snoops
	}
	r.BaseSnoopResponse = p.L2TagCycles
	r.WithSnoopResponse = (filtered*p.JettyCycles +
		(snoops-filtered)*(p.JettyCycles+p.L2TagCycles)) / snoops
	r.WorstCasePenaltyBusCycles = p.JettyCycles / p.BusClockMult

	allTag := snoops + float64(counts.LocalProbes())
	if allTag > 0 {
		r.TagPortRelief = filtered / allTag
	}
	return r
}

// LatencyOf computes the report for a named filter in an AppResult.
func LatencyOf(res AppResult, name string, p LatencyParams) (LatencyReport, error) {
	fc, err := res.FilterCountsOf(name)
	if err != nil {
		return LatencyReport{}, err
	}
	return Latency(res.Counts, fc, p), nil
}
