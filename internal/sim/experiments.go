package sim

import (
	"context"
	"fmt"
	"strings"

	"jetty/internal/analytic"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/smp"
	"jetty/internal/tables"
)

// AllFigureConfigs returns the union of every JETTY configuration the
// paper's figures evaluate, deduplicated in first-appearance order. One
// simulation pass with this bank yields Figures 4(a), 4(b), 5(a), 5(b)
// and 6 simultaneously.
func AllFigureConfigs() []string {
	seen := map[string]bool{}
	var out []string
	for _, list := range [][]string{jetty.Fig4aConfigs, jetty.Fig4bConfigs, jetty.Fig5aConfigs, jetty.Fig5bConfigs} {
		for _, n := range list {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// bestHybridName is the paper's best hybrid configuration, the
// representative filter of the summary and sensitivity experiments.
const bestHybridName = "HJ(IJ-10x4x7,EJ-32x4)"

// PaperBankConfig builds the paper's machine (subblocked or not) with
// the named filter bank attached; an empty list means the full figure
// bank. It is the single source of the default experiment machine, used
// by the suite entry points here and by the jettyd service.
func PaperBankConfig(cpus int, nsb bool, filterNames []string) (smp.Config, error) {
	if len(filterNames) == 0 {
		filterNames = AllFigureConfigs()
	}
	filters, err := jetty.ParseAll(filterNames)
	if err != nil {
		return smp.Config{}, err
	}
	base := smp.PaperConfig(cpus)
	if nsb {
		base = smp.PaperConfigNSB(cpus)
	}
	return base.WithFilters(filters...), nil
}

// paperSuiteConfig builds the paper's machine with the full figure
// filter bank attached.
func paperSuiteConfig(cpus int, nsb bool) (smp.Config, error) {
	return PaperBankConfig(cpus, nsb, nil)
}

// PaperSuite runs the whole benchmark suite on the paper's machine with
// the full figure filter bank attached, concurrently on the shared
// engine. scale scales the access budgets (1.0 for the full experiment,
// smaller for benchmarks/smoke tests).
func PaperSuite(cpus int, scale float64) ([]AppResult, smp.Config, error) {
	return DefaultRunner().PaperSuite(context.Background(), cpus, scale)
}

// PaperSuiteNSB is PaperSuite on the non-subblocked machine.
func PaperSuiteNSB(cpus int, scale float64) ([]AppResult, smp.Config, error) {
	return DefaultRunner().PaperSuiteNSB(context.Background(), cpus, scale)
}

// Table1Report reproduces Table 1: the Xeon power breakdown with the
// derived percentage columns recomputed.
func Table1Report() string {
	t := tables.New("Table 1: Xeon peak power breakdown (datasheet watts, derived fractions)",
		"L2 size", "Core W", "L2 W", "L2 pads W", "L2 %", "L2 w/o pads %")
	for _, r := range analytic.XeonTable() {
		t.Row(fmt.Sprintf("%dK", r.L2SizeKB), r.CoreWatts, r.L2Watts, r.PadWatts,
			tables.PctInt(r.L2Fraction()), tables.PctInt(r.L2FractionNoPads()))
	}
	t.Note("paper: 14/16, 23/28, 34/43 percent")
	return t.String()
}

// Fig2Report reproduces Figure 2: snoop-miss tag energy as a fraction of
// all L2 energy, vs local hit rate, one curve per remote hit rate, for 32-
// and 64-byte lines.
func Fig2Report(samples int) string {
	var b strings.Builder
	tech := energy.Tech180()
	for _, blockBytes := range []int{32, 64} {
		fig := analytic.ComputeFigure2(tech, blockBytes, samples)
		fmt.Fprintf(&b, "Figure 2(%s): %d-byte lines — SnoopMissE vs local hit rate\n",
			map[int]string{32: "a", 64: "b"}[blockBytes], blockBytes)
		b.WriteString("  local hit: ")
		for _, l := range fig.LocalHitRates {
			fmt.Fprintf(&b, " %5.2f", l)
		}
		b.WriteByte('\n')
		for i, r := range fig.RemoteHitRates {
			fmt.Fprintf(&b, "  R=%3.0f%%:    ", r*100)
			for _, y := range fig.Series[i] {
				fmt.Fprintf(&b, " %4.1f%%", y*100)
			}
			b.WriteByte('\n')
		}
		pt := analytic.PaperParams(tech, blockBytes).Eval(0.5, 0.1)
		fmt.Fprintf(&b, "  headline point (L=0.5, R=0.1): %.1f%% (paper quotes ~33%% for 32B)\n\n",
			pt.SnoopMissE*100)
	}
	return b.String()
}

// Table2Report reproduces Table 2: per-application run characteristics.
func Table2Report(results []AppResult) string {
	t := tables.New("Table 2: applications (simulated)",
		"App", "Ab", "Accesses(M)", "MA(MB)", "L1 hit", "L2 hit", "L2 snoop accesses(M)")
	for _, r := range results {
		t.Row(r.Spec.Name, r.Spec.Abbrev, tables.Millions(r.Refs), tables.MB(r.MemoryBytes),
			tables.Pct(r.L1HitRate), tables.Pct(r.L2LocalHitRate), tables.Millions(r.Counts.Snoops))
	}
	t.Note("paper L1 range 76.5–99.6%%, L2 range 23.3–82.5%%")
	return t.String()
}

// Table3Report reproduces Table 3: the remote-hit distribution and
// snoop-miss fractions.
func Table3Report(results []AppResult) string {
	n := len(results[0].RemoteHitFrac)
	headers := []string{"App"}
	for h := 0; h < n; h++ {
		headers = append(headers, fmt.Sprintf("%d", h))
	}
	headers = append(headers, "% of snoops", "% of all accesses")
	t := tables.New("Table 3: snoop hit distribution and snoop-miss fractions", headers...)

	avgHist := make([]float64, n)
	var avgOfSnoops, avgOfAll float64
	for _, r := range results {
		row := []any{r.Spec.Name}
		for h := 0; h < n; h++ {
			row = append(row, tables.PctInt(r.RemoteHitFrac[h]))
			avgHist[h] += r.RemoteHitFrac[h] / float64(len(results))
		}
		row = append(row, tables.PctInt(r.SnoopMissOfSnoops), tables.PctInt(r.SnoopMissOfAll))
		avgOfSnoops += r.SnoopMissOfSnoops / float64(len(results))
		avgOfAll += r.SnoopMissOfAll / float64(len(results))
		t.Row(row...)
	}
	row := []any{"AVERAGE"}
	for h := 0; h < n; h++ {
		row = append(row, tables.Pct(avgHist[h]))
	}
	row = append(row, tables.Pct(avgOfSnoops), tables.Pct(avgOfAll))
	t.Row(row...)
	t.Note("paper averages: 79.6/15.6/2.6/1.0, 91%% of snoops, 55%% of all accesses")
	return t.String()
}

// CoverageReport renders one coverage figure (4a/4b/5a/5b): per-app
// coverage of each configuration plus the suite average.
func CoverageReport(title string, results []AppResult, configNames []string, paperNote string) string {
	headers := append([]string{"App"}, configNames...)
	t := tables.New(title, headers...)
	avg := make([]float64, len(configNames))
	for _, r := range results {
		row := []any{r.Spec.Abbrev}
		for i, name := range configNames {
			cov, err := r.CoverageOf(name)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, tables.Pct(cov))
			avg[i] += cov / float64(len(results))
		}
		t.Row(row...)
	}
	row := []any{"AVG"}
	for _, a := range avg {
		row = append(row, tables.Pct(a))
	}
	t.Row(row...)
	if paperNote != "" {
		t.Note("%s", paperNote)
	}
	return t.String()
}

// Table4Report reproduces Table 4: IJ storage requirements for the
// machine's L2 (counter width sized pessimistically for its block count).
func Table4Report(cfg smp.Config) string {
	cntBits := jetty.CntBitsFor(cfg.L2.Blocks())
	t := tables.New(fmt.Sprintf("Table 4: include-JETTY storage (cnt width %d bits)", cntBits),
		"IJ", "p-bit array (bits)", "cnt array org", "total bytes")
	for _, name := range jetty.Table4Configs {
		c := jetty.MustParse(name)
		row := c.Include.Storage(cntBits)
		t.Row(name, row.PBitOrg, row.CntOrg, row.TotalBytes())
	}
	t.Note("paper lists 7168/3548/1792/869/448 bytes (counter storage, with typos; see EXPERIMENTS.md)")
	return t.String()
}

// Fig6Row is one application's energy reductions for one configuration.
type Fig6Row struct {
	App        string
	OverSnoops float64
	OverAll    float64
}

// Fig6Data computes the Figure 6 series for every Fig6 configuration in
// both access modes. The returned map is keyed by config name, then mode.
func Fig6Data(results []AppResult, cfg smp.Config) map[string]map[energy.Mode][]Fig6Row {
	tech := energy.Tech180()
	out := map[string]map[energy.Mode][]Fig6Row{}
	for _, mode := range []energy.Mode{energy.SerialTagData, energy.ParallelTagData} {
		for _, r := range results {
			for _, red := range EnergyReductions(r, cfg, tech, mode) {
				if out[red.Filter] == nil {
					out[red.Filter] = map[energy.Mode][]Fig6Row{}
				}
				out[red.Filter][mode] = append(out[red.Filter][mode], Fig6Row{
					App: r.Spec.Abbrev, OverSnoops: red.OverSnoops, OverAll: red.OverAll,
				})
			}
		}
	}
	return out
}

// Fig6Report reproduces Figure 6: energy reduction over snoop accesses and
// over all L2 accesses, serial and parallel tag/data.
func Fig6Report(results []AppResult, cfg smp.Config) string {
	data := Fig6Data(results, cfg)
	var b strings.Builder
	panel := func(title string, mode energy.Mode, overAll bool) {
		fmt.Fprintf(&b, "%s\n", title)
		apps := ""
		for _, r := range results {
			apps += fmt.Sprintf(" %6.6s", r.Spec.Abbrev)
		}
		fmt.Fprintf(&b, "  %-24s%s    AVG\n", "config", apps)
		for _, name := range jetty.Fig6Configs {
			rows := data[name][mode]
			if rows == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-24s", name)
			sum := 0.0
			for _, row := range rows {
				v := row.OverSnoops
				if overAll {
					v = row.OverAll
				}
				sum += v
				fmt.Fprintf(&b, " %5.1f%%", v*100)
			}
			fmt.Fprintf(&b, "  %5.1f%%\n", sum/float64(len(rows))*100)
		}
	}
	panel("Figure 6(a): energy reduction over snoop accesses, serial tag/data", energy.SerialTagData, false)
	panel("Figure 6(b): energy reduction over ALL L2 accesses, serial tag/data", energy.SerialTagData, true)
	panel("Figure 6(c): energy reduction over snoop accesses, parallel tag/data", energy.ParallelTagData, false)
	panel("Figure 6(d): energy reduction over ALL L2 accesses, parallel tag/data", energy.ParallelTagData, true)
	b.WriteString("  paper: (a) best HJ 56% avg; (b) 29-30%; (c) 63%; (d) 41%\n")
	return b.String()
}

// SummaryReport prints the cross-cutting summary numbers the paper calls
// out in the text (§4.2/§4.3/§6) for one suite run.
func SummaryReport(results []AppResult, label string) string {
	var smOfAll, smOfSnoops, bestHJ float64
	for _, r := range results {
		smOfAll += r.SnoopMissOfAll / float64(len(results))
		smOfSnoops += r.SnoopMissOfSnoops / float64(len(results))
		if cov, err := r.CoverageOf("HJ(IJ-10x4x7,EJ-32x4)"); err == nil {
			bestHJ += cov / float64(len(results))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Summary (%s):\n", label)
	fmt.Fprintf(&b, "  snoop misses as %% of snoop accesses: %s\n", tables.Pct(smOfSnoops))
	fmt.Fprintf(&b, "  snoop misses as %% of all L2 accesses: %s\n", tables.Pct(smOfAll))
	fmt.Fprintf(&b, "  best HJ (IJ-10x4x7, EJ-32x4) coverage: %s\n", tables.Pct(bestHJ))
	return b.String()
}

// SensitivityPoint is one machine design point of the L2 sensitivity sweep.
type SensitivityPoint struct {
	L2Bytes  int
	Assoc    int
	Coverage float64 // best hybrid
	OverAll  float64 // serial-mode energy reduction over all L2 accesses
}

// L2Sensitivity sweeps L2 size and associativity with the best hybrid
// attached, quantifying the paper's §1 motivation: "As L2 size and
// associativity increase the power required for their operation also
// increases" — and with it JETTY's savings. One representative workload
// keeps the sweep fast; scale shortens it further. The eight design
// points run concurrently on the shared engine.
func L2Sensitivity(appName string, scale float64) ([]SensitivityPoint, error) {
	return DefaultRunner().L2Sensitivity(context.Background(), appName, scale)
}

// SensitivityReport renders the sweep.
func SensitivityReport(points []SensitivityPoint, appName string) string {
	t := tables.New(fmt.Sprintf("L2 design sensitivity (%s, best hybrid, serial tag/data)", appName),
		"L2 size", "assoc", "coverage", "energy -% (all L2)")
	for _, p := range points {
		t.Row(fmt.Sprintf("%dKB", p.L2Bytes>>10), p.Assoc, tables.Pct(p.Coverage), tables.Pct(p.OverAll))
	}
	t.Note("paper §1: tag-related savings grow in importance with L2 size/associativity")
	return t.String()
}
