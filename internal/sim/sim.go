// Package sim is the experiment runner: it ties the synthetic workloads,
// the SMP machine and the JETTY filter bank together and derives the
// paper's metrics (Table 2/3 statistics, per-filter coverage, and the
// Figure 6 energy reductions) from one simulation pass per application.
package sim

import (
	"context"
	"fmt"

	"jetty/internal/bus"
	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/metrics"
	"jetty/internal/smp"
	"jetty/internal/workload"
)

// AppResult holds everything measured for one application run.
type AppResult struct {
	Spec workload.Spec
	CPUs int

	Refs        uint64 // references processed
	MemoryBytes uint64 // allocated footprint (Table 2 "MA")

	L1HitRate      float64
	L2LocalHitRate float64

	Counts energy.Counts // aggregated L2 event counts
	CPU    smp.CPUStats
	Bus    bus.Stats

	RemoteHitFrac     []float64 // Table 3 "Remote Cache Hits" 0..N-1
	SnoopMissOfSnoops float64   // Table 3 "% of Snoop Accesses"
	SnoopMissOfAll    float64   // Table 3 "% of All Accesses"

	FilterNames  []string
	FilterCounts []energy.FilterCounts
	Coverage     []float64

	// Timeline is the time-resolved record of the run: present only when
	// the run was sampled (RunAppSampledCtx / RunTraceSampledCtx). Its
	// windows sum exactly to the aggregates above, and sampling never
	// changes them (both pinned by tests).
	Timeline *metrics.Timeline `json:"Timeline,omitempty"`
}

// Clone returns a deep copy of the result. The engine's content-
// addressed cache hands the same AppResult to every submitter of an
// identical run, so engine-backed paths clone before returning.
func (r AppResult) Clone() AppResult {
	r.RemoteHitFrac = append([]float64(nil), r.RemoteHitFrac...)
	r.FilterNames = append([]string(nil), r.FilterNames...)
	r.FilterCounts = append([]energy.FilterCounts(nil), r.FilterCounts...)
	r.Coverage = append([]float64(nil), r.Coverage...)
	r.Bus.RemoteHits = append([]uint64(nil), r.Bus.RemoteHits...)
	r.Timeline = r.Timeline.Clone()
	return r
}

// CoverageOf returns the coverage of the named filter.
func (r AppResult) CoverageOf(name string) (float64, error) {
	for i, n := range r.FilterNames {
		if n == name {
			return r.Coverage[i], nil
		}
	}
	return 0, fmt.Errorf("sim: filter %q not in run", name)
}

// FilterCountsOf returns the event counts of the named filter.
func (r AppResult) FilterCountsOf(name string) (energy.FilterCounts, error) {
	for i, n := range r.FilterNames {
		if n == name {
			return r.FilterCounts[i], nil
		}
	}
	return energy.FilterCounts{}, fmt.Errorf("sim: filter %q not in run", name)
}

// RunApp simulates one application on the given machine, serially on the
// calling goroutine. The run length is spec.Accesses references (all CPUs
// combined). It returns an error if any filter violated the safety
// requirement or the machine ended incoherent.
//
// RunApp is the reference implementation: the engine-backed paths
// (Runner, RunSuite, cmd/jettyd) must produce bit-identical results.
func RunApp(sp workload.Spec, cfg smp.Config) (AppResult, error) {
	if err := sp.Validate(); err != nil {
		return AppResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return AppResult{}, err
	}
	sys := smp.New(cfg)
	src := sp.Source(cfg.CPUs)
	sys.Run(src, sp.Accesses)
	return finishRun(sys, sp, cfg)
}

// finishRun drains, checks and measures a completed simulation pass. It
// is shared by the serial (RunApp) and chunked (RunAppCtx) paths. A
// sampler attached to the machine is flushed after the drain — the tail
// window must include the drained stores or the timeline would not
// conserve the end-of-run totals — and its timeline rides on the result.
func finishRun(sys *smp.System, sp workload.Spec, cfg smp.Config) (AppResult, error) {
	sys.DrainWriteBuffers()
	if sm := sys.Sampler(); sm != nil {
		sm.Flush(sys)
	}

	if err := sys.CheckFilterSafety(); err != nil {
		return AppResult{}, err
	}
	if err := sys.CheckCoherence(); err != nil {
		return AppResult{}, err
	}

	res := AppResult{
		Spec:              sp,
		CPUs:              cfg.CPUs,
		Refs:              sys.Refs(),
		MemoryBytes:       sp.MemoryBytes(cfg.CPUs),
		L1HitRate:         sys.L1HitRate(),
		L2LocalHitRate:    sys.L2LocalHitRate(),
		Counts:            sys.EnergyCounts(),
		CPU:               sys.CPUStatsTotal(),
		Bus:               *sys.BusStats(),
		RemoteHitFrac:     sys.BusStats().RemoteHitFractions(),
		SnoopMissOfSnoops: sys.SnoopMissFracOfSnoops(),
		SnoopMissOfAll:    sys.SnoopMissFracOfAll(),
		FilterNames:       sys.FilterNames(),
	}
	for i := range cfg.Filters {
		res.FilterCounts = append(res.FilterCounts, sys.FilterCounts(i))
		res.Coverage = append(res.Coverage, sys.Coverage(i))
	}
	if sm := sys.Sampler(); sm != nil {
		res.Timeline = buildTimeline(sm, cfg)
	}
	return res, nil
}

// WindowEnergy returns the per-window baseline energy function for one
// machine: the breakdown every finished timeline's windows carry
// (serial tag/data, 0.18 µm — the paper's energy-optimized L2; other
// modes are derivable from the window counts). Streaming consumers that
// see windows before the timeline is finished (the jettyd live feed)
// apply it so live and retained windows are identical.
func WindowEnergy(cfg smp.Config) func(*metrics.Window) energy.Breakdown {
	org := L2EnergyOrg(cfg)
	costs := energy.Tech180().Costs(org)
	return func(w *metrics.Window) energy.Breakdown {
		return energy.Account(w.Counts, costs, org.Assoc, energy.SerialTagData)
	}
}

// buildTimeline detaches the sampler's windows into a self-contained
// Timeline: fresh slices (the sampler's arenas are reusable), the bank's
// filter names, and each window's baseline energy split (WindowEnergy).
func buildTimeline(sm *metrics.Sampler, cfg smp.Config) *metrics.Timeline {
	we := WindowEnergy(cfg)
	wins := append([]metrics.Window(nil), sm.Windows()...)
	for i := range wins {
		wins[i].Filters = append([]energy.FilterCounts(nil), wins[i].Filters...)
		wins[i].Energy = we(&wins[i])
	}
	names := make([]string, len(cfg.Filters))
	for i, f := range cfg.Filters {
		names[i] = f.Name()
	}
	return &metrics.Timeline{Interval: sm.Interval(), FilterNames: names, Windows: wins}
}

// RunSuite runs every application of the paper's benchmark suite on the
// given machine, scaling each access budget by scale (1 = the default
// budgets; benchmarks use smaller values). The apps run concurrently on
// the shared engine (see DefaultRunner); results are returned in Table 2
// order and are bit-identical to running each app serially.
func RunSuite(cfg smp.Config, scale float64) ([]AppResult, error) {
	return DefaultRunner().RunSuite(context.Background(), cfg, scale)
}

// RunSuiteSerial is the engine-free reference implementation of
// RunSuite: every app on the calling goroutine, in order. It exists so
// tests (and the suite benchmarks) can compare the parallel path against
// it; prefer RunSuite.
func RunSuiteSerial(cfg smp.Config, scale float64) ([]AppResult, error) {
	var out []AppResult
	for _, sp := range workload.Specs() {
		res, err := RunApp(sp.Scale(scale), cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", sp.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// L2EnergyOrg derives the energy model's cache organization from the
// machine configuration (MOESI needs 3 state bits per unit).
func L2EnergyOrg(cfg smp.Config) energy.CacheOrg {
	return energy.CacheOrg{
		Name:          "L2",
		SizeBytes:     cfg.L2.SizeBytes,
		Assoc:         cfg.L2.Assoc,
		BlockBytes:    cfg.L2.Geom.BlockBytes,
		UnitsPerBlock: cfg.L2.Geom.UnitsPerBlock,
		StateBits:     3,
	}
}

// EnergyReduction holds one filter's Figure 6 numbers for one access mode.
type EnergyReduction struct {
	Filter     string
	Mode       energy.Mode
	OverSnoops float64 // reduction over all snoop-induced energy (Fig. 6a/6c)
	OverAll    float64 // reduction over all L2 energy (Fig. 6b/6d)
	Baseline   energy.Breakdown
	With       energy.Breakdown
}

// EnergyReductions computes the energy savings of every filter in the run
// for the given tag/data access mode, exactly as Figure 6 reports them:
// filter probe/update energy charged, filtered snoops skipping the L2 tag
// probe (and, in parallel mode, the concurrent data-way reads).
func EnergyReductions(res AppResult, cfg smp.Config, tech energy.Tech, mode energy.Mode) []EnergyReduction {
	org := L2EnergyOrg(cfg)
	costs := tech.Costs(org)
	base := energy.Account(res.Counts, costs, org.Assoc, mode)

	unitBits := cfg.L2.Geom.UnitAddrBits()
	cntBits := jetty.CntBitsFor(cfg.L2.Blocks())

	var out []EnergyReduction
	for i, name := range res.FilterNames {
		fcost := cfg.Filters[i].Costs(tech, unitBits, cntBits)
		with := energy.AccountFiltered(res.Counts, costs, org.Assoc, mode, res.FilterCounts[i], fcost)
		out = append(out, EnergyReduction{
			Filter:     name,
			Mode:       mode,
			OverSnoops: energy.Reduction(base.SnoopTotal(), with.SnoopTotal()),
			OverAll:    energy.Reduction(base.Total(), with.Total()),
			Baseline:   base,
			With:       with,
		})
	}
	return out
}

// Average returns the arithmetic mean, 0 for empty input (the paper's
// "AVG" columns are arithmetic means over the ten applications).
func Average(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
