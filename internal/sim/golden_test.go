package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jetty/internal/energy"
	"jetty/internal/jetty"
	"jetty/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden paper-metrics file")

// The golden regression pins the paper metrics — filter rate (coverage)
// and energy saved — for every workload in the library against one
// representative configuration per JETTY variant. Every simulation is a
// pure function of (spec, config), so the pinned values are exact
// float64s compared with ==: any change to the workload generators, the
// machine, the filters or the energy model fails this test loudly and
// must either be fixed or explicitly re-baselined with
//
//	go test ./internal/sim -run PaperMetricsGolden -update
//
// (and the diff reviewed like any other behavior change).

// goldenConfigs is one representative configuration per variant.
var goldenConfigs = []string{
	"EJ-32x4",               // exclude
	"VEJ-32x4-8",            // vector exclude
	"IJ-9x4x7",              // include
	"HJ(IJ-10x4x7,EJ-32x4)", // hybrid (the paper's best)
}

// goldenScale shortens the budgets; the pinned numbers are still exact
// for this scale.
const goldenScale = 0.05

type goldenFilter struct {
	Filter             string  `json:"filter"`
	Coverage           float64 `json:"coverage"`
	SerialOverSnoops   float64 `json:"energy_serial_over_snoops"`
	SerialOverAll      float64 `json:"energy_serial_over_all"`
	ParallelOverSnoops float64 `json:"energy_parallel_over_snoops"`
	ParallelOverAll    float64 `json:"energy_parallel_over_all"`
}

type goldenApp struct {
	Workload          string         `json:"workload"`
	Refs              uint64         `json:"refs"`
	L1HitRate         float64        `json:"l1_hit_rate"`
	L2LocalHitRate    float64        `json:"l2_local_hit_rate"`
	SnoopMissOfSnoops float64        `json:"snoopmiss_of_snoops"`
	SnoopMissOfAll    float64        `json:"snoopmiss_of_all"`
	Filters           []goldenFilter `json:"filters"`
}

const goldenMetricsPath = "testdata/paper_metrics.json"

// computeGolden measures every library workload against the
// representative bank, on the paper machine, serially (the reference
// path — no engine, no cache, nothing shared between tests).
func computeGolden(t *testing.T) []goldenApp {
	t.Helper()
	cfg, err := PaperBankConfig(4, false, goldenConfigs)
	if err != nil {
		t.Fatal(err)
	}
	tech := energy.Tech180()
	var out []goldenApp
	for _, sp := range workload.Library() {
		res, err := RunApp(sp.Scale(goldenScale), cfg)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		app := goldenApp{
			Workload:          sp.Name,
			Refs:              res.Refs,
			L1HitRate:         res.L1HitRate,
			L2LocalHitRate:    res.L2LocalHitRate,
			SnoopMissOfSnoops: res.SnoopMissOfSnoops,
			SnoopMissOfAll:    res.SnoopMissOfAll,
		}
		serial := EnergyReductions(res, cfg, tech, energy.SerialTagData)
		parallel := EnergyReductions(res, cfg, tech, energy.ParallelTagData)
		for fi, name := range res.FilterNames {
			app.Filters = append(app.Filters, goldenFilter{
				Filter:             name,
				Coverage:           res.Coverage[fi],
				SerialOverSnoops:   serial[fi].OverSnoops,
				SerialOverAll:      serial[fi].OverAll,
				ParallelOverSnoops: parallel[fi].OverSnoops,
				ParallelOverAll:    parallel[fi].OverAll,
			})
		}
		out = append(out, app)
	}
	return out
}

func TestPaperMetricsGolden(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenMetricsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMetricsPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d workloads to %s", len(got), goldenMetricsPath)
	}
	raw, err := os.ReadFile(goldenMetricsPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run PaperMetricsGolden -update` to baseline)", err)
	}
	var want []goldenApp
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("library holds %d workloads, golden file %d — re-baseline with -update", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Workload != w.Workload {
			t.Fatalf("workload %d is %s, golden says %s — re-baseline with -update", i, g.Workload, w.Workload)
			continue
		}
		if g.Refs != w.Refs || g.L1HitRate != w.L1HitRate || g.L2LocalHitRate != w.L2LocalHitRate ||
			g.SnoopMissOfSnoops != w.SnoopMissOfSnoops || g.SnoopMissOfAll != w.SnoopMissOfAll {
			t.Errorf("%s: run statistics drifted:\n got %+v\nwant %+v", g.Workload, g, w)
			continue
		}
		if len(g.Filters) != len(w.Filters) {
			t.Errorf("%s: %d filters, golden has %d", g.Workload, len(g.Filters), len(w.Filters))
			continue
		}
		for fi := range g.Filters {
			if g.Filters[fi] != w.Filters[fi] {
				t.Errorf("%s/%s: paper metrics drifted:\n got %+v\nwant %+v",
					g.Workload, g.Filters[fi].Filter, g.Filters[fi], w.Filters[fi])
			}
		}
	}
}

// TestGoldenCoversEveryVariant guards the golden bank itself: it must
// keep one representative of each variant family, or the regression
// net silently narrows.
func TestGoldenCoversEveryVariant(t *testing.T) {
	var ej, vej, ij, hj bool
	for _, name := range goldenConfigs {
		c := jetty.MustParse(name)
		switch {
		case c.Include != nil && c.Exclude != nil:
			hj = true
		case c.Include != nil:
			ij = true
		case c.Exclude.Vector > 1:
			vej = true
		default:
			ej = true
		}
	}
	if !ej || !vej || !ij || !hj {
		t.Fatalf("golden bank %v misses a variant (EJ %v, VEJ %v, IJ %v, HJ %v)",
			goldenConfigs, ej, vej, ij, hj)
	}
}
