package sim

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"jetty/internal/store"
	"jetty/internal/workload"
)

// persistTestResult computes one real sampled result with filters and a
// timeline attached — the richest AppResult shape the store carries.
func persistTestResult(t *testing.T) AppResult {
	t.Helper()
	sp, err := workload.ByName("Lu")
	if err != nil {
		t.Fatal(err)
	}
	sp.Accesses = 120_000
	res, err := RunAppSampledCtx(context.Background(), sp, testConfig(4),
		SampleOptions{Interval: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultCodecRoundTrip pins the codec contract the kill-and-restart
// differential test depends on: decode(encode(r)) is DeepEqual to r for
// a real computed result, including the per-filter slices and the full
// per-window timeline.
func TestResultCodecRoundTrip(t *testing.T) {
	res := persistTestResult(t)
	if res.Timeline == nil || len(res.FilterCounts) == 0 {
		t.Fatalf("test result not rich enough: %+v", res)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, res) {
		t.Fatalf("codec round trip diverged:\n got  %+v\n want %+v", back, res)
	}

	// Re-encoding the decoded result must be byte-identical: the store
	// can overwrite an entry with a recomputed copy without churn.
	data2, err := EncodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatalf("re-encode not byte-identical")
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDiskCache(st)
	res := persistTestResult(t)

	dc.Store("k1", res)
	v, ok := dc.Load("k1")
	if !ok {
		t.Fatalf("Load after Store missed")
	}
	if !reflect.DeepEqual(v.(AppResult), res) {
		t.Fatalf("disk round trip diverged")
	}
	if _, ok := dc.Load("absent"); ok {
		t.Fatalf("Load(absent) hit")
	}

	// Non-AppResult values are silently not persisted.
	dc.Store("k2", "not a result")
	if _, ok := dc.Load("k2"); ok {
		t.Fatalf("non-result value persisted")
	}
}

func TestDiskCacheDiscardsUndecodableEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Valid JSON, but not a current AppResult (unknown field).
	if err := st.PutResult("stale", []byte(`{"NoSuchField":1}`)); err != nil {
		t.Fatal(err)
	}
	dc := NewDiskCache(st)
	if _, ok := dc.Load("stale"); ok {
		t.Fatalf("undecodable entry served")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "stale.json")); !os.IsNotExist(err) {
		t.Fatalf("undecodable entry not discarded (err=%v)", err)
	}
}
